package repro

import (
	"time"

	"repro/internal/warehouse"
)

// QueryResult is a warehouse query's answer — one of the payload slices
// is populated, matching its Kind. The JSON form is exactly the body
// a collector daemon serves on GET /v1/query: both surfaces run the
// same internal query core, so they cannot drift.
type QueryResult = warehouse.Result

// WarehouseRun is one indexed run's summary.
type WarehouseRun = warehouse.Run

// RefreshStats reports what one warehouse catalog refresh did.
type RefreshStats = warehouse.RefreshStats

// PruneStats reports what one warehouse retention prune did.
type PruneStats = warehouse.PruneStats

// Query kinds, the values of QueryConfig.Kind.
const (
	// QueryRuns lists the live indexed runs and their shapes.
	QueryRuns = warehouse.KindRuns
	// QueryHistory lists one design cell's aggregate per run, oldest
	// first, with confidence intervals rebuilt from the index.
	QueryHistory = warehouse.KindHistory
	// QueryTrends lists per-(experiment, response) trend lines.
	QueryTrends = warehouse.KindTrends
	// QueryRegressions lists cells whose newest run shifted against the
	// run before it under the regression gate's CI-shift rule.
	QueryRegressions = warehouse.KindRegressions
)

// QueryConfig is the typed form of everything `perfeval query` exposes
// as -D flags: one question against a result warehouse — a directory of
// finished run stores indexed by internal/warehouse.
type QueryConfig struct {
	// Dir is the warehouse root: the directory the run stores live in.
	// The index file (warehouse.idx) is created next to them on first
	// use. Required.
	Dir string
	// Kind selects the question: QueryRuns (default), QueryHistory,
	// QueryTrends, or QueryRegressions.
	Kind string
	// Experiment filters to one experiment (required for history).
	Experiment string
	// Cell selects one design cell for history queries, by assignment
	// hash or by the canonical sorted "k=v k=v" assignment string.
	Cell string
	// Response filters to one response name.
	Response string
	// Confidence for the rebuilt Student-t intervals (default 0.95).
	Confidence float64
	// Tolerance is the relative half-width assumed for single-replicate
	// cells (default 0.05) — the same knob as the regression gate's.
	Tolerance float64
	// Limit, when > 0, keeps only the newest Limit runs, history points,
	// or trend points (and caps the regression listing).
	Limit int
	// NoRefresh answers from the index alone, skipping the catalog walk
	// — the pure O(index) path. The default refreshes first, so new and
	// changed stores are picked up.
	NoRefresh bool
	// KeepRuns, when > 0, prunes the index down to the newest KeepRuns
	// runs before answering (retention policy; source files are never
	// touched). It is the -Dquery.keep knob.
	KeepRuns int
	// MaxAge, when > 0, prunes runs whose source modification time is
	// older than MaxAge before answering. It is the -Dquery.maxage knob.
	MaxAge time.Duration
}

// QueryOutcome is one warehouse query: what the maintenance passes did
// (catalog refresh, retention prune) and the answer itself.
type QueryOutcome struct {
	// Refresh accounts for the catalog refresh (zero when NoRefresh).
	Refresh RefreshStats
	// Prune accounts for the retention prune (zero when no retention
	// knob was set).
	Prune PruneStats
	// Result is the answer.
	Result *QueryResult
}

// Query asks one question against the warehouse at cfg.Dir: it opens
// (creating on first use) the warehouse index, refreshes the catalog
// incrementally unless NoRefresh, applies the retention policy if one
// is configured, and answers from the index alone — record blocks are
// only read while ingesting new or changed stores, never to answer.
func Query(cfg QueryConfig) (*QueryOutcome, error) {
	wh, err := warehouse.Open(cfg.Dir, warehouse.Options{})
	if err != nil {
		return nil, err
	}
	defer wh.Close()
	var out QueryOutcome
	if !cfg.NoRefresh {
		if out.Refresh, err = wh.Refresh(); err != nil {
			return nil, err
		}
	}
	if cfg.KeepRuns > 0 || cfg.MaxAge > 0 {
		pol := warehouse.Retention{KeepRuns: cfg.KeepRuns, MaxAge: cfg.MaxAge}
		if out.Prune, err = wh.Prune(pol); err != nil {
			return nil, err
		}
	}
	res, err := wh.Query(warehouse.Request{
		Kind:       cfg.Kind,
		Experiment: cfg.Experiment,
		Cell:       cfg.Cell,
		Response:   cfg.Response,
		Confidence: cfg.Confidence,
		Tolerance:  cfg.Tolerance,
		Limit:      cfg.Limit,
	})
	if err != nil {
		return nil, err
	}
	out.Result = res
	return &out, nil
}
