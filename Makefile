GO ?= go

# The default target is what CI runs on every PR: vet plus the full test
# suite under the race detector, so the concurrent scheduler
# (internal/sched) and the journal (internal/runstore) are race-checked
# on every change.
.PHONY: check
check: vet race

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
