GO ?= go

# The default target is what CI runs on every PR: vet plus the full test
# suite under the race detector, so the concurrent scheduler
# (internal/sched) and the journal (internal/runstore) are race-checked
# on every change.
.PHONY: check
check: vet race

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# Short native-fuzz smoke over the journal parser: arbitrary byte
# streams must never panic Open, and complete records must round-trip.
# CI runs this on every push; crank FUZZTIME locally for a deeper soak.
FUZZTIME ?= 10s
.PHONY: fuzz
fuzz:
	$(GO) test -fuzz=FuzzJournalParse -fuzztime=$(FUZZTIME) -run=^$$ ./internal/runstore

.PHONY: cover
cover:
	$(GO) test -cover ./...
