GO ?= go

# The default target is what CI runs on every PR: vet plus the full test
# suite under the race detector, so the concurrent scheduler
# (internal/sched) and the journal (internal/runstore) are race-checked
# on every change, plus the public-API compatibility gate.
.PHONY: check
check: vet race apicheck

# API-compatibility gate: the exported surface of the public repro
# package must match api/repro.txt. Intentional API changes regenerate
# the golden file with `make apicheck-update` — an explicit, reviewable
# diff instead of silent drift.
.PHONY: apicheck
apicheck:
	$(GO) run ./tools/apicheck

.PHONY: apicheck-update
apicheck-update:
	$(GO) run ./tools/apicheck -update

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

# -shuffle=on randomizes test order so inter-test coupling (shared
# default registries, leftover env) surfaces in CI instead of in prod.
.PHONY: race
race:
	$(GO) test -race -shuffle=on ./...

.PHONY: bench
bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Documentation lint, run by CI: broken intra-repo links in README/docs
# and exported identifiers missing doc comments in the subsystem
# packages fail the build. go vet first — parse errors should name
# themselves, not surface as lint noise.
.PHONY: docs-check
docs-check:
	$(GO) vet ./...
	$(GO) run ./tools/docscheck

# Short native-fuzz smoke over the store parsers: arbitrary byte
# streams must never panic Open, and complete records must round-trip.
# `go test -fuzz` takes one target per invocation, so the JSONL and
# binary fuzzers run back to back. CI runs this on every push; crank
# FUZZTIME locally for a deeper soak.
FUZZTIME ?= 10s
.PHONY: fuzz
fuzz:
	$(GO) test -fuzz=FuzzJournalParse -fuzztime=$(FUZZTIME) -run=^$$ ./internal/runstore
	$(GO) test -fuzz=FuzzBinaryDecode -fuzztime=$(FUZZTIME) -run=^$$ ./internal/runstore
	$(GO) test -fuzz=FuzzWarehouseIndex -fuzztime=$(FUZZTIME) -run=^$$ ./internal/warehouse

# Collector perf snapshot: ingest throughput at increasing worker
# concurrency plus merge-after-collect wall time, recorded in
# BENCH_collector.json. Regenerate after collector-path changes and
# commit the diff alongside them.
.PHONY: bench-collector
bench-collector:
	$(GO) run ./tools/benchcollector -out BENCH_collector.json

# Codec perf snapshot: JSON vs binary record encoding through encode,
# decode, scan, and merge at 10^5 records, recorded in BENCH_codec.json
# with per-path binary/JSON throughput ratios. Regenerate after codec
# changes and commit the diff alongside them.
.PHONY: bench-codec
bench-codec:
	$(GO) run ./tools/benchcodec -out BENCH_codec.json

# Warehouse perf snapshot: cold index build vs incremental refresh vs
# query latency over 20 runs x 100k records total, plus the speedup of
# an indexed query over a raw store rescan (the acceptance bar is 10x),
# recorded in BENCH_warehouse.json. Regenerate after warehouse changes
# and commit the diff alongside them.
.PHONY: bench-warehouse
bench-warehouse:
	$(GO) run ./tools/benchwarehouse -out BENCH_warehouse.json

.PHONY: cover
cover:
	$(GO) test -cover ./...

# Fault-injection soak: a worker fleet collects one experiment while
# the daemon is killed and restarted mid-ingest, workers are killed
# mid-stream, connections are torn, and a tiny ingest budget forces a
# 429 storm; the merged+compacted store must stay byte-identical to a
# single-process run. `soak` runs the full schedule, `soak-short` is
# the ~seconds smoke CI runs on every push. Both race-checked.
.PHONY: soak
soak:
	SOAK_FULL=1 $(GO) test -race -count=1 -v -run 'TestSoak$$' -timeout 10m ./internal/collector/soaktest

.PHONY: soak-short
soak-short:
	$(GO) test -race -count=1 -short -run 'TestSoak$$' -timeout 5m ./internal/collector/soaktest
