package repro

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/adaptive"
	"repro/internal/harness"
	"repro/internal/paperexp"
	"repro/internal/runstore"
	"repro/internal/runstore/archivestore"
	"repro/internal/sched"
)

// StoreKind selects the per-experiment store backend a journaled run
// writes through.
type StoreKind string

// The store backends a RunConfig can name. The zero value means
// StoreJournal.
const (
	// StoreJournal is the append-only JSONL journal — the reference
	// backend.
	StoreJournal StoreKind = "journal"
	// StoreArchive is the block-indexed single-file archive: identical
	// warm-start and durability semantics, O(index) reopen.
	StoreArchive StoreKind = "archive"
	// StoreBinary is the binary-framed journal: identical semantics to
	// StoreJournal with the length-prefixed checksummed binary encoding
	// (docs/FORMAT.md) in place of JSON lines — the fast append path.
	StoreBinary StoreKind = "binary"
)

// AdaptiveConfig switches a run from the fixed rows x replicates budget
// to CI-targeted adaptive replication (internal/adaptive): a cell stops
// replicating once its confidence interval's relative half-width is at
// most Rel, after at least Min and at most Max replicates.
type AdaptiveConfig struct {
	// Rel is the target relative CI half-width; 0 means the adaptive
	// package default.
	Rel float64
	// Min and Max bound the per-cell replicate budget; 0 means the
	// adaptive package defaults.
	Min, Max int
	// Baseline, when set, names a baseline store file (journal or
	// archive): cells whose running interval has already shifted against
	// it get a tighter (Rel/2) target and are scheduled first.
	Baseline string

	// baselineOnce caches the loaded baseline summaries on this value,
	// so RunAll (and the CLI's run-all loop, which reuses one config)
	// reads and aggregates the baseline file once, not once per
	// experiment. Share one *AdaptiveConfig across runs to benefit.
	baselineOnce sync.Once
	baselineSums []*runstore.Summary
	baselineErr  error
}

// RunConfig is the typed form of everything `perfeval run` exposes as
// -D flags. The zero value runs sequentially in-process — the executor
// of choice for measurement-sensitive runs; setting any field routes
// execution through the concurrent scheduler (internal/sched).
type RunConfig struct {
	// Workers bounds concurrently executing units; 0 resolves to
	// GOMAXPROCS when the scheduler is engaged.
	Workers int
	// Retries is how many extra attempts a failed unit gets.
	Retries int
	// Timeout is the per-attempt wall-clock budget; 0 means none.
	Timeout time.Duration
	// JournalDir, when set, persists every completed unit to a
	// per-experiment store under it and warm-starts from whatever the
	// store already holds.
	JournalDir string
	// Store selects the backend behind JournalDir; zero means
	// StoreJournal.
	Store StoreKind
	// Shards, when > 0, partitions each experiment's design rows across
	// Shards cooperating processes; this process executes shard Shard.
	// Requires JournalDir and a fixed budget (no Adaptive).
	Shards int
	// Shard is this process's shard index in [0, Shards). Note the
	// zero-value hazard inherent to a config struct: a worker whose
	// generated config forgot to set Shard silently runs shard 0 and
	// exits clean. Scripts fanning out workers must set Shard explicitly
	// per worker and should cross-check coverage with a merged-journal
	// Inspect (the perfeval CLI refuses Shards > 1 without an explicit
	// -Dsched.shard for exactly this reason).
	Shard int
	// Adaptive, when non-nil, replaces the fixed replication budget with
	// CI-targeted sequential analysis.
	Adaptive *AdaptiveConfig
}

// concurrent reports whether any field routes execution through the
// scheduler.
func (cfg RunConfig) concurrent() bool {
	return cfg.Workers != 0 || cfg.Retries != 0 || cfg.Timeout != 0 ||
		cfg.JournalDir != "" || cfg.Store != "" || cfg.Shards != 0 || cfg.Adaptive != nil
}

// build assembles the executor the config describes: (nil, nil, nil)
// for the sequential default, otherwise a configured scheduler.
func (cfg RunConfig) build() (harness.Executor, *sched.Scheduler, error) {
	if !cfg.concurrent() {
		return nil, nil, nil
	}
	opts := sched.Options{
		Workers:    cfg.Workers,
		Retries:    cfg.Retries,
		Timeout:    cfg.Timeout,
		JournalDir: cfg.JournalDir,
		Shards:     cfg.Shards,
		Shard:      cfg.Shard,
	}
	if cfg.Workers < 0 {
		return nil, nil, fmt.Errorf("repro: Workers = %d, need >= 0", cfg.Workers)
	}
	switch cfg.Store {
	case "", StoreJournal:
		// The JSONL journal is the default backend.
	case StoreArchive:
		if cfg.JournalDir == "" {
			return nil, nil, fmt.Errorf("repro: Store %q requires JournalDir (the directory the per-experiment store files live in)", cfg.Store)
		}
		if cfg.Shards > 0 {
			return nil, nil, fmt.Errorf("repro: Store %q cannot combine with sharded execution: shard files are journals; archive the merged result instead", cfg.Store)
		}
		opts.OpenStore = func(dir, experiment string) (runstore.Store, error) {
			return archivestore.OpenDir(dir, experiment)
		}
	case StoreBinary:
		if cfg.JournalDir == "" {
			return nil, nil, fmt.Errorf("repro: Store %q requires JournalDir (the directory the per-experiment store files live in)", cfg.Store)
		}
		if cfg.Shards > 0 {
			return nil, nil, fmt.Errorf("repro: Store %q cannot combine with sharded execution: shard files are JSONL journals; convert the merged result instead", cfg.Store)
		}
		opts.OpenStore = func(dir, experiment string) (runstore.Store, error) {
			return runstore.OpenBinaryDir(dir, experiment)
		}
	default:
		return nil, nil, fmt.Errorf("repro: unknown store backend %q (want %q, %q, or %q)", cfg.Store, StoreJournal, StoreArchive, StoreBinary)
	}
	if cfg.Store == StoreJournal && cfg.JournalDir == "" {
		return nil, nil, fmt.Errorf("repro: Store %q requires JournalDir", cfg.Store)
	}
	if cfg.Shards > 0 && cfg.JournalDir == "" {
		return nil, nil, fmt.Errorf("repro: sharded execution requires JournalDir (shard files are the run's only output)")
	}
	if cfg.Adaptive != nil {
		if cfg.Shards > 0 {
			return nil, nil, fmt.Errorf("repro: sharded execution requires a fixed replication budget, not adaptive replication")
		}
		ctrl, err := cfg.Adaptive.controller()
		if err != nil {
			return nil, nil, err
		}
		opts.Controller = ctrl
	}
	s := sched.New(opts)
	return s, s, nil
}

// controller builds the adaptive controller, arming baseline-drift
// prioritization when a baseline store is named. The baseline file is
// loaded and summarized once per AdaptiveConfig value, however many
// runs share it.
func (a *AdaptiveConfig) controller() (*adaptive.Controller, error) {
	ctrl, err := adaptive.New(adaptive.Options{Rel: a.Rel, Min: a.Min, Max: a.Max})
	if err != nil {
		return nil, err
	}
	if a.Baseline != "" {
		a.baselineOnce.Do(func() {
			recs, err := runstore.LoadRecords(a.Baseline)
			if err != nil {
				a.baselineErr = fmt.Errorf("adaptive baseline: %w", err)
				return
			}
			a.baselineSums = runstore.Summarize(recs)
		})
		if a.baselineErr != nil {
			return nil, a.baselineErr
		}
		for _, s := range a.baselineSums {
			if err := ctrl.AddBaseline(s); err != nil {
				return nil, fmt.Errorf("adaptive baseline: %w", err)
			}
		}
	}
	return ctrl, nil
}

// Describe renders the one-line banner for the execution the config
// describes — worker count, store, sharding, adaptive targets — or ""
// for the sequential default. The perfeval CLI prints it before a
// scheduled run.
func (cfg RunConfig) Describe() string {
	if !cfg.concurrent() {
		return ""
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scheduler: %d workers", workers)
	if cfg.JournalDir != "" {
		switch cfg.Store {
		case StoreArchive:
			fmt.Fprintf(&b, ", archive store %s", cfg.JournalDir)
		case StoreBinary:
			fmt.Fprintf(&b, ", binary journal %s", cfg.JournalDir)
		default:
			fmt.Fprintf(&b, ", journal %s", cfg.JournalDir)
		}
	}
	if cfg.Shards > 0 {
		fmt.Fprintf(&b, ", shard %d of %d", cfg.Shard, cfg.Shards)
	}
	if a := cfg.Adaptive; a != nil {
		rel, min, max := a.Rel, a.Min, a.Max
		if rel == 0 {
			rel = adaptive.DefaultRel
		}
		if min == 0 {
			min = adaptive.DefaultMin
		}
		if max == 0 {
			max = adaptive.DefaultMax
		}
		fmt.Fprintf(&b, ", adaptive rel=%g min=%d max=%d", rel, min, max)
		if a.Baseline != "" {
			fmt.Fprintf(&b, " prioritize=%s", a.Baseline)
		}
	}
	return b.String()
}

// CellBudget is one design cell's replicate spend in an adaptive run.
type CellBudget struct {
	Run        int    // 1-based design row
	Assignment string // the cell's factor-level assignment
	Spent      int    // replicates charged (live + replayed)
	Fixed      int    // what the fixed budget would have spent
	Note       string // the controller's stop reason
}

// Budget itemizes what an adaptive run spent against the fixed
// rows x replicates budget it replaced. It is nil on fixed-budget runs —
// those spend uniformly, so there is no per-cell story to tell.
type Budget struct {
	Units       int // replicates spent (live + replayed)
	Executed    int // live runs
	Replayed    int // journal restores
	FixedBudget int // rows x replicates equivalent
	Cells       []CellBudget
}

// Saved returns the fraction of the fixed budget the adaptive run did
// not spend, in [0, 1]; 0 when there was no fixed budget to compare.
func (b *Budget) Saved() float64 {
	if b.FixedBudget <= 0 {
		return 0
	}
	return 1 - float64(b.Units)/float64(b.FixedBudget)
}

// String renders the budget report the perfeval CLI prints after each
// adaptive experiment.
func (b *Budget) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "adaptive budget report: %d replicates spent (%d live, %d replayed) vs fixed budget %d",
		b.Units, b.Executed, b.Replayed, b.FixedBudget)
	if b.FixedBudget > 0 {
		fmt.Fprintf(&sb, " (%.1f%% saved)", b.Saved()*100)
	}
	tab := NewTable().Header("run", "assignment", "reps", "fixed", "note")
	for _, c := range b.Cells {
		tab.Row(fmt.Sprintf("%d", c.Run), c.Assignment,
			fmt.Sprintf("%d", c.Spent), fmt.Sprintf("%d", c.Fixed), c.Note)
	}
	fmt.Fprintf(&sb, "\n%s", tab.String())
	return sb.String()
}

// Outcome is one experiment artifact regenerated by Run, together with
// the execution accounting the run produced.
type Outcome struct {
	// Result is the regenerated artifact.
	Result *Result
	// Budget itemizes per-cell replicate spend; nil unless the run was
	// driven by adaptive replication.
	Budget *Budget
	// Metrics snapshots the scheduler's metrics registry after the run;
	// nil on the sequential path, which schedules nothing and so has
	// nothing to measure.
	Metrics *Metrics
}

// Run regenerates the artifact with the given id (t1..t10, f1..f7,
// case-insensitive) under ctx through the execution cfg describes. The
// zero RunConfig runs sequentially; any configured field routes the run
// through the concurrent scheduler, bound to ctx via the context-scoped
// executor (harness.WithExecutor) — concurrent Run calls with different
// configs do not interfere.
//
// Cancel ctx to interrupt: the scheduler stops feeding work, drains
// in-flight units (each journaled as it completes), and Run returns the
// context error with the store valid and warm-startable — re-running
// the same config resumes where the interrupted run stopped.
func Run(ctx context.Context, id string, cfg RunConfig) (*Outcome, error) {
	ex, s, err := cfg.build()
	if err != nil {
		return nil, err
	}
	if ex != nil {
		ctx = harness.WithExecutor(ctx, ex)
	}
	r, err := paperexp.Run(ctx, id)
	if err != nil {
		return nil, err
	}
	o := &Outcome{Result: r, Budget: takeBudget(s)}
	if s != nil {
		m := s.MetricsSnapshot()
		o.Metrics = &m
	}
	return o, nil
}

// RunAll regenerates every artifact in paper order under ctx and cfg,
// stopping at the first failure (a canceled context included).
func RunAll(ctx context.Context, cfg RunConfig) ([]*Outcome, error) {
	var out []*Outcome
	for _, e := range Experiments() {
		o, err := Run(ctx, e.ID, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, o)
	}
	return out, nil
}

// takeBudget drains the scheduler's per-cell stats into a Budget,
// consuming them so a driver that executed no harness experiment cannot
// re-report its predecessor's spend.
func takeBudget(s *sched.Scheduler) *Budget {
	if s == nil {
		return nil
	}
	cells := s.TakeCellStats()
	if len(cells) == 0 {
		return nil
	}
	st := s.LastStats()
	b := &Budget{
		Units:       st.Units,
		Executed:    st.Executed,
		Replayed:    st.Replayed,
		FixedBudget: st.FixedBudget,
	}
	fixedPerCell := 0
	if len(cells) > 0 {
		fixedPerCell = st.FixedBudget / len(cells)
	}
	for _, c := range cells {
		b.Cells = append(b.Cells, CellBudget{
			Run:        c.Row + 1,
			Assignment: c.Assignment.String(),
			Spent:      c.Spent(),
			Fixed:      fixedPerCell,
			Note:       c.Note,
		})
	}
	return b
}
