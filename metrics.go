package repro

import (
	"context"
	"fmt"
	"io"
	"net/http"

	"repro/internal/collector"
	"repro/internal/obs"
)

// Metrics is a point-in-time snapshot of the self-measurement layer
// (internal/obs): every counter, gauge, and histogram the scheduler,
// runstore, and collector registered, sorted by name. It marshals
// directly to the JSON exposition format and renders the Prometheus
// text format via WritePrometheus. docs/OBSERVABILITY.md catalogs the
// metric names and their stability policy.
type Metrics = obs.Snapshot

// MetricsSnapshot snapshots the process-wide metrics registry — what a
// local Run or embedded library use accumulated so far. Scheduler runs
// configured with their own registry are not included; their snapshots
// ride on Outcome.Metrics and WorkReport.Metrics instead.
func MetricsSnapshot() Metrics { return obs.Default().Snapshot() }

// FetchMetrics polls a running collector daemon's GET /v1/metrics
// endpoint and returns the response body: Prometheus text format for
// format "" / "prometheus" / "text", the JSON exposition for "json".
// It is the engine of `perfeval metrics`.
func FetchMetrics(ctx context.Context, url, format string) (string, error) {
	u := url + collector.PathMetrics
	if format != "" {
		u += "?format=" + format
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return "", fmt.Errorf("repro: metrics request: %w", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", fmt.Errorf("repro: fetching metrics: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", fmt.Errorf("repro: reading metrics: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("repro: metrics endpoint answered %s: %s", resp.Status, body)
	}
	return string(body), nil
}
