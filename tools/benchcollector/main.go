// Command benchcollector measures the run collector's ingest path and
// writes the BENCH_collector.json snapshot: streaming throughput
// (records/s) at increasing worker concurrency, plus the wall time of
// the merge-after-collect step that folds the collector's shard stores
// into one canonical journal.
//
// The workload isolates the collection machinery itself: synthetic
// pre-built records are streamed through the real HTTP stack (loopback
// TCP, the production client batching path, per-experiment backpressure
// armed), so the numbers track the wire framing, admission control, and
// shard-store append path rather than any experiment runner.
//
// Run via `make bench-collector`; regenerate after collector-path
// changes and commit the diff alongside them.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/collector"
	"repro/internal/collector/client"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/runstore/shardstore"
)

// benchExperiment names the synthetic workload's experiment.
const benchExperiment = "bench ingest"

// result is one fleet configuration's measurement.
type result struct {
	Workers          int     `json:"workers"`
	Wire             string  `json:"wire"`   // ingest framing: "json" or "binary"
	Commit           string  `json:"commit"` // durability mode: "group" or "per-record"
	Records          int     `json:"records"`
	Batch            int     `json:"batch"`
	IngestSeconds    float64 `json:"ingest_seconds"`
	RecordsPerSecond float64 `json:"records_per_second"`
	MergeSeconds     float64 `json:"merge_seconds"`
	MergedRecords    int     `json:"merged_records"`
	// ServerMetrics is the daemon's final metrics snapshot for this
	// configuration — the interior of the records/s headline (ingest
	// bytes, lease churn, backpressure rejections, fsync counts).
	ServerMetrics obs.Snapshot `json:"server_metrics"`
}

// snapshot is the BENCH_collector.json document.
type snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Note      string   `json:"note"`
	Runs      []result `json:"runs"`
}

func main() {
	out := flag.String("out", "BENCH_collector.json", "snapshot output path")
	total := flag.Int("records", 20000, "records streamed per fleet configuration")
	batch := flag.Int("batch", 256, "records per ingest batch")
	flag.Parse()

	snap := snapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Note:      "synthetic records over loopback HTTP; one shard lease per worker; merge folds the collector's shard stores into one canonical journal",
	}
	for _, fleet := range []int{1, 4, 16} {
		for _, wire := range []string{"json", "binary"} {
			for _, commit := range []string{"group", "per-record"} {
				r, err := run(fleet, *total, *batch, wire, commit)
				if err != nil {
					log.Fatalf("benchcollector: %d worker(s), %s wire, %s commit: %v", fleet, wire, commit, err)
				}
				fmt.Printf("%2d worker(s), %-6s wire, %-10s commit: %d records ingested in %.3fs (%.0f records/s), merged in %.3fs\n",
					fleet, wire, commit, r.Records, r.IngestSeconds, r.RecordsPerSecond, r.MergeSeconds)
				snap.Runs = append(snap.Runs, r)
			}
		}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("benchcollector: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("benchcollector: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// run measures one fleet configuration: `fleet` concurrent workers,
// each holding one shard lease of a `fleet`-shard experiment, streaming
// its pre-bucketed share of `total` records in `batch`-record ingests
// over the given wire framing ("json" or "binary"). The commit mode
// selects the durability path: "group" is the group-commit engine (one
// fsync per gather window), "per-record" is the pre-group-commit
// baseline that appends and fsyncs every record individually.
func run(fleet, total, batch int, wire, commit string) (result, error) {
	dir, err := os.MkdirTemp("", "benchcollector-")
	if err != nil {
		return result{}, err
	}
	defer os.RemoveAll(dir)

	// Each configuration gets its own registry so the embedded snapshot
	// is this run's accounting alone, not the process-lifetime total.
	reg := obs.NewRegistry()
	window := time.Duration(0) // 0 resolves to the production default
	if commit == "per-record" {
		window = -1 // negative disables group commit: append+fsync per record
	}
	srv, err := collector.New(collector.Config{Dir: dir, Shards: fleet, Metrics: reg, CommitWindow: window})
	if err != nil {
		return result{}, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return result{}, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Pre-build and pre-bucket the records so the timed section is pure
	// collection: encode, ship, admit, append.
	buckets := make([][]runstore.Record, fleet)
	for i := 0; i < total; i++ {
		rec, err := runstore.NormalizeAppend(runstore.Record{
			Experiment: benchExperiment,
			Row:        i % 2000,
			Replicate:  i / 2000,
			Assignment: map[string]string{"cell": strconv.Itoa(i % 2000)},
			Responses:  map[string]float64{"ms": float64(i%97) + 0.5},
		})
		if err != nil {
			return result{}, err
		}
		shard := runstore.ShardIndex(rec.Hash, fleet)
		buckets[shard] = append(buckets[shard], rec)
	}

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, fleet)
	for k := 0; k < fleet; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[k] = stream(base, fmt.Sprintf("bench-%d", k), buckets, batch, wire == "binary")
		}()
	}
	wg.Wait()
	ingest := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return result{}, err
		}
	}

	mergeStart := time.Now()
	merged := filepath.Join(dir, "merged.jsonl")
	ms, err := runstore.Merge(shardstore.Paths(dir, benchExperiment, fleet), merged)
	if err != nil {
		return result{}, err
	}
	mergeWall := time.Since(mergeStart)
	if ms.Kept != total {
		return result{}, fmt.Errorf("merge kept %d record(s), want %d", ms.Kept, total)
	}
	return result{
		Workers:          fleet,
		Wire:             wire,
		Commit:           commit,
		Records:          total,
		Batch:            batch,
		IngestSeconds:    ingest.Seconds(),
		RecordsPerSecond: float64(total) / ingest.Seconds(),
		MergeSeconds:     mergeWall.Seconds(),
		MergedRecords:    ms.Kept,
		ServerMetrics:    reg.Snapshot(),
	}, nil
}

// stream is one bench worker: acquire a shard lease, ingest that
// shard's bucket in batches, release complete.
func stream(base, name string, buckets [][]runstore.Record, batch int, binary bool) error {
	ctx := context.Background()
	c := client.New(base, nil)
	c.SetBinary(binary)
	grant, err := c.Acquire(ctx, name, benchExperiment)
	if err != nil {
		return err
	}
	recs := buckets[grant.Shard]
	for len(recs) > 0 {
		n := min(batch, len(recs))
		if err := c.Ingest(ctx, grant.Lease, recs[:n]); err != nil {
			return err
		}
		recs = recs[n:]
	}
	return c.Release(ctx, grant.Lease, true)
}
