// Command docscheck is the documentation linter behind `make docs-check`:
// it fails when intra-repo markdown links in README.md or docs/ point at
// files that do not exist, when a checked package lacks a package
// comment, or when an exported identifier in a checked package lacks a
// doc comment. It runs on the standard library alone (go/parser +
// go/ast), so CI needs nothing beyond the Go toolchain.
//
// Usage (from the repository root):
//
//	go run ./tools/docscheck
//
// The package list mirrors the subsystems whose doc contracts the
// documentation layer promises (see docs/ARCHITECTURE.md); extend
// checkedPackages when a new subsystem lands.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// checkedPackages are the directories whose exported identifiers must
// carry doc comments. Test files are excluded; external test packages
// are skipped.
var checkedPackages = []string{
	".", // the public repro package at the repository root
	"internal/runstore",
	"internal/runstore/shardstore",
	"internal/runstore/archivestore",
	"internal/runstore/storetest",
	"internal/sched",
	"internal/adaptive",
	"internal/harness",
	"internal/collector",
	"internal/collector/client",
	"internal/collector/soaktest",
	"internal/obs",
	"internal/warehouse",
}

// checkedMarkdown are the markdown files (or directories of them) whose
// intra-repo links must resolve.
var checkedMarkdown = []string{"README.md", "docs"}

func main() {
	var problems []string
	problems = append(problems, checkLinks()...)
	problems = append(problems, checkGodoc()...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// linkRE matches markdown link targets: [text](target).
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies that every relative link target in the checked
// markdown files points at an existing file or directory. External
// schemes and pure anchors are skipped; an anchor suffix on a file link
// is stripped (anchor names themselves are not verified).
func checkLinks() []string {
	var problems []string
	var files []string
	for _, root := range checkedMarkdown {
		info, err := os.Stat(root)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", root, err))
			continue
		}
		if !info.IsDir() {
			files = append(files, root)
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", root, err))
		}
	}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
					continue
				}
				if idx := strings.IndexByte(target, '#'); idx >= 0 {
					target = target[:idx]
				}
				if target == "" {
					continue
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					problems = append(problems, fmt.Sprintf("%s:%d: broken link %q (%s does not exist)", file, i+1, m[1], resolved))
				}
			}
		}
	}
	return problems
}

// checkGodoc verifies that each checked package has a package comment
// and that every exported top-level identifier — functions, methods on
// exported receivers, types, and const/var groups — carries a doc
// comment.
func checkGodoc() []string {
	var problems []string
	for _, dir := range checkedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			problems = append(problems, fmt.Sprintf("%s: %v", dir, err))
			continue
		}
		for name, pkg := range pkgs {
			if strings.HasSuffix(name, "_test") {
				continue
			}
			hasPkgDoc := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					hasPkgDoc = true
				}
			}
			if !hasPkgDoc {
				problems = append(problems, fmt.Sprintf("%s: package %s has no package comment (add a doc.go)", dir, name))
			}
			for fileName, f := range pkg.Files {
				problems = append(problems, checkFileDecls(fset, fileName, f)...)
			}
		}
	}
	return problems
}

// checkFileDecls reports exported declarations without doc comments in
// one parsed file.
func checkFileDecls(fset *token.FileSet, fileName string, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !receiverExported(d.Recv) {
				continue // a method on an unexported type is not API
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil {
						report(ts.Pos(), "type", ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				if d.Doc != nil {
					continue // a group comment covers the whole block
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							report(n.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// receiverExported reports whether a method's receiver names an
// exported type.
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
