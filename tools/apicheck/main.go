// Command apicheck is the API-compatibility gate behind `make check`:
// it extracts the exported surface of the public repro package (the
// repository root) and compares it against the checked-in golden file
// api/repro.txt. A PR that changes the public API — removes an
// identifier, changes a signature, adds a new one — fails the build
// until the golden file is regenerated with -update, which makes every
// API change an explicit, reviewable diff instead of a silent drift.
//
// Usage (from the repository root):
//
//	go run ./tools/apicheck           # verify
//	go run ./tools/apicheck -update   # regenerate api/repro.txt
//
// Like tools/docscheck it runs on the standard library alone
// (go/parser + go/printer), so CI needs nothing beyond the toolchain.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
)

// goldenPath is where the guarded API surface lives.
const goldenPath = "api/repro.txt"

func main() {
	update := flag.Bool("update", false, "rewrite "+goldenPath+" with the current surface")
	flag.Parse()

	surface, err := exportedSurface(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "apicheck:", err)
		os.Exit(1)
	}
	current := strings.Join(surface, "\n") + "\n"

	if *update {
		if err := os.MkdirAll("api", 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(goldenPath, []byte(current), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apicheck:", err)
			os.Exit(1)
		}
		fmt.Printf("apicheck: wrote %s (%d declarations)\n", goldenPath, len(surface))
		return
	}

	goldenBytes, err := os.ReadFile(goldenPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apicheck: %v\nrun `go run ./tools/apicheck -update` to create the golden file\n", err)
		os.Exit(1)
	}
	golden := strings.Split(strings.TrimRight(string(goldenBytes), "\n"), "\n")
	if diff := diffLines(golden, surface); len(diff) > 0 {
		for _, d := range diff {
			fmt.Fprintln(os.Stderr, d)
		}
		fmt.Fprintf(os.Stderr, "apicheck: public API surface differs from %s (%d line(s))\n", goldenPath, len(diff))
		fmt.Fprintln(os.Stderr, "if the change is intentional, regenerate with: go run ./tools/apicheck -update")
		os.Exit(1)
	}
	fmt.Printf("apicheck: ok (%d declarations)\n", len(surface))
}

// exportedSurface parses the package in dir (tests excluded) and
// returns one normalized line per exported declaration — functions,
// methods on exported receivers, types, and exported const/var names —
// sorted for a stable diff.
func exportedSurface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	for name, pkg := range pkgs {
		if strings.HasSuffix(name, "_test") || name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				lines = append(lines, declLines(fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines, nil
}

// declLines renders the exported API lines of one top-level declaration.
func declLines(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		recv := ""
		if d.Recv != nil && len(d.Recv.List) > 0 {
			rt := typeString(fset, d.Recv.List[0].Type)
			if !exportedReceiver(rt) {
				return nil
			}
			recv = "(" + rt + ") "
		}
		out = append(out, "func "+recv+d.Name.Name+strings.TrimPrefix(typeString(fset, d.Type), "func"))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				assign := " "
				if s.Assign != token.NoPos {
					assign = " = "
				}
				out = append(out, "type "+s.Name.Name+assign+typeSummary(fset, s.Type))
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					kw := "var"
					if d.Tok == token.CONST {
						kw = "const"
					}
					typ := ""
					if s.Type != nil {
						typ = " " + typeString(fset, s.Type)
					}
					out = append(out, kw+" "+n.Name+typ)
				}
			}
		}
	}
	return out
}

// exportedReceiver reports whether a method receiver type ("*Store",
// "Budget") names an exported type.
func exportedReceiver(rt string) bool {
	rt = strings.TrimPrefix(rt, "*")
	if i := strings.IndexByte(rt, '['); i >= 0 { // generic receiver params
		rt = rt[:i]
	}
	return rt != "" && ast.IsExported(rt)
}

// typeSummary renders a type expression; struct and interface bodies
// are expanded so field additions and removals show up in the surface.
func typeSummary(fset *token.FileSet, expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.StructType:
		var fields []string
		for _, f := range t.Fields.List {
			ft := typeString(fset, f.Type)
			if len(f.Names) == 0 {
				if ast.IsExported(strings.TrimPrefix(ft, "*")) {
					fields = append(fields, ft) // exported embedded field
				}
				continue
			}
			for _, n := range f.Names {
				if n.IsExported() {
					fields = append(fields, n.Name+" "+ft)
				}
			}
		}
		return "struct { " + strings.Join(fields, "; ") + " }"
	case *ast.InterfaceType:
		var methods []string
		for _, m := range t.Methods.List {
			mt := typeString(fset, m.Type)
			if len(m.Names) == 0 {
				methods = append(methods, mt)
				continue
			}
			for _, n := range m.Names {
				if n.IsExported() {
					methods = append(methods, n.Name+strings.TrimPrefix(mt, "func"))
				}
			}
		}
		return "interface { " + strings.Join(methods, "; ") + " }"
	default:
		return typeString(fset, expr)
	}
}

// spaceRE collapses the whitespace go/printer introduces.
var spaceRE = regexp.MustCompile(`\s+`)

// typeString prints a type expression as normalized single-line source.
func typeString(fset *token.FileSet, expr ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, expr); err != nil {
		return fmt.Sprintf("<unprintable: %v>", err)
	}
	return spaceRE.ReplaceAllString(buf.String(), " ")
}

// diffLines reports golden/current mismatches as +/- lines.
func diffLines(golden, current []string) []string {
	goldenSet := make(map[string]bool, len(golden))
	for _, g := range golden {
		goldenSet[g] = true
	}
	currentSet := make(map[string]bool, len(current))
	for _, c := range current {
		currentSet[c] = true
	}
	var diff []string
	for _, g := range golden {
		if !currentSet[g] {
			diff = append(diff, "- "+g)
		}
	}
	for _, c := range current {
		if !goldenSet[c] {
			diff = append(diff, "+ "+c)
		}
	}
	return diff
}
