// Command benchcodec measures the record codecs head to head and
// writes the BENCH_codec.json snapshot: the JSON (NDJSON journal) and
// binary (length-prefixed checksummed frame) encodings over the same
// 10^5-record workload, through the four paths where the codec is the
// cost — encode, decode, store scan (open + full read), and a two-source
// merge into a same-format destination.
//
// The headline is the binary/JSON throughput ratio per path; the
// acceptance bar for the binary format is >= 2x on the bulk write
// (merge) and encode paths. Run via `make bench-codec`; regenerate
// after codec changes and commit the diff alongside them.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"repro/internal/runstore"
)

// result is one (operation, format) measurement: the best wall time of
// `rounds` runs over the full record set.
type result struct {
	Op               string  `json:"op"`
	Format           string  `json:"format"`
	Records          int     `json:"records"`
	Seconds          float64 `json:"seconds"`
	RecordsPerSecond float64 `json:"records_per_second"`
}

// snapshot is the BENCH_codec.json document.
type snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Note      string   `json:"note"`
	Records   int      `json:"records"`
	Runs      []result `json:"runs"`
	// Ratios maps each operation to binary throughput / JSON
	// throughput — the speedup the binary codec buys on that path.
	Ratios map[string]float64 `json:"ratios"`
}

func main() {
	out := flag.String("out", "BENCH_codec.json", "snapshot output path")
	total := flag.Int("records", 100_000, "records per measurement")
	rounds := flag.Int("rounds", 3, "repetitions per measurement (best kept)")
	flag.Parse()

	recs := buildRecords(*total)
	snap := snapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Note:      "same records through both codecs; scan = open + full read of a one-file store; merge = two half-size sources into a same-format destination",
		Records:   *total,
		Ratios:    map[string]float64{},
	}

	dir, err := os.MkdirTemp("", "benchcodec-")
	if err != nil {
		log.Fatalf("benchcodec: %v", err)
	}
	defer os.RemoveAll(dir)

	ops := []struct {
		op    string
		setup func(format string) (func() error, error)
	}{
		{"encode", func(format string) (func() error, error) {
			encode := runstore.EncodeWire
			if format == "binary" {
				encode = runstore.EncodeWireBinary
			}
			return func() error {
				for _, rec := range recs {
					if err := encode(io.Discard, rec); err != nil {
						return err
					}
				}
				return nil
			}, nil
		}},
		{"decode", func(format string) (func() error, error) {
			encode, decode := runstore.EncodeWire, runstore.DecodeWire
			if format == "binary" {
				encode, decode = runstore.EncodeWireBinary, runstore.DecodeWireBinary
			}
			var buf bytes.Buffer
			for _, rec := range recs {
				if err := encode(&buf, rec); err != nil {
					return nil, err
				}
			}
			data := buf.Bytes()
			want := len(recs)
			return func() error {
				n, err := decode(bytes.NewReader(data), func(runstore.Record) error { return nil })
				if err != nil {
					return err
				}
				if n != want {
					return fmt.Errorf("decoded %d record(s), want %d", n, want)
				}
				return nil
			}, nil
		}},
		{"scan", func(format string) (func() error, error) {
			path := filepath.Join(dir, "scan-"+format+extOf(format))
			if err := writeStore(path, format, recs); err != nil {
				return nil, err
			}
			want := len(recs)
			return func() error {
				n := 0
				err := scanStore(path, format, func(runstore.Record) { n++ })
				if err != nil {
					return err
				}
				if n != want {
					return fmt.Errorf("scanned %d record(s), want %d", n, want)
				}
				return nil
			}, nil
		}},
		{"merge", func(format string) (func() error, error) {
			half := len(recs) / 2
			s0 := filepath.Join(dir, "m0-"+format+extOf(format))
			s1 := filepath.Join(dir, "m1-"+format+extOf(format))
			if err := writeStore(s0, format, recs[:half]); err != nil {
				return nil, err
			}
			if err := writeStore(s1, format, recs[half:]); err != nil {
				return nil, err
			}
			dst := filepath.Join(dir, "merged-"+format+extOf(format))
			want := len(recs)
			return func() error {
				ms, err := runstore.Merge([]string{s0, s1}, dst)
				if err != nil {
					return err
				}
				if ms.Kept != want {
					return fmt.Errorf("merge kept %d record(s), want %d", ms.Kept, want)
				}
				return nil
			}, nil
		}},
	}

	for _, op := range ops {
		var perFormat [2]float64
		for i, format := range []string{"json", "binary"} {
			fn, err := op.setup(format)
			if err != nil {
				log.Fatalf("benchcodec: %s/%s setup: %v", op.op, format, err)
			}
			best := time.Duration(0)
			for r := 0; r < *rounds; r++ {
				start := time.Now()
				if err := fn(); err != nil {
					log.Fatalf("benchcodec: %s/%s: %v", op.op, format, err)
				}
				if wall := time.Since(start); best == 0 || wall < best {
					best = wall
				}
			}
			rps := float64(len(recs)) / best.Seconds()
			perFormat[i] = rps
			fmt.Printf("%-6s %-6s %9.3fs  %12.0f records/s\n", op.op, format, best.Seconds(), rps)
			snap.Runs = append(snap.Runs, result{
				Op: op.op, Format: format, Records: len(recs),
				Seconds: best.Seconds(), RecordsPerSecond: rps,
			})
		}
		snap.Ratios[op.op] = perFormat[1] / perFormat[0]
		fmt.Printf("%-6s binary/json ratio %.2fx\n", op.op, snap.Ratios[op.op])
	}

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("benchcodec: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("benchcodec: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// buildRecords shapes the workload like the in-repo codec benchmarks: a
// two-field assignment with a 64-byte pad, one response, pre-normalized
// so the timed sections measure the codec rather than canonicalization.
func buildRecords(n int) []runstore.Record {
	pad := strings.Repeat("x", 64)
	recs := make([]runstore.Record, 0, n)
	for i := 0; i < n; i++ {
		rec, err := runstore.NormalizeAppend(runstore.Record{
			Experiment: "bench-codec",
			Row:        i,
			Replicate:  0,
			Assignment: map[string]string{"cell": fmt.Sprintf("c%06d", i), "pad": pad},
			Responses:  map[string]float64{"ms": float64(i) + 0.5},
		})
		if err != nil {
			log.Fatalf("benchcodec: %v", err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func extOf(format string) string {
	if format == "binary" {
		return runstore.BinaryExt
	}
	return ".jsonl"
}

// writeStore bulk-writes the records as one store file: the exact bytes
// the journal's Append would produce (EncodeWire/EncodeWireBinary emit
// the persisted framing), without paying a per-record fsync in setup.
func writeStore(path, format string, recs []runstore.Record) error {
	var buf bytes.Buffer
	encode := runstore.EncodeWire
	if format == "binary" {
		buf.WriteString(runstore.BinaryMagic)
		encode = runstore.EncodeWireBinary
	}
	for _, rec := range recs {
		if err := encode(&buf, rec); err != nil {
			return err
		}
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// scanStore opens the store and reads every record through the public
// Scan sequence.
func scanStore(path, format string, fn func(runstore.Record)) error {
	if format == "binary" {
		j, err := runstore.OpenBinary(path)
		if err != nil {
			return err
		}
		defer j.Close()
		for rec, err := range j.Scan() {
			if err != nil {
				return err
			}
			fn(rec)
		}
		return nil
	}
	j, err := runstore.Open(path)
	if err != nil {
		return err
	}
	defer j.Close()
	for rec, err := range j.Scan() {
		if err != nil {
			return err
		}
		fn(rec)
	}
	return nil
}
