// Command benchwarehouse measures what the warehouse index buys and
// writes the BENCH_warehouse.json snapshot: over a directory of 20
// runs holding 10^5 records total, it times the cold index build, the
// steady-state incremental refresh (every source unchanged —
// stat-skips only), the four query kinds answered from the index, and
// the same cell-history answer recomputed by brute force from the raw
// stores.
//
// The headline is the query-vs-rescan speedup; the acceptance bar for
// the index is >= 10x on cell history at this scale. Run via
// `make bench-warehouse`; regenerate after warehouse changes and
// commit the diff alongside them.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/stats"
	"repro/internal/warehouse"
)

// result is one timed operation: best wall time of `rounds` runs.
type result struct {
	Op      string  `json:"op"`
	Seconds float64 `json:"seconds"`
	// PerSecond is records/s for ingest ops and queries/s for query ops.
	PerSecond float64 `json:"per_second"`
}

// snapshot is the BENCH_warehouse.json document.
type snapshot struct {
	Date      string   `json:"date"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Note      string   `json:"note"`
	Records   int      `json:"records"`
	RunsCount int      `json:"runs_count"`
	Runs      []result `json:"runs"`
	// QueryVsRescan is history-query throughput / brute-force rescan
	// throughput — the speedup the index buys over re-reading stores.
	QueryVsRescan float64 `json:"query_vs_rescan"`
}

func main() {
	out := flag.String("out", "BENCH_warehouse.json", "snapshot output path")
	total := flag.Int("records", 100_000, "records across all runs")
	runsN := flag.Int("runs", 20, "store files the records are spread over")
	rounds := flag.Int("rounds", 3, "repetitions per measurement (best kept)")
	flag.Parse()

	dir, err := os.MkdirTemp("", "benchwarehouse-")
	if err != nil {
		log.Fatalf("benchwarehouse: %v", err)
	}
	defer os.RemoveAll(dir)

	cellHash := buildStores(dir, *runsN, *total)
	snap := snapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Note:      "one directory, records spread over runs; cold = full ingest, refresh = all sources unchanged (stat-skips), queries answered from the index, rescan = the same history recomputed by streaming every store",
		Records:   *total,
		RunsCount: *runsN,
	}

	record := func(op string, perOp float64, fn func() error) float64 {
		best := time.Duration(0)
		for r := 0; r < *rounds; r++ {
			start := time.Now()
			if err := fn(); err != nil {
				log.Fatalf("benchwarehouse: %s: %v", op, err)
			}
			if wall := time.Since(start); best == 0 || wall < best {
				best = wall
			}
		}
		ps := perOp / best.Seconds()
		fmt.Printf("%-18s %9.4fs  %14.0f /s\n", op, best.Seconds(), ps)
		snap.Runs = append(snap.Runs, result{Op: op, Seconds: best.Seconds(), PerSecond: ps})
		return ps
	}

	// Cold build: a fresh index file every round.
	record("cold-build", float64(*total), func() error {
		idx := filepath.Join(dir, warehouse.IndexFile)
		if err := os.RemoveAll(idx); err != nil {
			return err
		}
		w, err := warehouse.Open(dir, warehouse.Options{Metrics: obs.NewRegistry()})
		if err != nil {
			return err
		}
		defer w.Close()
		rs, err := w.Refresh()
		if err != nil {
			return err
		}
		if rs.Ingested != *runsN || rs.Records != *total {
			return fmt.Errorf("cold build ingested %d run(s) / %d record(s), want %d / %d",
				rs.Ingested, rs.Records, *runsN, *total)
		}
		return nil
	})

	// The remaining measurements share one warm warehouse — the daemon's
	// steady state.
	w, err := warehouse.Open(dir, warehouse.Options{Metrics: obs.NewRegistry()})
	if err != nil {
		log.Fatalf("benchwarehouse: %v", err)
	}
	defer w.Close()
	if _, err := w.Refresh(); err != nil {
		log.Fatalf("benchwarehouse: %v", err)
	}

	record("refresh-unchanged", float64(*runsN), func() error {
		rs, err := w.Refresh()
		if err != nil {
			return err
		}
		if rs.Unchanged != *runsN {
			return fmt.Errorf("refresh = %+v, want all %d unchanged", rs, *runsN)
		}
		return nil
	})

	var historyPS float64
	for _, q := range []struct {
		op  string
		req warehouse.Request
	}{
		{"query-runs", warehouse.Request{Kind: warehouse.KindRuns}},
		{"query-history", warehouse.Request{Kind: warehouse.KindHistory, Cell: cellHash, Response: "ms"}},
		{"query-trends", warehouse.Request{Kind: warehouse.KindTrends}},
		{"query-regressions", warehouse.Request{Kind: warehouse.KindRegressions}},
	} {
		ps := record(q.op, 1, func() error {
			res, err := w.Query(q.req)
			if err != nil {
				return err
			}
			if q.req.Kind == warehouse.KindHistory && len(res.History) != *runsN {
				return fmt.Errorf("history = %d point(s), want %d", len(res.History), *runsN)
			}
			return nil
		})
		if q.op == "query-history" {
			historyPS = ps
		}
	}

	// The foil: the same cell history recomputed by streaming every
	// store file — what every query would cost without the index.
	rescanPS := record("rescan-history", 1, func() error {
		points, err := rescanHistory(dir, cellHash)
		if err != nil {
			return err
		}
		if points != *runsN {
			return fmt.Errorf("rescan = %d point(s), want %d", points, *runsN)
		}
		return nil
	})

	snap.QueryVsRescan = historyPS / rescanPS
	fmt.Printf("history query vs raw rescan: %.1fx\n", snap.QueryVsRescan)

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		log.Fatalf("benchwarehouse: %v", err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("benchwarehouse: %v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// buildStores writes runsN journal files totalling total records: one
// tracked cell present in every run (the history/regression target)
// plus filler cells that give the index realistic width. Returns the
// tracked cell's hash. Files are written as raw journal bytes (the
// exact Append framing) so setup doesn't pay 10^5 fsyncs.
func buildStores(dir string, runsN, total int) string {
	tracked := map[string]string{"workload": "tpch-q1", "cache": "1MB"}
	perRun := total / runsN
	for run := 0; run < runsN; run++ {
		var buf bytes.Buffer
		n := perRun
		if run == runsN-1 {
			n = total - perRun*(runsN-1)
		}
		for i := 0; i < n; i++ {
			// Every record needs a distinct (experiment, cell, replicate)
			// key: stores are last-wins, so colliding keys would shrink
			// the workload. The tracked cell takes 32 replicates; filler
			// cells take 8 each.
			assign, rep := tracked, i
			if i >= 32 { // the rest of the run is filler cells
				assign, rep = map[string]string{"workload": fmt.Sprintf("w%04d", i/8), "cache": "1MB"}, i%8
			}
			rec, err := runstore.NormalizeAppend(runstore.Record{
				Experiment: "bench-warehouse",
				Row:        i,
				Replicate:  rep,
				Assignment: assign,
				Responses:  map[string]float64{"ms": 100 + float64(run) + float64(rep%8)*0.1},
			})
			if err != nil {
				log.Fatalf("benchwarehouse: %v", err)
			}
			if err := runstore.EncodeWire(&buf, rec); err != nil {
				log.Fatalf("benchwarehouse: %v", err)
			}
		}
		path := filepath.Join(dir, fmt.Sprintf("run%02d.jsonl", run))
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			log.Fatalf("benchwarehouse: %v", err)
		}
		// Distinct mtimes pin the oldest-first run order.
		mod := time.Now().Add(time.Duration(run-runsN) * time.Second)
		if err := os.Chtimes(path, mod, mod); err != nil {
			log.Fatalf("benchwarehouse: %v", err)
		}
	}
	return runstore.AssignmentHash(tracked)
}

// rescanHistory is the no-index foil: stream every store in the
// directory, gather the tracked cell's raw samples per run, and rebuild
// each run's mean CI — the work Query answers from the index.
func rescanHistory(dir, cellHash string) (points int, err error) {
	sources, err := warehouse.Discover(dir)
	if err != nil {
		return 0, err
	}
	for _, rel := range sources {
		var vals []float64
		for rec, err := range runstore.ScanFile(filepath.Join(dir, filepath.FromSlash(rel))) {
			if err != nil {
				return 0, err
			}
			if rec.Hash == cellHash {
				vals = append(vals, rec.Responses["ms"])
			}
		}
		if len(vals) == 0 {
			continue
		}
		if _, err := stats.MeanCI(vals, 0.95); err != nil {
			return 0, err
		}
		points++
	}
	return points, nil
}
