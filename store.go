package repro

import (
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"repro/internal/runstore"
	"repro/internal/runstore/archivestore"
	"repro/internal/runstore/shardstore"
	"repro/internal/warehouse"
)

// Record is one stored execution unit: the responses measured for one
// replicate of one design row of one experiment.
type Record = runstore.Record

// Info summarizes one store file's shape without opening it for
// writing.
type Info = runstore.Info

// MergeStats reports what one Merge did.
type MergeStats = runstore.MergeStats

// Conflict is one key whose stored measurements disagree across merge
// sources.
type Conflict = runstore.Conflict

// CompactStats reports what one Compact did.
type CompactStats = runstore.CompactStats

// ArchiveExt is the file extension of block-indexed archive files; a
// Merge or Convert destination carrying it is written as an archive.
const ArchiveExt = archivestore.Ext

// ArchiveExtZ is the compressed-archive destination extension: the same
// block-indexed layout with every record block DEFLATE-compressed
// (docs/FORMAT.md §6). The file carries the same magic, so readers need
// no hint — the extension only selects the encoding at write time.
const ArchiveExtZ = archivestore.ExtZ

// Store is a read-only, format-sniffing view of one store file — a
// JSONL journal or a block-indexed archive, dispatched by content, so
// renamed files keep working. It never creates, repairs, or truncates
// the file; a torn trailing frame is reported via Info and skipped by
// Scan exactly as a read-write open would drop it.
type Store struct {
	path string
	info Info
}

// Open opens the store file at path read-only. The file's shape is
// probed up front, so a missing, corrupt, or misframed file fails here
// rather than mid-iteration.
func Open(path string) (*Store, error) {
	info, err := runstore.Inspect(path)
	if err != nil {
		return nil, err
	}
	return &Store{path: path, info: info}, nil
}

// Path returns the file the store reads.
func (s *Store) Path() string { return s.path }

// Info reports the file's shape as probed by Open.
func (s *Store) Info() Info { return s.info }

// Scan streams the file's distinct last-wins records in its
// deterministic first-appended order without materializing the record
// set — the iteration contract is documented in docs/FORMAT.md. Errors
// surface in the sequence and stop it.
func (s *Store) Scan() iter.Seq2[Record, error] {
	return runstore.ScanFile(s.path)
}

// Records materializes Scan into a slice — a convenience for the few
// sites that truly need the whole record set at once.
func (s *Store) Records() ([]Record, error) {
	return runstore.Collect(s.Scan())
}

// Collect materializes a record sequence into a slice, stopping at the
// first error.
func Collect(seq iter.Seq2[Record, error]) ([]Record, error) {
	return runstore.Collect(seq)
}

// Inspect reports the shape of the store at path — record and distinct
// counts, torn or truncated tails, backend-specific detail — without
// opening it for writing. A directory is inspected as the warehouse
// catalog would see it: every discovered store file contributes to the
// aggregate counts, and Detail reports how many stores were found (use
// InspectDir for the per-store breakdown).
func Inspect(path string) (Info, error) {
	st, err := os.Stat(path)
	if err != nil {
		return Info{}, fmt.Errorf("repro: %w", err)
	}
	if !st.IsDir() {
		return runstore.Inspect(path)
	}
	stores, err := InspectDir(path)
	if err != nil {
		return Info{}, err
	}
	var agg Info
	for _, s := range stores {
		agg.Records += s.Info.Records
		agg.Distinct += s.Info.Distinct
		if s.Info.Torn {
			agg.Torn = true
		}
	}
	agg.Detail = fmt.Sprintf("directory: %d store(s)", len(stores))
	return agg, nil
}

// StoreStatus is one discovered store in a directory inspection: its
// slash path relative to the inspected directory and its shape.
type StoreStatus struct {
	// Path is the store file's slash-separated path relative to the
	// inspected directory.
	Path string
	// Info is the store's shape, as Inspect on the file reports it.
	Info Info
}

// InspectDir discovers every store file under dir exactly as the
// warehouse catalog does — journals, binary journals, archives; hidden
// files, the warehouse index, and the collector's control-state journal
// skipped — and reports each store's shape, sorted by path.
func InspectDir(dir string) ([]StoreStatus, error) {
	rels, err := warehouse.Discover(dir)
	if err != nil {
		return nil, err
	}
	out := make([]StoreStatus, 0, len(rels))
	for _, rel := range rels {
		info, err := runstore.Inspect(filepath.Join(dir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, fmt.Errorf("repro: inspecting %s: %w", rel, err)
		}
		out = append(out, StoreStatus{Path: rel, Info: info})
	}
	return out, nil
}

// Merge folds the store files at srcs into dst: last-wins per
// (experiment, assignment, replicate) key, cross-source disagreements
// reported as Conflicts, output in canonical order, written atomically.
// Sources are dispatched by content sniffing and the destination by
// extension, so journals and archives mix freely. The merge streams —
// peak memory holds an entry index, never the record set.
func Merge(dst string, srcs ...string) (MergeStats, error) {
	return runstore.Merge(srcs, dst)
}

// Compact rewrites the store file at src keeping only the last record
// of every key, preserving first-appended order; dst == "" compacts in
// place, otherwise src is untouched. Like Merge it streams and is
// idempotent.
func Compact(src, dst string) (CompactStats, error) {
	return runstore.Compact(src, dst)
}

// ConvertStats reports what one Convert did: the merge it performed,
// plus the verification of the written archive.
type ConvertStats struct {
	MergeStats
	// Verified is how many merged records were read back from the
	// archive's index and matched the merge output exactly.
	Verified int
	// Detail is the finished archive's shape line (block and index page
	// counts, footer state).
	Detail string
}

// Convert merges the store files at srcs into a finalized block-indexed
// archive at dst (which must end in ArchiveExt, or ArchiveExtZ for
// compressed record blocks) and verifies the
// artifact: every record of a second streaming pass over the merged
// view must be served back, identical, by the archive's index — a
// conversion that cannot be read back is worse than no conversion,
// because archives are what long-lived baselines live in.
//
// With strict set, cross-source conflicts abort the conversion before
// anything is written: a divergent measurement masked inside a
// long-lived baseline is the most expensive place to hide one.
func Convert(dst string, srcs []string, strict bool) (ConvertStats, error) {
	var cs ConvertStats
	if !strings.HasSuffix(dst, ArchiveExt) && !strings.HasSuffix(dst, ArchiveExtZ) {
		return cs, fmt.Errorf("archive destination %q must end in %s or %s", dst, ArchiveExt, ArchiveExtZ)
	}
	ms, err := runstore.MergeChecked(srcs, dst, strict)
	cs.MergeStats = ms
	if err != nil {
		return cs, err
	}
	a, err := archivestore.Open(dst)
	if err != nil {
		return cs, fmt.Errorf("verifying %s: %w", dst, err)
	}
	defer a.Close()
	if a.Torn() {
		return cs, fmt.Errorf("verifying %s: fresh archive reports a torn tail", dst)
	}
	if a.Len() != ms.Kept {
		return cs, fmt.Errorf("verifying %s: archive indexes %d record(s), merge produced %d", dst, a.Len(), ms.Kept)
	}
	for want, err := range runstore.MergeScan(srcs) {
		if err != nil {
			return cs, fmt.Errorf("verifying %s: %w", dst, err)
		}
		got, ok := a.Lookup(want.Experiment, want.Hash, want.Replicate)
		if !ok {
			return cs, fmt.Errorf("verifying %s: record %s missing from archive index", dst, want.Key())
		}
		if !reflect.DeepEqual(got, want) {
			return cs, fmt.Errorf("verifying %s: record %s does not round-trip: %+v != %+v", dst, want.Key(), got, want)
		}
		cs.Verified++
	}
	cs.Detail = a.Info().Detail
	return cs, nil
}

// ShardPath returns the file path of one shard of an experiment's
// sharded store under dir — where a worker running shard `shard` of
// `shards` journals its completed units.
func ShardPath(dir, experiment string, shard, shards int) string {
	return shardstore.Path(dir, experiment, shard, shards)
}

// ShardPaths returns every shard file path of an experiment's sharded
// store, in shard order — the source list for Merge.
func ShardPaths(dir, experiment string, shards int) []string {
	return shardstore.Paths(dir, experiment, shards)
}
