package repro

import (
	"os/exec"
	"testing"
)

// TestExamplesVet builds and vets every example program, so drift in
// examples/ (which has no test files of its own) fails `go test ./...`
// and CI instead of rotting silently. go vet compiles the packages, so
// this is a build assertion too.
func TestExamplesVet(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go vet subprocess in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	out, err := exec.Command(goTool, "vet", "./examples/...").CombinedOutput()
	if err != nil {
		t.Errorf("go vet ./examples/...: %v\n%s", err, out)
	}
}
