package repro

import (
	"fmt"
	"sort"

	"repro/internal/runstore"
)

// GateOptions tune the regression gate: confidence level and relative
// tolerance of the CI-shift test.
type GateOptions = runstore.GateOptions

// GateReport is the per-experiment outcome of gating a run against a
// baseline.
type GateReport = runstore.GateReport

// DiffEntry is one baseline experiment's fate in a Diff: its gate
// report, or its absence from the current run (Report == nil), which
// fails the gate just like a regression — "we no longer measure it"
// must never read as "it did not regress".
type DiffEntry struct {
	Experiment string
	// Report is the gate outcome; nil when the experiment is absent
	// from the current run.
	Report *GateReport
	// MissingCells is how many baseline cells went unmeasured: all of
	// them when Report is nil, otherwise the per-cell Missing findings.
	MissingCells int
}

// DiffResult is the outcome of gating one store file against a
// baseline, experiment by experiment in baseline order.
type DiffResult struct {
	// Entries covers every baseline experiment in order.
	Entries []DiffEntry
	// CurrentOnly lists experiments present only in the current run
	// (sorted); they are reported, not gated.
	CurrentOnly []string
	// Regressions and Missing count the failing cells across entries.
	Regressions int
	Missing     int
}

// Failed reports whether the gate should fail: any regressed or
// missing cell.
func (d *DiffResult) Failed() bool { return d.Regressions > 0 || d.Missing > 0 }

// Diff loads two store files (journals or archives), aggregates them
// per (assignment, response), and applies the regression gate
// (internal/runstore) experiment by experiment — the library form of
// `perfeval diff`. Summaries aggregate whole record sets, so this is a
// deliberate materialization site.
func Diff(baseline, current string, opt GateOptions) (*DiffResult, error) {
	baseRecs, err := runstore.LoadRecords(baseline)
	if err != nil {
		return nil, err
	}
	curRecs, err := runstore.LoadRecords(current)
	if err != nil {
		return nil, err
	}
	baseSums := runstore.Summarize(baseRecs)
	curByExp := map[string]*runstore.Summary{}
	for _, s := range runstore.Summarize(curRecs) {
		curByExp[s.Experiment] = s
	}
	if len(baseSums) == 0 {
		return nil, fmt.Errorf("baseline %s holds no records", baseline)
	}
	if len(curByExp) == 0 {
		return nil, fmt.Errorf("current %s holds no records (crashed before the first append?)", current)
	}
	d := &DiffResult{}
	for _, base := range baseSums {
		cur, ok := curByExp[base.Experiment]
		if !ok {
			d.Entries = append(d.Entries, DiffEntry{Experiment: base.Experiment, MissingCells: len(base.Rows)})
			d.Missing += len(base.Rows)
			continue
		}
		delete(curByExp, base.Experiment)
		report, err := runstore.Gate(base, cur, opt)
		if err != nil {
			return nil, err
		}
		entry := DiffEntry{Experiment: base.Experiment, Report: report}
		for _, f := range report.Findings {
			if f.Verdict == runstore.Missing {
				entry.MissingCells++
			}
		}
		d.Entries = append(d.Entries, entry)
		d.Regressions += len(report.Regressions())
		d.Missing += entry.MissingCells
	}
	for name := range curByExp {
		d.CurrentOnly = append(d.CurrentOnly, name)
	}
	sort.Strings(d.CurrentOnly)
	return d, nil
}
