package repro

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/hwsim"
	"repro/internal/microbench"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/tpch"
	"repro/internal/vdb"
)

// Each Benchmark_<id>_* regenerates one table or figure of the paper and
// prints its rows once (so `go test -bench=.` reproduces the evaluation
// section end to end), while testing.B measures the real cost of the real
// work behind it.

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	var last *Result
	for i := 0; i < b.N; i++ {
		r, err := RunExperiment(context.Background(), id)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	if _, done := printOnce.LoadOrStore(id, true); !done && last != nil {
		fmt.Fprintf(os.Stdout, "\n=== %s (slides %s): %s ===\n%s\n", last.ID, last.Slides, last.Title, last.Text)
	}
}

func Benchmark_T1_ServerClientOutput(b *testing.B)    { benchExperiment(b, "t1") }
func Benchmark_T2_HotCold(b *testing.B)               { benchExperiment(b, "t2") }
func Benchmark_F1_DbgOpt(b *testing.B)                { benchExperiment(b, "f1") }
func Benchmark_F2_MemoryWall(b *testing.B)            { benchExperiment(b, "f2") }
func Benchmark_F3_ProfileQ1(b *testing.B)             { benchExperiment(b, "f3") }
func Benchmark_T3_Interaction(b *testing.B)           { benchExperiment(b, "t3") }
func Benchmark_T4_TwoByTwo(b *testing.B)              { benchExperiment(b, "t4") }
func Benchmark_T5_AllocationOfVariation(b *testing.B) { benchExperiment(b, "t5") }
func Benchmark_T6_Fractional74(b *testing.B)          { benchExperiment(b, "t6") }
func Benchmark_T7_Confounding(b *testing.B)           { benchExperiment(b, "t7") }
func Benchmark_F4_ChartLint(b *testing.B)             { benchExperiment(b, "f4") }
func Benchmark_F5_HistogramCI(b *testing.B)           { benchExperiment(b, "f5") }
func Benchmark_F6_AspectAxes(b *testing.B)            { benchExperiment(b, "f6") }
func Benchmark_T8_GnuplotPipeline(b *testing.B)       { benchExperiment(b, "t8") }
func Benchmark_T9_LocaleHazard(b *testing.B)          { benchExperiment(b, "t9") }
func Benchmark_T10_SpecReport(b *testing.B)           { benchExperiment(b, "t10") }
func Benchmark_F7_Repeatability(b *testing.B)         { benchExperiment(b, "f7") }

// --- substrate micro-benchmarks (real work, real allocations) ---

func benchDB(b *testing.B, sf float64) *vdb.DB {
	b.Helper()
	db, err := tpch.Gen(sf, 42)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkEngineQ1Row(b *testing.B) {
	db := benchDB(b, 0.05)
	q, _ := tpch.Q(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vdb.Run(vdb.NewContext(db), vdb.RowEngine{}, q.Plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineQ1Column(b *testing.B) {
	db := benchDB(b, 0.05)
	q, _ := tpch.Q(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, q.Plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineJoinColumn(b *testing.B) {
	db := benchDB(b, 0.05)
	q, _ := tpch.Q(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, q.Plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTPCHGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := tpch.Gen(0.05, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimCrossbarRandom(b *testing.B) {
	cfg := netsim.Config{Procs: 16, Cycles: 1000, Think: 1, Seed: 7}
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Simulate(netsim.Crossbar{N: 16}, netsim.RandomPattern{}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimOmegaMatrix(b *testing.B) {
	cfg := netsim.Config{Procs: 16, Cycles: 1000, Think: 1, Seed: 7}
	for i := 0; i < b.N; i++ {
		if _, err := netsim.Simulate(netsim.Omega{N: 16}, netsim.MatrixPattern{}, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignTableEffects(b *testing.B) {
	var factors []design.Factor
	for i := 0; i < 8; i++ {
		factors = append(factors, design.MustFactor(string(rune('A'+i)), "-", "+"))
	}
	st, err := design.NewSignTable(factors)
	if err != nil {
		b.Fatal(err)
	}
	y := make([]float64, st.Runs)
	for i := range y {
		y[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ef, err := design.EstimateEffects(st, y)
		if err != nil {
			b.Fatal(err)
		}
		_ = ef.AllocateVariation()
	}
}

func BenchmarkStatsCI(b *testing.B) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i % 37)
	}
	for i := 0; i < b.N; i++ {
		if _, err := stats.MeanCI(xs, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanCostModel(b *testing.B) {
	m := hwsim.PentiumM2005
	for i := 0; i < b.N; i++ {
		_ = m.ScanCost(1<<20, 8)
	}
}

// --- ablation benches for DESIGN.md's called-out choices ---

// BenchmarkAblationTupleOverhead quantifies the cost model's central knob:
// the same Q1 on the row engine with and without per-tuple overhead
// charging (simulated vs plain context). The delta is pure accounting cost.
func BenchmarkAblationTupleOverhead(b *testing.B) {
	db := benchDB(b, 0.02)
	q, _ := tpch.Q(1)
	m := hwsim.PentiumM2005
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vdb.Run(vdb.NewContext(db), vdb.RowEngine{}, q.Plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simulated", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := vdb.NewSimContext(db, &m, hwsim.NewVirtualClock())
			ctx.Buffers.WarmAll(db.TableNames())
			if _, err := vdb.Run(ctx, vdb.RowEngine{}, q.Plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationTopN quantifies the TopN design choice: heap-based
// top-k versus full Sort+Limit on the same input, real work on both sides.
func BenchmarkAblationTopN(b *testing.B) {
	n := 100000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i * 48271) % 1000000)
	}
	tab, err := vdb.NewTable("big", vdb.NewIntColumn("v", vals))
	if err != nil {
		b.Fatal(err)
	}
	db := vdb.NewDB()
	if err := db.AddTable(tab); err != nil {
		b.Fatal(err)
	}
	b.Run("topn-heap", func(b *testing.B) {
		plan := vdb.Scan("big").TopN(10, vdb.SortKey{Col: "v"}).Node()
		for i := 0; i < b.N; i++ {
			if _, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sort-limit", func(b *testing.B) {
		plan := vdb.Scan("big").OrderBy(vdb.SortKey{Col: "v"}).Limit(10).Node()
		for i := 0; i < b.N; i++ {
			if _, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAdaptiveVsFixed quantifies what CI-targeted sequential
// analysis saves over a fixed replication budget on a simulated
// mixed-variance workload: half the cells are nearly noise-free (the
// fixed budget over-measures them), half are noisy (both schedulers
// must spend real replicates). The replicates/op metrics are the story;
// time/op tracks the harness overhead of the dynamic scheduler.
func BenchmarkAdaptiveVsFixed(b *testing.B) {
	const fixedReps = 40
	runner := func(a design.Assignment, rep int) (map[string]float64, error) {
		amp := 0.001 // low-variance cell: ±0.1%
		if a["noise"] == "hi" {
			amp = 0.2 // high-variance cell: ±20%
		}
		scale := map[string]float64{"1GB": 1, "10GB": 10}[a["data"]]
		jitter := math.Sin(float64(rep)*2.399963) * amp
		return map[string]float64{"ms": 100 * scale * (1 + jitter)}, nil
	}
	experiment := func() *harness.Experiment {
		d, err := design.FullFactorial([]design.Factor{
			design.MustFactor("noise", "lo", "hi"),
			design.MustFactor("data", "1GB", "10GB"),
		})
		if err != nil {
			b.Fatal(err)
		}
		d.Replicates = fixedReps
		return &harness.Experiment{
			Name: "mixed-variance", Design: d, Responses: []string{"ms"}, Run: runner,
		}
	}
	b.Run("fixed", func(b *testing.B) {
		var units int
		for i := 0; i < b.N; i++ {
			s := sched.New(sched.Options{Workers: 4})
			if _, err := s.Execute(context.Background(), experiment()); err != nil {
				b.Fatal(err)
			}
			units = s.LastStats().Units
		}
		b.ReportMetric(float64(units), "replicates/op")
	})
	b.Run("adaptive", func(b *testing.B) {
		var st sched.Stats
		for i := 0; i < b.N; i++ {
			ctrl, err := adaptive.New(adaptive.Options{Rel: 0.05, Min: 3, Max: fixedReps})
			if err != nil {
				b.Fatal(err)
			}
			s := sched.New(sched.Options{Workers: 4, Controller: ctrl})
			if _, err := s.Execute(context.Background(), experiment()); err != nil {
				b.Fatal(err)
			}
			st = s.LastStats()
		}
		b.ReportMetric(float64(st.Units), "replicates/op")
		b.ReportMetric(float64(st.FixedBudget-st.Units), "replicates-saved/op")
	})
}

// BenchmarkMicroSelectivitySweep measures the micro-benchmark harness
// itself: a 5-point selectivity sweep over 50k rows.
func BenchmarkMicroSelectivitySweep(b *testing.B) {
	tab, err := microbench.TableSpec{
		Name: "t", Rows: 50000,
		Cols: []microbench.ColSpec{{Name: "v", Dist: microbench.Uniform{Lo: 0, Hi: 1}}},
	}.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	sweep := &microbench.Sweep{Table: tab, Column: "v",
		Selectivities: []float64{0.01, 0.1, 0.5, 0.9, 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFractional quantifies what the 2^(7-4) fraction saves
// over the full 2^7 design at equal analysis machinery.
func BenchmarkAblationFractional(b *testing.B) {
	var factors []design.Factor
	for i := 0; i < 7; i++ {
		factors = append(factors, design.MustFactor(string(rune('A'+i)), "-", "+"))
	}
	b.Run("full-2^7", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st, err := design.NewSignTable(factors)
			if err != nil {
				b.Fatal(err)
			}
			y := make([]float64, st.Runs)
			if _, err := design.EstimateEffects(st, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fraction-2^3", func(b *testing.B) {
		var gens []design.Generator
		for _, s := range []string{"D=AB", "E=AC", "F=BC", "G=ABC"} {
			g, err := design.ParseGenerator(s)
			if err != nil {
				b.Fatal(err)
			}
			gens = append(gens, g)
		}
		for i := 0; i < b.N; i++ {
			fr, err := design.NewFractional(factors, gens)
			if err != nil {
				b.Fatal(err)
			}
			y := make([]float64, fr.Table.Runs)
			if _, err := fr.Estimate(y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationOptimizer measures the same filtered join with and
// without the logical optimizer's filter pushdown (real work: the pushed
// plan joins far fewer rows).
func BenchmarkAblationOptimizer(b *testing.B) {
	db := benchDB(b, 0.1)
	plan := vdb.Scan("lineitem").
		Join(vdb.Scan("part"), "l_partkey", "p_partkey").
		Filter(vdb.Eq(vdb.Col("p_brand"), vdb.Str("Brand#23"))).
		Aggregate(vdb.Count("n")).Node()
	opt, _, err := vdb.Optimize(db, plan)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unoptimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, plan); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pushed-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
