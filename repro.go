// Package repro reproduces "Performance Evaluation in Database Research:
// Principles and Experiences" (Manolescu & Manegold, ICDE 2008 / EDBT 2009)
// as a Go library: the experiment-methodology pipeline the paper teaches
// (internal/core, internal/design, internal/measure, internal/stats,
// internal/harness, internal/plot, internal/config, internal/sysinfo,
// internal/repeat), the run-execution subsystem (internal/sched's
// concurrent scheduler over internal/runstore's persistent run stores
// and regression gate), plus the substrates its worked examples run on
// (internal/vdb, internal/tpch, internal/hwsim, internal/netsim).
//
// This root package is the public API the perfeval CLI is built on, so
// the command line and the library cannot drift:
//
//   - Run and RunAll execute the paper's experiment drivers under a
//     context (cancellation drains the scheduler and leaves a valid,
//     warm-startable store) with a typed RunConfig covering everything
//     the CLI exposes as -D flags — workers, retries, timeouts,
//     journaled warm starts, store backends, sharding, and adaptive
//     replication.
//   - Open gives streaming read-only access to any store file — JSONL
//     journal or block-indexed archive, dispatched by content sniffing —
//     and Merge, Compact, Convert, Inspect, and Diff are the library
//     forms of the corresponding perfeval subcommands.
//
// The guarded API surface lives in api/repro.txt; `make check` fails
// when it changes without that file being regenerated (tools/apicheck).
package repro

import (
	"context"

	"repro/internal/harness"
	"repro/internal/paperexp"
)

// Result is one regenerated table or figure of the paper.
type Result = paperexp.Result

// Experiment is one registered experiment driver; its Run function
// receives the caller's context.
type Experiment = paperexp.Entry

// Table renders aligned monospace tables — the house style every report
// in this repository uses, re-exported so CLI-grade presentation needs
// nothing beyond the public API.
type Table = harness.Table

// NewTable returns an empty Table.
func NewTable() *Table { return harness.NewTable() }

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []Experiment { return paperexp.Registry() }

// SuiteInstructions renders the repeatability instructions for the whole
// experiment set — what `perfeval suite` prints.
func SuiteInstructions() string { return paperexp.PaperSuite().Instructions() }

// RunExperiment regenerates the artifact with the given id (t1..t10,
// f1..f7, case-insensitive) through the sequential executor. It is
// shorthand for Run with a zero RunConfig, discarding the Outcome
// accounting.
func RunExperiment(ctx context.Context, id string) (*Result, error) {
	out, err := Run(ctx, id, RunConfig{})
	if err != nil {
		return nil, err
	}
	return out.Result, nil
}

// RunAllExperiments regenerates every artifact through the sequential
// executor, stopping at the first failure.
func RunAllExperiments(ctx context.Context) ([]*Result, error) {
	outs, err := RunAll(ctx, RunConfig{})
	if err != nil {
		return nil, err
	}
	results := make([]*Result, len(outs))
	for i, o := range outs {
		results[i] = o.Result
	}
	return results, nil
}
