// Package repro reproduces "Performance Evaluation in Database Research:
// Principles and Experiences" (Manolescu & Manegold, ICDE 2008 / EDBT 2009)
// as a Go library: the experiment-methodology pipeline the paper teaches
// (internal/core, internal/design, internal/measure, internal/stats,
// internal/harness, internal/plot, internal/config, internal/sysinfo,
// internal/repeat), the run-execution subsystem (internal/sched's
// concurrent scheduler over internal/runstore's persistent run journal
// and regression gate), plus the substrates its worked examples run on
// (internal/vdb, internal/tpch, internal/hwsim, internal/netsim).
//
// This root package exposes the per-table/per-figure experiment drivers so
// the repository-level benchmarks (bench_test.go) and the perfeval CLI can
// regenerate every artifact of the paper's evaluation.
package repro

import "repro/internal/paperexp"

// Result is one regenerated table or figure of the paper.
type Result = paperexp.Result

// Experiment is one registered experiment driver.
type Experiment = paperexp.Entry

// Experiments lists every reproducible table and figure in paper order.
func Experiments() []Experiment { return paperexp.Registry() }

// RunExperiment regenerates the artifact with the given id (t1..t10,
// f1..f7, case-insensitive).
func RunExperiment(id string) (*Result, error) { return paperexp.Run(id) }

// RunAllExperiments regenerates every artifact.
func RunAllExperiments() ([]*Result, error) { return paperexp.RunAll() }
