package main

import "testing"

func TestDesignerCommands(t *testing.T) {
	good := [][]string{
		{"sign", "-k", "3"},
		{"fractional", "-k", "7", "-g", "D=AB,E=AC,F=BC,G=ABC"},
		{"analyze", "-k", "2", "-y", "15,25,45,75"},
	}
	for _, args := range good {
		if err := run(args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
	bad := [][]string{
		{},
		{"bogus"},
		{"sign", "-k", "0"},
		{"sign", "-k", "25"},
		{"fractional", "-k", "4"}, // no generators
		{"fractional", "-k", "4", "-g", "garbage"},    // unparseable
		{"fractional", "-k", "4", "-g", "A=BC"},       // targets base
		{"analyze", "-k", "2", "-y", "1,2"},           // wrong count
		{"analyze", "-k", "2", "-y", "1,2,3,notanum"}, // unparseable
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("run(%v) should error", args)
		}
	}
}
