// Command designer builds and analyzes factorial experiment designs.
//
// Usage:
//
//	designer sign -k 3
//	    print the full 2^k sign table
//	designer fractional -k 7 -g "D=AB,E=AC,F=BC,G=ABC"
//	    print a 2^(k-p) design, its confoundings, and resolution
//	designer analyze -k 2 -y "15,25,45,75"
//	    estimate effects and allocation of variation from responses in
//	    canonical sign-table run order
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/design"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "designer:", err)
		os.Exit(1)
	}
}

func letterFactors(k int) ([]design.Factor, error) {
	if k < 1 || k > 20 {
		return nil, fmt.Errorf("k must be in [1,20], got %d", k)
	}
	var out []design.Factor
	for i := 0; i < k; i++ {
		out = append(out, design.MustFactor(string(rune('A'+i)), "-1", "+1"))
	}
	return out, nil
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: designer sign|fractional|analyze [flags]")
	}
	switch args[0] {
	case "sign":
		fs := flag.NewFlagSet("sign", flag.ContinueOnError)
		k := fs.Int("k", 2, "number of two-level factors")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		factors, err := letterFactors(*k)
		if err != nil {
			return err
		}
		st, err := design.NewSignTable(factors)
		if err != nil {
			return err
		}
		fmt.Print(st.String())
		return nil

	case "fractional":
		fs := flag.NewFlagSet("fractional", flag.ContinueOnError)
		k := fs.Int("k", 4, "number of two-level factors")
		gensFlag := fs.String("g", "", "comma-separated generators, e.g. D=ABC")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		factors, err := letterFactors(*k)
		if err != nil {
			return err
		}
		if *gensFlag == "" {
			return fmt.Errorf("fractional needs -g generators")
		}
		var gens []design.Generator
		for _, s := range strings.Split(*gensFlag, ",") {
			g, err := design.ParseGenerator(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			gens = append(gens, g)
		}
		fr, err := design.NewFractional(factors, gens)
		if err != nil {
			return err
		}
		fmt.Printf("2^(%d-%d) design, %d runs, resolution %d\n\n", *k, len(gens), fr.Table.Runs, fr.Resolution())
		fmt.Print(fr.Table.Design().String())
		fmt.Printf("\nconfoundings:\n%s", fr.ConfoundingTable())
		return nil

	case "analyze":
		fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
		k := fs.Int("k", 2, "number of two-level factors")
		ys := fs.String("y", "", "comma-separated responses in canonical run order")
		if err := fs.Parse(args[1:]); err != nil {
			return err
		}
		factors, err := letterFactors(*k)
		if err != nil {
			return err
		}
		st, err := design.NewSignTable(factors)
		if err != nil {
			return err
		}
		parts := strings.Split(*ys, ",")
		if len(parts) != st.Runs {
			return fmt.Errorf("need %d responses for a 2^%d design, got %d", st.Runs, *k, len(parts))
		}
		y := make([]float64, len(parts))
		for i, p := range parts {
			y[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("response %d: %w", i+1, err)
			}
		}
		ef, err := design.EstimateEffects(st, y)
		if err != nil {
			return err
		}
		fmt.Println(ef.ModelString())
		fmt.Print(ef.VariationTable())
		return nil

	default:
		return fmt.Errorf("unknown command %q (want sign, fractional, or analyze)", args[0])
	}
}
