package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer lets the test read the serve goroutine's output while it
// is still being written.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestCollectorWorkflowEndToEnd drives collector mode through the CLI:
// `perfeval serve` on a free port, one `perfeval work` process draining
// every shard, then the acceptance property — the collector's merged
// store is byte-identical to a single-process run's journal.
func TestCollectorWorkflowEndToEnd(t *testing.T) {
	dir := t.TempDir()
	storeDir := filepath.Join(dir, "store")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var serveOut syncBuffer
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- runCtxW(ctx, &serveOut, []string{
			"-Dcollector.dir=" + storeDir, "-Dcollector.addr=127.0.0.1:0",
			"-Dcollector.shards=2", "serve",
		})
	}()

	// The daemon announces its bound address on stdout; scrape it.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if _, rest, ok := strings.Cut(serveOut.String(), "collector listening on "); ok {
			addr = strings.Fields(rest)[0]
			addr = strings.TrimSuffix(addr, ",")
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never announced its address:\n%s", serveOut.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// One worker drains both shards (the acquire loop runs until the
	// server reports the experiment complete) and renders the artifact.
	var workOut bytes.Buffer
	err := runW(&workOut, []string{
		"-Dcollector.url=http://" + addr, "-Dsched.workers=1",
		"-Dworker.name=cli-worker", "-Dworker.spool=" + filepath.Join(dir, "spool"),
		"work", "t4",
	})
	if err != nil {
		t.Fatalf("work: %v\n%s", err, workOut.String())
	}
	for _, want := range []string{"=== t4", "collector worker: completed 2 shard(s)", "4 unit(s) executed"} {
		if !strings.Contains(workOut.String(), want) {
			t.Errorf("work output missing %q:\n%s", want, workOut.String())
		}
	}

	// The collector's store merges into exactly the single-process
	// journal.
	shardFiles, err := filepath.Glob(filepath.Join(storeDir, "*.shard-*-of-002.jsonl"))
	if err != nil || len(shardFiles) != 2 {
		t.Fatalf("collector shard files = %v (err %v), want exactly 2", shardFiles, err)
	}
	merged := filepath.Join(dir, "merged.jsonl")
	var out bytes.Buffer
	if err := runW(&out, append([]string{"merge", merged}, shardFiles...)); err != nil {
		t.Fatalf("merge: %v\n%s", err, out.String())
	}
	refDir := filepath.Join(dir, "ref")
	out.Reset()
	if err := runW(&out, []string{"-Dsched.workers=1", "-Djournal.dir=" + refDir, "run", "t4"}); err != nil {
		t.Fatalf("reference run: %v\n%s", err, out.String())
	}
	refFiles, err := filepath.Glob(filepath.Join(refDir, "*.jsonl"))
	if err != nil || len(refFiles) != 1 {
		t.Fatalf("reference journals = %v (err %v), want exactly 1", refFiles, err)
	}
	for _, p := range []string{merged, refFiles[0]} {
		out.Reset()
		if err := runW(&out, []string{"compact", p}); err != nil {
			t.Fatalf("compact %s: %v\n%s", p, err, out.String())
		}
	}
	mergedData, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	refData, err := os.ReadFile(refFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedData, refData) {
		t.Errorf("collected store differs from the single-process journal:\ncollected:\n%s\nreference:\n%s", mergedData, refData)
	}

	// Ctrl-C (a canceled context) stops the daemon cleanly.
	cancel()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("serve returned %v on shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down after cancellation")
	}
}

// TestServeFlagValidation pins the CLI-boundary errors of collector
// mode: a daemon or worker started with a dropped required flag must
// fail loudly.
func TestServeFlagValidation(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"serve"}, "collector.dir"},
		{[]string{"work", "t4"}, "collector.url"},
		{[]string{"-Dcollector.dir=x", "-Dcollector.shards=0", "serve"}, "need >= 1"},
		{[]string{"-Dcollector.url=http://h", "-Dworker.flush=0", "work", "t4"}, "worker.flush"},
	}
	for _, c := range cases {
		var out bytes.Buffer
		err := runW(&out, c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%v: err = %v, want mention of %q", c.args, err, c.want)
		}
	}
}

// TestShardPlanMentionsCollector keeps the shard-plan transcript in sync
// with collector mode: the printed plan must offer the serve/work
// alternative.
func TestShardPlanMentionsCollector(t *testing.T) {
	var out bytes.Buffer
	if err := runW(&out, []string{"-Dsched.shards=3", "shard-plan", "t4"}); err != nil {
		t.Fatalf("shard-plan: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"perfeval serve -Dcollector.dir=shards -Dcollector.shards=3",
		"perfeval work t4 -Dcollector.url=",
		"docs/COLLECTOR.md",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("shard-plan output missing %q:\n%s", want, out.String())
		}
	}
}
