package main

import (
	"context"
	"fmt"
	"io"

	"repro"
	"repro/internal/config"
)

// serveCmd is the serve subcommand: it maps the collector.* properties
// onto a repro.ServeConfig and runs the collector daemon until the
// process is interrupted (Ctrl-C / SIGTERM cancel the context; the
// daemon drains in-flight ingests and closes its stores).
func serveCmd(ctx context.Context, w io.Writer, props *config.Properties) error {
	dir := props.GetOr("collector.dir", "")
	if dir == "" {
		return fmt.Errorf("serve needs -Dcollector.dir=DIR (the directory the experiment stores live in)")
	}
	cfg := repro.ServeConfig{
		Addr:     props.GetOr("collector.addr", ""),
		Dir:      dir,
		Baseline: props.GetOr("collector.baseline", ""),
		Token:    props.GetOr("collector.token", ""),
		LogLevel: props.GetOr("collector.log", ""),
		Ready: func(addr string) {
			fmt.Fprintf(w, "collector listening on %s, store dir %s\n", addr, dir)
		},
	}
	var err error
	if props.GetOr("collector.shards", "") != "" {
		if cfg.Shards, err = props.GetInt("collector.shards"); err != nil {
			return err
		}
		if cfg.Shards < 1 {
			return fmt.Errorf("collector.shards = %d, need >= 1", cfg.Shards)
		}
	}
	if props.GetOr("collector.ttl", "") != "" {
		if cfg.LeaseTTL, err = props.GetDuration("collector.ttl"); err != nil {
			return err
		}
	}
	if props.GetOr("collector.inflight", "") != "" {
		n, err := props.GetInt("collector.inflight")
		if err != nil {
			return err
		}
		if n < 1 {
			return fmt.Errorf("collector.inflight = %d, need >= 1 (bytes)", n)
		}
		cfg.MaxInflight = int64(n)
	}
	if props.GetOr("collector.commitwindow", "") != "" {
		if cfg.CommitWindow, err = props.GetDuration("collector.commitwindow"); err != nil {
			return err
		}
	}
	return repro.Serve(ctx, cfg)
}

// workCmd is the work subcommand: one worker of a collector fleet. The
// sched.* properties configure the per-shard scheduler exactly as they
// do for `perfeval run`; worker.* properties name the worker and its
// spool.
func workCmd(ctx context.Context, w io.Writer, props *config.Properties, ids []string) error {
	cfg, err := buildWorkConfig(props)
	if err != nil {
		return err
	}
	if ids[0] == "all" {
		ids = nil
		for _, e := range repro.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		out, err := repro.Work(ctx, id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		r := out.Result
		fmt.Fprintf(w, "=== %s (slides %s): %s ===\n\n%s\n", r.ID, r.Slides, r.Title, r.Text)
		fmt.Fprintf(w, "%s\n\n", out.Report)
	}
	return nil
}

// metricsCmd is the metrics subcommand: it polls a running collector
// daemon's GET /v1/metrics endpoint and prints the snapshot —
// Prometheus text format by default, JSON with -Dmetrics.format=json.
func metricsCmd(ctx context.Context, w io.Writer, props *config.Properties) error {
	url := props.GetOr("collector.url", "")
	if url == "" {
		return fmt.Errorf("metrics needs -Dcollector.url=URL (the collector's base URL, e.g. http://host:8080)")
	}
	format := props.GetOr("metrics.format", "")
	switch format {
	case "", "prometheus", "text", "json":
	default:
		return fmt.Errorf("metrics.format = %q, want prometheus or json", format)
	}
	body, err := repro.FetchMetrics(ctx, url, format)
	if err != nil {
		return err
	}
	fmt.Fprint(w, body)
	if body != "" && body[len(body)-1] != '\n' {
		fmt.Fprintln(w)
	}
	return nil
}

// buildWorkConfig maps the collector.url, worker.*, and sched.*
// properties onto a repro.WorkConfig.
func buildWorkConfig(props *config.Properties) (repro.WorkConfig, error) {
	cfg := repro.WorkConfig{
		URL:      props.GetOr("collector.url", ""),
		Name:     props.GetOr("worker.name", ""),
		SpoolDir: props.GetOr("worker.spool", ""),
		Token:    props.GetOr("worker.token", ""),
		LogLevel: props.GetOr("collector.log", ""),
	}
	if cfg.URL == "" {
		return cfg, fmt.Errorf("work needs -Dcollector.url=URL (the collector's base URL, e.g. http://host:8080)")
	}
	var err error
	if props.GetOr("worker.flush", "") != "" {
		if cfg.FlushEvery, err = props.GetInt("worker.flush"); err != nil {
			return cfg, err
		}
		if cfg.FlushEvery < 1 {
			return cfg, fmt.Errorf("worker.flush = %d, need >= 1 (records per ingest batch)", cfg.FlushEvery)
		}
	}
	if props.GetOr("worker.binary", "") != "" {
		if cfg.BinaryWire, err = props.GetBool("worker.binary"); err != nil {
			return cfg, err
		}
	}
	if props.GetOr("sched.workers", "") != "" {
		if cfg.Workers, err = props.GetInt("sched.workers"); err != nil {
			return cfg, err
		}
		if cfg.Workers < 1 {
			return cfg, fmt.Errorf("sched.workers = %d, need >= 1", cfg.Workers)
		}
	}
	if props.GetOr("sched.retries", "") != "" {
		if cfg.Retries, err = props.GetInt("sched.retries"); err != nil {
			return cfg, err
		}
	}
	if props.GetOr("sched.timeout", "") != "" {
		if cfg.Timeout, err = props.GetDuration("sched.timeout"); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}
