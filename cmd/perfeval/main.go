// Command perfeval regenerates the paper's tables and figures.
//
// Usage:
//
//	perfeval list
//	perfeval run <id>|all [-Dout.dir=DIR]
//	perfeval suite
//
// run prints the artifact to stdout; with -Dout.dir=DIR it also writes
// res/<id>.txt under DIR. suite prints the repeatability instructions for
// the whole experiment set.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/config"
	"repro/internal/paperexp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfeval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	props := config.New(nil)
	rest, err := props.ApplyArgs(args)
	if err != nil {
		return err
	}
	if len(rest) == 0 {
		return fmt.Errorf("usage: perfeval list | run <id>|all | suite")
	}
	switch rest[0] {
	case "list":
		for _, e := range paperexp.Registry() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil

	case "run":
		if len(rest) < 2 {
			return fmt.Errorf("usage: perfeval run <id>|all")
		}
		outDir := props.GetOr("out.dir", "")
		var results []*paperexp.Result
		if rest[1] == "all" {
			results, err = paperexp.RunAll()
			if err != nil {
				return err
			}
		} else {
			for _, id := range rest[1:] {
				r, err := paperexp.Run(id)
				if err != nil {
					return err
				}
				results = append(results, r)
			}
		}
		for _, r := range results {
			fmt.Printf("=== %s (slides %s): %s ===\n\n%s\n", r.ID, r.Slides, r.Title, r.Text)
			if r.Notes != "" {
				fmt.Printf("notes: %s\n\n", r.Notes)
			}
			if outDir != "" {
				dir := filepath.Join(outDir, "res")
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(dir, r.ID+".txt")
				if err := os.WriteFile(path, []byte(r.Text), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s\n\n", path)
			}
		}
		return nil

	case "suite":
		fmt.Print(paperexp.PaperSuite().Instructions())
		return nil

	default:
		return fmt.Errorf("unknown command %q (want list, run, or suite)", rest[0])
	}
}
