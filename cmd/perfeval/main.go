// Command perfeval regenerates the paper's tables and figures.
//
// Usage:
//
//	perfeval list
//	perfeval run <id>|all [-Dout.dir=DIR] [-Dsched.workers=N] [-Djournal.dir=DIR] [-Dstore=journal|archive|binary]
//	perfeval run <id>|all -Dsched.shards=N -Dsched.shard=K -Djournal.dir=DIR
//	perfeval serve -Dcollector.dir=DIR [-Dcollector.addr=:8080] [-Dcollector.shards=N] [-Dcollector.log=debug|info|quiet]
//	perfeval work <id>|all -Dcollector.url=http://host:8080 [-Dsched.workers=N] [-Dworker.binary=true]
//	perfeval metrics -Dcollector.url=http://host:8080 [-Dmetrics.format=prometheus|json]
//	perfeval shard-plan <id>|all -Dsched.shards=N [-Djournal.dir=DIR]
//	perfeval merge <out.jsonl|out.arch> <src.jsonl|src.arch>... [-Dmerge.strict=true]
//	perfeval archive <out.arch|out.archz> <src.jsonl|src.arch>...
//	perfeval inspect <file|dir>... [-Dinspect.strict=true]
//	perfeval query <dir> [-Dquery.kind=runs|history|trends|regressions] [-Dquery.experiment=NAME] [-Dquery.cell=HASH|"k=v k=v"] [-Dquery.response=NAME] [-Dquery.limit=N] [-Dquery.format=table|json]
//	perfeval diff <baseline.jsonl> <current.jsonl> [-Ddiff.confidence=0.95] [-Ddiff.tolerance=0.05]
//	perfeval compact <journal.jsonl> [-Dcompact.out=PATH]
//	perfeval suite
//
// The command is a thin flag-parsing layer over the public repro
// package: every -D property maps onto a repro.RunConfig field or a
// repro function argument, so anything the CLI can do, a library caller
// can do identically — and the two cannot drift (tools/apicheck guards
// the API surface `make check` builds against).
//
// run prints the artifact to stdout; with -Dout.dir=DIR it also writes
// res/<id>.txt under DIR (creating directories as needed). With
// -Dsched.workers=N and/or -Djournal.dir=DIR the harness executes
// through the concurrent scheduler (internal/sched): design rows run in
// parallel on N workers, completed units are journaled under DIR, and a
// re-run warm-starts from the journal, skipping completed rows.
// -Dsched.retries=N and -Dsched.timeout=DUR tune per-unit retry and
// timeout. An interrupted run (Ctrl-C, SIGTERM) drains its in-flight
// units, leaves the journal valid, and resumes from it on the next run.
//
// Adaptive replication (internal/adaptive) replaces the fixed
// rows x replicates budget with CI-targeted sequential analysis:
// -Dadaptive.rel=0.05 stops replicating a cell once its confidence
// interval's relative half-width is <= 5%, after at least
// -Dadaptive.min=3 and at most -Dadaptive.max=50 replicates.
// -Dadaptive.prioritize=<baseline.jsonl> compares running cells against
// a baseline journal: cells the gate would flag as regressed get a
// tighter (rel/2) target and are scheduled first. Any adaptive.* flag
// switches the run onto the scheduler; after each experiment a budget
// report prints the replicates spent per cell against the fixed-budget
// equivalent.
//
// Sharded scale-out: -Dsched.shards=N -Dsched.shard=K partitions each
// experiment's design rows by assignment hash so that N perfeval
// processes (any mix of machines sharing nothing but the eventual merge
// step) execute disjoint row sets, each journaling into its own shard
// file <journal.dir>/<experiment>.shard-K-of-N.jsonl. shard-plan prints
// the worker, merge, and verification commands for a given shard count,
// plus the status of any shard files already present. merge folds shard
// journals (last-wins, cross-source conflicts reported; with
// -Dmerge.strict=true conflicts fail the command) into one journal in
// canonical order — after `perfeval compact`, byte-identical to the
// journal a single-process run of the same experiment produces.
//
// Collector mode replaces the shared-filesystem step of the sharded
// workflow with a long-lived HTTP daemon: `perfeval serve` owns the
// experiment stores (-Dcollector.dir) and partitions each experiment
// into -Dcollector.shards lease-able shards; any number of `perfeval
// work` processes — on any machines that can reach -Dcollector.url —
// lease shards, execute them through the scheduler, and stream
// completed records back as NDJSON batches (or, with
// -Dworker.binary=true, in the negotiated binary wire framing — higher
// ingest throughput, same records). Leases carry a TTL
// (-Dcollector.ttl): a worker that dies mid-stream loses its shard to
// the pool, and the next worker warm-starts from everything the dead
// one streamed. Per-experiment backpressure (-Dcollector.inflight
// bytes; HTTP 429 + Retry-After) bounds ingest memory. The collector's
// merged store is byte-identical to a single-process run; GET
// /v1/status endpoints expose worker, lease, per-cell replicate, and
// (with -Dcollector.baseline) regression-gate state. The daemon is
// restartable: worker registrations and lease grants are journaled in
// -Dcollector.dir, a restarted daemon resumes them, and workers ride
// out the restart on transport retries. -Dcollector.token arms shared
// bearer-token auth on every data-plane endpoint (workers pass the same
// value as -Dworker.token), and -Dcollector.commitwindow tunes the
// group-commit engine that coalesces concurrent ingest batches into
// one fsync. The wire protocol is documented in docs/COLLECTOR.md.
//
// Observability: the daemon and worker log structured events through
// log/slog at the level -Dcollector.log selects (debug, info — the
// default — or quiet), and every layer instruments itself into the
// self-measurement registry (internal/obs; docs/OBSERVABILITY.md
// catalogs the series). `perfeval metrics` polls a running daemon's
// GET /v1/metrics endpoint and prints the snapshot in the Prometheus
// text format, or JSON with -Dmetrics.format=json.
//
// The archive store (-Dstore=archive) swaps the per-experiment JSONL
// journal for the block-indexed single-file archive
// (internal/runstore/archivestore): same warm-start and durability
// semantics, but reopening a finished run costs O(index), not a re-parse
// of every record — the backend for million-run archives. `perfeval
// archive out.arch src...` converts journals (or merged shards, or other
// archives) into one verified archive; `perfeval inspect` prints any
// store file's shape — record/distinct counts, archive block and index
// page stats — and reports torn or truncated tails instead of silently
// counting only the valid prefix (-Dinspect.strict=true turns a torn
// tail into a non-zero exit). diff and merge read archives wherever they
// read journals.
//
// The binary store (-Dstore=binary) keeps the journal's append-only
// single-file semantics but frames records in the length-prefixed
// checksummed binary encoding (docs/FORMAT.md) instead of JSON lines —
// the fast append/scan path. merge, inspect, diff, and compact read and
// write .binj files exactly as they do journals and archives.
//
// query asks the result warehouse (internal/warehouse; docs/WAREHOUSE.md)
// one question: `perfeval query <dir>` indexes every store file under
// the directory — incrementally, unchanged files are skipped on a stat —
// and answers from the per-cell aggregate index alone, never rescanning
// record blocks. -Dquery.kind selects the question (runs lists the
// indexed runs; history follows one design cell across runs, with
// confidence intervals rebuilt from the index; trends draws
// per-(experiment, response) mean lines; regressions lists cells whose
// newest run shifted against the previous one under the regression
// gate's CI-shift rule). -Dquery.cell selects a cell by assignment hash
// or canonical "k=v k=v" string; -Dquery.confidence and
// -Dquery.tolerance tune the intervals like diff's flags;
// -Dquery.keep=N / -Dquery.maxage=DUR apply retention (pruned runs
// leave the index, source files are never touched);
// -Dquery.norefresh=true answers from the index without walking the
// directory; -Dquery.format=json emits the same body a collector
// daemon's GET /v1/query serves. inspect also accepts directories,
// listing every store the warehouse catalog would discover.
//
// diff loads two run stores, aggregates them per (assignment,
// response), and applies the regression gate: confidence intervals that
// have shifted versus the baseline are flagged and the command exits
// non-zero — a CI guard for performance work.
//
// compact rewrites a journal keeping only the last record of every
// (experiment, assignment, replicate) key — the retention tool for
// journals that accumulated superseded records. In place by default;
// -Dcompact.out=PATH writes aside instead.
//
// suite prints the repeatability instructions for the whole experiment
// set.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"

	"repro"
	"repro/internal/config"
)

func main() {
	// Ctrl-C / SIGTERM cancel the run context: the scheduler drains its
	// workers and leaves every store valid and warm-startable. The
	// registration is released on the first signal (AfterFunc), so a
	// second signal kills the process the default way instead of being
	// swallowed while a long unit drains.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	if err := runCtx(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfeval:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runW(os.Stdout, args) }

func runW(w io.Writer, args []string) error { return runCtxW(context.Background(), w, args) }

func runCtx(ctx context.Context, args []string) error { return runCtxW(ctx, os.Stdout, args) }

func runCtxW(ctx context.Context, w io.Writer, args []string) error {
	props := config.New(nil)
	rest, err := props.ApplyArgs(args)
	if err != nil {
		return err
	}
	if len(rest) == 0 {
		return fmt.Errorf("usage: perfeval list | run <id>|all | serve | work <id>|all | metrics | shard-plan <id>|all | merge <out> <src>... | archive <out.arch> <src>... | inspect <file|dir>... | query <dir> | diff <baseline> <current> | compact <journal> | suite")
	}
	switch rest[0] {
	case "list":
		for _, e := range repro.Experiments() {
			fmt.Fprintf(w, "%-4s %s\n", e.ID, e.Title)
		}
		return nil

	case "run":
		if len(rest) < 2 {
			return fmt.Errorf("usage: perfeval run <id>|all")
		}
		return runExperiments(ctx, w, props, rest[1:])

	case "serve":
		if len(rest) != 1 {
			return fmt.Errorf("usage: perfeval serve -Dcollector.dir=DIR [-Dcollector.addr=:8080] [-Dcollector.shards=N] [-Dcollector.ttl=30s] [-Dcollector.inflight=BYTES] [-Dcollector.baseline=PATH] [-Dcollector.token=SECRET] [-Dcollector.commitwindow=2ms]")
		}
		return serveCmd(ctx, w, props)

	case "work":
		if len(rest) < 2 {
			return fmt.Errorf("usage: perfeval work <id>|all -Dcollector.url=URL [-Dsched.workers=N] [-Dworker.name=NAME] [-Dworker.spool=DIR] [-Dworker.flush=N] [-Dworker.token=SECRET]")
		}
		return workCmd(ctx, w, props, rest[1:])

	case "metrics":
		if len(rest) != 1 {
			return fmt.Errorf("usage: perfeval metrics -Dcollector.url=URL [-Dmetrics.format=prometheus|json]")
		}
		return metricsCmd(ctx, w, props)

	case "shard-plan":
		if len(rest) != 2 {
			return fmt.Errorf("usage: perfeval shard-plan <id>|all -Dsched.shards=N [-Djournal.dir=DIR]")
		}
		return shardPlan(w, props, rest[1])

	case "merge":
		if len(rest) < 3 {
			return fmt.Errorf("usage: perfeval merge <out.jsonl> <src.jsonl>...")
		}
		return merge(w, props, rest[1], rest[2:])

	case "archive":
		if len(rest) < 3 {
			return fmt.Errorf("usage: perfeval archive <out%s|out%s> <src.jsonl|src%s>...", repro.ArchiveExt, repro.ArchiveExtZ, repro.ArchiveExt)
		}
		return archiveCmd(w, props, rest[1], rest[2:])

	case "inspect":
		if len(rest) < 2 {
			return fmt.Errorf("usage: perfeval inspect <file|dir>... [-Dinspect.strict=true]")
		}
		return inspect(w, props, rest[1:])

	case "query":
		if len(rest) != 2 {
			return fmt.Errorf("usage: perfeval query <dir> [-Dquery.kind=runs|history|trends|regressions] [-Dquery.experiment=NAME] [-Dquery.cell=HASH|\"k=v k=v\"] [-Dquery.response=NAME] [-Dquery.confidence=0.95] [-Dquery.tolerance=0.05] [-Dquery.limit=N] [-Dquery.keep=N] [-Dquery.maxage=DUR] [-Dquery.norefresh=true] [-Dquery.format=table|json]")
		}
		return queryCmd(w, props, rest[1])

	case "diff":
		if len(rest) != 3 {
			return fmt.Errorf("usage: perfeval diff <baseline.jsonl> <current.jsonl>")
		}
		return diff(w, props, rest[1], rest[2])

	case "compact":
		if len(rest) != 2 {
			return fmt.Errorf("usage: perfeval compact <journal.jsonl>")
		}
		out := props.GetOr("compact.out", "")
		cs, err := repro.Compact(rest[1], out)
		if err != nil {
			return err
		}
		if out == "" {
			out = rest[1]
		}
		fmt.Fprintf(w, "compacted %s: kept %d record(s), dropped %d superseded", out, cs.Kept, cs.Dropped)
		if cs.Torn {
			fmt.Fprint(w, ", torn tail removed")
		}
		fmt.Fprintln(w)
		return nil

	case "suite":
		fmt.Fprint(w, repro.SuiteInstructions())
		return nil

	default:
		return fmt.Errorf("unknown command %q (want list, run, serve, work, metrics, shard-plan, merge, archive, inspect, query, diff, compact, or suite)", rest[0])
	}
}

// runExperiments is the run subcommand: flags become a repro.RunConfig,
// each experiment runs through repro.Run, and artifacts plus budget
// reports print in paper order.
func runExperiments(ctx context.Context, w io.Writer, props *config.Properties, ids []string) error {
	cfg, err := buildRunConfig(props)
	if err != nil {
		return err
	}
	if banner := cfg.Describe(); banner != "" {
		fmt.Fprintln(w, banner)
	}
	outDir := props.GetOr("out.dir", "")
	if ids[0] == "all" {
		// Run ids one by one (rather than repro.RunAll) so artifacts and
		// budget reports stream out as each experiment finishes.
		ids = nil
		for _, e := range repro.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		out, err := repro.Run(ctx, id, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		r := out.Result
		fmt.Fprintf(w, "=== %s (slides %s): %s ===\n\n%s\n", r.ID, r.Slides, r.Title, r.Text)
		if r.Notes != "" {
			fmt.Fprintf(w, "notes: %s\n\n", r.Notes)
		}
		if out.Budget != nil {
			fmt.Fprintf(w, "%s\n", out.Budget)
		}
		if outDir != "" {
			dir := filepath.Join(outDir, "res")
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(dir, r.ID+".txt")
			if err := os.WriteFile(path, []byte(r.Text), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n\n", path)
		}
	}
	return nil
}

// buildRunConfig maps the sched.*, journal.*, store, and adaptive.*
// properties onto a repro.RunConfig, validating flag combinations at
// the CLI boundary (a dropped flag in a worker script must fail loudly,
// not silently produce an incomplete dataset). With none of those
// properties set it returns the zero config: the sequential executor,
// keeping measurements unperturbed by concurrency.
func buildRunConfig(props *config.Properties) (repro.RunConfig, error) {
	var cfg repro.RunConfig
	var err error
	workersSet := props.GetOr("sched.workers", "") != ""
	journalDir := props.GetOr("journal.dir", "")
	shardsSet := props.GetOr("sched.shards", "") != ""
	shardSet := props.GetOr("sched.shard", "") != ""
	storeKind := props.GetOr("store", "")
	adaptiveCfg, err := buildAdaptive(props)
	if err != nil {
		return cfg, err
	}
	if !workersSet && journalDir == "" && adaptiveCfg == nil && !shardsSet && !shardSet && storeKind == "" {
		return cfg, nil
	}
	cfg.JournalDir = journalDir
	cfg.Adaptive = adaptiveCfg
	if storeKind != "" && journalDir == "" {
		return cfg, fmt.Errorf("store=%s requires -Djournal.dir (the directory the per-experiment store files live in)", storeKind)
	}
	switch storeKind {
	case "", "journal":
		// The JSONL journal is the default backend.
	case "archive":
		if shardsSet {
			return cfg, fmt.Errorf("store=archive cannot combine with sched.shards: shard files are journals; archive the merged result instead")
		}
		cfg.Store = repro.StoreArchive
	case "binary":
		if shardsSet {
			return cfg, fmt.Errorf("store=binary cannot combine with sched.shards: shard files are JSONL journals; convert the merged result instead")
		}
		cfg.Store = repro.StoreBinary
	default:
		return cfg, fmt.Errorf("unknown store backend %q (want journal, archive, or binary)", storeKind)
	}
	if shardSet && !shardsSet {
		return cfg, fmt.Errorf("sched.shard needs sched.shards")
	}
	if shardsSet {
		if cfg.Shards, err = props.GetInt("sched.shards"); err != nil {
			return cfg, err
		}
		if cfg.Shards < 1 {
			return cfg, fmt.Errorf("sched.shards = %d, need >= 1", cfg.Shards)
		}
		if journalDir == "" {
			return cfg, fmt.Errorf("sched.shards requires -Djournal.dir (shard files are the run's only output)")
		}
		if !shardSet && cfg.Shards > 1 {
			// Defaulting to shard 0 would silently execute a fraction of
			// the design and exit 0 — a dropped flag in a worker script
			// must fail loudly, not produce an incomplete dataset.
			return cfg, fmt.Errorf("sched.shards = %d needs an explicit -Dsched.shard=K (0..%d)", cfg.Shards, cfg.Shards-1)
		}
		if shardSet {
			if cfg.Shard, err = props.GetInt("sched.shard"); err != nil {
				return cfg, err
			}
		}
		if cfg.Shard < 0 || cfg.Shard >= cfg.Shards {
			return cfg, fmt.Errorf("sched.shard = %d out of range [0,%d)", cfg.Shard, cfg.Shards)
		}
	}
	if workersSet {
		if cfg.Workers, err = props.GetInt("sched.workers"); err != nil {
			return cfg, err
		}
		if cfg.Workers < 1 {
			return cfg, fmt.Errorf("sched.workers = %d, need >= 1", cfg.Workers)
		}
	}
	if props.GetOr("sched.retries", "") != "" {
		if cfg.Retries, err = props.GetInt("sched.retries"); err != nil {
			return cfg, err
		}
	}
	if props.GetOr("sched.timeout", "") != "" {
		if cfg.Timeout, err = props.GetDuration("sched.timeout"); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// buildAdaptive maps the adaptive.* properties onto an AdaptiveConfig,
// nil when none is set.
func buildAdaptive(props *config.Properties) (*repro.AdaptiveConfig, error) {
	relSet := props.GetOr("adaptive.rel", "") != ""
	minSet := props.GetOr("adaptive.min", "") != ""
	maxSet := props.GetOr("adaptive.max", "") != ""
	prioritize := props.GetOr("adaptive.prioritize", "")
	if !relSet && !minSet && !maxSet && prioritize == "" {
		return nil, nil
	}
	a := &repro.AdaptiveConfig{Baseline: prioritize}
	var err error
	if relSet {
		if a.Rel, err = props.GetFloat("adaptive.rel"); err != nil {
			return nil, err
		}
	}
	if minSet {
		if a.Min, err = props.GetInt("adaptive.min"); err != nil {
			return nil, err
		}
	}
	if maxSet {
		if a.Max, err = props.GetInt("adaptive.max"); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// merge folds shard journals into one canonical journal and reports
// cross-source conflicts; with merge.strict=true conflicts fail the
// command after the (last-wins) merge has still been written.
func merge(w io.Writer, props *config.Properties, out string, srcs []string) error {
	strict, err := strictFlag(props, "merge.strict")
	if err != nil {
		return err
	}
	ms, err := repro.Merge(out, srcs...)
	if err != nil {
		return err
	}
	for _, c := range ms.Conflicts {
		fmt.Fprintf(w, "conflict: %s: %s overrides %s\n", c.Key, c.Later, c.Earlier)
	}
	fmt.Fprintf(w, "merged %d source(s) into %s: kept %d record(s), dropped %d superseded, %d conflict(s)",
		ms.Sources, out, ms.Kept, ms.Superseded, len(ms.Conflicts))
	if ms.TornSources > 0 {
		fmt.Fprintf(w, ", torn tail dropped in %d source(s)", ms.TornSources)
	}
	fmt.Fprintln(w)
	if strict && len(ms.Conflicts) > 0 {
		return fmt.Errorf("%d conflicting record(s) across sources", len(ms.Conflicts))
	}
	return nil
}

// archiveCmd converts source journals (or merged shards, or archives)
// into one finalized, read-back-verified block-indexed archive via
// repro.Convert. Cross-source conflicts are reported exactly as
// `perfeval merge` reports them; with merge.strict=true they abort the
// conversion before anything is written.
func archiveCmd(w io.Writer, props *config.Properties, out string, srcs []string) error {
	strict, err := strictFlag(props, "merge.strict")
	if err != nil {
		return err
	}
	cs, err := repro.Convert(out, srcs, strict)
	for _, c := range cs.Conflicts {
		fmt.Fprintf(w, "conflict: %s: %s overrides %s\n", c.Key, c.Later, c.Earlier)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "archived %d source(s) into %s: %d record(s), dropped %d superseded, verified %d index lookup(s)",
		cs.Sources, out, cs.Kept, cs.Superseded, cs.Verified)
	if cs.TornSources > 0 {
		fmt.Fprintf(w, ", torn tail dropped in %d source(s)", cs.TornSources)
	}
	if len(cs.Conflicts) > 0 {
		fmt.Fprintf(w, ", %d conflict(s)", len(cs.Conflicts))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, cs.Detail)
	return nil
}

// strictFlag parses one boolean -D property, defaulting to false.
func strictFlag(props *config.Properties, key string) (bool, error) {
	if props.GetOr(key, "") == "" {
		return false, nil
	}
	return props.GetBool(key)
}

// inspect prints the shape of store files — journals or archives — and
// reports torn or truncated tails loudly instead of letting a damaged
// artifact read as a small complete one. A directory argument expands to
// every store file the warehouse catalog would discover under it, one
// row per store. inspect.strict=true turns any torn file into a
// non-zero exit for CI use.
func inspect(w io.Writer, props *config.Properties, paths []string) error {
	strict, err := strictFlag(props, "inspect.strict")
	if err != nil {
		return err
	}
	tab := repro.NewTable().Header("file", "records", "distinct", "torn")
	var details, torn []string
	addRow := func(name string, info repro.Info) {
		tab.Row(name, fmt.Sprintf("%d", info.Records), fmt.Sprintf("%d", info.Distinct), fmt.Sprintf("%v", info.Torn))
		if info.Detail != "" {
			details = append(details, name+": "+info.Detail)
		}
		if info.Torn {
			torn = append(torn, name)
		}
	}
	for _, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			return err
		}
		if st.IsDir() {
			stores, err := repro.InspectDir(p)
			if err != nil {
				return err
			}
			if len(stores) == 0 {
				details = append(details, p+": no store files discovered")
			}
			for _, s := range stores {
				addRow(filepath.Join(p, filepath.FromSlash(s.Path)), s.Info)
			}
			continue
		}
		info, err := repro.Inspect(p)
		if err != nil {
			return err
		}
		addRow(p, info)
	}
	fmt.Fprint(w, tab.String())
	for _, d := range details {
		fmt.Fprintln(w, d)
	}
	for _, p := range torn {
		fmt.Fprintf(w, "WARNING: %s has a torn or truncated tail — counts cover only the valid prefix; reopening for writing repairs by truncation\n", p)
	}
	if strict && len(torn) > 0 {
		return fmt.Errorf("%d file(s) torn or truncated", len(torn))
	}
	return nil
}

// shardPlan prints the copy-pasteable command sequence of the sharded
// workflow — one worker command per shard, then the merge, compact, and
// diff steps — and, when the journal directory already exists, a status
// table of the shard files found there.
func shardPlan(w io.Writer, props *config.Properties, id string) error {
	shards, err := props.GetInt("sched.shards")
	if err != nil {
		return fmt.Errorf("shard-plan needs -Dsched.shards=N: %w", err)
	}
	if shards < 1 {
		return fmt.Errorf("sched.shards = %d, need >= 1", shards)
	}
	if id != "all" {
		known := false
		for _, e := range repro.Experiments() {
			if e.ID == id {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown experiment %q (see perfeval list)", id)
		}
	}
	dir := props.GetOr("journal.dir", "shards")
	fmt.Fprintf(w, "shard plan: run %s across %d worker process(es), journal dir %s\n\n", id, shards, dir)
	fmt.Fprintf(w, "# 1. one worker per shard — separate processes or machines, any order;\n")
	fmt.Fprintf(w, "#    each executes only the design rows its shard owns and writes\n")
	fmt.Fprintf(w, "#    %s/<experiment>.shard-K-of-%03d.jsonl:\n", dir, shards)
	for k := 0; k < shards; k++ {
		fmt.Fprintf(w, "perfeval run %s -Dsched.shards=%d -Dsched.shard=%d -Djournal.dir=%s\n", id, shards, k, dir)
	}
	fmt.Fprintf(w, "\n# 2. merge each experiment's shard files into one canonical journal:\n")
	fmt.Fprintf(w, "perfeval merge %s/merged/<experiment>.jsonl %s/<experiment>.shard-*-of-%03d.jsonl\n", dir, dir, shards)
	fmt.Fprintf(w, "\n# 3. compact is then a byte-identical no-op (merge already wrote the\n")
	fmt.Fprintf(w, "#    canonical last-wins form), so archives stay stable:\n")
	fmt.Fprintf(w, "perfeval compact %s/merged/<experiment>.jsonl\n", dir)
	fmt.Fprintf(w, "\n# 4. replay the merged journal for the full artifact, or gate it:\n")
	fmt.Fprintf(w, "perfeval run %s -Djournal.dir=%s/merged\n", id, dir)
	fmt.Fprintf(w, "perfeval diff <baseline.jsonl> %s/merged/<experiment>.jsonl\n", dir)
	fmt.Fprintf(w, "\n# collector mode runs the same plan without a shared filesystem or\n")
	fmt.Fprintf(w, "# per-worker -Dsched.shard bookkeeping: one daemon owns the store and\n")
	fmt.Fprintf(w, "# leases shards to workers over HTTP (see docs/COLLECTOR.md):\n")
	fmt.Fprintf(w, "perfeval serve -Dcollector.dir=%s -Dcollector.shards=%d\n", dir, shards)
	fmt.Fprintf(w, "perfeval work %s -Dcollector.url=http://<collector-host>:8080   # per worker machine\n", id)

	pattern := filepath.Join(dir, fmt.Sprintf("*.shard-*-of-%03d.jsonl", shards))
	files, err := filepath.Glob(pattern)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return nil
	}
	sort.Strings(files)
	fmt.Fprintf(w, "\nshard files present under %s:\n", dir)
	tab := repro.NewTable().Header("file", "records", "distinct", "torn")
	for _, f := range files {
		info, err := repro.Inspect(f)
		if err != nil {
			return err
		}
		tab.Row(filepath.Base(f), fmt.Sprintf("%d", info.Records),
			fmt.Sprintf("%d", info.Distinct), fmt.Sprintf("%v", info.Torn))
	}
	fmt.Fprint(w, tab.String())
	return nil
}

// queryCmd maps the query.* properties onto a repro.QueryConfig and
// prints the answer — the house-style table by default, or with
// query.format=json the exact body a collector daemon serves on
// GET /v1/query for the same warehouse.
func queryCmd(w io.Writer, props *config.Properties, dir string) error {
	cfg := repro.QueryConfig{
		Dir:        dir,
		Kind:       props.GetOr("query.kind", ""),
		Experiment: props.GetOr("query.experiment", ""),
		Cell:       props.GetOr("query.cell", ""),
		Response:   props.GetOr("query.response", ""),
	}
	var err error
	if props.GetOr("query.confidence", "") != "" {
		if cfg.Confidence, err = props.GetFloat("query.confidence"); err != nil {
			return err
		}
	}
	if props.GetOr("query.tolerance", "") != "" {
		if cfg.Tolerance, err = props.GetFloat("query.tolerance"); err != nil {
			return err
		}
	}
	if props.GetOr("query.limit", "") != "" {
		if cfg.Limit, err = props.GetInt("query.limit"); err != nil {
			return err
		}
	}
	if props.GetOr("query.keep", "") != "" {
		if cfg.KeepRuns, err = props.GetInt("query.keep"); err != nil {
			return err
		}
	}
	if props.GetOr("query.maxage", "") != "" {
		if cfg.MaxAge, err = props.GetDuration("query.maxage"); err != nil {
			return err
		}
	}
	if cfg.NoRefresh, err = strictFlag(props, "query.norefresh"); err != nil {
		return err
	}
	format := props.GetOr("query.format", "table")
	if format != "table" && format != "json" {
		return fmt.Errorf("unknown query format %q (want table or json)", format)
	}
	out, err := repro.Query(cfg)
	if err != nil {
		return err
	}
	if format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(out.Result)
	}
	if !cfg.NoRefresh {
		fmt.Fprintf(w, "catalog: %d store(s) discovered, %d ingested (%d record(s)), %d unchanged\n",
			out.Refresh.Candidates, out.Refresh.Ingested, out.Refresh.Records, out.Refresh.Unchanged)
	}
	if cfg.KeepRuns > 0 || cfg.MaxAge > 0 {
		fmt.Fprintf(w, "retention: %d run(s) pruned, %d kept\n", out.Prune.Pruned, out.Prune.Kept)
	}
	fmt.Fprint(w, out.Result.String())
	return nil
}

// diff gates a current run store against a baseline store and returns
// an error when any cell regressed or went unmeasured, so CI pipelines
// can fail on the exit code.
func diff(w io.Writer, props *config.Properties, basePath, curPath string) error {
	var opt repro.GateOptions
	var err error
	if props.GetOr("diff.confidence", "") != "" {
		if opt.Confidence, err = props.GetFloat("diff.confidence"); err != nil {
			return err
		}
	}
	if props.GetOr("diff.tolerance", "") != "" {
		if opt.Tolerance, err = props.GetFloat("diff.tolerance"); err != nil {
			return err
		}
	}
	d, err := repro.Diff(basePath, curPath, opt)
	if err != nil {
		return err
	}
	for _, e := range d.Entries {
		if e.Report == nil {
			fmt.Fprintf(w, "experiment %q: absent from current run\n", e.Experiment)
			continue
		}
		fmt.Fprintln(w, e.Report)
	}
	for _, name := range d.CurrentOnly {
		fmt.Fprintf(w, "experiment %q: in current only, skipped\n", name)
	}
	if d.Failed() {
		return fmt.Errorf("%d cell(s) regressed, %d cell(s) missing versus baseline %s", d.Regressions, d.Missing, basePath)
	}
	return nil
}
