// Command perfeval regenerates the paper's tables and figures.
//
// Usage:
//
//	perfeval list
//	perfeval run <id>|all [-Dout.dir=DIR] [-Dsched.workers=N] [-Djournal.dir=DIR]
//	perfeval diff <baseline.jsonl> <current.jsonl> [-Ddiff.confidence=0.95] [-Ddiff.tolerance=0.05]
//	perfeval compact <journal.jsonl> [-Dcompact.out=PATH]
//	perfeval suite
//
// run prints the artifact to stdout; with -Dout.dir=DIR it also writes
// res/<id>.txt under DIR (creating directories as needed). With
// -Dsched.workers=N and/or -Djournal.dir=DIR the harness executes
// through the concurrent scheduler (internal/sched): design rows run in
// parallel on N workers, completed units are journaled under DIR, and a
// re-run warm-starts from the journal, skipping completed rows.
// -Dsched.retries=N and -Dsched.timeout=DUR tune per-unit retry and
// timeout.
//
// Adaptive replication (internal/adaptive) replaces the fixed
// rows x replicates budget with CI-targeted sequential analysis:
// -Dadaptive.rel=0.05 stops replicating a cell once its confidence
// interval's relative half-width is <= 5%, after at least
// -Dadaptive.min=3 and at most -Dadaptive.max=50 replicates.
// -Dadaptive.prioritize=<baseline.jsonl> compares running cells against
// a baseline journal: cells the gate would flag as regressed get a
// tighter (rel/2) target and are scheduled first. Any adaptive.* flag
// switches the run onto the scheduler; after each experiment a budget
// report prints the replicates spent per cell against the fixed-budget
// equivalent.
//
// diff loads two run journals, aggregates them per (assignment,
// response), and applies the regression gate (internal/runstore):
// confidence intervals that have shifted versus the baseline are flagged
// and the command exits non-zero — a CI guard for performance work.
//
// compact rewrites a journal keeping only the last record of every
// (experiment, assignment, replicate) key — the retention tool for
// journals that accumulated superseded records. In place by default;
// -Dcompact.out=PATH writes aside instead.
//
// suite prints the repeatability instructions for the whole experiment
// set.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/adaptive"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/paperexp"
	"repro/internal/runstore"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfeval:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runW(os.Stdout, args) }

func runW(w io.Writer, args []string) error {
	props := config.New(nil)
	rest, err := props.ApplyArgs(args)
	if err != nil {
		return err
	}
	if len(rest) == 0 {
		return fmt.Errorf("usage: perfeval list | run <id>|all | diff <baseline> <current> | compact <journal> | suite")
	}
	switch rest[0] {
	case "list":
		for _, e := range paperexp.Registry() {
			fmt.Fprintf(w, "%-4s %s\n", e.ID, e.Title)
		}
		return nil

	case "run":
		if len(rest) < 2 {
			return fmt.Errorf("usage: perfeval run <id>|all")
		}
		restore, scheduler, err := installExecutor(w, props)
		if err != nil {
			return err
		}
		defer restore()
		outDir := props.GetOr("out.dir", "")
		ids := rest[1:]
		if rest[1] == "all" {
			// Run ids one by one (rather than paperexp.RunAll) so the
			// adaptive budget report can print per experiment.
			ids = nil
			for _, e := range paperexp.Registry() {
				ids = append(ids, e.ID)
			}
		}
		for _, id := range ids {
			r, err := paperexp.Run(id)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Fprintf(w, "=== %s (slides %s): %s ===\n\n%s\n", r.ID, r.Slides, r.Title, r.Text)
			if r.Notes != "" {
				fmt.Fprintf(w, "notes: %s\n\n", r.Notes)
			}
			budgetReport(w, scheduler)
			if outDir != "" {
				dir := filepath.Join(outDir, "res")
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(dir, r.ID+".txt")
				if err := os.WriteFile(path, []byte(r.Text), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n\n", path)
			}
		}
		return nil

	case "diff":
		if len(rest) != 3 {
			return fmt.Errorf("usage: perfeval diff <baseline.jsonl> <current.jsonl>")
		}
		return diff(w, props, rest[1], rest[2])

	case "compact":
		if len(rest) != 2 {
			return fmt.Errorf("usage: perfeval compact <journal.jsonl>")
		}
		out := props.GetOr("compact.out", "")
		cs, err := runstore.Compact(rest[1], out)
		if err != nil {
			return err
		}
		if out == "" {
			out = rest[1]
		}
		fmt.Fprintf(w, "compacted %s: kept %d record(s), dropped %d superseded", out, cs.Kept, cs.Dropped)
		if cs.Torn {
			fmt.Fprint(w, ", torn tail removed")
		}
		fmt.Fprintln(w)
		return nil

	case "suite":
		fmt.Fprint(w, paperexp.PaperSuite().Instructions())
		return nil

	default:
		return fmt.Errorf("unknown command %q (want list, run, diff, compact, or suite)", rest[0])
	}
}

// installExecutor swaps in the concurrent scheduler when sched.*,
// journal.*, or adaptive.* properties ask for it, returning a restore
// function and the installed scheduler (nil when sequential). With none
// of those properties set it is a no-op: the sequential executor stays,
// keeping measurements unperturbed by concurrency.
func installExecutor(w io.Writer, props *config.Properties) (restore func(), s *sched.Scheduler, err error) {
	workersSet := props.GetOr("sched.workers", "") != ""
	journalDir := props.GetOr("journal.dir", "")
	ctrl, ctrlBanner, err := buildController(props)
	if err != nil {
		return nil, nil, err
	}
	if !workersSet && journalDir == "" && ctrl == nil {
		return func() {}, nil, nil
	}
	opts := sched.Options{JournalDir: journalDir}
	if ctrl != nil { // assigning a nil *Controller would make the interface non-nil
		opts.Controller = ctrl
	}
	if workersSet {
		if opts.Workers, err = props.GetInt("sched.workers"); err != nil {
			return nil, nil, err
		}
		if opts.Workers < 1 {
			return nil, nil, fmt.Errorf("sched.workers = %d, need >= 1", opts.Workers)
		}
	} else {
		// Resolve the scheduler's GOMAXPROCS default here so the banner
		// reports the worker count that actually runs.
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if props.GetOr("sched.retries", "") != "" {
		if opts.Retries, err = props.GetInt("sched.retries"); err != nil {
			return nil, nil, err
		}
	}
	if props.GetOr("sched.timeout", "") != "" {
		if opts.Timeout, err = props.GetDuration("sched.timeout"); err != nil {
			return nil, nil, err
		}
	}
	s = sched.New(opts)
	fmt.Fprintf(w, "scheduler: %d workers", opts.Workers)
	if journalDir != "" {
		fmt.Fprintf(w, ", journal %s", journalDir)
	}
	if ctrlBanner != "" {
		fmt.Fprintf(w, ", %s", ctrlBanner)
	}
	fmt.Fprintln(w)
	prev := harness.SetDefaultExecutor(s)
	return func() { harness.SetDefaultExecutor(prev) }, s, nil
}

// buildController assembles the adaptive replication controller when any
// adaptive.* property is set. adaptive.prioritize names a baseline
// journal; its per-experiment summaries arm mid-run drift flagging and
// gate-first scheduling.
func buildController(props *config.Properties) (*adaptive.Controller, string, error) {
	relSet := props.GetOr("adaptive.rel", "") != ""
	minSet := props.GetOr("adaptive.min", "") != ""
	maxSet := props.GetOr("adaptive.max", "") != ""
	prioritize := props.GetOr("adaptive.prioritize", "")
	if !relSet && !minSet && !maxSet && prioritize == "" {
		return nil, "", nil
	}
	var opts adaptive.Options
	var err error
	if relSet {
		if opts.Rel, err = props.GetFloat("adaptive.rel"); err != nil {
			return nil, "", err
		}
	}
	if minSet {
		if opts.Min, err = props.GetInt("adaptive.min"); err != nil {
			return nil, "", err
		}
	}
	if maxSet {
		if opts.Max, err = props.GetInt("adaptive.max"); err != nil {
			return nil, "", err
		}
	}
	ctrl, err := adaptive.New(opts)
	if err != nil {
		return nil, "", err
	}
	if prioritize != "" {
		recs, err := runstore.LoadRecords(prioritize)
		if err != nil {
			return nil, "", fmt.Errorf("adaptive.prioritize: %w", err)
		}
		for _, s := range runstore.Summarize(recs) {
			if err := ctrl.AddBaseline(s); err != nil {
				return nil, "", fmt.Errorf("adaptive.prioritize: %w", err)
			}
		}
	}
	banner := fmt.Sprintf("adaptive rel=%s min=%s max=%s",
		props.GetOr("adaptive.rel", fmt.Sprintf("%g", adaptive.DefaultRel)),
		props.GetOr("adaptive.min", fmt.Sprintf("%d", adaptive.DefaultMin)),
		props.GetOr("adaptive.max", fmt.Sprintf("%d", adaptive.DefaultMax)))
	if prioritize != "" {
		banner += " prioritize=" + prioritize
	}
	return ctrl, banner, nil
}

// budgetReport prints what the last adaptive run spent per cell against
// the fixed rows x replicates budget it replaced, consuming the stats so
// an experiment that runs nothing through the harness cannot reprint its
// predecessor's report. A nil or fixed-budget scheduler prints nothing.
func budgetReport(w io.Writer, s *sched.Scheduler) {
	if s == nil {
		return
	}
	cells := s.TakeCellStats()
	if len(cells) == 0 {
		return
	}
	st := s.LastStats()
	fixedPerCell := st.FixedBudget / len(cells)
	tab := harness.NewTable().Header("run", "assignment", "reps", "fixed", "note")
	for _, c := range cells {
		tab.Row(fmt.Sprintf("%d", c.Row+1), c.Assignment.String(),
			fmt.Sprintf("%d", c.Spent()), fmt.Sprintf("%d", fixedPerCell), c.Note)
	}
	fmt.Fprintf(w, "adaptive budget report: %d replicates spent (%d live, %d replayed) vs fixed budget %d",
		st.Units, st.Executed, st.Replayed, st.FixedBudget)
	if st.FixedBudget > 0 {
		fmt.Fprintf(w, " (%.1f%% saved)", (1-float64(st.Units)/float64(st.FixedBudget))*100)
	}
	fmt.Fprintf(w, "\n%s\n", tab.String())
}

// diff gates a current run journal against a baseline journal and
// returns an error when any cell regressed, so CI pipelines can fail on
// the exit code.
func diff(w io.Writer, props *config.Properties, basePath, curPath string) error {
	opt := runstore.GateOptions{}
	var err error
	if props.GetOr("diff.confidence", "") != "" {
		if opt.Confidence, err = props.GetFloat("diff.confidence"); err != nil {
			return err
		}
	}
	if props.GetOr("diff.tolerance", "") != "" {
		if opt.Tolerance, err = props.GetFloat("diff.tolerance"); err != nil {
			return err
		}
	}
	baseRecs, err := runstore.LoadRecords(basePath)
	if err != nil {
		return err
	}
	curRecs, err := runstore.LoadRecords(curPath)
	if err != nil {
		return err
	}
	baseSums := runstore.Summarize(baseRecs)
	curByExp := map[string]*runstore.Summary{}
	for _, s := range runstore.Summarize(curRecs) {
		curByExp[s.Experiment] = s
	}
	if len(baseSums) == 0 {
		return fmt.Errorf("baseline %s holds no records", basePath)
	}
	if len(curByExp) == 0 {
		return fmt.Errorf("current %s holds no records (crashed before the first append?)", curPath)
	}
	// A baseline experiment or cell absent from the current run fails the
	// gate just like a regression: "we no longer measure it" must never
	// read as "it did not regress".
	regressions, missing := 0, 0
	for _, base := range baseSums {
		cur, ok := curByExp[base.Experiment]
		if !ok {
			fmt.Fprintf(w, "experiment %q: absent from current run\n", base.Experiment)
			missing += len(base.Rows)
			continue
		}
		delete(curByExp, base.Experiment)
		report, err := runstore.Gate(base, cur, opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report)
		regressions += len(report.Regressions())
		for _, f := range report.Findings {
			if f.Verdict == runstore.Missing {
				missing++
			}
		}
	}
	var onlyCur []string
	for name := range curByExp {
		onlyCur = append(onlyCur, name)
	}
	sort.Strings(onlyCur)
	for _, name := range onlyCur {
		fmt.Fprintf(w, "experiment %q: in current only, skipped\n", name)
	}
	if regressions > 0 || missing > 0 {
		return fmt.Errorf("%d cell(s) regressed, %d cell(s) missing versus baseline %s", regressions, missing, basePath)
	}
	return nil
}
