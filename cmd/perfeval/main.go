// Command perfeval regenerates the paper's tables and figures.
//
// Usage:
//
//	perfeval list
//	perfeval run <id>|all [-Dout.dir=DIR] [-Dsched.workers=N] [-Djournal.dir=DIR]
//	perfeval diff <baseline.jsonl> <current.jsonl> [-Ddiff.confidence=0.95] [-Ddiff.tolerance=0.05]
//	perfeval suite
//
// run prints the artifact to stdout; with -Dout.dir=DIR it also writes
// res/<id>.txt under DIR (creating directories as needed). With
// -Dsched.workers=N and/or -Djournal.dir=DIR the harness executes
// through the concurrent scheduler (internal/sched): design rows run in
// parallel on N workers, completed units are journaled under DIR, and a
// re-run warm-starts from the journal, skipping completed rows.
// -Dsched.retries=N and -Dsched.timeout=DUR tune per-unit retry and
// timeout.
//
// diff loads two run journals, aggregates them per (assignment,
// response), and applies the regression gate (internal/runstore):
// confidence intervals that have shifted versus the baseline are flagged
// and the command exits non-zero — a CI guard for performance work.
//
// suite prints the repeatability instructions for the whole experiment
// set.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"

	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/paperexp"
	"repro/internal/runstore"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfeval:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runW(os.Stdout, args) }

func runW(w io.Writer, args []string) error {
	props := config.New(nil)
	rest, err := props.ApplyArgs(args)
	if err != nil {
		return err
	}
	if len(rest) == 0 {
		return fmt.Errorf("usage: perfeval list | run <id>|all | diff <baseline> <current> | suite")
	}
	switch rest[0] {
	case "list":
		for _, e := range paperexp.Registry() {
			fmt.Fprintf(w, "%-4s %s\n", e.ID, e.Title)
		}
		return nil

	case "run":
		if len(rest) < 2 {
			return fmt.Errorf("usage: perfeval run <id>|all")
		}
		restore, err := installExecutor(w, props)
		if err != nil {
			return err
		}
		defer restore()
		outDir := props.GetOr("out.dir", "")
		var results []*paperexp.Result
		if rest[1] == "all" {
			results, err = paperexp.RunAll()
			if err != nil {
				return err
			}
		} else {
			for _, id := range rest[1:] {
				r, err := paperexp.Run(id)
				if err != nil {
					return err
				}
				results = append(results, r)
			}
		}
		for _, r := range results {
			fmt.Fprintf(w, "=== %s (slides %s): %s ===\n\n%s\n", r.ID, r.Slides, r.Title, r.Text)
			if r.Notes != "" {
				fmt.Fprintf(w, "notes: %s\n\n", r.Notes)
			}
			if outDir != "" {
				dir := filepath.Join(outDir, "res")
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(dir, r.ID+".txt")
				if err := os.WriteFile(path, []byte(r.Text), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n\n", path)
			}
		}
		return nil

	case "diff":
		if len(rest) != 3 {
			return fmt.Errorf("usage: perfeval diff <baseline.jsonl> <current.jsonl>")
		}
		return diff(w, props, rest[1], rest[2])

	case "suite":
		fmt.Fprint(w, paperexp.PaperSuite().Instructions())
		return nil

	default:
		return fmt.Errorf("unknown command %q (want list, run, diff, or suite)", rest[0])
	}
}

// installExecutor swaps in the concurrent scheduler when sched.* or
// journal.* properties ask for it, returning a restore function. With
// none of those properties set it is a no-op: the sequential executor
// stays, keeping measurements unperturbed by concurrency.
func installExecutor(w io.Writer, props *config.Properties) (restore func(), err error) {
	workersSet := props.GetOr("sched.workers", "") != ""
	journalDir := props.GetOr("journal.dir", "")
	if !workersSet && journalDir == "" {
		return func() {}, nil
	}
	opts := sched.Options{JournalDir: journalDir}
	if workersSet {
		if opts.Workers, err = props.GetInt("sched.workers"); err != nil {
			return nil, err
		}
		if opts.Workers < 1 {
			return nil, fmt.Errorf("sched.workers = %d, need >= 1", opts.Workers)
		}
	} else {
		// Resolve the scheduler's GOMAXPROCS default here so the banner
		// reports the worker count that actually runs.
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if props.GetOr("sched.retries", "") != "" {
		if opts.Retries, err = props.GetInt("sched.retries"); err != nil {
			return nil, err
		}
	}
	if props.GetOr("sched.timeout", "") != "" {
		if opts.Timeout, err = props.GetDuration("sched.timeout"); err != nil {
			return nil, err
		}
	}
	s := sched.New(opts)
	fmt.Fprintf(w, "scheduler: %d workers", opts.Workers)
	if journalDir != "" {
		fmt.Fprintf(w, ", journal %s", journalDir)
	}
	fmt.Fprintln(w)
	prev := harness.SetDefaultExecutor(s)
	return func() { harness.SetDefaultExecutor(prev) }, nil
}

// diff gates a current run journal against a baseline journal and
// returns an error when any cell regressed, so CI pipelines can fail on
// the exit code.
func diff(w io.Writer, props *config.Properties, basePath, curPath string) error {
	opt := runstore.GateOptions{}
	var err error
	if props.GetOr("diff.confidence", "") != "" {
		if opt.Confidence, err = props.GetFloat("diff.confidence"); err != nil {
			return err
		}
	}
	if props.GetOr("diff.tolerance", "") != "" {
		if opt.Tolerance, err = props.GetFloat("diff.tolerance"); err != nil {
			return err
		}
	}
	baseRecs, err := runstore.LoadRecords(basePath)
	if err != nil {
		return err
	}
	curRecs, err := runstore.LoadRecords(curPath)
	if err != nil {
		return err
	}
	baseSums := runstore.Summarize(baseRecs)
	curByExp := map[string]*runstore.Summary{}
	for _, s := range runstore.Summarize(curRecs) {
		curByExp[s.Experiment] = s
	}
	if len(baseSums) == 0 {
		return fmt.Errorf("baseline %s holds no records", basePath)
	}
	if len(curByExp) == 0 {
		return fmt.Errorf("current %s holds no records (crashed before the first append?)", curPath)
	}
	// A baseline experiment or cell absent from the current run fails the
	// gate just like a regression: "we no longer measure it" must never
	// read as "it did not regress".
	regressions, missing := 0, 0
	for _, base := range baseSums {
		cur, ok := curByExp[base.Experiment]
		if !ok {
			fmt.Fprintf(w, "experiment %q: absent from current run\n", base.Experiment)
			missing += len(base.Rows)
			continue
		}
		delete(curByExp, base.Experiment)
		report, err := runstore.Gate(base, cur, opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report)
		regressions += len(report.Regressions())
		for _, f := range report.Findings {
			if f.Verdict == runstore.Missing {
				missing++
			}
		}
	}
	var onlyCur []string
	for name := range curByExp {
		onlyCur = append(onlyCur, name)
	}
	sort.Strings(onlyCur)
	for _, name := range onlyCur {
		fmt.Fprintf(w, "experiment %q: in current only, skipped\n", name)
	}
	if regressions > 0 || missing > 0 {
		return fmt.Errorf("%d cell(s) regressed, %d cell(s) missing versus baseline %s", regressions, missing, basePath)
	}
	return nil
}
