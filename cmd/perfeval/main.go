// Command perfeval regenerates the paper's tables and figures.
//
// Usage:
//
//	perfeval list
//	perfeval run <id>|all [-Dout.dir=DIR] [-Dsched.workers=N] [-Djournal.dir=DIR] [-Dstore=journal|archive]
//	perfeval run <id>|all -Dsched.shards=N -Dsched.shard=K -Djournal.dir=DIR
//	perfeval shard-plan <id>|all -Dsched.shards=N [-Djournal.dir=DIR]
//	perfeval merge <out.jsonl|out.arch> <src.jsonl|src.arch>... [-Dmerge.strict=true]
//	perfeval archive <out.arch> <src.jsonl|src.arch>...
//	perfeval inspect <file>... [-Dinspect.strict=true]
//	perfeval diff <baseline.jsonl> <current.jsonl> [-Ddiff.confidence=0.95] [-Ddiff.tolerance=0.05]
//	perfeval compact <journal.jsonl> [-Dcompact.out=PATH]
//	perfeval suite
//
// run prints the artifact to stdout; with -Dout.dir=DIR it also writes
// res/<id>.txt under DIR (creating directories as needed). With
// -Dsched.workers=N and/or -Djournal.dir=DIR the harness executes
// through the concurrent scheduler (internal/sched): design rows run in
// parallel on N workers, completed units are journaled under DIR, and a
// re-run warm-starts from the journal, skipping completed rows.
// -Dsched.retries=N and -Dsched.timeout=DUR tune per-unit retry and
// timeout.
//
// Adaptive replication (internal/adaptive) replaces the fixed
// rows x replicates budget with CI-targeted sequential analysis:
// -Dadaptive.rel=0.05 stops replicating a cell once its confidence
// interval's relative half-width is <= 5%, after at least
// -Dadaptive.min=3 and at most -Dadaptive.max=50 replicates.
// -Dadaptive.prioritize=<baseline.jsonl> compares running cells against
// a baseline journal: cells the gate would flag as regressed get a
// tighter (rel/2) target and are scheduled first. Any adaptive.* flag
// switches the run onto the scheduler; after each experiment a budget
// report prints the replicates spent per cell against the fixed-budget
// equivalent.
//
// Sharded scale-out: -Dsched.shards=N -Dsched.shard=K partitions each
// experiment's design rows by assignment hash so that N perfeval
// processes (any mix of machines sharing nothing but the eventual merge
// step) execute disjoint row sets, each journaling into its own shard
// file <journal.dir>/<experiment>.shard-K-of-N.jsonl. shard-plan prints
// the worker, merge, and verification commands for a given shard count,
// plus the status of any shard files already present. merge folds shard
// journals (last-wins, cross-source conflicts reported; with
// -Dmerge.strict=true conflicts fail the command) into one journal in
// canonical order — after `perfeval compact`, byte-identical to the
// journal a single-process run of the same experiment produces.
//
// The archive store (-Dstore=archive) swaps the per-experiment JSONL
// journal for the block-indexed single-file archive
// (internal/runstore/archivestore): same warm-start and durability
// semantics, but reopening a finished run costs O(index), not a re-parse
// of every record — the backend for million-run archives. `perfeval
// archive out.arch src...` converts journals (or merged shards, or other
// archives) into one verified archive; `perfeval inspect` prints any
// store file's shape — record/distinct counts, archive block and index
// page stats — and reports torn or truncated tails instead of silently
// counting only the valid prefix (-Dinspect.strict=true turns a torn
// tail into a non-zero exit). diff and merge read archives wherever they
// read journals.
//
// diff loads two run journals, aggregates them per (assignment,
// response), and applies the regression gate (internal/runstore):
// confidence intervals that have shifted versus the baseline are flagged
// and the command exits non-zero — a CI guard for performance work.
//
// compact rewrites a journal keeping only the last record of every
// (experiment, assignment, replicate) key — the retention tool for
// journals that accumulated superseded records. In place by default;
// -Dcompact.out=PATH writes aside instead.
//
// suite prints the repeatability instructions for the whole experiment
// set.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sort"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/config"
	"repro/internal/harness"
	"repro/internal/paperexp"
	"repro/internal/runstore"
	"repro/internal/runstore/archivestore"
	"repro/internal/sched"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perfeval:", err)
		os.Exit(1)
	}
}

func run(args []string) error { return runW(os.Stdout, args) }

func runW(w io.Writer, args []string) error {
	props := config.New(nil)
	rest, err := props.ApplyArgs(args)
	if err != nil {
		return err
	}
	if len(rest) == 0 {
		return fmt.Errorf("usage: perfeval list | run <id>|all | shard-plan <id>|all | merge <out> <src>... | archive <out.arch> <src>... | inspect <file>... | diff <baseline> <current> | compact <journal> | suite")
	}
	switch rest[0] {
	case "list":
		for _, e := range paperexp.Registry() {
			fmt.Fprintf(w, "%-4s %s\n", e.ID, e.Title)
		}
		return nil

	case "run":
		if len(rest) < 2 {
			return fmt.Errorf("usage: perfeval run <id>|all")
		}
		restore, scheduler, err := installExecutor(w, props)
		if err != nil {
			return err
		}
		defer restore()
		outDir := props.GetOr("out.dir", "")
		ids := rest[1:]
		if rest[1] == "all" {
			// Run ids one by one (rather than paperexp.RunAll) so the
			// adaptive budget report can print per experiment.
			ids = nil
			for _, e := range paperexp.Registry() {
				ids = append(ids, e.ID)
			}
		}
		for _, id := range ids {
			r, err := paperexp.Run(id)
			if err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Fprintf(w, "=== %s (slides %s): %s ===\n\n%s\n", r.ID, r.Slides, r.Title, r.Text)
			if r.Notes != "" {
				fmt.Fprintf(w, "notes: %s\n\n", r.Notes)
			}
			budgetReport(w, scheduler)
			if outDir != "" {
				dir := filepath.Join(outDir, "res")
				if err := os.MkdirAll(dir, 0o755); err != nil {
					return err
				}
				path := filepath.Join(dir, r.ID+".txt")
				if err := os.WriteFile(path, []byte(r.Text), 0o644); err != nil {
					return err
				}
				fmt.Fprintf(w, "wrote %s\n\n", path)
			}
		}
		return nil

	case "shard-plan":
		if len(rest) != 2 {
			return fmt.Errorf("usage: perfeval shard-plan <id>|all -Dsched.shards=N [-Djournal.dir=DIR]")
		}
		return shardPlan(w, props, rest[1])

	case "merge":
		if len(rest) < 3 {
			return fmt.Errorf("usage: perfeval merge <out.jsonl> <src.jsonl>...")
		}
		return merge(w, props, rest[1], rest[2:])

	case "archive":
		if len(rest) < 3 {
			return fmt.Errorf("usage: perfeval archive <out%s> <src.jsonl|src%s>...", archivestore.Ext, archivestore.Ext)
		}
		return archiveCmd(w, props, rest[1], rest[2:])

	case "inspect":
		if len(rest) < 2 {
			return fmt.Errorf("usage: perfeval inspect <file>... [-Dinspect.strict=true]")
		}
		return inspect(w, props, rest[1:])

	case "diff":
		if len(rest) != 3 {
			return fmt.Errorf("usage: perfeval diff <baseline.jsonl> <current.jsonl>")
		}
		return diff(w, props, rest[1], rest[2])

	case "compact":
		if len(rest) != 2 {
			return fmt.Errorf("usage: perfeval compact <journal.jsonl>")
		}
		out := props.GetOr("compact.out", "")
		cs, err := runstore.Compact(rest[1], out)
		if err != nil {
			return err
		}
		if out == "" {
			out = rest[1]
		}
		fmt.Fprintf(w, "compacted %s: kept %d record(s), dropped %d superseded", out, cs.Kept, cs.Dropped)
		if cs.Torn {
			fmt.Fprint(w, ", torn tail removed")
		}
		fmt.Fprintln(w)
		return nil

	case "suite":
		fmt.Fprint(w, paperexp.PaperSuite().Instructions())
		return nil

	default:
		return fmt.Errorf("unknown command %q (want list, run, shard-plan, merge, archive, inspect, diff, compact, or suite)", rest[0])
	}
}

// installExecutor swaps in the concurrent scheduler when sched.*,
// journal.*, or adaptive.* properties ask for it, returning a restore
// function and the installed scheduler (nil when sequential). With none
// of those properties set it is a no-op: the sequential executor stays,
// keeping measurements unperturbed by concurrency.
func installExecutor(w io.Writer, props *config.Properties) (restore func(), s *sched.Scheduler, err error) {
	workersSet := props.GetOr("sched.workers", "") != ""
	journalDir := props.GetOr("journal.dir", "")
	shardsSet := props.GetOr("sched.shards", "") != ""
	shardSet := props.GetOr("sched.shard", "") != ""
	storeKind := props.GetOr("store", "")
	ctrl, ctrlBanner, err := buildController(props)
	if err != nil {
		return nil, nil, err
	}
	if !workersSet && journalDir == "" && ctrl == nil && !shardsSet && !shardSet && storeKind == "" {
		return func() {}, nil, nil
	}
	opts := sched.Options{JournalDir: journalDir}
	if storeKind != "" && journalDir == "" {
		return nil, nil, fmt.Errorf("store=%s requires -Djournal.dir (the directory the per-experiment store files live in)", storeKind)
	}
	switch storeKind {
	case "", "journal":
		// The JSONL journal is the default backend.
	case "archive":
		if shardsSet {
			return nil, nil, fmt.Errorf("store=archive cannot combine with sched.shards: shard files are journals; archive the merged result instead")
		}
		opts.OpenStore = func(dir, experiment string) (runstore.Store, error) {
			return archivestore.OpenDir(dir, experiment)
		}
	default:
		return nil, nil, fmt.Errorf("unknown store backend %q (want journal or archive)", storeKind)
	}
	if shardSet && !shardsSet {
		return nil, nil, fmt.Errorf("sched.shard needs sched.shards")
	}
	if shardsSet {
		if opts.Shards, err = props.GetInt("sched.shards"); err != nil {
			return nil, nil, err
		}
		if opts.Shards < 1 {
			return nil, nil, fmt.Errorf("sched.shards = %d, need >= 1", opts.Shards)
		}
		if journalDir == "" {
			return nil, nil, fmt.Errorf("sched.shards requires -Djournal.dir (shard files are the run's only output)")
		}
		if !shardSet && opts.Shards > 1 {
			// Defaulting to shard 0 would silently execute a fraction of
			// the design and exit 0 — a dropped flag in a worker script
			// must fail loudly, not produce an incomplete dataset.
			return nil, nil, fmt.Errorf("sched.shards = %d needs an explicit -Dsched.shard=K (0..%d)", opts.Shards, opts.Shards-1)
		}
		if shardSet {
			if opts.Shard, err = props.GetInt("sched.shard"); err != nil {
				return nil, nil, err
			}
		}
		if opts.Shard < 0 || opts.Shard >= opts.Shards {
			return nil, nil, fmt.Errorf("sched.shard = %d out of range [0,%d)", opts.Shard, opts.Shards)
		}
	}
	if ctrl != nil { // assigning a nil *Controller would make the interface non-nil
		opts.Controller = ctrl
	}
	if workersSet {
		if opts.Workers, err = props.GetInt("sched.workers"); err != nil {
			return nil, nil, err
		}
		if opts.Workers < 1 {
			return nil, nil, fmt.Errorf("sched.workers = %d, need >= 1", opts.Workers)
		}
	} else {
		// Resolve the scheduler's GOMAXPROCS default here so the banner
		// reports the worker count that actually runs.
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if props.GetOr("sched.retries", "") != "" {
		if opts.Retries, err = props.GetInt("sched.retries"); err != nil {
			return nil, nil, err
		}
	}
	if props.GetOr("sched.timeout", "") != "" {
		if opts.Timeout, err = props.GetDuration("sched.timeout"); err != nil {
			return nil, nil, err
		}
	}
	s = sched.New(opts)
	fmt.Fprintf(w, "scheduler: %d workers", opts.Workers)
	if journalDir != "" {
		if opts.OpenStore != nil {
			fmt.Fprintf(w, ", archive store %s", journalDir)
		} else {
			fmt.Fprintf(w, ", journal %s", journalDir)
		}
	}
	if opts.Shards > 0 {
		fmt.Fprintf(w, ", shard %d of %d", opts.Shard, opts.Shards)
	}
	if ctrlBanner != "" {
		fmt.Fprintf(w, ", %s", ctrlBanner)
	}
	fmt.Fprintln(w)
	prev := harness.SetDefaultExecutor(s)
	return func() { harness.SetDefaultExecutor(prev) }, s, nil
}

// buildController assembles the adaptive replication controller when any
// adaptive.* property is set. adaptive.prioritize names a baseline
// journal; its per-experiment summaries arm mid-run drift flagging and
// gate-first scheduling.
func buildController(props *config.Properties) (*adaptive.Controller, string, error) {
	relSet := props.GetOr("adaptive.rel", "") != ""
	minSet := props.GetOr("adaptive.min", "") != ""
	maxSet := props.GetOr("adaptive.max", "") != ""
	prioritize := props.GetOr("adaptive.prioritize", "")
	if !relSet && !minSet && !maxSet && prioritize == "" {
		return nil, "", nil
	}
	var opts adaptive.Options
	var err error
	if relSet {
		if opts.Rel, err = props.GetFloat("adaptive.rel"); err != nil {
			return nil, "", err
		}
	}
	if minSet {
		if opts.Min, err = props.GetInt("adaptive.min"); err != nil {
			return nil, "", err
		}
	}
	if maxSet {
		if opts.Max, err = props.GetInt("adaptive.max"); err != nil {
			return nil, "", err
		}
	}
	ctrl, err := adaptive.New(opts)
	if err != nil {
		return nil, "", err
	}
	if prioritize != "" {
		recs, err := runstore.LoadRecords(prioritize)
		if err != nil {
			return nil, "", fmt.Errorf("adaptive.prioritize: %w", err)
		}
		for _, s := range runstore.Summarize(recs) {
			if err := ctrl.AddBaseline(s); err != nil {
				return nil, "", fmt.Errorf("adaptive.prioritize: %w", err)
			}
		}
	}
	banner := fmt.Sprintf("adaptive rel=%s min=%s max=%s",
		props.GetOr("adaptive.rel", fmt.Sprintf("%g", adaptive.DefaultRel)),
		props.GetOr("adaptive.min", fmt.Sprintf("%d", adaptive.DefaultMin)),
		props.GetOr("adaptive.max", fmt.Sprintf("%d", adaptive.DefaultMax)))
	if prioritize != "" {
		banner += " prioritize=" + prioritize
	}
	return ctrl, banner, nil
}

// budgetReport prints what the last adaptive run spent per cell against
// the fixed rows x replicates budget it replaced, consuming the stats so
// an experiment that runs nothing through the harness cannot reprint its
// predecessor's report. A nil or fixed-budget scheduler prints nothing.
func budgetReport(w io.Writer, s *sched.Scheduler) {
	if s == nil {
		return
	}
	cells := s.TakeCellStats()
	if len(cells) == 0 {
		return
	}
	st := s.LastStats()
	fixedPerCell := st.FixedBudget / len(cells)
	tab := harness.NewTable().Header("run", "assignment", "reps", "fixed", "note")
	for _, c := range cells {
		tab.Row(fmt.Sprintf("%d", c.Row+1), c.Assignment.String(),
			fmt.Sprintf("%d", c.Spent()), fmt.Sprintf("%d", fixedPerCell), c.Note)
	}
	fmt.Fprintf(w, "adaptive budget report: %d replicates spent (%d live, %d replayed) vs fixed budget %d",
		st.Units, st.Executed, st.Replayed, st.FixedBudget)
	if st.FixedBudget > 0 {
		fmt.Fprintf(w, " (%.1f%% saved)", (1-float64(st.Units)/float64(st.FixedBudget))*100)
	}
	fmt.Fprintf(w, "\n%s\n", tab.String())
}

// merge folds shard journals into one canonical journal and reports
// cross-source conflicts; with merge.strict=true conflicts fail the
// command after the (last-wins) merge has still been written.
func merge(w io.Writer, props *config.Properties, out string, srcs []string) error {
	strict := false
	if props.GetOr("merge.strict", "") != "" {
		var err error
		if strict, err = props.GetBool("merge.strict"); err != nil {
			return err
		}
	}
	ms, err := runstore.Merge(srcs, out)
	if err != nil {
		return err
	}
	for _, c := range ms.Conflicts {
		fmt.Fprintf(w, "conflict: %s: %s overrides %s\n", c.Key, c.Later, c.Earlier)
	}
	fmt.Fprintf(w, "merged %d source(s) into %s: kept %d record(s), dropped %d superseded, %d conflict(s)",
		ms.Sources, out, ms.Kept, ms.Superseded, len(ms.Conflicts))
	if ms.TornSources > 0 {
		fmt.Fprintf(w, ", torn tail dropped in %d source(s)", ms.TornSources)
	}
	fmt.Fprintln(w)
	if strict && len(ms.Conflicts) > 0 {
		return fmt.Errorf("%d conflicting record(s) across sources", len(ms.Conflicts))
	}
	return nil
}

// archiveCmd converts source journals (or merged shards, or archives)
// into one finalized block-indexed archive, then verifies the artifact
// by reopening it through its index and comparing every record against
// the in-memory merge — a conversion that cannot be read back is worse
// than no conversion, because archives are what long-lived baselines
// live in. Cross-source conflicts are reported exactly as `perfeval
// merge` reports them (and merge.strict=true fails the same way): a
// divergent measurement masked inside a long-lived baseline is the most
// expensive place to hide one.
func archiveCmd(w io.Writer, props *config.Properties, out string, srcs []string) error {
	if !strings.HasSuffix(out, archivestore.Ext) {
		return fmt.Errorf("archive destination %q must end in %s", out, archivestore.Ext)
	}
	strict := false
	if props.GetOr("merge.strict", "") != "" {
		var err error
		if strict, err = props.GetBool("merge.strict"); err != nil {
			return err
		}
	}
	recs, ms, err := runstore.MergeRecords(srcs)
	if err != nil {
		return err
	}
	for _, c := range ms.Conflicts {
		fmt.Fprintf(w, "conflict: %s: %s overrides %s\n", c.Key, c.Later, c.Earlier)
	}
	if strict && len(ms.Conflicts) > 0 {
		return fmt.Errorf("%d conflicting record(s) across sources; archive not written", len(ms.Conflicts))
	}
	if err := archivestore.Write(out, recs, srcs[0]); err != nil {
		return err
	}
	a, err := archivestore.Open(out)
	if err != nil {
		return fmt.Errorf("verifying %s: %w", out, err)
	}
	defer a.Close()
	if a.Torn() {
		return fmt.Errorf("verifying %s: fresh archive reports a torn tail", out)
	}
	if a.Len() != len(recs) {
		return fmt.Errorf("verifying %s: archive indexes %d record(s), merge produced %d", out, a.Len(), len(recs))
	}
	for _, want := range recs {
		got, ok := a.Lookup(want.Experiment, want.Hash, want.Replicate)
		if !ok {
			return fmt.Errorf("verifying %s: record %s missing from archive index", out, want.Key())
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("verifying %s: record %s does not round-trip: %+v != %+v", out, want.Key(), got, want)
		}
	}
	fmt.Fprintf(w, "archived %d source(s) into %s: %d record(s), dropped %d superseded, verified %d index lookup(s)",
		ms.Sources, out, ms.Kept, ms.Superseded, len(recs))
	if ms.TornSources > 0 {
		fmt.Fprintf(w, ", torn tail dropped in %d source(s)", ms.TornSources)
	}
	if len(ms.Conflicts) > 0 {
		fmt.Fprintf(w, ", %d conflict(s)", len(ms.Conflicts))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, a.Info().Detail)
	return nil
}

// inspect prints the shape of store files — journals or archives — and
// reports torn or truncated tails loudly instead of letting a damaged
// artifact read as a small complete one. inspect.strict=true turns any
// torn file into a non-zero exit for CI use.
func inspect(w io.Writer, props *config.Properties, paths []string) error {
	strict := false
	if props.GetOr("inspect.strict", "") != "" {
		var err error
		if strict, err = props.GetBool("inspect.strict"); err != nil {
			return err
		}
	}
	tab := harness.NewTable().Header("file", "records", "distinct", "torn")
	var details, torn []string
	for _, p := range paths {
		info, err := runstore.Inspect(p)
		if err != nil {
			return err
		}
		tab.Row(p, fmt.Sprintf("%d", info.Records), fmt.Sprintf("%d", info.Distinct), fmt.Sprintf("%v", info.Torn))
		if info.Detail != "" {
			details = append(details, p+": "+info.Detail)
		}
		if info.Torn {
			torn = append(torn, p)
		}
	}
	fmt.Fprint(w, tab.String())
	for _, d := range details {
		fmt.Fprintln(w, d)
	}
	for _, p := range torn {
		fmt.Fprintf(w, "WARNING: %s has a torn or truncated tail — counts cover only the valid prefix; reopening for writing repairs by truncation\n", p)
	}
	if strict && len(torn) > 0 {
		return fmt.Errorf("%d file(s) torn or truncated", len(torn))
	}
	return nil
}

// shardPlan prints the copy-pasteable command sequence of the sharded
// workflow — one worker command per shard, then the merge, compact, and
// diff steps — and, when the journal directory already exists, a status
// table of the shard files found there.
func shardPlan(w io.Writer, props *config.Properties, id string) error {
	shards, err := props.GetInt("sched.shards")
	if err != nil {
		return fmt.Errorf("shard-plan needs -Dsched.shards=N: %w", err)
	}
	if shards < 1 {
		return fmt.Errorf("sched.shards = %d, need >= 1", shards)
	}
	if id != "all" {
		known := false
		for _, e := range paperexp.Registry() {
			if e.ID == id {
				known = true
				break
			}
		}
		if !known {
			return fmt.Errorf("unknown experiment %q (see perfeval list)", id)
		}
	}
	dir := props.GetOr("journal.dir", "shards")
	fmt.Fprintf(w, "shard plan: run %s across %d worker process(es), journal dir %s\n\n", id, shards, dir)
	fmt.Fprintf(w, "# 1. one worker per shard — separate processes or machines, any order;\n")
	fmt.Fprintf(w, "#    each executes only the design rows its shard owns and writes\n")
	fmt.Fprintf(w, "#    %s/<experiment>.shard-K-of-%03d.jsonl:\n", dir, shards)
	for k := 0; k < shards; k++ {
		fmt.Fprintf(w, "perfeval run %s -Dsched.shards=%d -Dsched.shard=%d -Djournal.dir=%s\n", id, shards, k, dir)
	}
	fmt.Fprintf(w, "\n# 2. merge each experiment's shard files into one canonical journal:\n")
	fmt.Fprintf(w, "perfeval merge %s/merged/<experiment>.jsonl %s/<experiment>.shard-*-of-%03d.jsonl\n", dir, dir, shards)
	fmt.Fprintf(w, "\n# 3. compact is then a byte-identical no-op (merge already wrote the\n")
	fmt.Fprintf(w, "#    canonical last-wins form), so archives stay stable:\n")
	fmt.Fprintf(w, "perfeval compact %s/merged/<experiment>.jsonl\n", dir)
	fmt.Fprintf(w, "\n# 4. replay the merged journal for the full artifact, or gate it:\n")
	fmt.Fprintf(w, "perfeval run %s -Djournal.dir=%s/merged\n", id, dir)
	fmt.Fprintf(w, "perfeval diff <baseline.jsonl> %s/merged/<experiment>.jsonl\n", dir)

	pattern := filepath.Join(dir, fmt.Sprintf("*.shard-*-of-%03d.jsonl", shards))
	files, err := filepath.Glob(pattern)
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return nil
	}
	sort.Strings(files)
	fmt.Fprintf(w, "\nshard files present under %s:\n", dir)
	tab := harness.NewTable().Header("file", "records", "distinct", "torn")
	for _, f := range files {
		info, err := runstore.Inspect(f)
		if err != nil {
			return err
		}
		tab.Row(filepath.Base(f), fmt.Sprintf("%d", info.Records),
			fmt.Sprintf("%d", info.Distinct), fmt.Sprintf("%v", info.Torn))
	}
	fmt.Fprint(w, tab.String())
	return nil
}

// diff gates a current run journal against a baseline journal and
// returns an error when any cell regressed, so CI pipelines can fail on
// the exit code.
func diff(w io.Writer, props *config.Properties, basePath, curPath string) error {
	opt := runstore.GateOptions{}
	var err error
	if props.GetOr("diff.confidence", "") != "" {
		if opt.Confidence, err = props.GetFloat("diff.confidence"); err != nil {
			return err
		}
	}
	if props.GetOr("diff.tolerance", "") != "" {
		if opt.Tolerance, err = props.GetFloat("diff.tolerance"); err != nil {
			return err
		}
	}
	baseRecs, err := runstore.LoadRecords(basePath)
	if err != nil {
		return err
	}
	curRecs, err := runstore.LoadRecords(curPath)
	if err != nil {
		return err
	}
	baseSums := runstore.Summarize(baseRecs)
	curByExp := map[string]*runstore.Summary{}
	for _, s := range runstore.Summarize(curRecs) {
		curByExp[s.Experiment] = s
	}
	if len(baseSums) == 0 {
		return fmt.Errorf("baseline %s holds no records", basePath)
	}
	if len(curByExp) == 0 {
		return fmt.Errorf("current %s holds no records (crashed before the first append?)", curPath)
	}
	// A baseline experiment or cell absent from the current run fails the
	// gate just like a regression: "we no longer measure it" must never
	// read as "it did not regress".
	regressions, missing := 0, 0
	for _, base := range baseSums {
		cur, ok := curByExp[base.Experiment]
		if !ok {
			fmt.Fprintf(w, "experiment %q: absent from current run\n", base.Experiment)
			missing += len(base.Rows)
			continue
		}
		delete(curByExp, base.Experiment)
		report, err := runstore.Gate(base, cur, opt)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, report)
		regressions += len(report.Regressions())
		for _, f := range report.Findings {
			if f.Verdict == runstore.Missing {
				missing++
			}
		}
	}
	var onlyCur []string
	for name := range curByExp {
		onlyCur = append(onlyCur, name)
	}
	sort.Strings(onlyCur)
	for _, name := range onlyCur {
		fmt.Fprintf(w, "experiment %q: in current only, skipped\n", name)
	}
	if regressions > 0 || missing > 0 {
		return fmt.Errorf("%d cell(s) regressed, %d cell(s) missing versus baseline %s", regressions, missing, basePath)
	}
	return nil
}
