package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestArchiveWorkflowEndToEnd drives the journal → archive → warm-start
// pipeline through the CLI: a journaled run, conversion with
// verification, inspection, and the acceptance property — a re-run
// against the archive replays exactly the completed units, leaving the
// archive byte-identical and reproducing the journal run's artifact.
func TestArchiveWorkflowEndToEnd(t *testing.T) {
	dir := t.TempDir()
	journalDir := filepath.Join(dir, "journal")
	var first bytes.Buffer
	if err := runW(&first, []string{"-Dsched.workers=1", "-Djournal.dir=" + journalDir, "run", "t4"}); err != nil {
		t.Fatalf("journaled run: %v\n%s", err, first.String())
	}
	journals, err := filepath.Glob(filepath.Join(journalDir, "*.jsonl"))
	if err != nil || len(journals) != 1 {
		t.Fatalf("journals = %v (err %v), want exactly 1", journals, err)
	}

	// Convert; the .arch file must live under its own dir with the same
	// experiment-derived stem so -Dstore=archive finds it.
	archDir := filepath.Join(dir, "archive")
	stem := strings.TrimSuffix(filepath.Base(journals[0]), ".jsonl")
	arch := filepath.Join(archDir, stem+".arch")
	var out bytes.Buffer
	if err := runW(&out, []string{"archive", arch, journals[0]}); err != nil {
		t.Fatalf("archive: %v\n%s", err, out.String())
	}
	for _, want := range []string{"archived 1 source(s)", "verified", "footer ok"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("archive output missing %q:\n%s", want, out.String())
		}
	}

	// Inspect both artifacts: same record counts, archive shape reported.
	out.Reset()
	if err := runW(&out, []string{"inspect", journals[0], arch}); err != nil {
		t.Fatalf("inspect: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "archive:") || !strings.Contains(out.String(), "index page(s)") {
		t.Errorf("inspect output missing archive stats:\n%s", out.String())
	}
	if strings.Contains(out.String(), "WARNING") {
		t.Errorf("inspect of healthy files warned:\n%s", out.String())
	}

	before, err := os.ReadFile(arch)
	if err != nil {
		t.Fatal(err)
	}

	// Warm start from the archive: every unit replays from the index, so
	// the archive must not change by a single byte and the artifact must
	// match the journal-backed run's.
	var second bytes.Buffer
	if err := runW(&second, []string{"-Dsched.workers=1", "-Dstore=archive", "-Djournal.dir=" + archDir, "run", "t4"}); err != nil {
		t.Fatalf("archive-backed run: %v\n%s", err, second.String())
	}
	if !strings.Contains(second.String(), "archive store "+archDir) {
		t.Errorf("banner missing archive store:\n%s", second.String())
	}
	after, err := os.ReadFile(arch)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("warm start mutated the archive: %d bytes -> %d bytes", len(before), len(after))
	}
	stripBanner := func(s string) string {
		lines := strings.SplitN(s, "\n", 2)
		if len(lines) == 2 && strings.HasPrefix(lines[0], "scheduler:") {
			return lines[1]
		}
		return s
	}
	if stripBanner(first.String()) != stripBanner(second.String()) {
		t.Errorf("archive warm start produced a different artifact:\n--- journal run ---\n%s\n--- archive run ---\n%s",
			first.String(), second.String())
	}

	// The archive also gates like a journal: diff it against the journal
	// it came from — identical measurements, no regressions.
	out.Reset()
	if err := runW(&out, []string{"diff", journals[0], arch}); err != nil {
		t.Fatalf("diff journal vs archive: %v\n%s", err, out.String())
	}
}

// TestInspectReportsTruncatedArchive cuts the tail off an archive and
// asserts inspect says so — loudly, and with a non-zero exit under
// inspect.strict — instead of presenting the valid prefix as a complete
// artifact.
func TestInspectReportsTruncatedArchive(t *testing.T) {
	dir := t.TempDir()
	journalDir := filepath.Join(dir, "journal")
	var out bytes.Buffer
	if err := runW(&out, []string{"-Dsched.workers=1", "-Djournal.dir=" + journalDir, "run", "t4"}); err != nil {
		t.Fatal(err)
	}
	journals, _ := filepath.Glob(filepath.Join(journalDir, "*.jsonl"))
	arch := filepath.Join(dir, "run.arch")
	if err := runW(&out, []string{"archive", arch, journals[0]}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(arch)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(arch, st.Size()-21); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runW(&out, []string{"inspect", arch}); err != nil {
		t.Fatalf("inspect (non-strict) should report, not fail: %v", err)
	}
	for _, want := range []string{"WARNING", "TRUNCATED"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}
	if err := runW(&out, []string{"-Dinspect.strict=true", "inspect", arch}); err == nil {
		t.Fatal("inspect.strict of a truncated archive should exit non-zero")
	}
}

// TestArchiveReportsConflicts pins conflict handling on the conversion
// path: divergent re-measurements of the same unit across sources are
// reported exactly as `perfeval merge` reports them, and
// -Dmerge.strict=true refuses to write the archive at all.
func TestArchiveReportsConflicts(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	recA := `{"experiment":"e","row":0,"replicate":0,"hash":"cafe","assignment":{"k":"v"},"responses":{"t":1}}` + "\n"
	recB := `{"experiment":"e","row":0,"replicate":0,"hash":"cafe","assignment":{"k":"v"},"responses":{"t":2}}` + "\n"
	if err := os.WriteFile(a, []byte(recA), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(recB), 0o644); err != nil {
		t.Fatal(err)
	}
	arch := filepath.Join(dir, "out.arch")
	var out bytes.Buffer
	if err := runW(&out, []string{"archive", arch, a, b}); err != nil {
		t.Fatalf("non-strict archive should write despite conflicts: %v\n%s", err, out.String())
	}
	for _, want := range []string{"conflict: e/cafe/0", "1 conflict(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("archive output missing %q:\n%s", want, out.String())
		}
	}
	strictOut := filepath.Join(dir, "strict.arch")
	out.Reset()
	if err := runW(&out, []string{"-Dmerge.strict=true", "archive", strictOut, a, b}); err == nil {
		t.Fatal("strict archive of conflicting sources should fail")
	}
	if _, err := os.Stat(strictOut); !os.IsNotExist(err) {
		t.Fatal("strict mode wrote the archive anyway")
	}
}

// TestStoreFlagValidation pins the misconfiguration guards: archive
// store without a journal dir, with sharding, and unknown backends all
// fail loudly before any experiment runs.
func TestStoreFlagValidation(t *testing.T) {
	var out bytes.Buffer
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-Dstore=archive", "run", "t4"}, "requires -Djournal.dir"},
		{[]string{"-Dstore=archive", "-Dsched.shards=2", "-Dsched.shard=0", "-Djournal.dir=x", "run", "t4"}, "cannot combine with sched.shards"},
		{[]string{"-Dstore=bolt", "-Djournal.dir=x", "run", "t4"}, "unknown store backend"},
		{[]string{"-Dstore=journal", "run", "t4"}, "requires -Djournal.dir"},
	}
	for _, c := range cases {
		out.Reset()
		err := runW(&out, c.args)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("runW(%v) = %v, want error containing %q", c.args, err, c.want)
		}
	}
}
