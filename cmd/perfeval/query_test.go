package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/collector"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/warehouse"
)

// seedWarehouseDir writes three runs of one cell with well-separated
// means (10, 10.1, 20) so history, trends, and the regression listing
// all have something to say. Modtimes are pinned so run order is
// deterministic.
func seedWarehouseDir(t *testing.T, dir string) string {
	t.Helper()
	assign := map[string]string{"f": "x"}
	bases := []float64{10, 10.1, 20}
	for i, base := range bases {
		path := filepath.Join(dir, []string{"r0.jsonl", "r1.jsonl", "r2.jsonl"}[i])
		j, err := runstore.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			if err := j.Append(runstore.Record{
				Experiment: "e",
				Replicate:  rep,
				Hash:       runstore.AssignmentHash(assign),
				Assignment: assign,
				Responses:  map[string]float64{"ms": base + float64(rep-1)*0.1},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		mod := time.Unix(500+int64(i), 0)
		if err := os.Chtimes(path, mod, mod); err != nil {
			t.Fatal(err)
		}
	}
	return runstore.AssignmentHash(assign)
}

func TestQueryCommandTable(t *testing.T) {
	dir := t.TempDir()
	hash := seedWarehouseDir(t, dir)

	var out bytes.Buffer
	if err := runW(&out, []string{"-Dquery.kind=history", "-Dquery.cell=" + hash, "query", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"catalog: 3 store(s) discovered",
		"cell history: 3 points",
		"r2.jsonl",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("query table output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := runW(&out, []string{"-Dquery.kind=regressions", "query", dir}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("regression listing missing REGRESSED:\n%s", out.String())
	}

	// The default kind is the runs listing; a second invocation hits the
	// already-built index (every source unchanged).
	out.Reset()
	if err := runW(&out, []string{"query", dir}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "3 unchanged") {
		t.Errorf("second query did not reuse the index:\n%s", out.String())
	}

	// Retention flags prune through the CLI.
	out.Reset()
	if err := runW(&out, []string{"-Dquery.keep=1", "query", dir}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "retention: 2 run(s) pruned, 1 kept") {
		t.Errorf("retention output missing prune count:\n%s", out.String())
	}

	for _, bad := range [][]string{
		{"query"},
		{"query", dir, "extra"},
		{"query", filepath.Join(dir, "absent")},
		{"-Dquery.kind=bogus", "query", dir},
		{"-Dquery.confidence=x", "query", dir},
		{"-Dquery.limit=x", "query", dir},
		{"-Dquery.keep=x", "query", dir},
		{"-Dquery.maxage=x", "query", dir},
		{"-Dquery.format=xml", "query", dir},
	} {
		if err := runW(io.Discard, bad); err == nil {
			t.Errorf("runW(%v) should error", bad)
		}
	}
}

// TestQueryCommandJSONMatchesHTTP is the parity acceptance check: the
// CLI's JSON output and the collector's GET /v1/query body decode to
// the same warehouse.Result for the same store directory, because both
// run the same query core.
func TestQueryCommandJSONMatchesHTTP(t *testing.T) {
	dir := t.TempDir()
	hash := seedWarehouseDir(t, dir)

	var out bytes.Buffer
	if err := runW(&out, []string{
		"-Dquery.kind=history", "-Dquery.cell=" + hash, "-Dquery.response=ms",
		"-Dquery.format=json", "query", dir,
	}); err != nil {
		t.Fatal(err)
	}
	var fromCLI warehouse.Result
	if err := json.Unmarshal(out.Bytes(), &fromCLI); err != nil {
		t.Fatalf("CLI json output does not decode: %v\n%s", err, out.String())
	}
	if len(fromCLI.History) != 3 || math.Abs(fromCLI.History[2].Mean-20) > 1e-9 {
		t.Fatalf("CLI history = %+v", fromCLI.History)
	}

	srv, err := collector.New(collector.Config{Dir: dir, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(func() { hs.Close(); srv.Close() })
	resp, err := http.Get(hs.URL + collector.PathQuery + "?kind=history&cell=" + hash + "&response=ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/query status = %d", resp.StatusCode)
	}
	var fromHTTP warehouse.Result
	if err := json.NewDecoder(resp.Body).Decode(&fromHTTP); err != nil {
		t.Fatal(err)
	}
	// IngestTimeNS differs between the CLI's index build and the
	// daemon's; the answers must agree on everything else.
	for i := range fromHTTP.History {
		fromHTTP.History[i].IngestTimeNS = fromCLI.History[i].IngestTimeNS
	}
	if !reflect.DeepEqual(fromCLI, fromHTTP) {
		t.Fatalf("CLI and HTTP answers diverge:\ncli:  %+v\nhttp: %+v", fromCLI, fromHTTP)
	}
}

func TestInspectDirectory(t *testing.T) {
	dir := t.TempDir()
	seedWarehouseDir(t, dir)
	var out bytes.Buffer
	if err := runW(&out, []string{"inspect", dir}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"r0.jsonl", "r1.jsonl", "r2.jsonl"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect %s missing %q:\n%s", dir, want, out.String())
		}
	}
	// An empty directory is reported, not an error.
	out.Reset()
	if err := runW(&out, []string{"inspect", t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no store files discovered") {
		t.Errorf("empty-dir inspect output:\n%s", out.String())
	}
}
