package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShardedWorkflowEndToEnd drives the full scale-out workflow through
// the CLI: two simulated shard workers (separate runW invocations over
// one journal dir), merge, and the acceptance property — the merged
// journal is byte-identical to a single-process run's journal, and
// compact is a no-op on it.
func TestShardedWorkflowEndToEnd(t *testing.T) {
	dir := t.TempDir()
	shardDir := filepath.Join(dir, "shards")
	partialReports := 0
	for k := 0; k < 2; k++ {
		var out bytes.Buffer
		args := []string{
			"-Dsched.workers=1", "-Dsched.shards=2", fmt.Sprintf("-Dsched.shard=%d", k),
			"-Djournal.dir=" + shardDir, "run", "t4",
		}
		if err := runW(&out, args); err != nil {
			t.Fatalf("worker %d: %v\n%s", k, err, out.String())
		}
		if want := fmt.Sprintf("shard %d of 2", k); !strings.Contains(out.String(), want) {
			t.Errorf("worker %d banner missing %q:\n%s", k, want, out.String())
		}
		if strings.Contains(out.String(), "partial result set") {
			partialReports++
		}
		if strings.Contains(out.String(), "NaN") {
			t.Errorf("worker %d artifact leaks NaN analysis:\n%s", k, out.String())
		}
	}
	// t4's 4 cells split 2 ways: at least one worker sees an incomplete
	// design and must say so instead of rendering a NaN model.
	if partialReports == 0 {
		t.Error("no worker flagged its result set as partial")
	}
	shardFiles, err := filepath.Glob(filepath.Join(shardDir, "*.shard-*-of-002.jsonl"))
	if err != nil || len(shardFiles) != 2 {
		t.Fatalf("shard files = %v (err %v), want exactly 2", shardFiles, err)
	}

	// Merge the two worker journals.
	merged := filepath.Join(dir, "merged.jsonl")
	var out bytes.Buffer
	if err := runW(&out, append([]string{"merge", merged}, shardFiles...)); err != nil {
		t.Fatalf("merge: %v\n%s", err, out.String())
	}
	for _, want := range []string{"merged 2 source(s)", "kept 4 record(s)", "0 conflict(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("merge output missing %q:\n%s", want, out.String())
		}
	}

	// Reference: the same experiment in one process, one worker (appends
	// in design order, the canonical order merge writes).
	singleDir := filepath.Join(dir, "single")
	if err := runW(&out, []string{"-Dsched.workers=1", "-Djournal.dir=" + singleDir, "run", "t4"}); err != nil {
		t.Fatal(err)
	}
	singleFiles, err := filepath.Glob(filepath.Join(singleDir, "*.jsonl"))
	if err != nil || len(singleFiles) != 1 {
		t.Fatalf("single-run journals = %v (err %v), want exactly 1", singleFiles, err)
	}

	// Acceptance: compacted merged journal == compacted single journal,
	// byte for byte.
	out.Reset()
	if err := runW(&out, []string{"compact", merged}); err != nil {
		t.Fatal(err)
	}
	if err := runW(&out, []string{"compact", singleFiles[0]}); err != nil {
		t.Fatal(err)
	}
	mergedData, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	singleData, err := os.ReadFile(singleFiles[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(mergedData) == 0 {
		t.Fatal("merged journal is empty")
	}
	if !bytes.Equal(mergedData, singleData) {
		t.Errorf("sharded+merged journal != single-process journal:\n%s\nvs\n%s", mergedData, singleData)
	}

	// Merge is idempotent through the CLI too.
	merged2 := filepath.Join(dir, "merged2.jsonl")
	if err := runW(&out, []string{"merge", merged2, merged}); err != nil {
		t.Fatal(err)
	}
	again, err := os.ReadFile(merged2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, mergedData) {
		t.Error("re-merging the merged journal changed its bytes")
	}

	// The merged journal replays to the same artifact the single run
	// produced (modulo the scheduler banner's journal path).
	// The merged file sits under a different stem than the journal the
	// scheduler opens, so replay from a copy at the expected name.
	var fromMerged, fromSingle bytes.Buffer
	replayDir := filepath.Join(dir, "replay")
	if err := os.MkdirAll(replayDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(replayDir, filepath.Base(singleFiles[0])), mergedData, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runW(&fromMerged, []string{"-Dsched.workers=1", "-Djournal.dir=" + replayDir, "run", "t4"}); err != nil {
		t.Fatal(err)
	}
	if err := runW(&fromSingle, []string{"-Dsched.workers=1", "-Djournal.dir=" + singleDir, "run", "t4"}); err != nil {
		t.Fatal(err)
	}
	norm := func(s, dir string) string { return strings.Replace(s, "journal "+dir, "journal X", 1) }
	if norm(fromMerged.String(), replayDir) != norm(fromSingle.String(), singleDir) {
		t.Errorf("artifact from merged journal differs from single-run artifact:\n%s\nvs\n%s",
			fromMerged.String(), fromSingle.String())
	}
}

// TestMergeStrictFailsOnConflict seeds two journals that disagree on one
// unit: plain merge reports and succeeds, strict merge fails.
func TestMergeStrictFailsOnConflict(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, ms float64) string {
		path := filepath.Join(dir, name)
		line := fmt.Sprintf(`{"experiment":"e","row":0,"replicate":0,"hash":"h","assignment":{"f":"x"},"responses":{"ms":%g}}`+"\n", ms)
		if err := os.WriteFile(path, []byte(line), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := write("a.jsonl", 1)
	b := write("b.jsonl", 2)
	out := filepath.Join(dir, "out.jsonl")

	var buf bytes.Buffer
	if err := runW(&buf, []string{"merge", out, a, b}); err != nil {
		t.Fatalf("non-strict merge should succeed: %v", err)
	}
	if !strings.Contains(buf.String(), "conflict: e/h/0") || !strings.Contains(buf.String(), "1 conflict(s)") {
		t.Errorf("merge output should report the conflict:\n%s", buf.String())
	}
	buf.Reset()
	err := runW(&buf, []string{"-Dmerge.strict=true", "merge", out, a, b})
	if err == nil || !strings.Contains(err.Error(), "conflicting") {
		t.Errorf("strict merge should fail on the conflict, got %v", err)
	}
}

// TestShardPlanCommand checks the printed plan and the shard-file status
// table.
func TestShardPlanCommand(t *testing.T) {
	var out bytes.Buffer
	if err := runW(&out, []string{"-Dsched.shards=3", "shard-plan", "t4"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"perfeval run t4 -Dsched.shards=3 -Dsched.shard=0 -Djournal.dir=shards",
		"-Dsched.shard=2",
		"perfeval merge shards/merged/<experiment>.jsonl shards/<experiment>.shard-*-of-003.jsonl",
		"perfeval compact",
		"perfeval diff",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("plan missing %q:\n%s", want, out.String())
		}
	}

	// With a journal dir holding real shard files, the plan includes a
	// status table.
	dir := t.TempDir()
	shardDir := filepath.Join(dir, "shards")
	if err := runW(&out, []string{"-Dsched.workers=1", "-Dsched.shards=2", "-Dsched.shard=0",
		"-Djournal.dir=" + shardDir, "run", "t4"}); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := runW(&out, []string{"-Dsched.shards=2", "-Djournal.dir=" + shardDir, "shard-plan", "t4"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"shard files present", "records", "shard-000-of-002"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("plan status missing %q:\n%s", want, out.String())
		}
	}
}

// TestShardFlagValidation covers the CLI-level misconfigurations of the
// sharded workflow.
func TestShardFlagValidation(t *testing.T) {
	dir := t.TempDir()
	for _, bad := range [][]string{
		{"-Dsched.shards=2", "run", "t4"},                                                                // no journal dir
		{"-Dsched.shards=2", "-Djournal.dir=" + dir, "run", "t4"},                                        // shards without an explicit shard
		{"-Dsched.shard=1", "-Djournal.dir=" + dir, "run", "t4"},                                         // shard without shards
		{"-Dsched.shards=0", "-Djournal.dir=" + dir, "run", "t4"},                                        // bad count
		{"-Dsched.shards=x", "-Djournal.dir=" + dir, "run", "t4"},                                        // unparsable
		{"-Dsched.shards=2", "-Dsched.shard=2", "-Djournal.dir=" + dir, "run", "t4"},                     // out of range
		{"-Dsched.shards=2", "-Dsched.shard=1", "-Djournal.dir=" + dir, "-Dadaptive.min=2", "run", "t4"}, // adaptive combo
		{"merge"},              // no out
		{"merge", "out.jsonl"}, // no sources
		{"merge", filepath.Join(dir, "out.jsonl"), filepath.Join(dir, "absent.jsonl")},
		{"shard-plan"},       // no id
		{"shard-plan", "t4"}, // no shard count
		{"-Dsched.shards=0", "shard-plan", "t4"},
		{"-Dsched.shards=2", "shard-plan", "zzz"},
	} {
		if err := run(bad); err == nil {
			t.Errorf("run(%v) should error", bad)
		}
	}
}
