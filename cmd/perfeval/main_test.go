package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestPerfevalCommands(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := run([]string{"suite"}); err != nil {
		t.Errorf("suite: %v", err)
	}
	if err := run([]string{"run", "t4", "t9"}); err != nil {
		t.Errorf("run t4 t9: %v", err)
	}
	dir := t.TempDir()
	if err := run([]string{"-Dout.dir=" + dir, "run", "t3"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "res", "t3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 50 {
		t.Errorf("artifact too short: %d bytes", len(data))
	}
	for _, bad := range [][]string{
		{},
		{"run"},
		{"run", "zzz"},
		{"bogus"},
		{"-Dmalformed", "list"},
	} {
		if err := run(bad); err == nil {
			t.Errorf("run(%v) should error", bad)
		}
	}
}
