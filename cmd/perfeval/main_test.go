package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/runstore"
)

func TestPerfevalCommands(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := run([]string{"suite"}); err != nil {
		t.Errorf("suite: %v", err)
	}
	if err := run([]string{"run", "t4", "t9"}); err != nil {
		t.Errorf("run t4 t9: %v", err)
	}
	dir := t.TempDir()
	if err := run([]string{"-Dout.dir=" + dir, "run", "t3"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "res", "t3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 50 {
		t.Errorf("artifact too short: %d bytes", len(data))
	}
	for _, bad := range [][]string{
		{},
		{"run"},
		{"run", "zzz"},
		{"bogus"},
		{"-Dmalformed", "list"},
		{"diff"},
		{"diff", "only-one.jsonl"},
		{"diff", "absent-a.jsonl", "absent-b.jsonl"},
		{"-Dsched.workers=zero", "run", "t4"},
		{"-Dsched.workers=0", "run", "t4"},
		{"-Dsched.timeout=nonsense", "-Djournal.dir=x", "run", "t4"},
		{"compact"},
		{"compact", "a.jsonl", "b.jsonl"},
		{"compact", "absent.jsonl"},
		{"-Dadaptive.rel=bogus", "run", "t4"},
		{"-Dadaptive.rel=-0.1", "run", "t4"},
		{"-Dadaptive.min=7", "-Dadaptive.max=2", "run", "t4"},
		{"-Dadaptive.prioritize=absent.jsonl", "run", "t4"},
	} {
		if err := run(bad); err == nil {
			t.Errorf("run(%v) should error", bad)
		}
	}
}

// TestAdaptiveRunPrintsBudgetReport runs t4 under the adaptive
// controller: the artifact must carry the scheduler banner and a
// per-cell budget report comparing spend against the fixed budget.
func TestAdaptiveRunPrintsBudgetReport(t *testing.T) {
	var out bytes.Buffer
	if err := runW(&out, []string{"-Dadaptive.min=2", "-Dadaptive.max=5", "-Dsched.workers=2", "run", "t4"}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"adaptive rel=0.05 min=2 max=5",
		"adaptive budget report:",
		"vs fixed budget",
		"assignment",
		"cache=1KB memory=4MB",
		"after 2 reps", // t4 is noise-free: every cell stops at the minimum
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("adaptive run output missing %q:\n%s", want, out.String())
		}
	}
}

// TestAdaptivePrioritizeFlagsBaselineDrift seeds a baseline journal in
// which one t4 cell was much faster: the adaptive run must flag that
// cell as gate-regressed in the budget report.
func TestAdaptivePrioritizeFlagsBaselineDrift(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "baseline.jsonl")
	j, err := runstore.Open(basePath)
	if err != nil {
		t.Fatal(err)
	}
	slow := map[string]string{"memory": "4MB", "cache": "1KB"} // measures 15 MIPS today
	for rep := 0; rep < 3; rep++ {
		err := j.Append(runstore.Record{
			Experiment: "workstation performance 2^2", Replicate: rep,
			Assignment: slow,
			Responses:  map[string]float64{"MIPS": 10 + 0.1*float64(rep)},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	var out bytes.Buffer
	args := []string{"-Dadaptive.min=2", "-Dadaptive.max=5", "-Dadaptive.prioritize=" + basePath, "run", "t4"}
	if err := runW(&out, args); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gate-flagged") {
		t.Errorf("budget report should mark the drifted cell gate-flagged:\n%s", out.String())
	}
}

// TestCompactCommand seeds a journal with superseded records and
// verifies the compact subcommand rewrites it last-wins.
func TestCompactCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	j, err := runstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]string{"f": "x"}
	for _, v := range []float64{1, 2, 3} { // same key three times
		if err := j.Append(runstore.Record{Experiment: "e", Replicate: 0, Assignment: a, Responses: map[string]float64{"ms": v}}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	var out bytes.Buffer
	if err := runW(&out, []string{"compact", path}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kept 1 record(s), dropped 2") {
		t.Errorf("compact output = %q", out.String())
	}
	recs, err := runstore.LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Responses["ms"] != 3 {
		t.Errorf("compacted records = %+v, want the last-appended value", recs)
	}

	// Compact-aside via -Dcompact.out leaves the source alone.
	aside := filepath.Join(dir, "aside.jsonl")
	if err := runW(&out, []string{"-Dcompact.out=" + aside, "compact", path}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(aside); err != nil {
		t.Errorf("compact.out not written: %v", err)
	}
}

// TestOutDirCreated covers out.dir pointing at a directory that does not
// exist yet: run must create it (MkdirAll) instead of failing.
func TestOutDirCreated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "deeply", "nested", "out")
	if err := run([]string{"-Dout.dir=" + dir, "run", "t3"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "res", "t3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 50 {
		t.Errorf("artifact too short: %d bytes", len(data))
	}
}

// TestJournaledRunWarmStarts runs the harness-backed t4 experiment
// through the concurrent scheduler twice over the same journal: the
// second run must replay every completed row (no new journal appends)
// and produce the identical artifact.
func TestJournaledRunWarmStarts(t *testing.T) {
	jdir := t.TempDir()
	args := []string{"-Dsched.workers=4", "-Djournal.dir=" + jdir, "run", "t4"}
	var cold bytes.Buffer
	if err := runW(&cold, args); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(jdir, "*.jsonl"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("journal files = %v (err %v), want exactly 1", entries, err)
	}
	before, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("cold run journaled nothing")
	}

	var warm bytes.Buffer
	if err := runW(&warm, args); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("warm re-run appended to the journal; completed rows were re-executed")
	}
	if cold.String() != warm.String() {
		t.Errorf("warm artifact differs from cold:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}

	// The sequential executor must agree with the scheduled run.
	var seq bytes.Buffer
	if err := runW(&seq, []string{"run", "t4"}); err != nil {
		t.Fatal(err)
	}
	want := strings.Replace(cold.String(), "scheduler: 4 workers, journal "+jdir+"\n", "", 1)
	if seq.String() != want {
		t.Errorf("scheduled artifact differs from sequential:\nsequential:\n%s\nscheduled:\n%s", seq.String(), want)
	}
}

// TestDiffFlagsSeededRegression builds a baseline journal and a current
// journal whose hot cell is 50% slower, and expects diff to report the
// regression and fail.
func TestDiffFlagsSeededRegression(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, hi float64) string {
		path := filepath.Join(dir, name)
		j, err := runstore.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		for rep := 0; rep < 3; rep++ {
			noise := float64(rep-1) * 0.2
			for row, cell := range []struct {
				level string
				value float64
			}{
				{"lo", 10},
				{"hi", hi},
			} {
				a := map[string]string{"f": cell.level}
				err := j.Append(runstore.Record{
					Experiment: "q1-scan", Row: row, Replicate: rep,
					Assignment: a,
					Responses:  map[string]float64{"ms": cell.value + noise},
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		return path
	}
	base := write("baseline.jsonl", 20)
	slower := write("current.jsonl", 30)

	var out bytes.Buffer
	err := runW(&out, []string{"diff", base, slower})
	if err == nil {
		t.Fatal("diff should fail on a regression")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Errorf("error should count regressions: %v", err)
	}
	for _, want := range []string{"q1-scan", "REGRESSED", "f=hi", "regressed 1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("diff output missing %q:\n%s", want, out.String())
		}
	}

	// Identical journals: clean diff, exit zero.
	out.Reset()
	if err := runW(&out, []string{"diff", base, base}); err != nil {
		t.Errorf("identical journals should pass: %v", err)
	}
	if !strings.Contains(out.String(), "regressed 0") {
		t.Errorf("clean diff should report zero regressions:\n%s", out.String())
	}

	// A current journal that crashed before its first append (exists but
	// empty) must fail the gate, not pass it by vacuous truth.
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runW(&out, []string{"diff", base, empty}); err == nil {
		t.Error("empty current journal should fail the gate")
	}

	// A current journal missing cells the baseline has must fail too.
	partial := filepath.Join(dir, "partial.jsonl")
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if !strings.Contains(line, `"hi"`) {
			kept = append(kept, line)
		}
	}
	if err := os.WriteFile(partial, []byte(strings.Join(kept, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = runW(&out, []string{"diff", base, partial})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("dropped cell should fail the gate with a missing count, got %v", err)
	}

	// An invalid confidence must error, not silently fall back.
	if err := runW(&out, []string{"-Ddiff.confidence=95", "diff", base, base}); err == nil {
		t.Error("confidence=95 (percent, not fraction) should be rejected")
	}
}

// TestRunCanceledContext covers the Ctrl-C path end to end at the CLI
// layer: a canceled context aborts a scheduled run with the context
// error, and whatever the journal holds stays valid for a warm start.
func TestRunCanceledContext(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	err := runCtxW(ctx, &out, []string{"-Dsched.workers=2", "-Djournal.dir=" + dir, "run", "t4"})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run = %v, want context.Canceled", err)
	}
	// The journal dir holds either nothing or valid journals — inspect
	// must succeed on whatever is there.
	files, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if _, err := runstore.Inspect(f); err != nil {
			t.Errorf("journal %s invalid after cancellation: %v", f, err)
		}
	}

	// The same command under a live context completes and warm-starts
	// from whatever the canceled run persisted.
	if err := runW(&out, []string{"-Dsched.workers=2", "-Djournal.dir=" + dir, "run", "t4"}); err != nil {
		t.Fatal(err)
	}
}
