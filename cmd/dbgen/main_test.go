package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDbgen(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-sf", "0.02", "-seed", "7", "-out", dir, "-tables", "region,nation"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"region.csv", "nation.csv"} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(data) == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	// Unrequested tables are not written.
	if _, err := os.Stat(filepath.Join(dir, "lineitem.csv")); !os.IsNotExist(err) {
		t.Error("lineitem.csv should not exist")
	}
	// Determinism: same flags, same bytes.
	dir2 := t.TempDir()
	if err := run([]string{"-sf", "0.02", "-seed", "7", "-out", dir2, "-tables", "region"}); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(filepath.Join(dir, "region.csv"))
	b, _ := os.ReadFile(filepath.Join(dir2, "region.csv"))
	if string(a) != string(b) {
		t.Error("dbgen output not deterministic")
	}
	// Errors.
	if err := run([]string{"-sf", "0"}); err == nil {
		t.Error("sf=0 should error")
	}
	if err := run([]string{"-badflag"}); err == nil {
		t.Error("bad flag should error")
	}
}
