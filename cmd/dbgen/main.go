// Command dbgen generates the TPC-H-like catalog as CSV files.
//
// Usage:
//
//	dbgen [-sf 0.1] [-seed 42] [-out DIR] [-tables lineitem,orders]
//
// Every value is rendered in C locale; the generator is deterministic per
// (sf, seed) — the repeatability principle applied to data generation.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/tpch"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dbgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dbgen", flag.ContinueOnError)
	sf := fs.Float64("sf", 0.1, "scale factor")
	seed := fs.Uint64("seed", 42, "generator seed")
	out := fs.String("out", ".", "output directory")
	tables := fs.String("tables", "", "comma-separated table subset (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	db, err := tpch.Gen(*sf, *seed)
	if err != nil {
		return err
	}
	want := map[string]bool{}
	if *tables != "" {
		for _, t := range strings.Split(*tables, ",") {
			want[strings.TrimSpace(t)] = true
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, name := range db.TableNames() {
		if len(want) > 0 && !want[name] {
			continue
		}
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		path := filepath.Join(*out, name+".csv")
		if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("%-10s %8d rows  %s\n", name, t.NumRows(), path)
	}
	return nil
}
