package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/collector"
	"repro/internal/collector/client"
	"repro/internal/harness"
	"repro/internal/paperexp"
)

// ServeConfig is the typed form of everything `perfeval serve` exposes
// as -D flags: the run collector daemon (internal/collector) — a
// long-lived HTTP service that owns the experiment stores and collects
// streamed records from a fleet of workers (Work, `perfeval work`).
type ServeConfig struct {
	// Addr is the TCP listen address (e.g. ":8080"); ":0" picks a free
	// port, reported through Ready. Empty means ":8080".
	Addr string
	// Dir is the directory the per-experiment shard stores live in.
	// Required.
	Dir string
	// Shards is how many lease-able shards each experiment's design is
	// partitioned into — the fleet's maximum useful size; < 1 means 1.
	Shards int
	// LeaseTTL is how long a shard lease lives between renewals; a worker
	// silent for longer loses the shard to the pool. 0 means 30s.
	LeaseTTL time.Duration
	// MaxInflight bounds each experiment's concurrently ingesting bytes
	// (backpressure; 429 + Retry-After beyond it). 0 means 8 MiB.
	MaxInflight int64
	// Baseline optionally names a baseline store file; it arms the
	// GET /v1/status/gate endpoint with regression verdicts.
	Baseline string
	// Token, when non-empty, requires `Authorization: Bearer <Token>` on
	// every data-plane endpoint (register, lease traffic, ingest,
	// snapshot); read-only status and metrics stay open. Workers supply
	// the same value through WorkConfig.Token. It is the
	// -Dcollector.token knob.
	Token string
	// CommitWindow bounds how long the group-commit engine gathers
	// concurrent ingest batches before landing them with one fsync.
	// 0 means the 2ms default; negative disables group commit and
	// fsyncs every batch individually. It is the -Dcollector.commitwindow
	// knob.
	CommitWindow time.Duration
	// Ready, when non-nil, is called exactly once with the bound listen
	// address, after the listener is open and before serving begins.
	Ready func(addr string)
	// LogLevel selects the daemon's structured stderr log: "debug",
	// "info" (also the "" default), or "quiet" to discard. Any other
	// value is an error. It is the -Dcollector.log knob.
	LogLevel string
}

// buildLogger maps a -Dcollector.log level to a structured stderr
// logger ("quiet" discards).
func buildLogger(level string) (*slog.Logger, error) {
	switch level {
	case "quiet":
		return slog.New(slog.NewTextHandler(io.Discard, nil)), nil
	case "", "info":
		return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo})), nil
	case "debug":
		return slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelDebug})), nil
	default:
		return nil, fmt.Errorf("repro: unknown log level %q (want debug, info, or quiet)", level)
	}
}

// Serve runs the run collector daemon until ctx is canceled, then shuts
// down gracefully: in-flight ingests drain (their records are durable)
// and the shard stores close. A canceled ctx is the normal way to stop
// a collector, so Serve returns nil for it; any other serve failure is
// returned as the error.
//
// The wire protocol — registration, lease acquire/renew/release,
// NDJSON record ingest with backpressure, warm-start snapshots, and
// read-only status — is documented in docs/COLLECTOR.md.
func Serve(ctx context.Context, cfg ServeConfig) error {
	addr := cfg.Addr
	if addr == "" {
		addr = ":8080"
	}
	logger, err := buildLogger(cfg.LogLevel)
	if err != nil {
		return err
	}
	srv, err := collector.New(collector.Config{
		Dir:          cfg.Dir,
		Shards:       cfg.Shards,
		LeaseTTL:     cfg.LeaseTTL,
		MaxInflight:  cfg.MaxInflight,
		Baseline:     cfg.Baseline,
		Token:        cfg.Token,
		CommitWindow: cfg.CommitWindow,
		Logger:       logger,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return fmt.Errorf("repro: collector listen: %w", err)
	}
	if cfg.Ready != nil {
		cfg.Ready(ln.Addr().String())
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		hs.Shutdown(shutdownCtx)
		<-errc // Serve has returned http.ErrServerClosed
		return srv.Close()
	case err := <-errc:
		srv.Close()
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return fmt.Errorf("repro: collector serve: %w", err)
	}
}

// WorkConfig is the typed form of everything `perfeval work` exposes as
// -D flags: one worker of a collector fleet.
type WorkConfig struct {
	// URL is the collector's base URL (e.g. "http://host:8080").
	// Required.
	URL string
	// Name names this worker in leases and status output; empty asks the
	// server to assign one.
	Name string
	// Workers, Retries, Timeout configure the per-shard scheduler,
	// exactly as RunConfig does for a local run.
	Workers int
	Retries int
	Timeout time.Duration
	// SpoolDir is where the worker's local spool journals are written
	// (its durable account of what it ran — a valid, merge-able runstore
	// journal even after a crash); empty means a fresh temporary
	// directory.
	SpoolDir string
	// FlushEvery is the ingest batch size in records; < 1 means 32, and
	// 1 streams every completed unit immediately.
	FlushEvery int
	// BinaryWire streams ingest uploads (and asks for warm-start
	// snapshots) in the binary wire framing instead of the NDJSON
	// default. The framing is negotiated per request by media type, so
	// the flag is safe against any collector — a JSON-only server simply
	// answers in JSON. It is the -Dworker.binary knob.
	BinaryWire bool
	// Token is the collector's shared bearer token, sent on every
	// request; required when the daemon was started with
	// ServeConfig.Token. It is the -Dworker.token knob.
	Token string
	// LogLevel selects the worker's structured stderr log: "debug",
	// "info" (also the "" default), or "quiet" to discard. It is the
	// -Dcollector.log knob of `perfeval work`.
	LogLevel string
}

// WorkReport accounts for what one worker contributed to the fleet.
type WorkReport struct {
	Shards   int   // shard leases run to completion
	Executed int   // units executed live on this worker
	Replayed int   // units replayed from warm-start snapshots or spool
	Streamed int64 // records acknowledged by the collector
	// Metrics snapshots the worker's metrics registry after the run:
	// the sched_* series of its per-shard schedulers and the worker_*
	// ingest/backpressure series.
	Metrics *Metrics
}

// String renders the one-line account `perfeval work` prints after each
// experiment.
func (r WorkReport) String() string {
	return fmt.Sprintf("collector worker: completed %d shard(s); %d unit(s) executed, %d replayed, %d record(s) streamed",
		r.Shards, r.Executed, r.Replayed, r.Streamed)
}

// WorkOutcome is one experiment worked against a collector: the
// artifact as this worker saw it (rows other workers owned carry no
// replicates — the complete dataset is the collector's store) and the
// worker's contribution accounting.
type WorkOutcome struct {
	Result *Result
	Report WorkReport
}

// Work runs the experiment driver with the given id (t1..t10, f1..f7,
// case-insensitive) as one worker of a collector fleet: it leases
// shards of each harness experiment the driver executes from the
// collector at cfg.URL, runs them through the concurrent scheduler, and
// streams completed records back, until the collector reports the
// experiment complete. Every guarantee of the local sharded workflow
// carries over — the collector's merged store is byte-identical to a
// single-process run.
//
// On lease loss (the collector timed this worker out and handed its
// shard to another) or a server-reported conflict, Work stops cleanly
// with the cause; the local spool journal is valid and the records the
// server acknowledged warm-start the shard's next owner. Cancel ctx to
// interrupt with the same contract.
func Work(ctx context.Context, id string, cfg WorkConfig) (*WorkOutcome, error) {
	logger, err := buildLogger(cfg.LogLevel)
	if err != nil {
		return nil, err
	}
	w, err := client.NewWorker(client.Options{
		URL:        cfg.URL,
		Worker:     cfg.Name,
		Workers:    cfg.Workers,
		Retries:    cfg.Retries,
		Timeout:    cfg.Timeout,
		SpoolDir:   cfg.SpoolDir,
		FlushEvery: cfg.FlushEvery,
		BinaryWire: cfg.BinaryWire,
		Token:      cfg.Token,
		Logger:     logger,
	})
	if err != nil {
		return nil, err
	}
	r, err := paperexp.Run(harness.WithExecutor(ctx, w), id)
	if err != nil {
		return nil, err
	}
	rep := w.Report()
	met := w.MetricsSnapshot()
	return &WorkOutcome{
		Result: r,
		Report: WorkReport{
			Shards:   rep.Shards,
			Executed: rep.Executed,
			Replayed: rep.Replayed,
			Streamed: rep.Streamed,
			Metrics:  &met,
		},
	}, nil
}
