package harness

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/design"
)

func TestValidateRejectsZeroReplicates(t *testing.T) {
	for _, reps := range []int{0, -3} {
		e := paperExperiment(t, reps)
		err := e.Validate()
		if err == nil {
			t.Fatalf("Replicates = %d: Validate should reject", reps)
		}
		if !strings.Contains(err.Error(), "Replicates") {
			t.Errorf("error should name Replicates: %v", err)
		}
		if _, err := Execute(context.Background(), e); err == nil {
			t.Errorf("Replicates = %d: Execute should reject", reps)
		}
	}
}

func TestExecuteRejectsNonFiniteResponses(t *testing.T) {
	cases := []struct {
		name string
		resp map[string]float64
	}{
		{"nil map", nil},
		{"NaN", map[string]float64{"MIPS": math.NaN()}},
		{"+Inf", map[string]float64{"MIPS": math.Inf(1)}},
		{"-Inf", map[string]float64{"MIPS": math.Inf(-1)}},
	}
	for _, c := range cases {
		e := paperExperiment(t, 1)
		e.Run = func(design.Assignment, int) (map[string]float64, error) {
			return c.resp, nil
		}
		if _, err := Execute(context.Background(), e); err == nil {
			t.Errorf("%s: Execute should reject", c.name)
		}
	}
}

// countingExecutor wraps Sequential and counts Execute calls, to prove the
// default-executor indirection routes through the installed executor.
type countingExecutor struct {
	calls int
}

func (c *countingExecutor) Execute(ctx context.Context, e *Experiment) (*ResultSet, error) {
	c.calls++
	return Sequential{}.Execute(ctx, e)
}

func TestSetDefaultExecutor(t *testing.T) {
	ce := &countingExecutor{}
	prev := SetDefaultExecutor(ce)
	defer SetDefaultExecutor(prev)
	if DefaultExecutor() != Executor(ce) {
		t.Fatal("DefaultExecutor should return the installed executor")
	}
	rs, err := Execute(context.Background(), paperExperiment(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ce.calls != 1 {
		t.Errorf("installed executor called %d times, want 1", ce.calls)
	}
	if len(rs.Rows) != 4 {
		t.Errorf("rows = %d, want 4", len(rs.Rows))
	}
	// nil resets to Sequential.
	SetDefaultExecutor(nil)
	if _, ok := DefaultExecutor().(Sequential); !ok {
		t.Errorf("SetDefaultExecutor(nil) should reset to Sequential, got %T", DefaultExecutor())
	}
}
