package harness

import (
	"context"
	"fmt"
	"math"
	"sync"

	"repro/internal/design"
)

// Executor turns a validated Experiment into a ResultSet. The package-
// level Execute routes through a pluggable default so callers (the
// paperexp drivers, examples, the perfeval CLI) can swap the strictly
// sequential in-process executor for the concurrent, journaled scheduler
// in internal/sched without touching experiment code. Sequential stays
// the default: for measurement-sensitive runs, concurrent execution on
// one machine perturbs the very quantity being measured.
//
// The context carries cancellation through the whole execution: an
// executor must stop scheduling new units once ctx is done, drain
// whatever is in flight (persisting completed units, so a resumed run
// warm-starts from them), and return ctx.Err().
type Executor interface {
	Execute(ctx context.Context, e *Experiment) (*ResultSet, error)
}

var (
	defaultMu       sync.RWMutex
	defaultExecutor Executor = Sequential{}
)

// SetDefaultExecutor swaps the executor used by the package-level Execute
// and returns the previous one so callers can restore it. A nil argument
// resets to the Sequential executor. Prefer WithExecutor for scoped
// installation: a context-carried executor cannot leak across concurrent
// library callers the way the process-global default can.
func SetDefaultExecutor(ex Executor) Executor {
	if ex == nil {
		ex = Sequential{}
	}
	defaultMu.Lock()
	prev := defaultExecutor
	defaultExecutor = ex
	defaultMu.Unlock()
	return prev
}

// DefaultExecutor returns the executor the package-level Execute uses
// when the context carries none.
func DefaultExecutor() Executor {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultExecutor
}

// executorKey carries a scoped Executor in a context.
type executorKey struct{}

// WithExecutor returns a context that carries ex: every package-level
// Execute under that context runs through ex instead of the process
// default. This is how the public repro API binds a configured scheduler
// to one run without mutating global state — two goroutines can run the
// same experiment through different executors concurrently.
func WithExecutor(ctx context.Context, ex Executor) context.Context {
	return context.WithValue(ctx, executorKey{}, ex)
}

// ExecutorFrom returns the executor Execute would use under ctx: the
// context-carried one if present, the process default otherwise.
func ExecutorFrom(ctx context.Context) Executor {
	if ex, ok := ctx.Value(executorKey{}).(Executor); ok && ex != nil {
		return ex
	}
	return DefaultExecutor()
}

// Execute runs the full design with replication through the context's
// executor (see WithExecutor), falling back to the process default
// (Sequential unless SetDefaultExecutor installed another).
func Execute(ctx context.Context, e *Experiment) (*ResultSet, error) {
	return ExecutorFrom(ctx).Execute(ctx, e)
}

// CellStats itemizes the replicates an executor spent on one design cell
// (one factor-level assignment). Executed counts live runs, Replayed
// counts journal restores; both charge against the cell's replication
// budget. Note carries the executor's own account of why the cell
// stopped (e.g. the adaptive controller's precision-reached message).
type CellStats struct {
	Row        int
	Assignment design.Assignment
	Executed   int
	Replayed   int
	Note       string
}

// Spent returns the total replicates charged to the cell.
func (c CellStats) Spent() int { return c.Executed + c.Replayed }

// BudgetReporter is implemented by executors that can itemize per-cell
// replicate spend — the adaptive scheduler in internal/sched. A nil
// slice means the last execution had no per-cell budget to report (e.g.
// it ran with a fixed budget).
type BudgetReporter interface {
	CellStats() []CellStats
}

// Sequential executes every design row and replicate strictly in order in
// the calling goroutine — the executor of choice when the response is a
// time measurement that concurrent load would distort. Cancellation is
// checked between units: the unit being measured always completes, the
// next one never starts.
type Sequential struct{}

// Execute implements Executor.
func (Sequential) Execute(ctx context.Context, e *Experiment) (*ResultSet, error) {
	if err := e.Validate(); err != nil {
		return nil, err
	}
	rs := &ResultSet{Experiment: e}
	for r := 0; r < e.Design.NumRuns(); r++ {
		a, err := e.Design.Assignment(r)
		if err != nil {
			return nil, err
		}
		row := ResultRow{Assignment: a}
		for rep := 0; rep < e.Design.Replicates; rep++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("harness: %s interrupted before run %d replicate %d: %w", e.Name, r+1, rep+1, err)
			}
			resp, err := RunUnit(e, a, r, rep)
			if err != nil {
				return nil, err
			}
			row.Reps = append(row.Reps, resp)
		}
		rs.Rows = append(rs.Rows, row)
	}
	return rs, nil
}

// RunUnit executes one (design row, replicate) unit through the
// experiment's runner and validates the produced responses. Both the
// Sequential executor and the concurrent scheduler funnel every live run
// through here so error text and response validation stay identical.
func RunUnit(e *Experiment, a design.Assignment, r, rep int) (map[string]float64, error) {
	resp, err := e.Run(a, rep)
	if err != nil {
		return nil, fmt.Errorf("harness: %s run %d replicate %d (%s): %w", e.Name, r+1, rep+1, a, err)
	}
	if err := CheckResponses(e, resp); err != nil {
		return nil, fmt.Errorf("harness: %s run %d replicate %d (%s): %w", e.Name, r+1, rep+1, a, err)
	}
	return resp, nil
}

// CheckResponses verifies a runner's output map: it must be non-nil and
// contain a finite value for every declared response. NaN or infinite
// values are rejected here, at the source, because a single NaN silently
// poisons every downstream mean, CI, and effect estimate.
func CheckResponses(e *Experiment, resp map[string]float64) error {
	if resp == nil {
		return fmt.Errorf("runner returned nil responses")
	}
	for _, want := range e.Responses {
		v, ok := resp[want]
		if !ok {
			return fmt.Errorf("runner did not produce response %q", want)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("runner produced non-finite %q = %v", want, v)
		}
	}
	return nil
}
