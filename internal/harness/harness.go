package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/design"
	"repro/internal/stats"
)

// RunFunc executes one configuration once and returns the measured
// response variables. It is called Replicates times per design row.
type RunFunc func(a design.Assignment, replicate int) (map[string]float64, error)

// Experiment couples a design with the code that produces measurements.
type Experiment struct {
	Name      string
	Design    *design.Design
	Responses []string // response variable names the runner must produce
	Run       RunFunc
}

// Validate checks the experiment is runnable.
func (e *Experiment) Validate() error {
	switch {
	case e.Name == "":
		return fmt.Errorf("harness: experiment needs a name")
	case e.Design == nil || e.Design.NumRuns() == 0:
		return fmt.Errorf("harness: experiment %q needs a design with runs", e.Name)
	case len(e.Responses) == 0:
		return fmt.Errorf("harness: experiment %q declares no response variables", e.Name)
	case e.Run == nil:
		return fmt.Errorf("harness: experiment %q has no runner", e.Name)
	case e.Design.Replicates < 1:
		return fmt.Errorf("harness: experiment %q: Replicates = %d, need >= 1 (use >= 2 to measure experimental error)", e.Name, e.Design.Replicates)
	}
	seen := map[string]bool{}
	for _, r := range e.Responses {
		if r == "" || seen[r] {
			return fmt.Errorf("harness: experiment %q: empty or duplicate response %q", e.Name, r)
		}
		seen[r] = true
	}
	return nil
}

// ResultRow holds every replicate's responses for one design row.
type ResultRow struct {
	Assignment design.Assignment
	Reps       []map[string]float64
}

// ResultSet is a completed experiment.
type ResultSet struct {
	Experiment *Experiment
	Rows       []ResultRow
}

// Replicates extracts all replicate values of a response for design row r.
func (rs *ResultSet) Replicates(r int, response string) []float64 {
	out := make([]float64, 0, len(rs.Rows[r].Reps))
	for _, rep := range rs.Rows[r].Reps {
		out = append(out, rep[response])
	}
	return out
}

// Means returns the per-row replicate means of a response, in design row
// order — the y vector for effect estimation.
func (rs *ResultSet) Means(response string) []float64 {
	out := make([]float64, len(rs.Rows))
	for r := range rs.Rows {
		out[r] = stats.Mean(rs.Replicates(r, response))
	}
	return out
}

// CIs returns per-row confidence intervals of a response (needs >= 2
// replicates).
func (rs *ResultSet) CIs(response string, confidence float64) ([]stats.Interval, error) {
	out := make([]stats.Interval, len(rs.Rows))
	for r := range rs.Rows {
		iv, err := stats.MeanCI(rs.Replicates(r, response), confidence)
		if err != nil {
			return nil, fmt.Errorf("harness: row %d: %w", r+1, err)
		}
		out[r] = iv
	}
	return out, nil
}

// Effects estimates factorial effects of a response. The experiment's
// design must be a full two-level factorial in canonical order (as built
// by design.TwoLevelFull or SignTable.Design).
func (rs *ResultSet) Effects(response string) (*design.Effects, error) {
	d := rs.Experiment.Design
	if d.Kind != design.KindTwoLevel {
		return nil, fmt.Errorf("harness: effects need a 2^k design, have %s", d.Kind)
	}
	st, err := design.NewSignTable(d.Factors)
	if err != nil {
		return nil, err
	}
	// Verify the design rows are in the canonical order the sign table
	// assumes.
	if st.Runs != d.NumRuns() {
		return nil, fmt.Errorf("harness: design has %d runs, sign table %d", d.NumRuns(), st.Runs)
	}
	for r := 0; r < st.Runs; r++ {
		for f := range d.Factors {
			if d.Rows[r][f] != st.LevelIndex(r, f) {
				return nil, fmt.Errorf("harness: design row %d is not in canonical sign-table order", r+1)
			}
		}
	}
	return design.EstimateEffects(st, rs.Means(response))
}

// AnalyzeReplicated performs the full replicated analysis of a response:
// effects, allocation of variation with an experimental-error share, and
// effect confidence intervals. Needs a canonical 2^k design with >= 2
// replicates.
func (rs *ResultSet) AnalyzeReplicated(response string, confidence float64) (*design.ReplicatedAnalysis, error) {
	// Reuse the canonical-order validation in Effects.
	if _, err := rs.Effects(response); err != nil {
		return nil, err
	}
	st, err := design.NewSignTable(rs.Experiment.Design.Factors)
	if err != nil {
		return nil, err
	}
	reps := make([][]float64, len(rs.Rows))
	for r := range rs.Rows {
		reps[r] = rs.Replicates(r, response)
	}
	return design.AnalyzeReplicated(st, reps, confidence)
}

// CSV renders the result set as C-locale CSV (factor columns followed by
// per-response replicate means), ready for the plot package's gnuplot
// pipeline.
func (rs *ResultSet) CSV() string {
	var b strings.Builder
	e := rs.Experiment
	cols := make([]string, 0, len(e.Design.Factors)+len(e.Responses))
	for _, f := range e.Design.Factors {
		cols = append(cols, f.Name)
	}
	cols = append(cols, e.Responses...)
	b.WriteString(strings.Join(cols, ","))
	b.WriteByte('\n')
	for r, row := range rs.Rows {
		parts := make([]string, 0, len(cols))
		for _, f := range e.Design.Factors {
			parts = append(parts, row.Assignment[f.Name])
		}
		for _, resp := range e.Responses {
			parts = append(parts, strconv.FormatFloat(stats.Mean(rs.Replicates(r, resp)), 'g', -1, 64))
		}
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Report renders the result table plus, for 2^k designs, the fitted model
// and allocation of variation per response — and flags methodology
// mistakes (no replication) prominently.
func (rs *ResultSet) Report() string {
	var b strings.Builder
	e := rs.Experiment
	fmt.Fprintf(&b, "experiment: %s (%s, %d runs x %d replicates)\n",
		e.Name, e.Design.Kind, e.Design.NumRuns(), max(e.Design.Replicates, 1))
	for _, m := range design.Diagnose(e.Design, 0) {
		fmt.Fprintf(&b, "WARNING: %s\n", m)
	}

	// Result table: factors then mean (or mean+-CI) per response.
	tab := NewTable()
	header := []string{"run"}
	for _, f := range e.Design.Factors {
		header = append(header, f.Name)
	}
	for _, r := range e.Responses {
		header = append(header, r)
	}
	tab.Header(header...)
	// A sharded worker's ResultSet is partial: rows owned by other
	// shards carry no replicates. Probe every row — row 0 alone says
	// nothing when per-row replicate counts are heterogeneous.
	measured, replicated := 0, false
	for _, row := range rs.Rows {
		if len(row.Reps) > 0 {
			measured++
		}
		if len(row.Reps) >= 2 {
			replicated = true
		}
	}
	partial := measured < len(rs.Rows)
	for r, row := range rs.Rows {
		cells := []string{fmt.Sprintf("%d", r+1)}
		for _, f := range e.Design.Factors {
			cells = append(cells, row.Assignment[f.Name])
		}
		for _, resp := range e.Responses {
			vals := rs.Replicates(r, resp)
			if len(vals) == 0 {
				// A partial ResultSet — e.g. a shard worker's view of rows
				// other shards own. Render a placeholder, not NaN.
				cells = append(cells, "-")
				continue
			}
			if replicated {
				iv, err := stats.MeanCI(vals, 0.95)
				if err == nil {
					cells = append(cells, fmt.Sprintf("%.4g ±%.2g", iv.Mean, iv.HalfWidth()))
					continue
				}
			}
			cells = append(cells, fmt.Sprintf("%.4g", stats.Mean(vals)))
		}
		tab.Row(cells...)
	}
	b.WriteString(tab.String())

	if partial {
		// Effect estimation over missing rows would render a NaN model
		// and fabricated variation shares; say why it is absent instead.
		fmt.Fprintf(&b, "\npartial result set: %d of %d rows measured; analysis needs the complete design (merge the shard journals and replay)\n",
			measured, len(rs.Rows))
		return b.String()
	}
	if e.Design.Kind == design.KindTwoLevel {
		for _, resp := range e.Responses {
			// Prefer the replicated analysis (with its experimental-
			// error share and effect CIs) when replicates allow it.
			if replicated {
				if an, err := rs.AnalyzeReplicated(resp, 0.95); err == nil {
					fmt.Fprintf(&b, "\nresponse %s:\n%s", resp, an.String())
					continue
				}
			}
			ef, err := rs.Effects(resp)
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "\nresponse %s: %s\n", resp, ef.ModelString())
			fmt.Fprintf(&b, "variation explained:\n")
			for _, v := range ef.AllocateVariation() {
				fmt.Fprintf(&b, "  q%-6s %5.1f%%\n", v.Effect.NameWith(e.Design.Factors), v.Fraction*100)
			}
		}
	}
	return b.String()
}

// Table renders aligned monospace tables, the house style of every report
// in this repository.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{} }

// Header sets the column headers.
func (t *Table) Header(cells ...string) *Table { t.header = cells; return t }

// Row appends a row.
func (t *Table) Row(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// SortRowsBy sorts data rows by the given column index (string order).
func (t *Table) SortRowsBy(col int) *Table {
	sort.SliceStable(t.rows, func(i, j int) bool {
		if col >= len(t.rows[i]) || col >= len(t.rows[j]) {
			return false
		}
		return t.rows[i][col] < t.rows[j][col]
	})
	return t
}

// String renders the table with two-space column gaps.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	grow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	grow(t.header)
	for _, r := range t.rows {
		grow(r)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", max(total-2, 1)))
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
