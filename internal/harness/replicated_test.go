package harness

import (
	"context"
	"strings"
	"testing"

	"repro/internal/design"
)

func TestAnalyzeReplicatedThroughHarness(t *testing.T) {
	e := paperExperiment(t, 3)
	rs, err := Execute(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	an, err := rs.AnalyzeReplicated("MIPS", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if an.Effects.Q[design.I] != 40 {
		t.Errorf("q0 = %g", an.Effects.Q[design.I])
	}
	// With tiny replicate noise every effect is significant and the
	// error share is small.
	if an.ErrorFraction > 0.01 {
		t.Errorf("error fraction = %g", an.ErrorFraction)
	}
	for _, eff := range []design.Effect{design.MainEffect(0), design.MainEffect(1)} {
		if !an.Significant(eff) {
			t.Errorf("effect %s should be significant", eff)
		}
	}
	// The report embeds the replicated analysis with factor names and
	// the experimental-error row.
	report := rs.Report()
	for _, want := range []string{"experimental error", "qmemory", "confidence intervals"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestAnalyzeReplicatedNeedsReplicates(t *testing.T) {
	rs, err := Execute(context.Background(), paperExperiment(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.AnalyzeReplicated("MIPS", 0.95); err == nil {
		t.Error("single replicate should error")
	}
}

func TestAnalyzeReplicatedNeedsTwoLevel(t *testing.T) {
	d, _ := design.Simple([]design.Factor{
		design.MustFactor("a", "x", "y"),
		design.MustFactor("b", "x", "y"),
	})
	d.Replicates = 2
	e := &Experiment{Name: "simple", Design: d, Responses: []string{"r"},
		Run: func(design.Assignment, int) (map[string]float64, error) {
			return map[string]float64{"r": 1}, nil
		}}
	rs, err := Execute(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.AnalyzeReplicated("r", 0.95); err == nil {
		t.Error("simple design should error")
	}
}
