package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/design"
)

// paperRunner produces the paper's 2^2 memory/cache MIPS responses with
// deterministic replicate noise that averages out.
func paperRunner(a design.Assignment, rep int) (map[string]float64, error) {
	// Assignment.String() renders keys alphabetically: cache first.
	base := map[string]float64{
		"cache=1KB memory=4MB":  15,
		"cache=2KB memory=4MB":  25,
		"cache=1KB memory=16MB": 45,
		"cache=2KB memory=16MB": 75,
	}[a.String()]
	if base == 0 {
		return nil, fmt.Errorf("unknown assignment %s", a)
	}
	noise := []float64{-1, 1, 0}[rep%3]
	return map[string]float64{"MIPS": base + noise}, nil
}

func paperExperiment(t *testing.T, reps int) *Experiment {
	t.Helper()
	d, err := design.TwoLevelFull([]design.Factor{
		design.MustFactor("memory", "4MB", "16MB"),
		design.MustFactor("cache", "1KB", "2KB"),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Replicates = reps
	return &Experiment{Name: "workstation 2^2", Design: d, Responses: []string{"MIPS"}, Run: paperRunner}
}

func TestExecutePaperExample(t *testing.T) {
	rs, err := Execute(context.Background(), paperExperiment(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Rows) != 4 {
		t.Fatalf("rows = %d", len(rs.Rows))
	}
	means := rs.Means("MIPS")
	want := []float64{15, 25, 45, 75}
	for i := range want {
		if means[i] != want[i] {
			t.Errorf("mean[%d] = %g, want %g", i, means[i], want[i])
		}
	}
	ef, err := rs.Effects("MIPS")
	if err != nil {
		t.Fatal(err)
	}
	if ef.Q[design.I] != 40 || ef.Q[design.MainEffect(0)] != 20 ||
		ef.Q[design.MainEffect(1)] != 10 || ef.Q[design.MainEffect(0).Mul(design.MainEffect(1))] != 5 {
		t.Errorf("effects = %v", ef.Q)
	}
}

func TestCIs(t *testing.T) {
	rs, err := Execute(context.Background(), paperExperiment(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	ivs, err := rs.CIs("MIPS", 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 4 {
		t.Fatalf("intervals = %d", len(ivs))
	}
	for i, iv := range ivs {
		if !iv.Contains(iv.Mean) || iv.HalfWidth() <= 0 {
			t.Errorf("interval %d = %v", i, iv)
		}
	}
	// Single replicate: CIs impossible.
	rs1, _ := Execute(context.Background(), paperExperiment(t, 1))
	if _, err := rs1.CIs("MIPS", 0.95); err == nil {
		t.Error("CI with 1 replicate should error")
	}
}

func TestReport(t *testing.T) {
	rs, err := Execute(context.Background(), paperExperiment(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	report := rs.Report()
	for _, want := range []string{
		"workstation 2^2", "memory", "cache", "MIPS",
		"±",                                // CIs shown for replicated runs
		"y = 40 + 20*xA + 10*xB + 5*xA*xB", // fitted model
		"variation explained", "qmemory",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "WARNING") {
		t.Error("replicated experiment should not warn")
	}
	// Unreplicated: warns about ignored experimental error.
	rs1, _ := Execute(context.Background(), paperExperiment(t, 1))
	if !strings.Contains(rs1.Report(), "WARNING") {
		t.Error("unreplicated experiment should warn (common mistake #1)")
	}
}

func TestValidate(t *testing.T) {
	good := paperExperiment(t, 1)
	cases := []struct {
		name   string
		mutate func(*Experiment)
	}{
		{"no name", func(e *Experiment) { e.Name = "" }},
		{"no design", func(e *Experiment) { e.Design = nil }},
		{"no responses", func(e *Experiment) { e.Responses = nil }},
		{"duplicate response", func(e *Experiment) { e.Responses = []string{"a", "a"} }},
		{"empty response", func(e *Experiment) { e.Responses = []string{""} }},
		{"no runner", func(e *Experiment) { e.Run = nil }},
	}
	for _, c := range cases {
		e := paperExperiment(t, 1)
		c.mutate(e)
		if err := e.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good experiment rejected: %v", err)
	}
}

func TestExecuteErrors(t *testing.T) {
	boom := errors.New("runner crashed")
	e := paperExperiment(t, 1)
	e.Run = func(design.Assignment, int) (map[string]float64, error) { return nil, boom }
	if _, err := Execute(context.Background(), e); !errors.Is(err, boom) {
		t.Errorf("runner error not propagated: %v", err)
	}
	e2 := paperExperiment(t, 1)
	e2.Run = func(design.Assignment, int) (map[string]float64, error) {
		return map[string]float64{"other": 1}, nil
	}
	if _, err := Execute(context.Background(), e2); err == nil {
		t.Error("missing response should error")
	}
}

func TestEffectsRequireCanonicalTwoLevel(t *testing.T) {
	// Simple design: effects unavailable.
	d, _ := design.Simple([]design.Factor{
		design.MustFactor("a", "x", "y"),
		design.MustFactor("b", "x", "y"),
	})
	e := &Experiment{Name: "simple", Design: d, Responses: []string{"r"},
		Run: func(design.Assignment, int) (map[string]float64, error) {
			return map[string]float64{"r": 1}, nil
		}}
	rs, err := Execute(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Effects("r"); err == nil {
		t.Error("effects on a simple design should error")
	}
	// Scrambled row order: rejected.
	d2, _ := design.TwoLevelFull([]design.Factor{design.MustFactor("a", "x", "y")})
	d2.Rows[0], d2.Rows[1] = d2.Rows[1], d2.Rows[0]
	e2 := &Experiment{Name: "scrambled", Design: d2, Responses: []string{"r"}, Run: e.Run}
	rs2, err := Execute(context.Background(), e2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs2.Effects("r"); err == nil {
		t.Error("non-canonical order should error")
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable().Header("name", "value").Row("alpha", "1").Row("z", "22222")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("missing separator: %q", lines[1])
	}
	// Columns align: "value" column starts at same offset everywhere.
	idx := strings.Index(lines[0], "value")
	if !strings.HasPrefix(lines[2][idx:], "1") || !strings.HasPrefix(lines[3][idx:], "22222") {
		t.Errorf("misaligned table:\n%s", out)
	}
	// Sort by first column.
	tab.SortRowsBy(0)
	sorted := tab.String()
	if strings.Index(sorted, "alpha") > strings.Index(sorted, "22222") {
		t.Errorf("sort failed:\n%s", sorted)
	}
}

func TestResultSetCSV(t *testing.T) {
	rs, err := Execute(context.Background(), paperExperiment(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	csv := rs.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "memory,cache,MIPS" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(csv, "16MB,2KB,75") {
		t.Errorf("csv missing high-high row:\n%s", csv)
	}
}
