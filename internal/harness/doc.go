// Package harness orchestrates complete experiments: a factor design, a
// runner that produces response measurements for each factor-level
// combination with replication, and analysis (confidence intervals,
// factorial effects, allocation of variation) plus report rendering.
// It is the executable form of the paper's methodology pipeline:
// plan -> design -> run -> analyze -> present.
//
// Execution routes through the pluggable Executor interface: Sequential
// (the default — strictly ordered, single goroutine, because concurrent
// execution on one machine perturbs time measurements) or the
// concurrent, store-backed scheduler in internal/sched. Executors
// install per-context via WithExecutor (preferred — scoped, no global
// state) or process-wide via SetDefaultExecutor. Execute takes a
// context and threads it into the executor, so cancellation reaches
// the worker pool; Sequential checks it between units.
//
// Concurrency contract: SetDefaultExecutor/DefaultExecutor/Execute and
// WithExecutor/ExecutorFrom are safe for concurrent use. An Experiment and a ResultSet are passive
// data: safe for concurrent reads, not for mutation during a run. A
// RunFunc must be safe for concurrent invocation if (and only if) the
// experiment runs under a concurrent executor.
//
// Durability contract: none in this package — the harness computes in
// memory and renders reports. Persistence of completed units, crash
// recovery, and warm starts are the executor's business, via
// runstore.Store; see internal/sched and internal/runstore.
package harness
