package repeat

import "testing"

func TestInTheirWords(t *testing.T) {
	quotes := InTheirWords()
	if len(quotes) < 10 {
		t.Fatalf("quotes = %d", len(quotes))
	}
	nExcuse, nEnc := 0, 0
	for _, q := range quotes {
		if q.Summary == "" {
			t.Error("empty summary")
		}
		switch q.Kind {
		case Excuse:
			nExcuse++
			if q.Lesson == "" {
				t.Errorf("excuse without lesson: %q", q.Summary)
			}
		case Encouragement:
			nEnc++
			if q.Lesson != "" {
				t.Errorf("encouragement with lesson: %q", q.Summary)
			}
		}
		if q.Kind.String() == "" {
			t.Error("empty kind string")
		}
	}
	if nExcuse < 5 || nEnc < 4 {
		t.Errorf("excuses = %d, encouragements = %d", nExcuse, nEnc)
	}
	if len(Excuses()) != nExcuse {
		t.Errorf("Excuses() = %d, want %d", len(Excuses()), nExcuse)
	}
}
