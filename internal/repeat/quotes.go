package repeat

// This file records the paper's "In their words" chapter (slides 221-234):
// anonymized author statements collected during the SIGMOD 2008
// repeatability assessment, classified as the excuses for not providing
// runnable code and the encouragements reported afterwards. Each excuse
// carries the repeatability practice that would have prevented it — turning
// the paper's war stories into actionable lint for experiment suites.

// QuoteKind classifies a statement.
type QuoteKind int

const (
	// Excuse is a reason given for not providing testable code.
	Excuse QuoteKind = iota
	// Encouragement is positive feedback on the repeatability process.
	Encouragement
)

func (k QuoteKind) String() string {
	if k == Excuse {
		return "excuse"
	}
	return "encouragement"
}

// Quote is one anonymized statement with its lesson.
type Quote struct {
	Kind QuoteKind
	// Summary paraphrases the statement.
	Summary string
	// Lesson names the practice (a Suite/Experiment field or paper
	// guideline) that addresses it. Empty for encouragements.
	Lesson string
}

// InTheirWords returns the paper's quote catalogue.
func InTheirWords() []Quote {
	return []Quote{
		{Excuse,
			"the primary author graduated and cannot package the code; it is tightly coupled to ongoing work",
			"maintain the code and keep experiments scripted while the work is fresh (Suite.Install, Experiment.Script)"},
		{Excuse,
			"we use other people's code and lost some of our own; rebuilding needs 4-5 months",
			"version and archive everything an experiment needs when the experiment is run"},
		{Excuse,
			"the system cannot be packaged to run from the command line after three years of development",
			"keep a command-line entry point per experiment from day one (Experiment.Script)"},
		{Excuse,
			"results depended on 300 manual relevance judgments that cannot be repeated",
			"record the judgments as data; they are part of the experiment's inputs"},
		{Excuse,
			"the random subsets were not recorded and the experiments were performed months ago",
			"fix and record seeds; derive subsets deterministically (the generator-seed discipline)"},
		{Excuse,
			"the simulator predates the instructions and takes no command-line parameters",
			"make experiments parameterizable (config.Properties, -Dkey=value)"},
		{Encouragement,
			"this wasn't too hard and definitely worth it: we found a mistake in our own submission", ""},
		{Encouragement,
			"it was helpful; we discovered an error in one of our graphs after submission", ""},
		{Encouragement,
			"a great sense of achievement when other people can repeat our work and use our methods", ""},
		{Encouragement,
			"it helps students develop more solid software and algorithms", ""},
		{Encouragement,
			"a very important direction for the field's maturing; authors will come to think instinctively about repeatability", ""},
	}
}

// Excuses returns only the excuses, each with its preventing practice.
func Excuses() []Quote {
	var out []Quote
	for _, q := range InTheirWords() {
		if q.Kind == Excuse {
			out = append(out, q)
		}
	}
	return out
}
