// Package repeat implements the paper's Repeatability chapter: experiment
// suites that another human (your supervisor, your colleagues, yourself
// three years later, future researchers) can re-run. A Suite is the
// machine-checkable version of the paper's documentation checklist — what
// installation requires, and for each experiment: extra installation,
// the script to run, where to look for the output, and how long it takes.
// It also ships the SIGMOD 2008 repeatability-effort outcome data the
// paper reports.
package repeat

import (
	"fmt"
	"strings"
	"time"
)

// Experiment is one entry of a repeatable suite.
type Experiment struct {
	ID          string
	Description string
	// Script is the command that regenerates the experiment end to end.
	Script string
	// ExtraInstall names additional setup beyond the suite-level
	// installation ("" when none).
	ExtraInstall string
	// OutputPath is where the generated table/graph lands.
	OutputPath string
	// ExpectedDuration tells the re-runner what to budget (the paper's
	// war story: an undeclared 40-day data-preparation step).
	ExpectedDuration time.Duration
	// Idempotent records whether re-running the script from its output
	// state is safe. The paper's longest war story is an experiment
	// that modified the database and could not simply be re-run.
	Idempotent bool
}

// Suite is a documented, runnable collection of experiments.
type Suite struct {
	Name string
	// Requirements lists what the installation requires (hardware,
	// software versions).
	Requirements []string
	// Install is the suite-level installation command.
	Install string
	// Experiments in presentation order.
	Experiments []Experiment
	// Layout is the directory convention (the paper suggests source,
	// bin, data, res, graphs).
	Layout []string
}

// DefaultLayout is the paper's suggested directory structure.
func DefaultLayout() []string { return []string{"source", "bin", "data", "res", "graphs"} }

// Validate enforces the documentation checklist: every experiment needs an
// id, a script, an output location, and an expected duration; ids must be
// unique; the suite needs install instructions and requirements.
func (s *Suite) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("repeat: suite needs a name")
	}
	if s.Install == "" {
		return fmt.Errorf("repeat: suite %q: document how to install (\"what the installation requires; how to install\")", s.Name)
	}
	if len(s.Requirements) == 0 {
		return fmt.Errorf("repeat: suite %q: list installation requirements", s.Name)
	}
	if len(s.Experiments) == 0 {
		return fmt.Errorf("repeat: suite %q has no experiments", s.Name)
	}
	seen := map[string]bool{}
	for i, e := range s.Experiments {
		switch {
		case e.ID == "":
			return fmt.Errorf("repeat: suite %q: experiment %d has no id", s.Name, i)
		case seen[e.ID]:
			return fmt.Errorf("repeat: suite %q: duplicate experiment id %q", s.Name, e.ID)
		case e.Script == "":
			return fmt.Errorf("repeat: experiment %q: document the script to run", e.ID)
		case e.OutputPath == "":
			return fmt.Errorf("repeat: experiment %q: document where to look for the graph/table", e.ID)
		case e.ExpectedDuration <= 0:
			return fmt.Errorf("repeat: experiment %q: document how long it takes", e.ID)
		}
		seen[e.ID] = true
	}
	return nil
}

// TotalExpectedDuration sums the declared durations — the number a
// repeatability committee reads first.
func (s *Suite) TotalExpectedDuration() time.Duration {
	var total time.Duration
	for _, e := range s.Experiments {
		total += e.ExpectedDuration
	}
	return total
}

// Instructions renders the suite's README: installation, then per
// experiment the script, output location, and expected runtime — the four
// items the paper says to specify.
func (s *Suite) Instructions() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Repeatability instructions: %s\n\n", s.Name)
	b.WriteString("## Requirements\n\n")
	for _, r := range s.Requirements {
		fmt.Fprintf(&b, "- %s\n", r)
	}
	fmt.Fprintf(&b, "\n## Installation\n\n    %s\n\n", s.Install)
	if len(s.Layout) > 0 {
		fmt.Fprintf(&b, "## Directory layout\n\n    %s\n\n", strings.Join(s.Layout, "/ "))
	}
	b.WriteString("## Experiments\n\n")
	for _, e := range s.Experiments {
		fmt.Fprintf(&b, "### %s — %s\n\n", e.ID, e.Description)
		if e.ExtraInstall != "" {
			fmt.Fprintf(&b, "- Extra installation: `%s`\n", e.ExtraInstall)
		}
		fmt.Fprintf(&b, "- Run: `%s`\n", e.Script)
		fmt.Fprintf(&b, "- Output: `%s`\n", e.OutputPath)
		fmt.Fprintf(&b, "- Expected duration: %s\n", e.ExpectedDuration)
		if !e.Idempotent {
			b.WriteString("- WARNING: not idempotent; restore the initial state before re-running\n")
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "Total expected duration: %s\n", s.TotalExpectedDuration())
	return b.String()
}

// RunReport is the outcome of executing a suite.
type RunReport struct {
	Suite    string
	Results  []RunResult
	AllOK    bool
	Duration time.Duration
}

// RunResult is one experiment's outcome.
type RunResult struct {
	ID       string
	Err      error
	Duration time.Duration
	// Overran flags an experiment that took more than double its
	// declared expected duration.
	Overran bool
}

// Clock abstracts time measurement for the runner (tests use a virtual
// clock).
type Clock interface{ Now() time.Duration }

// Run executes every experiment through exec (which receives the
// experiment and returns an error on failure), checking durations against
// declarations. A failed experiment does not stop the suite: the
// repeatability committee wants the full picture.
func (s *Suite) Run(clock Clock, exec func(Experiment) error) (*RunReport, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if clock == nil || exec == nil {
		return nil, fmt.Errorf("repeat: Run needs a clock and an exec function")
	}
	report := &RunReport{Suite: s.Name, AllOK: true}
	suiteStart := clock.Now()
	for _, e := range s.Experiments {
		start := clock.Now()
		err := exec(e)
		d := clock.Now() - start
		r := RunResult{ID: e.ID, Err: err, Duration: d, Overran: d > 2*e.ExpectedDuration}
		if err != nil {
			report.AllOK = false
		}
		report.Results = append(report.Results, r)
	}
	report.Duration = clock.Now() - suiteStart
	return report, nil
}

// String renders the run report.
func (r *RunReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "suite %s: %d experiments in %s\n", r.Suite, len(r.Results), r.Duration)
	for _, res := range r.Results {
		status := "ok"
		if res.Err != nil {
			status = "FAILED: " + res.Err.Error()
		}
		over := ""
		if res.Overran {
			over = " (overran declared duration)"
		}
		fmt.Fprintf(&b, "  %-12s %-30s %s%s\n", res.ID, res.Duration, status, over)
	}
	return b.String()
}
