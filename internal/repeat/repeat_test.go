package repeat

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func goodSuite() *Suite {
	return &Suite{
		Name:         "perfeval-paper",
		Requirements: []string{"Go 1.22+", "no network access needed"},
		Install:      "go build ./...",
		Layout:       DefaultLayout(),
		Experiments: []Experiment{
			{ID: "t1", Description: "server/client output table", Script: "perfeval run t1",
				OutputPath: "res/t1.txt", ExpectedDuration: 5 * time.Second, Idempotent: true},
			{ID: "f2", Description: "memory wall figure", Script: "perfeval run f2",
				OutputPath: "graphs/f2.eps", ExpectedDuration: 2 * time.Second, Idempotent: true,
				ExtraInstall: "gnuplot"},
			{ID: "load", Description: "reload database", Script: "dbgen -sf 1",
				OutputPath: "data/", ExpectedDuration: 10 * time.Second, Idempotent: false},
		},
	}
}

func TestSuiteValidate(t *testing.T) {
	if err := goodSuite().Validate(); err != nil {
		t.Fatalf("good suite rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Suite)
	}{
		{"no name", func(s *Suite) { s.Name = "" }},
		{"no install", func(s *Suite) { s.Install = "" }},
		{"no requirements", func(s *Suite) { s.Requirements = nil }},
		{"no experiments", func(s *Suite) { s.Experiments = nil }},
		{"experiment without id", func(s *Suite) { s.Experiments[0].ID = "" }},
		{"duplicate id", func(s *Suite) { s.Experiments[1].ID = "t1" }},
		{"no script", func(s *Suite) { s.Experiments[0].Script = "" }},
		{"no output path", func(s *Suite) { s.Experiments[0].OutputPath = "" }},
		{"no duration", func(s *Suite) { s.Experiments[0].ExpectedDuration = 0 }},
	}
	for _, c := range cases {
		s := goodSuite()
		c.mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestInstructions(t *testing.T) {
	s := goodSuite()
	doc := s.Instructions()
	for _, want := range []string{
		"# Repeatability instructions: perfeval-paper",
		"Go 1.22+",
		"go build ./...",
		"### t1 — server/client output table",
		"Run: `perfeval run t1`",
		"Output: `res/t1.txt`",
		"Expected duration: 5s",
		"Extra installation: `gnuplot`",
		"WARNING: not idempotent",
		"Total expected duration: 17s",
		"source/ bin/ data/ res/ graphs",
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("instructions missing %q", want)
		}
	}
}

type tickClock struct{ t time.Duration }

func (c *tickClock) Now() time.Duration { return c.t }

func TestSuiteRun(t *testing.T) {
	s := goodSuite()
	clock := &tickClock{}
	boom := errors.New("segfault in experiment")
	report, err := s.Run(clock, func(e Experiment) error {
		switch e.ID {
		case "t1":
			clock.t += 3 * time.Second
			return nil
		case "f2":
			clock.t += 30 * time.Second // overruns 2*2s
			return nil
		default:
			clock.t += time.Second
			return boom
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.AllOK {
		t.Error("suite with a failure should not be AllOK")
	}
	if len(report.Results) != 3 {
		t.Fatalf("results = %d", len(report.Results))
	}
	if report.Results[0].Overran {
		t.Error("t1 within budget should not overrun")
	}
	if !report.Results[1].Overran {
		t.Error("f2 at 30s vs declared 2s should overrun")
	}
	if report.Results[2].Err == nil {
		t.Error("load failure not recorded")
	}
	if report.Duration != 34*time.Second {
		t.Errorf("total duration = %v", report.Duration)
	}
	text := report.String()
	for _, want := range []string{"perfeval-paper", "FAILED: segfault", "overran declared duration"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestSuiteRunErrors(t *testing.T) {
	s := goodSuite()
	if _, err := s.Run(nil, func(Experiment) error { return nil }); err == nil {
		t.Error("nil clock should error")
	}
	if _, err := s.Run(&tickClock{}, nil); err == nil {
		t.Error("nil exec should error")
	}
	bad := goodSuite()
	bad.Install = ""
	if _, err := bad.Run(&tickClock{}, func(Experiment) error { return nil }); err == nil {
		t.Error("invalid suite should not run")
	}
}

func TestSIGMOD2008Data(t *testing.T) {
	charts := SIGMOD2008()
	if len(charts) != 3 {
		t.Fatalf("charts = %d", len(charts))
	}
	for _, c := range charts {
		if !c.Consistent() {
			t.Errorf("%s: counts do not sum to %d", c.Title, c.Total)
		}
		if !c.FromFigure {
			t.Errorf("%s: per-category splits must be marked as figure estimates", c.Title)
		}
	}
	h := SIGMOD2008Headline()
	if h.Submissions != 436 || h.ProvidedCode != 298 || h.Accepted != 78 ||
		h.RejectedVer != 11 || h.TotalVerified != 64 {
		t.Errorf("headline = %+v", h)
	}
	// The accepted chart has five categories (incl. excuses and
	// no-submission); the verified-only charts have three.
	if len(charts[0].Counts) != 5 || len(charts[1].Counts) != 3 || len(charts[2].Counts) != 3 {
		t.Error("category structure wrong")
	}
	// Cross-check: all-verified = accepted-verified (all+some+none) +
	// rejected-verified.
	acceptedVerified := charts[0].Counts[AllRepeated] + charts[0].Counts[SomeRepeated] + charts[0].Counts[NoneRepeated]
	if acceptedVerified+charts[1].Total != charts[2].Total {
		t.Errorf("verified accounting: %d + %d != %d", acceptedVerified, charts[1].Total, charts[2].Total)
	}
}
