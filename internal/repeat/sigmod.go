package repeat

// This file records the SIGMOD 2008 repeatability-effort statistics the
// paper reports (slides 2, 218-220): the first large-scale repeatability
// assessment in the database community. Exact totals come from the slide
// text; the per-category splits of the three pie charts are read off the
// figures and are marked as such.

// OutcomeCategory is a repeatability verdict for one paper.
type OutcomeCategory string

// Verdict categories of the SIGMOD 2008 assessment.
const (
	AllRepeated  OutcomeCategory = "all experiments repeated"
	SomeRepeated OutcomeCategory = "some experiments repeated"
	NoneRepeated OutcomeCategory = "no experiments repeated"
	Excused      OutcomeCategory = "excuse accepted"
	NoSubmission OutcomeCategory = "no code submitted"
)

// OutcomeChart is one pie chart of the paper: a population and its
// category counts.
type OutcomeChart struct {
	Title  string
	Total  int
	Counts map[OutcomeCategory]int
	// FromFigure marks counts estimated from the published pie charts
	// rather than stated numerically in the text.
	FromFigure bool
}

// SIGMOD2008 returns the assessment's headline numbers and the three
// outcome charts.
//
// Stated in the slides: 436 submissions, 298 papers provided code, 78
// accepted papers assessed, 11 rejected-but-verified papers, 64 papers
// verified in total across both pools.
func SIGMOD2008() []OutcomeChart {
	return []OutcomeChart{
		{
			Title: "Accepted papers (78)",
			Total: 78,
			Counts: map[OutcomeCategory]int{
				AllRepeated:  26,
				SomeRepeated: 15,
				NoneRepeated: 12,
				Excused:      9,
				NoSubmission: 16,
			},
			FromFigure: true,
		},
		{
			Title: "Rejected verified papers (11)",
			Total: 11,
			Counts: map[OutcomeCategory]int{
				AllRepeated:  5,
				SomeRepeated: 3,
				NoneRepeated: 3,
			},
			FromFigure: true,
		},
		{
			Title: "All verified papers (64)",
			Total: 64,
			Counts: map[OutcomeCategory]int{
				AllRepeated:  31,
				SomeRepeated: 18,
				NoneRepeated: 15,
			},
			FromFigure: true,
		},
	}
}

// Headline are the numerically stated facts of the assessment.
type Headline struct {
	Submissions   int
	ProvidedCode  int
	Accepted      int
	RejectedVer   int
	TotalVerified int
}

// SIGMOD2008Headline returns the stated totals.
func SIGMOD2008Headline() Headline {
	return Headline{
		Submissions:   436,
		ProvidedCode:  298,
		Accepted:      78,
		RejectedVer:   11,
		TotalVerified: 64,
	}
}

// Consistent checks each chart's counts sum to its total.
func (c OutcomeChart) Consistent() bool {
	sum := 0
	for _, n := range c.Counts {
		sum += n
	}
	return sum == c.Total
}
