package vdb

import "fmt"

// OutputSchema infers the result schema of a plan against a catalog,
// type-checking expressions along the way. Both engines validate plans
// through it before executing.
func OutputSchema(db *DB, n Node) (*Schema, error) {
	switch node := n.(type) {
	case *ScanNode:
		t, err := db.Table(node.Table)
		if err != nil {
			return nil, err
		}
		if len(node.Cols) == 0 {
			return SchemaOf(t), nil
		}
		s := &Schema{}
		for _, name := range node.Cols {
			c, err := t.Column(name)
			if err != nil {
				return nil, err
			}
			s.Names = append(s.Names, c.Name)
			s.Types = append(s.Types, c.Type)
		}
		return s, nil

	case *FilterNode:
		child, err := OutputSchema(db, node.Child)
		if err != nil {
			return nil, err
		}
		if _, err := node.Pred.TypeIn(child); err != nil {
			return nil, fmt.Errorf("vdb: filter predicate: %w", err)
		}
		return child, nil

	case *ProjectNode:
		child, err := OutputSchema(db, node.Child)
		if err != nil {
			return nil, err
		}
		if len(node.Exprs) == 0 || len(node.Exprs) != len(node.Names) {
			return nil, fmt.Errorf("vdb: project needs matching exprs (%d) and names (%d)", len(node.Exprs), len(node.Names))
		}
		s := &Schema{}
		seen := map[string]bool{}
		for i, e := range node.Exprs {
			t, err := e.TypeIn(child)
			if err != nil {
				return nil, fmt.Errorf("vdb: project expr %s: %w", e, err)
			}
			if node.Names[i] == "" || seen[node.Names[i]] {
				return nil, fmt.Errorf("vdb: project output name %q empty or duplicate", node.Names[i])
			}
			seen[node.Names[i]] = true
			s.Names = append(s.Names, node.Names[i])
			s.Types = append(s.Types, t)
		}
		return s, nil

	case *JoinNode:
		left, err := OutputSchema(db, node.Left)
		if err != nil {
			return nil, err
		}
		right, err := OutputSchema(db, node.Right)
		if err != nil {
			return nil, err
		}
		li, err := left.IndexOf(node.LeftKey)
		if err != nil {
			return nil, fmt.Errorf("vdb: join left key: %w", err)
		}
		ri, err := right.IndexOf(node.RightKey)
		if err != nil {
			return nil, fmt.Errorf("vdb: join right key: %w", err)
		}
		if left.Types[li] != right.Types[ri] {
			return nil, fmt.Errorf("vdb: join key type mismatch: %s is %s, %s is %s",
				node.LeftKey, left.Types[li], node.RightKey, right.Types[ri])
		}
		if left.Types[li] == TFloat {
			return nil, fmt.Errorf("vdb: joining on float keys is not supported")
		}
		s := &Schema{
			Names: append(append([]string{}, left.Names...), right.Names...),
			Types: append(append([]Type{}, left.Types...), right.Types...),
		}
		seen := map[string]bool{}
		for _, name := range s.Names {
			if seen[name] {
				return nil, fmt.Errorf("vdb: join output has duplicate column %q; project/rename first", name)
			}
			seen[name] = true
		}
		return s, nil

	case *AggNode:
		child, err := OutputSchema(db, node.Child)
		if err != nil {
			return nil, err
		}
		if len(node.Aggs) == 0 {
			return nil, fmt.Errorf("vdb: aggregate needs at least one aggregate function")
		}
		s := &Schema{}
		seen := map[string]bool{}
		for _, g := range node.GroupBy {
			i, err := child.IndexOf(g)
			if err != nil {
				return nil, fmt.Errorf("vdb: group-by: %w", err)
			}
			s.Names = append(s.Names, g)
			s.Types = append(s.Types, child.Types[i])
			seen[g] = true
		}
		for _, a := range node.Aggs {
			t, err := aggResultType(a, child)
			if err != nil {
				return nil, err
			}
			if a.Name == "" || seen[a.Name] {
				return nil, fmt.Errorf("vdb: aggregate output name %q empty or duplicate", a.Name)
			}
			seen[a.Name] = true
			s.Names = append(s.Names, a.Name)
			s.Types = append(s.Types, t)
		}
		return s, nil

	case *SortNode:
		child, err := OutputSchema(db, node.Child)
		if err != nil {
			return nil, err
		}
		for _, k := range node.Keys {
			if _, err := child.IndexOf(k.Col); err != nil {
				return nil, fmt.Errorf("vdb: sort key: %w", err)
			}
		}
		return child, nil

	case *LimitNode:
		if node.N < 0 {
			return nil, fmt.Errorf("vdb: negative limit %d", node.N)
		}
		return OutputSchema(db, node.Child)

	default:
		if s, handled, err := distinctTopNSchema(db, n); handled {
			return s, err
		}
		return nil, fmt.Errorf("vdb: unknown plan node %T", n)
	}
}

func aggResultType(a AggSpec, child *Schema) (Type, error) {
	switch a.Func {
	case AggCount, AggCountDistinct:
		if a.Func == AggCountDistinct && a.Expr == nil {
			return 0, fmt.Errorf("vdb: count_distinct needs an expression")
		}
		if a.Expr != nil {
			if _, err := a.Expr.TypeIn(child); err != nil {
				return 0, fmt.Errorf("vdb: aggregate %s: %w", a, err)
			}
		}
		return TInt, nil
	case AggAvg:
		if a.Expr == nil {
			return 0, fmt.Errorf("vdb: %s needs an expression", a.Func)
		}
		t, err := a.Expr.TypeIn(child)
		if err != nil {
			return 0, fmt.Errorf("vdb: aggregate %s: %w", a, err)
		}
		if t == TString {
			return 0, fmt.Errorf("vdb: avg over string in %s", a)
		}
		return TFloat, nil
	case AggSum:
		if a.Expr == nil {
			return 0, fmt.Errorf("vdb: %s needs an expression", a.Func)
		}
		t, err := a.Expr.TypeIn(child)
		if err != nil {
			return 0, fmt.Errorf("vdb: aggregate %s: %w", a, err)
		}
		if t == TString {
			return 0, fmt.Errorf("vdb: sum over string in %s", a)
		}
		return t, nil
	case AggMin, AggMax:
		if a.Expr == nil {
			return 0, fmt.Errorf("vdb: %s needs an expression", a.Func)
		}
		return a.Expr.TypeIn(child)
	default:
		return 0, fmt.Errorf("vdb: unknown aggregate %v", a.Func)
	}
}

// exprNodes counts AST nodes, the unit of per-row expression-evaluation
// work for the cost model.
func exprNodes(e Expr) int {
	switch ex := e.(type) {
	case ColRef, ConstExpr:
		return 1
	case ArithExpr:
		return 1 + exprNodes(ex.L) + exprNodes(ex.R)
	case CmpExpr:
		return 1 + exprNodes(ex.L) + exprNodes(ex.R)
	case BoolExpr:
		n := 1 + exprNodes(ex.L)
		if ex.R != nil {
			n += exprNodes(ex.R)
		}
		return n
	case LikeExpr:
		return 1 + exprNodes(ex.Operand)
	default:
		return 1
	}
}
