package vdb

import (
	"testing"
	"testing/quick"
)

func TestParseTableCSVRoundTrip(t *testing.T) {
	orig, err := NewTable("t",
		NewIntColumn("a", []int64{1, -2, 3}),
		NewFloatColumn("b", []float64{13.666, 15, -0.5}),
		NewStringColumn("c", []string{"x", "hello world", "13abc"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseTableCSV("t", orig.CSV())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumRows() != 3 || len(parsed.Cols) != 3 {
		t.Fatalf("parsed %dx%d", parsed.NumRows(), len(parsed.Cols))
	}
	// Types inferred correctly.
	if parsed.Cols[0].Type != TInt || parsed.Cols[1].Type != TFloat || parsed.Cols[2].Type != TString {
		t.Errorf("types = %v %v %v", parsed.Cols[0].Type, parsed.Cols[1].Type, parsed.Cols[2].Type)
	}
	if parsed.CSV() != orig.CSV() {
		t.Errorf("round trip mismatch:\n%q\n%q", orig.CSV(), parsed.CSV())
	}
}

func TestParseTableCSVMixedNumeric(t *testing.T) {
	// Integers mixed with floats widen the whole column to float.
	text := "v\n1\n2.5\n3\n"
	tab, err := ParseTableCSV("m", text)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Cols[0].Type != TFloat {
		t.Errorf("type = %v, want float", tab.Cols[0].Type)
	}
	if tab.Cols[0].Floats[0] != 1 || tab.Cols[0].Floats[1] != 2.5 {
		t.Errorf("values = %v", tab.Cols[0].Floats)
	}
}

func TestParseTableCSVErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"empty", ""},
		{"header only", "a,b\n"},
		{"short row", "a,b\n1\n"},
		{"long row", "a\n1,2\n"},
	}
	for _, c := range cases {
		if _, err := ParseTableCSV("t", c.text); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Duplicate header names are rejected by NewTable.
	if _, err := ParseTableCSV("t", "a,a\n1,2\n"); err == nil {
		t.Error("duplicate columns should error")
	}
}

func TestLoadDBFromCSVAndQuery(t *testing.T) {
	db, err := LoadDBFromCSV([]struct{ Name, CSV string }{
		{"items", "id,price\n1,10.5\n2,20\n3,7.25\n"},
		{"tags", "item_id,tag\n1,cheap\n2,dear\n3,cheap\n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := Scan("items").
		Join(From(Scan("tags").Node()), "id", "item_id").
		Filter(Eq(Col("tag"), Str("cheap"))).
		Aggregate(Sum(Col("price"), "total")).Node()
	res, err := Run(NewContext(db), ColumnEngine{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Cols[0].Floats[0]; got != 17.75 {
		t.Errorf("total = %g, want 17.75", got)
	}
	// Bad CSV propagates.
	if _, err := LoadDBFromCSV([]struct{ Name, CSV string }{{"bad", ""}}); err == nil {
		t.Error("bad CSV should error")
	}
	// Duplicate table names propagate.
	if _, err := LoadDBFromCSV([]struct{ Name, CSV string }{
		{"t", "a\n1\n"}, {"t", "a\n1\n"},
	}); err == nil {
		t.Error("duplicate table should error")
	}
}

// Property: CSV round trip preserves any table of integers (which never
// contain separators or newlines, so the text format is unambiguous).
func TestParseTableCSVQuick(t *testing.T) {
	f := func(a, bRaw []int16) bool {
		if len(a) == 0 {
			return true
		}
		b := make([]int64, len(a))
		av := make([]int64, len(a))
		for i := range a {
			av[i] = int64(a[i])
			if i < len(bRaw) {
				b[i] = int64(bRaw[i])
			}
		}
		orig, err := NewTable("q", NewIntColumn("x", av), NewIntColumn("y", b))
		if err != nil {
			return false
		}
		parsed, err := ParseTableCSV("q", orig.CSV())
		if err != nil {
			return false
		}
		return parsed.CSV() == orig.CSV()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
