package vdb

import "fmt"

// CheckFairComparison inspects two execution contexts that are about to be
// compared and reports every way the comparison is apples-to-oranges — the
// paper's anecdote of colleague A compiling with optimization while B did
// not, generalized:
//
//   - different build modes (DBG vs OPT: up to factor 2);
//   - different machines;
//   - different debug-overhead configurations;
//   - different buffer warmth for the tables both will touch.
//
// An empty result does not make the comparison "absolutely fair" (the paper
// says that is virtually impossible) — it means the crucial factors the
// framework controls are equal, and what remains should be documented.
func CheckFairComparison(a, b *ExecContext, tables []string) []string {
	var out []string
	if a == nil || b == nil {
		return []string{"one of the contexts is nil"}
	}
	if a.Mode != b.Mode {
		out = append(out, fmt.Sprintf(
			"build modes differ: %s vs %s (the paper's compiler anecdote: up to factor 2)",
			a.Mode, b.Mode))
	}
	switch {
	case (a.Machine == nil) != (b.Machine == nil):
		out = append(out, "one context simulates hardware costs, the other does not")
	case a.Machine != nil && b.Machine != nil && a.Machine.Name != b.Machine.Name:
		out = append(out, fmt.Sprintf("machines differ: %s vs %s", a.Machine.Name, b.Machine.Name))
	}
	if a.Machine != nil && b.Machine != nil && a.Overheads != b.Overheads {
		out = append(out, "debug-overhead configurations differ")
	}
	if a.Buffers != nil && b.Buffers != nil {
		for _, t := range tables {
			ra, rb := a.Buffers.Resident(t), b.Buffers.Resident(t)
			if ra != rb {
				out = append(out, fmt.Sprintf(
					"buffer state differs for table %q: %s vs %s (hot/cold mismatch)",
					t, warmth(ra), warmth(rb)))
			}
		}
	} else if (a.Buffers == nil) != (b.Buffers == nil) {
		out = append(out, "one context tracks buffer state, the other does not")
	}
	return out
}

func warmth(resident bool) string {
	if resident {
		return "hot"
	}
	return "cold"
}
