package vdb

import (
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/hwsim"
)

func bigDB(t *testing.T, rows int) *DB {
	t.Helper()
	ids := make([]int64, rows)
	vals := make([]float64, rows)
	grp := make([]string, rows)
	for i := range ids {
		ids[i] = int64(i)
		vals[i] = float64(i%97) * 1.5
		grp[i] = string(rune('a' + i%5))
	}
	tab, err := NewTable("big",
		NewIntColumn("id", ids),
		NewFloatColumn("val", vals),
		NewStringColumn("grp", grp),
	)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDB()
	if err := db.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	return db
}

func simCtx(db *DB) *ExecContext {
	m := hwsim.PentiumM2005
	return NewSimContext(db, &m, hwsim.NewVirtualClock())
}

func TestColdRunPaysIO(t *testing.T) {
	db := bigDB(t, 10000)
	plan := Scan("big").Aggregate(MaxOf(Col("val"), "m")).Node()
	ctx := simCtx(db)

	// Cold: first execution pays disk I/O.
	if _, err := Run(ctx, ColumnEngine{}, plan); err != nil {
		t.Fatal(err)
	}
	coldIO := ctx.Clock.IOWait()
	if coldIO <= 0 {
		t.Fatal("cold run should pay I/O wait")
	}
	coldUser := ctx.Clock.User()

	// Hot: second execution adds no I/O.
	if _, err := Run(ctx, ColumnEngine{}, plan); err != nil {
		t.Fatal(err)
	}
	if ctx.Clock.IOWait() != coldIO {
		t.Errorf("hot run added I/O: %v -> %v", coldIO, ctx.Clock.IOWait())
	}
	hotUser := ctx.Clock.User() - coldUser
	if hotUser <= 0 {
		t.Error("hot run should still burn CPU")
	}

	// Flush: cold again.
	ctx.Buffers.FlushAll()
	if _, err := Run(ctx, ColumnEngine{}, plan); err != nil {
		t.Fatal(err)
	}
	if ctx.Clock.IOWait() != 2*coldIO {
		t.Errorf("flushed run should pay the same I/O again: %v vs %v", ctx.Clock.IOWait(), 2*coldIO)
	}
}

func TestWarmAllAvoidsIO(t *testing.T) {
	db := bigDB(t, 1000)
	ctx := simCtx(db)
	ctx.Buffers.WarmAll([]string{"big"})
	if _, err := Run(ctx, RowEngine{}, Scan("big").Node()); err != nil {
		t.Fatal(err)
	}
	if ctx.Clock.IOWait() != 0 {
		t.Errorf("warmed table should not pay I/O, got %v", ctx.Clock.IOWait())
	}
}

// TestDebugSlowerThanOptimized pins the paper's compiler-flag anecdote:
// the same plan on the same engine is slower under Debug, by a factor
// within the paper's observed range (roughly 1.1x-2.4x).
func TestDebugSlowerThanOptimized(t *testing.T) {
	db := bigDB(t, 20000)
	plan := Scan("big").
		Filter(Gt(Col("val"), Float(30))).
		GroupBy([]string{"grp"}, Sum(Col("val"), "s"), Count("n")).
		OrderBy(SortKey{Col: "s", Desc: true}).Node()

	for _, engine := range engines() {
		times := map[hwsim.BuildMode]time.Duration{}
		for _, mode := range []hwsim.BuildMode{Optimized, Debug} {
			ctx := simCtx(db)
			ctx.Mode = mode
			ctx.Buffers.WarmAll([]string{"big"})
			if _, err := Run(ctx, engine, plan); err != nil {
				t.Fatal(err)
			}
			times[mode] = ctx.Clock.User()
		}
		ratio := float64(times[Debug]) / float64(times[Optimized])
		if ratio < 1.05 || ratio > 2.5 {
			t.Errorf("%s: DBG/OPT ratio = %.2f, want in (1.05, 2.5)", engine.Name(), ratio)
		}
	}
}

const (
	Optimized = hwsim.Optimized
	Debug     = hwsim.Debug
)

// TestProfileShapes pins the paper's profiling figure: the row engine's
// time is dominated by per-tuple interpretation spread across operators,
// while the column engine spends proportionally more of its time in data
// movement (scan/materialization).
func TestProfileShapes(t *testing.T) {
	db := bigDB(t, 20000)
	plan := Scan("big").
		Filter(Gt(Col("val"), Float(10))).
		GroupBy([]string{"grp"}, Sum(Col("val"), "s")).Node()

	profiles := map[string]*Profiler{}
	for _, engine := range engines() {
		ctx := simCtx(db)
		ctx.Buffers.WarmAll([]string{"big"})
		ctx.Profiler = NewProfiler(engine.Name(), ctx.Clock)
		if _, err := Run(ctx, engine, plan); err != nil {
			t.Fatal(err)
		}
		profiles[engine.Name()] = ctx.Profiler
	}
	row := profiles["tuple-at-a-time"]
	col := profiles["column-at-a-time"]
	if row.TotalTime() <= col.TotalTime() {
		t.Errorf("tuple-at-a-time (%v) should be slower than column-at-a-time (%v)",
			row.TotalTime(), col.TotalTime())
	}
	// Rendered profile includes per-operator lines with percentages.
	out := row.String()
	if !strings.Contains(out, "GroupBy") || !strings.Contains(out, "%") {
		t.Errorf("row profile rendering:\n%s", out)
	}
	if len(col.Spans) < 3 {
		t.Errorf("column profile spans = %d", len(col.Spans))
	}
	// Self times per op class are available for figure generation.
	if len(row.SelfTimeByOp()) == 0 || len(col.SelfTimeByOp()) == 0 {
		t.Error("empty self-time breakdowns")
	}
}

func TestEmitResultSinks(t *testing.T) {
	db := bigDB(t, 5000)
	plan := Scan("big").Node() // large result
	var results []*Table
	{
		ctx := simCtx(db)
		ctx.Buffers.WarmAll([]string{"big"})
		res, err := Run(ctx, ColumnEngine{}, plan)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	times := map[hwsim.Sink]time.Duration{}
	for _, sink := range []hwsim.Sink{hwsim.SinkServerFile, hwsim.SinkClientFile, hwsim.SinkClientTerminal} {
		ctx := simCtx(db)
		ctx.Buffers.WarmAll([]string{"big"})
		res, err := Run(ctx, ColumnEngine{}, plan)
		if err != nil {
			t.Fatal(err)
		}
		n := EmitResult(ctx, res, sink)
		if n <= 0 {
			t.Fatal("no output bytes")
		}
		times[sink] = ctx.Clock.Now()
	}
	if !(times[hwsim.SinkServerFile] < times[hwsim.SinkClientFile] &&
		times[hwsim.SinkClientFile] < times[hwsim.SinkClientTerminal]) {
		t.Errorf("sink time ordering violated: %v", times)
	}
}

func TestProfilerNilSafe(t *testing.T) {
	var p *Profiler
	s := p.Begin("x")
	p.End(s, 0)
	p.Record("y", 0, 0, 0, 0)
	if p.TotalTime() != 0 {
		t.Error("nil profiler total should be 0")
	}
	empty := NewProfiler("e", hwsim.NewVirtualClock())
	if empty.String() != "(empty profile)" {
		t.Errorf("empty profile = %q", empty.String())
	}
}

// TestEnginesEquivalentQuick is the central correctness property: for
// arbitrary generated tables and a filter+aggregate query, the two engines
// produce identical results.
func TestEnginesEquivalentQuick(t *testing.T) {
	f := func(ints []int16, threshold int16) bool {
		if len(ints) == 0 {
			return true
		}
		n := len(ints)
		ids := make([]int64, n)
		vals := make([]float64, n)
		grp := make([]string, n)
		for i, v := range ints {
			ids[i] = int64(i)
			vals[i] = float64(v)
			grp[i] = string(rune('a' + (int(v)%3+3)%3))
		}
		tab, err := NewTable("t",
			NewIntColumn("id", ids),
			NewFloatColumn("v", vals),
			NewStringColumn("g", grp))
		if err != nil {
			return false
		}
		db := NewDB()
		if err := db.AddTable(tab); err != nil {
			return false
		}
		plan := Scan("t").
			Filter(Ge(Col("v"), Float(float64(threshold)))).
			GroupBy([]string{"g"}, Sum(Col("v"), "s"), Count("n"), MinOf(Col("id"), "lo")).
			Node()
		r1, err1 := Run(NewContext(db), RowEngine{}, plan)
		r2, err2 := Run(NewContext(db), ColumnEngine{}, plan)
		if err1 != nil || err2 != nil {
			return false
		}
		a, b := r1.SortedRows(), r2.SortedRows()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			for j := range a[i] {
				if !a[i][j].Equal(b[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestSimulatedDeterminism: two identical simulated executions advance the
// clock by exactly the same amount — bit-stable repeatability.
func TestSimulatedDeterminism(t *testing.T) {
	db := bigDB(t, 5000)
	plan := Scan("big").
		Filter(Lt(Col("val"), Float(100))).
		GroupBy([]string{"grp"}, Avg(Col("val"), "a")).Node()
	var times []time.Duration
	for i := 0; i < 2; i++ {
		ctx := simCtx(db)
		if _, err := Run(ctx, RowEngine{}, plan); err != nil {
			t.Fatal(err)
		}
		times = append(times, ctx.Clock.Now())
	}
	if times[0] != times[1] {
		t.Errorf("simulated times differ: %v vs %v", times[0], times[1])
	}
}
