package vdb

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseTableCSV loads a table from C-locale CSV with a header row, the
// format Table.CSV and cmd/dbgen emit. Column types are inferred from the
// data: a column is TInt if every value parses as an integer, else TFloat
// if every value parses as a number, else TString. An empty table (header
// only) is an error, since types cannot be inferred.
func ParseTableCSV(name, text string) (*Table, error) {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	if len(lines) < 1 || strings.TrimSpace(lines[0]) == "" {
		return nil, fmt.Errorf("vdb: table %q: empty CSV", name)
	}
	header := strings.Split(lines[0], ",")
	if len(lines) < 2 {
		return nil, fmt.Errorf("vdb: table %q: no data rows; cannot infer column types", name)
	}
	nCols := len(header)
	cells := make([][]string, 0, len(lines)-1)
	for ln, line := range lines[1:] {
		parts := strings.Split(line, ",")
		if len(parts) != nCols {
			return nil, fmt.Errorf("vdb: table %q line %d: %d fields for %d columns", name, ln+2, len(parts), nCols)
		}
		cells = append(cells, parts)
	}

	cols := make([]*Column, nCols)
	for c := 0; c < nCols; c++ {
		typ := TInt
		for _, row := range cells {
			v := row[c]
			if _, err := strconv.ParseInt(v, 10, 64); err == nil {
				continue
			}
			if _, err := strconv.ParseFloat(v, 64); err == nil {
				if typ == TInt {
					typ = TFloat
				}
				continue
			}
			typ = TString
			break
		}
		col := &Column{Name: header[c], Type: typ}
		for ln, row := range cells {
			switch typ {
			case TInt:
				n, err := strconv.ParseInt(row[c], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("vdb: table %q line %d column %q: %w", name, ln+2, header[c], err)
				}
				col.Ints = append(col.Ints, n)
			case TFloat:
				f, err := strconv.ParseFloat(row[c], 64)
				if err != nil {
					return nil, fmt.Errorf("vdb: table %q line %d column %q: %w", name, ln+2, header[c], err)
				}
				col.Floats = append(col.Floats, f)
			default:
				col.Strs = append(col.Strs, row[c])
			}
		}
		cols[c] = col
	}
	return NewTable(name, cols...)
}

// LoadDBFromCSV builds a catalog from named CSV texts, in the given order.
func LoadDBFromCSV(tables []struct{ Name, CSV string }) (*DB, error) {
	db := NewDB()
	for _, t := range tables {
		tab, err := ParseTableCSV(t.Name, t.CSV)
		if err != nil {
			return nil, err
		}
		if err := db.AddTable(tab); err != nil {
			return nil, err
		}
	}
	return db, nil
}
