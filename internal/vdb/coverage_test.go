package vdb

import (
	"strings"
	"testing"
)

// These tests exercise corners the main suites don't reach: expression
// edge cases, plan-node plumbing, and helper accessors.

func TestExprLeAndAllComparisons(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		pred Expr
		want int
	}{
		{Le(Col("o_id"), Int(2)), 2},
		{Lt(Col("o_id"), Int(2)), 1},
		{Ge(Col("o_id"), Int(4)), 2},
		{Gt(Col("o_id"), Int(4)), 1},
		{Eq(Col("o_id"), Int(3)), 1},
		{Ne(Col("o_id"), Int(3)), 4},
		// String comparisons beyond equality.
		{Lt(Col("o_status"), Str("open")), 2}, // "done" < "open"
		{Ge(Col("o_status"), Str("open")), 3},
		{Le(Col("o_status"), Str("done")), 2},
		{Gt(Col("o_status"), Str("done")), 3},
	}
	for _, c := range cases {
		res := runBoth(t, db, Scan("orders").Filter(c.pred).Node())
		if res.NumRows() != c.want {
			t.Errorf("%s: rows = %d, want %d", c.pred, res.NumRows(), c.want)
		}
	}
}

func TestExprArithmeticVariants(t *testing.T) {
	db := testDB(t)
	// Integer subtraction and division; float subtraction and division.
	plan := Scan("orders").Project([]string{"isub", "idiv", "fsub", "fdiv"},
		Sub(Col("o_id"), Int(1)),
		Div(Col("o_id"), Int(2)),
		Sub(Col("o_total"), Float(50)),
		Div(Col("o_total"), Float(2)),
	).Node()
	res := runBoth(t, db, plan)
	isub, _ := res.Column("isub")
	idiv, _ := res.Column("idiv")
	fsub, _ := res.Column("fsub")
	fdiv, _ := res.Column("fdiv")
	if isub.Ints[0] != 0 || idiv.Ints[4] != 2 {
		t.Errorf("int arith: %v %v", isub.Ints, idiv.Ints)
	}
	if fsub.Floats[0] != 50 || fdiv.Floats[0] != 50 {
		t.Errorf("float arith: %v %v", fsub.Floats, fdiv.Floats)
	}
	// Mixed int/float widen to float.
	mixed := Scan("orders").Project([]string{"m"}, Add(Col("o_id"), Float(0.5))).Node()
	resM := runBoth(t, db, mixed)
	if resM.Cols[0].Type != TFloat || resM.Cols[0].Floats[0] != 1.5 {
		t.Errorf("mixed arith = %v", resM.Cols[0])
	}
}

func TestExprTypeErrors(t *testing.T) {
	db := testDB(t)
	bad := []Node{
		// Arithmetic right operand unknown column.
		Scan("orders").Project([]string{"x"}, Add(Col("o_id"), Col("bogus"))).Node(),
		// Comparison right operand unknown column.
		Scan("orders").Filter(Lt(Col("o_id"), Col("bogus"))).Node(),
		// Boolean with bad right side.
		Scan("orders").Filter(And(Gt(Col("o_id"), Int(0)), Gt(Col("bogus"), Int(0)))).Node(),
		// NOT over bad operand.
		Scan("orders").Filter(Not(Gt(Col("bogus"), Int(0)))).Node(),
		// LIKE over bad operand.
		Scan("orders").Filter(HasPrefix(Col("bogus"), "x")).Node(),
	}
	for i, plan := range bad {
		for _, e := range engines() {
			if _, err := Run(NewContext(db), e, plan); err == nil {
				t.Errorf("case %d (%s): expected error", i, e.Name())
			}
		}
	}
}

func TestPlanNodeChildren(t *testing.T) {
	plan := Scan("t").
		Filter(Gt(Col("a"), Int(0))).
		Project([]string{"a"}, Col("a")).
		Distinct().
		TopN(3, SortKey{Col: "a"}).
		Node()
	// Walk the tree: every node reports its children; leaf is the scan.
	depth := 0
	for n := plan; n != nil; {
		kids := n.Children()
		if len(kids) == 0 {
			if _, ok := n.(*ScanNode); !ok {
				t.Errorf("leaf is %T, want ScanNode", n)
			}
			break
		}
		n = kids[0]
		depth++
	}
	if depth != 4 {
		t.Errorf("depth = %d, want 4", depth)
	}
	// Join has two children.
	j := Scan("a").Join(From(Scan("b").Node()), "x", "y").Node()
	if len(j.Children()) != 2 {
		t.Errorf("join children = %d", len(j.Children()))
	}
}

func TestTableHelpers(t *testing.T) {
	db := testDB(t)
	orders, _ := db.Table("orders")
	if !orders.HasColumn("o_id") || orders.HasColumn("bogus") {
		t.Error("HasColumn")
	}
	if orders.RowWidthBytes() <= 0 {
		t.Error("RowWidthBytes")
	}
	empty := &Table{Name: "empty"}
	if empty.NumRows() != 0 {
		t.Error("empty table rows")
	}
	if Type(9).String() == "" || TInt.String() != "int" || TFloat.String() != "float" || TString.String() != "string" {
		t.Error("type strings")
	}
}

func TestAggResultErrors(t *testing.T) {
	// Min/Max/Avg over empty input error through the accumulator.
	for _, fn := range []AggFunc{AggMin, AggMax, AggAvg} {
		a := newAccumulator(fn, TInt)
		if _, err := a.result(); err == nil {
			t.Errorf("%v over empty input should error", fn)
		}
	}
	bad := &accumulator{fn: AggFunc(99)}
	if _, err := bad.result(); err == nil {
		t.Error("unknown aggregate should error")
	}
	// Sum over float input via float accumulator.
	s := newAccumulator(AggSum, TFloat)
	s.add(FloatVal(1.5))
	s.add(IntVal(2))
	v, err := s.result()
	if err != nil || v.F != 3.5 {
		t.Errorf("float sum = %v, %v", v, err)
	}
}

func TestSelectRowsFloatPredicate(t *testing.T) {
	// A float-typed predicate result (arithmetic used as truthy value)
	// exercises selectRows' float branch in the column engine.
	db := testDB(t)
	plan := Scan("orders").Filter(Sub(Col("o_total"), Float(100))).Node()
	res, err := Run(NewContext(db), ColumnEngine{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Rows where o_total != 100: four of five.
	if res.NumRows() != 4 {
		t.Errorf("rows = %d, want 4", res.NumRows())
	}
}

func TestProfileOpClass(t *testing.T) {
	if opClass("Filter (a > 1)") != "Filter" {
		t.Errorf("opClass = %q", opClass("Filter (a > 1)"))
	}
	if opClass("Distinct") != "Distinct" {
		t.Errorf("opClass = %q", opClass("Distinct"))
	}
}

func TestExplainDistinctTopN(t *testing.T) {
	plan := Scan("t").Distinct().TopN(5, SortKey{Col: "a", Desc: true}).Node()
	out := Explain(plan)
	if !strings.Contains(out, "TopN 5 by a DESC") || !strings.Contains(out, "Distinct") {
		t.Errorf("explain:\n%s", out)
	}
}

func TestRowEngineCloseIsSafe(t *testing.T) {
	// Exercise iterator Close paths by running a plan with every
	// operator type through the row engine.
	db := testDB(t)
	plan := Scan("orders").
		Filter(Gt(Col("o_total"), Float(0))).
		Join(From(Scan("cust").Node()), "o_cust", "c_id").
		Project([]string{"n", "v"}, Col("c_name"), Col("o_total")).
		Distinct().
		GroupBy([]string{"n"}, Sum(Col("v"), "s")).
		OrderBy(SortKey{Col: "s", Desc: true}).
		TopN(2, SortKey{Col: "s", Desc: true}).
		Limit(2).Node()
	res, err := Run(NewContext(db), RowEngine{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Errorf("rows = %d", res.NumRows())
	}
}
