package vdb

import (
	"fmt"

	"repro/internal/hwsim"
)

// ExecContext carries everything an engine needs for one query execution:
// the catalog, and optionally a simulated machine whose costs are charged
// to a virtual clock (nil Machine/Clock disables cost accounting — the
// engines then just compute).
type ExecContext struct {
	DB      *DB
	Machine *hwsim.Machine
	Clock   *hwsim.VirtualClock
	Mode    hwsim.BuildMode
	// Overheads are the Debug-build per-operator-class factors; zero
	// value means hwsim.DefaultDebugOverheads.
	Overheads hwsim.OverheadFactors
	Buffers   *BufferManager
	Profiler  *Profiler
}

// NewContext builds a context with cost accounting disabled.
func NewContext(db *DB) *ExecContext { return &ExecContext{DB: db} }

// NewSimContext builds a context that charges machine costs to clock.
func NewSimContext(db *DB, m *hwsim.Machine, clock *hwsim.VirtualClock) *ExecContext {
	return &ExecContext{
		DB: db, Machine: m, Clock: clock,
		Overheads: hwsim.DefaultDebugOverheads,
		Buffers:   NewBufferManager(),
	}
}

// simulated reports whether cost accounting is active.
func (ctx *ExecContext) simulated() bool { return ctx.Machine != nil && ctx.Clock != nil }

func (ctx *ExecContext) overheads() hwsim.OverheadFactors {
	if ctx.Overheads == (hwsim.OverheadFactors{}) {
		return hwsim.DefaultDebugOverheads
	}
	return ctx.Overheads
}

// chargeCycles charges CPU cycles for op-class work, applying the build
// mode's overhead factor.
func (ctx *ExecContext) chargeCycles(cycles float64, op hwsim.OpClass) {
	if !ctx.simulated() || cycles <= 0 {
		return
	}
	f := ctx.Mode.Factor(ctx.overheads(), op)
	ctx.Clock.AdvanceCPU(cycles * ctx.Machine.CycleNs() * f)
}

// chargeTupleOverhead charges the per-tuple interpretation overhead the
// tuple-at-a-time engine pays in every operator.
func (ctx *ExecContext) chargeTupleOverhead(tuples int, op hwsim.OpClass) {
	if ctx.simulated() && tuples > 0 {
		ctx.chargeCycles(float64(tuples)*ctx.Machine.CyclesPerTupleOverhead, op)
	}
}

// chargeValueWork charges per-value CPU work (tight-loop processing).
func (ctx *ExecContext) chargeValueWork(values int, op hwsim.OpClass) {
	if ctx.simulated() && values > 0 {
		ctx.chargeCycles(float64(values)*ctx.Machine.CyclesPerValue, op)
	}
}

// chargeScanMemory charges the memory-stall component of streaming n values
// of the given width through the CPU (data movement).
func (ctx *ExecContext) chargeScanMemory(n int, widthBytes int) {
	if !ctx.simulated() || n <= 0 {
		return
	}
	c := ctx.Machine.ScanCost(n, widthBytes)
	ctx.Clock.AdvanceCPU(c.MemNs) // memory stalls burn CPU ("user") time
}

// chargeRandomMemory charges n random accesses into a working set (hash
// probes).
func (ctx *ExecContext) chargeRandomMemory(n int, wsBytes int) {
	if !ctx.simulated() || n <= 0 {
		return
	}
	c := ctx.Machine.RandomAccessCost(n, wsBytes)
	ctx.Clock.AdvanceCPU(c.MemNs)
}

// chargeTableLoad charges the disk I/O of faulting a table in when the
// buffer pool is cold; subsequent reads are free until the buffers are
// flushed.
func (ctx *ExecContext) chargeTableLoad(t *Table) {
	if !ctx.simulated() || ctx.Buffers == nil {
		return
	}
	if ctx.Buffers.Resident(t.Name) {
		return
	}
	ctx.Clock.AdvanceIO(ctx.Machine.DiskReadNs(t.ByteSize()))
	ctx.Buffers.MarkResident(t.Name)
}

// Engine executes logical plans.
type Engine interface {
	// Name identifies the engine in profiles and reports.
	Name() string
	// Run executes the plan and returns the materialized result.
	Run(ctx *ExecContext, plan Node) (*Table, error)
}

// Run is a convenience that builds a plan's result table with either
// engine, validating inputs.
func Run(ctx *ExecContext, e Engine, plan Node) (*Table, error) {
	if ctx == nil || ctx.DB == nil {
		return nil, fmt.Errorf("vdb: nil execution context or catalog")
	}
	if plan == nil {
		return nil, fmt.Errorf("vdb: nil plan")
	}
	return e.Run(ctx, plan)
}

// EmitResult charges the output-sink cost for shipping a result's rendered
// CSV to the given sink and returns the byte count — the server/client/
// terminal distinction of the paper's T1.
func EmitResult(ctx *ExecContext, t *Table, sink hwsim.Sink) int64 {
	csv := t.CSV()
	bytes := int64(len(csv))
	if ctx.simulated() {
		cpu, io := ctx.Machine.OutputNs(sink, bytes)
		ctx.Clock.AdvanceCPU(cpu)
		ctx.Clock.AdvanceIO(io)
	}
	return bytes
}
