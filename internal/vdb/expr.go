package vdb

import (
	"fmt"
	"strings"
)

// Expr is a scalar expression over the columns of a row set. Expressions
// are evaluated row-at-a-time by the RowEngine and column-at-a-time by the
// ColumnEngine; both paths share this AST.
type Expr interface {
	// TypeIn infers the expression's result type against a schema.
	TypeIn(s *Schema) (Type, error)
	// String renders the expression in SQL-ish syntax.
	String() string
}

// Schema describes the columns visible to an expression.
type Schema struct {
	Names []string
	Types []Type
}

// SchemaOf extracts a table's schema.
func SchemaOf(t *Table) *Schema {
	s := &Schema{}
	for _, c := range t.Cols {
		s.Names = append(s.Names, c.Name)
		s.Types = append(s.Types, c.Type)
	}
	return s
}

// IndexOf returns the position of the named column, or an error.
func (s *Schema) IndexOf(name string) (int, error) {
	for i, n := range s.Names {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("vdb: unknown column %q (have %s)", name, strings.Join(s.Names, ", "))
}

// ColRef references a column by name.
type ColRef struct{ Name string }

// Col builds a column reference.
func Col(name string) Expr { return ColRef{Name: name} }

// TypeIn implements Expr.
func (c ColRef) TypeIn(s *Schema) (Type, error) {
	i, err := s.IndexOf(c.Name)
	if err != nil {
		return 0, err
	}
	return s.Types[i], nil
}

func (c ColRef) String() string { return c.Name }

// ConstExpr is a literal.
type ConstExpr struct{ Val Value }

// Int builds an integer literal.
func Int(i int64) Expr { return ConstExpr{Val: IntVal(i)} }

// Float builds a float literal.
func Float(f float64) Expr { return ConstExpr{Val: FloatVal(f)} }

// Str builds a string literal.
func Str(s string) Expr { return ConstExpr{Val: StrVal(s)} }

// TypeIn implements Expr.
func (c ConstExpr) TypeIn(*Schema) (Type, error) { return c.Val.Typ, nil }

func (c ConstExpr) String() string {
	if c.Val.Typ == TString {
		return "'" + c.Val.S + "'"
	}
	return c.Val.String()
}

// ArithOp is an arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (o ArithOp) String() string { return [...]string{"+", "-", "*", "/"}[o] }

// ArithExpr applies an arithmetic operator to two numeric expressions.
// Int op Int yields Int (integer division truncates); anything involving a
// float yields Float.
type ArithExpr struct {
	Op   ArithOp
	L, R Expr
}

// Add builds l + r.
func Add(l, r Expr) Expr { return ArithExpr{Op: OpAdd, L: l, R: r} }

// Sub builds l - r.
func Sub(l, r Expr) Expr { return ArithExpr{Op: OpSub, L: l, R: r} }

// Mul builds l * r.
func Mul(l, r Expr) Expr { return ArithExpr{Op: OpMul, L: l, R: r} }

// Div builds l / r.
func Div(l, r Expr) Expr { return ArithExpr{Op: OpDiv, L: l, R: r} }

// TypeIn implements Expr.
func (e ArithExpr) TypeIn(s *Schema) (Type, error) {
	lt, err := e.L.TypeIn(s)
	if err != nil {
		return 0, err
	}
	rt, err := e.R.TypeIn(s)
	if err != nil {
		return 0, err
	}
	if lt == TString || rt == TString {
		return 0, fmt.Errorf("vdb: arithmetic on string in %s", e)
	}
	if lt == TInt && rt == TInt {
		return TInt, nil
	}
	return TFloat, nil
}

func (e ArithExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (o CmpOp) String() string { return [...]string{"=", "<>", "<", "<=", ">", ">="}[o] }

// CmpExpr compares two expressions; its result type is TInt (0/1).
type CmpExpr struct {
	Op   CmpOp
	L, R Expr
}

// Eq builds l = r.
func Eq(l, r Expr) Expr { return CmpExpr{Op: CmpEQ, L: l, R: r} }

// Ne builds l <> r.
func Ne(l, r Expr) Expr { return CmpExpr{Op: CmpNE, L: l, R: r} }

// Lt builds l < r.
func Lt(l, r Expr) Expr { return CmpExpr{Op: CmpLT, L: l, R: r} }

// Le builds l <= r.
func Le(l, r Expr) Expr { return CmpExpr{Op: CmpLE, L: l, R: r} }

// Gt builds l > r.
func Gt(l, r Expr) Expr { return CmpExpr{Op: CmpGT, L: l, R: r} }

// Ge builds l >= r.
func Ge(l, r Expr) Expr { return CmpExpr{Op: CmpGE, L: l, R: r} }

// TypeIn implements Expr.
func (e CmpExpr) TypeIn(s *Schema) (Type, error) {
	lt, err := e.L.TypeIn(s)
	if err != nil {
		return 0, err
	}
	rt, err := e.R.TypeIn(s)
	if err != nil {
		return 0, err
	}
	if (lt == TString) != (rt == TString) {
		return 0, fmt.Errorf("vdb: comparing string with numeric in %s", e)
	}
	return TInt, nil
}

func (e CmpExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// BoolOp is a boolean connective.
type BoolOp int

// Boolean connectives.
const (
	BoolAnd BoolOp = iota
	BoolOr
	BoolNot
)

func (o BoolOp) String() string { return [...]string{"AND", "OR", "NOT"}[o] }

// BoolExpr combines predicates; operands are treated as 0/1 ints.
type BoolExpr struct {
	Op   BoolOp
	L, R Expr // R is nil for NOT
}

// And builds l AND r.
func And(l, r Expr) Expr { return BoolExpr{Op: BoolAnd, L: l, R: r} }

// Or builds l OR r.
func Or(l, r Expr) Expr { return BoolExpr{Op: BoolOr, L: l, R: r} }

// Not builds NOT l.
func Not(l Expr) Expr { return BoolExpr{Op: BoolNot, L: l} }

// TypeIn implements Expr.
func (e BoolExpr) TypeIn(s *Schema) (Type, error) {
	if _, err := e.L.TypeIn(s); err != nil {
		return 0, err
	}
	if e.R != nil {
		if _, err := e.R.TypeIn(s); err != nil {
			return 0, err
		}
	}
	return TInt, nil
}

func (e BoolExpr) String() string {
	if e.Op == BoolNot {
		return fmt.Sprintf("(NOT %s)", e.L)
	}
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// LikeKind is the supported LIKE pattern family.
type LikeKind int

// LIKE pattern kinds.
const (
	LikePrefix   LikeKind = iota // LIKE 'abc%'
	LikeContains                 // LIKE '%abc%'
	LikeSuffix                   // LIKE '%abc'
)

// LikeExpr matches a string expression against a simple pattern.
type LikeExpr struct {
	Kind    LikeKind
	Operand Expr
	Pattern string
	Negate  bool
}

// HasPrefix builds operand LIKE 'pat%'.
func HasPrefix(operand Expr, pat string) Expr {
	return LikeExpr{Kind: LikePrefix, Operand: operand, Pattern: pat}
}

// Contains builds operand LIKE '%pat%'.
func Contains(operand Expr, pat string) Expr {
	return LikeExpr{Kind: LikeContains, Operand: operand, Pattern: pat}
}

// NotContains builds operand NOT LIKE '%pat%'.
func NotContains(operand Expr, pat string) Expr {
	return LikeExpr{Kind: LikeContains, Operand: operand, Pattern: pat, Negate: true}
}

// HasSuffix builds operand LIKE '%pat'.
func HasSuffix(operand Expr, pat string) Expr {
	return LikeExpr{Kind: LikeSuffix, Operand: operand, Pattern: pat}
}

// TypeIn implements Expr.
func (e LikeExpr) TypeIn(s *Schema) (Type, error) {
	t, err := e.Operand.TypeIn(s)
	if err != nil {
		return 0, err
	}
	if t != TString {
		return 0, fmt.Errorf("vdb: LIKE on non-string in %s", e)
	}
	return TInt, nil
}

func (e LikeExpr) String() string {
	var pat string
	switch e.Kind {
	case LikePrefix:
		pat = e.Pattern + "%"
	case LikeContains:
		pat = "%" + e.Pattern + "%"
	default:
		pat = "%" + e.Pattern
	}
	op := "LIKE"
	if e.Negate {
		op = "NOT LIKE"
	}
	return fmt.Sprintf("(%s %s '%s')", e.Operand, op, pat)
}

func (e LikeExpr) match(s string) bool {
	var ok bool
	switch e.Kind {
	case LikePrefix:
		ok = strings.HasPrefix(s, e.Pattern)
	case LikeContains:
		ok = strings.Contains(s, e.Pattern)
	default:
		ok = strings.HasSuffix(s, e.Pattern)
	}
	return ok != e.Negate
}

// EvalRow evaluates an expression against one row of a schema-described
// row set — the tuple-at-a-time path.
func EvalRow(e Expr, s *Schema, row []Value) (Value, error) {
	switch ex := e.(type) {
	case ColRef:
		i, err := s.IndexOf(ex.Name)
		if err != nil {
			return Value{}, err
		}
		return row[i], nil
	case ConstExpr:
		return ex.Val, nil
	case ArithExpr:
		l, err := EvalRow(ex.L, s, row)
		if err != nil {
			return Value{}, err
		}
		r, err := EvalRow(ex.R, s, row)
		if err != nil {
			return Value{}, err
		}
		return evalArith(ex.Op, l, r)
	case CmpExpr:
		l, err := EvalRow(ex.L, s, row)
		if err != nil {
			return Value{}, err
		}
		r, err := EvalRow(ex.R, s, row)
		if err != nil {
			return Value{}, err
		}
		return boolVal(evalCmp(ex.Op, l, r)), nil
	case BoolExpr:
		l, err := EvalRow(ex.L, s, row)
		if err != nil {
			return Value{}, err
		}
		if ex.Op == BoolNot {
			return boolVal(!truthy(l)), nil
		}
		r, err := EvalRow(ex.R, s, row)
		if err != nil {
			return Value{}, err
		}
		if ex.Op == BoolAnd {
			return boolVal(truthy(l) && truthy(r)), nil
		}
		return boolVal(truthy(l) || truthy(r)), nil
	case LikeExpr:
		v, err := EvalRow(ex.Operand, s, row)
		if err != nil {
			return Value{}, err
		}
		return boolVal(ex.match(v.S)), nil
	default:
		return Value{}, fmt.Errorf("vdb: unknown expression %T", e)
	}
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

func truthy(v Value) bool { return v.AsFloat() != 0 }

func evalArith(op ArithOp, l, r Value) (Value, error) {
	if l.Typ == TString || r.Typ == TString {
		return Value{}, fmt.Errorf("vdb: arithmetic on string value")
	}
	if l.Typ == TInt && r.Typ == TInt {
		switch op {
		case OpAdd:
			return IntVal(l.I + r.I), nil
		case OpSub:
			return IntVal(l.I - r.I), nil
		case OpMul:
			return IntVal(l.I * r.I), nil
		default:
			if r.I == 0 {
				return Value{}, fmt.Errorf("vdb: integer division by zero")
			}
			return IntVal(l.I / r.I), nil
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return FloatVal(lf + rf), nil
	case OpSub:
		return FloatVal(lf - rf), nil
	case OpMul:
		return FloatVal(lf * rf), nil
	default:
		if rf == 0 {
			return Value{}, fmt.Errorf("vdb: division by zero")
		}
		return FloatVal(lf / rf), nil
	}
}

func evalCmp(op CmpOp, l, r Value) bool {
	var lt, eq bool
	if l.Typ == TString && r.Typ == TString {
		lt, eq = l.S < r.S, l.S == r.S
	} else {
		lf, rf := l.AsFloat(), r.AsFloat()
		lt, eq = lf < rf, lf == rf
	}
	switch op {
	case CmpEQ:
		return eq
	case CmpNE:
		return !eq
	case CmpLT:
		return lt
	case CmpLE:
		return lt || eq
	case CmpGT:
		return !lt && !eq
	default: // CmpGE
		return !lt
	}
}
