package vdb

import (
	"fmt"
	"strings"
	"time"
)

// Profiler collects a per-operator execution profile: rows produced and
// simulated time attributed to each plan operator. Its rendered output is
// the PROFILE/TRACE view the paper recommends over guessing ("Find out
// what happens!"), and drives the reproduction of the paper's MySQL-vs-
// MonetDB profile figure.
type Profiler struct {
	Engine string
	Spans  []*Span
	stack  []*Span
	clock  interface{ Now() time.Duration }
}

// Span is one operator's profile entry.
type Span struct {
	Op       string
	Depth    int
	RowsOut  int
	Self     time.Duration // time in this operator excluding children
	Total    time.Duration // time including children
	children time.Duration
	start    time.Duration
}

// NewProfiler profiles against the given clock (usually the execution's
// VirtualClock).
func NewProfiler(engine string, clock interface{ Now() time.Duration }) *Profiler {
	return &Profiler{Engine: engine, clock: clock}
}

// Begin opens a span for an operator; pair with End.
func (p *Profiler) Begin(op string) *Span {
	if p == nil {
		return nil
	}
	s := &Span{Op: op, Depth: len(p.stack), start: p.clock.Now()}
	p.Spans = append(p.Spans, s)
	p.stack = append(p.stack, s)
	return s
}

// End closes the span, attributing elapsed time minus child time to Self.
func (p *Profiler) End(s *Span, rowsOut int) {
	if p == nil || s == nil {
		return
	}
	s.Total = p.clock.Now() - s.start
	s.Self = s.Total - s.children
	s.RowsOut = rowsOut
	// Pop (the span must be the top of the stack in well-formed usage).
	if len(p.stack) > 0 && p.stack[len(p.stack)-1] == s {
		p.stack = p.stack[:len(p.stack)-1]
	}
	if len(p.stack) > 0 {
		p.stack[len(p.stack)-1].children += s.Total
	}
}

// Record appends a pre-measured span (used by the tuple-at-a-time engine,
// whose operator times interleave and are accounted per-operator rather
// than by nesting).
func (p *Profiler) Record(op string, depth, rowsOut int, self, total time.Duration) {
	if p == nil {
		return
	}
	p.Spans = append(p.Spans, &Span{Op: op, Depth: depth, RowsOut: rowsOut, Self: self, Total: total})
}

// TotalTime returns the root span's total, or zero if nothing was profiled.
func (p *Profiler) TotalTime() time.Duration {
	if p == nil || len(p.Spans) == 0 {
		return 0
	}
	return p.Spans[0].Total
}

// SelfTimeByOp aggregates self time per operator name.
func (p *Profiler) SelfTimeByOp() map[string]time.Duration {
	out := make(map[string]time.Duration)
	for _, s := range p.Spans {
		out[opClass(s.Op)] += s.Self
	}
	return out
}

// opClass strips operator details, keeping the leading word ("Filter",
// "Scan", ...).
func opClass(op string) string {
	if i := strings.IndexByte(op, ' '); i > 0 {
		return op[:i]
	}
	return op
}

// String renders the profile as an indented operator tree with self time,
// percentage of total, and output rows — the paper's TRACE shape.
func (p *Profiler) String() string {
	if p == nil || len(p.Spans) == 0 {
		return "(empty profile)"
	}
	total := p.TotalTime()
	var b strings.Builder
	fmt.Fprintf(&b, "profile (%s): total %v\n", p.Engine, total)
	for _, s := range p.Spans {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(s.Self) / float64(total)
		}
		fmt.Fprintf(&b, "%s%-40s self=%-12v %5.1f%%  rows=%d\n",
			strings.Repeat("  ", s.Depth), s.Op, s.Self, pct, s.RowsOut)
	}
	return b.String()
}
