// Package vdb is a small in-memory DBMS built as the substrate for the
// paper's database experiments. It provides typed columnar storage, a
// logical plan DSL, and two executors with deliberately contrasting
// execution models:
//
//   - RowEngine: a Volcano-style tuple-at-a-time interpreter (the paper's
//     MySQL profile shape: time goes into per-tuple interpretation);
//   - ColumnEngine: a column-at-a-time materializing executor (the paper's
//     MonetDB/MIL profile shape: time goes into data movement).
//
// Both engines do real computation over real slices and must produce
// identical results — a property the test suite checks extensively. When an
// execution context carries a hwsim machine and virtual clock, the engines
// additionally charge modeled hardware costs, which is what makes the
// paper's timing tables reproducible deterministically.
package vdb

import (
	"fmt"
	"strconv"
)

// Type is a column type.
type Type int

const (
	// TInt is a 64-bit integer (also used for dates, as days since
	// 1970-01-01).
	TInt Type = iota
	// TFloat is a 64-bit float.
	TFloat
	// TString is a variable-length string.
	TString
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TString:
		return "string"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single typed value, used by the tuple-at-a-time engine.
type Value struct {
	Typ Type
	I   int64
	F   float64
	S   string
}

// IntVal builds an integer value.
func IntVal(i int64) Value { return Value{Typ: TInt, I: i} }

// FloatVal builds a float value.
func FloatVal(f float64) Value { return Value{Typ: TFloat, F: f} }

// StrVal builds a string value.
func StrVal(s string) Value { return Value{Typ: TString, S: s} }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() float64 {
	if v.Typ == TInt {
		return float64(v.I)
	}
	return v.F
}

// String renders the value in C-locale formatting (the paper's T9 warns
// what locale-dependent rendering does to copy-pasted results).
func (v Value) String() string {
	switch v.Typ {
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return v.S
	}
}

// Equal compares two values for semantic equality (ints and floats compare
// numerically across types).
func (v Value) Equal(o Value) bool {
	if v.Typ == TString || o.Typ == TString {
		return v.Typ == o.Typ && v.S == o.S
	}
	return v.AsFloat() == o.AsFloat()
}

// Less orders two values of the same kind (numeric or string).
func (v Value) Less(o Value) bool {
	if v.Typ == TString && o.Typ == TString {
		return v.S < o.S
	}
	return v.AsFloat() < o.AsFloat()
}

// Column is a typed column vector. Exactly one of the backing slices is
// populated, per Type.
type Column struct {
	Name string
	Type Type

	Ints   []int64
	Floats []float64
	Strs   []string
}

// NewIntColumn builds an int column.
func NewIntColumn(name string, vals []int64) *Column {
	return &Column{Name: name, Type: TInt, Ints: vals}
}

// NewFloatColumn builds a float column.
func NewFloatColumn(name string, vals []float64) *Column {
	return &Column{Name: name, Type: TFloat, Floats: vals}
}

// NewStringColumn builds a string column.
func NewStringColumn(name string, vals []string) *Column {
	return &Column{Name: name, Type: TString, Strs: vals}
}

// Len returns the number of values.
func (c *Column) Len() int {
	switch c.Type {
	case TInt:
		return len(c.Ints)
	case TFloat:
		return len(c.Floats)
	default:
		return len(c.Strs)
	}
}

// Value returns the i-th value boxed.
func (c *Column) Value(i int) Value {
	switch c.Type {
	case TInt:
		return IntVal(c.Ints[i])
	case TFloat:
		return FloatVal(c.Floats[i])
	default:
		return StrVal(c.Strs[i])
	}
}

// Append adds a boxed value; the value's type must match the column's.
func (c *Column) Append(v Value) error {
	if v.Typ != c.Type {
		// Permit int -> float widening for aggregate outputs.
		if c.Type == TFloat && v.Typ == TInt {
			c.Floats = append(c.Floats, float64(v.I))
			return nil
		}
		return fmt.Errorf("vdb: cannot append %s value to %s column %q", v.Typ, c.Type, c.Name)
	}
	switch c.Type {
	case TInt:
		c.Ints = append(c.Ints, v.I)
	case TFloat:
		c.Floats = append(c.Floats, v.F)
	default:
		c.Strs = append(c.Strs, v.S)
	}
	return nil
}

// Gather builds a new column containing the values at the given row
// indices, in order.
func (c *Column) Gather(idx []int) *Column {
	out := &Column{Name: c.Name, Type: c.Type}
	switch c.Type {
	case TInt:
		out.Ints = make([]int64, len(idx))
		for i, j := range idx {
			out.Ints[i] = c.Ints[j]
		}
	case TFloat:
		out.Floats = make([]float64, len(idx))
		for i, j := range idx {
			out.Floats[i] = c.Floats[j]
		}
	default:
		out.Strs = make([]string, len(idx))
		for i, j := range idx {
			out.Strs[i] = c.Strs[j]
		}
	}
	return out
}

// WidthBytes estimates the in-memory width of one value, for the hardware
// cost model: 8 bytes for numerics, 16 + average length for strings.
func (c *Column) WidthBytes() int {
	if c.Type != TString {
		return 8
	}
	n := len(c.Strs)
	if n == 0 {
		return 16
	}
	total := 0
	for _, s := range c.Strs {
		total += len(s)
	}
	return 16 + total/n
}
