package vdb

import (
	"fmt"
	"strings"
)

// accumulator implements one aggregate function instance for one group.
// Both engines share it so their aggregate semantics cannot drift apart.
type accumulator struct {
	fn       AggFunc
	count    int64
	sumI     int64
	sumF     float64
	isInt    bool
	best     Value // current min/max
	hasBest  bool
	distinct map[string]struct{}
}

func newAccumulator(fn AggFunc, inputType Type) *accumulator {
	a := &accumulator{fn: fn, isInt: inputType == TInt}
	if fn == AggCountDistinct {
		a.distinct = make(map[string]struct{})
	}
	return a
}

// add folds one input value in. For AggCount with no expression, call
// addCount instead.
func (a *accumulator) add(v Value) {
	switch a.fn {
	case AggCount:
		a.count++
	case AggCountDistinct:
		a.distinct[v.String()] = struct{}{}
	case AggSum, AggAvg:
		a.count++
		if a.isInt && v.Typ == TInt {
			a.sumI += v.I
		} else {
			a.sumF += v.AsFloat()
		}
	case AggMin:
		if !a.hasBest || v.Less(a.best) {
			a.best = v
			a.hasBest = true
		}
	case AggMax:
		if !a.hasBest || a.best.Less(v) {
			a.best = v
			a.hasBest = true
		}
	}
}

// addCount counts a row for COUNT(*).
func (a *accumulator) addCount() { a.count++ }

// result extracts the aggregate value. Min/Max over an empty group and
// Avg over an empty group return an error (SQL would return NULL; vdb has
// no NULLs, and empty groups cannot arise from grouped aggregation anyway).
func (a *accumulator) result() (Value, error) {
	switch a.fn {
	case AggCount:
		return IntVal(a.count), nil
	case AggCountDistinct:
		return IntVal(int64(len(a.distinct))), nil
	case AggSum:
		if a.isInt {
			return IntVal(a.sumI), nil
		}
		return FloatVal(a.sumF), nil
	case AggAvg:
		if a.count == 0 {
			return Value{}, fmt.Errorf("vdb: avg over empty input")
		}
		total := a.sumF
		if a.isInt {
			total = float64(a.sumI)
		}
		return FloatVal(total / float64(a.count)), nil
	case AggMin, AggMax:
		if !a.hasBest {
			return Value{}, fmt.Errorf("vdb: %s over empty input", a.fn)
		}
		return a.best, nil
	default:
		return Value{}, fmt.Errorf("vdb: unknown aggregate %v", a.fn)
	}
}

// groupKey renders group-by values into a map key.
func groupKey(vals []Value) string {
	if len(vals) == 0 {
		return ""
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, "\x00")
}

// group holds the accumulators and group-by values of one group.
type group struct {
	keys []Value
	accs []*accumulator
}

// groupSet manages groups in first-seen order (deterministic output).
type groupSet struct {
	specs   []AggSpec
	inTypes []Type // aggregate input types (TInt for COUNT(*))
	byKey   map[string]*group
	order   []*group
	global  bool // ungrouped aggregation: always exactly one group
}

func newGroupSet(node *AggNode, child *Schema) (*groupSet, error) {
	gs := &groupSet{
		specs:  node.Aggs,
		byKey:  make(map[string]*group),
		global: len(node.GroupBy) == 0,
	}
	for _, a := range node.Aggs {
		t := TInt
		if a.Expr != nil {
			var err error
			t, err = a.Expr.TypeIn(child)
			if err != nil {
				return nil, err
			}
		}
		gs.inTypes = append(gs.inTypes, t)
	}
	if gs.global {
		gs.getOrCreate(nil)
	}
	return gs, nil
}

func (gs *groupSet) getOrCreate(keys []Value) *group {
	k := groupKey(keys)
	if g, ok := gs.byKey[k]; ok {
		return g
	}
	g := &group{keys: append([]Value(nil), keys...)}
	for i, spec := range gs.specs {
		g.accs = append(g.accs, newAccumulator(spec.Func, gs.inTypes[i]))
	}
	gs.byKey[k] = g
	gs.order = append(gs.order, g)
	return g
}

// emit materializes the group results into an output table with the given
// schema.
func (gs *groupSet) emit(schema *Schema, name string) (*Table, error) {
	cols := make([]*Column, len(schema.Names))
	for i := range cols {
		cols[i] = &Column{Name: schema.Names[i], Type: schema.Types[i]}
	}
	nGroupCols := len(schema.Names) - len(gs.specs)
	for _, g := range gs.order {
		for i, v := range g.keys {
			if err := cols[i].Append(v); err != nil {
				return nil, err
			}
		}
		for i, acc := range g.accs {
			v, err := acc.result()
			if err != nil {
				return nil, err
			}
			if err := cols[nGroupCols+i].Append(v); err != nil {
				return nil, err
			}
		}
	}
	return NewTable(name, cols...)
}
