package vdb

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/hwsim"
)

// RowEngine executes plans with Volcano-style tuple-at-a-time iterators,
// the classical interpreter model (the paper's MySQL profile shape): every
// operator pays per-tuple interpretation overhead on every tuple, which the
// simulated cost model charges as CyclesPerTupleOverhead per operator per
// row. That overhead — absent from the column engine — dominates its
// profiles, reproducing the left half of the paper's profiling figure.
type RowEngine struct{}

// Name implements Engine.
func (RowEngine) Name() string { return "tuple-at-a-time" }

// Run implements Engine.
func (RowEngine) Run(ctx *ExecContext, plan Node) (*Table, error) {
	schema, err := OutputSchema(ctx.DB, plan)
	if err != nil {
		return nil, err
	}
	start := ctxNow(ctx)
	it, err := buildIter(ctx, plan)
	if err != nil {
		return nil, err
	}
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()

	cols := make([]*Column, len(schema.Names))
	for i := range cols {
		cols[i] = &Column{Name: schema.Names[i], Type: schema.Types[i]}
	}
	for {
		row, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		for i, v := range row {
			if err := cols[i].Append(v); err != nil {
				return nil, err
			}
		}
	}
	recordIterProfile(ctx, it, 0, ctxNow(ctx)-start)
	return NewTable("result", cols...)
}

func ctxNow(ctx *ExecContext) time.Duration {
	if ctx.Clock != nil {
		return ctx.Clock.Now()
	}
	return 0
}

// opStats accumulates a tuple-at-a-time operator's own simulated cost.
type opStats struct {
	op   string
	rows int
	self time.Duration
}

// rowIter is the Volcano iterator interface.
type rowIter interface {
	Open() error
	Next() ([]Value, bool, error)
	Close()
	stats() *opStats
	children() []rowIter
}

// recordIterProfile walks the iterator tree in plan order, recording each
// operator's stats; the root carries the whole execution's total time.
func recordIterProfile(ctx *ExecContext, it rowIter, depth int, rootTotal time.Duration) {
	st := it.stats()
	total := st.self
	if depth == 0 {
		total = rootTotal
	}
	ctx.Profiler.Record(st.op, depth, st.rows, st.self, total)
	for _, c := range it.children() {
		recordIterProfile(ctx, c, depth+1, 0)
	}
}

// charge runs fn and attributes the simulated time it advances to st.self.
func charge(ctx *ExecContext, st *opStats, fn func()) {
	t0 := ctxNow(ctx)
	fn()
	st.self += ctxNow(ctx) - t0
}

func buildIter(ctx *ExecContext, n Node) (rowIter, error) {
	switch node := n.(type) {
	case *ScanNode:
		t, err := ctx.DB.Table(node.Table)
		if err != nil {
			return nil, err
		}
		cols := t.Cols
		if len(node.Cols) > 0 {
			cols = make([]*Column, 0, len(node.Cols))
			for _, name := range node.Cols {
				c, err := t.Column(name)
				if err != nil {
					return nil, err
				}
				cols = append(cols, c)
			}
		}
		return &scanIter{ctx: ctx, table: t, cols: cols, st: opStats{op: node.Describe()}}, nil

	case *FilterNode:
		child, err := buildIter(ctx, node.Child)
		if err != nil {
			return nil, err
		}
		schema, err := OutputSchema(ctx.DB, node.Child)
		if err != nil {
			return nil, err
		}
		return &filterIter{ctx: ctx, child: child, schema: schema, pred: node.Pred,
			nodes: exprNodes(node.Pred), st: opStats{op: node.Describe()}}, nil

	case *ProjectNode:
		child, err := buildIter(ctx, node.Child)
		if err != nil {
			return nil, err
		}
		schema, err := OutputSchema(ctx.DB, node.Child)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, e := range node.Exprs {
			total += exprNodes(e)
		}
		return &projectIter{ctx: ctx, child: child, schema: schema, exprs: node.Exprs,
			nodes: total, st: opStats{op: node.Describe()}}, nil

	case *JoinNode:
		left, err := buildIter(ctx, node.Left)
		if err != nil {
			return nil, err
		}
		right, err := buildIter(ctx, node.Right)
		if err != nil {
			return nil, err
		}
		ls, err := OutputSchema(ctx.DB, node.Left)
		if err != nil {
			return nil, err
		}
		rs, err := OutputSchema(ctx.DB, node.Right)
		if err != nil {
			return nil, err
		}
		li, err := ls.IndexOf(node.LeftKey)
		if err != nil {
			return nil, err
		}
		ri, err := rs.IndexOf(node.RightKey)
		if err != nil {
			return nil, err
		}
		return &joinIter{ctx: ctx, left: left, right: right, leftIdx: li, rightIdx: ri,
			st: opStats{op: node.Describe()}}, nil

	case *AggNode:
		child, err := buildIter(ctx, node.Child)
		if err != nil {
			return nil, err
		}
		schema, err := OutputSchema(ctx.DB, node.Child)
		if err != nil {
			return nil, err
		}
		out, err := OutputSchema(ctx.DB, node)
		if err != nil {
			return nil, err
		}
		return &aggIter{ctx: ctx, child: child, node: node, childSchema: schema,
			outSchema: out, st: opStats{op: node.Describe()}}, nil

	case *SortNode:
		child, err := buildIter(ctx, node.Child)
		if err != nil {
			return nil, err
		}
		schema, err := OutputSchema(ctx.DB, node.Child)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(node.Keys))
		for i, k := range node.Keys {
			idx[i], err = schema.IndexOf(k.Col)
			if err != nil {
				return nil, err
			}
		}
		return &sortIter{ctx: ctx, child: child, keys: node.Keys, keyIdx: idx,
			st: opStats{op: node.Describe()}}, nil

	case *LimitNode:
		child, err := buildIter(ctx, node.Child)
		if err != nil {
			return nil, err
		}
		return &limitIter{ctx: ctx, child: child, n: node.N, st: opStats{op: node.Describe()}}, nil

	case *DistinctNode:
		child, err := buildIter(ctx, node.Child)
		if err != nil {
			return nil, err
		}
		return &distinctIter{ctx: ctx, child: child, st: opStats{op: node.Describe()}}, nil

	case *TopNNode:
		child, err := buildIter(ctx, node.Child)
		if err != nil {
			return nil, err
		}
		schema, err := OutputSchema(ctx.DB, node.Child)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(node.Keys))
		for i, k := range node.Keys {
			idx[i], err = schema.IndexOf(k.Col)
			if err != nil {
				return nil, err
			}
		}
		return &topNIter{ctx: ctx, child: child, keys: node.Keys, keyIdx: idx, n: node.N,
			st: opStats{op: node.Describe()}}, nil

	default:
		return nil, fmt.Errorf("vdb: row engine: unknown node %T", n)
	}
}

// --- scan ---

type scanIter struct {
	ctx   *ExecContext
	table *Table
	cols  []*Column
	idx   int
	st    opStats
}

func (it *scanIter) Open() error {
	charge(it.ctx, &it.st, func() { it.ctx.chargeTableLoad(it.table) })
	it.idx = 0
	return nil
}

func (it *scanIter) Next() ([]Value, bool, error) {
	if it.idx >= it.table.NumRows() {
		return nil, false, nil
	}
	var row []Value
	charge(it.ctx, &it.st, func() {
		it.ctx.chargeTupleOverhead(1, hwsim.OpScan)
		it.ctx.chargeValueWork(len(it.cols), hwsim.OpScan)
		row = make([]Value, len(it.cols))
		w := 0
		for i, c := range it.cols {
			row[i] = c.Value(it.idx)
			w += c.WidthBytes()
		}
		it.ctx.chargeScanMemory(1, w)
	})
	it.idx++
	it.st.rows++
	return row, true, nil
}

func (it *scanIter) Close()              {}
func (it *scanIter) stats() *opStats     { return &it.st }
func (it *scanIter) children() []rowIter { return nil }

// --- filter ---

type filterIter struct {
	ctx    *ExecContext
	child  rowIter
	schema *Schema
	pred   Expr
	nodes  int
	st     opStats
}

func (it *filterIter) Open() error { return it.child.Open() }

func (it *filterIter) Next() ([]Value, bool, error) {
	for {
		row, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		var v Value
		var evalErr error
		charge(it.ctx, &it.st, func() {
			it.ctx.chargeTupleOverhead(1, hwsim.OpFilter)
			it.ctx.chargeValueWork(it.nodes, hwsim.OpFilter)
			v, evalErr = EvalRow(it.pred, it.schema, row)
		})
		if evalErr != nil {
			return nil, false, evalErr
		}
		if truthy(v) {
			it.st.rows++
			return row, true, nil
		}
	}
}

func (it *filterIter) Close()              { it.child.Close() }
func (it *filterIter) stats() *opStats     { return &it.st }
func (it *filterIter) children() []rowIter { return []rowIter{it.child} }

// --- project ---

type projectIter struct {
	ctx    *ExecContext
	child  rowIter
	schema *Schema
	exprs  []Expr
	nodes  int
	st     opStats
}

func (it *projectIter) Open() error { return it.child.Open() }

func (it *projectIter) Next() ([]Value, bool, error) {
	row, ok, err := it.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	out := make([]Value, len(it.exprs))
	var evalErr error
	charge(it.ctx, &it.st, func() {
		it.ctx.chargeTupleOverhead(1, hwsim.OpProject)
		it.ctx.chargeValueWork(it.nodes, hwsim.OpProject)
		for i, e := range it.exprs {
			out[i], evalErr = EvalRow(e, it.schema, row)
			if evalErr != nil {
				return
			}
		}
	})
	if evalErr != nil {
		return nil, false, evalErr
	}
	it.st.rows++
	return out, true, nil
}

func (it *projectIter) Close()              { it.child.Close() }
func (it *projectIter) stats() *opStats     { return &it.st }
func (it *projectIter) children() []rowIter { return []rowIter{it.child} }

// --- hash join ---

type joinIter struct {
	ctx               *ExecContext
	left, right       rowIter
	leftIdx, rightIdx int
	build             map[string][][]Value
	buildBytes        int
	current           []Value   // current left row
	matches           [][]Value // remaining matches for current
	st                opStats
}

func (it *joinIter) Open() error {
	if err := it.right.Open(); err != nil {
		return err
	}
	it.build = make(map[string][][]Value)
	for {
		row, ok, err := it.right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		charge(it.ctx, &it.st, func() {
			it.ctx.chargeTupleOverhead(1, hwsim.OpJoin)
			key := row[it.rightIdx].String()
			it.build[key] = append(it.build[key], row)
			it.buildBytes += 16 * len(row)
			it.ctx.chargeRandomMemory(1, it.buildBytes)
		})
	}
	return it.left.Open()
}

func (it *joinIter) Next() ([]Value, bool, error) {
	for {
		if len(it.matches) > 0 {
			right := it.matches[0]
			it.matches = it.matches[1:]
			var out []Value
			charge(it.ctx, &it.st, func() {
				it.ctx.chargeTupleOverhead(1, hwsim.OpJoin)
				out = make([]Value, 0, len(it.current)+len(right))
				out = append(out, it.current...)
				out = append(out, right...)
			})
			it.st.rows++
			return out, true, nil
		}
		row, ok, err := it.left.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		charge(it.ctx, &it.st, func() {
			it.ctx.chargeTupleOverhead(1, hwsim.OpJoin)
			it.ctx.chargeRandomMemory(1, it.buildBytes)
			it.current = row
			it.matches = it.build[row[it.leftIdx].String()]
		})
	}
}

func (it *joinIter) Close()              { it.left.Close(); it.right.Close() }
func (it *joinIter) stats() *opStats     { return &it.st }
func (it *joinIter) children() []rowIter { return []rowIter{it.left, it.right} }

// --- aggregate ---

type aggIter struct {
	ctx         *ExecContext
	child       rowIter
	node        *AggNode
	childSchema *Schema
	outSchema   *Schema
	out         *Table
	idx         int
	st          opStats
}

func (it *aggIter) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	gs, err := newGroupSet(it.node, it.childSchema)
	if err != nil {
		return err
	}
	groupIdx := make([]int, len(it.node.GroupBy))
	for i, g := range it.node.GroupBy {
		groupIdx[i], err = it.childSchema.IndexOf(g)
		if err != nil {
			return err
		}
	}
	keys := make([]Value, len(groupIdx))
	for {
		row, ok, err := it.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		var foldErr error
		charge(it.ctx, &it.st, func() {
			it.ctx.chargeTupleOverhead(1, hwsim.OpAggregate)
			for i, gi := range groupIdx {
				keys[i] = row[gi]
			}
			g := gs.getOrCreate(keys)
			for j, spec := range it.node.Aggs {
				if spec.Expr == nil {
					g.accs[j].addCount()
					continue
				}
				it.ctx.chargeValueWork(exprNodes(spec.Expr), hwsim.OpAggregate)
				v, err := EvalRow(spec.Expr, it.childSchema, row)
				if err != nil {
					foldErr = err
					return
				}
				g.accs[j].add(v)
			}
		})
		if foldErr != nil {
			return foldErr
		}
	}
	it.out, err = gs.emit(it.outSchema, "agg")
	return err
}

func (it *aggIter) Next() ([]Value, bool, error) {
	if it.idx >= it.out.NumRows() {
		return nil, false, nil
	}
	var row []Value
	charge(it.ctx, &it.st, func() {
		it.ctx.chargeTupleOverhead(1, hwsim.OpAggregate)
		row = it.out.Row(it.idx)
	})
	it.idx++
	it.st.rows++
	return row, true, nil
}

func (it *aggIter) Close()              { it.child.Close() }
func (it *aggIter) stats() *opStats     { return &it.st }
func (it *aggIter) children() []rowIter { return []rowIter{it.child} }

// --- sort ---

type sortIter struct {
	ctx    *ExecContext
	child  rowIter
	keys   []SortKey
	keyIdx []int
	rows   [][]Value
	idx    int
	st     opStats
}

func (it *sortIter) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	for {
		row, ok, err := it.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		charge(it.ctx, &it.st, func() {
			it.ctx.chargeTupleOverhead(1, hwsim.OpSort)
			it.rows = append(it.rows, row)
		})
	}
	charge(it.ctx, &it.st, func() {
		n := len(it.rows)
		it.ctx.chargeValueWork(n*log2ceil(n)*len(it.keys), hwsim.OpSort)
		sort.SliceStable(it.rows, func(a, b int) bool {
			for i, k := range it.keys {
				va, vb := it.rows[a][it.keyIdx[i]], it.rows[b][it.keyIdx[i]]
				if va.Equal(vb) {
					continue
				}
				if k.Desc {
					return vb.Less(va)
				}
				return va.Less(vb)
			}
			return false
		})
	})
	return nil
}

func (it *sortIter) Next() ([]Value, bool, error) {
	if it.idx >= len(it.rows) {
		return nil, false, nil
	}
	row := it.rows[it.idx]
	it.idx++
	it.st.rows++
	return row, true, nil
}

func (it *sortIter) Close()              { it.child.Close() }
func (it *sortIter) stats() *opStats     { return &it.st }
func (it *sortIter) children() []rowIter { return []rowIter{it.child} }

// --- limit ---

type limitIter struct {
	ctx   *ExecContext
	child rowIter
	n     int
	seen  int
	st    opStats
}

func (it *limitIter) Open() error { it.seen = 0; return it.child.Open() }

func (it *limitIter) Next() ([]Value, bool, error) {
	if it.seen >= it.n {
		return nil, false, nil
	}
	row, ok, err := it.child.Next()
	if err != nil || !ok {
		return nil, false, err
	}
	it.seen++
	it.st.rows++
	return row, true, nil
}

func (it *limitIter) Close()              { it.child.Close() }
func (it *limitIter) stats() *opStats     { return &it.st }
func (it *limitIter) children() []rowIter { return []rowIter{it.child} }
