package vdb

import "fmt"

// EvalColumn evaluates an expression column-at-a-time over a materialized
// table, producing a full result column — the MonetDB-style execution path.
// Numeric work runs in tight typed loops over whole slices.
func EvalColumn(e Expr, t *Table) (*Column, error) {
	n := t.NumRows()
	switch ex := e.(type) {
	case ColRef:
		c, err := t.Column(ex.Name)
		if err != nil {
			return nil, err
		}
		return c, nil

	case ConstExpr:
		out := &Column{Name: ex.String(), Type: ex.Val.Typ}
		switch ex.Val.Typ {
		case TInt:
			out.Ints = make([]int64, n)
			for i := range out.Ints {
				out.Ints[i] = ex.Val.I
			}
		case TFloat:
			out.Floats = make([]float64, n)
			for i := range out.Floats {
				out.Floats[i] = ex.Val.F
			}
		default:
			out.Strs = make([]string, n)
			for i := range out.Strs {
				out.Strs[i] = ex.Val.S
			}
		}
		return out, nil

	case ArithExpr:
		l, err := EvalColumn(ex.L, t)
		if err != nil {
			return nil, err
		}
		r, err := EvalColumn(ex.R, t)
		if err != nil {
			return nil, err
		}
		return arithColumn(ex, l, r, n)

	case CmpExpr:
		l, err := EvalColumn(ex.L, t)
		if err != nil {
			return nil, err
		}
		r, err := EvalColumn(ex.R, t)
		if err != nil {
			return nil, err
		}
		return cmpColumn(ex, l, r, n)

	case BoolExpr:
		l, err := EvalColumn(ex.L, t)
		if err != nil {
			return nil, err
		}
		out := NewIntColumn(ex.String(), make([]int64, n))
		if ex.Op == BoolNot {
			for i := 0; i < n; i++ {
				if !truthy(l.Value(i)) {
					out.Ints[i] = 1
				}
			}
			return out, nil
		}
		r, err := EvalColumn(ex.R, t)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			lt, rt := truthy(l.Value(i)), truthy(r.Value(i))
			var v bool
			if ex.Op == BoolAnd {
				v = lt && rt
			} else {
				v = lt || rt
			}
			if v {
				out.Ints[i] = 1
			}
		}
		return out, nil

	case LikeExpr:
		operand, err := EvalColumn(ex.Operand, t)
		if err != nil {
			return nil, err
		}
		if operand.Type != TString {
			return nil, fmt.Errorf("vdb: LIKE on %s column", operand.Type)
		}
		out := NewIntColumn(ex.String(), make([]int64, n))
		for i, s := range operand.Strs {
			if ex.match(s) {
				out.Ints[i] = 1
			}
		}
		return out, nil

	default:
		return nil, fmt.Errorf("vdb: unknown expression %T", e)
	}
}

func arithColumn(ex ArithExpr, l, r *Column, n int) (*Column, error) {
	if l.Type == TString || r.Type == TString {
		return nil, fmt.Errorf("vdb: arithmetic on string in %s", ex)
	}
	name := ex.String()
	if l.Type == TInt && r.Type == TInt {
		out := NewIntColumn(name, make([]int64, n))
		for i := 0; i < n; i++ {
			a, b := l.Ints[i], r.Ints[i]
			switch ex.Op {
			case OpAdd:
				out.Ints[i] = a + b
			case OpSub:
				out.Ints[i] = a - b
			case OpMul:
				out.Ints[i] = a * b
			default:
				if b == 0 {
					return nil, fmt.Errorf("vdb: integer division by zero in %s", ex)
				}
				out.Ints[i] = a / b
			}
		}
		return out, nil
	}
	lf := asFloats(l)
	rf := asFloats(r)
	out := NewFloatColumn(name, make([]float64, n))
	switch ex.Op {
	case OpAdd:
		for i := 0; i < n; i++ {
			out.Floats[i] = lf[i] + rf[i]
		}
	case OpSub:
		for i := 0; i < n; i++ {
			out.Floats[i] = lf[i] - rf[i]
		}
	case OpMul:
		for i := 0; i < n; i++ {
			out.Floats[i] = lf[i] * rf[i]
		}
	default:
		for i := 0; i < n; i++ {
			if rf[i] == 0 {
				return nil, fmt.Errorf("vdb: division by zero in %s", ex)
			}
			out.Floats[i] = lf[i] / rf[i]
		}
	}
	return out, nil
}

func cmpColumn(ex CmpExpr, l, r *Column, n int) (*Column, error) {
	if (l.Type == TString) != (r.Type == TString) {
		return nil, fmt.Errorf("vdb: comparing string with numeric in %s", ex)
	}
	out := NewIntColumn(ex.String(), make([]int64, n))
	if l.Type == TString {
		for i := 0; i < n; i++ {
			if evalCmp(ex.Op, StrVal(l.Strs[i]), StrVal(r.Strs[i])) {
				out.Ints[i] = 1
			}
		}
		return out, nil
	}
	lf := asFloats(l)
	rf := asFloats(r)
	for i := 0; i < n; i++ {
		var v bool
		a, b := lf[i], rf[i]
		switch ex.Op {
		case CmpEQ:
			v = a == b
		case CmpNE:
			v = a != b
		case CmpLT:
			v = a < b
		case CmpLE:
			v = a <= b
		case CmpGT:
			v = a > b
		default:
			v = a >= b
		}
		if v {
			out.Ints[i] = 1
		}
	}
	return out, nil
}

// asFloats views a numeric column as float64s (copying for int columns).
func asFloats(c *Column) []float64 {
	if c.Type == TFloat {
		return c.Floats
	}
	out := make([]float64, len(c.Ints))
	for i, v := range c.Ints {
		out[i] = float64(v)
	}
	return out
}
