package vdb

import (
	"fmt"
	"sort"
	"strings"
)

// Table is a named collection of equal-length columns.
type Table struct {
	Name string
	Cols []*Column
}

// NewTable validates column lengths and name uniqueness.
func NewTable(name string, cols ...*Column) (*Table, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("vdb: table %q needs at least one column", name)
	}
	n := cols[0].Len()
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("vdb: table %q has an unnamed column", name)
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("vdb: table %q has duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
		if c.Len() != n {
			return nil, fmt.Errorf("vdb: table %q: column %q has %d rows, want %d", name, c.Name, c.Len(), n)
		}
	}
	return &Table{Name: name, Cols: cols}, nil
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Column returns the named column.
func (t *Table) Column(name string) (*Column, error) {
	for _, c := range t.Cols {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("vdb: table %q has no column %q", t.Name, name)
}

// HasColumn reports whether the named column exists.
func (t *Table) HasColumn(name string) bool {
	_, err := t.Column(name)
	return err == nil
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// Row returns row i boxed.
func (t *Table) Row(i int) []Value {
	out := make([]Value, len(t.Cols))
	for j, c := range t.Cols {
		out[j] = c.Value(i)
	}
	return out
}

// ByteSize estimates the table's storage footprint for the disk cost model.
func (t *Table) ByteSize() int64 {
	var total int64
	n := int64(t.NumRows())
	for _, c := range t.Cols {
		total += n * int64(c.WidthBytes())
	}
	return total
}

// RowWidthBytes estimates bytes per row.
func (t *Table) RowWidthBytes() int {
	w := 0
	for _, c := range t.Cols {
		w += c.WidthBytes()
	}
	return w
}

// CSV renders the table as C-locale CSV with a header row: the exact bytes
// a client would receive, which is what the output-sink cost model charges
// for.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.ColumnNames(), ","))
	b.WriteByte('\n')
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Cols {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.Value(i).String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedRows returns all rows sorted lexicographically by their rendered
// values — a canonical order for comparing results whose row order is not
// defined (e.g. hash aggregation output from different engines).
func (t *Table) SortedRows() [][]Value {
	rows := make([][]Value, t.NumRows())
	keys := make([]string, t.NumRows())
	for i := range rows {
		rows[i] = t.Row(i)
		parts := make([]string, len(rows[i]))
		for j, v := range rows[i] {
			parts[j] = v.String()
		}
		keys[i] = strings.Join(parts, "\x00")
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([][]Value, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out
}

// DB is a catalog of base tables.
type DB struct {
	tables map[string]*Table
	order  []string
}

// NewDB returns an empty catalog.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// AddTable registers a table; the name must be new.
func (db *DB) AddTable(t *Table) error {
	if t == nil || t.Name == "" {
		return fmt.Errorf("vdb: cannot add unnamed table")
	}
	if _, exists := db.tables[t.Name]; exists {
		return fmt.Errorf("vdb: table %q already exists", t.Name)
	}
	db.tables[t.Name] = t
	db.order = append(db.order, t.Name)
	return nil
}

// Table returns the named base table.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("vdb: unknown table %q", name)
	}
	return t, nil
}

// TableNames lists base tables in registration order.
func (db *DB) TableNames() []string { return append([]string(nil), db.order...) }

// TotalBytes sums the footprint of every base table.
func (db *DB) TotalBytes() int64 {
	var total int64
	for _, name := range db.order {
		total += db.tables[name].ByteSize()
	}
	return total
}
