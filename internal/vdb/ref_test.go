package vdb

import (
	"sort"
	"testing"
	"testing/quick"
)

// This file checks the engines against brute-force reference
// implementations on property-generated inputs: a nested-loop join, a
// straight filter scan, and the sort ordering contract.

func intTable(t *testing.T, name, col string, vals []int64) *Table {
	t.Helper()
	tab, err := NewTable(name, NewIntColumn(col, vals))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

// TestJoinAgainstNestedLoopQuick: hash join output (as a multiset of key
// pairs) equals the nested-loop reference for arbitrary key multisets.
func TestJoinAgainstNestedLoopQuick(t *testing.T) {
	f := func(lRaw, rRaw []uint8) bool {
		if len(lRaw) == 0 || len(rRaw) == 0 {
			return true
		}
		l := make([]int64, len(lRaw))
		for i, v := range lRaw {
			l[i] = int64(v % 16) // small domain forces collisions
		}
		r := make([]int64, len(rRaw))
		for i, v := range rRaw {
			r[i] = int64(v % 16)
		}
		// Reference: nested loop counting matches per key pair.
		refCount := 0
		for _, a := range l {
			for _, b := range r {
				if a == b {
					refCount++
				}
			}
		}
		db := NewDB()
		lt, err1 := NewTable("l", NewIntColumn("lk", l))
		rt, err2 := NewTable("r", NewIntColumn("rk", r))
		if err1 != nil || err2 != nil {
			return false
		}
		if db.AddTable(lt) != nil || db.AddTable(rt) != nil {
			return false
		}
		plan := Scan("l").Join(From(Scan("r").Node()), "lk", "rk").Node()
		for _, e := range []Engine{RowEngine{}, ColumnEngine{}} {
			res, err := Run(NewContext(db), e, plan)
			if err != nil {
				return false
			}
			if res.NumRows() != refCount {
				return false
			}
			// Every output row must have lk == rk.
			lc, _ := res.Column("lk")
			rc, _ := res.Column("rk")
			for i := 0; i < res.NumRows(); i++ {
				if lc.Ints[i] != rc.Ints[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestFilterAgainstReferenceQuick: the filter keeps exactly the rows a
// plain loop keeps, preserving order (row engine) or order of selection
// (column engine) — both equal the input order.
func TestFilterAgainstReferenceQuick(t *testing.T) {
	f := func(raw []int16, threshold int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		var ref []int64
		for i, v := range raw {
			vals[i] = int64(v)
			if int64(v) > int64(threshold) {
				ref = append(ref, int64(v))
			}
		}
		db := NewDB()
		if db.AddTable(intTable(t, "t", "v", vals)) != nil {
			return false
		}
		plan := Scan("t").Filter(Gt(Col("v"), Int(int64(threshold)))).Node()
		for _, e := range []Engine{RowEngine{}, ColumnEngine{}} {
			res, err := Run(NewContext(db), e, plan)
			if err != nil {
				return false
			}
			c, err := res.Column("v")
			if err != nil || len(c.Ints) != len(ref) {
				return false
			}
			for i := range ref {
				if c.Ints[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestSortContractQuick: engine sort output is a permutation of the input
// in exactly the order sort.SliceStable produces.
func TestSortContractQuick(t *testing.T) {
	f := func(raw []int16, desc bool) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		ref := append([]int64(nil), vals...)
		sort.SliceStable(ref, func(a, b int) bool {
			if desc {
				return ref[b] < ref[a]
			}
			return ref[a] < ref[b]
		})
		db := NewDB()
		if db.AddTable(intTable(t, "t", "v", vals)) != nil {
			return false
		}
		plan := Scan("t").OrderBy(SortKey{Col: "v", Desc: desc}).Node()
		for _, e := range []Engine{RowEngine{}, ColumnEngine{}} {
			res, err := Run(NewContext(db), e, plan)
			if err != nil {
				return false
			}
			c, _ := res.Column("v")
			for i := range ref {
				if c.Ints[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestAggregateAgainstReferenceQuick: grouped SUM/COUNT/MIN/MAX equal a map
// -based reference for arbitrary inputs.
func TestAggregateAgainstReferenceQuick(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]string, len(raw))
		vals := make([]int64, len(raw))
		type agg struct {
			sum, min, max int64
			n             int64
			init          bool
		}
		ref := map[string]*agg{}
		for i, v := range raw {
			keys[i] = string(rune('a' + (int(v)%4+4)%4))
			vals[i] = int64(v)
			a := ref[keys[i]]
			if a == nil {
				a = &agg{}
				ref[keys[i]] = a
			}
			a.sum += int64(v)
			a.n++
			if !a.init || int64(v) < a.min {
				a.min = int64(v)
			}
			if !a.init || int64(v) > a.max {
				a.max = int64(v)
			}
			a.init = true
		}
		db := NewDB()
		tab, err := NewTable("t", NewStringColumn("g", keys), NewIntColumn("v", vals))
		if err != nil || db.AddTable(tab) != nil {
			return false
		}
		plan := Scan("t").GroupBy([]string{"g"},
			Sum(Col("v"), "s"), Count("n"), MinOf(Col("v"), "lo"), MaxOf(Col("v"), "hi")).Node()
		for _, e := range []Engine{RowEngine{}, ColumnEngine{}} {
			res, err := Run(NewContext(db), e, plan)
			if err != nil || res.NumRows() != len(ref) {
				return false
			}
			g, _ := res.Column("g")
			s, _ := res.Column("s")
			n, _ := res.Column("n")
			lo, _ := res.Column("lo")
			hi, _ := res.Column("hi")
			for i := 0; i < res.NumRows(); i++ {
				a := ref[g.Strs[i]]
				if a == nil || s.Ints[i] != a.sum || n.Ints[i] != a.n || lo.Ints[i] != a.min || hi.Ints[i] != a.max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
