package vdb

import (
	"fmt"
	"strings"
)

// Node is a logical query plan node. Both engines interpret the same plan.
type Node interface {
	// Children returns the node's inputs (left before right).
	Children() []Node
	// Describe renders the node's own line of EXPLAIN output.
	Describe() string
}

// ScanNode reads a base table, optionally restricted to some columns.
type ScanNode struct {
	Table string
	Cols  []string // nil means all columns
}

// Children implements Node.
func (n *ScanNode) Children() []Node { return nil }

// Describe implements Node.
func (n *ScanNode) Describe() string {
	if len(n.Cols) == 0 {
		return fmt.Sprintf("Scan %s", n.Table)
	}
	return fmt.Sprintf("Scan %s [%s]", n.Table, strings.Join(n.Cols, ", "))
}

// FilterNode keeps rows where Pred is true.
type FilterNode struct {
	Child Node
	Pred  Expr
}

// Children implements Node.
func (n *FilterNode) Children() []Node { return []Node{n.Child} }

// Describe implements Node.
func (n *FilterNode) Describe() string { return fmt.Sprintf("Filter %s", n.Pred) }

// ProjectNode computes named expressions.
type ProjectNode struct {
	Child Node
	Exprs []Expr
	Names []string
}

// Children implements Node.
func (n *ProjectNode) Children() []Node { return []Node{n.Child} }

// Describe implements Node.
func (n *ProjectNode) Describe() string {
	parts := make([]string, len(n.Exprs))
	for i, e := range n.Exprs {
		parts[i] = fmt.Sprintf("%s AS %s", e, n.Names[i])
	}
	return "Project " + strings.Join(parts, ", ")
}

// JoinNode is a single-column equi-join (hash join: build on the right,
// probe from the left). Output columns are the left's followed by the
// right's; all names must be distinct across the two sides.
type JoinNode struct {
	Left, Right       Node
	LeftKey, RightKey string
}

// Children implements Node.
func (n *JoinNode) Children() []Node { return []Node{n.Left, n.Right} }

// Describe implements Node.
func (n *JoinNode) Describe() string {
	return fmt.Sprintf("HashJoin %s = %s", n.LeftKey, n.RightKey)
}

// AggFunc is an aggregate function.
type AggFunc int

// Aggregate functions.
const (
	AggSum AggFunc = iota
	AggAvg
	AggCount
	AggMin
	AggMax
	AggCountDistinct
)

func (f AggFunc) String() string {
	return [...]string{"sum", "avg", "count", "min", "max", "count_distinct"}[f]
}

// AggSpec is one aggregate output: Func over Expr, named Name. For
// AggCount, Expr may be nil (COUNT(*)).
type AggSpec struct {
	Func AggFunc
	Expr Expr
	Name string
}

func (a AggSpec) String() string {
	arg := "*"
	if a.Expr != nil {
		arg = a.Expr.String()
	}
	return fmt.Sprintf("%s(%s) AS %s", a.Func, arg, a.Name)
}

// AggNode groups by columns and computes aggregates. With no group-by
// columns it produces a single row.
type AggNode struct {
	Child   Node
	GroupBy []string
	Aggs    []AggSpec
}

// Children implements Node.
func (n *AggNode) Children() []Node { return []Node{n.Child} }

// Describe implements Node.
func (n *AggNode) Describe() string {
	parts := make([]string, len(n.Aggs))
	for i, a := range n.Aggs {
		parts[i] = a.String()
	}
	if len(n.GroupBy) == 0 {
		return "Aggregate " + strings.Join(parts, ", ")
	}
	return fmt.Sprintf("GroupBy [%s] %s", strings.Join(n.GroupBy, ", "), strings.Join(parts, ", "))
}

// SortKey orders by a column, optionally descending.
type SortKey struct {
	Col  string
	Desc bool
}

func (k SortKey) String() string {
	if k.Desc {
		return k.Col + " DESC"
	}
	return k.Col
}

// SortNode orders rows by keys.
type SortNode struct {
	Child Node
	Keys  []SortKey
}

// Children implements Node.
func (n *SortNode) Children() []Node { return []Node{n.Child} }

// Describe implements Node.
func (n *SortNode) Describe() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		parts[i] = k.String()
	}
	return "Sort " + strings.Join(parts, ", ")
}

// LimitNode keeps the first N rows.
type LimitNode struct {
	Child Node
	N     int
}

// Children implements Node.
func (n *LimitNode) Children() []Node { return []Node{n.Child} }

// Describe implements Node.
func (n *LimitNode) Describe() string { return fmt.Sprintf("Limit %d", n.N) }

// Plan is a fluent builder over Node, so queries read top-down like SQL:
//
//	vdb.Scan("lineitem").
//	    Filter(vdb.Le(vdb.Col("l_shipdate"), vdb.Int(d))).
//	    GroupBy([]string{"l_returnflag"}, vdb.Sum(...)).Node()
type Plan struct{ node Node }

// Scan starts a plan from a base table.
func Scan(table string, cols ...string) *Plan {
	return &Plan{node: &ScanNode{Table: table, Cols: cols}}
}

// From wraps an existing node.
func From(n Node) *Plan { return &Plan{node: n} }

// Node unwraps the built plan.
func (p *Plan) Node() Node { return p.node }

// Filter appends a filter.
func (p *Plan) Filter(pred Expr) *Plan {
	return &Plan{node: &FilterNode{Child: p.node, Pred: pred}}
}

// Project appends a projection; names and exprs must pair up.
func (p *Plan) Project(names []string, exprs ...Expr) *Plan {
	return &Plan{node: &ProjectNode{Child: p.node, Exprs: exprs, Names: names}}
}

// Join appends a hash equi-join with another plan as build side.
func (p *Plan) Join(right *Plan, leftKey, rightKey string) *Plan {
	return &Plan{node: &JoinNode{Left: p.node, Right: right.node, LeftKey: leftKey, RightKey: rightKey}}
}

// GroupBy appends a grouped aggregation.
func (p *Plan) GroupBy(cols []string, aggs ...AggSpec) *Plan {
	return &Plan{node: &AggNode{Child: p.node, GroupBy: cols, Aggs: aggs}}
}

// Aggregate appends an ungrouped aggregation (one output row).
func (p *Plan) Aggregate(aggs ...AggSpec) *Plan {
	return &Plan{node: &AggNode{Child: p.node, Aggs: aggs}}
}

// OrderBy appends a sort.
func (p *Plan) OrderBy(keys ...SortKey) *Plan {
	return &Plan{node: &SortNode{Child: p.node, Keys: keys}}
}

// Limit appends a row limit.
func (p *Plan) Limit(n int) *Plan {
	return &Plan{node: &LimitNode{Child: p.node, N: n}}
}

// Sum builds sum(expr) AS name.
func Sum(e Expr, name string) AggSpec { return AggSpec{Func: AggSum, Expr: e, Name: name} }

// Avg builds avg(expr) AS name.
func Avg(e Expr, name string) AggSpec { return AggSpec{Func: AggAvg, Expr: e, Name: name} }

// Count builds count(*) AS name.
func Count(name string) AggSpec { return AggSpec{Func: AggCount, Name: name} }

// MinOf builds min(expr) AS name.
func MinOf(e Expr, name string) AggSpec { return AggSpec{Func: AggMin, Expr: e, Name: name} }

// MaxOf builds max(expr) AS name.
func MaxOf(e Expr, name string) AggSpec { return AggSpec{Func: AggMax, Expr: e, Name: name} }

// CountDistinct builds count(distinct expr) AS name.
func CountDistinct(e Expr, name string) AggSpec {
	return AggSpec{Func: AggCountDistinct, Expr: e, Name: name}
}

// Explain renders the plan tree with two-space indentation, the EXPLAIN
// output the paper recommends inspecting ("Find out what happens!").
func Explain(n Node) string {
	var b strings.Builder
	var walk func(n Node, depth int)
	walk = func(n Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Describe())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return b.String()
}
