package vdb

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestDistinctBothEngines(t *testing.T) {
	db := NewDB()
	tab, _ := NewTable("t",
		NewIntColumn("a", []int64{1, 2, 1, 3, 2, 1}),
		NewStringColumn("b", []string{"x", "y", "x", "z", "y", "q"}),
	)
	if err := db.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	plan := Scan("t").Distinct().Node()
	res := runBoth(t, db, plan)
	// Distinct rows: (1,x), (2,y), (3,z), (1,q).
	if res.NumRows() != 4 {
		t.Fatalf("distinct rows = %d, want 4", res.NumRows())
	}
	// First-occurrence order preserved (row engine result).
	a, _ := res.Column("a")
	b, _ := res.Column("b")
	if a.Ints[0] != 1 || b.Strs[0] != "x" || a.Ints[3] != 1 || b.Strs[3] != "q" {
		t.Errorf("order: a=%v b=%v", a.Ints, b.Strs)
	}
	// Explain mentions the operator.
	if !strings.Contains(Explain(plan), "Distinct") {
		t.Error("explain missing Distinct")
	}
}

func TestDistinctOnProjection(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		Project([]string{"o_status"}, Col("o_status")).
		Distinct().Node()
	res := runBoth(t, db, plan)
	if res.NumRows() != 2 {
		t.Errorf("distinct statuses = %d, want 2", res.NumRows())
	}
}

func TestTopNBothEngines(t *testing.T) {
	db := testDB(t)
	topn := Scan("orders").TopN(2, SortKey{Col: "o_total", Desc: true}).Node()
	sortLimit := Scan("orders").OrderBy(SortKey{Col: "o_total", Desc: true}).Limit(2).Node()
	for _, e := range engines() {
		a, err := Run(NewContext(db), e, topn)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		b, err := Run(NewContext(db), e, sortLimit)
		if err != nil {
			t.Fatal(err)
		}
		if a.CSV() != b.CSV() {
			t.Errorf("%s: TopN != Sort+Limit:\n%s\nvs\n%s", e.Name(), a.CSV(), b.CSV())
		}
	}
}

func TestTopNEdgeCases(t *testing.T) {
	db := testDB(t)
	// N larger than input: all rows, sorted.
	res := runBoth(t, db, Scan("orders").TopN(100, SortKey{Col: "o_id"}).Node())
	if res.NumRows() != 5 {
		t.Errorf("overlarge N rows = %d", res.NumRows())
	}
	// N = 0: empty.
	res0 := runBoth(t, db, Scan("orders").TopN(0, SortKey{Col: "o_id"}).Node())
	if res0.NumRows() != 0 {
		t.Errorf("N=0 rows = %d", res0.NumRows())
	}
	// Validation errors.
	for _, bad := range []Node{
		Scan("orders").TopN(-1, SortKey{Col: "o_id"}).Node(),
		Scan("orders").TopN(2).Node(),
		Scan("orders").TopN(2, SortKey{Col: "bogus"}).Node(),
	} {
		for _, e := range engines() {
			if _, err := Run(NewContext(db), e, bad); err == nil {
				t.Errorf("%s: invalid TopN should error", e.Name())
			}
		}
	}
}

func TestTopNMultiKey(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").TopN(3, SortKey{Col: "o_status"}, SortKey{Col: "o_total", Desc: true}).Node()
	ref := Scan("orders").OrderBy(SortKey{Col: "o_status"}, SortKey{Col: "o_total", Desc: true}).Limit(3).Node()
	a, err := Run(NewContext(db), ColumnEngine{}, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(NewContext(db), ColumnEngine{}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if a.CSV() != b.CSV() {
		t.Errorf("multi-key TopN mismatch:\n%s\nvs\n%s", a.CSV(), b.CSV())
	}
}

// Property: TopN(k) equals the first k values of a full sort, on both
// engines, for arbitrary inputs. (Ties may order differently between heap
// and stable sort, so compare sorted VALUES not row identity.)
func TestTopNAgainstSortQuick(t *testing.T) {
	f := func(raw []int16, kRaw uint8, desc bool) bool {
		if len(raw) == 0 {
			return true
		}
		k := int(kRaw)%(len(raw)+2) + 1
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		ref := append([]int64(nil), vals...)
		sort.Slice(ref, func(a, b int) bool {
			if desc {
				return ref[b] < ref[a]
			}
			return ref[a] < ref[b]
		})
		if k > len(ref) {
			k = len(ref)
		}
		want := ref[:k]

		db := NewDB()
		tab, err := NewTable("t", NewIntColumn("v", vals))
		if err != nil || db.AddTable(tab) != nil {
			return false
		}
		plan := Scan("t").TopN(k, SortKey{Col: "v", Desc: desc}).Node()
		for _, e := range []Engine{RowEngine{}, ColumnEngine{}} {
			res, err := Run(NewContext(db), e, plan)
			if err != nil {
				return false
			}
			c, _ := res.Column("v")
			if len(c.Ints) != k {
				return false
			}
			for i := range want {
				if c.Ints[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Distinct output has no duplicates and covers every input value,
// on both engines.
func TestDistinctQuick(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		inSet := map[int64]bool{}
		for i, v := range raw {
			vals[i] = int64(v % 8)
			inSet[vals[i]] = true
		}
		db := NewDB()
		tab, err := NewTable("t", NewIntColumn("v", vals))
		if err != nil || db.AddTable(tab) != nil {
			return false
		}
		plan := Scan("t").Distinct().Node()
		for _, e := range []Engine{RowEngine{}, ColumnEngine{}} {
			res, err := Run(NewContext(db), e, plan)
			if err != nil {
				return false
			}
			c, _ := res.Column("v")
			got := map[int64]bool{}
			for _, v := range c.Ints {
				if got[v] {
					return false // duplicate survived
				}
				got[v] = true
			}
			if len(got) != len(inSet) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTopNSimulatedCheaperThanSort: under the cost model, TopN with small k
// charges less sort work than a full Sort+Limit on the same input.
func TestTopNSimulatedCheaperThanSort(t *testing.T) {
	n := 20000
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64((i * 48271) % 65536)
	}
	db := NewDB()
	tab, _ := NewTable("big", NewIntColumn("v", vals))
	if err := db.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	timeFor := func(plan Node) int64 {
		ctx := simCtx(db)
		ctx.Buffers.WarmAll([]string{"big"})
		if _, err := Run(ctx, ColumnEngine{}, plan); err != nil {
			t.Fatal(err)
		}
		return int64(ctx.Clock.User())
	}
	topn := timeFor(Scan("big").TopN(10, SortKey{Col: "v"}).Node())
	sortLimit := timeFor(Scan("big").OrderBy(SortKey{Col: "v"}).Limit(10).Node())
	if topn >= sortLimit {
		t.Errorf("TopN (%d ns) should be cheaper than Sort+Limit (%d ns)", topn, sortLimit)
	}
}
