package vdb

import (
	"strings"
	"testing"

	"repro/internal/hwsim"
)

func TestFairComparisonClean(t *testing.T) {
	db := bigDB(t, 100)
	a := simCtx(db)
	b := simCtx(db)
	a.Buffers.WarmAll([]string{"big"})
	b.Buffers.WarmAll([]string{"big"})
	if issues := CheckFairComparison(a, b, []string{"big"}); len(issues) != 0 {
		t.Errorf("identical contexts flagged: %v", issues)
	}
}

func TestFairComparisonCatchesTheAnecdote(t *testing.T) {
	// Colleague A compiled with optimization, colleague B did not.
	db := bigDB(t, 100)
	a := simCtx(db)
	b := simCtx(db)
	a.Mode = hwsim.Optimized
	b.Mode = hwsim.Debug
	issues := CheckFairComparison(a, b, nil)
	if len(issues) != 1 || !strings.Contains(issues[0], "build modes differ") {
		t.Errorf("issues = %v", issues)
	}
	if !strings.Contains(issues[0], "factor 2") {
		t.Errorf("issue should cite the paper's factor: %v", issues[0])
	}
}

func TestFairComparisonOtherMismatches(t *testing.T) {
	db := bigDB(t, 100)

	// Different machines.
	a := simCtx(db)
	m2 := hwsim.SunLX1992
	b := NewSimContext(db, &m2, hwsim.NewVirtualClock())
	if issues := CheckFairComparison(a, b, nil); len(issues) == 0 {
		t.Error("different machines not flagged")
	}

	// Simulated vs plain.
	plain := NewContext(db)
	if issues := CheckFairComparison(a, plain, nil); len(issues) == 0 {
		t.Error("simulated vs plain not flagged")
	}

	// Hot vs cold buffers.
	c := simCtx(db)
	d := simCtx(db)
	c.Buffers.WarmAll([]string{"big"})
	issues := CheckFairComparison(c, d, []string{"big"})
	found := false
	for _, i := range issues {
		if strings.Contains(i, "hot/cold") {
			found = true
		}
	}
	if !found {
		t.Errorf("buffer mismatch not flagged: %v", issues)
	}

	// Different overheads.
	e := simCtx(db)
	f := simCtx(db)
	f.Overheads = hwsim.OverheadFactors{Scan: 9, Filter: 9, Join: 9, Aggregate: 9, Sort: 9, Project: 9}
	if issues := CheckFairComparison(e, f, nil); len(issues) == 0 {
		t.Error("different overheads not flagged")
	}

	// Nil context.
	if issues := CheckFairComparison(nil, a, nil); len(issues) != 1 {
		t.Errorf("nil context: %v", issues)
	}
}
