package vdb

import (
	"strings"
	"testing"
)

// testDB builds a small two-table catalog used across the engine tests.
func testDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	orders, err := NewTable("orders",
		NewIntColumn("o_id", []int64{1, 2, 3, 4, 5}),
		NewIntColumn("o_cust", []int64{10, 20, 10, 30, 20}),
		NewFloatColumn("o_total", []float64{100, 200, 150, 50, 300}),
		NewStringColumn("o_status", []string{"open", "done", "open", "done", "open"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	cust, err := NewTable("cust",
		NewIntColumn("c_id", []int64{10, 20, 30}),
		NewStringColumn("c_name", []string{"alice", "bob", "carol"}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(orders); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(cust); err != nil {
		t.Fatal(err)
	}
	return db
}

func engines() []Engine { return []Engine{RowEngine{}, ColumnEngine{}} }

// runBoth executes the plan on both engines and checks the results agree
// under canonical row ordering, returning the row-engine result.
func runBoth(t *testing.T, db *DB, plan Node) *Table {
	t.Helper()
	var results []*Table
	for _, e := range engines() {
		res, err := Run(NewContext(db), e, plan)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		results = append(results, res)
	}
	a, b := results[0].SortedRows(), results[1].SortedRows()
	if len(a) != len(b) {
		t.Fatalf("engines disagree on row count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if !a[i][j].Equal(b[i][j]) {
				t.Fatalf("engines disagree at row %d col %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	return results[0]
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable("t"); err == nil {
		t.Error("empty table should error")
	}
	if _, err := NewTable("t", NewIntColumn("", []int64{1})); err == nil {
		t.Error("unnamed column should error")
	}
	if _, err := NewTable("t", NewIntColumn("a", []int64{1}), NewIntColumn("a", []int64{2})); err == nil {
		t.Error("duplicate column should error")
	}
	if _, err := NewTable("t", NewIntColumn("a", []int64{1}), NewIntColumn("b", []int64{1, 2})); err == nil {
		t.Error("ragged columns should error")
	}
}

func TestDBCatalog(t *testing.T) {
	db := testDB(t)
	if _, err := db.Table("nope"); err == nil {
		t.Error("unknown table should error")
	}
	names := db.TableNames()
	if len(names) != 2 || names[0] != "orders" || names[1] != "cust" {
		t.Errorf("names = %v", names)
	}
	dup, _ := NewTable("orders", NewIntColumn("x", []int64{1}))
	if err := db.AddTable(dup); err == nil {
		t.Error("duplicate table should error")
	}
	if err := db.AddTable(nil); err == nil {
		t.Error("nil table should error")
	}
	if db.TotalBytes() <= 0 {
		t.Error("total bytes should be positive")
	}
}

func TestScanBothEngines(t *testing.T) {
	db := testDB(t)
	res := runBoth(t, db, Scan("orders").Node())
	if res.NumRows() != 5 || len(res.Cols) != 4 {
		t.Errorf("scan result %dx%d", res.NumRows(), len(res.Cols))
	}
	// Projected scan.
	res2 := runBoth(t, db, Scan("orders", "o_id", "o_total").Node())
	if len(res2.Cols) != 2 {
		t.Errorf("projected scan cols = %d", len(res2.Cols))
	}
}

func TestFilterBothEngines(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").Filter(Gt(Col("o_total"), Float(120))).Node()
	res := runBoth(t, db, plan)
	if res.NumRows() != 3 {
		t.Errorf("filter rows = %d, want 3", res.NumRows())
	}
	// Compound predicate.
	plan2 := Scan("orders").
		Filter(And(Eq(Col("o_status"), Str("open")), Ge(Col("o_total"), Float(150)))).Node()
	res2 := runBoth(t, db, plan2)
	if res2.NumRows() != 2 {
		t.Errorf("compound filter rows = %d, want 2", res2.NumRows())
	}
	// OR / NOT.
	plan3 := Scan("orders").
		Filter(Or(Not(Eq(Col("o_status"), Str("open"))), Lt(Col("o_total"), Float(120)))).Node()
	res3 := runBoth(t, db, plan3)
	if res3.NumRows() != 3 {
		t.Errorf("or/not filter rows = %d, want 3", res3.NumRows())
	}
}

func TestProjectBothEngines(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		Project([]string{"id", "scaled"}, Col("o_id"), Mul(Col("o_total"), Float(1.1))).Node()
	res := runBoth(t, db, plan)
	if len(res.Cols) != 2 || res.Cols[1].Type != TFloat {
		t.Fatalf("project schema wrong: %v", res.ColumnNames())
	}
	v := res.Cols[1].Floats[0]
	if v < 109.9 || v > 110.1 {
		t.Errorf("scaled[0] = %g, want 110", v)
	}
}

func TestJoinBothEngines(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").Join(From(Scan("cust").Node()), "o_cust", "c_id").Node()
	res := runBoth(t, db, plan)
	if res.NumRows() != 5 {
		t.Errorf("join rows = %d, want 5", res.NumRows())
	}
	if len(res.Cols) != 6 {
		t.Errorf("join cols = %d, want 6", len(res.Cols))
	}
	// Join filtering: only matching keys survive.
	db2 := NewDB()
	left, _ := NewTable("l", NewIntColumn("lk", []int64{1, 2, 9}))
	right, _ := NewTable("r", NewIntColumn("rk", []int64{1, 1, 2}))
	if err := db2.AddTable(left); err != nil {
		t.Fatal(err)
	}
	if err := db2.AddTable(right); err != nil {
		t.Fatal(err)
	}
	res2 := runBoth(t, db2, Scan("l").Join(From(Scan("r").Node()), "lk", "rk").Node())
	if res2.NumRows() != 3 { // 1 matches twice, 2 once, 9 never
		t.Errorf("m:n join rows = %d, want 3", res2.NumRows())
	}
}

func TestStringJoin(t *testing.T) {
	db := NewDB()
	l, _ := NewTable("l", NewStringColumn("lk", []string{"a", "b"}))
	r, _ := NewTable("r", NewStringColumn("rk", []string{"b", "c"}))
	if err := db.AddTable(l); err != nil {
		t.Fatal(err)
	}
	if err := db.AddTable(r); err != nil {
		t.Fatal(err)
	}
	res := runBoth(t, db, Scan("l").Join(From(Scan("r").Node()), "lk", "rk").Node())
	if res.NumRows() != 1 {
		t.Errorf("string join rows = %d, want 1", res.NumRows())
	}
}

func TestGroupByBothEngines(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").GroupBy([]string{"o_status"},
		Sum(Col("o_total"), "total"),
		Count("n"),
		Avg(Col("o_total"), "avg_total"),
		MinOf(Col("o_total"), "min_total"),
		MaxOf(Col("o_total"), "max_total"),
	).Node()
	res := runBoth(t, db, plan)
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", res.NumRows())
	}
	// Verify the "open" group: totals 100+150+300=550, n=3, avg 183.33,
	// min 100 max 300.
	var found bool
	for i := 0; i < res.NumRows(); i++ {
		row := res.Row(i)
		if row[0].S != "open" {
			continue
		}
		found = true
		if row[1].AsFloat() != 550 || row[2].I != 3 {
			t.Errorf("open group sum/count = %v/%v", row[1], row[2])
		}
		if av := row[3].AsFloat(); av < 183 || av > 184 {
			t.Errorf("open avg = %v", av)
		}
		if row[4].AsFloat() != 100 || row[5].AsFloat() != 300 {
			t.Errorf("open min/max = %v/%v", row[4], row[5])
		}
	}
	if !found {
		t.Error("no 'open' group in result")
	}
}

func TestGlobalAggregateBothEngines(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").Aggregate(
		MaxOf(Col("o_total"), "max_total"),
		Sum(Col("o_id"), "sum_ids"),
		CountDistinct(Col("o_cust"), "n_cust"),
	).Node()
	res := runBoth(t, db, plan)
	if res.NumRows() != 1 {
		t.Fatalf("global agg rows = %d", res.NumRows())
	}
	row := res.Row(0)
	if row[0].AsFloat() != 300 {
		t.Errorf("max = %v", row[0])
	}
	if row[1].I != 15 {
		t.Errorf("sum ids = %v (int sum should stay int)", row[1])
	}
	if row[1].Typ != TInt {
		t.Errorf("sum over ints should be int, got %v", row[1].Typ)
	}
	if row[2].I != 3 {
		t.Errorf("count distinct = %v, want 3", row[2])
	}
}

func TestSortLimitBothEngines(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		OrderBy(SortKey{Col: "o_total", Desc: true}).
		Limit(2).Node()
	for _, e := range engines() {
		res, err := Run(NewContext(db), e, plan)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if res.NumRows() != 2 {
			t.Fatalf("%s: rows = %d", e.Name(), res.NumRows())
		}
		c, _ := res.Column("o_total")
		if c.Floats[0] != 300 || c.Floats[1] != 200 {
			t.Errorf("%s: top-2 = %v", e.Name(), c.Floats)
		}
	}
}

func TestMultiKeySort(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		OrderBy(SortKey{Col: "o_status"}, SortKey{Col: "o_total", Desc: true}).Node()
	for _, e := range engines() {
		res, err := Run(NewContext(db), e, plan)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := res.Column("o_status")
		tot, _ := res.Column("o_total")
		want := []struct {
			s string
			f float64
		}{{"done", 200}, {"done", 50}, {"open", 300}, {"open", 150}, {"open", 100}}
		for i, w := range want {
			if st.Strs[i] != w.s || tot.Floats[i] != w.f {
				t.Errorf("%s row %d = %s/%g, want %s/%g", e.Name(), i, st.Strs[i], tot.Floats[i], w.s, w.f)
			}
		}
	}
}

func TestLimitBeyondRows(t *testing.T) {
	db := testDB(t)
	res := runBoth(t, db, Scan("cust").Limit(100).Node())
	if res.NumRows() != 3 {
		t.Errorf("limit beyond rows = %d", res.NumRows())
	}
	res0 := runBoth(t, db, Scan("cust").Limit(0).Node())
	if res0.NumRows() != 0 {
		t.Errorf("limit 0 rows = %d", res0.NumRows())
	}
}

func TestLikeBothEngines(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		pred Expr
		want int
	}{
		{HasPrefix(Col("c_name"), "a"), 1},
		{Contains(Col("c_name"), "o"), 2}, // bob, carol
		{NotContains(Col("c_name"), "o"), 1},
		{HasSuffix(Col("c_name"), "l"), 1},
	}
	for _, c := range cases {
		res := runBoth(t, db, Scan("cust").Filter(c.pred).Node())
		if res.NumRows() != c.want {
			t.Errorf("%s: rows = %d, want %d", c.pred, res.NumRows(), c.want)
		}
	}
}

func TestComplexPipelineBothEngines(t *testing.T) {
	db := testDB(t)
	// Join, filter, project, group, sort: all operators in one plan.
	plan := Scan("orders").
		Join(From(Scan("cust").Node()), "o_cust", "c_id").
		Filter(Ne(Col("c_name"), Str("carol"))).
		Project([]string{"name", "amount"}, Col("c_name"), Mul(Col("o_total"), Float(2))).
		GroupBy([]string{"name"}, Sum(Col("amount"), "total")).
		OrderBy(SortKey{Col: "total", Desc: true}).
		Node()
	res := runBoth(t, db, plan)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (alice, bob)", res.NumRows())
	}
	name, _ := res.Column("name")
	total, _ := res.Column("total")
	// alice: (100+150)*2 = 500; bob: (200+300)*2 = 1000.
	if name.Strs[0] != "bob" || total.Floats[0] != 1000 {
		t.Errorf("row 0 = %s/%g", name.Strs[0], total.Floats[0])
	}
	if name.Strs[1] != "alice" || total.Floats[1] != 500 {
		t.Errorf("row 1 = %s/%g", name.Strs[1], total.Floats[1])
	}
}

func TestPlanValidationErrors(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		name string
		plan Node
	}{
		{"unknown table", Scan("nope").Node()},
		{"unknown column in scan", Scan("orders", "bogus").Node()},
		{"unknown column in filter", Scan("orders").Filter(Gt(Col("bogus"), Int(1))).Node()},
		{"string arithmetic", Scan("orders").Project([]string{"x"}, Add(Col("o_status"), Int(1))).Node()},
		{"string/numeric compare", Scan("orders").Filter(Eq(Col("o_status"), Int(1))).Node()},
		{"like on numeric", Scan("orders").Filter(HasPrefix(Col("o_total"), "1")).Node()},
		{"empty project", Scan("orders").Project(nil).Node()},
		{"dup project names", Scan("orders").Project([]string{"x", "x"}, Col("o_id"), Col("o_cust")).Node()},
		{"join bad left key", Scan("orders").Join(From(Scan("cust").Node()), "bogus", "c_id").Node()},
		{"join bad right key", Scan("orders").Join(From(Scan("cust").Node()), "o_cust", "bogus").Node()},
		{"join float key", Scan("orders").Join(From(Scan("orders2").Node()), "o_total", "o_total").Node()},
		{"join key type mismatch", Scan("orders").Join(From(Scan("cust").Node()), "o_status", "c_id").Node()},
		{"join dup columns", Scan("orders").Join(From(Scan("orders").Node()), "o_id", "o_id").Node()},
		{"agg no funcs", Scan("orders").GroupBy([]string{"o_status"}).Node()},
		{"agg bad group col", Scan("orders").GroupBy([]string{"bogus"}, Count("n")).Node()},
		{"sum of string", Scan("orders").Aggregate(Sum(Col("o_status"), "s")).Node()},
		{"avg of string", Scan("orders").Aggregate(Avg(Col("o_status"), "s")).Node()},
		{"sum without expr", Scan("orders").Aggregate(AggSpec{Func: AggSum, Name: "s"}).Node()},
		{"count_distinct without expr", Scan("orders").Aggregate(AggSpec{Func: AggCountDistinct, Name: "s"}).Node()},
		{"dup agg name", Scan("orders").GroupBy([]string{"o_status"}, Count("o_status")).Node()},
		{"bad sort key", Scan("orders").OrderBy(SortKey{Col: "bogus"}).Node()},
		{"negative limit", Scan("orders").Limit(-1).Node()},
	}
	for _, c := range cases {
		for _, e := range engines() {
			if _, err := Run(NewContext(db), e, c.plan); err == nil {
				t.Errorf("%s (%s): expected error", c.name, e.Name())
			}
		}
	}
	if _, err := Run(nil, RowEngine{}, Scan("orders").Node()); err == nil {
		t.Error("nil context should error")
	}
	if _, err := Run(NewContext(db), RowEngine{}, nil); err == nil {
		t.Error("nil plan should error")
	}
}

func TestDivisionByZero(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		Project([]string{"x"}, Div(Col("o_total"), Sub(Col("o_id"), Col("o_id")))).Node()
	for _, e := range engines() {
		if _, err := Run(NewContext(db), e, plan); err == nil {
			t.Errorf("%s: division by zero should error", e.Name())
		}
	}
	planInt := Scan("orders").
		Project([]string{"x"}, Div(Col("o_id"), Sub(Col("o_id"), Col("o_id")))).Node()
	for _, e := range engines() {
		if _, err := Run(NewContext(db), e, planInt); err == nil {
			t.Errorf("%s: integer division by zero should error", e.Name())
		}
	}
}

func TestIntArithmeticStaysInt(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		Project([]string{"x"}, Add(Mul(Col("o_id"), Int(10)), Int(1))).Node()
	res := runBoth(t, db, plan)
	c := res.Cols[0]
	if c.Type != TInt {
		t.Fatalf("int arithmetic type = %v", c.Type)
	}
	if c.Ints[0] != 11 || c.Ints[4] != 51 {
		t.Errorf("values = %v", c.Ints)
	}
}

func TestExplain(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		Filter(Gt(Col("o_total"), Float(100))).
		GroupBy([]string{"o_status"}, Count("n")).
		OrderBy(SortKey{Col: "n", Desc: true}).
		Limit(1).Node()
	out := Explain(plan)
	for _, want := range []string{"Limit 1", "Sort n DESC", "GroupBy [o_status]", "Filter", "Scan orders"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Deeper nodes are more indented.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("explain lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[4], "        ") {
		t.Errorf("scan should be deepest: %q", lines[4])
	}
	_ = db
}

func TestCSVRendering(t *testing.T) {
	tab, _ := NewTable("t",
		NewIntColumn("a", []int64{1, 2}),
		NewFloatColumn("b", []float64{13.666, 15}),
		NewStringColumn("c", []string{"x", "y"}),
	)
	csv := tab.CSV()
	want := "a,b,c\n1,13.666,x\n2,15,y\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestValueHelpers(t *testing.T) {
	if !IntVal(3).Equal(FloatVal(3)) {
		t.Error("3 == 3.0 should hold across types")
	}
	if IntVal(3).Equal(StrVal("3")) {
		t.Error("int and string never equal")
	}
	if !IntVal(2).Less(FloatVal(2.5)) {
		t.Error("2 < 2.5")
	}
	if !StrVal("a").Less(StrVal("b")) {
		t.Error("a < b")
	}
	if IntVal(5).String() != "5" || FloatVal(1.5).String() != "1.5" || StrVal("s").String() != "s" {
		t.Error("value rendering")
	}
	var c Column
	c.Type = TInt
	c.Name = "x"
	if err := c.Append(StrVal("no")); err == nil {
		t.Error("type mismatch append should error")
	}
	fc := Column{Name: "f", Type: TFloat}
	if err := fc.Append(IntVal(2)); err != nil {
		t.Errorf("int->float widening append: %v", err)
	}
	if fc.Floats[0] != 2 {
		t.Errorf("widened value = %v", fc.Floats)
	}
}
