package vdb

import (
	"container/heap"
	"fmt"
	"strings"

	"repro/internal/hwsim"
)

// DistinctNode removes duplicate rows (over all columns), preserving
// first-occurrence order.
type DistinctNode struct {
	Child Node
}

// Children implements Node.
func (n *DistinctNode) Children() []Node { return []Node{n.Child} }

// Describe implements Node.
func (n *DistinctNode) Describe() string { return "Distinct" }

// TopNNode keeps the N smallest rows under the sort keys without fully
// sorting the input — the heap-based alternative to Sort+Limit. The
// ablation benchmark Benchmark_Ablation_TopN quantifies the difference.
type TopNNode struct {
	Child Node
	Keys  []SortKey
	N     int
}

// Children implements Node.
func (n *TopNNode) Children() []Node { return []Node{n.Child} }

// Describe implements Node.
func (n *TopNNode) Describe() string {
	parts := make([]string, len(n.Keys))
	for i, k := range n.Keys {
		parts[i] = k.String()
	}
	return fmt.Sprintf("TopN %d by %s", n.N, strings.Join(parts, ", "))
}

// Distinct appends duplicate elimination to the plan.
func (p *Plan) Distinct() *Plan {
	return &Plan{node: &DistinctNode{Child: p.node}}
}

// TopN appends a heap-based top-N to the plan.
func (p *Plan) TopN(n int, keys ...SortKey) *Plan {
	return &Plan{node: &TopNNode{Child: p.node, Keys: keys, N: n}}
}

// rowKey renders a row for duplicate detection.
func rowKey(row []Value) string {
	parts := make([]string, len(row))
	for i, v := range row {
		parts[i] = v.String()
	}
	return strings.Join(parts, "\x00")
}

// --- schema inference (extends OutputSchema's switch via dispatch) ---

func distinctTopNSchema(db *DB, n Node) (*Schema, bool, error) {
	switch node := n.(type) {
	case *DistinctNode:
		s, err := OutputSchema(db, node.Child)
		return s, true, err
	case *TopNNode:
		s, err := OutputSchema(db, node.Child)
		if err != nil {
			return nil, true, err
		}
		if node.N < 0 {
			return nil, true, fmt.Errorf("vdb: negative top-N %d", node.N)
		}
		if len(node.Keys) == 0 {
			return nil, true, fmt.Errorf("vdb: top-N needs sort keys")
		}
		for _, k := range node.Keys {
			if _, err := s.IndexOf(k.Col); err != nil {
				return nil, true, fmt.Errorf("vdb: top-N key: %w", err)
			}
		}
		return s, true, nil
	}
	return nil, false, nil
}

// --- column engine execution ---

func (e ColumnEngine) execDistinct(ctx *ExecContext, node *DistinctNode) (*Table, error) {
	child, err := e.exec(ctx, node.Child)
	if err != nil {
		return nil, err
	}
	n := child.NumRows()
	ctx.chargeValueWork(n*len(child.Cols), hwsim.OpAggregate)
	ctx.chargeRandomMemory(n, 1<<20)
	seen := make(map[string]bool, n)
	var sel []int
	for i := 0; i < n; i++ {
		k := rowKey(child.Row(i))
		if !seen[k] {
			seen[k] = true
			sel = append(sel, i)
		}
	}
	return gatherTable(ctx, child, sel, hwsim.OpAggregate, "distinct")
}

// topHeap is a max-heap of row indices under the inverted comparator, so
// the root is the WORST of the current top-N and pops first.
type topHeap struct {
	idx  []int
	less func(a, b int) bool // true when row a ranks before row b
}

func (h *topHeap) Len() int           { return len(h.idx) }
func (h *topHeap) Less(i, j int) bool { return h.less(h.idx[j], h.idx[i]) }
func (h *topHeap) Swap(i, j int)      { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *topHeap) Push(x any)         { h.idx = append(h.idx, x.(int)) }
func (h *topHeap) Pop() any {
	old := h.idx
	n := len(old)
	x := old[n-1]
	h.idx = old[:n-1]
	return x
}

func (e ColumnEngine) execTopN(ctx *ExecContext, node *TopNNode) (*Table, error) {
	child, err := e.exec(ctx, node.Child)
	if err != nil {
		return nil, err
	}
	n := child.NumRows()
	keyCols := make([]*Column, len(node.Keys))
	for i, k := range node.Keys {
		keyCols[i], err = child.Column(k.Col)
		if err != nil {
			return nil, err
		}
	}
	limit := node.N
	if limit > n {
		limit = n
	}
	// Heap maintenance costs ~log(limit) per row instead of log(n).
	ctx.chargeValueWork(n*log2ceil(limit+1)*len(node.Keys), hwsim.OpSort)

	less := func(a, b int) bool { return lessByKeys(keyCols, node.Keys, a, b) }
	h := &topHeap{less: less}
	heap.Init(h)
	for i := 0; i < n; i++ {
		if h.Len() < limit {
			heap.Push(h, i)
		} else if limit > 0 && less(i, h.idx[0]) {
			h.idx[0] = i
			heap.Fix(h, 0)
		}
	}
	// Drain in reverse rank order, then reverse for ascending output.
	sel := make([]int, h.Len())
	for i := len(sel) - 1; i >= 0; i-- {
		sel[i] = heap.Pop(h).(int)
	}
	return gatherTable(ctx, child, sel, hwsim.OpSort, "topn")
}

// --- row engine execution ---

type distinctIter struct {
	ctx   *ExecContext
	child rowIter
	seen  map[string]bool
	st    opStats
}

func (it *distinctIter) Open() error {
	it.seen = make(map[string]bool)
	return it.child.Open()
}

func (it *distinctIter) Next() ([]Value, bool, error) {
	for {
		row, ok, err := it.child.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		dup := false
		charge(it.ctx, &it.st, func() {
			it.ctx.chargeTupleOverhead(1, hwsim.OpAggregate)
			k := rowKey(row)
			dup = it.seen[k]
			it.seen[k] = true
		})
		if !dup {
			it.st.rows++
			return row, true, nil
		}
	}
}

func (it *distinctIter) Close()              { it.child.Close() }
func (it *distinctIter) stats() *opStats     { return &it.st }
func (it *distinctIter) children() []rowIter { return []rowIter{it.child} }

type topNIter struct {
	ctx    *ExecContext
	child  rowIter
	keys   []SortKey
	keyIdx []int
	n      int
	rows   [][]Value
	idx    int
	st     opStats
}

func (it *topNIter) Open() error {
	if err := it.child.Open(); err != nil {
		return err
	}
	less := func(a, b []Value) bool {
		for i, k := range it.keys {
			va, vb := a[it.keyIdx[i]], b[it.keyIdx[i]]
			if va.Equal(vb) {
				continue
			}
			if k.Desc {
				return vb.Less(va)
			}
			return va.Less(vb)
		}
		return false
	}
	h := &rowHeap{less: less}
	heap.Init(h)
	for {
		row, ok, err := it.child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		charge(it.ctx, &it.st, func() {
			it.ctx.chargeTupleOverhead(1, hwsim.OpSort)
			if h.Len() < it.n {
				heap.Push(h, row)
			} else if it.n > 0 && less(row, h.rows[0]) {
				h.rows[0] = row
				heap.Fix(h, 0)
			}
		})
	}
	it.rows = make([][]Value, h.Len())
	for i := len(it.rows) - 1; i >= 0; i-- {
		it.rows[i] = heap.Pop(h).([]Value)
	}
	return nil
}

func (it *topNIter) Next() ([]Value, bool, error) {
	if it.idx >= len(it.rows) {
		return nil, false, nil
	}
	row := it.rows[it.idx]
	it.idx++
	it.st.rows++
	return row, true, nil
}

func (it *topNIter) Close()              { it.child.Close() }
func (it *topNIter) stats() *opStats     { return &it.st }
func (it *topNIter) children() []rowIter { return []rowIter{it.child} }

// rowHeap is a max-heap of rows (root = worst of the kept top-N).
type rowHeap struct {
	rows [][]Value
	less func(a, b []Value) bool
}

func (h *rowHeap) Len() int           { return len(h.rows) }
func (h *rowHeap) Less(i, j int) bool { return h.less(h.rows[j], h.rows[i]) }
func (h *rowHeap) Swap(i, j int)      { h.rows[i], h.rows[j] = h.rows[j], h.rows[i] }
func (h *rowHeap) Push(x any)         { h.rows = append(h.rows, x.([]Value)) }
func (h *rowHeap) Pop() any {
	old := h.rows
	n := len(old)
	x := old[n-1]
	h.rows = old[:n-1]
	return x
}
