package vdb

// BufferManager tracks which base tables are resident in the (simulated)
// buffer pool / filesystem cache. It is the mechanism behind the paper's
// hot-vs-cold distinction:
//
//   - FlushAll models the cold-run preparation ("a system reboot or running
//     an application that accesses sufficient benchmark-irrelevant data to
//     flush filesystem caches");
//   - a table becomes resident the first time a scan touches it, so a
//     repeated query runs hot.
type BufferManager struct {
	resident map[string]bool
}

// NewBufferManager starts with everything cold.
func NewBufferManager() *BufferManager {
	return &BufferManager{resident: make(map[string]bool)}
}

// Resident reports whether the named table is cached.
func (b *BufferManager) Resident(table string) bool { return b.resident[table] }

// MarkResident records that the table has been read into the cache.
func (b *BufferManager) MarkResident(table string) { b.resident[table] = true }

// FlushAll evicts everything: the next scan of any table pays disk I/O.
func (b *BufferManager) FlushAll() {
	for k := range b.resident {
		delete(b.resident, k)
	}
}

// WarmAll marks every named table resident without charging I/O — used to
// set up an explicitly hot state.
func (b *BufferManager) WarmAll(tables []string) {
	for _, t := range tables {
		b.resident[t] = true
	}
}
