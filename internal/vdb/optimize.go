package vdb

import "fmt"

// Optimize rewrites a logical plan into an equivalent one that does less
// work:
//
//   - adjacent filters fuse into one conjunctive filter;
//   - a filter above a join is pushed to the join input whose columns it
//     references (smaller build/probe sides);
//   - a filter above a projection of plain column renames is pushed below
//     it (filter before materializing).
//
// The rewriter is semantics-preserving: the test suite checks optimized and
// unoptimized plans produce identical results on both engines. It matters
// for the paper's fairness chapter — comparing an optimized prototype
// against an unoptimized system is an apples-to-oranges comparison, so the
// optimization step must be explicit and reportable (Optimize returns the
// applied rewrites).
func Optimize(db *DB, n Node) (Node, []string, error) {
	if _, err := OutputSchema(db, n); err != nil {
		return nil, nil, err
	}
	var applied []string
	out, err := rewrite(db, n, &applied)
	if err != nil {
		return nil, nil, err
	}
	return out, applied, nil
}

func rewrite(db *DB, n Node, applied *[]string) (Node, error) {
	// Rewrite children first (bottom-up).
	switch node := n.(type) {
	case *ScanNode:
		return node, nil
	case *FilterNode:
		child, err := rewrite(db, node.Child, applied)
		if err != nil {
			return nil, err
		}
		return rewriteFilter(db, &FilterNode{Child: child, Pred: node.Pred}, applied)
	case *ProjectNode:
		child, err := rewrite(db, node.Child, applied)
		if err != nil {
			return nil, err
		}
		return &ProjectNode{Child: child, Exprs: node.Exprs, Names: node.Names}, nil
	case *JoinNode:
		l, err := rewrite(db, node.Left, applied)
		if err != nil {
			return nil, err
		}
		r, err := rewrite(db, node.Right, applied)
		if err != nil {
			return nil, err
		}
		return &JoinNode{Left: l, Right: r, LeftKey: node.LeftKey, RightKey: node.RightKey}, nil
	case *AggNode:
		child, err := rewrite(db, node.Child, applied)
		if err != nil {
			return nil, err
		}
		return &AggNode{Child: child, GroupBy: node.GroupBy, Aggs: node.Aggs}, nil
	case *SortNode:
		child, err := rewrite(db, node.Child, applied)
		if err != nil {
			return nil, err
		}
		return &SortNode{Child: child, Keys: node.Keys}, nil
	case *LimitNode:
		child, err := rewrite(db, node.Child, applied)
		if err != nil {
			return nil, err
		}
		return &LimitNode{Child: child, N: node.N}, nil
	case *DistinctNode:
		child, err := rewrite(db, node.Child, applied)
		if err != nil {
			return nil, err
		}
		return &DistinctNode{Child: child}, nil
	case *TopNNode:
		child, err := rewrite(db, node.Child, applied)
		if err != nil {
			return nil, err
		}
		return &TopNNode{Child: child, Keys: node.Keys, N: node.N}, nil
	default:
		return nil, fmt.Errorf("vdb: optimizer: unknown node %T", n)
	}
}

// rewriteFilter applies the filter-specific rules to a filter whose child
// is already rewritten.
func rewriteFilter(db *DB, f *FilterNode, applied *[]string) (Node, error) {
	switch child := f.Child.(type) {
	case *FilterNode:
		// Fuse: Filter(p, Filter(q, x)) -> Filter(p AND q, x).
		*applied = append(*applied, "fused adjacent filters")
		return rewriteFilter(db, &FilterNode{Child: child.Child, Pred: And(child.Pred, f.Pred)}, applied)

	case *JoinNode:
		cols := exprColumns(f.Pred)
		ls, err := OutputSchema(db, child.Left)
		if err != nil {
			return nil, err
		}
		rs, err := OutputSchema(db, child.Right)
		if err != nil {
			return nil, err
		}
		if allIn(cols, ls) {
			*applied = append(*applied, fmt.Sprintf("pushed filter %s below join (left side)", f.Pred))
			left, err := rewriteFilter(db, &FilterNode{Child: child.Left, Pred: f.Pred}, applied)
			if err != nil {
				return nil, err
			}
			return &JoinNode{Left: left, Right: child.Right, LeftKey: child.LeftKey, RightKey: child.RightKey}, nil
		}
		if allIn(cols, rs) {
			*applied = append(*applied, fmt.Sprintf("pushed filter %s below join (right side)", f.Pred))
			right, err := rewriteFilter(db, &FilterNode{Child: child.Right, Pred: f.Pred}, applied)
			if err != nil {
				return nil, err
			}
			return &JoinNode{Left: child.Left, Right: right, LeftKey: child.LeftKey, RightKey: child.RightKey}, nil
		}
		return f, nil

	case *ProjectNode:
		// Push below a projection only when every column the predicate
		// uses is a plain rename of a child column.
		renames := map[string]string{} // output name -> input column
		for i, e := range child.Exprs {
			if ref, ok := e.(ColRef); ok {
				renames[child.Names[i]] = ref.Name
			}
		}
		cols := exprColumns(f.Pred)
		mapped := map[string]string{}
		for c := range cols {
			src, ok := renames[c]
			if !ok {
				return f, nil // predicate uses a computed column
			}
			mapped[c] = src
		}
		*applied = append(*applied, fmt.Sprintf("pushed filter %s below projection", f.Pred))
		pushed, err := rewriteFilter(db, &FilterNode{
			Child: child.Child,
			Pred:  renameColumns(f.Pred, mapped),
		}, applied)
		if err != nil {
			return nil, err
		}
		return &ProjectNode{Child: pushed, Exprs: child.Exprs, Names: child.Names}, nil

	default:
		return f, nil
	}
}

// exprColumns collects the column names an expression references.
func exprColumns(e Expr) map[string]bool {
	out := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch ex := e.(type) {
		case ColRef:
			out[ex.Name] = true
		case ArithExpr:
			walk(ex.L)
			walk(ex.R)
		case CmpExpr:
			walk(ex.L)
			walk(ex.R)
		case BoolExpr:
			walk(ex.L)
			if ex.R != nil {
				walk(ex.R)
			}
		case LikeExpr:
			walk(ex.Operand)
		}
	}
	walk(e)
	return out
}

func allIn(cols map[string]bool, s *Schema) bool {
	for c := range cols {
		if _, err := s.IndexOf(c); err != nil {
			return false
		}
	}
	return len(cols) > 0
}

// renameColumns rewrites column references per the mapping (identity for
// unmapped names).
func renameColumns(e Expr, mapping map[string]string) Expr {
	switch ex := e.(type) {
	case ColRef:
		if src, ok := mapping[ex.Name]; ok {
			return ColRef{Name: src}
		}
		return ex
	case ConstExpr:
		return ex
	case ArithExpr:
		return ArithExpr{Op: ex.Op, L: renameColumns(ex.L, mapping), R: renameColumns(ex.R, mapping)}
	case CmpExpr:
		return CmpExpr{Op: ex.Op, L: renameColumns(ex.L, mapping), R: renameColumns(ex.R, mapping)}
	case BoolExpr:
		out := BoolExpr{Op: ex.Op, L: renameColumns(ex.L, mapping)}
		if ex.R != nil {
			out.R = renameColumns(ex.R, mapping)
		}
		return out
	case LikeExpr:
		return LikeExpr{Kind: ex.Kind, Operand: renameColumns(ex.Operand, mapping), Pattern: ex.Pattern, Negate: ex.Negate}
	default:
		return ex
	}
}
