package vdb

import (
	"fmt"
	"sort"

	"repro/internal/hwsim"
)

// ColumnEngine executes plans column-at-a-time with full materialization,
// the MonetDB-style execution model: every operator consumes whole columns
// and produces whole columns. Per-tuple interpretation overhead is absent;
// the dominant simulated cost is data movement (reading and writing
// materialized intermediates), which reproduces the right half of the
// paper's profiling figure.
type ColumnEngine struct{}

// Name implements Engine.
func (ColumnEngine) Name() string { return "column-at-a-time" }

// Run implements Engine.
func (e ColumnEngine) Run(ctx *ExecContext, plan Node) (*Table, error) {
	if _, err := OutputSchema(ctx.DB, plan); err != nil {
		return nil, err
	}
	return e.exec(ctx, plan)
}

func (e ColumnEngine) exec(ctx *ExecContext, n Node) (res *Table, err error) {
	span := ctx.Profiler.Begin(n.Describe())
	defer func() {
		rows := 0
		if res != nil {
			rows = res.NumRows()
		}
		ctx.Profiler.End(span, rows)
	}()

	switch node := n.(type) {
	case *ScanNode:
		return e.execScan(ctx, node)
	case *FilterNode:
		return e.execFilter(ctx, node)
	case *ProjectNode:
		return e.execProject(ctx, node)
	case *JoinNode:
		return e.execJoin(ctx, node)
	case *AggNode:
		return e.execAgg(ctx, node)
	case *SortNode:
		return e.execSort(ctx, node)
	case *LimitNode:
		child, err := e.exec(ctx, node.Child)
		if err != nil {
			return nil, err
		}
		return limitTable(child, node.N)
	case *DistinctNode:
		return e.execDistinct(ctx, node)
	case *TopNNode:
		return e.execTopN(ctx, node)
	default:
		return nil, fmt.Errorf("vdb: column engine: unknown node %T", n)
	}
}

func (e ColumnEngine) execScan(ctx *ExecContext, node *ScanNode) (*Table, error) {
	t, err := ctx.DB.Table(node.Table)
	if err != nil {
		return nil, err
	}
	ctx.chargeTableLoad(t)
	cols := t.Cols
	if len(node.Cols) > 0 {
		cols = make([]*Column, 0, len(node.Cols))
		for _, name := range node.Cols {
			c, err := t.Column(name)
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
		}
	}
	n := t.NumRows()
	for _, c := range cols {
		ctx.chargeValueWork(n, hwsim.OpScan)
		ctx.chargeScanMemory(n, c.WidthBytes())
	}
	return &Table{Name: node.Table, Cols: cols}, nil
}

func (e ColumnEngine) execFilter(ctx *ExecContext, node *FilterNode) (*Table, error) {
	child, err := e.exec(ctx, node.Child)
	if err != nil {
		return nil, err
	}
	n := child.NumRows()
	ctx.chargeValueWork(n*exprNodes(node.Pred), hwsim.OpFilter)
	ctx.chargeScanMemory(n*exprNodes(node.Pred), 8)
	sel, err := selectRows(node.Pred, child)
	if err != nil {
		return nil, err
	}
	return gatherTable(ctx, child, sel, hwsim.OpFilter, "filter")
}

// selectRows evaluates a predicate column-at-a-time and returns the
// selection vector of matching row indices — the MonetDB "candidate list".
func selectRows(pred Expr, t *Table) ([]int, error) {
	c, err := EvalColumn(pred, t)
	if err != nil {
		return nil, err
	}
	var sel []int
	switch c.Type {
	case TInt:
		for i, v := range c.Ints {
			if v != 0 {
				sel = append(sel, i)
			}
		}
	case TFloat:
		for i, v := range c.Floats {
			if v != 0 {
				sel = append(sel, i)
			}
		}
	default:
		return nil, fmt.Errorf("vdb: string predicate result")
	}
	return sel, nil
}

// gatherTable materializes the selected rows of every column — the data
// movement the column-at-a-time model pays instead of per-tuple overhead.
func gatherTable(ctx *ExecContext, t *Table, sel []int, op hwsim.OpClass, name string) (*Table, error) {
	cols := make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = c.Gather(sel)
		// Read source + write destination.
		ctx.chargeValueWork(len(sel), op)
		ctx.chargeScanMemory(2*len(sel), c.WidthBytes())
	}
	return NewTable(name, cols...)
}

func (e ColumnEngine) execProject(ctx *ExecContext, node *ProjectNode) (*Table, error) {
	child, err := e.exec(ctx, node.Child)
	if err != nil {
		return nil, err
	}
	n := child.NumRows()
	cols := make([]*Column, len(node.Exprs))
	for i, expr := range node.Exprs {
		ctx.chargeValueWork(n*exprNodes(expr), hwsim.OpProject)
		ctx.chargeScanMemory(n*exprNodes(expr), 8)
		c, err := EvalColumn(expr, child)
		if err != nil {
			return nil, err
		}
		// Column references share storage; computed columns were
		// materialized by EvalColumn (write traffic charged above).
		out := *c
		out.Name = node.Names[i]
		cols[i] = &out
	}
	return NewTable("project", cols...)
}

func (e ColumnEngine) execJoin(ctx *ExecContext, node *JoinNode) (*Table, error) {
	left, err := e.exec(ctx, node.Left)
	if err != nil {
		return nil, err
	}
	right, err := e.exec(ctx, node.Right)
	if err != nil {
		return nil, err
	}
	lk, err := left.Column(node.LeftKey)
	if err != nil {
		return nil, err
	}
	rk, err := right.Column(node.RightKey)
	if err != nil {
		return nil, err
	}

	// Build on the right (whole column), probe with the left.
	nRight := right.NumRows()
	ctx.chargeValueWork(nRight, hwsim.OpJoin)
	ctx.chargeRandomMemory(nRight, int(right.ByteSize()))
	build := make(map[string][]int, nRight)
	for i := 0; i < nRight; i++ {
		k := rk.Value(i).String()
		build[k] = append(build[k], i)
	}

	nLeft := left.NumRows()
	ctx.chargeValueWork(nLeft, hwsim.OpJoin)
	ctx.chargeRandomMemory(nLeft, int(right.ByteSize()))
	var selL, selR []int
	for i := 0; i < nLeft; i++ {
		for _, j := range build[lk.Value(i).String()] {
			selL = append(selL, i)
			selR = append(selR, j)
		}
	}

	leftOut, err := gatherTable(ctx, left, selL, hwsim.OpJoin, "join")
	if err != nil {
		return nil, err
	}
	rightOut, err := gatherTable(ctx, right, selR, hwsim.OpJoin, "join")
	if err != nil {
		return nil, err
	}
	return NewTable("join", append(leftOut.Cols, rightOut.Cols...)...)
}

func (e ColumnEngine) execAgg(ctx *ExecContext, node *AggNode) (*Table, error) {
	child, err := e.exec(ctx, node.Child)
	if err != nil {
		return nil, err
	}
	childSchema := SchemaOf(child)
	gs, err := newGroupSet(node, childSchema)
	if err != nil {
		return nil, err
	}

	// Evaluate every aggregate input column-at-a-time first...
	inputs := make([]*Column, len(node.Aggs))
	n := child.NumRows()
	for i, a := range node.Aggs {
		if a.Expr == nil {
			continue
		}
		ctx.chargeValueWork(n*exprNodes(a.Expr), hwsim.OpAggregate)
		ctx.chargeScanMemory(n*exprNodes(a.Expr), 8)
		inputs[i], err = EvalColumn(a.Expr, child)
		if err != nil {
			return nil, err
		}
	}
	groupCols := make([]*Column, len(node.GroupBy))
	for i, g := range node.GroupBy {
		groupCols[i], err = child.Column(g)
		if err != nil {
			return nil, err
		}
	}

	// ...then fold rows into groups. Grouped aggregation probes a hash
	// table per row; a global aggregate folds into registers and pays no
	// random memory.
	ctx.chargeValueWork(n*(len(node.Aggs)+len(node.GroupBy)), hwsim.OpAggregate)
	if len(node.GroupBy) > 0 {
		ctx.chargeRandomMemory(n, 1<<20)
	}
	keys := make([]Value, len(groupCols))
	for i := 0; i < n; i++ {
		for j, c := range groupCols {
			keys[j] = c.Value(i)
		}
		g := gs.getOrCreate(keys)
		for j := range node.Aggs {
			if inputs[j] == nil {
				g.accs[j].addCount()
			} else {
				g.accs[j].add(inputs[j].Value(i))
			}
		}
	}
	outSchema, err := OutputSchema(ctx.DB, node)
	if err != nil {
		return nil, err
	}
	return gs.emit(outSchema, "agg")
}

func (e ColumnEngine) execSort(ctx *ExecContext, node *SortNode) (*Table, error) {
	child, err := e.exec(ctx, node.Child)
	if err != nil {
		return nil, err
	}
	n := child.NumRows()
	keyCols := make([]*Column, len(node.Keys))
	for i, k := range node.Keys {
		keyCols[i], err = child.Column(k.Col)
		if err != nil {
			return nil, err
		}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// n log n comparisons of sort work.
	ctx.chargeValueWork(n*log2ceil(n)*len(node.Keys), hwsim.OpSort)
	sort.SliceStable(idx, func(a, b int) bool {
		return lessByKeys(keyCols, node.Keys, idx[a], idx[b])
	})
	return gatherTable(ctx, child, idx, hwsim.OpSort, "sort")
}

// lessByKeys orders rows a, b by the sort keys.
func lessByKeys(keyCols []*Column, keys []SortKey, a, b int) bool {
	for i, k := range keys {
		va, vb := keyCols[i].Value(a), keyCols[i].Value(b)
		if va.Equal(vb) {
			continue
		}
		if k.Desc {
			return vb.Less(va)
		}
		return va.Less(vb)
	}
	return false
}

func limitTable(t *Table, n int) (*Table, error) {
	if n >= t.NumRows() {
		return t, nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	cols := make([]*Column, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = c.Gather(idx)
	}
	return NewTable("limit", cols...)
}

func log2ceil(n int) int {
	if n <= 1 {
		return 1
	}
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
