package vdb

import (
	"strings"
	"testing"

	"repro/internal/hwsim"
)

func optimizeAndCompare(t *testing.T, db *DB, plan Node) (Node, []string) {
	t.Helper()
	opt, applied, err := Optimize(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	// Semantics preserved on both engines.
	for _, e := range engines() {
		orig, err := Run(NewContext(db), e, plan)
		if err != nil {
			t.Fatal(err)
		}
		rew, err := Run(NewContext(db), e, opt)
		if err != nil {
			t.Fatalf("%s on optimized plan: %v\n%s", e.Name(), err, Explain(opt))
		}
		a, b := orig.SortedRows(), rew.SortedRows()
		if len(a) != len(b) {
			t.Fatalf("%s: optimization changed row count %d -> %d", e.Name(), len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				if !a[i][j].Equal(b[i][j]) {
					t.Fatalf("%s: optimization changed results at row %d col %d", e.Name(), i, j)
				}
			}
		}
	}
	return opt, applied
}

func TestOptimizeFusesFilters(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		Filter(Gt(Col("o_total"), Float(50))).
		Filter(Eq(Col("o_status"), Str("open"))).Node()
	opt, applied := optimizeAndCompare(t, db, plan)
	if len(applied) != 1 || !strings.Contains(applied[0], "fused") {
		t.Errorf("applied = %v", applied)
	}
	// One filter remains.
	if _, ok := opt.(*FilterNode); !ok {
		t.Fatalf("root = %T", opt)
	}
	if _, ok := opt.(*FilterNode).Child.(*ScanNode); !ok {
		t.Errorf("fused filter should sit on the scan:\n%s", Explain(opt))
	}
}

func TestOptimizePushesFilterBelowJoin(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		Join(From(Scan("cust").Node()), "o_cust", "c_id").
		Filter(Eq(Col("c_name"), Str("alice"))).Node()
	opt, applied := optimizeAndCompare(t, db, plan)
	found := false
	for _, a := range applied {
		if strings.Contains(a, "below join (right side)") {
			found = true
		}
	}
	if !found {
		t.Errorf("applied = %v", applied)
	}
	join, ok := opt.(*JoinNode)
	if !ok {
		t.Fatalf("root = %T:\n%s", opt, Explain(opt))
	}
	if _, ok := join.Right.(*FilterNode); !ok {
		t.Errorf("filter should be on the join's right input:\n%s", Explain(opt))
	}
	// Left-side predicate goes left.
	plan2 := Scan("orders").
		Join(From(Scan("cust").Node()), "o_cust", "c_id").
		Filter(Gt(Col("o_total"), Float(100))).Node()
	opt2, applied2 := optimizeAndCompare(t, db, plan2)
	join2 := opt2.(*JoinNode)
	if _, ok := join2.Left.(*FilterNode); !ok {
		t.Errorf("filter should be on the join's left input: %v\n%s", applied2, Explain(opt2))
	}
}

func TestOptimizeLeavesCrossSidePredicates(t *testing.T) {
	db := testDB(t)
	// Predicate referencing both sides cannot be pushed.
	plan := Scan("orders").
		Join(From(Scan("cust").Node()), "o_cust", "c_id").
		Filter(Ne(Col("o_status"), Col("c_name"))).Node()
	opt, applied := optimizeAndCompare(t, db, plan)
	if len(applied) != 0 {
		t.Errorf("applied = %v, want none", applied)
	}
	if _, ok := opt.(*FilterNode); !ok {
		t.Errorf("filter should remain at the root:\n%s", Explain(opt))
	}
}

func TestOptimizePushesFilterBelowRenameProjection(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		Project([]string{"status", "total"}, Col("o_status"), Col("o_total")).
		Filter(Eq(Col("status"), Str("open"))).Node()
	opt, applied := optimizeAndCompare(t, db, plan)
	found := false
	for _, a := range applied {
		if strings.Contains(a, "below projection") {
			found = true
		}
	}
	if !found {
		t.Errorf("applied = %v", applied)
	}
	proj, ok := opt.(*ProjectNode)
	if !ok {
		t.Fatalf("root = %T", opt)
	}
	filt, ok := proj.Child.(*FilterNode)
	if !ok {
		t.Fatalf("project child = %T:\n%s", proj.Child, Explain(opt))
	}
	// Pushed predicate references the ORIGINAL column name.
	if !strings.Contains(filt.Pred.String(), "o_status") {
		t.Errorf("pushed predicate = %s", filt.Pred)
	}
}

func TestOptimizeKeepsFilterOnComputedColumns(t *testing.T) {
	db := testDB(t)
	plan := Scan("orders").
		Project([]string{"doubled"}, Mul(Col("o_total"), Float(2))).
		Filter(Gt(Col("doubled"), Float(100))).Node()
	_, applied := optimizeAndCompare(t, db, plan)
	for _, a := range applied {
		if strings.Contains(a, "below projection") {
			t.Errorf("filter on computed column must not be pushed: %v", applied)
		}
	}
}

func TestOptimizeTPCHQueriesEquivalent(t *testing.T) {
	// Optimizing every TPC-H analog preserves results. (Uses the test
	// catalog builder in sim_test.go at a small size for speed.)
	db := bigDB(t, 2000)
	plan := Scan("big").
		Filter(Gt(Col("val"), Float(10))).
		Filter(Lt(Col("val"), Float(120))).
		GroupBy([]string{"grp"}, Sum(Col("val"), "s"), Count("n")).
		OrderBy(SortKey{Col: "s", Desc: true}).Node()
	_, applied := optimizeAndCompare(t, db, plan)
	if len(applied) == 0 {
		t.Error("expected at least the filter fusion")
	}
}

func TestOptimizeReducesSimulatedCost(t *testing.T) {
	db := testDB(t)
	// Filter above a join: pushing it shrinks the join input.
	plan := Scan("orders").
		Join(From(Scan("cust").Node()), "o_cust", "c_id").
		Filter(Eq(Col("c_name"), Str("alice"))).Node()
	opt, _, err := Optimize(db, plan)
	if err != nil {
		t.Fatal(err)
	}
	cost := func(n Node) int64 {
		m := hwsim.PentiumM2005
		ctx := NewSimContext(db, &m, hwsim.NewVirtualClock())
		ctx.Buffers.WarmAll(db.TableNames())
		if _, err := Run(ctx, ColumnEngine{}, n); err != nil {
			t.Fatal(err)
		}
		return int64(ctx.Clock.User())
	}
	if co, cu := cost(opt), cost(plan); co >= cu {
		t.Errorf("optimized cost %d should be below unoptimized %d", co, cu)
	}
}

func TestOptimizeValidation(t *testing.T) {
	db := testDB(t)
	if _, _, err := Optimize(db, Scan("nope").Node()); err == nil {
		t.Error("invalid plan should error")
	}
	// All node kinds survive a pass-through rewrite.
	plan := Scan("orders").
		Distinct().
		TopN(3, SortKey{Col: "o_id"}).
		OrderBy(SortKey{Col: "o_id"}).
		Limit(2).
		Aggregate(Count("n")).Node()
	optimizeAndCompare(t, db, plan)
}
