package hwsim

import "fmt"

// Cost decomposes an operation's simulated time into CPU work and memory
// stall — the dissection the paper says plain profilers cannot give you and
// hardware counters can ("Need to dissect CPU & memory access costs").
type Cost struct {
	CPUNs float64
	MemNs float64
}

// TotalNs returns CPU + memory nanoseconds.
func (c Cost) TotalNs() float64 { return c.CPUNs + c.MemNs }

// Add returns the component-wise sum.
func (c Cost) Add(o Cost) Cost { return Cost{CPUNs: c.CPUNs + o.CPUNs, MemNs: c.MemNs + o.MemNs} }

// Scale multiplies both components by f.
func (c Cost) Scale(f float64) Cost { return Cost{CPUNs: c.CPUNs * f, MemNs: c.MemNs * f} }

func (c Cost) String() string {
	return fmt.Sprintf("cpu=%.1fns mem=%.1fns total=%.1fns", c.CPUNs, c.MemNs, c.TotalNs())
}

// ScanCost models a tight sequential scan over n values of elemBytes each
// (the paper's "SELECT MAX(column) FROM table" micro-benchmark).
//
// CPU component: CyclesPerValue per value at the machine's clock.
// Memory component: one innermost-cache-line fill every L1LineBytes /
// elemBytes values. Machines of the memory-wall era had no hardware
// prefetching, so each line fill stalls for the larger of the full DRAM
// latency and the bandwidth time for the line — which is exactly why clock
// speed gains did not translate into scan speed gains. When the data fits
// in L2, the fill costs the L2 hit latency instead.
func (m *Machine) ScanCost(n int, elemBytes int) Cost {
	if n <= 0 || elemBytes <= 0 {
		return Cost{}
	}
	cpu := float64(n) * m.CyclesPerValue * m.CycleNs()

	line := m.L1.LineBytes
	if line <= 0 {
		line = m.L2.LineBytes
	}
	if line <= 0 {
		line = 32
	}
	valuesPerLine := float64(line) / float64(elemBytes)
	if valuesPerLine < 1 {
		valuesPerLine = 1
	}
	lines := float64(n) / valuesPerLine

	totalBytes := n * elemBytes
	var perLine float64
	if m.L2.SizeBytes > 0 && totalBytes <= m.L2.SizeBytes {
		perLine = m.L2.LatencyCycles * m.CycleNs()
	} else {
		latency := m.MemLatencyNs
		bandwidth := float64(line) / m.MemBandwidthBps * 1e9
		perLine = latency
		if bandwidth > perLine {
			perLine = bandwidth
		}
	}
	return Cost{CPUNs: cpu, MemNs: lines * perLine}
}

// ScanNsPerValue returns the per-iteration cost of an out-of-cache scan —
// the y-axis of the memory-wall figure. The working set is sized to exceed
// the machine's L2 severalfold so the scan runs from DRAM.
func (m *Machine) ScanNsPerValue(elemBytes int) Cost {
	n := 1 << 20
	if elemBytes > 0 {
		for n*elemBytes < 4*m.L2.SizeBytes {
			n *= 2
		}
	}
	return m.ScanCost(n, elemBytes).Scale(1.0 / float64(n))
}

// RandomAccessCost models n dependent random accesses into a working set of
// wsBytes: every access misses when the working set exceeds L2 and pays the
// full memory latency; inside L2 it pays the L2 latency; inside L1 the L1
// latency.
func (m *Machine) RandomAccessCost(n int, wsBytes int) Cost {
	if n <= 0 {
		return Cost{}
	}
	cpu := float64(n) * m.CyclesPerValue * m.CycleNs()
	var perAccess float64
	switch {
	case wsBytes <= m.L1.SizeBytes:
		perAccess = m.L1.LatencyCycles * m.CycleNs()
	case m.L2.SizeBytes > 0 && wsBytes <= m.L2.SizeBytes:
		perAccess = m.L2.LatencyCycles * m.CycleNs()
	default:
		perAccess = m.MemLatencyNs
	}
	return Cost{CPUNs: cpu, MemNs: float64(n) * perAccess}
}

// DiskReadNs models reading `bytes` sequentially from disk: one seek plus
// transfer at the sequential rate. This is the I/O-wait component that makes
// cold runs' real time exceed their user time.
func (m *Machine) DiskReadNs(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	seek := m.DiskSeekMs * 1e6
	transfer := float64(bytes) / (m.DiskMBps * 1e6) * 1e9
	return seek + transfer
}

// Sink identifies where query result output goes — the paper's T1 shows the
// choice is measurable: "Be aware what you measure!"
type Sink int

const (
	// SinkServerFile discards output on the server side (times the
	// server only).
	SinkServerFile Sink = iota
	// SinkClientFile ships the result to a client that writes a file.
	SinkClientFile
	// SinkClientTerminal ships the result to a client that renders it on
	// a terminal.
	SinkClientTerminal
)

func (s Sink) String() string {
	switch s {
	case SinkServerFile:
		return "server/file"
	case SinkClientFile:
		return "client/file"
	case SinkClientTerminal:
		return "client/terminal"
	default:
		return fmt.Sprintf("Sink(%d)", int(s))
	}
}

// OutputNs returns the nanoseconds charged for emitting `bytes` of result
// output to the given sink. Server-side file writes are charged as I/O
// (they inflate real but not user time); client shipping and rendering are
// charged on top.
func (m *Machine) OutputNs(s Sink, bytes int64) (cpuNs, ioNs float64) {
	if bytes <= 0 {
		return 0, 0
	}
	b := float64(bytes)
	switch s {
	case SinkServerFile:
		return 0, b * m.FileNsPerByte
	case SinkClientFile:
		return 0, b * (m.FileNsPerByte + m.ClientNsPerByte)
	case SinkClientTerminal:
		return 0, b * (m.FileNsPerByte + m.ClientNsPerByte + m.TerminalNsPerByte)
	default:
		return 0, 0
	}
}
