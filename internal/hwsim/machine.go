// Package hwsim is the simulated hardware substrate under every timing
// experiment in this repository. The paper measured real machines (a
// Pentium M laptop, and for the memory-wall figure a series of 1990s
// workstations); we have none of them, so hwsim models each machine as a
// cost profile — CPU clock and work per operation, cache hierarchy, memory
// latency and bandwidth, disk, and output sinks — and charges those costs
// to a deterministic VirtualClock. That keeps every paper experiment
// exactly repeatable (itself a core principle of the paper) while
// preserving the effects the experiments demonstrate: hot/cold gaps, user
// vs real decomposition, terminal-output overheads, compiler-flag factors,
// and the memory wall.
package hwsim

import "fmt"

// Cache models one cache level.
type Cache struct {
	SizeBytes     int
	LineBytes     int
	LatencyCycles float64 // access latency on hit at this level
}

// Machine is a hardware cost profile. All costs ultimately reduce to
// nanoseconds charged to a VirtualClock.
type Machine struct {
	Name    string
	Year    int
	CPU     string
	ClockHz float64

	// CyclesPerValue is the CPU work a tight scan loop spends per value
	// (load, compare, branch); newer superscalar machines spend fewer.
	CyclesPerValue float64
	// CyclesPerTupleOverhead is the interpretation overhead a
	// tuple-at-a-time engine pays per tuple per operator (the MySQL-vs-
	// MonetDB contrast in the paper's profiling figure).
	CyclesPerTupleOverhead float64

	L1, L2 Cache

	MemLatencyNs    float64 // DRAM access latency (per cache-line miss)
	MemBandwidthBps float64 // sustained sequential bandwidth

	DiskSeekMs float64 // average seek+rotation
	DiskMBps   float64 // sequential transfer rate

	// Output sink costs (paper T1: where the result output goes matters).
	FileNsPerByte     float64 // writing the result to a file
	TerminalNsPerByte float64 // rendering the result on a terminal
	ClientNsPerByte   float64 // shipping the result server -> client
}

// Validate reports configuration errors that would produce nonsense costs.
func (m *Machine) Validate() error {
	switch {
	case m.ClockHz <= 0:
		return fmt.Errorf("hwsim: machine %q: ClockHz must be positive", m.Name)
	case m.CyclesPerValue <= 0:
		return fmt.Errorf("hwsim: machine %q: CyclesPerValue must be positive", m.Name)
	case m.MemLatencyNs < 0 || m.MemBandwidthBps <= 0:
		return fmt.Errorf("hwsim: machine %q: invalid memory parameters", m.Name)
	case m.L2.LineBytes <= 0:
		return fmt.Errorf("hwsim: machine %q: L2 line size must be positive", m.Name)
	case m.DiskMBps <= 0:
		return fmt.Errorf("hwsim: machine %q: DiskMBps must be positive", m.Name)
	}
	return nil
}

// CycleNs returns the duration of one CPU cycle in nanoseconds.
func (m *Machine) CycleNs() float64 { return 1e9 / m.ClockHz }

// Spec returns the right-sized hardware description the paper recommends
// (slide 155): vendor/model/clock/caches, memory, disk — no lspci dump.
func (m *Machine) Spec() string {
	return fmt.Sprintf("%s (%d): %s @ %.0f MHz, L1 %dKB, L2 %dKB (%dB lines), mem %.0fns latency / %.1f GB/s, disk %.0f MB/s",
		m.Name, m.Year, m.CPU, m.ClockHz/1e6,
		m.L1.SizeBytes/1024, m.L2.SizeBytes/1024, m.L2.LineBytes,
		m.MemLatencyNs, m.MemBandwidthBps/1e9, m.DiskMBps)
}

// The memory-wall machine series (paper slides 46/51). Parameters are
// calibrated so a tight in-memory scan shows the published shape: CPU
// clock improves 10x across the series while elapsed time per iteration
// barely improves, because per-iteration memory cost stays roughly flat.
var (
	// SunLX1992 is the 1992 Sun LX: 50 MHz Sparc.
	SunLX1992 = Machine{
		Name: "Sun LX", Year: 1992, CPU: "Sparc", ClockHz: 50e6,
		CyclesPerValue: 8, CyclesPerTupleOverhead: 100,
		L1:           Cache{SizeBytes: 8 << 10, LineBytes: 16, LatencyCycles: 1},
		L2:           Cache{SizeBytes: 0, LineBytes: 16, LatencyCycles: 1},
		MemLatencyNs: 200, MemBandwidthBps: 80e6,
		DiskSeekMs: 14, DiskMBps: 4,
		FileNsPerByte: 400, TerminalNsPerByte: 4000, ClientNsPerByte: 800,
	}
	// SunUltra1996 is the 1996 Sun Ultra: 200 MHz UltraSparc.
	SunUltra1996 = Machine{
		Name: "Sun Ultra", Year: 1996, CPU: "UltraSparc", ClockHz: 200e6,
		CyclesPerValue: 6, CyclesPerTupleOverhead: 150,
		L1:           Cache{SizeBytes: 16 << 10, LineBytes: 32, LatencyCycles: 1},
		L2:           Cache{SizeBytes: 512 << 10, LineBytes: 32, LatencyCycles: 6},
		MemLatencyNs: 300, MemBandwidthBps: 180e6,
		DiskSeekMs: 11, DiskMBps: 9,
		FileNsPerByte: 200, TerminalNsPerByte: 2500, ClientNsPerByte: 500,
	}
	// SunUltraII1997 is the 1997 Sun Ultra: 296 MHz UltraSparcII.
	SunUltraII1997 = Machine{
		Name: "Sun Ultra II", Year: 1997, CPU: "UltraSparcII", ClockHz: 296e6,
		CyclesPerValue: 6, CyclesPerTupleOverhead: 160,
		L1:           Cache{SizeBytes: 16 << 10, LineBytes: 32, LatencyCycles: 1},
		L2:           Cache{SizeBytes: 1 << 20, LineBytes: 64, LatencyCycles: 7},
		MemLatencyNs: 290, MemBandwidthBps: 250e6,
		DiskSeekMs: 10, DiskMBps: 12,
		FileNsPerByte: 180, TerminalNsPerByte: 2200, ClientNsPerByte: 450,
	}
	// DECAlpha1998 is the 1998 DEC Alpha: 500 MHz.
	DECAlpha1998 = Machine{
		Name: "DEC Alpha", Year: 1998, CPU: "Alpha 21164", ClockHz: 500e6,
		CyclesPerValue: 5, CyclesPerTupleOverhead: 200,
		L1:           Cache{SizeBytes: 8 << 10, LineBytes: 32, LatencyCycles: 1},
		L2:           Cache{SizeBytes: 4 << 20, LineBytes: 64, LatencyCycles: 8},
		MemLatencyNs: 280, MemBandwidthBps: 350e6,
		DiskSeekMs: 9, DiskMBps: 16,
		FileNsPerByte: 150, TerminalNsPerByte: 2000, ClientNsPerByte: 400,
	}
	// Origin2000R12000 is the 2000 SGI Origin 2000: 300 MHz R12000.
	Origin2000R12000 = Machine{
		Name: "Origin 2000", Year: 2000, CPU: "R12000", ClockHz: 300e6,
		CyclesPerValue: 4, CyclesPerTupleOverhead: 220,
		L1: Cache{SizeBytes: 32 << 10, LineBytes: 32, LatencyCycles: 1},
		L2: Cache{SizeBytes: 8 << 20, LineBytes: 128, LatencyCycles: 10},
		// NUMA remote-access latency: the Origin 2000 is slightly
		// SLOWER per scanned value than the 1998 Alpha, the uptick
		// visible at the right edge of the paper's figure.
		MemLatencyNs: 400, MemBandwidthBps: 450e6,
		DiskSeekMs: 8, DiskMBps: 25,
		FileNsPerByte: 120, TerminalNsPerByte: 1800, ClientNsPerByte: 350,
	}

	// PentiumM2005 is the paper's measurement laptop: "1.5 GHz Pentium M
	// (Dothan), 32KB L1 cache, 2MB L2 cache, 2 GB RAM, 5400RPM disk".
	// Its sink costs are calibrated against the paper's T1 table:
	// terminal output costs ~0.63 us/byte more than file output.
	PentiumM2005 = Machine{
		Name: "Laptop", Year: 2005, CPU: "Pentium M (Dothan)", ClockHz: 1.5e9,
		CyclesPerValue: 3, CyclesPerTupleOverhead: 400,
		L1:           Cache{SizeBytes: 32 << 10, LineBytes: 64, LatencyCycles: 3},
		L2:           Cache{SizeBytes: 2 << 20, LineBytes: 64, LatencyCycles: 10},
		MemLatencyNs: 120, MemBandwidthBps: 1.6e9,
		DiskSeekMs: 12, DiskMBps: 35,
		FileNsPerByte: 74, TerminalNsPerByte: 700, ClientNsPerByte: 1,
	}
)

// MemoryWallSeries returns the five machine generations of the paper's
// memory-wall figure, in publication order.
func MemoryWallSeries() []Machine {
	return []Machine{SunLX1992, SunUltra1996, SunUltraII1997, DECAlpha1998, Origin2000R12000}
}
