package hwsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/measure"
)

func TestProfilesValid(t *testing.T) {
	machines := append(MemoryWallSeries(), PentiumM2005)
	for _, m := range machines {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if m.Spec() == "" {
			t.Errorf("%s: empty spec", m.Name)
		}
	}
}

func TestValidateCatchesBadConfig(t *testing.T) {
	bad := []Machine{
		{Name: "no clock", CyclesPerValue: 1, MemBandwidthBps: 1, DiskMBps: 1, L2: Cache{LineBytes: 64}},
		{Name: "no cpv", ClockHz: 1e9, MemBandwidthBps: 1, DiskMBps: 1, L2: Cache{LineBytes: 64}},
		{Name: "no bw", ClockHz: 1e9, CyclesPerValue: 1, DiskMBps: 1, L2: Cache{LineBytes: 64}},
		{Name: "no line", ClockHz: 1e9, CyclesPerValue: 1, MemBandwidthBps: 1, DiskMBps: 1},
		{Name: "no disk", ClockHz: 1e9, CyclesPerValue: 1, MemBandwidthBps: 1, L2: Cache{LineBytes: 64}},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", m.Name)
		}
	}
}

// TestMemoryWallShape pins the phenomenon of the paper's figure: across the
// 1992-2000 machine series, CPU clock improves ~10x but the elapsed time
// per scanned value "hardly improves" because the memory component stays
// roughly flat and comes to dominate.
func TestMemoryWallShape(t *testing.T) {
	series := MemoryWallSeries()
	first := series[0].ScanNsPerValue(8)
	last := series[len(series)-1].ScanNsPerValue(8)

	clockRatio := series[len(series)-1].ClockHz / series[0].ClockHz
	if clockRatio < 5 {
		t.Fatalf("clock ratio = %.1f, series should span >= 5x", clockRatio)
	}
	// CPU component improves greatly...
	if cpuRatio := first.CPUNs / last.CPUNs; cpuRatio < 5 {
		t.Errorf("CPU component ratio = %.1f, want >= 5x improvement", cpuRatio)
	}
	// ...but total per-iteration time improves far less than the clock.
	totalRatio := first.TotalNs() / last.TotalNs()
	if totalRatio > clockRatio/2 {
		t.Errorf("total improvement %.1fx too close to clock improvement %.1fx: no memory wall", totalRatio, clockRatio)
	}
	// On the newest machines memory dominates.
	if last.MemNs < last.CPUNs {
		t.Errorf("2000 machine: memory (%.1fns) should dominate CPU (%.1fns)", last.MemNs, last.CPUNs)
	}
	// The first machine is CPU-bound instead.
	if first.CPUNs < first.MemNs {
		t.Errorf("1992 machine: CPU (%.1fns) should dominate memory (%.1fns)", first.CPUNs, first.MemNs)
	}
}

func TestScanCostCacheResident(t *testing.T) {
	m := PentiumM2005
	// 1000 * 4B = 4KB fits in L2: memory cost is L2 latency per line.
	inCache := m.ScanCost(1000, 4)
	outCache := Cost{}
	{
		big := m.ScanCost(10<<20, 4)
		outCache = big.Scale(1000.0 / float64(10<<20))
	}
	if inCache.MemNs >= outCache.MemNs {
		t.Errorf("cache-resident scan memory cost %.1f should be below DRAM scan %.1f", inCache.MemNs, outCache.MemNs)
	}
	// Degenerate inputs.
	if c := m.ScanCost(0, 4); c.TotalNs() != 0 {
		t.Errorf("zero rows cost = %v", c)
	}
	if c := m.ScanCost(10, 0); c.TotalNs() != 0 {
		t.Errorf("zero width cost = %v", c)
	}
}

func TestScanCostMonotoneInRows(t *testing.T) {
	m := SunUltra1996
	f := func(aRaw, bRaw uint16) bool {
		a, b := int(aRaw)+1, int(bRaw)+1
		if a > b {
			a, b = b, a
		}
		ca, cb := m.ScanCost(a, 8), m.ScanCost(b, 8)
		return ca.TotalNs() <= cb.TotalNs()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomAccessCostTiers(t *testing.T) {
	m := PentiumM2005
	l1 := m.RandomAccessCost(1000, 16<<10)  // fits L1
	l2 := m.RandomAccessCost(1000, 1<<20)   // fits L2
	mem := m.RandomAccessCost(1000, 64<<20) // DRAM
	if !(l1.MemNs < l2.MemNs && l2.MemNs < mem.MemNs) {
		t.Errorf("latency tiers wrong: L1=%.0f L2=%.0f mem=%.0f", l1.MemNs, l2.MemNs, mem.MemNs)
	}
	if c := m.RandomAccessCost(0, 100); c.TotalNs() != 0 {
		t.Errorf("zero accesses cost = %v", c)
	}
}

func TestDiskReadNs(t *testing.T) {
	m := PentiumM2005
	if got := m.DiskReadNs(0); got != 0 {
		t.Errorf("zero bytes = %v", got)
	}
	// 35 MB at 35 MB/s = 1s transfer + 12ms seek.
	got := m.DiskReadNs(35 << 20)
	wantLo, wantHi := 1.0e9, 1.1e9
	if got < wantLo || got > wantHi {
		t.Errorf("35MB read = %.0fns, want ~1.012e9", got)
	}
	// Seek dominates small reads.
	small := m.DiskReadNs(512)
	if small < m.DiskSeekMs*1e6 {
		t.Errorf("small read %.0fns below seek cost", small)
	}
}

// TestOutputSinkOrdering pins the T1 phenomenon: for the same bytes,
// terminal > client file > server file, and costs scale with size.
func TestOutputSinkOrdering(t *testing.T) {
	m := PentiumM2005
	const small, large = 1300, 1200 << 10 // the paper's 1.3KB and 1.2MB
	for _, bytes := range []int64{small, large} {
		_, server := m.OutputNs(SinkServerFile, bytes)
		_, client := m.OutputNs(SinkClientFile, bytes)
		_, term := m.OutputNs(SinkClientTerminal, bytes)
		if !(server < client && client < term) {
			t.Errorf("%d bytes: sink ordering violated: %g %g %g", bytes, server, client, term)
		}
	}
	// Terminal penalty for 1.2MB must be in the hundreds of ms (paper:
	// 1468ms vs 707ms for Q16), for 1.3KB negligible (3575 vs 3534).
	_, fileL := m.OutputNs(SinkClientFile, large)
	_, termL := m.OutputNs(SinkClientTerminal, large)
	deltaMs := (termL - fileL) / 1e6
	if deltaMs < 300 || deltaMs > 2000 {
		t.Errorf("terminal penalty for 1.2MB = %.0fms, want hundreds of ms", deltaMs)
	}
	_, fileS := m.OutputNs(SinkClientFile, small)
	_, termS := m.OutputNs(SinkClientTerminal, small)
	if (termS-fileS)/1e6 > 50 {
		t.Errorf("terminal penalty for 1.3KB = %.1fms, should be small", (termS-fileS)/1e6)
	}
	if cpu, io := m.OutputNs(SinkServerFile, 0); cpu != 0 || io != 0 {
		t.Error("zero bytes should cost nothing")
	}
	if _, io := m.OutputNs(Sink(99), 100); io != 0 {
		t.Error("unknown sink should cost nothing")
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock()
	c.AdvanceCPU(100)
	c.AdvanceIO(50)
	if c.Now() != 150*time.Nanosecond {
		t.Errorf("now = %v", c.Now())
	}
	if c.User() != 100*time.Nanosecond || c.IOWait() != 50*time.Nanosecond {
		t.Errorf("split = %v/%v", c.User(), c.IOWait())
	}
	c.AdvanceCPU(-10) // ignored
	c.AdvanceIO(-10)  // ignored
	if c.Now() != 150*time.Nanosecond {
		t.Errorf("negative advance changed clock: %v", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("reset failed: %v", c.Now())
	}
}

func TestVirtualClockWithStopwatch(t *testing.T) {
	c := NewVirtualClock()
	sw := measure.NewStopwatch(c)
	c.AdvanceCPU(2e6)
	c.AdvanceIO(3e6)
	s := sw.Sample()
	if s.Real != 5*time.Millisecond || s.User != 2*time.Millisecond || s.IO != 3*time.Millisecond {
		t.Errorf("sample = %+v", s)
	}
}

// TestBuildModeFactors pins the DBG/OPT anecdote: Debug multiplies CPU work
// by class-specific factors in roughly the paper's observed range, while
// Optimized leaves it untouched.
func TestBuildModeFactors(t *testing.T) {
	f := DefaultDebugOverheads
	classes := []OpClass{OpScan, OpFilter, OpJoin, OpAggregate, OpSort, OpProject}
	for _, op := range classes {
		if got := Optimized.Factor(f, op); got != 1 {
			t.Errorf("optimized factor for %v = %g", op, got)
		}
		dbg := Debug.Factor(f, op)
		if dbg < 1.1 || dbg > 2.5 {
			t.Errorf("debug factor for %v = %g, want in [1.1, 2.5]", op, dbg)
		}
		if op.String() == "" {
			t.Errorf("empty OpClass string for %v", int(op))
		}
	}
	if Debug.String() != "DBG" || Optimized.String() != "OPT" {
		t.Error("BuildMode strings")
	}
	if got := Debug.Factor(f, OpClass(42)); got != 1 {
		t.Errorf("unknown class factor = %g", got)
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{CPUNs: 1, MemNs: 2}
	b := Cost{CPUNs: 10, MemNs: 20}
	if got := a.Add(b); got != (Cost{CPUNs: 11, MemNs: 22}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Scale(3); got != (Cost{CPUNs: 3, MemNs: 6}) {
		t.Errorf("Scale = %v", got)
	}
	if a.TotalNs() != 3 {
		t.Errorf("TotalNs = %g", a.TotalNs())
	}
	if a.String() == "" {
		t.Error("empty cost string")
	}
	if SinkServerFile.String() == "" || Sink(9).String() == "" {
		t.Error("sink strings")
	}
}
