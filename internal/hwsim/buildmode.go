package hwsim

import "fmt"

// BuildMode models the compiler-flag anecdote of the paper's "Of apples and
// oranges" chapter: the same engine compiled with debugging
// (--enable-debug --disable-optimize --enable-assert) versus optimization
// (--disable-debug --enable-optimize --disable-assert) differs by up to a
// factor 2, and the factor varies per query because the debug overhead is
// per-tuple work whose share of total time depends on the plan shape.
type BuildMode int

const (
	// Optimized is the -O6 ... -DNDEBUG build: no per-tuple assertion
	// work, inlined hot paths.
	Optimized BuildMode = iota
	// Debug is the -g -O0 assertion-enabled build.
	Debug
)

func (b BuildMode) String() string {
	if b == Debug {
		return "DBG"
	}
	return "OPT"
}

// OverheadFactors are the per-operator-class multipliers a Debug build
// applies to CPU work. Different operator classes suffer differently
// (assertion density and inlining opportunity differ), which is what makes
// the DBG/OPT ratio query-dependent in the paper's figure.
type OverheadFactors struct {
	Scan      float64 // sequential scans: tight loops inline well -> big OPT win
	Filter    float64 // predicate evaluation
	Join      float64 // hash probe/build
	Aggregate float64 // grouped aggregation
	Sort      float64 // comparison sorting
	Project   float64 // expression projection
}

// DefaultDebugOverheads reflect the paper's observed range: the overall
// DBG/OPT ratio across TPC-H queries lands between ~1.1 and ~2.2.
var DefaultDebugOverheads = OverheadFactors{
	Scan:      2.4,
	Filter:    2.0,
	Join:      1.7,
	Aggregate: 1.9,
	Sort:      1.4,
	Project:   2.1,
}

// OpClass identifies the operator class for build-mode overhead lookup.
type OpClass int

const (
	OpScan OpClass = iota
	OpFilter
	OpJoin
	OpAggregate
	OpSort
	OpProject
)

func (o OpClass) String() string {
	switch o {
	case OpScan:
		return "scan"
	case OpFilter:
		return "filter"
	case OpJoin:
		return "join"
	case OpAggregate:
		return "aggregate"
	case OpSort:
		return "sort"
	case OpProject:
		return "project"
	default:
		return fmt.Sprintf("OpClass(%d)", int(o))
	}
}

// Factor returns the CPU-work multiplier for an operator class under the
// build mode: 1.0 when Optimized, the class's overhead when Debug.
func (b BuildMode) Factor(f OverheadFactors, op OpClass) float64 {
	if b == Optimized {
		return 1
	}
	switch op {
	case OpScan:
		return f.Scan
	case OpFilter:
		return f.Filter
	case OpJoin:
		return f.Join
	case OpAggregate:
		return f.Aggregate
	case OpSort:
		return f.Sort
	case OpProject:
		return f.Project
	default:
		return 1
	}
}
