package hwsim

import (
	"time"

	"repro/internal/measure"
)

// VirtualClock is a deterministic simulated clock. Cost models advance it
// explicitly; nothing ever reads the wall clock. It implements
// measure.SplitClock, decomposing elapsed time into CPU ("user") time and
// I/O wait — the decomposition behind the paper's user-vs-real tables.
//
// VirtualClock is not safe for concurrent use; simulated executions are
// single-threaded by design so results are bit-stable.
type VirtualClock struct {
	cpuNs float64
	ioNs  float64
}

// NewVirtualClock returns a clock at zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// AdvanceCPU charges ns nanoseconds of CPU (user) time. Negative charges
// are ignored.
func (c *VirtualClock) AdvanceCPU(ns float64) {
	if ns > 0 {
		c.cpuNs += ns
	}
}

// AdvanceIO charges ns nanoseconds of I/O wait. Negative charges are
// ignored.
func (c *VirtualClock) AdvanceIO(ns float64) {
	if ns > 0 {
		c.ioNs += ns
	}
}

// Now returns total simulated real time: CPU plus I/O wait.
func (c *VirtualClock) Now() time.Duration {
	return time.Duration(c.cpuNs+c.ioNs) * time.Nanosecond
}

// User returns accumulated simulated CPU time.
func (c *VirtualClock) User() time.Duration {
	return time.Duration(c.cpuNs) * time.Nanosecond
}

// IOWait returns accumulated simulated I/O wait.
func (c *VirtualClock) IOWait() time.Duration {
	return time.Duration(c.ioNs) * time.Nanosecond
}

// Reset zeroes the clock.
func (c *VirtualClock) Reset() { c.cpuNs, c.ioNs = 0, 0 }

var _ measure.SplitClock = (*VirtualClock)(nil)
