// Package netsim is a cycle-level simulator of processor-memory
// interconnection networks, the substrate behind the paper's allocation-of-
// variation example (slides 86-93): comparing a non-blocking crossbar with
// a blocking omega network under two address reference patterns, and
// measuring throughput, 90th-percentile transit time, and average response
// time. The paper quotes results from Jain's book; this simulator generates
// live data with the same qualitative structure — the address pattern
// explains most of the variation, the network type less, their interaction
// least.
package netsim

import (
	"fmt"
	"math/bits"
	"sort"
)

// rng is the same splitmix64 generator used elsewhere in the repository.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Network models an N-processor to N-module interconnect by the set of
// internal links a request occupies: two requests conflict in a cycle when
// their link sets intersect.
type Network interface {
	// Name identifies the network ("Crossbar", "Omega").
	Name() string
	// Route returns the link ids a request from processor src to module
	// dst occupies, and is deterministic.
	Route(src, dst int) []int
	// PathLen is the base transit latency in cycles of an unblocked
	// request.
	PathLen() int
}

// Crossbar is a non-blocking crossbar: requests conflict only when they
// target the same memory module.
type Crossbar struct{ N int }

// Name implements Network.
func (c Crossbar) Name() string { return "Crossbar" }

// Route implements Network: the only shared resource is the module port.
func (c Crossbar) Route(src, dst int) []int { return []int{dst} }

// PathLen implements Network: one switch hop.
func (c Crossbar) PathLen() int { return 1 }

// Omega is a multistage omega (perfect-shuffle) network of 2x2 switches:
// log2(N) stages, with internal links shared between paths — the source of
// blocking that the crossbar does not have.
type Omega struct{ N int }

// Name implements Network.
func (o Omega) Name() string { return "Omega" }

// stages returns log2(N).
func (o Omega) stages() int { return bits.Len(uint(o.N)) - 1 }

// Route implements Network using the standard shuffle-exchange node
// numbering: after stage s, a request from src to dst occupies the node
// whose value keeps the top (s+1) bits of dst and the low bits of src.
// Stage 0 is omitted: its contention is absorbed by the input buffers each
// processor owns exclusively, so the first shared resources are the
// second-stage links.
func (o Omega) Route(src, dst int) []int {
	k := o.stages()
	links := make([]int, 0, k)
	for s := 1; s < k; s++ {
		v := ((src << uint(s+1)) | (dst >> uint(k-s-1))) & (o.N - 1)
		links = append(links, s*o.N+v)
	}
	// Final module port, shared with every path to the same module.
	links = append(links, k*o.N+dst)
	return links
}

// PathLen implements Network: one cycle per stage.
func (o Omega) PathLen() int { return o.stages() }

// Pattern generates memory-module destinations for processor requests.
type Pattern interface {
	// Name identifies the pattern ("Random", "Matrix").
	Name() string
	// Dest returns the destination module of processor proc's step-th
	// request, over nModules modules.
	Dest(proc, step, nModules int, r *rng) int
}

// RandomPattern picks destinations uniformly: conflicts are incidental.
type RandomPattern struct{}

// Name implements Pattern.
func (RandomPattern) Name() string { return "Random" }

// Dest implements Pattern.
func (RandomPattern) Dest(_, _, nModules int, r *rng) int { return r.intn(nModules) }

// MatrixPattern models column-order access to a row-major matrix: the
// classic stride pattern that concentrates consecutive references onto a
// quarter of the memory modules, creating heavy bank conflicts on any
// network.
type MatrixPattern struct{}

// Name implements Pattern.
func (MatrixPattern) Name() string { return "Matrix" }

// Dest implements Pattern.
func (MatrixPattern) Dest(proc, step, nModules int, _ *rng) int {
	// A quarter of the modules minus one: not dividing the processor
	// count keeps the conflict phases rotating instead of letting the
	// processors self-synchronize into a conflict-free schedule.
	banks := nModules/4 - 1
	if banks < 2 {
		banks = 2
	}
	return (proc + step) % banks
}

// Config parameterizes a simulation run.
type Config struct {
	Procs  int    // number of processors = number of modules (power of two)
	Cycles int    // simulated cycles
	Think  int    // idle cycles between a response and the next request
	Seed   uint64 // PRNG seed
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Procs < 2 || c.Procs&(c.Procs-1) != 0 {
		return fmt.Errorf("netsim: Procs must be a power of two >= 2, got %d", c.Procs)
	}
	if c.Cycles < 1 {
		return fmt.Errorf("netsim: Cycles must be positive, got %d", c.Cycles)
	}
	if c.Think < 0 {
		return fmt.Errorf("netsim: Think must be non-negative, got %d", c.Think)
	}
	return nil
}

// Metrics are the three response variables of the paper's example.
type Metrics struct {
	// Throughput T: completed requests per processor per cycle.
	Throughput float64
	// Transit90 N: 90th percentile of transit time in cycles.
	Transit90 float64
	// AvgResponse R: mean transit time in cycles.
	AvgResponse float64
	// Completed is the raw completed-request count.
	Completed int
}

// Simulate runs the network under the pattern for cfg.Cycles cycles.
//
// Model: each processor has at most one outstanding request. Pending
// requests are considered in processor order each cycle; a request is
// admitted if none of its links is taken by an already-admitted request
// this cycle (circuit-switched, greedy arbitration). Admitted requests
// complete after the network's path length; blocked requests retry.
func Simulate(net Network, pat Pattern, cfg Config) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	n := cfg.Procs
	r := &rng{state: cfg.Seed}

	type proc struct {
		issueAt  int // cycle the current request was issued (-1: thinking)
		readyAt  int // cycle the processor issues its next request
		step     int
		dst      int
		inFlight bool
	}
	procs := make([]proc, n)
	for i := range procs {
		procs[i].issueAt = -1
	}

	var transits []float64
	completed := 0
	linkTaken := make(map[int]bool, 4*n)

	for cycle := 0; cycle < cfg.Cycles; cycle++ {
		// Issue new requests.
		for p := range procs {
			if !procs[p].inFlight && cycle >= procs[p].readyAt {
				procs[p].dst = pat.Dest(p, procs[p].step, n, r)
				procs[p].step++
				procs[p].issueAt = cycle
				procs[p].inFlight = true
			}
		}
		// Arbitrate.
		for k := range linkTaken {
			delete(linkTaken, k)
		}
		for p := range procs {
			if !procs[p].inFlight || procs[p].issueAt > cycle {
				continue
			}
			links := net.Route(p, procs[p].dst)
			conflict := false
			for _, l := range links {
				if linkTaken[l] {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			for _, l := range links {
				linkTaken[l] = true
			}
			transit := cycle - procs[p].issueAt + net.PathLen()
			transits = append(transits, float64(transit))
			completed++
			procs[p].inFlight = false
			// Issue-to-issue gap is one cycle plus think time: memory
			// accesses are pipelined, so the path length shows up in
			// transit time but does not throttle the issue rate.
			procs[p].readyAt = cycle + 1 + cfg.Think
		}
	}

	m := Metrics{Completed: completed}
	if completed > 0 {
		m.Throughput = float64(completed) / float64(n*cfg.Cycles)
		sort.Float64s(transits)
		idx := int(0.9 * float64(len(transits)-1))
		m.Transit90 = transits[idx]
		var sum float64
		for _, t := range transits {
			sum += t
		}
		m.AvgResponse = sum / float64(len(transits))
	}
	return m, nil
}

// SimulateReplicated runs the simulation under nSeeds consecutive seeds
// (cfg.Seed, cfg.Seed+1, ...) and returns the per-seed metrics — the
// replication needed to put confidence intervals on simulator outputs
// instead of presenting a single random quantity (one of the paper's
// pictorial games).
func SimulateReplicated(net Network, pat Pattern, cfg Config, nSeeds int) ([]Metrics, error) {
	if nSeeds < 1 {
		return nil, fmt.Errorf("netsim: need at least 1 seed, got %d", nSeeds)
	}
	out := make([]Metrics, 0, nSeeds)
	for i := 0; i < nSeeds; i++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(i)
		m, err := Simulate(net, pat, c)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// PaperData returns the published response table of the paper's example
// (slides 90-93) in canonical 2^2 run order (network varies slowest:
// Crossbar+Random, Crossbar+Matrix, Omega+Random, Omega+Matrix), keyed by
// response variable name. Feeding these to design.EstimateEffects
// reproduces the published "variation explained" percentages exactly.
func PaperData() map[string][]float64 {
	return map[string][]float64{
		"T": {0.6041, 0.4220, 0.7922, 0.4717},
		"N": {3, 5, 2, 4},
		"R": {1.655, 2.378, 1.262, 2.190},
	}
}
