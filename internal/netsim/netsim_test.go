package netsim

import (
	"testing"
	"testing/quick"

	"repro/internal/design"
)

func cfg() Config { return Config{Procs: 16, Cycles: 2000, Think: 1, Seed: 99} }

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Procs: 0, Cycles: 10},
		{Procs: 3, Cycles: 10}, // not a power of two
		{Procs: 16, Cycles: 0}, // no cycles
		{Procs: 16, Cycles: 10, Think: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
	if err := cfg().Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	if _, err := Simulate(Crossbar{N: 16}, RandomPattern{}, Config{Procs: 3, Cycles: 1}); err == nil {
		t.Error("Simulate should propagate config errors")
	}
}

func TestOmegaRouting(t *testing.T) {
	o := Omega{N: 8}
	if o.stages() != 3 {
		t.Fatalf("stages = %d", o.stages())
	}
	r := o.Route(0, 7)
	if len(r) != 3 { // stages 1..2 (stage 0 buffered) + module port
		t.Fatalf("route length = %d", len(r))
	}
	// Same (src,dst) always routes identically.
	r2 := o.Route(0, 7)
	for i := range r {
		if r[i] != r2[i] {
			t.Error("routing must be deterministic")
		}
	}
	// Distinct destinations from one source use distinct module ports.
	a, b := o.Route(3, 1), o.Route(3, 2)
	if a[len(a)-1] == b[len(b)-1] {
		t.Error("module ports must differ for different destinations")
	}
	// Crossbar route is just the module port.
	c := Crossbar{N: 8}
	if got := c.Route(5, 3); len(got) != 1 || got[0] != 3 {
		t.Errorf("crossbar route = %v", got)
	}
}

func TestOmegaBlockingExists(t *testing.T) {
	// The omega network must block some permutation pairs that a crossbar
	// would pass: find two requests with distinct sources and distinct
	// destinations that share an internal link.
	o := Omega{N: 8}
	found := false
	for s1 := 0; s1 < 8 && !found; s1++ {
		for s2 := s1 + 1; s2 < 8 && !found; s2++ {
			for d1 := 0; d1 < 8 && !found; d1++ {
				for d2 := 0; d2 < 8 && !found; d2++ {
					if d1 == d2 {
						continue
					}
					links1 := o.Route(s1, d1)
					links2 := o.Route(s2, d2)
					set := map[int]bool{}
					for _, l := range links1[:len(links1)-1] { // internal only
						set[l] = true
					}
					for _, l := range links2[:len(links2)-1] {
						if set[l] {
							found = true
						}
					}
				}
			}
		}
	}
	if !found {
		t.Error("omega network shows no internal blocking; routing is wrong")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m1, err := Simulate(Omega{N: 16}, RandomPattern{}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Simulate(Omega{N: 16}, RandomPattern{}, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Errorf("same seed gave %+v vs %+v", m1, m2)
	}
}

func TestMetricsSanity(t *testing.T) {
	for _, net := range []Network{Crossbar{N: 16}, Omega{N: 16}} {
		for _, pat := range []Pattern{RandomPattern{}, MatrixPattern{}} {
			m, err := Simulate(net, pat, cfg())
			if err != nil {
				t.Fatal(err)
			}
			if m.Throughput <= 0 || m.Throughput > 1 {
				t.Errorf("%s/%s: throughput %g outside (0,1]", net.Name(), pat.Name(), m.Throughput)
			}
			if m.AvgResponse < float64(net.PathLen()) {
				t.Errorf("%s/%s: response %g below path length", net.Name(), pat.Name(), m.AvgResponse)
			}
			if m.Transit90 < m.AvgResponse/2 {
				t.Errorf("%s/%s: transit90 %g implausibly below mean %g", net.Name(), pat.Name(), m.Transit90, m.AvgResponse)
			}
			if m.Completed <= 0 {
				t.Errorf("%s/%s: nothing completed", net.Name(), pat.Name())
			}
		}
	}
}

// TestQualitativeStructure pins the phenomena the paper's example shows:
// the matrix (stride) pattern degrades throughput on BOTH networks, and the
// crossbar beats the omega under random traffic (no internal blocking).
func TestQualitativeStructure(t *testing.T) {
	c := cfg()
	tput := map[string]float64{}
	for _, net := range []Network{Crossbar{N: 16}, Omega{N: 16}} {
		for _, pat := range []Pattern{RandomPattern{}, MatrixPattern{}} {
			m, err := Simulate(net, pat, c)
			if err != nil {
				t.Fatal(err)
			}
			tput[net.Name()+"/"+pat.Name()] = m.Throughput
		}
	}
	if tput["Crossbar/Matrix"] >= tput["Crossbar/Random"] {
		t.Errorf("matrix pattern should hurt the crossbar: %v", tput)
	}
	if tput["Omega/Matrix"] >= tput["Omega/Random"] {
		t.Errorf("matrix pattern should hurt the omega: %v", tput)
	}
	if tput["Omega/Random"] >= tput["Crossbar/Random"] {
		t.Errorf("crossbar should beat omega under random traffic: %v", tput)
	}
}

// TestLiveAllocationOfVariation runs the full 2^2 experiment on the live
// simulator and checks the paper's conclusion holds: the address pattern
// explains the largest share of throughput variation, the interaction the
// smallest.
func TestLiveAllocationOfVariation(t *testing.T) {
	factors := []design.Factor{
		design.MustFactor("network", "Crossbar", "Omega"),
		design.MustFactor("pattern", "Random", "Matrix"),
	}
	st, err := design.NewSignTable(factors)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	nets := []Network{Crossbar{N: 16}, Omega{N: 16}}
	pats := []Pattern{RandomPattern{}, MatrixPattern{}}
	y := make([]float64, 4)
	for run := 0; run < 4; run++ {
		net := nets[st.LevelIndex(run, 0)]
		pat := pats[st.LevelIndex(run, 1)]
		m, err := Simulate(net, pat, c)
		if err != nil {
			t.Fatal(err)
		}
		y[run] = m.Throughput
	}
	ef, err := design.EstimateEffects(st, y)
	if err != nil {
		t.Fatal(err)
	}
	frac := map[design.Effect]float64{}
	for _, v := range ef.AllocateVariation() {
		frac[v.Effect] = v.Fraction
	}
	a, b := design.MainEffect(0), design.MainEffect(1)
	if !(frac[b] > frac[a]) {
		t.Errorf("pattern (%.1f%%) should explain more than network (%.1f%%)",
			frac[b]*100, frac[a]*100)
	}
	if !(frac[a.Mul(b)] < frac[a]) {
		t.Errorf("interaction (%.1f%%) should explain least", frac[a.Mul(b)]*100)
	}
	if frac[b] < 0.5 {
		t.Errorf("pattern explains only %.1f%%, want dominant (>50%%)", frac[b]*100)
	}
}

// TestPaperDataReproducesPercentages verifies the published table yields
// the published variation-explained percentages.
func TestPaperDataReproducesPercentages(t *testing.T) {
	factors := []design.Factor{
		design.MustFactor("network", "Crossbar", "Omega"),
		design.MustFactor("pattern", "Random", "Matrix"),
	}
	st, _ := design.NewSignTable(factors)
	want := map[string][3]float64{
		"T": {17.2, 77.0, 5.8},
		"N": {20, 80, 0},
		"R": {10.9, 87.8, 1.3},
	}
	a, b := design.MainEffect(0), design.MainEffect(1)
	for metric, ys := range PaperData() {
		ef, err := design.EstimateEffects(st, ys)
		if err != nil {
			t.Fatal(err)
		}
		frac := map[design.Effect]float64{}
		for _, v := range ef.AllocateVariation() {
			frac[v.Effect] = v.Fraction * 100
		}
		w := want[metric]
		for i, e := range []design.Effect{a, b, a.Mul(b)} {
			if diff := frac[e] - w[i]; diff > 0.1 || diff < -0.1 {
				t.Errorf("%s effect %s = %.1f%%, want %.1f%%", metric, e, frac[e], w[i])
			}
		}
	}
}

// Property: throughput never exceeds 1 and is deterministic per seed, for
// arbitrary small configurations.
func TestSimulatePropertiesQuick(t *testing.T) {
	f := func(seedRaw uint16, sizeRaw, thinkRaw uint8) bool {
		size := 4 << (sizeRaw % 3) // 4, 8, 16
		c := Config{Procs: size, Cycles: 300, Think: int(thinkRaw % 3), Seed: uint64(seedRaw)}
		for _, net := range []Network{Crossbar{N: size}, Omega{N: size}} {
			m, err := Simulate(net, RandomPattern{}, c)
			if err != nil {
				return false
			}
			if m.Throughput < 0 || m.Throughput > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSimulateReplicated(t *testing.T) {
	ms, err := SimulateReplicated(Crossbar{N: 16}, RandomPattern{}, cfg(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("metrics = %d", len(ms))
	}
	// Different seeds give (generally) different throughputs, all valid.
	distinct := map[float64]bool{}
	for _, m := range ms {
		if m.Throughput <= 0 || m.Throughput > 1 {
			t.Errorf("throughput %g out of range", m.Throughput)
		}
		distinct[m.Throughput] = true
	}
	if len(distinct) < 2 {
		t.Error("replicates suspiciously identical across seeds")
	}
	// Deterministic: same call, same series.
	ms2, _ := SimulateReplicated(Crossbar{N: 16}, RandomPattern{}, cfg(), 5)
	for i := range ms {
		if ms[i] != ms2[i] {
			t.Error("replicated series not deterministic")
		}
	}
	if _, err := SimulateReplicated(Crossbar{N: 16}, RandomPattern{}, cfg(), 0); err == nil {
		t.Error("0 seeds should error")
	}
}
