package tpch

import (
	"math"
	"testing"

	"repro/internal/vdb"
)

func genSmall(t *testing.T) *vdb.DB {
	t.Helper()
	db, err := Gen(0.02, 42)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGenValidation(t *testing.T) {
	if _, err := Gen(0, 1); err == nil {
		t.Error("sf=0 should error")
	}
	if _, err := Gen(-1, 1); err == nil {
		t.Error("sf<0 should error")
	}
}

func TestGenTablesAndSizes(t *testing.T) {
	db := genSmall(t)
	want := []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"}
	names := db.TableNames()
	if len(names) != len(want) {
		t.Fatalf("tables = %v", names)
	}
	for i, w := range want {
		if names[i] != w {
			t.Errorf("table %d = %s, want %s", i, names[i], w)
		}
	}
	region, _ := db.Table("region")
	if region.NumRows() != 5 {
		t.Errorf("region rows = %d", region.NumRows())
	}
	nation, _ := db.Table("nation")
	if nation.NumRows() != 25 {
		t.Errorf("nation rows = %d", nation.NumRows())
	}
	part, _ := db.Table("part")
	ps, _ := db.Table("partsupp")
	if ps.NumRows() != 4*part.NumRows() {
		t.Errorf("partsupp rows = %d, want 4x part (%d)", ps.NumRows(), part.NumRows())
	}
	orders, _ := db.Table("orders")
	li, _ := db.Table("lineitem")
	ratio := float64(li.NumRows()) / float64(orders.NumRows())
	if ratio < 2 || ratio > 6 {
		t.Errorf("lineitem/orders ratio = %.1f, want ~4", ratio)
	}
}

func TestGenScales(t *testing.T) {
	small, err := Gen(0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Gen(0.08, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, _ := small.Table("lineitem")
	lb, _ := big.Table("lineitem")
	ratio := float64(lb.NumRows()) / float64(ls.NumRows())
	if ratio < 3 || ratio > 5 {
		t.Errorf("4x scale factor changed lineitem by %.1fx", ratio)
	}
}

func TestGenDeterministic(t *testing.T) {
	a, err := Gen(0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Gen(0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := a.Table("lineitem")
	lb, _ := b.Table("lineitem")
	if la.CSV() != lb.CSV() {
		t.Error("same seed should generate identical data")
	}
	c, err := Gen(0.02, 8)
	if err != nil {
		t.Fatal(err)
	}
	lc, _ := c.Table("lineitem")
	if la.CSV() == lc.CSV() {
		t.Error("different seeds should differ")
	}
}

func TestGenReferentialIntegrity(t *testing.T) {
	db := genSmall(t)
	inRange := func(table, col string, lo, hi int64) {
		t.Helper()
		tab, err := db.Table(table)
		if err != nil {
			t.Fatal(err)
		}
		c, err := tab.Column(col)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range c.Ints {
			if v < lo || v > hi {
				t.Fatalf("%s.%s value %d outside [%d,%d]", table, col, v, lo, hi)
			}
		}
	}
	supp, _ := db.Table("supplier")
	cust, _ := db.Table("customer")
	part, _ := db.Table("part")
	orders, _ := db.Table("orders")
	inRange("orders", "o_custkey", 1, int64(cust.NumRows()))
	inRange("lineitem", "l_orderkey", 1, int64(orders.NumRows()))
	inRange("lineitem", "l_partkey", 1, int64(part.NumRows()))
	inRange("lineitem", "l_suppkey", 1, int64(supp.NumRows()))
	inRange("partsupp", "ps_partkey", 1, int64(part.NumRows()))
	inRange("partsupp", "ps_suppkey", 1, int64(supp.NumRows()))
	inRange("supplier", "s_nationkey", 0, 24)
	inRange("customer", "c_nationkey", 0, 24)
	inRange("nation", "n_regionkey", 0, 4)
}

func TestDateHelpers(t *testing.T) {
	if Date(1992, 1, 1) != 0 {
		t.Errorf("epoch = %d", Date(1992, 1, 1))
	}
	if Date(1993, 1, 1) != 365 {
		t.Errorf("1993 = %d", Date(1993, 1, 1))
	}
	if Year(Date(1995, 6, 1)) != 1995 {
		t.Errorf("year roundtrip = %d", Year(Date(1995, 6, 1)))
	}
	if !(Date(1994, 5, 1) < Date(1994, 6, 1)) {
		t.Error("date ordering")
	}
}

func TestQAccessor(t *testing.T) {
	q, err := Q(1)
	if err != nil || q.Num != 1 {
		t.Errorf("Q(1) = %+v, %v", q, err)
	}
	if _, err := Q(0); err == nil {
		t.Error("Q(0) should error")
	}
	if _, err := Q(23); err == nil {
		t.Error("Q(23) should error")
	}
}

// TestAll22QueriesBothEngines is the big integration check: every query
// analog runs on both engines and the engines agree exactly.
func TestAll22QueriesBothEngines(t *testing.T) {
	db := genSmall(t)
	for _, q := range Queries() {
		rowRes, err := vdb.Run(vdb.NewContext(db), vdb.RowEngine{}, q.Plan)
		if err != nil {
			t.Fatalf("Q%d (%s) row engine: %v", q.Num, q.Name, err)
		}
		colRes, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, q.Plan)
		if err != nil {
			t.Fatalf("Q%d (%s) column engine: %v", q.Num, q.Name, err)
		}
		a, b := rowRes.SortedRows(), colRes.SortedRows()
		if len(a) != len(b) {
			t.Fatalf("Q%d: engines disagree on rows: %d vs %d", q.Num, len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				va, vb := a[i][j], b[i][j]
				equal := va.Equal(vb)
				if !equal && va.Typ == vdb.TFloat && vb.Typ == vdb.TFloat {
					// Float aggregation order may differ between engines.
					equal = math.Abs(va.F-vb.F) <= 1e-6*(1+math.Abs(va.F))
				}
				if !equal {
					t.Fatalf("Q%d row %d col %d: %v vs %v", q.Num, i, j, va, vb)
				}
			}
		}
	}
}

// TestQ1ReferenceAnswer recomputes Q1 independently (straight Go loops over
// the generated data) and compares with the engine result.
func TestQ1ReferenceAnswer(t *testing.T) {
	db := genSmall(t)
	li, _ := db.Table("lineitem")
	flag, _ := li.Column("l_returnflag")
	status, _ := li.Column("l_linestatus")
	qty, _ := li.Column("l_quantity")
	price, _ := li.Column("l_extendedprice")
	disc, _ := li.Column("l_discount")
	ship, _ := li.Column("l_shipdate")
	cutoff := Date(1998, 9, 2) - 90

	type acc struct {
		sumQty, sumPrice, sumDisc float64
		n                         int64
	}
	ref := map[string]*acc{}
	for i := 0; i < li.NumRows(); i++ {
		if ship.Ints[i] > cutoff {
			continue
		}
		k := flag.Strs[i] + "|" + status.Strs[i]
		a := ref[k]
		if a == nil {
			a = &acc{}
			ref[k] = a
		}
		a.sumQty += float64(qty.Ints[i])
		a.sumPrice += price.Floats[i]
		a.sumDisc += price.Floats[i] * (1 - disc.Floats[i])
		a.n++
	}

	q, _ := Q(1)
	res, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, q.Plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != len(ref) {
		t.Fatalf("groups = %d, want %d", res.NumRows(), len(ref))
	}
	rf, _ := res.Column("l_returnflag")
	rs, _ := res.Column("l_linestatus")
	sq, _ := res.Column("sum_qty")
	sp, _ := res.Column("sum_base_price")
	sd, _ := res.Column("sum_disc_price")
	co, _ := res.Column("count_order")
	for i := 0; i < res.NumRows(); i++ {
		k := rf.Strs[i] + "|" + rs.Strs[i]
		a := ref[k]
		if a == nil {
			t.Fatalf("unexpected group %q", k)
		}
		if got := float64(sq.Ints[i]); got != a.sumQty {
			t.Errorf("%s sum_qty = %g, want %g", k, got, a.sumQty)
		}
		if rel := math.Abs(sp.Floats[i]-a.sumPrice) / a.sumPrice; rel > 1e-9 {
			t.Errorf("%s sum_base_price off by %g", k, rel)
		}
		if rel := math.Abs(sd.Floats[i]-a.sumDisc) / a.sumDisc; rel > 1e-9 {
			t.Errorf("%s sum_disc_price off by %g", k, rel)
		}
		if co.Ints[i] != a.n {
			t.Errorf("%s count = %d, want %d", k, co.Ints[i], a.n)
		}
	}
}

// TestQ6ReferenceAnswer does the same for Q6.
func TestQ6ReferenceAnswer(t *testing.T) {
	db := genSmall(t)
	li, _ := db.Table("lineitem")
	price, _ := li.Column("l_extendedprice")
	disc, _ := li.Column("l_discount")
	qty, _ := li.Column("l_quantity")
	ship, _ := li.Column("l_shipdate")
	lo, hi := Date(1994, 1, 1), Date(1995, 1, 1)
	var want float64
	for i := 0; i < li.NumRows(); i++ {
		if ship.Ints[i] >= lo && ship.Ints[i] < hi &&
			disc.Floats[i] >= 0.05 && disc.Floats[i] <= 0.07 && qty.Ints[i] < 24 {
			want += price.Floats[i] * disc.Floats[i]
		}
	}
	q, _ := Q(6)
	res, err := vdb.Run(vdb.NewContext(db), vdb.RowEngine{}, q.Plan)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Cols[0].Floats[0]
	if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
		t.Errorf("Q6 revenue = %g, want %g", got, want)
	}
	if want == 0 {
		t.Error("reference revenue is zero; generator ranges too narrow to exercise Q6")
	}
}

// TestQueriesReturnRows guards against degenerate analogs: every query
// must produce at least one row on a reasonably sized instance (otherwise
// its selectivities are broken and its benchmark is meaningless).
func TestQueriesReturnRows(t *testing.T) {
	db, err := Gen(0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range Queries() {
		res, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, q.Plan)
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		if res.NumRows() == 0 {
			t.Errorf("Q%d (%s) returned no rows at sf=0.1", q.Num, q.Name)
		}
	}
}

func TestExplainAllQueries(t *testing.T) {
	for _, q := range Queries() {
		out := vdb.Explain(q.Plan)
		if len(out) < 10 {
			t.Errorf("Q%d explain too short: %q", q.Num, out)
		}
	}
}

// TestOptimizerPreservesAll22Queries optimizes every query analog and
// checks results are unchanged on the column engine (the row engine is
// checked for engine-equivalence elsewhere; here the variable is the plan
// rewrite).
func TestOptimizerPreservesAll22Queries(t *testing.T) {
	db := genSmall(t)
	for _, q := range Queries() {
		opt, _, err := vdb.Optimize(db, q.Plan)
		if err != nil {
			t.Fatalf("Q%d optimize: %v", q.Num, err)
		}
		orig, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, q.Plan)
		if err != nil {
			t.Fatalf("Q%d: %v", q.Num, err)
		}
		rew, err := vdb.Run(vdb.NewContext(db), vdb.ColumnEngine{}, opt)
		if err != nil {
			t.Fatalf("Q%d optimized: %v", q.Num, err)
		}
		a, b := orig.SortedRows(), rew.SortedRows()
		if len(a) != len(b) {
			t.Fatalf("Q%d: optimizer changed row count %d -> %d", q.Num, len(a), len(b))
		}
		for i := range a {
			for j := range a[i] {
				va, vb := a[i][j], b[i][j]
				equal := va.Equal(vb)
				if !equal && va.Typ == vdb.TFloat && vb.Typ == vdb.TFloat {
					equal = math.Abs(va.F-vb.F) <= 1e-6*(1+math.Abs(va.F))
				}
				if !equal {
					t.Fatalf("Q%d: optimizer changed results at row %d col %d: %v vs %v", q.Num, i, j, va, vb)
				}
			}
		}
	}
}
