package tpch

import (
	"testing"
	"time"

	"repro/internal/hwsim"
	"repro/internal/stats"
	"repro/internal/vdb"
)

// simulatedTime runs a query hot on the laptop model and returns user time.
func simulatedTime(t *testing.T, db *vdb.DB, qn int) time.Duration {
	t.Helper()
	q, err := Q(qn)
	if err != nil {
		t.Fatal(err)
	}
	m := hwsim.PentiumM2005
	ctx := vdb.NewSimContext(db, &m, hwsim.NewVirtualClock())
	ctx.Buffers.WarmAll(db.TableNames())
	if _, err := vdb.Run(ctx, vdb.ColumnEngine{}, q.Plan); err != nil {
		t.Fatal(err)
	}
	return ctx.Clock.User()
}

// TestScaleUpScanBound: a scan-bound query's simulated cost scales roughly
// linearly with the scale factor — the paper's scale-up metric near 1.
func TestScaleUpScanBound(t *testing.T) {
	small, err := Gen(0.05, 42)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Gen(0.2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for _, qn := range []int{1, 6} {
		ts := simulatedTime(t, small, qn)
		tb := simulatedTime(t, big, qn)
		ls, _ := small.Table("lineitem")
		lb, _ := big.Table("lineitem")
		scaleUp := stats.ScaleUp(float64(ls.NumRows()), float64(ts),
			float64(lb.NumRows()), float64(tb))
		if scaleUp < 0.7 || scaleUp > 1.4 {
			t.Errorf("Q%d scale-up = %.2f, want ~1 (linear in data volume)", qn, scaleUp)
		}
	}
}

// TestSpeedupColumnOverRow: the paper's speed-up metric applied to the two
// engines on Q1 — and the ratio is stable across scale factors.
func TestSpeedupColumnOverRow(t *testing.T) {
	var ratios []float64
	for _, sf := range []float64{0.05, 0.1} {
		db, err := Gen(sf, 42)
		if err != nil {
			t.Fatal(err)
		}
		q, _ := Q(1)
		m := hwsim.PentiumM2005
		times := map[string]time.Duration{}
		for _, e := range []vdb.Engine{vdb.RowEngine{}, vdb.ColumnEngine{}} {
			ctx := vdb.NewSimContext(db, &m, hwsim.NewVirtualClock())
			ctx.Buffers.WarmAll(db.TableNames())
			if _, err := vdb.Run(ctx, e, q.Plan); err != nil {
				t.Fatal(err)
			}
			times[e.Name()] = ctx.Clock.User()
		}
		sp := stats.Speedup(float64(times["tuple-at-a-time"]), float64(times["column-at-a-time"]))
		if sp <= 1.5 {
			t.Errorf("sf=%g: column speedup = %.2f, want > 1.5", sf, sp)
		}
		ratios = append(ratios, sp)
	}
	if rel := ratios[0] / ratios[1]; rel < 0.8 || rel > 1.25 {
		t.Errorf("speedup unstable across scale: %.2f vs %.2f", ratios[0], ratios[1])
	}
}
