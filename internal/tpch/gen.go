// Package tpch is a deterministic, scaled-down TPC-H-like workload
// generator plus plan definitions for analogs of all 22 TPC-H queries over
// the vdb engines. The paper's worked examples run TPC-H (sf=1) on a
// laptop; we substitute this generator (same schema shape, same query
// classes, scale factor parameterizing volume identically) so the timing
// experiments run in milliseconds and are bit-stable.
//
// Row counts per unit scale factor are 1/100 of real TPC-H, which keeps
// go test fast while preserving every table-size ratio.
package tpch

import (
	"fmt"

	"repro/internal/vdb"
)

// Rows per sf=1.0 (real TPC-H divided by 100, ratios preserved).
const (
	supplierPerSF = 100
	partPerSF     = 2000
	customerPerSF = 1500
	ordersPerSF   = 15000
	partSuppPer   = 4 // partsupp rows per part
	maxLinesPer   = 7 // lineitem rows per order: 1..7, avg 4
)

// rng is a splitmix64 PRNG: tiny, fast, and identical everywhere.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

func (r *rng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

// Date encodes y-m-d as days since 1992-01-01 using a fixed 30-day-month,
// 365-day-year calendar (generator and queries share it, so only ordering
// and ranges matter).
func Date(y, m, d int) int64 {
	return int64((y-1992)*365 + (m-1)*30 + (d - 1))
}

// Year recovers the year component of an encoded date.
func Year(date int64) int64 { return 1992 + date/365 }

// Value pools mirroring TPC-H's domains.
var (
	regionNames   = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}
	nationNames   = []string{"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"}
	nationRegion  = []int64{0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1}
	segments      = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities    = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipModes     = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers    = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK", "WRAP CASE"}
	typeSyllable1 = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyllable2 = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyllable3 = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	colors        = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blue", "blush", "brown", "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender"}
)

// Gen generates the full eight-table catalog at the given scale factor and
// seed. Scale factors below ~0.01 are clamped so every table has at least a
// handful of rows.
func Gen(sf float64, seed uint64) (*vdb.DB, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive, got %g", sf)
	}
	r := &rng{state: seed}
	db := vdb.NewDB()

	atLeast := func(n int) int {
		if n < 3 {
			return 3
		}
		return n
	}
	nSupp := atLeast(int(float64(supplierPerSF) * sf))
	nPart := atLeast(int(float64(partPerSF) * sf))
	nCust := atLeast(int(float64(customerPerSF) * sf))
	nOrd := atLeast(int(float64(ordersPerSF) * sf))

	for _, build := range []func() (*vdb.Table, error){
		func() (*vdb.Table, error) { return genRegion() },
		func() (*vdb.Table, error) { return genNation() },
		func() (*vdb.Table, error) { return genSupplier(r, nSupp) },
		func() (*vdb.Table, error) { return genCustomer(r, nCust) },
		func() (*vdb.Table, error) { return genPart(r, nPart) },
		func() (*vdb.Table, error) { return genPartSupp(r, nPart, nSupp) },
	} {
		t, err := build()
		if err != nil {
			return nil, err
		}
		if err := db.AddTable(t); err != nil {
			return nil, err
		}
	}
	orders, lineitem, err := genOrdersAndLineitem(r, nOrd, nCust, nPart, nSupp)
	if err != nil {
		return nil, err
	}
	if err := db.AddTable(orders); err != nil {
		return nil, err
	}
	if err := db.AddTable(lineitem); err != nil {
		return nil, err
	}
	return db, nil
}

func genRegion() (*vdb.Table, error) {
	keys := make([]int64, len(regionNames))
	for i := range keys {
		keys[i] = int64(i)
	}
	return vdb.NewTable("region",
		vdb.NewIntColumn("r_regionkey", keys),
		vdb.NewStringColumn("r_name", append([]string(nil), regionNames...)),
	)
}

func genNation() (*vdb.Table, error) {
	n := len(nationNames)
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = int64(i)
	}
	return vdb.NewTable("nation",
		vdb.NewIntColumn("n_nationkey", keys),
		vdb.NewStringColumn("n_name", append([]string(nil), nationNames...)),
		vdb.NewIntColumn("n_regionkey", append([]int64(nil), nationRegion...)),
	)
}

func genSupplier(r *rng, n int) (*vdb.Table, error) {
	key := make([]int64, n)
	name := make([]string, n)
	nation := make([]int64, n)
	acctbal := make([]float64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i + 1)
		name[i] = fmt.Sprintf("Supplier#%09d", i+1)
		nation[i] = int64(r.intn(len(nationNames)))
		acctbal[i] = -999.99 + r.float()*(9999.99+999.99)
	}
	return vdb.NewTable("supplier",
		vdb.NewIntColumn("s_suppkey", key),
		vdb.NewStringColumn("s_name", name),
		vdb.NewIntColumn("s_nationkey", nation),
		vdb.NewFloatColumn("s_acctbal", acctbal),
	)
}

func genCustomer(r *rng, n int) (*vdb.Table, error) {
	key := make([]int64, n)
	name := make([]string, n)
	nation := make([]int64, n)
	acctbal := make([]float64, n)
	seg := make([]string, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i + 1)
		name[i] = fmt.Sprintf("Customer#%09d", i+1)
		nation[i] = int64(r.intn(len(nationNames)))
		acctbal[i] = -999.99 + r.float()*(9999.99+999.99)
		seg[i] = segments[r.intn(len(segments))]
	}
	return vdb.NewTable("customer",
		vdb.NewIntColumn("c_custkey", key),
		vdb.NewStringColumn("c_name", name),
		vdb.NewIntColumn("c_nationkey", nation),
		vdb.NewFloatColumn("c_acctbal", acctbal),
		vdb.NewStringColumn("c_mktsegment", seg),
	)
}

func genPart(r *rng, n int) (*vdb.Table, error) {
	key := make([]int64, n)
	name := make([]string, n)
	mfgr := make([]string, n)
	brand := make([]string, n)
	ptype := make([]string, n)
	size := make([]int64, n)
	container := make([]string, n)
	price := make([]float64, n)
	for i := 0; i < n; i++ {
		key[i] = int64(i + 1)
		c1, c2 := colors[r.intn(len(colors))], colors[r.intn(len(colors))]
		name[i] = c1 + " " + c2
		m := 1 + r.intn(5)
		b := 1 + r.intn(5)
		mfgr[i] = fmt.Sprintf("Manufacturer#%d", m)
		brand[i] = fmt.Sprintf("Brand#%d%d", m, b)
		ptype[i] = typeSyllable1[r.intn(len(typeSyllable1))] + " " +
			typeSyllable2[r.intn(len(typeSyllable2))] + " " +
			typeSyllable3[r.intn(len(typeSyllable3))]
		size[i] = int64(1 + r.intn(50))
		container[i] = containers[r.intn(len(containers))]
		price[i] = 900 + float64((i+1)%201)/10*100
	}
	return vdb.NewTable("part",
		vdb.NewIntColumn("p_partkey", key),
		vdb.NewStringColumn("p_name", name),
		vdb.NewStringColumn("p_mfgr", mfgr),
		vdb.NewStringColumn("p_brand", brand),
		vdb.NewStringColumn("p_type", ptype),
		vdb.NewIntColumn("p_size", size),
		vdb.NewStringColumn("p_container", container),
		vdb.NewFloatColumn("p_retailprice", price),
	)
}

func genPartSupp(r *rng, nPart, nSupp int) (*vdb.Table, error) {
	n := nPart * partSuppPer
	pk := make([]int64, 0, n)
	sk := make([]int64, 0, n)
	cost := make([]float64, 0, n)
	avail := make([]int64, 0, n)
	for p := 1; p <= nPart; p++ {
		for j := 0; j < partSuppPer; j++ {
			pk = append(pk, int64(p))
			// TPC-H's supplier spreading formula keeps pairs distinct.
			sk = append(sk, int64((p+j*(nSupp/4+p%(nSupp/4+1)))%nSupp+1))
			cost = append(cost, 1+r.float()*999)
			avail = append(avail, int64(1+r.intn(9999)))
		}
	}
	return vdb.NewTable("partsupp",
		vdb.NewIntColumn("ps_partkey", pk),
		vdb.NewIntColumn("ps_suppkey", sk),
		vdb.NewFloatColumn("ps_supplycost", cost),
		vdb.NewIntColumn("ps_availqty", avail),
	)
}

func genOrdersAndLineitem(r *rng, nOrd, nCust, nPart, nSupp int) (orders, lineitem *vdb.Table, err error) {
	oKey := make([]int64, nOrd)
	oCust := make([]int64, nOrd)
	oStatus := make([]string, nOrd)
	oTotal := make([]float64, nOrd)
	oDate := make([]int64, nOrd)
	oPrio := make([]string, nOrd)

	var lOrder, lPart, lSupp, lNum, lQty []int64
	var lPrice, lDisc, lTax []float64
	var lRet, lStatus []string
	var lShip, lCommit, lReceipt []int64
	var lMode, lInstruct []string

	endDate := Date(1998, 8, 2)
	for i := 0; i < nOrd; i++ {
		oKey[i] = int64(i + 1)
		oCust[i] = int64(1 + r.intn(nCust))
		oDate[i] = int64(r.intn(int(Date(1998, 5, 1))))
		oPrio[i] = priorities[r.intn(len(priorities))]

		nLines := 1 + r.intn(maxLinesPer)
		var total float64
		allFinished := true
		for ln := 1; ln <= nLines; ln++ {
			ship := oDate[i] + int64(1+r.intn(120))
			commit := oDate[i] + int64(30+r.intn(60))
			receipt := ship + int64(1+r.intn(30))
			if receipt > endDate {
				receipt = endDate
			}
			qty := int64(1 + r.intn(50))
			price := 900 + r.float()*100000
			disc := float64(r.intn(11)) / 100
			tax := float64(r.intn(9)) / 100

			var ret string
			if receipt <= Date(1995, 6, 17) {
				if r.intn(2) == 0 {
					ret = "R"
				} else {
					ret = "A"
				}
			} else {
				ret = "N"
			}
			status := "F"
			if ship > Date(1995, 6, 17) {
				status = "O"
				allFinished = false
			}

			lOrder = append(lOrder, oKey[i])
			lPart = append(lPart, int64(1+r.intn(nPart)))
			lSupp = append(lSupp, int64(1+r.intn(nSupp)))
			lNum = append(lNum, int64(ln))
			lQty = append(lQty, qty)
			lPrice = append(lPrice, price)
			lDisc = append(lDisc, disc)
			lTax = append(lTax, tax)
			lRet = append(lRet, ret)
			lStatus = append(lStatus, status)
			lShip = append(lShip, ship)
			lCommit = append(lCommit, commit)
			lReceipt = append(lReceipt, receipt)
			lMode = append(lMode, shipModes[r.intn(len(shipModes))])
			lInstruct = append(lInstruct, shipInstructs[r.intn(len(shipInstructs))])
			total += price * float64(qty)
		}
		oTotal[i] = total
		if allFinished {
			oStatus[i] = "F"
		} else {
			oStatus[i] = "O"
		}
	}

	orders, err = vdb.NewTable("orders",
		vdb.NewIntColumn("o_orderkey", oKey),
		vdb.NewIntColumn("o_custkey", oCust),
		vdb.NewStringColumn("o_orderstatus", oStatus),
		vdb.NewFloatColumn("o_totalprice", oTotal),
		vdb.NewIntColumn("o_orderdate", oDate),
		vdb.NewStringColumn("o_orderpriority", oPrio),
	)
	if err != nil {
		return nil, nil, err
	}
	lineitem, err = vdb.NewTable("lineitem",
		vdb.NewIntColumn("l_orderkey", lOrder),
		vdb.NewIntColumn("l_partkey", lPart),
		vdb.NewIntColumn("l_suppkey", lSupp),
		vdb.NewIntColumn("l_linenumber", lNum),
		vdb.NewIntColumn("l_quantity", lQty),
		vdb.NewFloatColumn("l_extendedprice", lPrice),
		vdb.NewFloatColumn("l_discount", lDisc),
		vdb.NewFloatColumn("l_tax", lTax),
		vdb.NewStringColumn("l_returnflag", lRet),
		vdb.NewStringColumn("l_linestatus", lStatus),
		vdb.NewIntColumn("l_shipdate", lShip),
		vdb.NewIntColumn("l_commitdate", lCommit),
		vdb.NewIntColumn("l_receiptdate", lReceipt),
		vdb.NewStringColumn("l_shipmode", lMode),
		vdb.NewStringColumn("l_shipinstruct", lInstruct),
	)
	if err != nil {
		return nil, nil, err
	}
	return orders, lineitem, nil
}
