package tpch

import (
	"fmt"

	"repro/internal/vdb"
)

// Query is a named TPC-H-like query: a plan over the Gen catalog.
type Query struct {
	Num  int
	Name string
	Plan vdb.Node
}

// revenue is the TPC-H revenue expression l_extendedprice * (1 - l_discount).
func revenue() vdb.Expr {
	return vdb.Mul(vdb.Col("l_extendedprice"), vdb.Sub(vdb.Float(1), vdb.Col("l_discount")))
}

// Queries returns analogs of all 22 TPC-H queries, in order. Each keeps the
// original's plan shape (scan-heavy aggregation, selective multi-way joins,
// grouped tops) within vdb's operator set: single-column equi-joins, no
// correlated subqueries — where the original needs one, the analog uses the
// closest join/aggregate composition. DESIGN.md documents the substitution.
func Queries() []Query {
	lineitem := func() *vdb.Plan { return vdb.Scan("lineitem") }

	qs := []Query{
		{1, "pricing summary report", q1()},

		{2, "minimum cost supplier", vdb.Scan("part").
			Filter(vdb.And(vdb.Le(vdb.Col("p_size"), vdb.Int(15)), vdb.HasSuffix(vdb.Col("p_type"), "BRASS"))).
			Join(vdb.Scan("partsupp"), "p_partkey", "ps_partkey").
			Join(vdb.Scan("supplier"), "ps_suppkey", "s_suppkey").
			Join(vdb.Scan("nation"), "s_nationkey", "n_nationkey").
			GroupBy([]string{"n_name"}, vdb.MinOf(vdb.Col("ps_supplycost"), "min_cost")).
			OrderBy(vdb.SortKey{Col: "n_name"}).Node()},

		{3, "shipping priority", vdb.Scan("customer").
			Filter(vdb.Eq(vdb.Col("c_mktsegment"), vdb.Str("BUILDING"))).
			Join(vdb.Scan("orders"), "c_custkey", "o_custkey").
			Filter(vdb.Lt(vdb.Col("o_orderdate"), vdb.Int(Date(1995, 3, 15)))).
			Join(lineitem(), "o_orderkey", "l_orderkey").
			Filter(vdb.Gt(vdb.Col("l_shipdate"), vdb.Int(Date(1995, 3, 15)))).
			GroupBy([]string{"o_orderkey"}, vdb.Sum(revenue(), "revenue")).
			OrderBy(vdb.SortKey{Col: "revenue", Desc: true}, vdb.SortKey{Col: "o_orderkey"}).
			Limit(10).Node()},

		{4, "order priority checking", vdb.Scan("orders").
			Filter(vdb.And(
				vdb.Ge(vdb.Col("o_orderdate"), vdb.Int(Date(1993, 7, 1))),
				vdb.Lt(vdb.Col("o_orderdate"), vdb.Int(Date(1993, 10, 1))))).
			Join(lineitem(), "o_orderkey", "l_orderkey").
			Filter(vdb.Lt(vdb.Col("l_commitdate"), vdb.Col("l_receiptdate"))).
			GroupBy([]string{"o_orderpriority"}, vdb.CountDistinct(vdb.Col("o_orderkey"), "order_count")).
			OrderBy(vdb.SortKey{Col: "o_orderpriority"}).Node()},

		{5, "local supplier volume", vdb.Scan("orders").
			Filter(vdb.And(
				vdb.Ge(vdb.Col("o_orderdate"), vdb.Int(Date(1994, 1, 1))),
				vdb.Lt(vdb.Col("o_orderdate"), vdb.Int(Date(1995, 1, 1))))).
			Join(lineitem(), "o_orderkey", "l_orderkey").
			Join(vdb.Scan("supplier"), "l_suppkey", "s_suppkey").
			Join(vdb.Scan("nation"), "s_nationkey", "n_nationkey").
			Join(vdb.Scan("region"), "n_regionkey", "r_regionkey").
			Filter(vdb.Eq(vdb.Col("r_name"), vdb.Str("ASIA"))).
			GroupBy([]string{"n_name"}, vdb.Sum(revenue(), "revenue")).
			OrderBy(vdb.SortKey{Col: "revenue", Desc: true}).Node()},

		{6, "revenue forecast", q6()},

		{7, "volume shipping", lineitem().
			Join(vdb.Scan("supplier"), "l_suppkey", "s_suppkey").
			Join(vdb.Scan("nation"), "s_nationkey", "n_nationkey").
			Filter(vdb.And(
				vdb.Or(vdb.Eq(vdb.Col("n_name"), vdb.Str("FRANCE")), vdb.Eq(vdb.Col("n_name"), vdb.Str("GERMANY"))),
				vdb.And(
					vdb.Ge(vdb.Col("l_shipdate"), vdb.Int(Date(1995, 1, 1))),
					vdb.Le(vdb.Col("l_shipdate"), vdb.Int(Date(1996, 12, 31)))))).
			Project([]string{"supp_nation", "l_year", "volume"},
				vdb.Col("n_name"),
				vdb.Add(vdb.Int(1992), vdb.Div(vdb.Col("l_shipdate"), vdb.Int(365))),
				revenue()).
			GroupBy([]string{"supp_nation", "l_year"}, vdb.Sum(vdb.Col("volume"), "revenue")).
			OrderBy(vdb.SortKey{Col: "supp_nation"}, vdb.SortKey{Col: "l_year"}).Node()},

		{8, "national market share", lineitem().
			Join(vdb.Scan("part"), "l_partkey", "p_partkey").
			Filter(vdb.Eq(vdb.Col("p_type"), vdb.Str("ECONOMY ANODIZED STEEL"))).
			Join(vdb.Scan("orders"), "l_orderkey", "o_orderkey").
			Filter(vdb.And(
				vdb.Ge(vdb.Col("o_orderdate"), vdb.Int(Date(1995, 1, 1))),
				vdb.Le(vdb.Col("o_orderdate"), vdb.Int(Date(1996, 12, 31))))).
			Project([]string{"o_year", "volume"},
				vdb.Add(vdb.Int(1992), vdb.Div(vdb.Col("o_orderdate"), vdb.Int(365))),
				revenue()).
			GroupBy([]string{"o_year"}, vdb.Sum(vdb.Col("volume"), "mkt_share")).
			OrderBy(vdb.SortKey{Col: "o_year"}).Node()},

		{9, "product type profit", lineitem().
			Join(vdb.Scan("part"), "l_partkey", "p_partkey").
			Filter(vdb.Contains(vdb.Col("p_name"), "green")).
			Join(vdb.Scan("supplier"), "l_suppkey", "s_suppkey").
			Join(vdb.Scan("nation"), "s_nationkey", "n_nationkey").
			Project([]string{"nation", "o_year", "amount"},
				vdb.Col("n_name"),
				vdb.Add(vdb.Int(1992), vdb.Div(vdb.Col("l_shipdate"), vdb.Int(365))),
				revenue()).
			GroupBy([]string{"nation", "o_year"}, vdb.Sum(vdb.Col("amount"), "sum_profit")).
			OrderBy(vdb.SortKey{Col: "nation"}, vdb.SortKey{Col: "o_year", Desc: true}).Node()},

		{10, "returned item reporting", vdb.Scan("customer").
			Join(vdb.Scan("orders"), "c_custkey", "o_custkey").
			Filter(vdb.And(
				vdb.Ge(vdb.Col("o_orderdate"), vdb.Int(Date(1993, 10, 1))),
				vdb.Lt(vdb.Col("o_orderdate"), vdb.Int(Date(1994, 1, 1))))).
			Join(lineitem(), "o_orderkey", "l_orderkey").
			Filter(vdb.Eq(vdb.Col("l_returnflag"), vdb.Str("R"))).
			GroupBy([]string{"c_name"}, vdb.Sum(revenue(), "revenue")).
			OrderBy(vdb.SortKey{Col: "revenue", Desc: true}, vdb.SortKey{Col: "c_name"}).
			Limit(20).Node()},

		{11, "important stock identification", vdb.Scan("partsupp").
			Join(vdb.Scan("supplier"), "ps_suppkey", "s_suppkey").
			Join(vdb.Scan("nation"), "s_nationkey", "n_nationkey").
			Filter(vdb.Eq(vdb.Col("n_name"), vdb.Str("GERMANY"))).
			Project([]string{"ps_partkey", "value"},
				vdb.Col("ps_partkey"),
				vdb.Mul(vdb.Col("ps_supplycost"), vdb.Col("ps_availqty"))).
			GroupBy([]string{"ps_partkey"}, vdb.Sum(vdb.Col("value"), "value_sum")).
			OrderBy(vdb.SortKey{Col: "value_sum", Desc: true}, vdb.SortKey{Col: "ps_partkey"}).
			Limit(20).Node()},

		{12, "shipping modes and order priority", vdb.Scan("orders").
			Join(lineitem(), "o_orderkey", "l_orderkey").
			Filter(vdb.And(
				vdb.Or(vdb.Eq(vdb.Col("l_shipmode"), vdb.Str("MAIL")), vdb.Eq(vdb.Col("l_shipmode"), vdb.Str("SHIP"))),
				vdb.And(
					vdb.Ge(vdb.Col("l_receiptdate"), vdb.Int(Date(1994, 1, 1))),
					vdb.Lt(vdb.Col("l_receiptdate"), vdb.Int(Date(1995, 1, 1)))))).
			Project([]string{"l_shipmode", "is_high", "is_low"},
				vdb.Col("l_shipmode"),
				vdb.Or(vdb.Eq(vdb.Col("o_orderpriority"), vdb.Str("1-URGENT")), vdb.Eq(vdb.Col("o_orderpriority"), vdb.Str("2-HIGH"))),
				vdb.And(vdb.Ne(vdb.Col("o_orderpriority"), vdb.Str("1-URGENT")), vdb.Ne(vdb.Col("o_orderpriority"), vdb.Str("2-HIGH")))).
			GroupBy([]string{"l_shipmode"},
				vdb.Sum(vdb.Col("is_high"), "high_line_count"),
				vdb.Sum(vdb.Col("is_low"), "low_line_count")).
			OrderBy(vdb.SortKey{Col: "l_shipmode"}).Node()},

		{13, "customer distribution", vdb.From(vdb.Scan("customer").
			Join(vdb.Scan("orders"), "c_custkey", "o_custkey").
			GroupBy([]string{"c_custkey"}, vdb.Count("c_count")).Node()).
			GroupBy([]string{"c_count"}, vdb.Count("custdist")).
			OrderBy(vdb.SortKey{Col: "custdist", Desc: true}, vdb.SortKey{Col: "c_count", Desc: true}).Node()},

		{14, "promotion effect", lineitem().
			Filter(vdb.And(
				vdb.Ge(vdb.Col("l_shipdate"), vdb.Int(Date(1995, 9, 1))),
				vdb.Lt(vdb.Col("l_shipdate"), vdb.Int(Date(1995, 10, 1))))).
			Join(vdb.Scan("part"), "l_partkey", "p_partkey").
			Project([]string{"promo_rev", "total_rev"},
				vdb.Mul(boolToFloat(vdb.HasPrefix(vdb.Col("p_type"), "PROMO")), revenue()),
				revenue()).
			Aggregate(
				vdb.Sum(vdb.Col("promo_rev"), "promo"),
				vdb.Sum(vdb.Col("total_rev"), "total")).Node()},

		{15, "top supplier", vdb.From(lineitem().
			Filter(vdb.And(
				vdb.Ge(vdb.Col("l_shipdate"), vdb.Int(Date(1996, 1, 1))),
				vdb.Lt(vdb.Col("l_shipdate"), vdb.Int(Date(1996, 4, 1))))).
			GroupBy([]string{"l_suppkey"}, vdb.Sum(revenue(), "total_revenue")).Node()).
			Join(vdb.Scan("supplier"), "l_suppkey", "s_suppkey").
			OrderBy(vdb.SortKey{Col: "total_revenue", Desc: true}, vdb.SortKey{Col: "s_name"}).
			Limit(1).
			Project([]string{"s_name", "total_revenue"}, vdb.Col("s_name"), vdb.Col("total_revenue")).Node()},

		{16, "parts/supplier relationship", q16()},

		{17, "small-quantity-order revenue", lineitem().
			Filter(vdb.Lt(vdb.Col("l_quantity"), vdb.Int(3))).
			Join(vdb.Scan("part"), "l_partkey", "p_partkey").
			Filter(vdb.And(
				vdb.Eq(vdb.Col("p_brand"), vdb.Str("Brand#23")),
				vdb.Eq(vdb.Col("p_container"), vdb.Str("MED BOX")))).
			Project([]string{"price7"}, vdb.Div(vdb.Col("l_extendedprice"), vdb.Float(7))).
			Aggregate(vdb.Sum(vdb.Col("price7"), "avg_yearly")).Node()},

		{18, "large volume customer", vdb.From(lineitem().
			GroupBy([]string{"l_orderkey"}, vdb.Sum(vdb.Col("l_quantity"), "sum_qty")).Node()).
			Filter(vdb.Gt(vdb.Col("sum_qty"), vdb.Int(180))).
			Join(vdb.Scan("orders"), "l_orderkey", "o_orderkey").
			Join(vdb.Scan("customer"), "o_custkey", "c_custkey").
			Project([]string{"c_name", "o_orderkey", "o_totalprice", "sum_qty"},
				vdb.Col("c_name"), vdb.Col("o_orderkey"), vdb.Col("o_totalprice"), vdb.Col("sum_qty")).
			OrderBy(vdb.SortKey{Col: "o_totalprice", Desc: true}, vdb.SortKey{Col: "o_orderkey"}).
			Limit(10).Node()},

		{19, "discounted revenue", lineitem().
			Join(vdb.Scan("part"), "l_partkey", "p_partkey").
			Filter(vdb.Or(
				vdb.And(vdb.Eq(vdb.Col("p_brand"), vdb.Str("Brand#12")),
					vdb.And(vdb.Ge(vdb.Col("l_quantity"), vdb.Int(1)), vdb.Le(vdb.Col("l_quantity"), vdb.Int(11)))),
				vdb.Or(
					vdb.And(vdb.Eq(vdb.Col("p_brand"), vdb.Str("Brand#23")),
						vdb.And(vdb.Ge(vdb.Col("l_quantity"), vdb.Int(10)), vdb.Le(vdb.Col("l_quantity"), vdb.Int(20)))),
					vdb.And(vdb.Eq(vdb.Col("p_brand"), vdb.Str("Brand#34")),
						vdb.And(vdb.Ge(vdb.Col("l_quantity"), vdb.Int(20)), vdb.Le(vdb.Col("l_quantity"), vdb.Int(30))))))).
			Aggregate(vdb.Sum(revenue(), "revenue")).Node()},

		{20, "potential part promotion", vdb.Scan("part").
			Filter(vdb.HasPrefix(vdb.Col("p_name"), "forest")).
			Join(vdb.Scan("partsupp"), "p_partkey", "ps_partkey").
			Join(vdb.Scan("supplier"), "ps_suppkey", "s_suppkey").
			GroupBy([]string{"s_name"}, vdb.Count("n_parts")).
			OrderBy(vdb.SortKey{Col: "s_name"}).Node()},

		{21, "suppliers who kept orders waiting", lineitem().
			Filter(vdb.Gt(vdb.Col("l_receiptdate"), vdb.Col("l_commitdate"))).
			Join(vdb.Scan("orders"), "l_orderkey", "o_orderkey").
			Filter(vdb.Eq(vdb.Col("o_orderstatus"), vdb.Str("F"))).
			Join(vdb.Scan("supplier"), "l_suppkey", "s_suppkey").
			Join(vdb.Scan("nation"), "s_nationkey", "n_nationkey").
			// The original filters one nation; with the scaled-down
			// supplier population a single nation is often empty, so
			// the analog filters a region-sized nation group instead.
			Filter(vdb.Le(vdb.Col("n_regionkey"), vdb.Int(2))).
			GroupBy([]string{"s_name"}, vdb.Count("numwait")).
			OrderBy(vdb.SortKey{Col: "numwait", Desc: true}, vdb.SortKey{Col: "s_name"}).
			Limit(10).Node()},

		{22, "global sales opportunity", vdb.Scan("customer").
			Filter(vdb.Gt(vdb.Col("c_acctbal"), vdb.Float(7500))).
			Join(vdb.Scan("nation"), "c_nationkey", "n_nationkey").
			GroupBy([]string{"n_name"},
				vdb.Count("numcust"),
				vdb.Sum(vdb.Col("c_acctbal"), "totacctbal")).
			OrderBy(vdb.SortKey{Col: "n_name"}).Node()},
	}
	for i := range qs {
		if qs[i].Num != i+1 {
			panic(fmt.Sprintf("tpch: query list out of order at %d", i))
		}
	}
	return qs
}

// Q returns query number n (1-based).
func Q(n int) (Query, error) {
	qs := Queries()
	if n < 1 || n > len(qs) {
		return Query{}, fmt.Errorf("tpch: query %d out of range [1,%d]", n, len(qs))
	}
	return qs[n-1], nil
}

// q1 is the pricing summary report, the paper's workhorse query: scan
// lineitem below a shipdate cutoff, group by returnflag+linestatus, compute
// sums, averages and a count.
func q1() vdb.Node {
	return vdb.Scan("lineitem").
		Filter(vdb.Le(vdb.Col("l_shipdate"), vdb.Int(Date(1998, 9, 2)-90))).
		Project([]string{"l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice", "disc_price", "charge", "l_discount"},
			vdb.Col("l_returnflag"), vdb.Col("l_linestatus"), vdb.Col("l_quantity"),
			vdb.Col("l_extendedprice"),
			revenue(),
			vdb.Mul(revenue(), vdb.Add(vdb.Float(1), vdb.Col("l_tax"))),
			vdb.Col("l_discount")).
		GroupBy([]string{"l_returnflag", "l_linestatus"},
			vdb.Sum(vdb.Col("l_quantity"), "sum_qty"),
			vdb.Sum(vdb.Col("l_extendedprice"), "sum_base_price"),
			vdb.Sum(vdb.Col("disc_price"), "sum_disc_price"),
			vdb.Sum(vdb.Col("charge"), "sum_charge"),
			vdb.Avg(vdb.Col("l_quantity"), "avg_qty"),
			vdb.Avg(vdb.Col("l_extendedprice"), "avg_price"),
			vdb.Avg(vdb.Col("l_discount"), "avg_disc"),
			vdb.Count("count_order")).
		OrderBy(vdb.SortKey{Col: "l_returnflag"}, vdb.SortKey{Col: "l_linestatus"}).Node()
}

// q6 is the forecast revenue change query: a pure scan-filter-aggregate.
func q6() vdb.Node {
	return vdb.Scan("lineitem").
		Filter(vdb.And(
			vdb.And(
				vdb.Ge(vdb.Col("l_shipdate"), vdb.Int(Date(1994, 1, 1))),
				vdb.Lt(vdb.Col("l_shipdate"), vdb.Int(Date(1995, 1, 1)))),
			vdb.And(
				vdb.And(vdb.Ge(vdb.Col("l_discount"), vdb.Float(0.05)), vdb.Le(vdb.Col("l_discount"), vdb.Float(0.07))),
				vdb.Lt(vdb.Col("l_quantity"), vdb.Int(24))))).
		Project([]string{"rev"}, vdb.Mul(vdb.Col("l_extendedprice"), vdb.Col("l_discount"))).
		Aggregate(vdb.Sum(vdb.Col("rev"), "revenue")).Node()
}

// q16 counts distinct suppliers per (brand, type, size) for qualifying
// parts — the paper's "Q16" with its characteristically large (1.2MB at
// sf=1) result output.
func q16() vdb.Node {
	return vdb.Scan("part").
		Filter(vdb.And(
			vdb.Ne(vdb.Col("p_brand"), vdb.Str("Brand#45")),
			vdb.And(
				vdb.Not(vdb.HasPrefix(vdb.Col("p_type"), "MEDIUM POLISHED")),
				vdb.Lt(vdb.Col("p_size"), vdb.Int(20))))).
		Join(vdb.Scan("partsupp"), "p_partkey", "ps_partkey").
		GroupBy([]string{"p_brand", "p_type", "p_size"},
			vdb.CountDistinct(vdb.Col("ps_suppkey"), "supplier_cnt")).
		OrderBy(vdb.SortKey{Col: "supplier_cnt", Desc: true},
			vdb.SortKey{Col: "p_brand"}, vdb.SortKey{Col: "p_type"}, vdb.SortKey{Col: "p_size"}).Node()
}

// boolToFloat widens a 0/1 predicate to float for arithmetic.
func boolToFloat(pred vdb.Expr) vdb.Expr {
	return vdb.Mul(pred, vdb.Float(1))
}
