package config

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestDefaultsChain(t *testing.T) {
	defaults, err := FromPairs("dataDir", "./data", "doStore", "true")
	if err != nil {
		t.Fatal(err)
	}
	p := New(defaults)
	// Unset key falls back to default (the paper's init() pattern).
	if v, err := p.Get("dataDir"); err != nil || v != "./data" {
		t.Errorf("dataDir = %q, %v", v, err)
	}
	// Override wins.
	p.Set("dataDir", "./test")
	if v, _ := p.Get("dataDir"); v != "./test" {
		t.Errorf("overridden dataDir = %q", v)
	}
	// Unknown key: meaningful error naming known keys.
	_, err = p.Get("bogus")
	if err == nil || !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "dataDir") {
		t.Errorf("error = %v", err)
	}
	if p.GetOr("bogus", "fb") != "fb" {
		t.Error("GetOr fallback")
	}
}

func TestTypedGetters(t *testing.T) {
	p, _ := FromPairs("n", "42", "f", "1.5", "b", "yes", "d", "150ms", "bad", "xyz")
	if n, err := p.GetInt("n"); err != nil || n != 42 {
		t.Errorf("GetInt = %d, %v", n, err)
	}
	if f, err := p.GetFloat("f"); err != nil || f != 1.5 {
		t.Errorf("GetFloat = %g, %v", f, err)
	}
	if b, err := p.GetBool("b"); err != nil || !b {
		t.Errorf("GetBool = %v, %v", b, err)
	}
	if d, err := p.GetDuration("d"); err != nil || d != 150*time.Millisecond {
		t.Errorf("GetDuration = %v, %v", d, err)
	}
	for _, fn := range []func(string) error{
		func(k string) error { _, err := p.GetInt(k); return err },
		func(k string) error { _, err := p.GetFloat(k); return err },
		func(k string) error { _, err := p.GetBool(k); return err },
		func(k string) error { _, err := p.GetDuration(k); return err },
	} {
		if err := fn("bad"); err == nil {
			t.Error("bad value should error")
		}
		if err := fn("missing"); err == nil {
			t.Error("missing key should error")
		}
	}
	for s, want := range map[string]bool{"true": true, "1": true, "ON": true, "no": false, "0": false, "off": false} {
		p.Set("x", s)
		got, err := p.GetBool("x")
		if err != nil || got != want {
			t.Errorf("GetBool(%q) = %v, %v", s, got, err)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	p, _ := FromPairs("key.one", "value one", "path", `C:\tmp`, "multi", "a\nb")
	text := p.Store("experiment parameters")
	if !strings.HasPrefix(text, "# experiment parameters\n") {
		t.Errorf("missing comment header: %q", text)
	}
	q, err := Load(text, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"key.one", "path", "multi"} {
		a, _ := p.Get(k)
		b, err := q.Get(k)
		if err != nil || a != b {
			t.Errorf("round trip %q: %q vs %q (%v)", k, a, b, err)
		}
	}
}

func TestLoadErrorsAndComments(t *testing.T) {
	text := "# comment\n! also comment\n\nkey=value\n"
	p, err := Load(text, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Get("key"); v != "value" {
		t.Errorf("key = %q", v)
	}
	if _, err := Load("novalue\n", nil); err == nil {
		t.Error("malformed line should error")
	}
	if _, err := Load("=nokey\n", nil); err == nil {
		t.Error("empty key should error")
	}
}

func TestApplyArgs(t *testing.T) {
	p := New(nil)
	rest, err := p.ApplyArgs([]string{"-DdataDir=./test", "run", "-DdoStore=false", "q1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0] != "run" || rest[1] != "q1" {
		t.Errorf("rest = %v", rest)
	}
	if v, _ := p.Get("dataDir"); v != "./test" {
		t.Errorf("dataDir = %q", v)
	}
	if _, err := p.ApplyArgs([]string{"-Dmalformed"}); err == nil {
		t.Error("malformed -D should error")
	}
	if _, err := p.ApplyArgs([]string{"-D=v"}); err == nil {
		t.Error("empty key -D should error")
	}
}

func TestApplyEnv(t *testing.T) {
	p := New(nil)
	p.ApplyEnv([]string{"PERFEVAL_DATA_DIR=/x", "OTHER=1", "PERFEVAL_SCALE=0.1", "MALFORMED"}, "PERFEVAL")
	if v, _ := p.Get("data.dir"); v != "/x" {
		t.Errorf("data.dir = %q", v)
	}
	if v, _ := p.Get("scale"); v != "0.1" {
		t.Errorf("scale = %q", v)
	}
	if _, err := p.Get("other"); err == nil {
		t.Error("unprefixed env var should not apply")
	}
}

func TestKeysOrderAndChain(t *testing.T) {
	defaults, _ := FromPairs("z", "1", "a", "2")
	p := New(defaults)
	p.Set("m", "3")
	p.Set("b", "4")
	keys := p.Keys()
	// Own keys first in insertion order, then inherited sorted.
	want := []string{"m", "b", "a", "z"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("keys[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
	// Overriding an inherited key doesn't duplicate it.
	p.Set("a", "x")
	count := 0
	for _, k := range p.Keys() {
		if k == "a" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("key 'a' appears %d times", count)
	}
}

func TestFromPairsOdd(t *testing.T) {
	if _, err := FromPairs("only-key"); err == nil {
		t.Error("odd pair count should error")
	}
}

// Property: Store/Load round-trips arbitrary printable values.
func TestRoundTripQuick(t *testing.T) {
	f := func(rawKey, rawVal []byte) bool {
		key := sanitizeKey(rawKey)
		val := sanitizeVal(rawVal)
		if key == "" {
			return true
		}
		p := New(nil)
		p.Set(key, val)
		q, err := Load(p.Store(""), nil)
		if err != nil {
			return false
		}
		got, err := q.Get(key)
		return err == nil && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func sanitizeKey(raw []byte) string {
	var b strings.Builder
	for _, c := range raw {
		if c > ' ' && c < 127 && c != '=' && c != '#' && c != '!' && c != '\\' {
			b.WriteByte(c)
		}
	}
	return b.String()
}

func sanitizeVal(raw []byte) string {
	var b strings.Builder
	for _, c := range raw {
		if c >= ' ' && c < 127 {
			b.WriteByte(c)
		}
	}
	return strings.TrimSpace(b.String())
}
