// Package config implements the parameterization machinery of the paper's
// Repeatability chapter: a Properties store (modeled on the
// java.util.Properties pattern the paper walks through) with defaults,
// key=value file load/store, environment overrides, and -Dkey=value
// command-line overrides — so that producing a measurement for
// f1=v1, ..., fk=vk never requires editing source code ("You may omit
// coding like this: the input data set files should be specified in source
// file util.GlobalProperty.java").
package config

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Properties is an ordered string-to-string parameter map with a defaults
// chain: Get falls back to the defaults when the key is unset.
type Properties struct {
	values   map[string]string
	order    []string
	defaults *Properties
}

// New returns an empty Properties with optional defaults.
func New(defaults *Properties) *Properties {
	return &Properties{values: make(map[string]string), defaults: defaults}
}

// FromPairs builds Properties from alternating key, value strings.
func FromPairs(pairs ...string) (*Properties, error) {
	if len(pairs)%2 != 0 {
		return nil, fmt.Errorf("config: FromPairs needs an even number of arguments, got %d", len(pairs))
	}
	p := New(nil)
	for i := 0; i < len(pairs); i += 2 {
		p.Set(pairs[i], pairs[i+1])
	}
	return p, nil
}

// Set stores a key.
func (p *Properties) Set(key, value string) {
	if _, exists := p.values[key]; !exists {
		p.order = append(p.order, key)
	}
	p.values[key] = value
}

// Get retrieves a key, consulting the defaults chain. The error names the
// key and the known keys — "report meaningful error".
func (p *Properties) Get(key string) (string, error) {
	if v, ok := p.values[key]; ok {
		return v, nil
	}
	if p.defaults != nil {
		if v, err := p.defaults.Get(key); err == nil {
			return v, nil
		}
	}
	return "", fmt.Errorf("config: parameter %q is not set (known: %s)", key, strings.Join(p.Keys(), ", "))
}

// GetOr retrieves a key or returns fallback.
func (p *Properties) GetOr(key, fallback string) string {
	if v, err := p.Get(key); err == nil {
		return v
	}
	return fallback
}

// GetInt retrieves an integer parameter.
func (p *Properties) GetInt(key string) (int, error) {
	v, err := p.Get(key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil {
		return 0, fmt.Errorf("config: parameter %q = %q is not an integer", key, v)
	}
	return n, nil
}

// GetFloat retrieves a float parameter (C-locale).
func (p *Properties) GetFloat(key string) (float64, error) {
	v, err := p.Get(key)
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	if err != nil {
		return 0, fmt.Errorf("config: parameter %q = %q is not a number", key, v)
	}
	return f, nil
}

// GetBool retrieves a boolean parameter (true/false/1/0/yes/no).
func (p *Properties) GetBool(key string) (bool, error) {
	v, err := p.Get(key)
	if err != nil {
		return false, err
	}
	switch strings.ToLower(strings.TrimSpace(v)) {
	case "true", "1", "yes", "on":
		return true, nil
	case "false", "0", "no", "off":
		return false, nil
	default:
		return false, fmt.Errorf("config: parameter %q = %q is not a boolean", key, v)
	}
}

// GetDuration retrieves a Go-syntax duration parameter ("150ms").
func (p *Properties) GetDuration(key string) (time.Duration, error) {
	v, err := p.Get(key)
	if err != nil {
		return 0, err
	}
	d, err := time.ParseDuration(strings.TrimSpace(v))
	if err != nil {
		return 0, fmt.Errorf("config: parameter %q = %q is not a duration", key, v)
	}
	return d, nil
}

// Keys returns all keys visible through the chain, own keys in insertion
// order followed by default-only keys.
func (p *Properties) Keys() []string {
	seen := make(map[string]bool, len(p.values))
	out := make([]string, 0, len(p.values))
	for _, k := range p.order {
		out = append(out, k)
		seen[k] = true
	}
	if p.defaults != nil {
		var inherited []string
		for _, k := range p.defaults.Keys() {
			if !seen[k] {
				inherited = append(inherited, k)
			}
		}
		sort.Strings(inherited)
		out = append(out, inherited...)
	}
	return out
}

// Store renders the properties (own keys only) in key=value file format
// with escaping for newlines and backslashes.
func (p *Properties) Store(comment string) string {
	var b strings.Builder
	if comment != "" {
		fmt.Fprintf(&b, "# %s\n", comment)
	}
	for _, k := range p.order {
		fmt.Fprintf(&b, "%s=%s\n", escape(k), escape(p.values[k]))
	}
	return b.String()
}

// Load parses key=value lines ('#' and '!' comments, blank lines ignored)
// into a new Properties with the given defaults. Malformed lines produce an
// error naming the line.
func Load(text string, defaults *Properties) (*Properties, error) {
	p := New(defaults)
	for i, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || trimmed[0] == '#' || trimmed[0] == '!' {
			continue
		}
		eq := strings.IndexByte(trimmed, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("config: line %d: expected key=value, got %q", i+1, trimmed)
		}
		key := unescape(strings.TrimSpace(trimmed[:eq]))
		val := unescape(strings.TrimSpace(trimmed[eq+1:]))
		p.Set(key, val)
	}
	return p, nil
}

// ApplyArgs overlays -Dkey=value command-line arguments (the paper's
// "java -DdataDir=./test" pattern) and returns the remaining arguments.
// Malformed -D arguments produce an error.
func (p *Properties) ApplyArgs(args []string) (rest []string, err error) {
	for _, a := range args {
		if !strings.HasPrefix(a, "-D") {
			rest = append(rest, a)
			continue
		}
		body := a[2:]
		eq := strings.IndexByte(body, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("config: malformed property argument %q; want -Dkey=value", a)
		}
		p.Set(body[:eq], body[eq+1:])
	}
	return rest, nil
}

// ApplyEnv overlays environment variables with the given prefix:
// PREFIX_DATA_DIR=x sets data.dir. environ is in os.Environ format.
func (p *Properties) ApplyEnv(environ []string, prefix string) {
	for _, e := range environ {
		eq := strings.IndexByte(e, '=')
		if eq <= 0 {
			continue
		}
		name, val := e[:eq], e[eq+1:]
		if !strings.HasPrefix(name, prefix+"_") {
			continue
		}
		key := strings.ToLower(strings.ReplaceAll(name[len(prefix)+1:], "_", "."))
		p.Set(key, val)
	}
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

func unescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			if s[i] == 'n' {
				b.WriteByte('\n')
			} else {
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
