package config

import (
	"encoding/xml"
	"fmt"
)

// XML serialization of Properties, mirroring java.util.Properties'
// storeToXML/loadFromXML that the paper's repeatability chapter mentions.
// The element layout matches Java's:
//
//	<properties>
//	  <comment>...</comment>
//	  <entry key="dataDir">./data</entry>
//	</properties>
type xmlProperties struct {
	XMLName xml.Name   `xml:"properties"`
	Comment string     `xml:"comment,omitempty"`
	Entries []xmlEntry `xml:"entry"`
}

type xmlEntry struct {
	Key   string `xml:"key,attr"`
	Value string `xml:",chardata"`
}

// StoreXML renders the properties (own keys only) as XML.
func (p *Properties) StoreXML(comment string) (string, error) {
	doc := xmlProperties{Comment: comment}
	for _, k := range p.order {
		doc.Entries = append(doc.Entries, xmlEntry{Key: k, Value: p.values[k]})
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("config: marshal XML: %w", err)
	}
	return xml.Header + string(out) + "\n", nil
}

// LoadXML parses StoreXML output (or Java Properties XML) into a new
// Properties with the given defaults.
func LoadXML(text string, defaults *Properties) (*Properties, error) {
	var doc xmlProperties
	if err := xml.Unmarshal([]byte(text), &doc); err != nil {
		return nil, fmt.Errorf("config: parse XML properties: %w", err)
	}
	p := New(defaults)
	for _, e := range doc.Entries {
		if e.Key == "" {
			return nil, fmt.Errorf("config: XML entry with empty key")
		}
		p.Set(e.Key, e.Value)
	}
	return p, nil
}
