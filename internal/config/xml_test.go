package config

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestXMLRoundTrip(t *testing.T) {
	p, _ := FromPairs("dataDir", "./data", "doStore", "true", "odd", "<&> \"quoted\"")
	text, err := p.StoreXML("experiment parameters")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<properties>", "<comment>experiment parameters</comment>", `<entry key="dataDir">./data</entry>`} {
		if !strings.Contains(text, want) {
			t.Errorf("XML missing %q:\n%s", want, text)
		}
	}
	q, err := LoadXML(text, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range p.Keys() {
		a, _ := p.Get(k)
		b, err := q.Get(k)
		if err != nil || a != b {
			t.Errorf("round trip %q: %q vs %q (%v)", k, a, b, err)
		}
	}
}

func TestLoadXMLErrors(t *testing.T) {
	if _, err := LoadXML("not xml at all <", nil); err == nil {
		t.Error("malformed XML should error")
	}
	if _, err := LoadXML(`<properties><entry key="">v</entry></properties>`, nil); err == nil {
		t.Error("empty key should error")
	}
}

func TestLoadXMLWithDefaults(t *testing.T) {
	defaults, _ := FromPairs("base", "1")
	p, err := LoadXML(`<properties><entry key="x">2</entry></properties>`, defaults)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := p.Get("base"); v != "1" {
		t.Errorf("default not visible: %q", v)
	}
	if v, _ := p.Get("x"); v != "2" {
		t.Errorf("x = %q", v)
	}
}

// Property: XML round-trips arbitrary printable values, including XML
// metacharacters (encoding/xml escapes them).
func TestXMLRoundTripQuick(t *testing.T) {
	f := func(rawKey, rawVal []byte) bool {
		key := sanitizeKey(rawKey)
		val := sanitizeVal(rawVal)
		if key == "" {
			return true
		}
		p := New(nil)
		p.Set(key, val)
		text, err := p.StoreXML("")
		if err != nil {
			return false
		}
		q, err := LoadXML(text, nil)
		if err != nil {
			return false
		}
		got, err := q.Get(key)
		return err == nil && got == val
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
