package runstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// withMergeThreshold runs fn with the parallel-merge threshold pinned,
// restoring the default after.
func withMergeThreshold(t *testing.T, n int, fn func()) {
	t.Helper()
	old := parallelMergeThreshold
	parallelMergeThreshold = n
	defer func() { parallelMergeThreshold = old }()
	fn()
}

// TestParallelMergeByteIdentity runs the same merge through the serial
// and the parallel decode path and requires byte-identical output —
// the ordered pool must not reorder, drop, or duplicate a record.
func TestParallelMergeByteIdentity(t *testing.T) {
	dir := t.TempDir()
	s0 := filepath.Join(dir, "s0.jsonl")
	s1 := filepath.Join(dir, "s1.jsonl")
	writeBulkJournal(t, s0, "par-a", 300, 2, "x")
	writeBulkJournal(t, s1, "par-b", 300, 2, "x")
	serial := filepath.Join(dir, "serial.jsonl")
	parallel := filepath.Join(dir, "parallel.jsonl")
	withMergeThreshold(t, 1<<30, func() {
		if _, err := Merge([]string{s0, s1}, serial); err != nil {
			t.Fatal(err)
		}
	})
	withMergeThreshold(t, 0, func() {
		if _, err := Merge([]string{s0, s1}, parallel); err != nil {
			t.Fatal(err)
		}
	})
	a, err := os.ReadFile(serial)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("parallel merge output differs from serial output")
	}
}

// TestParallelMergeEarlyBreak stops consuming the parallel record
// stream after a handful of records; the iterator must retire its pool
// before returning (the deferred Wait), so the subsequent plan Close
// races with nothing. Run under -race, that is the whole assertion.
func TestParallelMergeEarlyBreak(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	writeBulkJournal(t, src, "brk", 500, 2, "x")
	withMergeThreshold(t, 0, func() {
		n := 0
		for _, err := range MergeScan([]string{src}) {
			if err != nil {
				t.Fatal(err)
			}
			if n++; n >= 7 {
				break
			}
		}
		if n != 7 {
			t.Fatalf("consumed %d records, want 7", n)
		}
	})
}

// TestParallelMergeReadError forces a decode failure mid-stream (the
// reader is closed underneath the pool) and checks the error surfaces
// through the sequence instead of hanging or leaking workers.
func TestParallelMergeReadError(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	writeBulkJournal(t, src, "err", 500, 2, "x")
	plan, _, err := planMerge([]string{src})
	if err != nil {
		t.Fatal(err)
	}
	plan.sources[0].r.Close()
	plan.sources[0].r = nopCloseReader{plan.sources[0].r} // keep plan.Close happy
	withMergeThreshold(t, 0, func() {
		var sawErr error
		for _, err := range plan.records() {
			if err != nil {
				sawErr = err
				break
			}
		}
		if !errors.Is(sawErr, os.ErrClosed) {
			t.Fatalf("expected a closed-file read error, got %v", sawErr)
		}
	})
}

// nopCloseReader suppresses double-Close on an already-closed reader.
type nopCloseReader struct{ SourceReader }

func (nopCloseReader) Close() error { return nil }
