package runstore

import "repro/internal/obs"

// The journal layer has no configuration seam — Open takes only a path —
// so its instruments live in the process-wide default registry. All
// backends funnel persistence through Journal (the shard store wraps one
// journal per shard, the remote spool is a journal), so these six series
// cover every byte the store layer writes or re-reads.
var (
	metAppends = obs.Default().Counter("runstore_appends_total",
		"Records appended across all journals in this process.")
	metAppendBytes = obs.Default().Counter("runstore_append_bytes_total",
		"Bytes of JSON lines written by journal appends, including newlines.")
	metFsyncs = obs.Default().Counter("runstore_fsyncs_total",
		"fsync calls issued by journal appends.")
	metScanRecords = obs.Default().Counter("runstore_scan_records_total",
		"Records yielded by journal scans.")
	metMergeRecords = obs.Default().Counter("runstore_merge_records_total",
		"Distinct records written by journal merges.")
	metCompactRecords = obs.Default().Counter("runstore_compact_records_total",
		"Distinct records written by journal compactions.")
)
