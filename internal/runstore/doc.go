// Package runstore persists experiment execution: the Store interface
// the scheduler (internal/sched) executes against, its reference
// implementation — an append-only JSONL run journal keyed by
// (experiment, assignment-hash, replicate) — plus a baseline store, a
// CI-shift regression gate, journal compaction, canonical-order merging,
// and format-aware inspection. Sibling packages provide the scale-out
// backends behind the same interface: shardstore (a sharded directory of
// journals for disjoint workers) and archivestore (a single-file
// block-indexed archive for million-run warm starts).
//
// The journal is the durability substrate of the scheduler: every
// completed unit of work is appended before the run proceeds, so a
// crashed or interrupted run resumes from disk instead of re-executing —
// the paper's repeatability chapter applied to the experiment harness
// itself. One JSON object per line; a record identifies the experiment
// by name, the design row by a stable hash of its factor-level
// assignment (so journals survive design-row reordering), and the
// replicate index. The normative file-format specification — record
// schema, shard-file naming, merge/compact semantics, and the archive
// layout — is docs/FORMAT.md.
//
// Concurrency contract: Journal's Append, Lookup, ReplicateCount,
// Scan, Len, and Close are safe for concurrent use (one mutex guards
// file and index); Scan snapshots the key set when iteration starts, so
// concurrent appends neither block nor corrupt it. Package-level
// functions that rewrite files (Compact, Merge) are single-writer:
// callers must not run them concurrently with writers of the same
// files. Read-only entry points (OpenSource, ScanFile, LoadRecords,
// Inspect) never write and may run against files another process is
// appending to; they see a prefix.
//
// Streaming contract: the Store view (Scan) and every file-level reader
// (ScanFile, SourceReader, Merge, Compact) hand records to the consumer
// one at a time — peak memory holds a lightweight index entry per key,
// never the record set. Collect materializes a sequence for the few
// sites that truly need a slice. The normative iteration-order and
// error-in-sequence semantics are docs/FORMAT.md §6.
//
// Durability contract: Append returns only after the record's bytes are
// written and fsynced, so a crash immediately after a successful Append
// loses nothing. A crash mid-append leaves at most one torn trailing
// line, which Open truncates; complete records are never rewritten in
// place — Compact and Merge write aside atomically (temp file, fsync,
// rename) and replace.
package runstore
