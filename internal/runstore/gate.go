package runstore

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/stats"
)

// Summary is the per-(assignment, response) aggregation of a run — the
// persistent baseline format of the regression gate. Rows are sorted by
// (assignment, response) so the JSON form is deterministic.
type Summary struct {
	Experiment string       `json:"experiment"`
	Rows       []SummaryRow `json:"rows"`
}

// SummaryRow holds every replicate value of one response for one
// factor-level assignment.
type SummaryRow struct {
	Hash       string            `json:"hash"`
	Assignment map[string]string `json:"assignment"`
	Response   string            `json:"response"`
	Values     []float64         `json:"values"`
}

// assignmentString renders an assignment in the repository's canonical
// sorted "k=v k=v" form.
func assignmentString(a map[string]string) string {
	return design.Assignment(a).String()
}

func sortSummary(s *Summary) {
	sort.Slice(s.Rows, func(i, j int) bool {
		a, b := s.Rows[i], s.Rows[j]
		if as, bs := assignmentString(a.Assignment), assignmentString(b.Assignment); as != bs {
			return as < bs
		}
		return a.Response < b.Response
	})
}

// Summarize groups journal records into one Summary per experiment,
// sorted by experiment name. Replicate values appear in replicate order.
func Summarize(recs []Record) []*Summary {
	type cell struct {
		assignment map[string]string
		byRep      map[int]map[string]float64
	}
	experiments := map[string]map[string]*cell{} // experiment -> hash -> cell
	for _, rec := range recs {
		cells := experiments[rec.Experiment]
		if cells == nil {
			cells = map[string]*cell{}
			experiments[rec.Experiment] = cells
		}
		c := cells[rec.Hash]
		if c == nil {
			c = &cell{assignment: rec.Assignment, byRep: map[int]map[string]float64{}}
			cells[rec.Hash] = c
		}
		c.byRep[rec.Replicate] = rec.Responses
	}
	names := make([]string, 0, len(experiments))
	for name := range experiments {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Summary, 0, len(names))
	for _, name := range names {
		s := &Summary{Experiment: name}
		for hash, c := range experiments[name] {
			reps := make([]int, 0, len(c.byRep))
			for rep := range c.byRep {
				reps = append(reps, rep)
			}
			sort.Ints(reps)
			responses := map[string]bool{}
			for _, rep := range reps {
				for resp := range c.byRep[rep] {
					responses[resp] = true
				}
			}
			for resp := range responses {
				row := SummaryRow{Hash: hash, Assignment: c.assignment, Response: resp}
				for _, rep := range reps {
					if v, ok := c.byRep[rep][resp]; ok {
						row.Values = append(row.Values, v)
					}
				}
				s.Rows = append(s.Rows, row)
			}
		}
		sortSummary(s)
		out = append(out, s)
	}
	return out
}

// FromResultSet summarizes an in-memory ResultSet for gating without a
// journal round-trip.
func FromResultSet(rs *harness.ResultSet) *Summary {
	s := &Summary{Experiment: rs.Experiment.Name}
	for _, row := range rs.Rows {
		hash := AssignmentHash(row.Assignment)
		for _, resp := range rs.Experiment.Responses {
			sr := SummaryRow{Hash: hash, Assignment: row.Assignment, Response: resp}
			for _, rep := range row.Reps {
				sr.Values = append(sr.Values, rep[resp])
			}
			s.Rows = append(s.Rows, sr)
		}
	}
	sortSummary(s)
	return s
}

// Save writes the summary as indented JSON — the baseline file format.
func (s *Summary) Save(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}

// LoadSummary reads a baseline file written by Save.
func LoadSummary(path string) (*Summary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("runstore: %s: %w", path, err)
	}
	return &s, nil
}

// Verdict classifies one (assignment, response) cell of a gate report.
type Verdict int

const (
	// Unchanged: the confidence intervals overlap — no statistically
	// meaningful shift can be claimed (the paper's visual test).
	Unchanged Verdict = iota
	// Regressed: the intervals are disjoint and the current mean is
	// higher (responses follow the lower-is-better convention of time
	// metrics; for higher-is-better responses read Regressed/Improved
	// swapped).
	Regressed
	// Improved: the intervals are disjoint and the current mean is lower.
	Improved
	// Missing: the baseline has the cell, the current run does not.
	Missing
	// Added: the current run has a cell the baseline lacks.
	Added
)

// String renders the verdict the way gate reports print it — regressions
// shout, everything else stays lowercase.
func (v Verdict) String() string {
	switch v {
	case Unchanged:
		return "unchanged"
	case Regressed:
		return "REGRESSED"
	case Improved:
		return "improved"
	case Missing:
		return "missing"
	case Added:
		return "added"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Finding is one gated cell: the baseline and current intervals and the
// verdict of comparing them.
type Finding struct {
	Assignment map[string]string
	Response   string
	Base, Cur  stats.Interval
	Verdict    Verdict
	// DeltaPct is the relative mean shift in percent (0 when the
	// baseline mean is 0 or the cell is one-sided).
	DeltaPct float64
}

// GateOptions tune the regression gate.
type GateOptions struct {
	// Confidence for the replicate-based intervals (default 0.95).
	Confidence float64
	// Tolerance is the relative half-width assumed for cells with a
	// single replicate, where no confidence interval exists: the value
	// is treated as mean ± Tolerance*|mean| (default 0.05).
	Tolerance float64
}

func (o *GateOptions) fill() error {
	if o.Confidence == 0 {
		o.Confidence = 0.95
	}
	if o.Tolerance == 0 {
		o.Tolerance = 0.05
	}
	if o.Confidence <= 0 || o.Confidence >= 1 {
		return fmt.Errorf("runstore: gate confidence must be in (0,1), got %g", o.Confidence)
	}
	if o.Tolerance <= 0 {
		return fmt.Errorf("runstore: gate tolerance must be > 0, got %g", o.Tolerance)
	}
	return nil
}

// interval builds the comparison interval for one cell: a Student-t CI
// when replicates allow (zero-variance samples yield a valid degenerate
// CI), a tolerance band for single-replicate cells.
func interval(values []float64, opt GateOptions) (stats.Interval, error) {
	if len(values) >= 2 {
		return stats.MeanCI(values, opt.Confidence)
	}
	if len(values) == 0 {
		return stats.Interval{}, fmt.Errorf("runstore: empty cell")
	}
	m := stats.Mean(values)
	half := opt.Tolerance * math.Abs(m)
	if half == 0 {
		half = opt.Tolerance
	}
	return stats.Interval{Mean: m, Lo: m - half, Hi: m + half, Confidence: opt.Confidence, N: len(values)}, nil
}

// Intervals returns the comparison interval of every summary cell, keyed
// hash -> response, built with the same rules Gate applies (Student-t CI
// for replicated cells, a tolerance band for single-replicate ones).
// The adaptive replication controller uses this to compare a running
// cell against a stored baseline without a full gate pass.
func (s *Summary) Intervals(opt GateOptions) (map[string]map[string]stats.Interval, error) {
	if err := opt.fill(); err != nil {
		return nil, err
	}
	out := make(map[string]map[string]stats.Interval)
	for _, row := range s.Rows {
		iv, err := interval(row.Values, opt)
		if err != nil {
			return nil, fmt.Errorf("runstore: cell %s/%s: %w", assignmentString(row.Assignment), row.Response, err)
		}
		byResp := out[row.Hash]
		if byResp == nil {
			byResp = make(map[string]stats.Interval)
			out[row.Hash] = byResp
		}
		byResp[row.Response] = iv
	}
	return out, nil
}

// GateReport is the outcome of gating a run against a baseline.
type GateReport struct {
	Experiment string
	Findings   []Finding
}

// Gate compares a current run summary against a baseline. Cells are
// matched by (assignment hash, response); each matched cell is compared
// via its confidence intervals: overlapping intervals pass, disjoint
// intervals are flagged as Regressed or Improved by mean direction.
func Gate(baseline, current *Summary, opt GateOptions) (*GateReport, error) {
	if baseline == nil || current == nil {
		return nil, fmt.Errorf("runstore: gate needs both a baseline and a current summary")
	}
	if baseline.Experiment != current.Experiment {
		return nil, fmt.Errorf("runstore: gate across experiments %q vs %q", baseline.Experiment, current.Experiment)
	}
	if err := opt.fill(); err != nil {
		return nil, err
	}
	type key struct {
		hash, response string
	}
	curIdx := make(map[key]SummaryRow, len(current.Rows))
	for _, row := range current.Rows {
		curIdx[key{row.Hash, row.Response}] = row
	}
	report := &GateReport{Experiment: baseline.Experiment}
	seen := map[key]bool{}
	for _, base := range baseline.Rows {
		k := key{base.Hash, base.Response}
		seen[k] = true
		f := Finding{Assignment: base.Assignment, Response: base.Response}
		cur, ok := curIdx[k]
		if !ok {
			f.Verdict = Missing
			bi, err := interval(base.Values, opt)
			if err != nil {
				return nil, fmt.Errorf("runstore: baseline cell %s/%s: %w", assignmentString(base.Assignment), base.Response, err)
			}
			f.Base = bi
			report.Findings = append(report.Findings, f)
			continue
		}
		bi, err := interval(base.Values, opt)
		if err != nil {
			return nil, fmt.Errorf("runstore: baseline cell %s/%s: %w", assignmentString(base.Assignment), base.Response, err)
		}
		ci, err := interval(cur.Values, opt)
		if err != nil {
			return nil, fmt.Errorf("runstore: current cell %s/%s: %w", assignmentString(cur.Assignment), cur.Response, err)
		}
		f.Base, f.Cur = bi, ci
		if bi.Mean != 0 {
			f.DeltaPct = (ci.Mean - bi.Mean) / math.Abs(bi.Mean) * 100
		}
		switch {
		case bi.Overlaps(ci):
			f.Verdict = Unchanged
		case ci.Mean > bi.Mean:
			f.Verdict = Regressed
		default:
			f.Verdict = Improved
		}
		report.Findings = append(report.Findings, f)
	}
	for _, cur := range current.Rows {
		k := key{cur.Hash, cur.Response}
		if seen[k] {
			continue
		}
		ci, err := interval(cur.Values, opt)
		if err != nil {
			return nil, fmt.Errorf("runstore: current cell %s/%s: %w", assignmentString(cur.Assignment), cur.Response, err)
		}
		report.Findings = append(report.Findings, Finding{
			Assignment: cur.Assignment, Response: cur.Response, Cur: ci, Verdict: Added,
		})
	}
	return report, nil
}

// Regressions returns only the Regressed findings.
func (r *GateReport) Regressions() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Verdict == Regressed {
			out = append(out, f)
		}
	}
	return out
}

// String renders the report as the repository's aligned table plus a
// one-line verdict count.
func (r *GateReport) String() string {
	tab := harness.NewTable().Header("assignment", "response", "baseline", "current", "delta%", "verdict")
	counts := map[Verdict]int{}
	for _, f := range r.Findings {
		counts[f.Verdict]++
		base, cur, delta := "-", "-", "-"
		if f.Verdict != Added {
			base = fmt.Sprintf("%.4g ±%.2g", f.Base.Mean, f.Base.HalfWidth())
		}
		if f.Verdict != Missing {
			cur = fmt.Sprintf("%.4g ±%.2g", f.Cur.Mean, f.Cur.HalfWidth())
		}
		if f.Verdict == Unchanged || f.Verdict == Regressed || f.Verdict == Improved {
			delta = fmt.Sprintf("%+.1f", f.DeltaPct)
		}
		tab.Row(assignmentString(f.Assignment), f.Response, base, cur, delta, f.Verdict.String())
	}
	var b strings.Builder
	fmt.Fprintf(&b, "regression gate: %s (%d cells)\n", r.Experiment, len(r.Findings))
	b.WriteString(tab.String())
	fmt.Fprintf(&b, "unchanged %d, regressed %d, improved %d, missing %d, added %d\n",
		counts[Unchanged], counts[Regressed], counts[Improved], counts[Missing], counts[Added])
	return b.String()
}
