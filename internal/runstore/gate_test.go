package runstore

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/design"
	"repro/internal/harness"
)

func summaryFor(t *testing.T, base map[string]float64, noise []float64) *Summary {
	t.Helper()
	var recs []Record
	row := 0
	for _, name := range []string{"lo", "hi"} {
		for repIdx, n := range noise {
			recs = append(recs, rec("exp", row, repIdx, map[string]string{"f": name},
				map[string]float64{"t": base[name] + n}))
		}
		row++
	}
	sums := Summarize(recs)
	if len(sums) != 1 {
		t.Fatalf("summaries = %d, want 1", len(sums))
	}
	return sums[0]
}

func TestSummarizeGroupsAndSorts(t *testing.T) {
	a1 := map[string]string{"f": "lo"}
	a2 := map[string]string{"f": "hi"}
	recs := []Record{
		rec("b-exp", 0, 1, a1, map[string]float64{"t": 11}),
		rec("b-exp", 0, 0, a1, map[string]float64{"t": 10}),
		rec("a-exp", 0, 0, a2, map[string]float64{"t": 5}),
	}
	sums := Summarize(recs)
	if len(sums) != 2 || sums[0].Experiment != "a-exp" || sums[1].Experiment != "b-exp" {
		t.Fatalf("summaries = %+v", sums)
	}
	rows := sums[1].Rows
	if len(rows) != 1 || rows[0].Response != "t" {
		t.Fatalf("rows = %+v", rows)
	}
	// Replicate order, not journal order.
	if rows[0].Values[0] != 10 || rows[0].Values[1] != 11 {
		t.Errorf("values = %v, want [10 11]", rows[0].Values)
	}
}

func TestFromResultSetMatchesJournalSummary(t *testing.T) {
	d, err := design.TwoLevelFull([]design.Factor{design.MustFactor("f", "lo", "hi")})
	if err != nil {
		t.Fatal(err)
	}
	d.Replicates = 2
	e := &harness.Experiment{
		Name: "exp", Design: d, Responses: []string{"t"},
		Run: func(a design.Assignment, rep int) (map[string]float64, error) {
			v := 10.0
			if a["f"] == "hi" {
				v = 20
			}
			return map[string]float64{"t": v + float64(rep)}, nil
		},
	}
	rs, err := harness.Execute(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	fromRS := FromResultSet(rs)

	// The same run journaled and summarized must agree cell for cell.
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for r, row := range rs.Rows {
		for rep, resp := range row.Reps {
			if err := j.Append(rec("exp", r, rep, row.Assignment, resp)); err != nil {
				t.Fatal(err)
			}
		}
	}
	j.Close()
	recs, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	fromJournal := Summarize(recs)[0]
	if len(fromRS.Rows) != len(fromJournal.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(fromRS.Rows), len(fromJournal.Rows))
	}
	for i := range fromRS.Rows {
		a, b := fromRS.Rows[i], fromJournal.Rows[i]
		if a.Hash != b.Hash || a.Response != b.Response || len(a.Values) != len(b.Values) {
			t.Fatalf("row %d differs: %+v vs %+v", i, a, b)
		}
		for k := range a.Values {
			if a.Values[k] != b.Values[k] {
				t.Errorf("row %d value %d: %v vs %v", i, k, a.Values[k], b.Values[k])
			}
		}
	}
}

func TestSummarySaveLoadRoundTrip(t *testing.T) {
	s := summaryFor(t, map[string]float64{"lo": 10, "hi": 20}, []float64{-0.1, 0, 0.1})
	path := filepath.Join(t.TempDir(), "sub", "baseline.json")
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != s.Experiment || len(got.Rows) != len(s.Rows) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range s.Rows {
		if got.Rows[i].Hash != s.Rows[i].Hash {
			t.Errorf("row %d hash differs", i)
		}
		for k := range s.Rows[i].Values {
			if got.Rows[i].Values[k] != s.Rows[i].Values[k] {
				t.Errorf("row %d value %d differs after JSON round trip", i, k)
			}
		}
	}
	if _, err := LoadSummary(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing baseline should error")
	}
}

func TestGateVerdicts(t *testing.T) {
	noise := []float64{-0.2, 0, 0.2}
	baseline := summaryFor(t, map[string]float64{"lo": 10, "hi": 20}, noise)

	// Same distribution: everything unchanged.
	same := summaryFor(t, map[string]float64{"lo": 10.1, "hi": 19.9}, noise)
	rep, err := Gate(baseline, same, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Regressions()) != 0 {
		t.Errorf("no regression expected: %s", rep)
	}

	// "hi" cell 50% slower: regression; "lo" cell 50% faster: improvement.
	shifted := summaryFor(t, map[string]float64{"lo": 5, "hi": 30}, noise)
	rep, err = Gate(baseline, shifted, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Assignment["f"] != "hi" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].DeltaPct < 40 || regs[0].DeltaPct > 60 {
		t.Errorf("DeltaPct = %g, want ~50", regs[0].DeltaPct)
	}
	var improved int
	for _, f := range rep.Findings {
		if f.Verdict == Improved {
			improved++
		}
	}
	if improved != 1 {
		t.Errorf("improved = %d, want 1", improved)
	}
	out := rep.String()
	for _, want := range []string{"REGRESSED", "improved", "f=hi", "f=lo", "regressed 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestGateMissingAndAdded(t *testing.T) {
	noise := []float64{-0.1, 0, 0.1}
	baseline := summaryFor(t, map[string]float64{"lo": 10, "hi": 20}, noise)
	var recs []Record
	for repIdx, n := range noise {
		recs = append(recs, rec("exp", 0, repIdx, map[string]string{"f": "lo"},
			map[string]float64{"t": 10 + n}))
		recs = append(recs, rec("exp", 1, repIdx, map[string]string{"f": "mid"},
			map[string]float64{"t": 15 + n}))
	}
	current := Summarize(recs)[0]
	rep, err := Gate(baseline, current, GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[Verdict]int{}
	for _, f := range rep.Findings {
		counts[f.Verdict]++
	}
	if counts[Missing] != 1 || counts[Added] != 1 || counts[Unchanged] != 1 {
		t.Errorf("verdict counts = %v", counts)
	}
}

func TestGateSingleReplicateToleranceBand(t *testing.T) {
	mk := func(v float64) *Summary {
		return Summarize([]Record{
			rec("exp", 0, 0, map[string]string{"f": "lo"}, map[string]float64{"t": v}),
		})[0]
	}
	baseline := mk(100)
	// Within the 5% default tolerance: unchanged.
	rep, err := Gate(baseline, mk(104), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Findings[0].Verdict != Unchanged {
		t.Errorf("4%% shift at 5%% tolerance: %v", rep.Findings[0].Verdict)
	}
	// Far outside: regressed.
	rep, err = Gate(baseline, mk(150), GateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Findings[0].Verdict != Regressed {
		t.Errorf("50%% shift should regress: %v", rep.Findings[0].Verdict)
	}
}

func TestGateRejectsInvalidOptions(t *testing.T) {
	s := summaryFor(t, map[string]float64{"lo": 10, "hi": 20}, []float64{-0.1, 0, 0.1})
	for _, opt := range []GateOptions{
		{Confidence: 95},   // percent instead of fraction
		{Confidence: -0.5}, // negative
		{Tolerance: -0.1},  // negative
	} {
		if _, err := Gate(s, s, opt); err == nil {
			t.Errorf("options %+v should be rejected", opt)
		}
	}
}

func TestGateExperimentMismatch(t *testing.T) {
	a := &Summary{Experiment: "a"}
	b := &Summary{Experiment: "b"}
	if _, err := Gate(a, b, GateOptions{}); err == nil {
		t.Error("gating across experiments should error")
	}
	if _, err := Gate(nil, a, GateOptions{}); err == nil {
		t.Error("nil baseline should error")
	}
}
