package runstore_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runstore"
	"repro/internal/runstore/storetest"
)

// TestJournalConformance runs the shared Store contract suite against
// the reference JSONL journal backend.
func TestJournalConformance(t *testing.T) {
	storetest.Run(t, storetest.Backend{
		Name: "journal",
		Open: func(t *testing.T, dir string) runstore.Store {
			j, err := runstore.OpenDir(dir, "e")
			if err != nil {
				t.Fatal(err)
			}
			return j
		},
		Tear: func(t *testing.T, dir string) {
			// A crash mid-append leaves a torn (unterminated, unparsable)
			// trailing line.
			f, err := os.OpenFile(filepath.Join(dir, "e.jsonl"), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.WriteString(`{"experiment":"e","row":`); err != nil {
				t.Fatal(err)
			}
		},
	})
}
