package runstore

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(exp string, row, rep int, a map[string]string, resp map[string]float64) Record {
	return Record{
		Experiment: exp, Row: row, Replicate: rep,
		Hash: AssignmentHash(a), Assignment: a, Responses: resp,
	}
}

func TestAssignmentHashStable(t *testing.T) {
	a := map[string]string{"cache": "1KB", "memory": "4MB"}
	b := map[string]string{"memory": "4MB", "cache": "1KB"}
	if AssignmentHash(a) != AssignmentHash(b) {
		t.Error("hash should be independent of map iteration order")
	}
	c := map[string]string{"cache": "2KB", "memory": "4MB"}
	if AssignmentHash(a) == AssignmentHash(c) {
		t.Error("different assignments should hash differently")
	}
	// Separator robustness: key/value splits must not collide.
	x := map[string]string{"ab": "c"}
	y := map[string]string{"a": "bc"}
	if AssignmentHash(x) == AssignmentHash(y) {
		t.Error("ab=c and a=bc should hash differently")
	}
}

func TestJournalAppendLookupReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a1 := map[string]string{"f": "lo"}
	a2 := map[string]string{"f": "hi"}
	for rep := 0; rep < 3; rep++ {
		if err := j.Append(rec("e1", 0, rep, a1, map[string]float64{"t": float64(10 + rep)})); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(rec("e1", 1, 0, a2, map[string]float64{"t": 99})); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 4 {
		t.Errorf("Len = %d, want 4", j.Len())
	}
	got, ok := j.Lookup("e1", AssignmentHash(a1), 2)
	if !ok || got.Responses["t"] != 12 {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := j.Lookup("e1", AssignmentHash(a1), 7); ok {
		t.Error("Lookup of absent replicate should miss")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 4 || j2.Torn() {
		t.Errorf("reopen: Len = %d, Torn = %v", j2.Len(), j2.Torn())
	}
	recs, err := Collect(j2.Scan())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 || recs[3].Responses["t"] != 99 {
		t.Errorf("Records = %+v", recs)
	}
}

func TestJournalTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]string{"f": "lo"}
	if err := j.Append(rec("e", 0, 0, a, map[string]float64{"t": 1})); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec("e", 0, 1, a, map[string]float64{"t": 2})); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a crash mid-append: a torn, unterminated trailing line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"experiment":"e","row":0,"rep`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := Open(path)
	if err != nil {
		t.Fatalf("torn tail should be recovered, got %v", err)
	}
	if !j2.Torn() {
		t.Error("Torn() should report the truncated tail")
	}
	if j2.Len() != 2 {
		t.Errorf("Len after recovery = %d, want 2", j2.Len())
	}
	// The journal must stay appendable after recovery.
	if err := j2.Append(rec("e", 0, 2, a, map[string]float64{"t": 3})); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if j3.Len() != 3 || j3.Torn() {
		t.Errorf("after recovery+append: Len = %d, Torn = %v", j3.Len(), j3.Torn())
	}
}

func TestJournalCorruptMiddleLineRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"experiment":"e","row":0,"replicate":0,"hash":"h","assignment":{},"responses":{"t":1}}
not json at all
{"experiment":"e","row":0,"replicate":1,"hash":"h","assignment":{},"responses":{"t":2}}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("corrupt middle line should be an error, not silently skipped")
	}
}

func TestJournalAppendValidation(t *testing.T) {
	j, err := Open(filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	a := map[string]string{"f": "lo"}
	if err := j.Append(rec("", 0, 0, a, nil)); err == nil {
		t.Error("empty experiment should be rejected")
	}
	if err := j.Append(rec("e", 0, -1, a, nil)); err == nil {
		t.Error("negative replicate should be rejected")
	}
	if err := j.Append(rec("e", 0, 0, a, map[string]float64{"t": math.NaN()})); err == nil {
		t.Error("NaN response should be rejected")
	}
	if err := j.Append(rec("e", 0, 0, a, map[string]float64{"t": math.Inf(1)})); err == nil {
		t.Error("Inf response should be rejected")
	}
	// Closed journal refuses appends but keeps its index readable.
	if err := j.Append(rec("e", 0, 0, a, map[string]float64{"t": 1})); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := j.Append(rec("e", 0, 1, a, map[string]float64{"t": 2})); err == nil {
		t.Error("append after Close should fail")
	}
	if j.Len() != 1 {
		t.Errorf("index should survive Close, Len = %d", j.Len())
	}
}

func TestOpenDirAndSanitize(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenDir(dir, "workstation 2^2 (memory/cache)")
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	base := filepath.Base(j.Path())
	if strings.ContainsAny(base, " /^()") {
		t.Errorf("unsanitized journal file name %q", base)
	}
	if !strings.HasSuffix(base, ".jsonl") {
		t.Errorf("journal file %q should end in .jsonl", base)
	}
	if _, err := OpenDir(dir, ""); err == nil {
		t.Error("empty experiment name should be rejected")
	}
}

func TestLoadRecordsMissingFile(t *testing.T) {
	if _, err := LoadRecords(filepath.Join(t.TempDir(), "absent.jsonl")); err == nil {
		t.Error("LoadRecords on a missing file should error, not create it")
	}
}

// TestLoadRecordsReadOnly covers diff-style loading of journals the
// process may not write: a read-only file with a torn tail must load
// without being repaired or otherwise modified.
func TestLoadRecordsReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"experiment":"e","row":0,"replicate":0,"hash":"h","assignment":{},"responses":{"t":1}}` + "\n" +
		`{"experiment":"e","row":0,"repl` // torn tail, no newline
	if err := os.WriteFile(path, []byte(content), 0o444); err != nil {
		t.Fatal(err)
	}
	recs, err := LoadRecords(path)
	if err != nil {
		t.Fatalf("read-only journal should load: %v", err)
	}
	if len(recs) != 1 || recs[0].Responses["t"] != 1 {
		t.Errorf("records = %+v", recs)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != content {
		t.Error("LoadRecords modified the journal file")
	}
}

func TestJournalLastRecordWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]string{"f": "lo"}
	if err := j.Append(rec("e", 0, 0, a, map[string]float64{"t": 1})); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec("e", 0, 0, a, map[string]float64{"t": 2})); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Errorf("duplicate keys should collapse, Len = %d", j.Len())
	}
	got, _ := j.Lookup("e", AssignmentHash(a), 0)
	if got.Responses["t"] != 2 {
		t.Errorf("last record should win, got %v", got.Responses["t"])
	}
	j.Close()
}

// TestJournalAppendBatch pins the group-commit primitive: a batch lands
// byte-identical to the same records appended one at a time, survives
// reopen, and a rejected batch writes nothing.
func TestJournalAppendBatch(t *testing.T) {
	dir := t.TempDir()
	recs := []Record{
		rec("e", 0, 0, map[string]string{"c": "a"}, map[string]float64{"t": 1}),
		rec("e", 1, 0, map[string]string{"c": "b"}, map[string]float64{"t": 2}),
		rec("e", 0, 1, map[string]string{"c": "a"}, map[string]float64{"t": 3}),
	}

	one := filepath.Join(dir, "one.jsonl")
	j1, err := Open(one)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := j1.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	j1.Close()

	batch := filepath.Join(dir, "batch.jsonl")
	j2, err := Open(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.AppendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := j2.AppendBatch(recs); err != nil {
		t.Fatal(err)
	}
	if j2.Len() != 3 {
		t.Fatalf("Len = %d, want 3", j2.Len())
	}
	j2.Close()

	a, err := os.ReadFile(one)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(batch)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("AppendBatch bytes differ from per-record Append:\nbatch:\n%s\nappend:\n%s", b, a)
	}

	// Durability: reopen serves the batch.
	r, err := Open(batch)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, want := range recs {
		if _, ok := r.Lookup(want.Experiment, want.Hash, want.Replicate); !ok {
			t.Errorf("reopen lost %s", want.Key())
		}
	}

	// A batch with any invalid record writes nothing at all.
	bad := []Record{
		rec("e", 5, 0, map[string]string{"c": "z"}, map[string]float64{"t": 9}),
		{Experiment: "", Replicate: 0},
	}
	before := r.Len()
	if err := r.AppendBatch(bad); err == nil {
		t.Fatal("batch with an invalid record succeeded")
	}
	if r.Len() != before {
		t.Fatalf("rejected batch changed Len: %d -> %d", before, r.Len())
	}
	data, err := os.ReadFile(batch)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(b) {
		t.Error("rejected batch left bytes behind")
	}
}

// TestJournalAppendBatchClosed pins the closed-journal contract for the
// batch path.
func TestJournalAppendBatchClosed(t *testing.T) {
	j, err := Open(filepath.Join(t.TempDir(), "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	err = j.AppendBatch([]Record{rec("e", 0, 0, map[string]string{"c": "a"}, map[string]float64{"t": 1})})
	if err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("AppendBatch after Close = %v, want a closed-journal error", err)
	}
}
