package runstore

import (
	"encoding/json"
	"fmt"
	"io"
)

// The collector's ingest and snapshot streams carry records in exactly
// the journal's line framing — one JSON object per '\n'-terminated line —
// so the wire format and the at-rest format are one format, with one
// framing rule and one torn-tail rule (scanJournal). What differs is the
// meaning of an unterminated trailing record: on disk it is a crash tail
// to truncate and resume past; on the wire it is a truncated upload the
// receiver must reject, because "resume" for a network stream is the
// sender retrying, not the receiver guessing.
//
// The binary encoding mirrors the same design: a binary wire stream is
// the binary journal's frame sequence without the leading magic (the
// Content-Type identifies the framing; a magic would be redundant and
// would break stream concatenation). Negotiation is by media type —
// WireJSONType vs WireBinaryType — with JSON the default and the
// fallback every peer must accept.

// Wire media types. The collector's ingest endpoint dispatches on the
// request Content-Type and its snapshot endpoint honors Accept; any
// other (or absent) type means WireJSONType, the version-1 canonical
// encoding every peer speaks.
const (
	// WireJSONType frames records as '\n'-terminated JSON lines.
	WireJSONType = "application/x-ndjson"
	// WireBinaryType frames records as length-prefixed CRC-32C-checksummed
	// binary frames (docs/FORMAT.md).
	WireBinaryType = "application/x-repro-binary"
)

// EncodeWire writes one record to w in the journal/wire line framing:
// the record's canonical JSON marshaling followed by '\n', the exact
// bytes Journal.Append would persist. The record is validated and
// canonicalized (NormalizeAppend) first so a wire stream can never carry
// a record a store would refuse to append.
func EncodeWire(w io.Writer, rec Record) error {
	rec, err := NormalizeAppend(rec)
	if err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.Write(line); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}

// DecodeWire reads a wire stream of line-framed records from r, calling
// fn with each decoded, canonicalized record in stream order, and
// returns how many records fn accepted. A record fn rejects stops the
// stream with fn's error. Unlike a journal open, a torn (unterminated,
// undecodable) trailing line is an error — on the wire it means the
// sender was cut off mid-record, and accepting the valid prefix would
// let a partial upload masquerade as a complete one.
func DecodeWire(r io.Reader, fn func(Record) error) (int, error) {
	n := 0
	_, torn, err := scanJournal(r, func(rec Record, _ Extent) error {
		rec, err := NormalizeAppend(rec)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	if torn {
		return n, fmt.Errorf("runstore: wire stream truncated mid-record after %d record(s)", n)
	}
	return n, nil
}

// EncodeWireBinary writes one record to w in the binary wire framing:
// one length-prefixed checksummed frame, the exact bytes
// BinaryJournal.Append would persist. Like EncodeWire it validates and
// canonicalizes first, and it encodes through the pooled buffer, so the
// binary ingest hot path allocates nothing per record.
func EncodeWireBinary(w io.Writer, rec Record) error {
	rec, err := NormalizeAppend(rec)
	if err != nil {
		return err
	}
	bufp := encodeBinaryFrame(rec)
	defer putBinBuf(bufp)
	if _, err := w.Write(*bufp); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}

// DecodeWireBinary is DecodeWire for the binary framing: it reads a
// stream of binary frames from r, calling fn with each decoded,
// canonicalized record in stream order, and returns how many records fn
// accepted. As on the JSON wire, a torn trailing frame is an error —
// the sender was cut off mid-record — and so is any frame a journal
// open would refuse.
func DecodeWireBinary(r io.Reader, fn func(Record) error) (int, error) {
	n := 0
	_, torn, err := scanBinary(r, 0, func(rec Record, _ Extent) error {
		rec, err := NormalizeAppend(rec)
		if err != nil {
			return err
		}
		if err := fn(rec); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, err
	}
	if torn {
		return n, fmt.Errorf("runstore: wire stream truncated mid-record after %d record(s)", n)
	}
	return n, nil
}
