package runstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"iter"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Record is one journaled execution unit: the responses measured for one
// replicate of one design row of one experiment.
type Record struct {
	Experiment string             `json:"experiment"`
	Row        int                `json:"row"` // design row index at record time (informational)
	Replicate  int                `json:"replicate"`
	Hash       string             `json:"hash"` // AssignmentHash of Assignment
	Assignment map[string]string  `json:"assignment"`
	Responses  map[string]float64 `json:"responses"`
}

// Key returns the journal lookup key for a unit of work. It is built by
// concatenation, not fmt, because every record indexed on open pays this
// cost — the archive backend's O(index) open budget is measured in
// nanoseconds per entry.
func Key(experiment, hash string, replicate int) string {
	return experiment + "/" + hash + "/" + strconv.Itoa(replicate)
}

// Key returns the record's own lookup key.
func (r Record) Key() string { return Key(r.Experiment, r.Hash, r.Replicate) }

// CellKey identifies one design cell — all replicates of one assignment
// of one experiment. It is the identity the scheduler and the adaptive
// replication controller exchange, so one controller can serve several
// experiments without state bleeding across them.
func CellKey(experiment, hash string) string {
	return experiment + "/" + hash
}

// AssignmentHash computes a stable hex digest of a factor-level
// assignment: FNV-1a over the sorted key=value pairs. Two design rows
// with the same assignment hash identically regardless of row order, so
// journals stay valid when a design is extended or reordered.
func AssignmentHash(a map[string]string) string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write([]byte(a[k]))
		h.Write([]byte{0})
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Journal is an append-only JSONL run store with an in-memory index.
// Append and Lookup are safe for concurrent use.
type Journal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	recs     map[string]Record
	order    []string // keys in file order, for deterministic Scan order
	appended int      // records ever indexed, including superseded ones
	torn     bool     // a torn trailing line was truncated on open
}

// Open opens (creating if absent) the journal at path, loading every
// complete record. A torn trailing line — a crash mid-append — is
// truncated; a corrupt line anywhere else is an error, because silently
// skipping complete records would turn resume into silent re-execution.
func Open(path string) (*Journal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runstore: %w", err)
		}
	}
	j := &Journal{path: path, recs: make(map[string]Record)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	keep, err := j.parse(data)
	if err != nil {
		return nil, fmt.Errorf("runstore: %s: %w", path, err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	if keep < len(data) {
		if err := f.Truncate(int64(keep)); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstore: %w", err)
	}
	// A parseable but unterminated final line (e.g. a journal edited by
	// hand): terminate it so the next append starts on a fresh line.
	if keep > 0 && !j.torn && data[keep-1] != '\n' {
		if _, err := f.WriteString("\n"); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: %w", err)
		}
	}
	j.f = f
	return j, nil
}

// parse loads every complete record from data into the index and
// returns the byte offset up to which the file is intact (everything
// past it is a torn trailing line to truncate). The line framing and
// torn-tail rule live in scanJournal, shared with the streaming reader
// behind Inspect, LoadRecords, Merge, and Compact — one rule, one
// implementation.
func (j *Journal) parse(data []byte) (keep int, err error) {
	k, torn, err := scanJournal(bytes.NewReader(data), func(rec Record, _ Extent) error {
		j.index(rec)
		return nil
	})
	if err != nil {
		return 0, err
	}
	j.torn = torn
	return int(k), nil
}

// OpenDir opens the journal for one experiment under dir, creating the
// directory as needed. The file is <dir>/<sanitized-experiment>.jsonl.
func OpenDir(dir, experiment string) (*Journal, error) {
	if experiment == "" {
		return nil, fmt.Errorf("runstore: experiment name required")
	}
	return Open(filepath.Join(dir, SanitizeName(experiment)+".jsonl"))
}

// SanitizeName maps an experiment name to a filesystem-safe file stem.
func SanitizeName(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "journal"
	}
	return b.String()
}

func (j *Journal) index(rec Record) {
	k := rec.Key()
	if _, exists := j.recs[k]; !exists {
		j.order = append(j.order, k)
	}
	j.recs[k] = rec // last record wins, like a log-structured store
	j.appended++
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Torn reports whether a torn trailing line was truncated when opening.
func (j *Journal) Torn() bool { return j.torn }

// Len returns the number of distinct journaled units.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Lookup returns the journaled record for a unit, if present.
func (j *Journal) Lookup(experiment, hash string, replicate int) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.recs[Key(experiment, hash, replicate)]
	return rec, ok
}

// ReplicateCount returns how many contiguous replicates (0..n-1) of one
// cell the journal holds — the warm-start budget already spent on it.
// A gap stops the count: an adaptive resume must extend a contiguous
// replicate prefix, never fill holes, or the replicate set (and with it
// every downstream CI) would depend on which run wrote which record.
func (j *Journal) ReplicateCount(experiment, hash string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for {
		if _, ok := j.recs[Key(experiment, hash, n)]; !ok {
			return n
		}
		n++
	}
}

// Scan implements Store: all distinct records in first-appended order,
// one at a time. The key order is snapshotted when iteration starts, so
// a concurrent Append neither blocks nor corrupts an in-flight scan;
// keys appended after the snapshot are not yielded, while a superseding
// append to a snapshotted key may surface in its latest form (records
// are read at yield time — see the Store contract). The journal's
// records live in its in-memory index, so Scan never fails — the error
// slot exists for backends that read from disk mid-iteration.
func (j *Journal) Scan() iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		j.mu.Lock()
		keys := make([]string, len(j.order))
		copy(keys, j.order)
		j.mu.Unlock()
		for _, k := range keys {
			j.mu.Lock()
			rec := j.recs[k]
			j.mu.Unlock()
			metScanRecords.Inc()
			if !yield(rec, nil) {
				return
			}
		}
	}
}

// NormalizeAppend validates a record for appending and fills its derived
// fields (an empty Hash is computed from the Assignment). Every Store
// backend funnels Append through it, so the set of records a store
// accepts — named experiment, non-negative replicate, finite responses —
// is identical across the journal, the shard store, and the archive.
func NormalizeAppend(rec Record) (Record, error) {
	if rec.Experiment == "" {
		return rec, fmt.Errorf("runstore: record needs an experiment name")
	}
	if rec.Replicate < 0 {
		return rec, fmt.Errorf("runstore: record replicate %d < 0", rec.Replicate)
	}
	if rec.Hash == "" {
		rec.Hash = AssignmentHash(rec.Assignment)
	}
	for name, v := range rec.Responses {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return rec, fmt.Errorf("runstore: record response %q is non-finite (%v)", name, v)
		}
	}
	return rec, nil
}

// Append validates, persists, and indexes one record. The JSON line is
// written with a single Write call followed by Sync, so a crash leaves at
// most one torn line — exactly what Open recovers from.
func (j *Journal) Append(rec Record) error {
	rec, err := NormalizeAppend(rec)
	if err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("runstore: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	j.index(rec)
	metAppends.Inc()
	metAppendBytes.Add(int64(len(line)))
	metFsyncs.Inc()
	return nil
}

// AppendBatch validates, persists, and indexes a batch of records with a
// single Write call followed by a single Sync — the group-commit
// primitive: N records cost one fsync instead of N. Validation runs over
// the whole batch before any byte is written, so a rejected batch leaves
// nothing behind; a crash mid-write leaves at most one torn line, exactly
// as Append does, and Open recovers the intact prefix. An empty batch is
// a no-op.
func (j *Journal) AppendBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var buf bytes.Buffer
	normalized := make([]Record, len(recs))
	for i, rec := range recs {
		rec, err := NormalizeAppend(rec)
		if err != nil {
			return err
		}
		line, err := json.Marshal(rec)
		if err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
		normalized[i] = rec
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("runstore: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	for _, rec := range normalized {
		j.index(rec)
	}
	metAppends.Add(int64(len(normalized)))
	metAppendBytes.Add(int64(buf.Len()))
	metFsyncs.Inc()
	return nil
}

// Close closes the journal file. Lookup and Records keep working on the
// in-memory index; Append fails.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// LoadRecords reads every complete record from an existing journal (or
// registered-format archive) file without opening it for writing — the
// file is never created, repaired, or otherwise touched, so diff/report
// tooling works on read-only artifacts. A torn trailing line is ignored,
// as Open would truncate it. It is Collect over ScanFile: callers that
// do not need the whole slice at once should range over ScanFile
// directly.
func LoadRecords(path string) ([]Record, error) {
	return Collect(ScanFile(path))
}
