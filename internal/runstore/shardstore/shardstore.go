package shardstore

import (
	"fmt"
	"iter"
	"path/filepath"

	"repro/internal/runstore"
)

// AllShards makes Open own (and create) every shard of the store.
const AllShards = -1

// Store is a sharded directory of runstore journals for one experiment.
// It implements runstore.Store. Appends route by assignment hash; a
// store opened with OpenShard owns a single shard and rejects appends
// that route elsewhere, which is exactly the misconfiguration guard the
// disjoint-worker workflow needs.
type Store struct {
	dir        string
	experiment string
	shards     int
	owned      int // AllShards, or the single shard this store owns
	files      []*runstore.Journal
}

var _ runstore.Store = (*Store)(nil)

// Open opens (creating as needed) all shards of the experiment's store
// under dir. Use it for single-process runs that want sharded files —
// e.g. to pre-split a journal for later per-shard workers — or to read
// a complete sharded run as one store.
func Open(dir, experiment string, shards int) (*Store, error) {
	return open(dir, experiment, AllShards, shards)
}

// OpenShard opens only shard `shard` of the experiment's store: the
// worker-process mode. Lookups outside the owned shard miss (the worker
// has no business replaying rows it does not execute), and appends
// outside it fail loudly instead of corrupting another worker's file.
func OpenShard(dir, experiment string, shard, shards int) (*Store, error) {
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("shardstore: shard %d out of range [0,%d)", shard, shards)
	}
	return open(dir, experiment, shard, shards)
}

func open(dir, experiment string, owned, shards int) (*Store, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shardstore: need >= 1 shard, have %d", shards)
	}
	if experiment == "" {
		return nil, fmt.Errorf("shardstore: experiment name required")
	}
	s := &Store{dir: dir, experiment: experiment, shards: shards, owned: owned,
		files: make([]*runstore.Journal, shards)}
	for i := 0; i < shards; i++ {
		if owned != AllShards && i != owned {
			continue // never create (or truncate-repair) a file another worker owns
		}
		j, err := runstore.Open(Path(dir, experiment, i, shards))
		if err != nil {
			s.Close()
			return nil, err
		}
		s.files[i] = j
	}
	return s, nil
}

// Path returns the file path of one shard of an experiment's store.
func Path(dir, experiment string, shard, shards int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.shard-%03d-of-%03d.jsonl",
		runstore.SanitizeName(experiment), shard, shards))
}

// Paths returns every shard file path of an experiment's store, in shard
// order — the argument list for runstore.Merge.
func Paths(dir, experiment string, shards int) []string {
	out := make([]string, shards)
	for i := range out {
		out[i] = Path(dir, experiment, i, shards)
	}
	return out
}

// Shards returns the shard count the store was opened with.
func (s *Store) Shards() int { return s.shards }

// shardOf routes a hash to its shard journal (nil when not owned).
func (s *Store) shardOf(hash string) *runstore.Journal {
	return s.files[runstore.ShardIndex(hash, s.shards)]
}

// Lookup implements runstore.Store. Units in unowned shards miss.
func (s *Store) Lookup(experiment, hash string, replicate int) (runstore.Record, bool) {
	j := s.shardOf(hash)
	if j == nil {
		return runstore.Record{}, false
	}
	return j.Lookup(experiment, hash, replicate)
}

// ReplicateCount implements runstore.Store. Cells in unowned shards
// report zero spent replicates.
func (s *Store) ReplicateCount(experiment, hash string) int {
	j := s.shardOf(hash)
	if j == nil {
		return 0
	}
	return j.ReplicateCount(experiment, hash)
}

// Scan implements runstore.Store: every shard's records streamed in
// shard order (first-appended order within a shard). The order is
// deterministic for a given store state but groups by shard, not by
// design row — runstore.Merge is the canonical-order view. Each shard's
// key set is snapshotted as the iteration reaches it, so concurrent
// appends neither block nor corrupt an in-flight scan.
func (s *Store) Scan() iter.Seq2[runstore.Record, error] {
	return func(yield func(runstore.Record, error) bool) {
		for _, j := range s.files {
			if j == nil {
				continue
			}
			for rec, err := range j.Scan() {
				if !yield(rec, err) {
					return
				}
			}
		}
	}
}

// Append implements runstore.Store, routing the record to its shard by
// assignment hash. A store that owns a single shard rejects records
// routed elsewhere: in the disjoint-worker workflow that append is a
// shard-assignment bug, and writing it would silently overlap another
// worker's file.
func (s *Store) Append(rec runstore.Record) error {
	if rec.Hash == "" {
		rec.Hash = runstore.AssignmentHash(rec.Assignment)
	}
	idx := runstore.ShardIndex(rec.Hash, s.shards)
	j := s.files[idx]
	if j == nil {
		return fmt.Errorf("shardstore: record %s routes to shard %d, but this store owns only shard %d of %d",
			rec.Key(), idx, s.owned, s.shards)
	}
	return j.Append(rec)
}

// AppendBatch appends a batch of records, grouped by destination shard,
// with one fsync per shard journal touched (runstore.Journal.AppendBatch)
// instead of one per record — the group-commit append path. Like Append,
// a record routed to an unowned shard fails the whole batch before any
// byte of it is written; records for owned shards earlier in the batch
// may already be durable (the same clean-prefix rule a failed streamed
// ingest leaves behind).
func (s *Store) AppendBatch(recs []runstore.Record) error {
	if len(recs) == 0 {
		return nil
	}
	groups := make(map[int][]runstore.Record)
	for _, rec := range recs {
		if rec.Hash == "" {
			rec.Hash = runstore.AssignmentHash(rec.Assignment)
		}
		idx := runstore.ShardIndex(rec.Hash, s.shards)
		if s.files[idx] == nil {
			return fmt.Errorf("shardstore: record %s routes to shard %d, but this store owns only shard %d of %d",
				rec.Key(), idx, s.owned, s.shards)
		}
		groups[idx] = append(groups[idx], rec)
	}
	for idx, group := range groups {
		if err := s.files[idx].AppendBatch(group); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of distinct units across owned shards.
func (s *Store) Len() int {
	n := 0
	for _, j := range s.files {
		if j != nil {
			n += j.Len()
		}
	}
	return n
}

// Torn reports whether any owned shard had a torn trailing line
// truncated on open.
func (s *Store) Torn() bool {
	for _, j := range s.files {
		if j != nil && j.Torn() {
			return true
		}
	}
	return false
}

// Close implements runstore.Store, closing every owned shard and
// returning the first error.
func (s *Store) Close() error {
	var first error
	for _, j := range s.files {
		if j == nil {
			continue
		}
		if err := j.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
