// Package shardstore is the sharded directory backend of the runstore
// API: one experiment's journal split across N shard files in a
// directory, with appends fanned out by assignment hash and reads serving
// the union. It exists for scale-out execution — N worker processes (or
// machines over a shared filesystem) each own one shard via OpenShard and
// write disjoint files with no cross-process coordination, then
// runstore.Merge folds the shards back into a single canonical journal.
//
// Shard routing is runstore.ShardIndex over the record's assignment
// hash, the same function the scheduler uses to partition design rows,
// so a worker that executes only shard k's rows appends only to shard
// k's file. Each shard file is an ordinary runstore journal (named as
// docs/FORMAT.md specifies), and any tool that reads journals — diff,
// compact, merge, Inspect — works on a shard file unchanged.
//
// Concurrency contract: a Store's methods are safe for concurrent use
// within one process (each shard journal carries its own lock; routing
// state is immutable after open). Across processes the contract is
// ownership, not locking: exactly one process may open a given shard for
// writing (OpenShard), and appends that route to an unowned shard fail
// loudly rather than touch another worker's file.
//
// Durability contract: identical to the journal's, per shard — appends
// are fsynced before returning, a crash tears at most the trailing line
// of the owned shard file, and reopening that shard truncates the torn
// tail. A crash in one worker never damages another worker's shard.
package shardstore
