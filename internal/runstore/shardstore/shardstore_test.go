package shardstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runstore"
)

func record(row, rep int, level string, ms float64) runstore.Record {
	a := map[string]string{"f": level}
	return runstore.Record{
		Experiment: "exp", Row: row, Replicate: rep,
		Hash: runstore.AssignmentHash(a), Assignment: a,
		Responses: map[string]float64{"ms": ms},
	}
}

// levels produces enough distinct assignments that every shard of a
// small store owns at least one (FNV spreads, but nothing guarantees a
// given 2-level factor splits 2 ways — use many levels).
func levels(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("L%02d", i)
	}
	return out
}

// TestFanOutAndMergedView appends through the full store and checks the
// records land in the shard files ShardIndex dictates, while reads serve
// the union.
func TestFanOutAndMergedView(t *testing.T) {
	dir := t.TempDir()
	const shards = 3
	s, err := Open(dir, "exp", shards)
	if err != nil {
		t.Fatal(err)
	}
	var recs []runstore.Record
	for row, level := range levels(8) {
		for rep := 0; rep < 2; rep++ {
			r := record(row, rep, level, float64(10*row+rep))
			recs = append(recs, r)
			if err := s.Append(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Len() != len(recs) {
		t.Errorf("Len = %d, want %d", s.Len(), len(recs))
	}
	for _, r := range recs {
		got, ok := s.Lookup("exp", r.Hash, r.Replicate)
		if !ok || got.Responses["ms"] != r.Responses["ms"] {
			t.Errorf("Lookup(%s) = %+v ok=%v", r.Key(), got, ok)
		}
		if n := s.ReplicateCount("exp", r.Hash); n != 2 {
			t.Errorf("ReplicateCount(%s) = %d, want 2", r.Hash, n)
		}
	}
	scanned, err := runstore.Collect(s.Scan())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(scanned); got != len(recs) {
		t.Errorf("Scan = %d entries, want %d", got, len(recs))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Every shard file exists and holds exactly the records that route
	// to it.
	total := 0
	for i, path := range Paths(dir, "exp", shards) {
		loaded, err := runstore.LoadRecords(path)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		for _, r := range loaded {
			if got := runstore.ShardIndex(r.Hash, shards); got != i {
				t.Errorf("record %s in shard file %d, ShardIndex says %d", r.Key(), i, got)
			}
		}
		total += len(loaded)
	}
	if total != len(recs) {
		t.Errorf("shard files hold %d records, want %d", total, len(recs))
	}

	// Reopening the full store serves everything (warm start).
	s2, err := Open(dir, "exp", shards)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != len(recs) {
		t.Errorf("reopened Len = %d, want %d", s2.Len(), len(recs))
	}
}

// TestOpenShardOwnership checks the single-shard worker mode: only the
// owned file is created, unowned lookups miss, and unowned appends fail
// loudly instead of overlapping another worker's shard.
func TestOpenShardOwnership(t *testing.T) {
	dir := t.TempDir()
	const shards = 3
	// Find one record per shard.
	byShard := map[int]runstore.Record{}
	for row, level := range levels(32) {
		r := record(row, 0, level, float64(row))
		idx := runstore.ShardIndex(r.Hash, shards)
		if _, ok := byShard[idx]; !ok {
			byShard[idx] = r
		}
	}
	if len(byShard) != shards {
		t.Fatalf("test levels cover only %d of %d shards", len(byShard), shards)
	}

	const own = 1
	s, err := OpenShard(dir, "exp", own, shards)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(byShard[own]); err != nil {
		t.Errorf("append of owned record failed: %v", err)
	}
	err = s.Append(byShard[(own+1)%shards])
	if err == nil {
		t.Error("append of unowned record should fail")
	} else if want := fmt.Sprintf("owns only shard %d", own); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("unowned append error %q should mention %q", err, want)
	}
	if _, ok := s.Lookup("exp", byShard[(own+1)%shards].Hash, 0); ok {
		t.Error("unowned lookup should miss")
	}
	if got, ok := s.Lookup("exp", byShard[own].Hash, 0); !ok || got.Responses["ms"] != byShard[own].Responses["ms"] {
		t.Errorf("owned lookup = %+v ok=%v", got, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Only the owned shard file exists: a worker never creates (or
	// torn-tail-repairs) files other workers own.
	for i := 0; i < shards; i++ {
		_, err := os.Stat(Path(dir, "exp", i, shards))
		if i == own && err != nil {
			t.Errorf("owned shard file missing: %v", err)
		}
		if i != own && !os.IsNotExist(err) {
			t.Errorf("unowned shard file %d exists (err %v)", i, err)
		}
	}
}

// TestDisjointWorkersMergeLikeOneWriter runs the core scale-out claim at
// the store level: N single-shard stores written independently merge to
// the same bytes as one fan-out store's shards.
func TestDisjointWorkersMergeLikeOneWriter(t *testing.T) {
	const shards = 2
	recs := make([]runstore.Record, 0, 12)
	for row, level := range levels(6) {
		for rep := 0; rep < 2; rep++ {
			recs = append(recs, record(row, rep, level, float64(10*row+rep)))
		}
	}

	workers := t.TempDir()
	for k := 0; k < shards; k++ {
		s, err := OpenShard(workers, "exp", k, shards)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if runstore.ShardIndex(r.Hash, shards) == k {
				if err := s.Append(r); err != nil {
					t.Fatal(err)
				}
			}
		}
		s.Close()
	}

	single := t.TempDir()
	s, err := Open(single, "exp", shards)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	mergedWorkers := filepath.Join(workers, "merged.jsonl")
	if _, err := runstore.Merge(Paths(workers, "exp", shards), mergedWorkers); err != nil {
		t.Fatal(err)
	}
	mergedSingle := filepath.Join(single, "merged.jsonl")
	if _, err := runstore.Merge(Paths(single, "exp", shards), mergedSingle); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(mergedWorkers)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(mergedSingle)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("disjoint workers and one writer merge to different bytes:\n%s\nvs\n%s", a, b)
	}
}

func TestOpenErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Open(dir, "exp", 0); err == nil {
		t.Error("0 shards should error")
	}
	if _, err := Open(dir, "", 2); err == nil {
		t.Error("empty experiment should error")
	}
	if _, err := OpenShard(dir, "exp", 2, 2); err == nil {
		t.Error("shard index out of range should error")
	}
	if _, err := OpenShard(dir, "exp", -1, 2); err == nil {
		t.Error("negative shard index should error")
	}
}

// TestAppendBatchRouting pins the sharded group-commit path: a batch
// fans out by shard with the same routing as Append, and a record routed
// to an unowned shard fails the whole batch before any of it is written.
func TestAppendBatchRouting(t *testing.T) {
	dir := t.TempDir()
	const shards = 3
	s, err := Open(dir, "e", shards)
	if err != nil {
		t.Fatal(err)
	}
	var batch []runstore.Record
	for row := 0; row < 9; row++ {
		batch = append(batch, runstore.Record{
			Experiment: "e", Row: row, Replicate: 0,
			Assignment: map[string]string{"cell": fmt.Sprintf("c%d", row)},
			Responses:  map[string]float64{"t": float64(row)},
		})
	}
	if err := s.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if s.Len() != len(batch) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(batch))
	}
	for _, w := range batch {
		h := runstore.AssignmentHash(w.Assignment)
		if _, ok := s.Lookup("e", h, 0); !ok {
			t.Errorf("Lookup missed %s after AppendBatch", h)
		}
	}
	s.Close()

	// A single-shard store rejects a batch holding any foreign record,
	// before writing it.
	w0, err := OpenShard(dir, "e2", 0, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer w0.Close()
	var own []runstore.Record
	for _, r := range batch {
		r.Experiment = "e2"
		r.Hash = ""
		if runstore.ShardIndex(runstore.AssignmentHash(r.Assignment), shards) == 0 {
			own = append(own, r)
		}
	}
	foreign := batch[0]
	foreign.Experiment = "e2"
	foreign.Hash = ""
	for runstore.ShardIndex(runstore.AssignmentHash(foreign.Assignment), shards) == 0 {
		foreign.Row++
		foreign.Assignment = map[string]string{"cell": fmt.Sprintf("x%d", foreign.Row)}
	}
	if err := w0.AppendBatch(append(append([]runstore.Record{}, own...), foreign)); err == nil {
		t.Fatal("batch with an unowned record succeeded")
	}
	if w0.Len() != 0 {
		t.Fatalf("rejected batch left %d record(s) behind", w0.Len())
	}
}
