package shardstore_test

import (
	"os"
	"testing"

	"repro/internal/runstore"
	"repro/internal/runstore/shardstore"
	"repro/internal/runstore/storetest"
)

// TestShardstoreConformance runs the shared Store contract suite against
// the sharded directory backend, opened in all-shards mode (the
// single-process view; the OpenShard worker mode intentionally narrows
// the contract and is covered by the package's own tests).
func TestShardstoreConformance(t *testing.T) {
	const shards = 3
	storetest.Run(t, storetest.Backend{
		Name: "shardstore",
		Open: func(t *testing.T, dir string) runstore.Store {
			s, err := shardstore.Open(dir, "e", shards)
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		Tear: func(t *testing.T, dir string) {
			// A crashed worker tears at most one shard file; tearing all
			// of them is the worst case the merge step can meet.
			for i := 0; i < shards; i++ {
				f, err := os.OpenFile(shardstore.Path(dir, "e", i, shards), os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteString(`{"experiment":"e","resp`); err != nil {
					t.Fatal(err)
				}
				f.Close()
			}
		},
	})
}
