package runstore

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// codecCases are records exercising the payload encoding's edges: nil
// vs empty maps, empty strings, negative rows, zero/negative/-0/huge
// response values, multi-byte runes.
func codecCases() []Record {
	return []Record{
		{Experiment: "e", Row: 0, Replicate: 0, Hash: AssignmentHash(nil)},
		{Experiment: "e", Row: -3, Replicate: 7, Hash: "h",
			Assignment: map[string]string{}, Responses: map[string]float64{}},
		{Experiment: "exp — µ", Row: 12, Replicate: 1, Hash: "0123456789abcdef",
			Assignment: map[string]string{"a": "1", "b": "", "": "x"},
			Responses:  map[string]float64{"ms": 1.5, "neg": -2.25, "zero": 0, "negzero": math.Copysign(0, -1), "big": 1e300}},
		{Experiment: "e", Row: 1 << 30, Replicate: 1 << 20, Hash: "h2",
			Assignment: map[string]string{"k": "v"},
			Responses:  map[string]float64{"tiny": 5e-324}},
	}
}

// TestBinaryRecordRoundTrip checks encode/decode identity — including
// the nil-vs-empty map distinction and -0 — and encoding determinism.
func TestBinaryRecordRoundTrip(t *testing.T) {
	for _, want := range codecCases() {
		payload := appendBinaryRecord(nil, want)
		got, err := decodeBinaryRecord(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, want)
		}
		if math.Signbit(want.Responses["negzero"]) != math.Signbit(got.Responses["negzero"]) {
			t.Errorf("-0 not preserved: %+v", got.Responses)
		}
		again := appendBinaryRecord(nil, want)
		if string(again) != string(payload) {
			t.Errorf("encoding not deterministic for %+v", want)
		}
	}
}

// TestBinaryRecordDecodeRejects checks that truncations and mutations
// of a valid payload fail cleanly rather than yielding a wrong record.
func TestBinaryRecordDecodeRejects(t *testing.T) {
	rec := codecCases()[2]
	payload := appendBinaryRecord(nil, rec)
	for n := 0; n < len(payload); n++ {
		if _, err := decodeBinaryRecord(payload[:n]); err == nil {
			// A truncation may still decode if it lands exactly after a
			// complete record — impossible here since every prefix is a
			// strict cut of required fields.
			t.Errorf("decode of %d-byte truncation succeeded", n)
		}
	}
	if _, err := decodeBinaryRecord(append(payload[:len(payload):len(payload)], 0)); err == nil {
		t.Error("decode with trailing byte succeeded")
	}
}

// TestBinaryJournalReopen appends through the store, reopens, and
// checks the indexed view and replicate counts survive byte-exactly.
func TestBinaryJournalReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.binj")
	j, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range codecCases() {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Torn() {
		t.Error("clean reopen reported torn")
	}
	if j2.Len() != len(codecCases()) {
		t.Fatalf("reopened Len = %d, want %d", j2.Len(), len(codecCases()))
	}
	for _, want := range codecCases() {
		got, ok := j2.Lookup(want.Experiment, want.Hash, want.Replicate)
		if !ok {
			t.Fatalf("lookup %s missing after reopen", want.Key())
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("reopen mismatch:\n got %#v\nwant %#v", got, want)
		}
	}
}

// TestBinaryJournalTornTail simulates crashes at every byte boundary of
// a trailing append: the reopened journal must keep the two complete
// records, report Torn, and accept further appends.
func TestBinaryJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.binj")
	j, err := OpenBinary(base)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Experiment: "e", Row: 0, Replicate: 0, Assignment: map[string]string{"a": "1"}, Responses: map[string]float64{"ms": 1}},
		{Experiment: "e", Row: 1, Replicate: 0, Assignment: map[string]string{"a": "2"}, Responses: map[string]float64{"ms": 2}},
		{Experiment: "e", Row: 2, Replicate: 0, Assignment: map[string]string{"a": "3"}, Responses: map[string]float64{"ms": 3}},
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	// Find the third frame's start: scan two frames past the magic.
	r, err := OpenSource(base)
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for e, err := range r.Entries() {
		if err != nil {
			t.Fatal(err)
		}
		offs = append(offs, e.Ext.Off)
	}
	r.Close()
	if len(offs) != 3 {
		t.Fatalf("scanned %d entries, want 3", len(offs))
	}
	for cut := offs[2] + 1; cut < int64(len(full)); cut++ {
		path := filepath.Join(dir, "torn.binj")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenBinary(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !j.Torn() {
			t.Errorf("cut at %d: torn not reported", cut)
		}
		if j.Len() != 2 {
			t.Errorf("cut at %d: kept %d records, want 2", cut, j.Len())
		}
		if err := j.Append(recs[2]); err != nil {
			t.Errorf("cut at %d: append after recovery: %v", cut, err)
		}
		j.Close()
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(full) {
			t.Errorf("cut at %d: re-appended journal differs from original", cut)
		}
	}
}

// TestBinaryJournalRejectsForeignFile checks that a JSONL journal (or
// arbitrary bytes) does not open as a binary journal.
func TestBinaryJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.binj")
	if err := os.WriteFile(path, []byte(`{"experiment":"e","replicate":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBinary(path); err == nil {
		t.Fatal("OpenBinary accepted a JSONL file")
	}
}

// TestBinaryFormatSeams drives the binary journal through every
// registry seam: ScanFile, Inspect, Merge to and from .binj, Compact in
// place, and the binary → JSON → binary convert round trip, which must
// be record-identical.
func TestBinaryFormatSeams(t *testing.T) {
	dir := t.TempDir()
	bin := filepath.Join(dir, "run.binj")
	j, err := OpenBinary(bin)
	if err != nil {
		t.Fatal(err)
	}
	cases := codecCases()
	for _, rec := range cases {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede one key so merge/compact have work to do.
	dup := cases[2]
	dup.Responses = map[string]float64{"ms": 9.5}
	if err := j.Append(dup); err != nil {
		t.Fatal(err)
	}
	j.Close()

	want, err := LoadRecords(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cases) {
		t.Fatalf("LoadRecords kept %d, want %d", len(want), len(cases))
	}

	info, err := Inspect(bin)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != len(cases)+1 || info.Distinct != len(cases) || info.Torn {
		t.Fatalf("Inspect = %+v", info)
	}

	// binary → JSON → binary: records must survive both hops unchanged.
	jsonl := filepath.Join(dir, "run.jsonl")
	if _, err := Merge([]string{bin}, jsonl); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(dir, "back.binj")
	if _, err := Merge([]string{jsonl}, back); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRecords(back)
	if err != nil {
		t.Fatal(err)
	}
	// Merge writes canonical order; LoadRecords yields first-appended
	// order for the original file — compare as key-addressed sets.
	byKey := func(recs []Record) map[string]Record {
		m := make(map[string]Record, len(recs))
		for _, r := range recs {
			m[r.Key()] = r
		}
		return m
	}
	if !reflect.DeepEqual(byKey(got), byKey(want)) {
		t.Errorf("binary→JSON→binary round trip altered records:\n got %#v\nwant %#v", byKey(got), byKey(want))
	}

	// Merging the same records into .binj twice is byte-identical
	// (deterministic encoding), and compacting a merged file is a no-op.
	again := filepath.Join(dir, "again.binj")
	if _, err := Merge([]string{jsonl}, again); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(back)
	b2, _ := os.ReadFile(again)
	if string(b1) != string(b2) {
		t.Error("repeated merge to .binj not byte-identical")
	}
	if _, err := Compact(back, ""); err != nil {
		t.Fatal(err)
	}
	b3, _ := os.ReadFile(back)
	if string(b3) != string(b1) {
		t.Error("compacting a merged binary journal changed its bytes")
	}

	// Compact the original in place: superseded record drops, survivors
	// keep first-appended order and latest values.
	cs, err := Compact(bin, "")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kept != len(cases) || cs.Dropped != 1 {
		t.Fatalf("Compact = %+v", cs)
	}
	after, err := LoadRecords(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, want) {
		t.Errorf("compacted binary journal view changed:\n got %#v\nwant %#v", after, want)
	}
}
