package runstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzJournalParse feeds arbitrary byte streams — valid journals,
// torn tails, interleaved garbage, truncated records — through the
// journal parser. The properties under test:
//
//  1. Open never panics, whatever the file holds; it either loads or
//     returns an error.
//  2. When Open succeeds, the journal stays writable: appending a fresh
//     record and reopening must preserve every complete record Open
//     served, with its values intact — the round-trip durability claim
//     resume depends on.
func FuzzJournalParse(f *testing.F) {
	valid := `{"experiment":"e","row":0,"replicate":0,"hash":"00000000000000aa","assignment":{"f":"x"},"responses":{"ms":1.5}}`
	f.Add([]byte(""))
	f.Add([]byte("\n\n  \n"))
	f.Add([]byte(valid + "\n"))
	f.Add([]byte(valid + "\n" + valid))                          // parseable but unterminated tail
	f.Add([]byte(valid + "\n" + `{"experiment":"e","ro`))        // torn tail
	f.Add([]byte(`{"experiment":"e","ro` + "\n" + valid + "\n")) // corrupt interior line
	f.Add([]byte("{}\n" + valid + "\n{}\n"))                     // minimal records interleaved
	f.Add([]byte(`{"experiment":"e","replicate":-3,"hash":"h"}` + "\n"))
	f.Add([]byte{0xff, 0xfe, '{', '}', '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(path)
		if err != nil {
			return // rejected (corrupt interior line); rejecting is fine, panicking is not
		}
		recs, err := Collect(j.Scan())
		if err != nil {
			t.Fatalf("scan of reopened journal failed: %v", err)
		}
		extra := Record{
			Experiment: "fuzz-extra",
			Replicate:  0,
			Assignment: map[string]string{"f": "x"},
			Responses:  map[string]float64{"v": 1},
		}
		extraKey := Key(extra.Experiment, AssignmentHash(extra.Assignment), extra.Replicate)
		if err := j.Append(extra); err != nil {
			t.Fatalf("append to reopened journal failed: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close failed: %v", err)
		}

		j2, err := Open(path)
		if err != nil {
			t.Fatalf("journal unreadable after append: %v", err)
		}
		defer j2.Close()
		for _, rec := range recs {
			if rec.Key() == extraKey {
				continue // the fuzz input happened to collide with the probe record
			}
			got, ok := j2.Lookup(rec.Experiment, rec.Hash, rec.Replicate)
			if !ok {
				t.Fatalf("record %s lost in round trip", rec.Key())
			}
			if !reflect.DeepEqual(got.Responses, rec.Responses) {
				t.Fatalf("record %s responses changed in round trip: %v -> %v",
					rec.Key(), rec.Responses, got.Responses)
			}
		}
		if _, ok := j2.Lookup(extra.Experiment, AssignmentHash(extra.Assignment), 0); !ok {
			t.Fatal("appended record lost after reopen")
		}
	})
}

// FuzzBinaryDecode is FuzzJournalParse's twin for the binary journal:
// arbitrary bytes go through the frame decoder and the file opener.
// The properties under test:
//
//  1. decodeBinaryRecord never panics — it decodes or errors, whatever
//     the payload bytes are.
//  2. OpenBinary never panics on arbitrary frame data after the magic;
//     when it succeeds, the journal stays writable and every record it
//     served survives an append + reopen round trip — the same
//     durability claim the JSONL fuzz pins.
func FuzzBinaryDecode(f *testing.F) {
	valid := appendRecordFrame(nil, Record{
		Experiment: "e", Row: 0, Replicate: 0, Hash: "00000000000000aa",
		Assignment: map[string]string{"f": "x"},
		Responses:  map[string]float64{"ms": 1.5},
	})
	f.Add([]byte(""))
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), valid...))
	f.Add(append(append([]byte{}, valid...), valid[:len(valid)-3]...)) // torn tail
	f.Add(valid[:binFrameHeaderSize])                                  // header, no payload
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})                  // absurd length claim
	f.Add([]byte{3, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})         // bad checksum
	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: the payload decoder is total.
		if len(data) > binFrameHeaderSize {
			decodeBinaryRecord(data[binFrameHeaderSize:])
		}
		decodeBinaryRecord(data)

		path := filepath.Join(t.TempDir(), "fuzz.binj")
		if err := os.WriteFile(path, append([]byte(BinaryMagic), data...), 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenBinary(path)
		if err != nil {
			return // rejected (undecodable checksummed frame); rejecting is fine, panicking is not
		}
		recs, err := Collect(j.Scan())
		if err != nil {
			t.Fatalf("scan of reopened binary journal failed: %v", err)
		}
		extra := Record{
			Experiment: "fuzz-extra",
			Replicate:  0,
			Assignment: map[string]string{"f": "x"},
			Responses:  map[string]float64{"v": 1},
		}
		extraKey := Key(extra.Experiment, AssignmentHash(extra.Assignment), extra.Replicate)
		if err := j.Append(extra); err != nil {
			t.Fatalf("append to reopened binary journal failed: %v", err)
		}
		if err := j.Close(); err != nil {
			t.Fatalf("close failed: %v", err)
		}

		j2, err := OpenBinary(path)
		if err != nil {
			t.Fatalf("binary journal unreadable after append: %v", err)
		}
		defer j2.Close()
		for _, rec := range recs {
			if rec.Key() == extraKey {
				continue // the fuzz input happened to collide with the probe record
			}
			got, ok := j2.Lookup(rec.Experiment, rec.Hash, rec.Replicate)
			if !ok {
				t.Fatalf("record %s lost in round trip", rec.Key())
			}
			if !reflect.DeepEqual(got.Responses, rec.Responses) {
				t.Fatalf("record %s responses changed in round trip: %v -> %v",
					rec.Key(), rec.Responses, got.Responses)
			}
		}
		if _, ok := j2.Lookup(extra.Experiment, AssignmentHash(extra.Assignment), 0); !ok {
			t.Fatal("appended record lost after reopen")
		}
	})
}
