package runstore

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"sync"
)

// BinaryJournal is the binary-encoded counterpart of Journal: the same
// append-only last-wins store with an in-memory index, persisting
// length-prefixed checksummed frames (see binary.go / docs/FORMAT.md)
// instead of JSON lines. Append and Lookup are safe for concurrent use.
type BinaryJournal struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	recs     map[string]Record
	order    []string // keys in file order, for deterministic Scan order
	appended int      // records ever indexed, including superseded ones
	torn     bool     // a torn trailing frame was truncated on open
}

// The binary journal is a full Store backend.
var _ Store = (*BinaryJournal)(nil)

// OpenBinary opens (creating if absent) the binary journal at path,
// loading every complete record. A torn trailing frame — a crash
// mid-append — is truncated; a file that is not a binary journal, or a
// checksum-valid frame that does not decode, is an error.
func OpenBinary(path string) (*BinaryJournal, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runstore: %w", err)
		}
	}
	j := &BinaryJournal{path: path, recs: make(map[string]Record)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	keep := int64(0)
	switch {
	case len(data) == 0:
		// New or empty file: the magic is (re)written below.
	case len(data) < binHeaderSize:
		// A crash while creating the file can leave a bare prefix of the
		// magic; anything else this short is not a binary journal.
		if !bytes.HasPrefix([]byte(BinaryMagic), data) {
			return nil, fmt.Errorf("runstore: %s: not a binary journal", path)
		}
	case string(data[:binHeaderSize]) != BinaryMagic:
		return nil, fmt.Errorf("runstore: %s: not a binary journal", path)
	default:
		k, torn, err := scanBinary(bytes.NewReader(data[binHeaderSize:]), int64(binHeaderSize), func(rec Record, _ Extent) error {
			j.index(rec)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("runstore: %s: %w", path, err)
		}
		j.torn = torn
		keep = k
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	if keep < int64(binHeaderSize) {
		// Fresh file (or torn magic): start it over with a clean header.
		j.torn = j.torn || int64(len(data)) > keep
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: %w", err)
		}
		if _, err := f.WriteString(BinaryMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: %w", err)
		}
	} else if keep < int64(len(data)) {
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, fmt.Errorf("runstore: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("runstore: %w", err)
	}
	j.f = f
	return j, nil
}

// OpenBinaryDir opens the binary journal for one experiment under dir,
// creating the directory as needed. The file is
// <dir>/<sanitized-experiment>.binj.
func OpenBinaryDir(dir, experiment string) (*BinaryJournal, error) {
	if experiment == "" {
		return nil, fmt.Errorf("runstore: experiment name required")
	}
	return OpenBinary(filepath.Join(dir, SanitizeName(experiment)+BinaryExt))
}

func (j *BinaryJournal) index(rec Record) {
	k := rec.Key()
	if _, exists := j.recs[k]; !exists {
		j.order = append(j.order, k)
	}
	j.recs[k] = rec // last record wins, like a log-structured store
	j.appended++
}

// Path returns the journal's file path.
func (j *BinaryJournal) Path() string { return j.path }

// Torn reports whether a torn trailing frame was truncated when opening.
func (j *BinaryJournal) Torn() bool { return j.torn }

// Len returns the number of distinct journaled units.
func (j *BinaryJournal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.recs)
}

// Lookup returns the journaled record for a unit, if present.
func (j *BinaryJournal) Lookup(experiment, hash string, replicate int) (Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.recs[Key(experiment, hash, replicate)]
	return rec, ok
}

// ReplicateCount returns how many contiguous replicates (0..n-1) of one
// cell the journal holds — the warm-start budget already spent on it.
func (j *BinaryJournal) ReplicateCount(experiment, hash string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	for {
		if _, ok := j.recs[Key(experiment, hash, n)]; !ok {
			return n
		}
		n++
	}
}

// Scan implements Store: all distinct records in first-appended order,
// one at a time, with the same snapshot-at-start key-set semantics as
// Journal.Scan (see the Store contract).
func (j *BinaryJournal) Scan() iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		j.mu.Lock()
		keys := make([]string, len(j.order))
		copy(keys, j.order)
		j.mu.Unlock()
		for _, k := range keys {
			j.mu.Lock()
			rec := j.recs[k]
			j.mu.Unlock()
			metScanRecords.Inc()
			if !yield(rec, nil) {
				return
			}
		}
	}
}

// Append validates, persists, and indexes one record. The frame is
// encoded into a pooled buffer and written with a single Write call
// followed by Sync, so a crash leaves at most one torn frame — exactly
// what OpenBinary recovers from.
func (j *BinaryJournal) Append(rec Record) error {
	rec, err := NormalizeAppend(rec)
	if err != nil {
		return err
	}
	bufp := encodeBinaryFrame(rec)
	defer putBinBuf(bufp)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("runstore: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(*bufp); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	j.index(rec)
	metAppends.Inc()
	metAppendBytes.Add(int64(len(*bufp)))
	metFsyncs.Inc()
	return nil
}

// Close closes the journal file. Lookup and Scan keep working on the
// in-memory index; Append fails.
func (j *BinaryJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// binaryReader is the binary journal's SourceReader.
type binaryReader struct {
	path string
	f    *os.File
	info Info
}

func openBinaryReader(path string) (SourceReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	var head [binHeaderSize]byte
	if _, err := io.ReadFull(f, head[:]); err != nil || string(head[:]) != BinaryMagic {
		f.Close()
		return nil, fmt.Errorf("runstore: %s: not a binary journal", path)
	}
	return &binaryReader{path: path, f: f}, nil
}

// Entries implements SourceReader, scanning the frames from the start.
// It may be consumed more than once; each call re-reads the file.
func (r *binaryReader) Entries() iter.Seq2[SourceEntry, error] {
	return func(yield func(SourceEntry, error) bool) {
		if _, err := r.f.Seek(int64(binHeaderSize), io.SeekStart); err != nil {
			yield(SourceEntry{}, fmt.Errorf("runstore: %w", err))
			return
		}
		records, distinct := 0, make(map[string]struct{})
		stop := fmt.Errorf("runstore: iteration stopped") // sentinel, never escapes
		_, torn, err := scanBinary(r.f, int64(binHeaderSize), func(rec Record, ext Extent) error {
			records++
			e := entryOf(rec, ext)
			distinct[e.Key()] = struct{}{}
			if !yield(e, nil) {
				return stop
			}
			return nil
		})
		if err == stop {
			return
		}
		if err != nil {
			yield(SourceEntry{}, fmt.Errorf("runstore: %s: %w", r.path, err))
			return
		}
		r.info = Info{Records: records, Distinct: len(distinct), Torn: torn, Detail: "binary frames (PEVBIN1)"}
	}
}

// Read implements SourceReader with one positioned read of the frame.
// It is safe for concurrent use (the merge write pass decodes records
// from several goroutines).
func (r *binaryReader) Read(ext Extent) (Record, error) {
	if ext.Len < int64(binFrameHeaderSize) {
		return Record{}, fmt.Errorf("runstore: %s: bad extent at byte %d", r.path, ext.Off)
	}
	raw := make([]byte, ext.Len)
	if _, err := r.f.ReadAt(raw, ext.Off); err != nil {
		return Record{}, fmt.Errorf("runstore: %s: reading record at byte %d: %w", r.path, ext.Off, err)
	}
	rec, err := decodeBinaryRecord(raw[binFrameHeaderSize:])
	if err != nil {
		return Record{}, fmt.Errorf("runstore: %s: record at byte %d: %w", r.path, ext.Off, err)
	}
	if rec.Hash == "" {
		rec.Hash = AssignmentHash(rec.Assignment)
	}
	return rec, nil
}

// Info implements SourceReader; complete after Entries is consumed.
func (r *binaryReader) Info() Info { return r.info }

// Close implements SourceReader.
func (r *binaryReader) Close() error { return r.f.Close() }

// writeBinaryFile atomically replaces dst with the record sequence in
// binary framing — the bulk writer behind Merge and Compact when the
// destination carries the .binj extension. Encoding reuses one pooled
// buffer across the whole sequence, so the write allocates per unique
// record size class, not per record.
func writeBinaryFile(dst string, recs iter.Seq2[Record, error], modeFrom string) error {
	bufp := binBufPool.Get().(*[]byte)
	defer putBinBuf(bufp)
	return atomicWrite(dst, modeFrom, func(w *bufio.Writer) error {
		if _, err := w.WriteString(BinaryMagic); err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
		for rec, err := range recs {
			if err != nil {
				return err
			}
			if rec.Hash == "" {
				rec.Hash = AssignmentHash(rec.Assignment)
			}
			*bufp = appendRecordFrame((*bufp)[:0], rec)
			if _, err := w.Write(*bufp); err != nil {
				return fmt.Errorf("runstore: %w", err)
			}
		}
		return nil
	})
}

// inspectBinary reports a binary journal's shape without retaining any
// record payloads.
func inspectBinary(path string) (Info, error) {
	r, err := openBinaryReader(path)
	if err != nil {
		return Info{}, err
	}
	defer r.Close()
	for _, err := range r.Entries() {
		if err != nil {
			return Info{}, err
		}
	}
	return r.Info(), nil
}

// The binary journal registers as a Format so Merge, Compact,
// LoadRecords, ScanFile, and Inspect transparently read .binj sources
// (dispatched by content sniffing) and write .binj destinations
// (dispatched by extension) — the same seam the archive uses.
func init() {
	RegisterFormat(Format{
		Name: "binary",
		Ext:  BinaryExt,
		Sniff: func(head []byte) bool {
			return len(head) >= binHeaderSize && string(head[:binHeaderSize]) == BinaryMagic
		},
		OpenReader: openBinaryReader,
		Write:      writeBinaryFile,
		Inspect:    inspectBinary,
	})
}
