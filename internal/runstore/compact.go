package runstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// CompactStats reports what one compaction did.
type CompactStats struct {
	Kept    int // distinct records written out
	Dropped int // superseded (re-appended same-key) records removed
	Torn    bool
}

// Compact rewrites the journal at src keeping only the last-appended
// record of every (experiment, hash, replicate) key, in first-appended
// key order — exactly the view Open serves from its in-memory index, so
// warm-start, diff, and summarize behavior is unchanged while the file
// sheds every superseded record. Like Open, it loads the journal into
// memory to build that view, so it compacts journals that still fit in
// RAM — run it before they outgrow it. A torn trailing line is dropped
// like Open would.
//
// The rewrite is atomic: records go to a temporary file in the target
// directory which is fsynced and renamed into place. dst == "" compacts
// in place; otherwise src is left untouched and the compacted journal is
// written to dst. Compaction is idempotent — compacting a compacted
// journal is a byte-identical no-op.
func Compact(src, dst string) (CompactStats, error) {
	var cs CompactStats
	data, err := os.ReadFile(src)
	if err != nil {
		return cs, fmt.Errorf("runstore: %w", err)
	}
	j := &Journal{path: src, recs: make(map[string]Record)}
	if _, err := j.parse(data); err != nil {
		return cs, fmt.Errorf("runstore: %s: %w", src, err)
	}
	recs := j.Records()
	cs.Kept = len(recs)
	cs.Dropped = j.appended - len(recs)
	cs.Torn = j.torn

	if dst == "" {
		dst = src
	}
	if dir := filepath.Dir(dst); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return cs, fmt.Errorf("runstore: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".compact-*")
	if err != nil {
		return cs, fmt.Errorf("runstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	// CreateTemp makes a 0600 file; match the journal's own mode so an
	// in-place compaction does not silently tighten permissions.
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(src); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return cs, fmt.Errorf("runstore: %w", err)
	}
	// Write the surviving records directly with one Sync at the end —
	// the temp file needs durability exactly once, before the rename,
	// not per record like live appends do.
	bw := bufio.NewWriter(tmp)
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return cs, fmt.Errorf("runstore: %w", err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return cs, fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return cs, fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return cs, fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return cs, fmt.Errorf("runstore: %w", err)
	}
	return cs, nil
}
