package runstore

import (
	"fmt"
	"os"
)

// CompactStats reports what one compaction did.
type CompactStats struct {
	Kept    int // distinct records written out
	Dropped int // superseded (re-appended same-key) records removed
	Torn    bool
}

// Compact rewrites the journal at src keeping only the last-appended
// record of every (experiment, hash, replicate) key, in first-appended
// key order — exactly the view Open serves from its in-memory index, so
// warm-start, diff, and summarize behavior is unchanged while the file
// sheds every superseded record. Like Open, it loads the journal into
// memory to build that view, so it compacts journals that still fit in
// RAM — run it before they outgrow it. A torn trailing line is dropped
// like Open would.
//
// The rewrite is atomic: records go to a temporary file in the target
// directory which is fsynced and renamed into place. dst == "" compacts
// in place; otherwise src is left untouched and the compacted journal is
// written to dst. Compaction is idempotent — compacting a compacted
// journal is a byte-identical no-op. Compact preserves append order;
// use Merge to rewrite a journal in canonical cross-writer order.
//
// Like Merge, Compact dispatches on format: a registered-format archive
// source is loaded through its own reader (never misparsed as JSONL),
// and a destination carrying a registered extension is written in that
// format — so compacting an archive in place keeps it an archive.
func Compact(src, dst string) (CompactStats, error) {
	var cs CompactStats
	var recs []Record
	srcFormat := formatOf(src)
	if f := srcFormat; f != nil {
		loaded, info, err := f.Load(src)
		if err != nil {
			return cs, err
		}
		recs = loaded
		cs.Kept = len(recs)
		cs.Dropped = info.Records - len(recs)
		cs.Torn = info.Torn
	} else {
		data, err := os.ReadFile(src)
		if err != nil {
			return cs, fmt.Errorf("runstore: %w", err)
		}
		j := &Journal{path: src, recs: make(map[string]Record)}
		if _, err := j.parse(data); err != nil {
			return cs, fmt.Errorf("runstore: %s: %w", src, err)
		}
		recs = j.Records()
		cs.Kept = len(recs)
		cs.Dropped = j.appended - len(recs)
		cs.Torn = j.torn
	}

	if dst == "" {
		dst = src
	}
	write := writeRecords
	if f := formatForDst(dst); f != nil {
		write = f.Write
	} else if dst == src && srcFormat != nil {
		// A renamed archive compacted in place stays an archive: the
		// sniffed source format wins over the (absent) extension.
		write = srcFormat.Write
	}
	if err := write(dst, recs, src); err != nil {
		return cs, err
	}
	return cs, nil
}
