package runstore

import (
	"bufio"
	"iter"
)

// CompactStats reports what one compaction did.
type CompactStats struct {
	Kept    int // distinct records written out
	Dropped int // superseded (re-appended same-key) records removed
	Torn    bool
}

// Compact rewrites the journal at src keeping only the last-appended
// record of every (experiment, hash, replicate) key, in first-appended
// key order — exactly the view Open serves from its in-memory index, so
// warm-start, diff, and summarize behavior is unchanged while the file
// sheds every superseded record. A torn trailing line is dropped like
// Open would.
//
// Compact streams: the index pass keeps one lightweight entry per key,
// and the rewrite copies (or decodes) one record at a time, so peak
// memory never holds the record set — run it on journals of any size.
//
// The rewrite is atomic: records go to a temporary file in the target
// directory which is fsynced and renamed into place. dst == "" compacts
// in place; otherwise src is left untouched and the compacted journal is
// written to dst. Compaction is idempotent — compacting a compacted
// journal is a byte-identical no-op. Compact preserves append order;
// use Merge to rewrite a journal in canonical cross-writer order.
//
// Like Merge, Compact dispatches on format: a registered-format archive
// source is loaded through its own reader (never misparsed as JSONL),
// and a destination carrying a registered extension is written in that
// format — so compacting an archive in place keeps it an archive.
func Compact(src, dst string) (CompactStats, error) {
	var cs CompactStats
	srcFormat := formatOf(src)
	r, err := OpenSource(src)
	if err != nil {
		return cs, err
	}
	defer r.Close()
	idx, order, records, err := indexEntries(r)
	if err != nil {
		return cs, err
	}
	cs.Kept = len(order)
	cs.Dropped = records - len(order)
	cs.Torn = r.Info().Torn

	if dst == "" {
		dst = src
	}
	formatWrite := formatForDst(dst)
	if formatWrite == nil && dst == src && srcFormat != nil {
		// A renamed archive compacted in place stays an archive: the
		// sniffed source format wins over the (absent) extension.
		formatWrite = srcFormat
	}
	if formatWrite != nil {
		seq := func(yield func(Record, error) bool) {
			for _, k := range order {
				rec, err := r.Read(idx[k].Ext)
				if !yield(rec, err) {
					return
				}
				if err != nil {
					return
				}
			}
		}
		if err := formatWrite.Write(dst, iter.Seq2[Record, error](seq), src); err != nil {
			return cs, err
		}
		metCompactRecords.Add(int64(cs.Kept))
		return cs, nil
	}
	err = atomicWrite(dst, src, func(w *bufio.Writer) error {
		for _, k := range order {
			if err := writeEntry(w, r, idx[k]); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return cs, err
	}
	metCompactRecords.Add(int64(cs.Kept))
	return cs, nil
}
