// Package storetest is the cross-backend conformance suite for the
// runstore.Store contract. Every backend — the JSONL journal, the
// sharded directory store, the block-indexed archive — runs the same
// assertions through Run, so the scheduler's assumptions (last-wins
// views, contiguous replicate counting, durable appends, crash-recovery
// equivalence, concurrency safety) are enforced uniformly instead of
// drifting per backend. A new backend earns its place behind
// sched.Options.Store by passing this suite, nothing less.
//
// Concurrency: the suite itself spawns concurrent appenders and readers;
// run it under -race (the repository's `make check` does).
//
// Durability: crash recovery is simulated through the Backend.Tear hook,
// which damages the backend's files the way a kill mid-append would;
// the suite then asserts a reopen serves exactly the records appended
// before the crash.
package storetest

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/runstore"
)

// Backend adapts one Store implementation to the conformance suite.
type Backend struct {
	// Name labels the subtests ("journal", "shardstore", "archivestore").
	Name string
	// Open opens (creating on first call) the backend's store rooted at
	// dir. Successive calls against the same dir must reopen the same
	// persistent state — that is what the durability assertions exercise.
	Open func(t *testing.T, dir string) runstore.Store
	// Tear simulates a crash mid-append: with every store closed, damage
	// the backend's file(s) under dir the way an interrupted append would
	// (a torn half-written suffix). The suite then reopens and asserts
	// nothing durable was lost.
	Tear func(t *testing.T, dir string)
}

// mkRecord builds a deterministic test record. Distinct rows get
// distinct assignments (and so hashes); the hash itself is left for the
// store to derive, which is part of the contract.
func mkRecord(exp string, row, rep int, val float64) runstore.Record {
	return runstore.Record{
		Experiment: exp,
		Row:        row,
		Replicate:  rep,
		Assignment: map[string]string{"cell": fmt.Sprintf("c%03d", row)},
		Responses:  map[string]float64{"t": val},
	}
}

func hashOf(r runstore.Record) string { return runstore.AssignmentHash(r.Assignment) }

// records drains a store's Scan into a slice, failing the test on a
// yielded error — the materializing convenience the assertions below
// use where they genuinely need the whole view.
func records(t *testing.T, s runstore.Store) []runstore.Record {
	t.Helper()
	recs, err := runstore.Collect(s.Scan())
	if err != nil {
		t.Fatalf("Scan yielded an error: %v", err)
	}
	return recs
}

// Run drives the full Store conformance suite against one backend.
func Run(t *testing.T, b Backend) {
	t.Run("EmptyStore", func(t *testing.T) {
		s := b.Open(t, t.TempDir())
		defer s.Close()
		if _, ok := s.Lookup("e", "deadbeef", 0); ok {
			t.Fatal("empty store Lookup hit")
		}
		if n := s.ReplicateCount("e", "deadbeef"); n != 0 {
			t.Fatalf("empty store ReplicateCount = %d", n)
		}
		if recs := records(t, s); len(recs) != 0 {
			t.Fatalf("empty store Scan yields %d entries", len(recs))
		}
	})

	t.Run("AppendLookupCount", func(t *testing.T) {
		s := b.Open(t, t.TempDir())
		defer s.Close()
		var want []runstore.Record
		for row := 0; row < 3; row++ {
			for rep := 0; rep < 2; rep++ {
				r := mkRecord("e", row, rep, float64(row*10+rep))
				if err := s.Append(r); err != nil {
					t.Fatal(err)
				}
				want = append(want, r)
			}
		}
		for _, w := range want {
			got, ok := s.Lookup("e", hashOf(w), w.Replicate)
			if !ok {
				t.Fatalf("Lookup(%s/%d) missed", hashOf(w), w.Replicate)
			}
			if got.Responses["t"] != w.Responses["t"] {
				t.Fatalf("Lookup = %v, want %v", got.Responses, w.Responses)
			}
			if got.Hash != hashOf(w) {
				t.Fatalf("store did not derive Hash: %q", got.Hash)
			}
			if got.Assignment["cell"] != w.Assignment["cell"] {
				t.Fatalf("assignment lost: %v", got.Assignment)
			}
		}
		if n := s.ReplicateCount("e", hashOf(want[0])); n != 2 {
			t.Fatalf("ReplicateCount = %d, want 2", n)
		}
	})

	t.Run("LastWins", func(t *testing.T) {
		s := b.Open(t, t.TempDir())
		defer s.Close()
		if err := s.Append(mkRecord("e", 0, 0, 1)); err != nil {
			t.Fatal(err)
		}
		redo := mkRecord("e", 0, 0, 2)
		if err := s.Append(redo); err != nil {
			t.Fatal(err)
		}
		got, ok := s.Lookup("e", hashOf(redo), 0)
		if !ok || got.Responses["t"] != 2 {
			t.Fatalf("Lookup = %v ok=%v, want the superseding record", got.Responses, ok)
		}
		distinct := 0
		for _, r := range records(t, s) {
			if r.Experiment == "e" {
				distinct++
			}
		}
		if distinct != 1 {
			t.Fatalf("Records holds %d copies, want 1 (last-wins)", distinct)
		}
	})

	t.Run("ReplicateContiguity", func(t *testing.T) {
		// A gap must stop the count: warm start extends a contiguous
		// prefix, never fills holes.
		s := b.Open(t, t.TempDir())
		defer s.Close()
		for _, rep := range []int{0, 1, 3} {
			if err := s.Append(mkRecord("e", 0, rep, 1)); err != nil {
				t.Fatal(err)
			}
		}
		if n := s.ReplicateCount("e", hashOf(mkRecord("e", 0, 0, 1))); n != 2 {
			t.Fatalf("ReplicateCount with a gap at 2 = %d, want 2", n)
		}
	})

	t.Run("RecordsDeterministic", func(t *testing.T) {
		dir := t.TempDir()
		s := b.Open(t, dir)
		for row := 0; row < 5; row++ {
			if err := s.Append(mkRecord("e", row, 0, float64(row))); err != nil {
				t.Fatal(err)
			}
		}
		first := keysOf(records(t, s))
		second := keysOf(records(t, s))
		if !equalKeys(first, second) {
			t.Fatalf("Records not deterministic: %v vs %v", first, second)
		}
		s.Close()
		r := b.Open(t, dir)
		defer r.Close()
		if got := keysOf(records(t, r)); !equalKeys(first, got) {
			t.Fatalf("Scan order changed across reopen: %v vs %v", first, got)
		}
	})

	t.Run("RejectsInvalid", func(t *testing.T) {
		s := b.Open(t, t.TempDir())
		defer s.Close()
		if err := s.Append(runstore.Record{Replicate: 0}); err == nil {
			t.Fatal("append without an experiment name succeeded")
		}
		neg := mkRecord("e", 0, 0, 1)
		neg.Replicate = -1
		if err := s.Append(neg); err == nil {
			t.Fatal("append with a negative replicate succeeded")
		}
		nan := mkRecord("e", 0, 0, 1)
		nan.Responses = map[string]float64{"t": math.NaN()}
		if err := s.Append(nan); err == nil {
			t.Fatal("append with a NaN response succeeded")
		}
		if len(records(t, s)) != 0 {
			t.Fatal("rejected appends left records behind")
		}
	})

	t.Run("AppendAfterCloseFails", func(t *testing.T) {
		s := b.Open(t, t.TempDir())
		if err := s.Append(mkRecord("e", 0, 0, 1)); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(mkRecord("e", 0, 1, 1)); err == nil {
			t.Fatal("append after Close succeeded")
		}
	})

	t.Run("ReopenDurability", func(t *testing.T) {
		dir := t.TempDir()
		s := b.Open(t, dir)
		var want []runstore.Record
		for row := 0; row < 4; row++ {
			for rep := 0; rep < 2; rep++ {
				r := mkRecord("e", row, rep, float64(row)+float64(rep)/10)
				if err := s.Append(r); err != nil {
					t.Fatal(err)
				}
				want = append(want, r)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		r := b.Open(t, dir)
		defer r.Close()
		assertHolds(t, r, want, "reopen")
	})

	t.Run("ConcurrentAppendLookup", func(t *testing.T) {
		// All methods must be safe for concurrent use; -race is the real
		// assertion here.
		s := b.Open(t, t.TempDir())
		defer s.Close()
		const workers, reps = 4, 8
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for rep := 0; rep < reps; rep++ {
					if err := s.Append(mkRecord("e", w, rep, float64(rep))); err != nil {
						t.Error(err)
						return
					}
					s.Lookup("e", hashOf(mkRecord("e", w, 0, 0)), rep)
					s.ReplicateCount("e", hashOf(mkRecord("e", w, 0, 0)))
				}
			}(w)
		}
		wg.Wait()
		if got := len(records(t, s)); got != workers*reps {
			t.Fatalf("Scan holds %d, want %d", got, workers*reps)
		}
	})

	t.Run("CrashRecoveryEquivalence", func(t *testing.T) {
		if b.Tear == nil {
			t.Skip("backend has no Tear hook")
		}
		dir := t.TempDir()
		s := b.Open(t, dir)
		var want []runstore.Record
		for row := 0; row < 3; row++ {
			for rep := 0; rep < 3; rep++ {
				r := mkRecord("e", row, rep, float64(row*row)+float64(rep))
				if err := s.Append(r); err != nil {
					t.Fatal(err)
				}
				want = append(want, r)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		b.Tear(t, dir)
		r := b.Open(t, dir)
		defer r.Close()
		// Equivalence: the recovered view is exactly the pre-crash view —
		// every durable append present, the torn suffix gone, and the
		// store writable again.
		assertHolds(t, r, want, "post-crash reopen")
		if got := len(records(t, r)); got != len(want) {
			t.Fatalf("post-crash Scan holds %d, want exactly %d", got, len(want))
		}
		if err := r.Append(mkRecord("e", 9, 0, 1)); err != nil {
			t.Fatalf("append after crash recovery: %v", err)
		}
	})

	t.Run("ScanDeterministicOrder", func(t *testing.T) {
		// Two consecutive scans of a quiescent store must yield the same
		// keys in the same order, record by record, with no errors.
		s := b.Open(t, t.TempDir())
		defer s.Close()
		for row := 0; row < 6; row++ {
			for rep := 0; rep < 2; rep++ {
				if err := s.Append(mkRecord("e", row, rep, float64(row*10+rep))); err != nil {
					t.Fatal(err)
				}
			}
		}
		first := keysOf(records(t, s))
		if len(first) != 12 {
			t.Fatalf("Scan yields %d records, want 12", len(first))
		}
		if !equalKeys(first, keysOf(records(t, s))) {
			t.Fatal("two scans of a quiescent store disagree")
		}
	})

	t.Run("ScanEarlyBreak", func(t *testing.T) {
		// A consumer that stops early must not deadlock the store or leak
		// its iteration: the store stays fully usable afterwards.
		s := b.Open(t, t.TempDir())
		defer s.Close()
		for row := 0; row < 5; row++ {
			if err := s.Append(mkRecord("e", row, 0, float64(row))); err != nil {
				t.Fatal(err)
			}
		}
		n := 0
		for _, err := range s.Scan() {
			if err != nil {
				t.Fatal(err)
			}
			n++
			if n == 2 {
				break
			}
		}
		if err := s.Append(mkRecord("e", 9, 0, 1)); err != nil {
			t.Fatalf("append after an abandoned scan: %v", err)
		}
		if got := len(records(t, s)); got != 6 {
			t.Fatalf("store holds %d records after early break + append, want 6", got)
		}
	})

	t.Run("ScanDuringAppend", func(t *testing.T) {
		// Appending mid-iteration must neither block nor corrupt the scan:
		// every record present when the scan started is yielded intact,
		// and the append lands durably.
		s := b.Open(t, t.TempDir())
		defer s.Close()
		const preload = 8
		for row := 0; row < preload; row++ {
			if err := s.Append(mkRecord("e", row, 0, float64(row))); err != nil {
				t.Fatal(err)
			}
		}
		seen := 0
		for rec, err := range s.Scan() {
			if err != nil {
				t.Fatal(err)
			}
			if rec.Experiment != "e" {
				t.Fatalf("scan yielded foreign record %+v", rec)
			}
			if seen == 2 {
				if err := s.Append(mkRecord("e", preload, 0, 99)); err != nil {
					t.Fatalf("append during scan: %v", err)
				}
			}
			seen++
		}
		if seen < preload {
			t.Fatalf("scan yielded %d records, want at least the %d present at start", seen, preload)
		}
		if _, ok := s.Lookup("e", hashOf(mkRecord("e", preload, 0, 99)), 0); !ok {
			t.Fatal("record appended during scan not indexed")
		}
	})

	t.Run("ConcurrentAppendDuringScan", func(t *testing.T) {
		// Scan's snapshot-at-start contract under real concurrency: while
		// one goroutine iterates, others keep appending from separate
		// goroutines (not merely from inside the scan loop, which
		// ScanDuringAppend covers single-threaded). -race is the sharpest
		// assertion; beyond it, every record present when the scan began
		// must be yielded intact and every concurrent append must land.
		s := b.Open(t, t.TempDir())
		defer s.Close()
		const preload, appenders, extra = 10, 3, 6
		for row := 0; row < preload; row++ {
			if err := s.Append(mkRecord("e", row, 0, float64(row))); err != nil {
				t.Fatal(err)
			}
		}
		start := make(chan struct{})
		var wg sync.WaitGroup
		for a := 0; a < appenders; a++ {
			wg.Add(1)
			go func(a int) {
				defer wg.Done()
				<-start
				for i := 0; i < extra; i++ {
					if err := s.Append(mkRecord("e", preload+a*extra+i, 0, float64(i))); err != nil {
						t.Error(err)
						return
					}
				}
			}(a)
		}
		seen := 0
		for rec, err := range s.Scan() {
			if err != nil {
				t.Fatal(err)
			}
			if rec.Experiment != "e" {
				t.Fatalf("scan yielded foreign record %+v", rec)
			}
			if seen == 0 {
				close(start) // appenders race the rest of the iteration
			}
			seen++
		}
		wg.Wait()
		if seen < preload {
			t.Fatalf("scan yielded %d records, want at least the %d present at start", seen, preload)
		}
		if got := len(records(t, s)); got != preload+appenders*extra {
			t.Fatalf("store holds %d records after concurrent appends, want %d", got, preload+appenders*extra)
		}
	})

	t.Run("ScanErrorPropagation", func(t *testing.T) {
		// The error slot of the sequence is part of the contract: a
		// healthy store yields none, and Collect surfaces the first one.
		// Backends whose Scan reads from disk mid-iteration additionally
		// cover real read failures in their own tests.
		s := b.Open(t, t.TempDir())
		defer s.Close()
		if err := s.Append(mkRecord("e", 0, 0, 1)); err != nil {
			t.Fatal(err)
		}
		if _, err := runstore.Collect(s.Scan()); err != nil {
			t.Fatalf("healthy store Scan yielded error: %v", err)
		}
	})
}

// assertHolds checks that every record in want is served by Lookup and
// counted by ReplicateCount.
func assertHolds(t *testing.T, s runstore.Store, want []runstore.Record, stage string) {
	t.Helper()
	perCell := map[string]int{}
	for _, w := range want {
		got, ok := s.Lookup(w.Experiment, hashOf(w), w.Replicate)
		if !ok {
			t.Fatalf("%s: Lookup(%s/%d) missed", stage, hashOf(w), w.Replicate)
		}
		if got.Responses["t"] != w.Responses["t"] {
			t.Fatalf("%s: Lookup = %v, want %v", stage, got.Responses, w.Responses)
		}
		cell := runstore.CellKey(w.Experiment, hashOf(w))
		if w.Replicate+1 > perCell[cell] {
			perCell[cell] = w.Replicate + 1
		}
	}
	for _, w := range want {
		cell := runstore.CellKey(w.Experiment, hashOf(w))
		if n := s.ReplicateCount(w.Experiment, hashOf(w)); n != perCell[cell] {
			t.Fatalf("%s: ReplicateCount = %d, want %d", stage, n, perCell[cell])
		}
	}
}

func keysOf(recs []runstore.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Key()
	}
	return out
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
