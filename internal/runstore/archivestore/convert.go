package archivestore

import (
	"bufio"
	"bytes"
	"fmt"
	"iter"
	"os"
	"path/filepath"

	"repro/internal/runstore"
)

// init plugs the archive format into the runstore journal tooling:
// Merge writes an archive when the destination ends in Ext, and
// LoadRecords / ScanFile / Inspect / Merge sources dispatch on the file
// magic through the streaming reader. Any program importing this
// package gets the behavior; the scheduler does not need to.
func init() {
	runstore.RegisterFormat(runstore.Format{
		Name:       "archive",
		Ext:        Ext,
		Sniff:      func(head []byte) bool { return bytes.Equal(head, []byte(Magic)) },
		OpenReader: OpenReader,
		Write:      Write,
		Inspect:    Inspect,
	})
	// The compressed variant is destination-only: a .archz file carries
	// the same magic and block framing, so as a source it sniffs (and
	// reads) as "archive" above. Registering the extension routes Merge
	// and Compact destinations ending in .archz through the compressed
	// bulk writer.
	runstore.RegisterFormat(runstore.Format{
		Name:       "archivez",
		Ext:        ExtZ,
		Sniff:      func(head []byte) bool { return false },
		OpenReader: OpenReader,
		Write:      WriteCompressed,
		Inspect:    Inspect,
	})
}

// Write atomically replaces dst with a finalized archive holding the
// records of recs in sequence order: temp file in the target directory,
// one fsync, rename — the bulk build path behind `perfeval archive` and
// archive-destination merges. The sequence is consumed incrementally
// (one record encoded at a time, never a materialized slice), and
// unlike Archive.Append it buffers and syncs once, so converting a
// 10^5-record journal costs one write pass, not 10^5 fsyncs. A yielded
// error aborts the write and leaves dst untouched. The file mode is
// copied from modeFrom when that file exists, 0644 otherwise.
func Write(dst string, recs iter.Seq2[runstore.Record, error], modeFrom string) error {
	return writeWith(dst, recs, modeFrom, false)
}

// WriteCompressed is Write with every record block flate-compressed —
// the bulk build path behind .archz merge destinations. The result is a
// valid archive by every reader's lights (compression is per block, not
// per file), just smaller on disk for the storage-bound cold path.
func WriteCompressed(dst string, recs iter.Seq2[runstore.Record, error], modeFrom string) error {
	return writeWith(dst, recs, modeFrom, true)
}

// writeWith is the shared bulk writer behind Write and WriteCompressed.
func writeWith(dst string, recs iter.Seq2[runstore.Record, error], modeFrom string, compress bool) error {
	if dir := filepath.Dir(dst); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("archivestore: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".rewrite-*")
	if err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(modeFrom); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return fmt.Errorf("archivestore: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		return err
	}
	bw := bufio.NewWriterSize(tmp, 256<<10)
	if _, err := bw.WriteString(Magic); err != nil {
		return fail(fmt.Errorf("archivestore: %w", err))
	}
	off := int64(headerSize)
	written := 0
	var pending []pendingEntry
	var pages []int64
	flushPage := func() error {
		if len(pending) == 0 {
			return nil
		}
		block := appendBlock(nil, blockIndex, encodeIndexPayload(pending))
		if _, err := bw.Write(block); err != nil {
			return fmt.Errorf("archivestore: %w", err)
		}
		pages = append(pages, off)
		off += int64(len(block))
		pending = pending[:0]
		return nil
	}
	for rec, rerr := range recs {
		if rerr != nil {
			return fail(rerr)
		}
		// Fill a missing hash so the stored key matches what Lookup
		// computes — but otherwise write records verbatim: bulk Write is
		// a format conversion, and re-validating (or re-keying) here
		// would make an archive disagree with the journal it came from.
		if rec.Hash == "" {
			rec.Hash = runstore.AssignmentHash(rec.Assignment)
		}
		typ := byte(blockRecord)
		var payload []byte
		var err error
		if compress {
			typ = blockRecordZ
			payload, err = encodeRecordPayloadZ(rec)
		} else {
			payload, err = encodeRecordPayload(rec)
		}
		if err != nil {
			return fail(err)
		}
		block := appendBlock(nil, typ, payload)
		if _, err := bw.Write(block); err != nil {
			return fail(fmt.Errorf("archivestore: %w", err))
		}
		pending = append(pending, pendingEntry{
			exp: rec.Experiment, hash: rec.Hash, rep: rec.Replicate,
			entry: entry{off: off, n: int32(len(block))},
		})
		off += int64(len(block))
		written++
		if len(pending) >= DefaultIndexInterval {
			if err := flushPage(); err != nil {
				return fail(err)
			}
		}
	}
	if err := flushPage(); err != nil {
		return fail(err)
	}
	tail := appendBlock(nil, blockFooter, encodeFooterPayload(written, pages))
	tail = append(tail, encodeTrailer(off)...)
	if _, err := bw.Write(tail); err != nil {
		return fail(fmt.Errorf("archivestore: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("archivestore: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("archivestore: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	return nil
}

// Load reads every record from an archive file read-only — the file is
// never created, repaired, or truncated — returning the distinct
// last-wins records in first-appended order plus the Info shape, from
// one walk of the block sequence. It is the materializing convenience
// over the streaming reader; range over runstore.ScanFile to avoid the
// slice.
func Load(path string) ([]runstore.Record, runstore.Info, error) {
	r, err := OpenReader(path)
	if err != nil {
		return nil, runstore.Info{}, err
	}
	defer r.Close()
	idx := make(map[string]runstore.Extent)
	var order []string
	for e, eerr := range r.Entries() {
		if eerr != nil {
			return nil, runstore.Info{}, eerr
		}
		k := e.Key()
		if _, seen := idx[k]; !seen {
			order = append(order, k)
		}
		idx[k] = e.Ext
	}
	out := make([]runstore.Record, 0, len(order))
	for _, k := range order {
		rec, err := r.Read(idx[k])
		if err != nil {
			return nil, runstore.Info{}, err
		}
		out = append(out, rec)
	}
	return out, r.Info(), nil
}

// Inspect reports an archive file's shape — block and index page counts,
// footer state, and any torn or unfinalized tail — through the same
// streaming walk every other reader uses. It backs runstore.Inspect for
// archive files.
func Inspect(path string) (runstore.Info, error) {
	r, err := OpenReader(path)
	if err != nil {
		return runstore.Info{}, err
	}
	defer r.Close()
	for _, err := range r.Entries() {
		if err != nil {
			return runstore.Info{}, err
		}
	}
	return r.Info(), nil
}
