package archivestore

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/runstore"
)

// init plugs the archive format into the runstore journal tooling:
// Merge writes an archive when the destination ends in Ext, and
// LoadRecords / Inspect / Merge sources dispatch on the file magic. Any
// program importing this package gets the behavior; the scheduler does
// not need to.
func init() {
	runstore.RegisterFormat(runstore.Format{
		Name:    "archive",
		Ext:     Ext,
		Sniff:   func(head []byte) bool { return bytes.Equal(head, []byte(Magic)) },
		Load:    Load,
		Write:   Write,
		Inspect: Inspect,
	})
}

// Write atomically replaces dst with a finalized archive holding recs in
// the given order: temp file in the target directory, one fsync, rename —
// the bulk build path behind `perfeval archive` and archive-destination
// merges. Unlike Archive.Append it buffers and syncs once, so converting
// a 10^5-record journal costs one write pass, not 10^5 fsyncs. The file
// mode is copied from modeFrom when that file exists, 0644 otherwise.
func Write(dst string, recs []runstore.Record, modeFrom string) error {
	if dir := filepath.Dir(dst); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("archivestore: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".rewrite-*")
	if err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(modeFrom); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return fmt.Errorf("archivestore: %w", err)
	}
	fail := func(err error) error {
		tmp.Close()
		return err
	}
	bw := bufio.NewWriter(tmp)
	if _, err := bw.WriteString(Magic); err != nil {
		return fail(fmt.Errorf("archivestore: %w", err))
	}
	off := int64(headerSize)
	var pending []pendingEntry
	var pages []int64
	flushPage := func() error {
		if len(pending) == 0 {
			return nil
		}
		block := appendBlock(nil, blockIndex, encodeIndexPayload(pending))
		if _, err := bw.Write(block); err != nil {
			return fmt.Errorf("archivestore: %w", err)
		}
		pages = append(pages, off)
		off += int64(len(block))
		pending = pending[:0]
		return nil
	}
	for _, rec := range recs {
		// Fill a missing hash so the stored key matches what Lookup
		// computes — but otherwise write records verbatim: bulk Write is
		// a format conversion, and re-validating (or re-keying) here
		// would make an archive disagree with the journal it came from.
		if rec.Hash == "" {
			rec.Hash = runstore.AssignmentHash(rec.Assignment)
		}
		payload, err := encodeRecordPayload(rec)
		if err != nil {
			return fail(err)
		}
		block := appendBlock(nil, blockRecord, payload)
		if _, err := bw.Write(block); err != nil {
			return fail(fmt.Errorf("archivestore: %w", err))
		}
		pending = append(pending, pendingEntry{
			exp: rec.Experiment, hash: rec.Hash, rep: rec.Replicate,
			entry: entry{off: off, n: int32(len(block))},
		})
		off += int64(len(block))
		if len(pending) >= DefaultIndexInterval {
			if err := flushPage(); err != nil {
				return fail(err)
			}
		}
	}
	if err := flushPage(); err != nil {
		return fail(err)
	}
	tail := appendBlock(nil, blockFooter, encodeFooterPayload(len(recs), pages))
	tail = append(tail, encodeTrailer(off)...)
	if _, err := bw.Write(tail); err != nil {
		return fail(fmt.Errorf("archivestore: %w", err))
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("archivestore: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("archivestore: %w", err))
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	return nil
}

// walkInfo is what one pass over an archive's block sequence learns
// without interpreting record payloads.
type walkInfo struct {
	records   int   // record blocks, superseded included
	pages     int   // index page blocks
	finalized bool  // valid footer + trailer end the file
	dropped   int64 // trailing bytes a read-write Open would truncate
}

// walkArchive validates data as an archive file and iterates its valid
// block prefix, calling onRecord for each record block. It never writes:
// a torn or unfinalized tail is measured and reported, exactly what the
// read-write Open would truncate.
func walkArchive(path string, data []byte, onRecord func(payload []byte) error) (walkInfo, error) {
	var wi walkInfo
	if len(data) < headerSize || string(data[:headerSize]) != Magic {
		return wi, fmt.Errorf("archivestore: %s is not an archive (bad or short magic)", path)
	}
	off := int64(headerSize)
	for {
		typ, payload, ok := parseBlock(data, off)
		if !ok {
			break
		}
		blockLen := int64(blockHeaderSize) + int64(len(payload))
		if typ == blockFooter {
			// A finalized archive ends footer, trailer, EOF — anything
			// else past the footer is a torn finalize.
			end := off + blockLen
			if int64(len(data)) == end+int64(trailerSize) {
				if footOff, ok := decodeTrailer(data[end:]); ok && footOff == off {
					wi.finalized = true
				}
			}
			break
		}
		switch typ {
		case blockRecord:
			if err := onRecord(payload); err != nil {
				return wi, err
			}
			wi.records++
		case blockIndex:
			wi.pages++
		}
		off += blockLen
	}
	if !wi.finalized {
		wi.dropped = int64(len(data)) - off
	}
	return wi, nil
}

// Load reads every record from an archive file read-only — the file is
// never created, repaired, or truncated — returning the distinct
// last-wins records in first-appended order plus the Info shape. It
// backs runstore.LoadRecords and Merge sources for archive files.
func Load(path string) ([]runstore.Record, runstore.Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, runstore.Info{}, fmt.Errorf("archivestore: %w", err)
	}
	recs := make(map[string]runstore.Record)
	var order []string
	wi, err := walkArchive(path, data, func(payload []byte) error {
		rec, err := decodeRecordPayload(payload)
		if err != nil {
			return fmt.Errorf("archivestore: %s: %w", path, err)
		}
		k := rec.Key()
		if _, exists := recs[k]; !exists {
			order = append(order, k)
		}
		recs[k] = rec
		return nil
	})
	if err != nil {
		return nil, runstore.Info{}, err
	}
	out := make([]runstore.Record, 0, len(order))
	for _, k := range order {
		out = append(out, recs[k])
	}
	return out, infoOf(wi, len(order)), nil
}

// Inspect reports an archive file's shape — block and index page counts,
// footer state, and any torn or unfinalized tail — without decoding a
// single record payload. It backs runstore.Inspect for archive files.
func Inspect(path string) (runstore.Info, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return runstore.Info{}, fmt.Errorf("archivestore: %w", err)
	}
	distinct := make(map[string]struct{})
	wi, err := walkArchive(path, data, func(payload []byte) error {
		exp, hash, rep, err := recordPayloadKey(payload)
		if err != nil {
			return fmt.Errorf("archivestore: %s: %w", path, err)
		}
		distinct[runstore.Key(exp, hash, rep)] = struct{}{}
		return nil
	})
	if err != nil {
		return runstore.Info{}, err
	}
	return infoOf(wi, len(distinct)), nil
}

// infoOf maps a walk onto the runstore.Info contract: Torn flags any
// file a read-write Open would truncate or rebuild by scan, so tooling
// reports incomplete archives instead of silently counting only the
// valid prefix.
func infoOf(wi walkInfo, distinct int) runstore.Info {
	info := runstore.Info{
		Records:  wi.records,
		Distinct: distinct,
		Torn:     wi.dropped > 0 || (!wi.finalized && wi.records > 0),
	}
	detail := fmt.Sprintf("archive: %d record block(s), %d index page(s)", wi.records, wi.pages)
	switch {
	case wi.finalized:
		detail += ", footer ok"
	case wi.dropped > 0:
		detail += fmt.Sprintf(", TRUNCATED: no valid footer, %d trailing byte(s) would be dropped on open", wi.dropped)
	default:
		detail += ", unfinalized: no footer yet, open falls back to a full scan"
	}
	info.Detail = detail
	return info
}
