package archivestore_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/runstore"
	"repro/internal/runstore/archivestore"
)

// benchRecords is the 10^5-record corpus the ROADMAP's million-run north
// star is scaled down to for CI: 10^4 cells x 10 replicates.
const benchRecords = 100_000

var benchOnce struct {
	sync.Once
	dir  string
	err  error
	jlen int64
	alen int64
}

// benchFiles builds (once) a journal and its archive conversion holding
// the same benchRecords records, in a shared temp dir.
func benchFiles(b *testing.B) (journal, archive string) {
	benchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "archbench")
		if err != nil {
			benchOnce.err = err
			return
		}
		benchOnce.dir = dir
		recs := make([]runstore.Record, 0, benchRecords)
		for i := 0; i < benchRecords; i++ {
			recs = append(recs, runstore.Record{
				Experiment: "bench",
				Row:        i / 10,
				Replicate:  i % 10,
				Hash:       fmt.Sprintf("%016x", uint64(i/10)),
				Assignment: map[string]string{"cell": fmt.Sprintf("c%05d", i/10)},
				Responses:  map[string]float64{"t": float64(i % 97)},
			})
		}
		// The journal is written directly (its format is one JSON line
		// per record); Append's per-record fsync is irrelevant to an open
		// benchmark and would take minutes here.
		jf, err := os.Create(filepath.Join(dir, "bench.jsonl"))
		if err != nil {
			benchOnce.err = err
			return
		}
		bw := bufio.NewWriter(jf)
		for _, r := range recs {
			line, err := json.Marshal(r)
			if err != nil {
				benchOnce.err = err
				return
			}
			bw.Write(line)
			bw.WriteByte('\n')
		}
		if err := bw.Flush(); err != nil {
			benchOnce.err = err
			return
		}
		jf.Close()
		if err := archivestore.Write(filepath.Join(dir, "bench.arch"), runstore.Seq(recs), ""); err != nil {
			benchOnce.err = err
			return
		}
		if st, err := os.Stat(filepath.Join(dir, "bench.jsonl")); err == nil {
			benchOnce.jlen = st.Size()
		}
		if st, err := os.Stat(filepath.Join(dir, "bench.arch")); err == nil {
			benchOnce.alen = st.Size()
		}
	})
	if benchOnce.err != nil {
		b.Fatal(benchOnce.err)
	}
	return filepath.Join(benchOnce.dir, "bench.jsonl"), filepath.Join(benchOnce.dir, "bench.arch")
}

// BenchmarkArchiveOpen measures the warm-start entry cost on the archive
// backend: open 10^5 records via footer + index pages (no JSON parse),
// answer one warm-start probe, close. The acceptance bar for the backend
// is >= 10x faster than BenchmarkJournalOpen on the same records.
func BenchmarkArchiveOpen(b *testing.B) {
	_, arch := benchFiles(b)
	b.ReportMetric(float64(benchOnce.alen), "file-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := archivestore.Open(arch)
		if err != nil {
			b.Fatal(err)
		}
		if n := a.ReplicateCount("bench", fmt.Sprintf("%016x", uint64(7))); n != 10 {
			b.Fatalf("ReplicateCount = %d, want 10", n)
		}
		a.Close()
	}
}

// BenchmarkJournalOpen is the baseline BenchmarkArchiveOpen is judged
// against: the JSONL journal re-parses every record into memory on open.
func BenchmarkJournalOpen(b *testing.B) {
	journal, _ := benchFiles(b)
	b.ReportMetric(float64(benchOnce.jlen), "file-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := runstore.Open(journal)
		if err != nil {
			b.Fatal(err)
		}
		if n := j.ReplicateCount("bench", fmt.Sprintf("%016x", uint64(7))); n != 10 {
			b.Fatalf("ReplicateCount = %d, want 10", n)
		}
		j.Close()
	}
}
