package archivestore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/runstore"
)

// rec builds a test record; hash is derived from the assignment on
// append, exactly as the journal derives it.
func rec(exp string, row, rep int, val float64) runstore.Record {
	return runstore.Record{
		Experiment: exp,
		Row:        row,
		Replicate:  rep,
		Assignment: map[string]string{"size": string(rune('a' + row))},
		Responses:  map[string]float64{"t": val},
	}
}

func hashOf(r runstore.Record) string { return runstore.AssignmentHash(r.Assignment) }

func TestRoundTripAndFinalizedReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.arch")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a.interval = 2 // force index pages mid-stream
	var want []runstore.Record
	for row := 0; row < 3; row++ {
		for rep := 0; rep < 2; rep++ {
			r := rec("e", row, rep, float64(10*row+rep))
			if err := a.Append(r); err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		}
	}
	check := func(s runstore.Store, stage string) {
		t.Helper()
		for _, w := range want {
			got, ok := s.Lookup(w.Experiment, hashOf(w), w.Replicate)
			if !ok {
				t.Fatalf("%s: Lookup(%s) missed", stage, w.Key())
			}
			if got.Responses["t"] != w.Responses["t"] || got.Row != w.Row {
				t.Fatalf("%s: Lookup(%s) = %+v, want %+v", stage, w.Key(), got, w)
			}
		}
		if n := s.ReplicateCount("e", hashOf(want[0])); n != 2 {
			t.Fatalf("%s: ReplicateCount = %d, want 2", stage, n)
		}
		if n := s.ReplicateCount("e", "absent"); n != 0 {
			t.Fatalf("%s: ReplicateCount(absent) = %d, want 0", stage, n)
		}
		recs, err := runstore.Collect(s.Scan())
		if err != nil {
			t.Fatalf("%s: Scan: %v", stage, err)
		}
		if len(recs) != len(want) {
			t.Fatalf("%s: Records() has %d records, want %d", stage, len(recs), len(want))
		}
		for i := range recs {
			wantKey := runstore.Key(want[i].Experiment, hashOf(want[i]), want[i].Replicate)
			if recs[i].Key() != wantKey {
				t.Fatalf("%s: Records()[%d] = %s, want %s (order)", stage, i, recs[i].Key(), wantKey)
			}
		}
	}
	check(a, "live")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	check(a, "after Close") // reads reopen the file read-only

	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Torn() {
		t.Fatal("finalized archive reported torn on reopen")
	}
	if b.dirty {
		t.Fatal("finalized reopen should not be dirty before any append")
	}
	if len(b.pages) == 0 {
		t.Fatal("finalized reopen loaded no index pages")
	}
	if b.appended != len(want) {
		t.Fatalf("appended = %d, want %d", b.appended, len(want))
	}
	check(b, "finalized reopen")
}

func TestReopenAppendCloseCycles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.arch")
	var want []runstore.Record
	for cycle := 0; cycle < 3; cycle++ {
		a, err := Open(path)
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		a.interval = 2
		for rep := 0; rep < 3; rep++ {
			r := rec("e", cycle, rep, float64(cycle*100+rep))
			if err := a.Append(r); err != nil {
				t.Fatalf("cycle %d: %v", cycle, err)
			}
			want = append(want, r)
		}
		if err := a.Close(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(want))
	}
	for _, w := range want {
		if _, ok := a.Lookup(w.Experiment, hashOf(w), w.Replicate); !ok {
			t.Fatalf("Lookup(%s) missed after 3 open/append/close cycles", w.Key())
		}
	}
}

func TestLastWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.arch")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	first := rec("e", 0, 0, 1)
	second := rec("e", 0, 0, 2)
	if err := a.Append(first); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(second); err != nil {
		t.Fatal(err)
	}
	got, ok := a.Lookup("e", hashOf(first), 0)
	if !ok || got.Responses["t"] != 2 {
		t.Fatalf("Lookup = %+v ok=%v, want the re-appended record", got, ok)
	}
	if got, err := runstore.Collect(a.Scan()); err != nil || len(got) != 1 {
		t.Fatalf("Scan holds %d (err %v), want 1 distinct", len(got), err)
	}
	a.Close()
	b, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got, ok := b.Lookup("e", hashOf(first), 0); !ok || got.Responses["t"] != 2 {
		t.Fatalf("after reopen Lookup = %+v ok=%v, want last-wins record", got, ok)
	}
	if b.appended != 2 {
		t.Fatalf("appended = %d, want 2 (superseded records still counted)", b.appended)
	}
}

// TestTornTailRecovery covers the two crash shapes: garbage appended
// after a finalized archive (trailer invalidated), and a finalize cut
// off mid-footer (no valid trailer at all).
func TestTornTailRecovery(t *testing.T) {
	build := func(t *testing.T) (string, []runstore.Record) {
		path := filepath.Join(t.TempDir(), "run.arch")
		a, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		a.interval = 2
		var want []runstore.Record
		for rep := 0; rep < 5; rep++ {
			r := rec("e", 0, rep, float64(rep))
			if err := a.Append(r); err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		return path, want
	}
	reopenAndCheck := func(t *testing.T, path string, want []runstore.Record) {
		t.Helper()
		a, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		if !a.Torn() {
			t.Fatal("recovery from a damaged tail should report Torn")
		}
		if a.Len() != len(want) {
			t.Fatalf("recovered %d records, want %d", a.Len(), len(want))
		}
		for _, w := range want {
			if got, ok := a.Lookup(w.Experiment, hashOf(w), w.Replicate); !ok || got.Responses["t"] != w.Responses["t"] {
				t.Fatalf("Lookup(%s) after recovery = %+v ok=%v", w.Key(), got, ok)
			}
		}
		// The store stays writable after recovery.
		extra := rec("e", 1, 0, 99)
		if err := a.Append(extra); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
	}

	t.Run("GarbageAfterTrailer", func(t *testing.T) {
		path, want := build(t)
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{blockRecord, 0xff, 0xff}); err != nil {
			t.Fatal(err)
		}
		f.Close()
		reopenAndCheck(t, path, want)
	})

	t.Run("TruncatedFinalize", func(t *testing.T) {
		path, want := build(t)
		st, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		// Chop the trailer plus part of the footer: the scan must still
		// recover every record block.
		if err := os.Truncate(path, st.Size()-int64(trailerSize)-3); err != nil {
			t.Fatal(err)
		}
		reopenAndCheck(t, path, want)
	})
}

// TestFinalizedOpenIsIndexOnly proves the O(index) claim structurally: a
// finalized archive whose record block payload is corrupted on disk still
// opens (record payloads are not touched), and only the damaged record
// is lost at Lookup time.
func TestFinalizedOpenIsIndexOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.arch")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := rec("e", 0, 0, 1), rec("e", 1, 0, 2)
	if err := a.Append(r0); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(r1); err != nil {
		t.Fatal(err)
	}
	e0 := a.idx[r0.Key()]
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first record block.
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xAA}, e0.off+int64(blockHeaderSize)+5); err != nil {
		t.Fatal(err)
	}
	f.Close()

	b, err := Open(path)
	if err != nil {
		t.Fatalf("finalized open should not read record payloads: %v", err)
	}
	defer b.Close()
	if _, ok := b.Lookup("e", hashOf(r1), 0); !ok {
		t.Fatal("undamaged record lost")
	}
	if _, ok := b.Lookup("e", hashOf(r0), 0); ok {
		t.Fatal("damaged record block should fail its checksum at Lookup time")
	}
}

// TestUnknownBlockTypeSkipped pins the versioning policy of
// docs/FORMAT.md: a checksummed block of an unknown (future) type in the
// data region is skipped by recovery scans, not treated as a torn tail,
// so future writers can interleave auxiliary block types without
// breaking this reader.
func TestUnknownBlockTypeSkipped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.arch")
	r0, r1 := rec("e", 0, 0, 7), rec("e", 1, 0, 8)
	r0.Hash, r1.Hash = hashOf(r0), hashOf(r1)
	// Hand-build an unfinalized file: header, record, future-type block,
	// record — the shape a crashed future-version writer leaves behind.
	var data []byte
	data = append(data, Magic...)
	p0, err := encodeRecordPayload(r0)
	if err != nil {
		t.Fatal(err)
	}
	data = appendBlock(data, blockRecord, p0)
	data = appendBlock(data, 42, []byte("future auxiliary data"))
	p1, err := encodeRecordPayload(r1)
	if err != nil {
		t.Fatal(err)
	}
	data = appendBlock(data, blockRecord, p1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if a.Torn() {
		t.Fatal("a valid unknown-type block must not read as a torn tail")
	}
	for _, r := range []runstore.Record{r0, r1} {
		if _, ok := a.Lookup("e", r.Hash, 0); !ok {
			t.Fatalf("record %s lost across an unknown-type block", r.Key())
		}
	}
}

func TestAppendValidationAndClose(t *testing.T) {
	a, err := Open(filepath.Join(t.TempDir(), "run.arch"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Append(runstore.Record{}); err == nil {
		t.Fatal("append of a nameless record should fail")
	}
	bad := rec("e", 0, 0, 0)
	bad.Responses["t"] = -1
	bad.Replicate = -1
	if err := a.Append(bad); err == nil {
		t.Fatal("append of a negative replicate should fail")
	}
	good := rec("e", 0, 0, 1)
	if err := a.Append(good); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
	if err := a.Append(rec("e", 0, 1, 1)); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("append after Close = %v, want closed error", err)
	}
	if _, ok := a.Lookup("e", hashOf(good), 0); !ok {
		t.Fatal("reads should keep working after Close")
	}
}

func TestOpenRejectsNonArchive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	if err := os.WriteFile(path, []byte(`{"experiment":"e"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "not an archive") {
		t.Fatalf("Open(journal) = %v, want bad-magic error", err)
	}
}

func TestBulkWriteLoadInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bulk.arch")
	var recs []runstore.Record
	for row := 0; row < 4; row++ {
		for rep := 0; rep < 3; rep++ {
			recs = append(recs, rec("bulk", row, rep, float64(row)+float64(rep)/10))
		}
	}
	if err := Write(path, runstore.Seq(recs), ""); err != nil {
		t.Fatal(err)
	}
	got, info, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Torn {
		t.Fatalf("fresh bulk archive reported torn: %+v", info)
	}
	if info.Records != len(recs) || info.Distinct != len(recs) {
		t.Fatalf("info = %+v, want %d records", info, len(recs))
	}
	if len(got) != len(recs) {
		t.Fatalf("Load returned %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		want := recs[i]
		want.Hash = hashOf(want)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("Load[%d] = %+v, want %+v", i, got[i], want)
		}
	}
	ins, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if ins.Records != len(recs) || ins.Torn {
		t.Fatalf("Inspect = %+v", ins)
	}
	if !strings.Contains(ins.Detail, "footer ok") {
		t.Fatalf("Inspect detail %q should report the footer", ins.Detail)
	}

	// A truncated bulk archive is detected, reported, and still loadable
	// up to the damage — never silently counted as complete.
	st, _ := os.Stat(path)
	if err := os.Truncate(path, st.Size()-int64(trailerSize)-1); err != nil {
		t.Fatal(err)
	}
	ins, err = Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if !ins.Torn || !strings.Contains(ins.Detail, "TRUNCATED") {
		t.Fatalf("Inspect of truncated archive = %+v, want Torn + TRUNCATED detail", ins)
	}
	if _, info, err = Load(path); err != nil || !info.Torn {
		t.Fatalf("Load of truncated archive: info=%+v err=%v, want Torn", info, err)
	}
}

// TestCompactDispatch pins the fix for compaction of archives: Compact
// must route archives through the archive reader and writer — in place,
// renamed, or converting — never misparse one as JSONL (which would
// atomically replace it with an empty journal).
func TestCompactDispatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.arch")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a.interval = 2
	for rep := 0; rep < 3; rep++ {
		if err := a.Append(rec("e", 0, rep, float64(rep))); err != nil {
			t.Fatal(err)
		}
	}
	// A superseded record, so compaction has something to drop.
	if err := a.Append(rec("e", 0, 1, 42)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	cs, err := runstore.Compact(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kept != 3 || cs.Dropped != 1 {
		t.Fatalf("compact stats = %+v, want kept 3 dropped 1", cs)
	}
	recs, info, err := Load(path)
	if err != nil {
		t.Fatalf("compacted file is not an archive: %v", err)
	}
	if len(recs) != 3 || info.Torn {
		t.Fatalf("compacted archive: %d records, torn=%v", len(recs), info.Torn)
	}
	if recs[1].Responses["t"] != 42 {
		t.Fatalf("compaction lost the last-wins record: %+v", recs[1])
	}
	// Idempotent after the first rewrite.
	before, _ := os.ReadFile(path)
	if _, err := runstore.Compact(path, ""); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(path)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("re-compacting a compacted archive is not a byte-identical no-op")
	}
	// A renamed (extension-less) archive compacted in place stays an
	// archive: the sniffed format wins over the absent extension.
	renamed := filepath.Join(dir, "renamed")
	if err := os.Rename(path, renamed); err != nil {
		t.Fatal(err)
	}
	if _, err := runstore.Compact(renamed, ""); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(renamed); err != nil {
		t.Fatalf("renamed archive became a non-archive after in-place compact: %v", err)
	}
	// Compacting an archive to a .jsonl destination converts.
	asJournal := filepath.Join(dir, "out.jsonl")
	if _, err := runstore.Compact(renamed, asJournal); err != nil {
		t.Fatal(err)
	}
	jrecs, err := runstore.LoadRecords(asJournal)
	if err != nil || len(jrecs) != 3 {
		t.Fatalf("archive→journal compact: %d records, err %v", len(jrecs), err)
	}
}

// TestOversizeKeyRejected pins the u16 length-prefix bound: an
// experiment name that cannot be encoded is rejected at append time,
// not silently wrapped into a corrupt block.
func TestOversizeKeyRejected(t *testing.T) {
	a, err := Open(filepath.Join(t.TempDir(), "run.arch"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	huge := rec(strings.Repeat("x", 1<<16), 0, 0, 1)
	if err := a.Append(huge); err == nil || !strings.Contains(err.Error(), "max") {
		t.Fatalf("append of a 64KiB experiment name = %v, want length error", err)
	}
	if a.Len() != 0 {
		t.Fatal("rejected append left index state behind")
	}
}

// TestEmptyHashCanonicalized pins the merge/convert agreement for
// hand-written records lacking a hash: every destination format stores
// the derived hash, so a journal→archive conversion verifies and an
// archive Lookup by derived hash hits.
func TestEmptyHashCanonicalized(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "hand.jsonl")
	line := `{"experiment":"e","row":0,"replicate":0,"assignment":{"k":"v"},"responses":{"t":5}}` + "\n"
	if err := os.WriteFile(jpath, []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	apath := filepath.Join(dir, "hand.arch")
	if _, err := runstore.Merge([]string{jpath}, apath); err != nil {
		t.Fatal(err)
	}
	a, err := Open(apath)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	hash := runstore.AssignmentHash(map[string]string{"k": "v"})
	got, ok := a.Lookup("e", hash, 0)
	if !ok || got.Hash != hash || got.Responses["t"] != 5 {
		t.Fatalf("Lookup by derived hash = %+v ok=%v", got, ok)
	}
}

// TestRunstoreDispatch exercises the format registration end to end:
// journal→archive merge, archive→journal merge, LoadRecords and Inspect
// on archive paths — all through the runstore entry points.
func TestRunstoreDispatch(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.jsonl")
	j, err := runstore.Open(jpath)
	if err != nil {
		t.Fatal(err)
	}
	var want []runstore.Record
	for row := 0; row < 3; row++ {
		r := rec("e", row, 0, float64(row))
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	j.Close()

	apath := filepath.Join(dir, "run.arch")
	ms, err := runstore.Merge([]string{jpath}, apath)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Kept != len(want) {
		t.Fatalf("merge kept %d, want %d", ms.Kept, len(want))
	}
	got, err := runstore.LoadRecords(apath)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("LoadRecords(archive) = %d records, want %d", len(got), len(want))
	}
	info, err := runstore.Inspect(apath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != len(want) || !strings.Contains(info.Detail, "archive:") {
		t.Fatalf("runstore.Inspect(archive) = %+v", info)
	}

	// Round-trip back to a journal: the merged journal must equal the
	// canonical merge of the original journal.
	back := filepath.Join(dir, "back.jsonl")
	if _, err := runstore.Merge([]string{apath}, back); err != nil {
		t.Fatal(err)
	}
	canon := filepath.Join(dir, "canon.jsonl")
	if _, err := runstore.Merge([]string{jpath}, canon); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(back)
	b2, _ := os.ReadFile(canon)
	if string(b1) != string(b2) {
		t.Fatalf("journal→archive→journal round-trip is not byte-identical:\n%s\nvs\n%s", b1, b2)
	}
}
