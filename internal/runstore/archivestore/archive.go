package archivestore

import (
	"encoding/binary"
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/runstore"
)

// Archive is a single-file, block-indexed run store. It implements
// runstore.Store: reads are served from an in-memory index of block
// locations (loaded from the footer in O(index) time on a finalized
// file) plus point reads of individual record blocks, so an archive is
// never materialized wholesale; appends are durable, checksummed blocks.
type Archive struct {
	mu       sync.Mutex
	path     string
	f        *os.File // nil after Close; reads then reopen read-only per call
	interval int      // record blocks per index page

	idx      map[string]entry // runstore.Key -> record block location
	order    []string         // keys in first-appended order
	pending  []pendingEntry   // appends not yet covered by an index page
	pages    []int64          // index page offsets, in file order
	appended int              // record blocks ever written, superseded included

	dataEnd      int64 // next append offset (= end of last data block)
	needTruncate bool  // a loaded footer must be cut off before appending
	dirty        bool  // the on-disk footer is absent or stale
	torn         bool  // recovery dropped a torn tail on open
	compress     bool  // new appends are written as compressed blocks
	closed       bool
}

// SetCompress selects the block encoding for subsequent Appends: when
// on, each record is written as a compressed block (blockRecordZ, the
// JSON doc flate-compressed) instead of a plain one. The two encodings
// coexist freely within a file — every reader dispatches per block — so
// the switch can be flipped at any point in an archive's life, and an
// archive written by either setting opens everywhere.
func (a *Archive) SetCompress(on bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.compress = on
}

// Archive is a Store backend like the journal and the shard store.
var _ runstore.Store = (*Archive)(nil)

// Open opens (creating if absent) the archive at path. A finalized
// archive loads its index from the footer without touching record
// payloads; an unfinalized one — a crash before Close — is recovered by
// scanning block checksums and truncating the torn tail, exactly as the
// journal truncates a torn line. Parent directories are created as
// needed.
func Open(path string) (*Archive, error) {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("archivestore: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("archivestore: %w", err)
	}
	a := &Archive{path: path, f: f, interval: DefaultIndexInterval, idx: make(map[string]entry)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("archivestore: %w", err)
	}
	size := st.Size()
	if size == 0 {
		if _, err := f.WriteAt([]byte(Magic), 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("archivestore: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("archivestore: %w", err)
		}
		a.dataEnd = int64(headerSize)
		return a, nil
	}
	head := make([]byte, headerSize)
	if _, err := f.ReadAt(head, 0); err != nil || string(head) != Magic {
		f.Close()
		return nil, fmt.Errorf("archivestore: %s is not an archive (bad or short magic)", path)
	}
	ok, err := a.loadFinalized(size)
	if err != nil {
		f.Close()
		return nil, err
	}
	if ok {
		return a, nil
	}
	if err := a.recover(size); err != nil {
		f.Close()
		return nil, err
	}
	return a, nil
}

// OpenDir opens the archive for one experiment under dir, mirroring
// runstore.OpenDir: the file is <dir>/<sanitized-experiment>.arch.
func OpenDir(dir, experiment string) (*Archive, error) {
	if experiment == "" {
		return nil, fmt.Errorf("archivestore: experiment name required")
	}
	return Open(filepath.Join(dir, runstore.SanitizeName(experiment)+Ext))
}

// loadFinalized tries the O(index) open path: a valid trailer at EOF, a
// checksummed footer, and checksummed index pages. It returns false (and
// resets the partial index) when any of that fails, handing over to the
// recovery scan.
func (a *Archive) loadFinalized(size int64) (bool, error) {
	reset := func() {
		a.idx = make(map[string]entry)
		a.order, a.pages = nil, nil
		a.appended = 0
	}
	if size < int64(headerSize+blockHeaderSize+trailerSize) {
		return false, nil
	}
	t := make([]byte, trailerSize)
	if _, err := a.f.ReadAt(t, size-int64(trailerSize)); err != nil {
		return false, fmt.Errorf("archivestore: %w", err)
	}
	footOff, ok := decodeTrailer(t)
	if !ok || footOff < int64(headerSize) || footOff+int64(blockHeaderSize) > size-int64(trailerSize) {
		return false, nil
	}
	footLen := size - int64(trailerSize) - footOff
	typ, payload, err := a.readBlockAt(entry{off: footOff, n: int32(footLen)})
	if err != nil || typ != blockFooter {
		return false, nil
	}
	appended, pages, err := decodeFooterPayload(payload)
	if err != nil {
		return false, nil
	}
	// The footer's appended count sizes the index up front: growing a
	// 10^5-entry map incrementally costs more than loading it.
	a.idx = make(map[string]entry, appended)
	a.order = make([]string, 0, appended)
	for _, p := range pages {
		if p < int64(headerSize) || p >= footOff {
			reset()
			return false, nil
		}
		ptyp, ppayload, perr := a.readBlockBounded(p, footOff)
		if perr != nil || ptyp != blockIndex {
			reset()
			return false, nil
		}
		if err := decodeIndexPayload(ppayload, func(exp, hash string, rep int, e entry) error {
			a.addIndex(exp, hash, rep, e)
			return nil
		}); err != nil {
			reset()
			return false, nil
		}
	}
	a.appended = appended
	a.pages = pages
	a.dataEnd = footOff
	a.needTruncate = true
	return true, nil
}

// recover rebuilds the index by scanning blocks from the header,
// truncating the file past the last valid block — the crash-recovery
// path a missing or corrupt footer routes through.
func (a *Archive) recover(size int64) error {
	data, err := os.ReadFile(a.path)
	if err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	a.dataEnd = a.scanBlocks(data)
	if a.dataEnd < size {
		a.torn = true
		if err := a.f.Truncate(a.dataEnd); err != nil {
			return fmt.Errorf("archivestore: truncating torn tail: %w", err)
		}
	}
	a.dirty = true // the on-disk file has no (valid) footer until Close
	return nil
}

// scanBlocks walks data from the header, indexing record blocks and
// noting index pages, and returns the offset of the first byte that is
// not part of a complete valid data block — the recovery truncation
// point. A footer block ends the walk without being indexed, so Close
// rewrites it.
func (a *Archive) scanBlocks(data []byte) int64 {
	off := int64(headerSize)
	for {
		typ, payload, ok := parseBlock(data, off)
		if !ok {
			return off
		}
		blockLen := int64(blockHeaderSize) + int64(len(payload))
		switch typ {
		case blockRecord, blockRecordZ:
			exp, hash, rep, err := recordPayloadKey(payload)
			if err != nil {
				return off // checksummed but malformed: treat as torn here
			}
			e := entry{off: off, n: int32(blockLen)}
			a.addIndex(exp, hash, rep, e)
			a.pending = append(a.pending, pendingEntry{exp: exp, hash: hash, rep: rep, entry: e})
			a.appended++
		case blockIndex:
			a.pages = append(a.pages, off)
			a.pending = a.pending[:0]
		case blockFooter:
			return off
		}
		off += blockLen
	}
}

// addIndex records one block location, last-wins per key with the first
// appearance keeping its position in the order — the journal's indexing
// rule.
func (a *Archive) addIndex(exp, hash string, rep int, e entry) {
	k := runstore.Key(exp, hash, rep)
	if _, exists := a.idx[k]; !exists {
		a.order = append(a.order, k)
	}
	a.idx[k] = e
}

// readBlockAt reads and validates the block at e, via the open handle or
// a transient read-only reopen after Close.
func (a *Archive) readBlockAt(e entry) (typ byte, payload []byte, err error) {
	buf := make([]byte, e.n)
	r := a.f
	if r == nil {
		rf, err := os.Open(a.path)
		if err != nil {
			return 0, nil, fmt.Errorf("archivestore: %w", err)
		}
		defer rf.Close()
		r = rf
	}
	if _, err := r.ReadAt(buf, e.off); err != nil {
		return 0, nil, fmt.Errorf("archivestore: %s: reading block at %d: %w", a.path, e.off, err)
	}
	typ, payload, ok := parseBlock(buf, 0)
	if !ok || int64(blockHeaderSize)+int64(len(payload)) != int64(e.n) {
		return 0, nil, fmt.Errorf("archivestore: %s: corrupt block at offset %d", a.path, e.off)
	}
	return typ, payload, nil
}

// readBlockBounded reads the block starting at off, whose length is not
// known in advance, refusing to read past limit.
func (a *Archive) readBlockBounded(off, limit int64) (typ byte, payload []byte, err error) {
	hdr := make([]byte, blockHeaderSize)
	if _, err := a.f.ReadAt(hdr, off); err != nil {
		return 0, nil, fmt.Errorf("archivestore: %w", err)
	}
	n := int64(binary.LittleEndian.Uint32(hdr[1:5]))
	if n > maxPayload || off+int64(blockHeaderSize)+n > limit {
		return 0, nil, fmt.Errorf("archivestore: %s: block at %d overruns its bounds", a.path, off)
	}
	return a.readBlockAt(entry{off: off, n: int32(int64(blockHeaderSize) + n)})
}

// Path returns the archive's file path.
func (a *Archive) Path() string { return a.path }

// Info reports the open archive's shape from its in-memory state — the
// same fields the file-level Inspect reads back, without re-reading the
// file. Index entries not yet flushed as a page count toward the page a
// Close would write.
func (a *Archive) Info() runstore.Info {
	a.mu.Lock()
	defer a.mu.Unlock()
	pages := len(a.pages)
	if len(a.pending) > 0 {
		pages++
	}
	detail := fmt.Sprintf("archive: %d record block(s), %d index page(s)", a.appended, pages)
	switch {
	case !a.dirty:
		detail += ", footer ok"
	case a.torn:
		detail += ", torn tail truncated on open; footer pending until Close"
	default:
		detail += ", unfinalized: footer pending until Close"
	}
	return runstore.Info{Records: a.appended, Distinct: len(a.idx), Torn: a.torn, Detail: detail}
}

// Torn reports whether recovery dropped a torn tail when opening.
func (a *Archive) Torn() bool { return a.torn }

// Len returns the number of distinct archived units.
func (a *Archive) Len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.idx)
}

// Lookup implements runstore.Store: an index hit costs one point read of
// the record's block, never a scan.
func (a *Archive) Lookup(experiment, hash string, replicate int) (runstore.Record, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	e, ok := a.idx[runstore.Key(experiment, hash, replicate)]
	if !ok {
		return runstore.Record{}, false
	}
	rec, err := a.readRecord(e)
	if err != nil {
		// The index said the block is there; a read failure means the
		// file was tampered with underneath us. Miss, never a panic.
		return runstore.Record{}, false
	}
	return rec, true
}

// readRecord fetches and decodes one record block.
func (a *Archive) readRecord(e entry) (runstore.Record, error) {
	typ, payload, err := a.readBlockAt(e)
	if err != nil {
		return runstore.Record{}, err
	}
	if !isRecordBlock(typ) {
		return runstore.Record{}, fmt.Errorf("archivestore: %s: block at %d is not a record", a.path, e.off)
	}
	return decodeRecordBlock(typ, payload)
}

// ReplicateCount implements runstore.Store: contiguous replicates 0..n-1
// of one cell, answered from the in-memory index alone.
func (a *Archive) ReplicateCount(experiment, hash string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for {
		if _, ok := a.idx[runstore.Key(experiment, hash, n)]; !ok {
			return n
		}
		n++
	}
}

// Scan implements runstore.Store: all distinct records streamed in
// first-appended order, each served by one point read of its block —
// the record set is never materialized, which is what makes archive
// exports viable at archive scale. The key order is snapshotted when
// iteration starts, so a concurrent Append neither blocks nor corrupts
// an in-flight scan; keys appended after the snapshot are not yielded,
// while a superseding append to a snapshotted key may surface in its
// latest form (blocks are read at yield time — see the Store
// contract). A block that fails to read back (the file was tampered
// with underneath the index) yields the error and stops the scan.
func (a *Archive) Scan() iter.Seq2[runstore.Record, error] {
	return func(yield func(runstore.Record, error) bool) {
		a.mu.Lock()
		keys := make([]string, len(a.order))
		copy(keys, a.order)
		a.mu.Unlock()
		for _, k := range keys {
			a.mu.Lock()
			e, ok := a.idx[k]
			if !ok {
				a.mu.Unlock()
				continue
			}
			rec, err := a.readRecord(e)
			a.mu.Unlock()
			if err != nil {
				yield(runstore.Record{}, err)
				return
			}
			if !yield(rec, nil) {
				return
			}
		}
	}
}

// Append implements runstore.Store. The record becomes one checksummed
// block written and fsynced before Append returns, so a crash leaves at
// most one torn block — exactly what Open's recovery scan truncates.
// Every interval appends, an index page block is interleaved so a later
// finalize covers them.
func (a *Archive) Append(rec runstore.Record) error {
	rec, err := runstore.NormalizeAppend(rec)
	if err != nil {
		return err
	}
	a.mu.Lock()
	compress := a.compress
	a.mu.Unlock()
	typ := byte(blockRecord)
	var payload []byte
	if compress {
		typ = blockRecordZ
		payload, err = encodeRecordPayloadZ(rec)
	} else {
		payload, err = encodeRecordPayload(rec)
	}
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return fmt.Errorf("archivestore: archive %s is closed", a.path)
	}
	if a.needTruncate {
		// The first append after opening a finalized archive cuts off the
		// old footer and trailer; they are rewritten by Close.
		if err := a.f.Truncate(a.dataEnd); err != nil {
			return fmt.Errorf("archivestore: %w", err)
		}
		a.needTruncate = false
	}
	block := appendBlock(nil, typ, payload)
	if _, err := a.f.WriteAt(block, a.dataEnd); err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	e := entry{off: a.dataEnd, n: int32(len(block))}
	a.dataEnd += int64(len(block))
	a.addIndex(rec.Experiment, rec.Hash, rec.Replicate, e)
	a.pending = append(a.pending, pendingEntry{exp: rec.Experiment, hash: rec.Hash, rep: rec.Replicate, entry: e})
	a.appended++
	a.dirty = true
	if len(a.pending) >= a.interval {
		if err := a.flushIndexPageLocked(); err != nil {
			return err
		}
	}
	return nil
}

// flushIndexPageLocked writes the pending entries as one index page
// block. Pages are derivable from the data blocks, so a crash between a
// record append and its page costs nothing: recovery rebuilds the same
// entries.
func (a *Archive) flushIndexPageLocked() error {
	if len(a.pending) == 0 {
		return nil
	}
	block := appendBlock(nil, blockIndex, encodeIndexPayload(a.pending))
	if _, err := a.f.WriteAt(block, a.dataEnd); err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	a.pages = append(a.pages, a.dataEnd)
	a.dataEnd += int64(len(block))
	a.pending = a.pending[:0]
	return nil
}

// Close finalizes and closes the archive: pending index entries are
// flushed as a final page, and a footer block plus trailer are written
// and fsynced so the next Open is O(index). Reads keep working after
// Close via transient read-only reopens; Append fails.
func (a *Archive) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f == nil {
		return nil
	}
	f := a.f
	if !a.dirty {
		a.f = nil
		return f.Close()
	}
	if err := a.flushIndexPageLocked(); err != nil {
		f.Close()
		a.f = nil
		return err
	}
	footOff := a.dataEnd
	tail := appendBlock(nil, blockFooter, encodeFooterPayload(a.appended, a.pages))
	tail = append(tail, encodeTrailer(footOff)...)
	if _, err := f.WriteAt(tail, footOff); err != nil {
		f.Close()
		a.f = nil
		return fmt.Errorf("archivestore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		a.f = nil
		return fmt.Errorf("archivestore: %w", err)
	}
	a.f = nil
	a.dirty = false
	if err := f.Close(); err != nil {
		return fmt.Errorf("archivestore: %w", err)
	}
	return nil
}
