package archivestore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/runstore"
)

// TestCompressedPayloadRoundTrip exercises the compressed record codec
// directly: encode/decode identity, key extraction without inflation,
// and rejection of truncated payloads.
func TestCompressedPayloadRoundTrip(t *testing.T) {
	r := rec("exp-z", 3, 1, 42.5)
	r.Hash = hashOf(r)
	payload, err := encodeRecordPayloadZ(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeRecordPayloadZ(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Fatalf("round trip = %+v, want %+v", got, r)
	}
	// recordPayloadKey must work on the compressed payload unchanged —
	// recovery scans index compressed blocks without inflating them.
	exp, hash, rep, err := recordPayloadKey(payload)
	if err != nil {
		t.Fatal(err)
	}
	if exp != r.Experiment || hash != r.Hash || rep != r.Replicate {
		t.Fatalf("recordPayloadKey = (%q, %q, %d), want (%q, %q, %d)", exp, hash, rep, r.Experiment, r.Hash, r.Replicate)
	}
	// Every strict prefix must fail to decode, never panic or succeed.
	for cut := 0; cut < len(payload); cut++ {
		if _, err := decodeRecordPayloadZ(payload[:cut]); err == nil {
			t.Fatalf("decode of %d-byte prefix (of %d) succeeded", cut, len(payload))
		}
	}
}

// TestCompressedAppendMixedAndReopen flips SetCompress mid-stream so one
// archive holds both block encodings, then checks every read path — live
// lookups, a finalized reopen, and the crash-recovery scan — sees the
// same records.
func TestCompressedAppendMixedAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.arch")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []runstore.Record
	for row := 0; row < 6; row++ {
		a.SetCompress(row >= 3) // first half plain, second half compressed
		r := rec("e", row, 0, float64(row))
		if err := a.Append(r); err != nil {
			t.Fatal(err)
		}
		r.Hash = hashOf(r)
		want = append(want, r)
	}
	check := func(s runstore.Store, stage string) {
		t.Helper()
		for _, w := range want {
			got, ok := s.Lookup(w.Experiment, w.Hash, w.Replicate)
			if !ok {
				t.Fatalf("%s: Lookup(%s) missed", stage, w.Key())
			}
			if !reflect.DeepEqual(got, w) {
				t.Fatalf("%s: Lookup(%s) = %+v, want %+v", stage, w.Key(), got, w)
			}
		}
	}
	check(a, "live")
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	// Finalized reopen: the index loads from the footer; point reads must
	// dispatch per block type.
	a2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	check(a2, "finalized reopen")
	if a2.Torn() {
		t.Fatal("finalized reopen reported torn")
	}
	a2.Close()

	// The streaming reader over the mixed file: all records, compressed
	// count surfaced in the Detail.
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != len(want) || info.Distinct != len(want) {
		t.Fatalf("Inspect = %+v, want %d records", info, len(want))
	}
	if !strings.Contains(info.Detail, "(3 compressed)") {
		t.Fatalf("Inspect detail %q does not count compressed blocks", info.Detail)
	}
}

// TestCompressedTornTailRecovery cuts a compressed block at every byte
// boundary and checks recovery truncates to the last complete block —
// the journal's torn-tail rule, compression changing nothing.
func TestCompressedTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.arch")
	a, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a.SetCompress(true)
	if err := a.Append(rec("e", 0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	keep := a.dataEnd
	if err := a.Append(rec("e", 1, 0, 2)); err != nil {
		t.Fatal(err)
	}
	end := a.dataEnd
	a.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = data[:end] // data blocks only, no footer or trailer
	for cut := keep + 1; cut < end; cut++ {
		tornPath := filepath.Join(dir, "torn.arch")
		if err := os.WriteFile(tornPath, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		ta, err := Open(tornPath)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !ta.Torn() {
			t.Fatalf("cut %d: not reported torn", cut)
		}
		if ta.Len() != 1 {
			t.Fatalf("cut %d: Len = %d, want 1 (the complete block)", cut, ta.Len())
		}
		ta.Close()
	}
}

// TestMergeArchzDispatch checks the registered .archz destination
// format: a merge into foo.archz writes compressed record blocks, the
// result reads back record-identical to the plain-archive merge of the
// same sources, and it round-trips through a JSONL journal losslessly.
func TestMergeArchzDispatch(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	j, err := runstore.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 50; row++ {
		if err := j.Append(rec("e", row, 0, float64(row))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	plain := filepath.Join(dir, "out.arch")
	packed := filepath.Join(dir, "out.archz")
	if _, err := runstore.Merge([]string{src}, plain); err != nil {
		t.Fatal(err)
	}
	if _, err := runstore.Merge([]string{src}, packed); err != nil {
		t.Fatal(err)
	}
	info, err := runstore.Inspect(packed)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.Detail, "(50 compressed)") {
		t.Fatalf(".archz Inspect detail %q: blocks not compressed", info.Detail)
	}
	want, err := runstore.LoadRecords(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runstore.LoadRecords(packed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf(".archz merge records differ from .arch merge")
	}
	// Round trip back out through a journal: the compressed archive is a
	// lossless format conversion, same as the plain one.
	back := filepath.Join(dir, "back.jsonl")
	if _, err := runstore.Merge([]string{packed}, back); err != nil {
		t.Fatal(err)
	}
	round, err := runstore.LoadRecords(back)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(round, want) {
		t.Fatalf("archz -> jsonl round trip records differ")
	}
}
