// Package archivestore is the block-indexed archive backend of the
// runstore API: one experiment's complete run history in a single
// binary file that opens in O(index) time, built for the million-run
// archives the JSONL journal cannot hold in its parse budget. It
// implements runstore.Store, so the scheduler (internal/sched) executes
// against it unchanged — warm-start replay, per-unit persistence, and
// deterministic results are backend-independent properties enforced by
// the shared conformance suite (internal/runstore/storetest).
//
// On disk an archive is a header, a stream of checksummed blocks —
// length-prefixed records, with an index page interleaved every
// DefaultIndexInterval records — and, once finalized by Close, a footer
// block naming every index page plus a fixed-size trailer pointing at
// the footer. Opening a finalized archive reads the trailer, the
// footer, and the index pages: the in-memory index maps each
// (experiment, assignment-hash, replicate) key to its block's offset,
// and record payloads stay on disk until Lookup fetches one. The
// normative byte-level specification is docs/FORMAT.md; the versioning
// policy lives in the magic strings (Magic, TrailerMagic).
//
// Concurrency contract: an Archive's methods are safe for concurrent
// use within one process (one mutex guards file and index). The file
// itself is single-writer: exactly one process may have an archive open
// for writing; concurrent readers of a finalized archive (Load,
// Inspect, a closed Archive's Lookup) are safe.
//
// Durability contract: Append writes one checksummed block and fsyncs
// before returning, so a crash after a successful Append loses nothing.
// A crash before Close loses only the footer: Open detects the missing
// or invalid trailer, rebuilds the index by scanning block checksums —
// record keys are in the block headers, so recovery parses no JSON —
// and truncates the torn tail past the last valid block, exactly as the
// journal truncates a torn line. Index pages and footer are derivable
// from the data blocks; only record blocks are load-bearing.
package archivestore
