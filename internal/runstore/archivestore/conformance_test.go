package archivestore_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runstore"
	"repro/internal/runstore/archivestore"
	"repro/internal/runstore/storetest"
)

// TestArchivestoreConformance runs the shared Store contract suite
// against the block-indexed archive backend — the same assertions the
// journal and the shard store pass, crash-recovery equivalence included.
func TestArchivestoreConformance(t *testing.T) {
	storetest.Run(t, storetest.Backend{
		Name: "archivestore",
		Open: func(t *testing.T, dir string) runstore.Store {
			a, err := archivestore.OpenDir(dir, "e")
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		Tear: tearArchive,
	})
}

// TestArchivestoreCompressedConformance runs the same contract suite
// with compressed record blocks — the Store semantics must not depend
// on the block encoding.
func TestArchivestoreCompressedConformance(t *testing.T) {
	storetest.Run(t, storetest.Backend{
		Name: "archivestore-compressed",
		Open: func(t *testing.T, dir string) runstore.Store {
			a, err := archivestore.OpenDir(dir, "e")
			if err != nil {
				t.Fatal(err)
			}
			a.SetCompress(true)
			return a
		},
		Tear: tearArchive,
	})
}

// tearArchive simulates a crash mid-append: a half-written block after
// the finalized tail also invalidates the trailer, so the reopen takes
// the recovery-scan path.
func tearArchive(t *testing.T, dir string) {
	f, err := os.OpenFile(filepath.Join(dir, "e"+archivestore.Ext), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte{1, 0xEF, 0xBE, 0xAD, 0xDE, 0x01}); err != nil {
		t.Fatal(err)
	}
}
