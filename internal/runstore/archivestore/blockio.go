package archivestore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"repro/internal/runstore"
)

// On-disk layout constants. The normative specification lives in
// docs/FORMAT.md; change either in lockstep with the other and with the
// version byte baked into the magic strings.
const (
	// Magic is the 8-byte file header every archive starts with. The
	// trailing '1' is the format version: an incompatible layout change
	// bumps it, so old readers reject new files instead of misparsing
	// them.
	Magic = "PEVARCH1"
	// TrailerMagic ends the fixed-size trailer of a finalized archive.
	TrailerMagic = "PEA1"
	// Ext is the file extension of archive files; runstore.Merge writes
	// an archive when its destination carries it.
	Ext = ".arch"
	// ExtZ is the destination extension selecting the compressed bulk
	// writer (WriteCompressed). The file is an ordinary archive — same
	// magic, same block framing — whose record blocks carry compressed
	// payloads, so sources are still sniffed and read as "archive".
	ExtZ = ".archz"

	blockRecord  = 1 // one length-prefixed record: key fields + JSON payload
	blockIndex   = 2 // one index page: key -> block location entries
	blockFooter  = 3 // the footer: appended count + index page offsets
	blockRecordZ = 4 // a record block whose JSON doc is flate-compressed

	headerSize      = len(Magic)
	blockHeaderSize = 1 + 4 + 4 // type, payload length, payload CRC
	trailerSize     = 8 + 4 + 4 // footer offset, its CRC, TrailerMagic

	// maxPayload bounds a block payload so a corrupt length field cannot
	// drive a multi-gigabyte allocation during recovery scans.
	maxPayload = 1 << 30

	// DefaultIndexInterval is how many record blocks accumulate before an
	// index page is interleaved into the data stream. Larger intervals
	// mean fewer, bigger pages; recovery and open costs are unaffected
	// (open reads every page either way, scans read every block).
	DefaultIndexInterval = 1024
)

// castagnoli is the CRC-32C table every block checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// entry locates one record block in the file.
type entry struct {
	off int64 // file offset of the block header
	n   int32 // total block length, header included
}

// pendingEntry is an index entry not yet covered by an on-disk index
// page: the key fields it will be written with, plus the location.
type pendingEntry struct {
	exp, hash string
	rep       int
	entry
}

// appendBlock frames a payload as a block: type byte, length, CRC-32C,
// payload.
func appendBlock(dst []byte, typ byte, payload []byte) []byte {
	var hdr [blockHeaderSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// parseBlock validates the block starting at data[off:] and returns its
// type and payload. ok is false — with no error — when the bytes there do
// not form a complete, checksummed block: the torn-tail signal recovery
// scans truncate at. Unknown block types with a valid checksum are
// returned as-is — per the docs/FORMAT.md versioning policy, scanners
// skip them, so future auxiliary block types do not read as torn tails.
func parseBlock(data []byte, off int64) (typ byte, payload []byte, ok bool) {
	if off < 0 || int64(len(data))-off < int64(blockHeaderSize) {
		return 0, nil, false
	}
	b := data[off:]
	typ = b[0]
	if typ == 0 { // a zeroed region is damage, not a block
		return 0, nil, false
	}
	n := binary.LittleEndian.Uint32(b[1:5])
	if n > maxPayload || int64(len(b)) < int64(blockHeaderSize)+int64(n) {
		return 0, nil, false
	}
	payload = b[blockHeaderSize : blockHeaderSize+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[5:9]) {
		return 0, nil, false
	}
	return typ, payload, true
}

// appendKeyFields serializes the (experiment, hash, replicate) key the
// way record blocks and index entries share it.
func appendKeyFields(dst []byte, exp, hash string, rep int) []byte {
	var n [4]byte
	binary.LittleEndian.PutUint16(n[:2], uint16(len(exp)))
	dst = append(dst, n[:2]...)
	dst = append(dst, exp...)
	binary.LittleEndian.PutUint16(n[:2], uint16(len(hash)))
	dst = append(dst, n[:2]...)
	dst = append(dst, hash...)
	binary.LittleEndian.PutUint32(n[:4], uint32(rep))
	return append(dst, n[:4]...)
}

// parseKeyFields decodes what appendKeyFields wrote and returns the rest
// of the buffer.
func parseKeyFields(b []byte) (exp, hash string, rep int, rest []byte, err error) {
	readStr := func() (string, error) {
		if len(b) < 2 {
			return "", fmt.Errorf("archivestore: truncated key field")
		}
		n := int(binary.LittleEndian.Uint16(b[:2]))
		b = b[2:]
		if len(b) < n {
			return "", fmt.Errorf("archivestore: truncated key field")
		}
		s := string(b[:n])
		b = b[n:]
		return s, nil
	}
	if exp, err = readStr(); err != nil {
		return
	}
	if hash, err = readStr(); err != nil {
		return
	}
	if len(b) < 4 {
		err = fmt.Errorf("archivestore: truncated key field")
		return
	}
	rep = int(binary.LittleEndian.Uint32(b[:4]))
	rest = b[4:]
	return
}

// encodeRecordPayload builds a record block payload: key fields followed
// by the record's JSON encoding (the same encoding a journal line uses,
// so the two formats round-trip losslessly). Key fields carry u16 length
// prefixes, so over-long names are rejected here rather than silently
// wrapped into a corrupt encoding.
func encodeRecordPayload(rec runstore.Record) ([]byte, error) {
	if len(rec.Experiment) > math.MaxUint16 {
		return nil, fmt.Errorf("archivestore: experiment name is %d bytes, max %d", len(rec.Experiment), math.MaxUint16)
	}
	if len(rec.Hash) > math.MaxUint16 {
		return nil, fmt.Errorf("archivestore: assignment hash is %d bytes, max %d", len(rec.Hash), math.MaxUint16)
	}
	doc, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("archivestore: %w", err)
	}
	payload := appendKeyFields(nil, rec.Experiment, rec.Hash, rec.Replicate)
	return append(payload, doc...), nil
}

// decodeRecordPayload parses a record block payload back into a Record.
func decodeRecordPayload(payload []byte) (runstore.Record, error) {
	_, _, _, doc, err := parseKeyFields(payload)
	if err != nil {
		return runstore.Record{}, err
	}
	var rec runstore.Record
	if err := json.Unmarshal(doc, &rec); err != nil {
		return runstore.Record{}, fmt.Errorf("archivestore: corrupt record payload: %w", err)
	}
	return rec, nil
}

// recordPayloadKey parses only the key fields of a record block payload —
// what recovery scans and Inspect need, JSON parse avoided. The key
// fields lead the payload uncompressed in both record block types, so
// the same parse serves blockRecord and blockRecordZ.
func recordPayloadKey(payload []byte) (exp, hash string, rep int, err error) {
	exp, hash, rep, _, err = parseKeyFields(payload)
	return
}

// isRecordBlock reports whether typ carries a record — plain or
// compressed. Everything that indexes, scans, or reads record blocks
// dispatches through it so the two encodings stay interchangeable.
func isRecordBlock(typ byte) bool { return typ == blockRecord || typ == blockRecordZ }

// decodeRecordBlock decodes a record block payload according to its
// block type.
func decodeRecordBlock(typ byte, payload []byte) (runstore.Record, error) {
	if typ == blockRecordZ {
		return decodeRecordPayloadZ(payload)
	}
	return decodeRecordPayload(payload)
}

// flateWriters pools flate writers for the compressed-block encode
// path: flate.NewWriter allocates large internal tables, so bulk writes
// reuse one per goroutine instead of one per record.
var flateWriters = sync.Pool{New: func() any {
	zw, err := flate.NewWriter(io.Discard, flate.BestSpeed)
	if err != nil {
		panic(err) // only invalid levels fail; BestSpeed is valid
	}
	return zw
}}

// flateReaders pools flate readers for the decode path; every reader
// returned by flate.NewReader implements flate.Resetter.
var flateReaders = sync.Pool{New: func() any {
	return flate.NewReader(bytes.NewReader(nil))
}}

// encodeRecordPayloadZ builds a compressed record block payload: the
// same uncompressed key fields a plain record block leads with (so
// recovery scans and index rebuilds never inflate anything), then the
// raw JSON doc length, then the doc flate-compressed at BestSpeed —
// archives trade a little CPU for the dominant storage term, and the
// ratio on repetitive assignment maps is what matters, not the level.
func encodeRecordPayloadZ(rec runstore.Record) ([]byte, error) {
	if len(rec.Experiment) > math.MaxUint16 {
		return nil, fmt.Errorf("archivestore: experiment name is %d bytes, max %d", len(rec.Experiment), math.MaxUint16)
	}
	if len(rec.Hash) > math.MaxUint16 {
		return nil, fmt.Errorf("archivestore: assignment hash is %d bytes, max %d", len(rec.Hash), math.MaxUint16)
	}
	doc, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("archivestore: %w", err)
	}
	payload := appendKeyFields(nil, rec.Experiment, rec.Hash, rec.Replicate)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:4], uint32(len(doc)))
	payload = append(payload, n[:4]...)
	buf := bytes.NewBuffer(payload)
	zw := flateWriters.Get().(*flate.Writer)
	zw.Reset(buf)
	if _, err := zw.Write(doc); err == nil {
		err = zw.Close()
	}
	flateWriters.Put(zw)
	if err != nil {
		return nil, fmt.Errorf("archivestore: compressing record: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeRecordPayloadZ parses a compressed record block payload back
// into a Record.
func decodeRecordPayloadZ(payload []byte) (runstore.Record, error) {
	_, _, _, rest, err := parseKeyFields(payload)
	if err != nil {
		return runstore.Record{}, err
	}
	if len(rest) < 4 {
		return runstore.Record{}, fmt.Errorf("archivestore: truncated compressed record payload")
	}
	rawLen := binary.LittleEndian.Uint32(rest[:4])
	if rawLen > maxPayload {
		return runstore.Record{}, fmt.Errorf("archivestore: compressed record claims %d raw bytes, max %d", rawLen, maxPayload)
	}
	zr := flateReaders.Get().(io.ReadCloser)
	err = zr.(flate.Resetter).Reset(bytes.NewReader(rest[4:]), nil)
	doc := make([]byte, rawLen)
	if err == nil {
		_, err = io.ReadFull(zr, doc)
	}
	if err == nil {
		// The stream must end exactly here: a declared length shorter
		// than the stream, or a stream truncated after its last payload
		// byte but before the final-block marker, is corruption.
		var tail [1]byte
		if n, rerr := zr.Read(tail[:]); n != 0 || rerr != io.EOF {
			err = fmt.Errorf("stream does not end at declared length (%v)", rerr)
		}
	}
	flateReaders.Put(zr)
	if err != nil {
		return runstore.Record{}, fmt.Errorf("archivestore: corrupt compressed record payload: %w", err)
	}
	var rec runstore.Record
	if err := json.Unmarshal(doc, &rec); err != nil {
		return runstore.Record{}, fmt.Errorf("archivestore: corrupt record payload: %w", err)
	}
	return rec, nil
}

// encodeIndexPayload builds an index page payload from pending entries.
func encodeIndexPayload(pending []pendingEntry) []byte {
	var n [8]byte
	binary.LittleEndian.PutUint32(n[:4], uint32(len(pending)))
	payload := append([]byte(nil), n[:4]...)
	for _, p := range pending {
		payload = appendKeyFields(payload, p.exp, p.hash, p.rep)
		binary.LittleEndian.PutUint64(n[:8], uint64(p.off))
		payload = append(payload, n[:8]...)
		binary.LittleEndian.PutUint32(n[:4], uint32(p.n))
		payload = append(payload, n[:4]...)
	}
	return payload
}

// decodeIndexPayload streams the entries of an index page payload to fn.
func decodeIndexPayload(payload []byte, fn func(exp, hash string, rep int, e entry) error) error {
	if len(payload) < 4 {
		return fmt.Errorf("archivestore: truncated index page")
	}
	count := int(binary.LittleEndian.Uint32(payload[:4]))
	b := payload[4:]
	for i := 0; i < count; i++ {
		exp, hash, rep, rest, err := parseKeyFields(b)
		if err != nil {
			return err
		}
		if len(rest) < 12 {
			return fmt.Errorf("archivestore: truncated index entry")
		}
		e := entry{
			off: int64(binary.LittleEndian.Uint64(rest[:8])),
			n:   int32(binary.LittleEndian.Uint32(rest[8:12])),
		}
		if err := fn(exp, hash, rep, e); err != nil {
			return err
		}
		b = rest[12:]
	}
	return nil
}

// encodeFooterPayload builds the footer payload: total appended record
// count plus the offset of every index page, in file order.
func encodeFooterPayload(appended int, pages []int64) []byte {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:8], uint64(appended))
	payload := append([]byte(nil), n[:8]...)
	binary.LittleEndian.PutUint32(n[:4], uint32(len(pages)))
	payload = append(payload, n[:4]...)
	for _, p := range pages {
		binary.LittleEndian.PutUint64(n[:8], uint64(p))
		payload = append(payload, n[:8]...)
	}
	return payload
}

// decodeFooterPayload parses a footer payload.
func decodeFooterPayload(payload []byte) (appended int, pages []int64, err error) {
	if len(payload) < 12 {
		return 0, nil, fmt.Errorf("archivestore: truncated footer")
	}
	appended = int(binary.LittleEndian.Uint64(payload[:8]))
	count := int(binary.LittleEndian.Uint32(payload[8:12]))
	b := payload[12:]
	if len(b) != 8*count {
		return 0, nil, fmt.Errorf("archivestore: footer page table length mismatch")
	}
	pages = make([]int64, count)
	for i := range pages {
		pages[i] = int64(binary.LittleEndian.Uint64(b[8*i : 8*i+8]))
	}
	return appended, pages, nil
}

// encodeTrailer builds the fixed-size trailer pointing at the footer
// block.
func encodeTrailer(footerOff int64) []byte {
	t := make([]byte, trailerSize)
	binary.LittleEndian.PutUint64(t[:8], uint64(footerOff))
	binary.LittleEndian.PutUint32(t[8:12], crc32.Checksum(t[:8], castagnoli))
	copy(t[12:], TrailerMagic)
	return t
}

// decodeTrailer validates a 16-byte trailer and returns the footer
// offset; ok is false for anything that is not a well-formed trailer.
func decodeTrailer(t []byte) (footerOff int64, ok bool) {
	if len(t) != trailerSize || string(t[12:]) != TrailerMagic {
		return 0, false
	}
	if crc32.Checksum(t[:8], castagnoli) != binary.LittleEndian.Uint32(t[8:12]) {
		return 0, false
	}
	return int64(binary.LittleEndian.Uint64(t[:8])), true
}
