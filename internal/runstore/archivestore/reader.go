package archivestore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"iter"
	"os"

	"repro/internal/runstore"
)

// reader is the streaming runstore.SourceReader over one archive file:
// Entries walks the block sequence front to back with buffered reads,
// decoding each record transiently; Read fetches a single block by
// extent. It backs runstore.OpenSource, LoadRecords, ScanFile, Merge,
// Compact, and Inspect for archive files — the same walk, torn-tail
// rule, and finalization check everywhere.
type reader struct {
	path string
	f    *os.File
	size int64
	info runstore.Info
}

// OpenReader opens the archive at path for streaming read-only access —
// the file is never created, repaired, or truncated. It is the
// Format.OpenReader hook registered with runstore.
func OpenReader(path string) (runstore.SourceReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("archivestore: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("archivestore: %w", err)
	}
	head := make([]byte, headerSize)
	if _, err := io.ReadFull(f, head); err != nil || string(head) != Magic {
		f.Close()
		return nil, fmt.Errorf("archivestore: %s is not an archive (bad or short magic)", path)
	}
	return &reader{path: path, f: f, size: st.Size()}, nil
}

// Entries implements runstore.SourceReader: every record block in file
// order, superseded blocks included. A torn or unfinalized tail ends
// the walk without error and is reported via Info; unknown block types
// with valid checksums are skipped (forward compatibility, per the
// docs/FORMAT.md versioning policy).
func (r *reader) Entries() iter.Seq2[runstore.SourceEntry, error] {
	return func(yield func(runstore.SourceEntry, error) bool) {
		br := bufio.NewReaderSize(io.NewSectionReader(r.f, int64(headerSize), r.size-int64(headerSize)), 256<<10)
		off := int64(headerSize)
		records, zrecords, pages := 0, 0, 0
		finalized := false
		distinct := make(map[string]struct{})
		var hdr [blockHeaderSize]byte
	walk:
		for {
			if _, err := io.ReadFull(br, hdr[:]); err != nil {
				break // EOF or torn mid-header: the tail is measured below
			}
			typ, payload, ok := readBlockBody(br, hdr, r.size-off-int64(blockHeaderSize))
			if !ok {
				break
			}
			blockLen := int64(blockHeaderSize) + int64(len(payload))
			switch typ {
			case blockFooter:
				// A finalized archive ends footer, trailer, EOF — anything
				// else past the footer is a torn finalize.
				end := off + blockLen
				if r.size == end+int64(trailerSize) {
					t := make([]byte, trailerSize)
					if _, err := r.f.ReadAt(t, end); err == nil {
						if footOff, ok := decodeTrailer(t); ok && footOff == off {
							finalized = true
						}
					}
				}
				break walk
			case blockRecord, blockRecordZ:
				rec, err := decodeRecordBlock(typ, payload)
				if err != nil {
					yield(runstore.SourceEntry{}, fmt.Errorf("archivestore: %s: %w", r.path, err))
					return
				}
				records++
				if typ == blockRecordZ {
					zrecords++
				}
				e := runstore.SourceEntry{
					Experiment: rec.Experiment,
					Hash:       rec.Hash,
					Replicate:  rec.Replicate,
					Row:        rec.Row,
					Fp:         runstore.Fingerprint(rec),
					Ext:        runstore.Extent{Off: off, Len: blockLen},
				}
				distinct[e.Key()] = struct{}{}
				if !yield(e, nil) {
					return
				}
			case blockIndex:
				pages++
			}
			off += blockLen
		}
		var dropped int64
		if !finalized {
			dropped = r.size - off
		}
		r.info = runstore.Info{
			Records:  records,
			Distinct: len(distinct),
			Torn:     dropped > 0 || (!finalized && records > 0),
			Detail:   describe(records, zrecords, pages, finalized, dropped),
		}
	}
}

// readBlockBody finishes reading one block whose header bytes are in
// hdr: it validates the length against both the payload bound and the
// bytes remaining in the file (so a corrupt length field cannot drive a
// huge allocation), reads the payload, and checks the checksum —
// parseBlock's torn-block rule for streamed input.
func readBlockBody(br *bufio.Reader, hdr [blockHeaderSize]byte, remaining int64) (typ byte, payload []byte, ok bool) {
	frame := make([]byte, blockHeaderSize)
	copy(frame, hdr[:])
	typ = hdr[0]
	if typ == 0 { // a zeroed region is damage, not a block
		return 0, nil, false
	}
	n := int64(binary.LittleEndian.Uint32(hdr[1:5]))
	if n > maxPayload || n > remaining {
		return 0, nil, false
	}
	frame = append(frame, make([]byte, n)...)
	if _, err := io.ReadFull(br, frame[blockHeaderSize:]); err != nil {
		return 0, nil, false
	}
	t, payload, ok := parseBlock(frame, 0)
	if !ok {
		return 0, nil, false
	}
	return t, payload, true
}

// Read implements runstore.SourceReader with one positioned read of the
// record block at ext.
func (r *reader) Read(ext runstore.Extent) (runstore.Record, error) {
	buf := make([]byte, ext.Len)
	if _, err := r.f.ReadAt(buf, ext.Off); err != nil {
		return runstore.Record{}, fmt.Errorf("archivestore: %s: reading block at %d: %w", r.path, ext.Off, err)
	}
	typ, payload, ok := parseBlock(buf, 0)
	if !ok || !isRecordBlock(typ) {
		return runstore.Record{}, fmt.Errorf("archivestore: %s: block at %d is not a valid record", r.path, ext.Off)
	}
	return decodeRecordBlock(typ, payload)
}

// Info implements runstore.SourceReader; complete once Entries has been
// consumed.
func (r *reader) Info() runstore.Info { return r.info }

// Close implements runstore.SourceReader.
func (r *reader) Close() error { return r.f.Close() }

// describe renders the archive Detail string shared by the streaming
// reader, Inspect, and the open Archive's Info.
func describe(records, zrecords, pages int, finalized bool, dropped int64) string {
	detail := fmt.Sprintf("archive: %d record block(s), %d index page(s)", records, pages)
	if zrecords > 0 {
		detail = fmt.Sprintf("archive: %d record block(s) (%d compressed), %d index page(s)", records, zrecords, pages)
	}
	switch {
	case finalized:
		detail += ", footer ok"
	case dropped > 0:
		detail += fmt.Sprintf(", TRUNCATED: no valid footer, %d trailing byte(s) would be dropped on open", dropped)
	default:
		detail += ", unfinalized: no footer yet, open falls back to a full scan"
	}
	return detail
}
