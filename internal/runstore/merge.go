package runstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Conflict is one key whose stored measurements disagree across merge
// sources — two workers measured the same (experiment, assignment,
// replicate) unit and got different responses. In the disjoint-shard
// workflow this never happens; it signals overlapping shard assignments
// or workers run against different builds.
type Conflict struct {
	Key     string // runstore key of the disputed unit
	Earlier string // source path whose record was overridden
	Later   string // source path whose record won (last-wins)
}

// MergeStats reports what one Merge did.
type MergeStats struct {
	Sources     int        // source files read
	Kept        int        // distinct records written to the destination
	Superseded  int        // records dropped by last-wins (within and across sources)
	Conflicts   []Conflict // cross-source disagreements (last source still wins)
	TornSources int        // sources whose torn trailing line was dropped
}

// Merge folds the journals at srcs into a single journal at dst:
// last-wins per (experiment, hash, replicate) key in source order (and in
// append order within a source), with cross-source disagreements reported
// as Conflicts. Torn trailing lines in sources are dropped exactly as
// Open would drop them, so merging the shards of a crashed worker is
// safe.
//
// The output is written in canonical order — (experiment, design row,
// replicate, hash) — so a merged journal is byte-identical regardless of
// how work was sharded across writers: N disjoint shard journals merge to
// the same bytes a single-writer journal of the same run merges to.
// Merging a single source therefore canonicalizes a journal in place.
//
// The write is atomic (temp file, fsync, rename) and the whole operation
// is idempotent: merging a merged journal is a byte-identical no-op, and
// Compact on a merged journal keeps every byte (a merge output already
// holds exactly one record per key in a stable order).
func Merge(srcs []string, dst string) (MergeStats, error) {
	var ms MergeStats
	if len(srcs) == 0 {
		return ms, fmt.Errorf("runstore: merge needs at least one source journal")
	}
	if dst == "" {
		return ms, fmt.Errorf("runstore: merge needs a destination path")
	}
	ms.Sources = len(srcs)
	merged := make(map[string]Record)
	from := make(map[string]string)
	total := 0
	for _, src := range srcs {
		data, err := os.ReadFile(src)
		if err != nil {
			return ms, fmt.Errorf("runstore: %w", err)
		}
		j := &Journal{path: src, recs: make(map[string]Record)}
		if _, err := j.parse(data); err != nil {
			return ms, fmt.Errorf("runstore: %s: %w", src, err)
		}
		if j.torn {
			ms.TornSources++
		}
		total += j.appended
		for _, rec := range j.Records() {
			k := rec.Key()
			if prev, seen := merged[k]; seen && !sameMeasurement(prev, rec) {
				ms.Conflicts = append(ms.Conflicts, Conflict{Key: k, Earlier: from[k], Later: src})
			}
			merged[k] = rec
			from[k] = src
		}
	}
	recs := make([]Record, 0, len(merged))
	for _, rec := range merged {
		recs = append(recs, rec)
	}
	sortCanonical(recs)
	ms.Kept = len(recs)
	ms.Superseded = total - len(recs)
	if err := writeRecords(dst, recs, srcs[0]); err != nil {
		return ms, err
	}
	return ms, nil
}

// sameMeasurement reports whether two records carry the same measurement:
// identical assignment and responses. The informational Row field is
// deliberately excluded — re-numbering a design must not read as a
// conflicting measurement.
func sameMeasurement(a, b Record) bool {
	if len(a.Assignment) != len(b.Assignment) || len(a.Responses) != len(b.Responses) {
		return false
	}
	for k, v := range a.Assignment {
		if bv, ok := b.Assignment[k]; !ok || bv != v {
			return false
		}
	}
	for k, v := range a.Responses {
		if bv, ok := b.Responses[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// sortCanonical orders records by (experiment, design row, replicate,
// hash) — the order a single sequential run appends in, so merged
// multi-writer journals and single-writer journals compare byte-for-byte
// after canonicalization.
func sortCanonical(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		if a.Replicate != b.Replicate {
			return a.Replicate < b.Replicate
		}
		return a.Hash < b.Hash
	})
}

// writeRecords atomically replaces dst with the given records, one JSON
// line each: temp file in the target directory, single fsync, rename.
// The file mode is copied from modeFrom when it exists (so rewriting a
// journal in place never silently changes its permissions), 0644
// otherwise. Compact and Merge share this path.
func writeRecords(dst string, recs []Record, modeFrom string) error {
	if dir := filepath.Dir(dst); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".rewrite-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(modeFrom); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("runstore: %w", err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}
