package runstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Conflict is one key whose stored measurements disagree across merge
// sources — two workers measured the same (experiment, assignment,
// replicate) unit and got different responses. In the disjoint-shard
// workflow this never happens; it signals overlapping shard assignments
// or workers run against different builds.
type Conflict struct {
	Key     string // runstore key of the disputed unit
	Earlier string // source path whose record was overridden
	Later   string // source path whose record won (last-wins)
}

// MergeStats reports what one Merge did.
type MergeStats struct {
	Sources     int        // source files read
	Kept        int        // distinct records written to the destination
	Superseded  int        // records dropped by last-wins (within and across sources)
	Conflicts   []Conflict // cross-source disagreements (last source still wins)
	TornSources int        // sources whose torn trailing line was dropped
}

// Merge folds the journals at srcs into a single journal at dst:
// last-wins per (experiment, hash, replicate) key in source order (and in
// append order within a source), with cross-source disagreements reported
// as Conflicts. Torn trailing lines in sources are dropped exactly as
// Open would drop them, so merging the shards of a crashed worker is
// safe.
//
// The output is written in canonical order — (experiment, design row,
// replicate, hash) — so a merged journal is byte-identical regardless of
// how work was sharded across writers: N disjoint shard journals merge to
// the same bytes a single-writer journal of the same run merges to.
// Merging a single source therefore canonicalizes a journal in place.
//
// The write is atomic (temp file, fsync, rename) and the whole operation
// is idempotent: merging a merged journal is a byte-identical no-op, and
// Compact on a merged journal keeps every byte (a merge output already
// holds exactly one record per key in a stable order).
//
// Sources and destination may also be registered-format archives
// (internal/runstore/archivestore): sources are dispatched by content
// sniffing, the destination by file extension, so journal→archive and
// archive→journal conversions are merges like any other.
func Merge(srcs []string, dst string) (MergeStats, error) {
	if dst == "" {
		return MergeStats{}, fmt.Errorf("runstore: merge needs a destination path")
	}
	recs, ms, err := MergeRecords(srcs)
	if err != nil {
		return ms, err
	}
	write := writeRecords
	if f := formatForDst(dst); f != nil {
		write = f.Write
	}
	if err := write(dst, recs, srcs[0]); err != nil {
		return ms, err
	}
	return ms, nil
}

// MergeRecords is the in-memory half of Merge: it folds the sources into
// one canonical last-wins record set without writing anything, so
// converters (perfeval archive) can verify a written artifact against the
// exact record set the merge produced.
func MergeRecords(srcs []string) ([]Record, MergeStats, error) {
	var ms MergeStats
	if len(srcs) == 0 {
		return nil, ms, fmt.Errorf("runstore: merge needs at least one source journal")
	}
	ms.Sources = len(srcs)
	merged := make(map[string]Record)
	from := make(map[string]string)
	total := 0
	for _, src := range srcs {
		srcRecs, info, err := loadSource(src)
		if err != nil {
			return nil, ms, err
		}
		if info.Torn {
			ms.TornSources++
		}
		total += info.Records
		for _, rec := range srcRecs {
			// Canonicalize the key before folding: a hand-written record
			// with no hash must dedupe against (and be stored as) the
			// hash Append would have derived, in every destination format.
			if rec.Hash == "" {
				rec.Hash = AssignmentHash(rec.Assignment)
			}
			k := rec.Key()
			if prev, seen := merged[k]; seen && !sameMeasurement(prev, rec) {
				ms.Conflicts = append(ms.Conflicts, Conflict{Key: k, Earlier: from[k], Later: src})
			}
			merged[k] = rec
			from[k] = src
		}
	}
	recs := make([]Record, 0, len(merged))
	for _, rec := range merged {
		recs = append(recs, rec)
	}
	sortCanonical(recs)
	ms.Kept = len(recs)
	ms.Superseded = total - len(recs)
	return recs, ms, nil
}

// loadSource reads one merge source read-only: a registered-format
// archive via its Load hook, anything else as a JSONL journal (torn
// trailing lines dropped exactly as Open drops them).
func loadSource(src string) ([]Record, Info, error) {
	if f := formatOf(src); f != nil {
		return f.Load(src)
	}
	data, err := os.ReadFile(src)
	if err != nil {
		return nil, Info{}, fmt.Errorf("runstore: %w", err)
	}
	j := &Journal{path: src, recs: make(map[string]Record)}
	if _, err := j.parse(data); err != nil {
		return nil, Info{}, fmt.Errorf("runstore: %s: %w", src, err)
	}
	return j.Records(), Info{Records: j.appended, Distinct: len(j.recs), Torn: j.torn}, nil
}

// sameMeasurement reports whether two records carry the same measurement:
// identical assignment and responses. The informational Row field is
// deliberately excluded — re-numbering a design must not read as a
// conflicting measurement.
func sameMeasurement(a, b Record) bool {
	if len(a.Assignment) != len(b.Assignment) || len(a.Responses) != len(b.Responses) {
		return false
	}
	for k, v := range a.Assignment {
		if bv, ok := b.Assignment[k]; !ok || bv != v {
			return false
		}
	}
	for k, v := range a.Responses {
		if bv, ok := b.Responses[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// sortCanonical orders records by (experiment, design row, replicate,
// hash) — the order a single sequential run appends in, so merged
// multi-writer journals and single-writer journals compare byte-for-byte
// after canonicalization.
func sortCanonical(recs []Record) {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if a.Row != b.Row {
			return a.Row < b.Row
		}
		if a.Replicate != b.Replicate {
			return a.Replicate < b.Replicate
		}
		return a.Hash < b.Hash
	})
}

// writeRecords atomically replaces dst with the given records, one JSON
// line each: temp file in the target directory, single fsync, rename.
// The file mode is copied from modeFrom when it exists (so rewriting a
// journal in place never silently changes its permissions), 0644
// otherwise. Compact and Merge share this path.
func writeRecords(dst string, recs []Record, modeFrom string) error {
	if dir := filepath.Dir(dst); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".rewrite-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(modeFrom); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	for _, rec := range recs {
		line, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("runstore: %w", err)
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}
