package runstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"iter"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
)

// Conflict is one key whose stored measurements disagree across merge
// sources — two workers measured the same (experiment, assignment,
// replicate) unit and got different responses. In the disjoint-shard
// workflow this never happens; it signals overlapping shard assignments
// or workers run against different builds.
type Conflict struct {
	Key     string // runstore key of the disputed unit
	Earlier string // source path whose record was overridden
	Later   string // source path whose record won (last-wins)
}

// MergeStats reports what one Merge did.
type MergeStats struct {
	Sources     int        // source files read
	Kept        int        // distinct records written to the destination
	Superseded  int        // records dropped by last-wins (within and across sources)
	Conflicts   []Conflict // cross-source disagreements (last source still wins)
	TornSources int        // sources whose torn trailing line was dropped
}

// Merge folds the journals at srcs into a single journal at dst:
// last-wins per (experiment, hash, replicate) key in source order (and in
// append order within a source), with cross-source disagreements reported
// as Conflicts. Torn trailing lines in sources are dropped exactly as
// Open would drop them, so merging the shards of a crashed worker is
// safe.
//
// The output is written in canonical order — (experiment, design row,
// replicate, hash) — so a merged journal is byte-identical regardless of
// how work was sharded across writers: N disjoint shard journals merge to
// the same bytes a single-writer journal of the same run merges to.
// Merging a single source therefore canonicalizes a journal in place.
//
// Merge streams: an index pass reduces each source to lightweight
// entries (key, canonical position, measurement fingerprint, extent),
// then the destination is written by k-way ordered iteration over the
// per-source winner lists, decoding one record at a time.
// Peak memory is the entry index, never the record set — merging two
// 10^5-record files does not buffer 2x10^5 assignment/response maps.
//
// The write is atomic (temp file, fsync, rename) and the whole operation
// is idempotent: merging a merged journal is a byte-identical no-op, and
// Compact on a merged journal keeps every byte (a merge output already
// holds exactly one record per key in a stable order).
//
// Sources and destination may also be registered-format archives
// (internal/runstore/archivestore): sources are dispatched by content
// sniffing, the destination by file extension, so journal→archive and
// archive→journal conversions are merges like any other.
func Merge(srcs []string, dst string) (MergeStats, error) {
	return MergeChecked(srcs, dst, false)
}

// MergeChecked is Merge with an optional conflict gate: with
// failOnConflict set, cross-source conflicts detected in the index pass
// abort the merge before anything is written — the strict-conversion
// path, which must not mask a divergent measurement inside a long-lived
// artifact. The returned stats still carry the conflicts.
func MergeChecked(srcs []string, dst string, failOnConflict bool) (MergeStats, error) {
	if dst == "" {
		return MergeStats{}, fmt.Errorf("runstore: merge needs a destination path")
	}
	plan, ms, err := planMerge(srcs)
	if err != nil {
		return ms, err
	}
	defer plan.Close()
	if failOnConflict && len(ms.Conflicts) > 0 {
		return ms, fmt.Errorf("runstore: %d conflicting record(s) across sources; %s not written", len(ms.Conflicts), dst)
	}
	if f := formatForDst(dst); f != nil {
		if err := f.Write(dst, plan.records(), srcs[0]); err != nil {
			return ms, err
		}
		metMergeRecords.Add(int64(ms.Kept))
		return ms, nil
	}
	if err := plan.writeJournal(dst, srcs[0]); err != nil {
		return ms, err
	}
	metMergeRecords.Add(int64(ms.Kept))
	return ms, nil
}

// MergeRecords is the materializing form of Merge: it folds the sources
// into one canonical last-wins record slice without writing anything.
// Use it only when the whole record set is genuinely needed at once
// (verification against another artifact); Merge itself streams.
func MergeRecords(srcs []string) ([]Record, MergeStats, error) {
	plan, ms, err := planMerge(srcs)
	if err != nil {
		return nil, ms, err
	}
	defer plan.Close()
	recs, err := Collect(plan.records())
	if err != nil {
		return nil, ms, err
	}
	return recs, ms, nil
}

// MergeScan streams the canonical merged view of srcs — the exact
// record sequence Merge would write — without writing anything: the
// same index pass, last-wins resolution, and k-way ordered iteration,
// decoding one record at a time. Converters use it to verify a written
// artifact against the merge that produced it without materializing
// either side. Errors surface in the sequence and stop it.
func MergeScan(srcs []string) iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		plan, _, err := planMerge(srcs)
		if err != nil {
			yield(Record{}, err)
			return
		}
		defer plan.Close()
		for rec, err := range plan.records() {
			if !yield(rec, err) {
				return
			}
			if err != nil {
				return
			}
		}
	}
}

// mergeSource is one open merge input: its reader plus the canonically
// sorted entries of the records it contributes to the output.
type mergeSource struct {
	path    string
	r       SourceReader
	winners []SourceEntry
}

// mergePlan is a prepared merge: every source indexed, global last-wins
// resolved, per-source winner lists in canonical order. The readers stay
// open so the write pass can fetch records by extent.
type mergePlan struct {
	sources []*mergeSource
}

// Close closes every source reader.
func (p *mergePlan) Close() error {
	var first error
	for _, s := range p.sources {
		if s.r == nil {
			continue
		}
		if err := s.r.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// planMerge runs the index pass: each source's entries are folded into a
// global last-wins index (source order, then append order within a
// source), measurement disagreements are reported as Conflicts, and the
// surviving entries are handed back to their sources as canonically
// sorted winner lists ready for k-way iteration.
func planMerge(srcs []string) (*mergePlan, MergeStats, error) {
	var ms MergeStats
	if len(srcs) == 0 {
		return nil, ms, fmt.Errorf("runstore: merge needs at least one source journal")
	}
	ms.Sources = len(srcs)
	plan := &mergePlan{}
	type winner struct {
		src int
		e   SourceEntry
	}
	global := make(map[string]winner)
	total := 0
	for i, src := range srcs {
		r, err := OpenSource(src)
		if err != nil {
			plan.Close()
			return nil, ms, err
		}
		plan.sources = append(plan.sources, &mergeSource{path: src, r: r})
		for e, eerr := range r.Entries() {
			if eerr != nil {
				plan.Close()
				return nil, ms, eerr
			}
			k := e.Key()
			// A same-source overwrite is an ordinary last-wins supersede,
			// not a Conflict: only cross-source disagreement means two
			// workers measured the same unit differently.
			if prev, seen := global[k]; seen && prev.src != i && prev.e.Fp != e.Fp {
				ms.Conflicts = append(ms.Conflicts, Conflict{
					Key: k, Earlier: srcs[prev.src], Later: src,
				})
			}
			global[k] = winner{src: i, e: e}
		}
		info := r.Info()
		total += info.Records
		if info.Torn {
			ms.TornSources++
		}
	}
	for _, w := range global {
		s := plan.sources[w.src]
		s.winners = append(s.winners, w.e)
	}
	for _, s := range plan.sources {
		sort.Slice(s.winners, func(i, j int) bool {
			return canonicalLess(s.winners[i], s.winners[j])
		})
	}
	ms.Kept = len(global)
	ms.Superseded = total - len(global)
	return plan, ms, nil
}

// canonicalLess orders entries by (experiment, design row, replicate,
// hash) — the order a single sequential run appends in, so merged
// multi-writer journals and single-writer journals compare byte-for-byte
// after canonicalization. After last-wins resolution no two winners
// share all four fields, so the order is total.
func canonicalLess(a, b SourceEntry) bool {
	if a.Experiment != b.Experiment {
		return a.Experiment < b.Experiment
	}
	if a.Row != b.Row {
		return a.Row < b.Row
	}
	if a.Replicate != b.Replicate {
		return a.Replicate < b.Replicate
	}
	return a.Hash < b.Hash
}

// each iterates the plan's winners in canonical output order by k-way
// ordered iteration over the per-source sorted winner lists: the source
// whose head entry is canonically smallest yields next. Only cursor
// state lives in memory; records are fetched by the caller one extent at
// a time.
func (p *mergePlan) each(fn func(s *mergeSource, e SourceEntry) error) error {
	cursors := make([]int, len(p.sources))
	for {
		best := -1
		for i, s := range p.sources {
			if cursors[i] >= len(s.winners) {
				continue
			}
			if best < 0 || canonicalLess(s.winners[cursors[i]], p.sources[best].winners[cursors[best]]) {
				best = i
			}
		}
		if best < 0 {
			return nil
		}
		s := p.sources[best]
		if err := fn(s, s.winners[cursors[best]]); err != nil {
			return err
		}
		cursors[best]++
	}
}

// parallelMergeThreshold is the winner count below which records()
// stays serial: a handful of records never amortizes the pool setup,
// and small merges dominate the test suite. A var, not a const, so
// tests can force the parallel path on small inputs.
var parallelMergeThreshold = 4096

// records adapts the k-way iteration to the record sequence shape
// Format.Write consumes. The cursor merge itself is inherently serial
// (it is what defines the canonical output order), but record decode —
// a positioned read plus a JSON or binary parse — is not, so large
// merges run decodes on an ordered worker pool and the consumer drains
// results in submission order. Output order, and therefore output
// bytes, are identical to the serial path.
func (p *mergePlan) records() iter.Seq2[Record, error] {
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8 // decode parallelism saturates well before the I/O does
	}
	total := 0
	for _, s := range p.sources {
		total += len(s.winners)
	}
	if workers < 2 || total < parallelMergeThreshold {
		return p.recordsSerial()
	}
	return p.recordsParallel(workers)
}

// recordsSerial decodes one record per step on the caller's goroutine.
func (p *mergePlan) recordsSerial() iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		stop := fmt.Errorf("stop") // sentinel, never escapes
		err := p.each(func(s *mergeSource, e SourceEntry) error {
			rec, rerr := s.r.Read(e.Ext)
			if rerr != nil {
				return rerr
			}
			if !yield(rec, nil) {
				return stop
			}
			return nil
		})
		if err != nil && err != stop {
			yield(Record{}, err)
		}
	}
}

// decodeJob is one record decode in flight on the merge worker pool.
// out is buffered, so a worker never blocks delivering its result and
// the pool drains cleanly however the consumer exits.
type decodeJob struct {
	r   SourceReader
	ext Extent
	out chan decodeResult
}

type decodeResult struct {
	rec Record
	err error
}

// recordsParallel is records() over a decode pool: a feeder walks the
// k-way cursor merge in canonical order, handing each winner to the
// workers and — through a second channel carrying the same jobs in
// submission order — to the consumer, which blocks on each job's own
// result slot. Decodes overlap; delivery order does not change.
//
// Early exit (the consumer stops yielding, or a decode fails) closes
// done; the feeder sees it at its next send, closes the job channels,
// and the deferred Wait holds the iterator until every worker has
// retired — no goroutine outlives the range loop, which is what keeps
// plan.Close safe to run right after it.
func (p *mergePlan) recordsParallel(workers int) iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		jobs := make(chan *decodeJob, workers)
		order := make(chan *decodeJob, 2*workers)
		done := make(chan struct{})
		var wg sync.WaitGroup
		defer wg.Wait()
		defer close(done)
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					rec, err := j.r.Read(j.ext)
					j.out <- decodeResult{rec: rec, err: err}
				}
			}()
		}
		stop := fmt.Errorf("stop") // sentinel, never escapes
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(jobs)
			defer close(order)
			p.each(func(s *mergeSource, e SourceEntry) error {
				j := &decodeJob{r: s.r, ext: e.Ext, out: make(chan decodeResult, 1)}
				select {
				case order <- j:
				case <-done:
					return stop
				}
				select {
				case jobs <- j:
				case <-done:
					return stop
				}
				return nil
			})
		}()
		for j := range order {
			res := <-j.out
			if res.err != nil {
				yield(Record{}, res.err)
				return
			}
			if !yield(res.rec, nil) {
				return
			}
		}
	}
}

// writeJournal streams the plan's winners into a JSONL journal at dst,
// decoding (via records(), so large merges decode on the worker pool)
// and re-marshaling one record at a time — every output line is the
// canonical encoding regardless of how the source frame was written,
// which is what makes "merging a single source canonicalizes it" hold
// even for hand-edited journals.
func (p *mergePlan) writeJournal(dst, modeFrom string) error {
	return atomicWrite(dst, modeFrom, func(w *bufio.Writer) error {
		for rec, err := range p.records() {
			if err != nil {
				return err
			}
			line, merr := json.Marshal(rec)
			if merr != nil {
				return fmt.Errorf("runstore: %w", merr)
			}
			w.Write(line)
			if werr := w.WriteByte('\n'); werr != nil {
				return werr
			}
		}
		return nil
	})
}

// writeEntry writes one record's JSONL line from its source frame,
// always via decode + canonical json.Marshal — never a verbatim byte
// copy, so non-canonical source encodings (hand-edited lines, archive
// payloads) normalize on the way through.
func writeEntry(w *bufio.Writer, r SourceReader, e SourceEntry) error {
	rec, err := r.Read(e.Ext)
	if err != nil {
		return err
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	w.Write(line)
	return w.WriteByte('\n')
}

// atomicWrite replaces dst with whatever emit writes: temp file in the
// target directory, single fsync, rename. The file mode is copied from
// modeFrom when it exists (so rewriting a journal in place never
// silently changes its permissions), 0644 otherwise. Merge and Compact
// share this path.
func atomicWrite(dst, modeFrom string, emit func(w *bufio.Writer) error) error {
	if dir := filepath.Dir(dst); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("runstore: %w", err)
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), filepath.Base(dst)+".rewrite-*")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	mode := os.FileMode(0o644)
	if fi, err := os.Stat(modeFrom); err == nil {
		mode = fi.Mode().Perm()
	}
	if err := tmp.Chmod(mode); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	bw := bufio.NewWriterSize(tmp, 256<<10)
	if err := emit(bw); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("runstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	return nil
}
