package runstore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"iter"
	"math"
	"os"
	"sort"
)

// Extent locates one record's encoded bytes inside a store file, in the
// file's own framing (a JSONL line, an archive record block). Extents are
// only meaningful to the SourceReader that yielded them.
type Extent struct {
	Off int64 // byte offset of the record's frame
	Len int64 // frame length in bytes
}

// SourceEntry is the lightweight per-record metadata a streaming index
// pass yields: enough to key, order canonically, and compare
// measurements without retaining the decoded record. The decoded record
// itself (its assignment and response maps) is transient — that is the
// point of the streaming contract.
type SourceEntry struct {
	Experiment string
	Hash       string
	Replicate  int
	Row        int
	// Fp fingerprints the measurement (assignment + responses, Row
	// excluded) so superseding appends that changed the measurement are
	// detectable without re-reading either record.
	Fp  uint64
	Ext Extent
}

// Key returns the entry's runstore lookup key.
func (e SourceEntry) Key() string { return Key(e.Experiment, e.Hash, e.Replicate) }

// SourceReader is the streaming, random-access view of one store file
// that Merge, Compact, LoadRecords, and Inspect consume. Entries makes
// one forward pass in file order, decoding each record transiently;
// Read decodes a single record by the extent Entries yielded for it.
// Implementations exist for the JSONL journal (here) and for every
// registered Format (Format.OpenReader); OpenSource dispatches.
type SourceReader interface {
	// Entries iterates every record in file order — superseded records
	// included — as lightweight entries. A torn trailing frame ends the
	// iteration without error (Info reports it); a corrupt interior
	// frame yields the error and stops.
	Entries() iter.Seq2[SourceEntry, error]
	// Read decodes the record at ext, which must have been yielded by
	// Entries on this reader. Read must be safe for concurrent use —
	// every implementation serves it with a stateless positioned read
	// (ReadAt) — because the merge write pass decodes records on a
	// worker pool.
	Read(ext Extent) (Record, error)
	// Info reports the file's shape. Records/Torn are complete only
	// after Entries has been fully consumed.
	Info() Info
	// Close releases the reader's file handle.
	Close() error
}

// OpenSource opens the store file at path for streaming read-only
// access, dispatching registered formats by content sniffing and
// falling back to the JSONL journal. The file is never created,
// repaired, or truncated.
func OpenSource(path string) (SourceReader, error) {
	if f := formatOf(path); f != nil {
		return f.OpenReader(path)
	}
	return openJournalReader(path)
}

// Fingerprint hashes a record's measurement — its assignment and
// responses, with the informational Row field deliberately excluded, so
// a re-numbered design never reads as a conflicting measurement. Two
// records with equal assignments and responses fingerprint identically.
func Fingerprint(rec Record) uint64 {
	h := fnv.New64a()
	keys := make([]string, 0, len(rec.Assignment))
	for k := range rec.Assignment {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		h.Write([]byte(rec.Assignment[k]))
		h.Write([]byte{0})
	}
	h.Write([]byte{1})
	keys = keys[:0]
	for k := range rec.Responses {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf [8]byte
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{0})
		v := rec.Responses[k]
		if v == 0 {
			v = 0 // fold -0 into +0: they compare equal as measurements
		}
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// entryOf builds the index entry for one decoded record.
func entryOf(rec Record, ext Extent) SourceEntry {
	return SourceEntry{
		Experiment: rec.Experiment,
		Hash:       rec.Hash,
		Replicate:  rec.Replicate,
		Row:        rec.Row,
		Fp:         Fingerprint(rec),
		Ext:        ext,
	}
}

// Collect materializes a record sequence into a slice, stopping at the
// first error. It is the bridge for the few true-materialization sites
// (summaries, gates, verification); everything else should consume the
// sequence incrementally.
func Collect(seq iter.Seq2[Record, error]) ([]Record, error) {
	var out []Record
	for rec, err := range seq {
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Seq adapts a record slice to the streaming sequence shape consumed by
// Format.Write and friends.
func Seq(recs []Record) iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		for _, rec := range recs {
			if !yield(rec, nil) {
				return
			}
		}
	}
}

// scanJournal is the one implementation of the journal's line framing
// and torn-tail rule, shared by Journal.Open, the streaming reader, and
// through them Inspect, LoadRecords, Merge, and Compact. It reads r
// line by line, fully decoding each record and calling fn with the
// decoded record and the line's extent.
// It returns the byte offset up to which the input is intact: a final
// unterminated line that does not decode is a torn crash tail
// (torn=true, everything before it kept); a corrupt terminated line
// anywhere is an error, because silently skipping complete records
// would turn resume into silent re-execution.
func scanJournal(r io.Reader, fn func(rec Record, ext Extent) error) (keep int64, torn bool, err error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var off int64
	for {
		line, rerr := br.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			// A real read failure (failing disk, vanished NFS mount) must
			// surface as an error, never masquerade as a torn crash tail —
			// a rewriting consumer would otherwise silently drop the
			// unread remainder of the file.
			return 0, false, fmt.Errorf("runstore: %w", rerr)
		}
		if len(line) == 0 {
			return off, false, nil // clean EOF at a line boundary
		}
		terminated := rerr == nil
		raw := line
		if terminated {
			raw = line[:len(line)-1]
		}
		next := off + int64(len(line))
		if trimmed := bytes.TrimSpace(raw); len(trimmed) > 0 {
			var rec Record
			if uerr := json.Unmarshal(trimmed, &rec); uerr != nil {
				if !terminated { // torn final append from a crash
					return off, true, nil
				}
				return 0, false, fmt.Errorf("corrupt journal line at byte %d: %v", off, uerr)
			}
			if ferr := fn(rec, Extent{Off: off, Len: int64(len(raw))}); ferr != nil {
				return 0, false, ferr
			}
		}
		if rerr == io.EOF {
			return next, false, nil
		}
		off = next
	}
}

// journalReader is the JSONL SourceReader.
type journalReader struct {
	path string
	f    *os.File
	info Info
}

func openJournalReader(path string) (*journalReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	return &journalReader{path: path, f: f}, nil
}

// Entries implements SourceReader, scanning the journal from the start.
// It may be consumed more than once; each call re-reads the file.
func (r *journalReader) Entries() iter.Seq2[SourceEntry, error] {
	return func(yield func(SourceEntry, error) bool) {
		if _, err := r.f.Seek(0, io.SeekStart); err != nil {
			yield(SourceEntry{}, fmt.Errorf("runstore: %w", err))
			return
		}
		records, distinct := 0, make(map[string]struct{})
		stop := fmt.Errorf("runstore: iteration stopped") // sentinel, never escapes
		_, torn, err := scanJournal(r.f, func(rec Record, ext Extent) error {
			// Canonicalize before indexing: a hand-written record with no
			// hash must key (and dedupe) as the hash Append would derive.
			if rec.Hash == "" {
				rec.Hash = AssignmentHash(rec.Assignment)
			}
			records++
			e := entryOf(rec, ext)
			distinct[e.Key()] = struct{}{}
			if !yield(e, nil) {
				return stop
			}
			return nil
		})
		if err == stop {
			return
		}
		if err != nil {
			yield(SourceEntry{}, fmt.Errorf("runstore: %s: %w", r.path, err))
			return
		}
		r.info = Info{Records: records, Distinct: len(distinct), Torn: torn}
	}
}

// Read implements SourceReader with one positioned read of the line.
func (r *journalReader) Read(ext Extent) (Record, error) {
	raw := make([]byte, ext.Len)
	if _, err := r.f.ReadAt(raw, ext.Off); err != nil {
		return Record{}, fmt.Errorf("runstore: %s: reading record at byte %d: %w", r.path, ext.Off, err)
	}
	var rec Record
	if err := json.Unmarshal(bytes.TrimSpace(raw), &rec); err != nil {
		return Record{}, fmt.Errorf("runstore: %s: record at byte %d: %w", r.path, ext.Off, err)
	}
	if rec.Hash == "" {
		rec.Hash = AssignmentHash(rec.Assignment)
	}
	return rec, nil
}

// Info implements SourceReader; complete after Entries is consumed.
func (r *journalReader) Info() Info { return r.info }

// Close implements SourceReader.
func (r *journalReader) Close() error { return r.f.Close() }

// ScanFile streams the distinct last-wins records of a store file —
// journal or registered-format archive — in the file's deterministic
// first-appended order, without materializing the record set: an index
// pass sizes the winners, then records decode one at a time. The file
// is opened read-only and never repaired; a torn trailing frame is
// dropped exactly as Open would drop it. Errors (unreadable file,
// corrupt interior frame) surface in the sequence; iteration stops at
// the first one.
func ScanFile(path string) iter.Seq2[Record, error] {
	return func(yield func(Record, error) bool) {
		r, err := OpenSource(path)
		if err != nil {
			yield(Record{}, err)
			return
		}
		defer r.Close()
		idx, order, _, err := indexEntries(r)
		if err != nil {
			yield(Record{}, err)
			return
		}
		for _, k := range order {
			rec, err := r.Read(idx[k].Ext)
			if err != nil {
				yield(Record{}, err)
				return
			}
			if !yield(rec, nil) {
				return
			}
		}
	}
}

// indexEntries consumes a reader's Entries into a last-wins index plus
// the first-appended key order — the in-memory shape Open's journal
// index has, at entry rather than record cost.
func indexEntries(r SourceReader) (idx map[string]SourceEntry, order []string, records int, err error) {
	idx = make(map[string]SourceEntry)
	for e, eerr := range r.Entries() {
		if eerr != nil {
			return nil, nil, 0, eerr
		}
		records++
		k := e.Key()
		if _, seen := idx[k]; !seen {
			order = append(order, k)
		}
		idx[k] = e
	}
	return idx, order, records, nil
}
