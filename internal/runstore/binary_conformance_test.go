package runstore_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/runstore"
	"repro/internal/runstore/storetest"
)

// TestBinaryJournalConformance runs the shared Store contract suite
// against the binary-framed journal backend.
func TestBinaryJournalConformance(t *testing.T) {
	storetest.Run(t, storetest.Backend{
		Name: "binary",
		Open: func(t *testing.T, dir string) runstore.Store {
			j, err := runstore.OpenBinaryDir(dir, "e")
			if err != nil {
				t.Fatal(err)
			}
			return j
		},
		Tear: func(t *testing.T, dir string) {
			// A crash mid-append leaves a prefix of a frame: here a full
			// header claiming a 64-byte payload with only 3 payload bytes
			// behind it.
			f, err := os.OpenFile(filepath.Join(dir, "e.binj"), os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{64, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3}); err != nil {
				t.Fatal(err)
			}
		},
	})
}
