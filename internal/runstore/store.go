package runstore

import (
	"hash/fnv"
	"iter"
)

// Store is the persistence interface the scheduler (internal/sched)
// executes against: lookup and warm-start reads, durable appends, and a
// deterministic streaming view of every record. *Journal — the
// single-file JSONL backend — is the reference implementation;
// shardstore (a sharded directory of journals) is the scale-out one and
// archivestore (a block-indexed single file) the million-run one. Future
// backends (a remote-worker collector feed) plug in behind the same five
// methods without touching the scheduler.
//
// Contract notes for implementors:
//   - Lookup and ReplicateCount must serve the last-wins view of every
//     record Append has durably persisted, plus whatever the store loaded
//     on open.
//   - Append must be durable before it returns: a crash immediately after
//     a successful Append must not lose the record.
//   - Scan must be deterministic for a given store state, must never
//     materialize the full record set (hand records to the consumer one
//     at a time), and must tolerate a concurrent Append: the iteration
//     walks a snapshot of the KEY SET present when it started, without
//     blocking writers for its whole duration. Keys appended later are
//     not yielded; each key's record is read at yield time, so a
//     superseding append that lands mid-scan may surface in its latest
//     form — value-level point-in-time isolation is not promised. A
//     read failure mid-iteration is yielded as the error, after which
//     the sequence stops.
//   - All methods must be safe for concurrent use.
type Store interface {
	// Lookup returns the stored record for one unit, if present.
	Lookup(experiment, hash string, replicate int) (Record, bool)
	// ReplicateCount returns how many contiguous replicates (0..n-1) of
	// one cell the store holds — the warm-start budget already spent.
	ReplicateCount(experiment, hash string) int
	// Scan streams all distinct records in the store's deterministic
	// order, one at a time. Use runstore.Collect at the few sites that
	// truly need the whole slice.
	Scan() iter.Seq2[Record, error]
	// Append validates, persists, and indexes one record.
	Append(Record) error
	// Close releases the store's resources; reads may keep serving the
	// in-memory view, Append fails afterwards.
	Close() error
}

// The JSONL journal is the reference Store backend.
var _ Store = (*Journal)(nil)

// ShardIndex maps an assignment hash to one of n shards. Every layer of
// the sharded workflow — the scheduler's row partition, the shardstore's
// append routing, and the shard-plan tooling — must agree on this
// function, or disjoint workers would write overlapping shards. The hash
// string is re-hashed (FNV-1a) rather than parsed so any stable cell
// identifier shards evenly, not just the 16-hex AssignmentHash form.
func ShardIndex(hash string, n int) int {
	if n <= 1 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(hash))
	return int(h.Sum64() % uint64(n))
}

// Info summarizes one store file without opening it for writing.
type Info struct {
	Records  int    // complete records in the file, including superseded ones
	Distinct int    // distinct (experiment, hash, replicate) keys
	Torn     bool   // the file ends in a torn (crash-interrupted) tail
	Detail   string // backend-specific shape, e.g. archive block/index stats
}

// Inspect reads a journal (or registered-format archive) file read-only
// and reports its shape — the status probe behind `perfeval inspect` and
// `perfeval shard-plan`. A torn or truncated tail is detected and
// reported via Info.Torn, never silently repaired or silently counted
// past; a corrupt interior journal line is an error. The journal path
// goes through the same streaming scan (and so the same framing and
// torn-tail rule) that Open and every other reader use; registered
// formats report richer Detail through their own Inspect hook.
func Inspect(path string) (Info, error) {
	if f := formatOf(path); f != nil {
		return f.Inspect(path)
	}
	r, err := openJournalReader(path)
	if err != nil {
		return Info{}, err
	}
	defer r.Close()
	for _, err := range r.Entries() {
		if err != nil {
			return Info{}, err
		}
	}
	return r.Info(), nil
}
