package runstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchCodecRecords builds n in-memory records shaped like the bulk
// journal benchmarks' rows: a two-field assignment with a 64-byte pad,
// one response.
func benchCodecRecords(tb testing.TB, n int) []Record {
	tb.Helper()
	pad := strings.Repeat("x", 64)
	recs := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		a := map[string]string{"cell": fmt.Sprintf("c%06d", i), "pad": pad}
		recs = append(recs, Record{
			Experiment: "bench-codec", Row: i, Replicate: 0,
			Hash:       AssignmentHash(a),
			Assignment: a,
			Responses:  map[string]float64{"ms": float64(i) + 0.5},
		})
	}
	return recs
}

// writeBulkBinary is writeBulkJournal's binary twin: n records framed
// straight to a .binj file without per-record fsyncs.
func writeBulkBinary(tb testing.TB, path, experiment string, rows, reps int, pad string) {
	tb.Helper()
	buf := []byte(BinaryMagic)
	for row := 0; row < rows; row++ {
		a := map[string]string{"cell": fmt.Sprintf("c%06d", row), "pad": pad}
		hash := AssignmentHash(a)
		for rep := 0; rep < reps; rep++ {
			buf = appendRecordFrame(buf, Record{
				Experiment: experiment, Row: row, Replicate: rep, Hash: hash,
				Assignment: a,
				Responses:  map[string]float64{"ms": float64(row) + float64(rep)/10},
			})
		}
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		tb.Fatal(err)
	}
}

// The Encode pair is the pure codec half of the append path: one
// iteration encodes 10^5 records to a wire stream. The binary frames
// must beat json.Marshal by the margin BENCH_codec.json records.

func BenchmarkEncodeJSON(b *testing.B) {
	recs := benchCodecRecords(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rec := range recs {
			if err := EncodeWire(io.Discard, rec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

func BenchmarkEncodeBinary(b *testing.B) {
	recs := benchCodecRecords(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rec := range recs {
			if err := EncodeWireBinary(io.Discard, rec); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(recs)), "records/op")
}

// The Scan pair measures the read half: open a 10^5-record store and
// decode every record through the public Scan sequence.

type scanCloser interface {
	Scan() iter.Seq2[Record, error]
	Close() error
}

func benchScan(b *testing.B, path string, open func(string) (scanCloser, error)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := open(path)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for _, err := range j.Scan() {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
		if n != 100_000 {
			b.Fatalf("scanned %d record(s), want 100000", n)
		}
	}
	b.ReportMetric(100_000, "records/op")
}

func BenchmarkScanJSON(b *testing.B) {
	path := filepath.Join(b.TempDir(), "scan.jsonl")
	writeBulkJournal(b, path, "bench-scan", 50_000, 2, strings.Repeat("x", 64))
	benchScan(b, path, func(p string) (scanCloser, error) { return Open(p) })
}

func BenchmarkScanBinary(b *testing.B) {
	path := filepath.Join(b.TempDir(), "scan.binj")
	writeBulkBinary(b, path, "bench-scan", 50_000, 2, strings.Repeat("x", 64))
	benchScan(b, path, func(p string) (scanCloser, error) { return OpenBinary(p) })
}

// The Append pair measures the live per-record append, fsync included —
// both formats pay the same sync, so the delta here is the encode work
// alone; the bulk-write delta shows up in the Merge pair below.

func BenchmarkAppendJSON(b *testing.B) {
	j, err := Open(filepath.Join(b.TempDir(), "append.jsonl"))
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	recs := benchCodecRecords(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendBinary(b *testing.B) {
	j, err := OpenBinary(filepath.Join(b.TempDir(), "append.binj"))
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	recs := benchCodecRecords(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// The Merge pair is the acceptance workload: two 5x10^4-record sources
// folded into a destination of the same format. JSON pays a parse and a
// marshal per record; binary pays neither.

func benchMerge(b *testing.B, ext string, write func(tb testing.TB, path, experiment string, rows, reps int, pad string)) {
	b.Helper()
	dir := b.TempDir()
	const rows, reps = 25_000, 2
	pad := strings.Repeat("x", 64)
	s0 := filepath.Join(dir, "s0"+ext)
	s1 := filepath.Join(dir, "s1"+ext)
	write(b, s0, "bench-a", rows, reps, pad)
	write(b, s1, "bench-b", rows, reps, pad)
	dst := filepath.Join(dir, "merged"+ext)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms, err := Merge([]string{s0, s1}, dst)
		if err != nil {
			b.Fatal(err)
		}
		if ms.Kept != 2*rows*reps {
			b.Fatalf("kept %d, want %d", ms.Kept, 2*rows*reps)
		}
	}
	b.ReportMetric(float64(2*rows*reps), "records/op")
}

func BenchmarkMergeJSON(b *testing.B)   { benchMerge(b, ".jsonl", writeBulkJournal) }
func BenchmarkMergeBinary(b *testing.B) { benchMerge(b, BinaryExt, writeBulkBinary) }

// TestBulkBinaryMatchesAppend pins the writeBulkBinary helper to the
// real append path: the bytes it fabricates must be exactly what
// BinaryJournal.Append produces, or every binary benchmark above would
// measure a fiction.
func TestBulkBinaryMatchesAppend(t *testing.T) {
	dir := t.TempDir()
	bulk := filepath.Join(dir, "bulk.binj")
	writeBulkBinary(t, bulk, "pin", 3, 2, "x")
	appended := filepath.Join(dir, "appended.binj")
	j, err := OpenBinary(appended)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 3; row++ {
		a := map[string]string{"cell": fmt.Sprintf("c%06d", row), "pad": "x"}
		hash := AssignmentHash(a)
		for rep := 0; rep < 2; rep++ {
			if err := j.Append(Record{
				Experiment: "pin", Row: row, Replicate: rep, Hash: hash,
				Assignment: a,
				Responses:  map[string]float64{"ms": float64(row) + float64(rep)/10},
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(bulk)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(appended)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, bb) {
		t.Fatal("writeBulkBinary bytes differ from BinaryJournal.Append bytes")
	}
}

// TestBulkJournalMatchesAppend is the same pin for the JSONL helper.
func TestBulkJournalMatchesAppend(t *testing.T) {
	dir := t.TempDir()
	bulk := filepath.Join(dir, "bulk.jsonl")
	writeBulkJournal(t, bulk, "pin", 3, 2, "x")
	appended := filepath.Join(dir, "appended.jsonl")
	j, err := Open(appended)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 3; row++ {
		a := map[string]string{"cell": fmt.Sprintf("c%06d", row), "pad": "x"}
		hash := AssignmentHash(a)
		for rep := 0; rep < 2; rep++ {
			rec := Record{
				Experiment: "pin", Row: row, Replicate: rep, Hash: hash,
				Assignment: a,
				Responses:  map[string]float64{"ms": float64(row) + float64(rep)/10},
			}
			if _, err := json.Marshal(rec); err != nil {
				t.Fatal(err)
			}
			if err := j.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(bulk)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(appended)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, bb) {
		t.Fatal("writeBulkJournal bytes differ from Journal.Append bytes")
	}
}
