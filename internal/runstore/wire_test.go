package runstore

import (
	"bytes"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
)

func wireRecord(rep int) Record {
	return Record{
		Experiment: "wire exp",
		Row:        1,
		Replicate:  rep,
		Assignment: map[string]string{"cache": "1KB"},
		Responses:  map[string]float64{"MIPS": 15.5 + float64(rep)},
	}
}

func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := []Record{wireRecord(0), wireRecord(1), wireRecord(2)}
	for _, rec := range want {
		if err := EncodeWire(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	var got []Record
	n, err := DecodeWire(&buf, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("decoded %d records, want %d", n, len(want))
	}
	for i := range want {
		norm, err := NormalizeAppend(want[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], norm) {
			t.Errorf("record %d: %+v != %+v", i, got[i], norm)
		}
	}
}

// The wire framing must be byte-identical to the journal's at-rest
// framing: what EncodeWire emits is exactly what Append would persist.
func TestWireFramingMatchesJournal(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenDir(dir, "wire exp")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for rep := 0; rep < 3; rep++ {
		if err := j.Append(wireRecord(rep)); err != nil {
			t.Fatal(err)
		}
		if err := EncodeWire(&buf, wireRecord(rep)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	disk, err := os.ReadFile(j.Path())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, buf.Bytes()) {
		t.Errorf("wire framing diverges from journal framing:\nwire: %q\ndisk: %q", buf.Bytes(), disk)
	}
}

func TestDecodeWireTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeWire(&buf, wireRecord(0)); err != nil {
		t.Fatal(err)
	}
	buf.WriteString(`{"experiment":"wire exp","ro`) // cut off mid-record
	n, err := DecodeWire(&buf, func(Record) error { return nil })
	if err == nil {
		t.Fatal("truncated wire stream decoded without error")
	}
	if !strings.Contains(err.Error(), "truncated") {
		t.Errorf("error %q does not name the truncation", err)
	}
	if n != 1 {
		t.Errorf("decoded %d records before the truncation, want 1", n)
	}
}

func TestDecodeWireConsumerError(t *testing.T) {
	var buf bytes.Buffer
	for rep := 0; rep < 3; rep++ {
		if err := EncodeWire(&buf, wireRecord(rep)); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("consumer refused")
	n, err := DecodeWire(&buf, func(rec Record) error {
		if rec.Replicate == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the consumer's error", err)
	}
	if n != 1 {
		t.Errorf("accepted %d records before the refusal, want 1", n)
	}
}

func TestEncodeWireRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeWire(&buf, Record{Replicate: 0})
	if err == nil {
		t.Fatal("record without an experiment name encoded without error")
	}
	if buf.Len() != 0 {
		t.Errorf("rejected record still wrote %d bytes", buf.Len())
	}
}
