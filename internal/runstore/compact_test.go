package runstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestCompactRoundTrip journals a run, supersedes some records by
// re-appending their keys, compacts, and verifies the compacted journal
// serves the identical last-wins view with the superseded lines gone.
func TestCompactRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]string{"f": "lo"}
	b := map[string]string{"f": "hi"}
	for rep := 0; rep < 3; rep++ {
		if err := j.Append(rec("e", 0, rep, a, map[string]float64{"ms": 10 + float64(rep)})); err != nil {
			t.Fatal(err)
		}
		if err := j.Append(rec("e", 1, rep, b, map[string]float64{"ms": 20 + float64(rep)})); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede two records: re-measured values must win after compaction.
	if err := j.Append(rec("e", 0, 1, a, map[string]float64{"ms": 99})); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec("e", 1, 0, b, map[string]float64{"ms": 88})); err != nil {
		t.Fatal(err)
	}
	want, err := Collect(j.Scan()) // last-wins view before compaction
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cs, err := Compact(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kept != 6 || cs.Dropped != 2 {
		t.Errorf("stats = %+v, want kept 6 dropped 2", cs)
	}

	got, err := LoadRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("compacted journal has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key() != want[i].Key() || got[i].Responses["ms"] != want[i].Responses["ms"] {
			t.Errorf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// The superseded values must be gone from the file, the winners kept.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(raw) {
		t.Errorf("compaction did not shrink the journal: %d -> %d bytes", len(raw), len(data))
	}
	for _, gone := range []string{`"ms":11`, `"ms":20`} {
		if bytes.Contains(data, []byte(gone)) {
			t.Errorf("superseded record %s survived compaction", gone)
		}
	}

	// Idempotence: compacting a compacted journal is a byte-identical no-op.
	if cs, err = Compact(path, ""); err != nil {
		t.Fatal(err)
	}
	if cs.Kept != 6 || cs.Dropped != 0 {
		t.Errorf("re-compaction stats = %+v, want kept 6 dropped 0", cs)
	}
	again, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("re-compaction changed the file")
	}

	// A warm start from the compacted journal sees every unit.
	j2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 6 {
		t.Errorf("Len = %d after compaction, want 6", j2.Len())
	}
	if got, ok := j2.Lookup("e", AssignmentHash(a), 1); !ok || got.Responses["ms"] != 99 {
		t.Errorf("superseding record lost: %+v ok=%v", got, ok)
	}
}

// TestCompactAside writes the compacted journal to a separate path,
// leaving the source untouched, and drops a torn tail like Open would.
func TestCompactAside(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	j, err := Open(src)
	if err != nil {
		t.Fatal(err)
	}
	a := map[string]string{"f": "x"}
	if err := j.Append(rec("e", 0, 0, a, map[string]float64{"ms": 1})); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(rec("e", 0, 0, a, map[string]float64{"ms": 2})); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(src, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"experiment":"e","ro`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}

	dst := filepath.Join(dir, "nested", "dst.jsonl")
	cs, err := Compact(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Kept != 1 || cs.Dropped != 1 || !cs.Torn {
		t.Errorf("stats = %+v, want kept 1 dropped 1 torn", cs)
	}
	after, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("compact-aside modified the source journal")
	}
	got, err := LoadRecords(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Responses["ms"] != 2 {
		t.Errorf("dst records = %+v, want the single last-wins record", got)
	}

	// A missing source is an error, not an empty compaction.
	if _, err := Compact(filepath.Join(dir, "absent.jsonl"), ""); err == nil {
		t.Error("absent source should error")
	}
}

// TestReplicateCount covers the warm-start budget: only the contiguous
// replicate prefix counts, holes stop the count.
func TestReplicateCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	a := map[string]string{"f": "x"}
	hash := AssignmentHash(a)
	if n := j.ReplicateCount("e", hash); n != 0 {
		t.Errorf("empty journal count = %d", n)
	}
	for _, rep := range []int{0, 1, 3} { // hole at 2
		if err := j.Append(rec("e", 0, rep, a, map[string]float64{"ms": 1})); err != nil {
			t.Fatal(err)
		}
	}
	if n := j.ReplicateCount("e", hash); n != 2 {
		t.Errorf("count with hole at 2 = %d, want 2", n)
	}
	if err := j.Append(rec("e", 0, 2, a, map[string]float64{"ms": 1})); err != nil {
		t.Fatal(err)
	}
	if n := j.ReplicateCount("e", hash); n != 4 {
		t.Errorf("count after filling hole = %d, want 4", n)
	}
	if n := j.ReplicateCount("other", hash); n != 0 {
		t.Errorf("other experiment count = %d", n)
	}
}
