package runstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// writeJournal appends the given records to a fresh journal at path.
func writeJournal(t *testing.T, path string, recs ...Record) {
	t.Helper()
	j, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergeShards merges two disjoint shard journals plus an agreeing
// and a disagreeing overlap, checking last-wins, conflict reporting,
// canonical output order, and composition with Compact.
func TestMergeShards(t *testing.T) {
	dir := t.TempDir()
	a := map[string]string{"f": "lo"}
	b := map[string]string{"f": "hi"}
	s0 := filepath.Join(dir, "s0.jsonl")
	s1 := filepath.Join(dir, "s1.jsonl")
	// Shard 0: rows 1 (all reps) and a duplicate of row 0 rep 0 that
	// agrees with shard 1, plus a disagreeing copy of row 0 rep 1.
	writeJournal(t, s0,
		rec("e", 1, 0, b, map[string]float64{"ms": 20}),
		rec("e", 1, 1, b, map[string]float64{"ms": 21}),
		rec("e", 0, 0, a, map[string]float64{"ms": 10}),
		rec("e", 0, 1, a, map[string]float64{"ms": 999}), // superseded by shard 1
	)
	writeJournal(t, s1,
		rec("e", 0, 0, a, map[string]float64{"ms": 10}), // agrees: no conflict
		rec("e", 0, 1, a, map[string]float64{"ms": 11}), // disagrees: conflict, wins
	)
	out := filepath.Join(dir, "nested", "merged.jsonl")
	ms, err := Merge([]string{s0, s1}, out)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Sources != 2 || ms.Kept != 4 || ms.Superseded != 2 {
		t.Errorf("stats = %+v, want sources 2 kept 4 superseded 2", ms)
	}
	if len(ms.Conflicts) != 1 {
		t.Fatalf("conflicts = %+v, want exactly the disagreeing key", ms.Conflicts)
	}
	c := ms.Conflicts[0]
	if c.Key != Key("e", AssignmentHash(a), 1) || c.Earlier != s0 || c.Later != s1 {
		t.Errorf("conflict = %+v", c)
	}

	got, err := LoadRecords(out)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical order: (experiment, row, replicate); the later source won
	// the disputed key.
	wantMS := []float64{10, 11, 20, 21}
	if len(got) != 4 {
		t.Fatalf("merged records = %d, want 4", len(got))
	}
	for i, want := range wantMS {
		if got[i].Responses["ms"] != want {
			t.Errorf("record %d: ms = %v, want %v (canonical order broken?)", i, got[i].Responses["ms"], want)
		}
	}

	// Idempotence: re-merging the merge output is a byte-identical no-op,
	// and so is compacting it.
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	ms2, err := Merge([]string{out}, out)
	if err != nil {
		t.Fatal(err)
	}
	if ms2.Kept != 4 || ms2.Superseded != 0 || len(ms2.Conflicts) != 0 {
		t.Errorf("re-merge stats = %+v", ms2)
	}
	again, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("re-merge changed the file")
	}
	if _, err := Compact(out, ""); err != nil {
		t.Fatal(err)
	}
	if again, err = os.ReadFile(out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("compact after merge changed the file; merge output should already be canonical last-wins")
	}
}

// TestMergeCanonicalizesWriterOrder writes the same records in two
// different append orders and checks both journals merge to identical
// bytes — the property that makes sharded and single-process runs
// comparable byte-for-byte.
func TestMergeCanonicalizesWriterOrder(t *testing.T) {
	dir := t.TempDir()
	a := map[string]string{"f": "lo"}
	b := map[string]string{"f": "hi"}
	recs := []Record{
		rec("e", 0, 0, a, map[string]float64{"ms": 1}),
		rec("e", 0, 1, a, map[string]float64{"ms": 2}),
		rec("e", 1, 0, b, map[string]float64{"ms": 3}),
		rec("e", 1, 1, b, map[string]float64{"ms": 4}),
	}
	ordered := filepath.Join(dir, "ordered.jsonl")
	writeJournal(t, ordered, recs...)
	shuffled := filepath.Join(dir, "shuffled.jsonl")
	writeJournal(t, shuffled, recs[3], recs[1], recs[0], recs[2])

	out1 := filepath.Join(dir, "c1.jsonl")
	out2 := filepath.Join(dir, "c2.jsonl")
	if _, err := Merge([]string{ordered}, out1); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge([]string{shuffled}, out2); err != nil {
		t.Fatal(err)
	}
	d1, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Errorf("merge did not canonicalize append order:\n%s\nvs\n%s", d1, d2)
	}
}

// TestMergeDropsTornSourceTails merges a source left torn by a crashed
// worker: the torn line is dropped, complete records survive.
func TestMergeDropsTornSourceTails(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "torn.jsonl")
	a := map[string]string{"f": "x"}
	writeJournal(t, src, rec("e", 0, 0, a, map[string]float64{"ms": 5}))
	f, err := os.OpenFile(src, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"experiment":"e","ro`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := filepath.Join(dir, "merged.jsonl")
	ms, err := Merge([]string{src}, out)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Kept != 1 || ms.TornSources != 1 {
		t.Errorf("stats = %+v, want kept 1 torn-sources 1", ms)
	}
	got, err := LoadRecords(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Responses["ms"] != 5 {
		t.Errorf("merged records = %+v", got)
	}
}

func TestMergeErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Merge(nil, filepath.Join(dir, "out.jsonl")); err == nil {
		t.Error("merge with no sources should error")
	}
	if _, err := Merge([]string{filepath.Join(dir, "absent.jsonl")}, filepath.Join(dir, "out.jsonl")); err == nil {
		t.Error("merge with a missing source should error")
	}
	src := filepath.Join(dir, "src.jsonl")
	writeJournal(t, src, rec("e", 0, 0, map[string]string{"f": "x"}, map[string]float64{"ms": 1}))
	if _, err := Merge([]string{src}, ""); err == nil {
		t.Error("merge with an empty destination should error")
	}
}

// TestInspect reports record counts and torn tails without touching the
// file.
func TestInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	a := map[string]string{"f": "x"}
	writeJournal(t, path,
		rec("e", 0, 0, a, map[string]float64{"ms": 1}),
		rec("e", 0, 0, a, map[string]float64{"ms": 2}), // supersedes
		rec("e", 0, 1, a, map[string]float64{"ms": 3}),
	)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"experiment":"e","ro`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 3 || info.Distinct != 2 || !info.Torn {
		t.Errorf("info = %+v, want records 3 distinct 2 torn", info)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("Inspect modified the file")
	}
	if _, err := Inspect(filepath.Join(dir, "absent.jsonl")); err == nil {
		t.Error("Inspect of a missing file should error")
	}
}

// TestMergeIntraSourceSupersedeIsNotAConflict pins the conflict
// semantics to cross-source disagreement only: a key re-measured within
// one source is an ordinary last-wins supersede, never a Conflict — a
// strict merge of a perfectly ordinary journal must not abort.
func TestMergeIntraSourceSupersedeIsNotAConflict(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.jsonl")
	a := map[string]string{"f": "x"}
	writeJournal(t, src,
		rec("e", 0, 0, a, map[string]float64{"ms": 1}),
		rec("e", 0, 0, a, map[string]float64{"ms": 2}), // re-measured: supersedes
	)
	out := filepath.Join(dir, "merged.jsonl")
	ms, err := MergeChecked([]string{src}, out, true)
	if err != nil {
		t.Fatalf("strict merge of an ordinary superseding journal failed: %v", err)
	}
	if len(ms.Conflicts) != 0 {
		t.Errorf("intra-source supersede reported as conflict: %+v", ms.Conflicts)
	}
	if ms.Kept != 1 || ms.Superseded != 1 {
		t.Errorf("stats = %+v, want kept 1 superseded 1", ms)
	}
	got, err := LoadRecords(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Responses["ms"] != 2 {
		t.Errorf("merged records = %+v, want the superseding value", got)
	}
}
