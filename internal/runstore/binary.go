package runstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"sync"
)

// The binary record encoding is the hardware-speed counterpart of the
// JSONL journal: the same record, the same key semantics, the same
// last-wins view, encoded without a JSON marshal or parse anywhere on
// the path. It exists because encoding/json dominates append, open,
// merge, and collector ingest at scale (BENCH_codec.json keeps the
// claim measured). The normative specification lives in docs/FORMAT.md;
// change either in lockstep with the other and with the version byte
// baked into BinaryMagic.
//
// Layout of a binary journal file:
//
//	"PEVBIN1\n" | frame*
//
// where every frame is
//
//	payload-length u32 | crc32c(payload) u32 | payload
//
// (all integers little-endian, checksums CRC-32C). Each append is one
// write of the full frame followed by fsync, mirroring the JSONL
// journal's durability story, so a crash leaves at most one torn
// trailing frame. Because frames are length-prefixed, the scan cannot
// resynchronize past damage: the first invalid frame ends the readable
// region, exactly as in the block-indexed archive, and open truncates
// there (reported via Torn).
const (
	// BinaryMagic is the 8-byte header every binary journal starts with.
	// The digit is the format version: an incompatible change to the
	// frame or payload layout bumps it, so old readers reject new files
	// instead of misparsing them.
	BinaryMagic = "PEVBIN1\n"
	// BinaryExt is the binary journal's file extension. A Merge or
	// Compact destination carrying it is written in the binary format.
	BinaryExt = ".binj"

	binHeaderSize      = len(BinaryMagic)
	binFrameHeaderSize = 4 + 4 // payload length, payload CRC

	// maxBinaryPayload bounds a frame payload so a corrupt length field
	// cannot drive a multi-gigabyte allocation during recovery scans.
	maxBinaryPayload = 1 << 30

	// Map-presence markers: JSON distinguishes an absent/null map from
	// an empty one, and the binary codec must round-trip that distinction
	// for binary -> JSON -> binary conversions to be record-identical.
	binMapNil     = 0
	binMapPresent = 1
)

// binCastagnoli is the CRC-32C table every binary frame checksum uses.
var binCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// binBufPool recycles encode scratch buffers on the append/encode hot
// path — Append, EncodeWireBinary, and the bulk writer all borrow from
// it so steady-state encoding allocates nothing per record.
var binBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4<<10)
		return &b
	},
}

// binSortPool recycles the key-sorting scratch slices the encoder uses
// to emit maps deterministically.
var binSortPool = sync.Pool{
	New: func() any {
		s := make([]string, 0, 16)
		return &s
	},
}

// appendBinaryRecord appends rec's binary payload encoding to dst and
// returns the extended buffer. Map keys are emitted in sorted order, so
// the encoding is deterministic: two equal records encode to equal
// bytes, which is what the merge byte-identity property rests on.
func appendBinaryRecord(dst []byte, rec Record) []byte {
	dst = appendBinaryString(dst, rec.Experiment)
	dst = appendBinaryString(dst, rec.Hash)
	dst = binary.AppendVarint(dst, int64(rec.Replicate))
	dst = binary.AppendVarint(dst, int64(rec.Row))

	keys := binSortPool.Get().(*[]string)
	defer func() {
		*keys = (*keys)[:0]
		binSortPool.Put(keys)
	}()

	if rec.Assignment == nil {
		dst = append(dst, binMapNil)
	} else {
		dst = append(dst, binMapPresent)
		*keys = (*keys)[:0]
		for k := range rec.Assignment {
			*keys = append(*keys, k)
		}
		sort.Strings(*keys)
		dst = binary.AppendUvarint(dst, uint64(len(*keys)))
		for _, k := range *keys {
			dst = appendBinaryString(dst, k)
			dst = appendBinaryString(dst, rec.Assignment[k])
		}
	}

	if rec.Responses == nil {
		dst = append(dst, binMapNil)
	} else {
		dst = append(dst, binMapPresent)
		*keys = (*keys)[:0]
		for k := range rec.Responses {
			*keys = append(*keys, k)
		}
		sort.Strings(*keys)
		dst = binary.AppendUvarint(dst, uint64(len(*keys)))
		var bits [8]byte
		for _, k := range *keys {
			dst = appendBinaryString(dst, k)
			binary.LittleEndian.PutUint64(bits[:], math.Float64bits(rec.Responses[k]))
			dst = append(dst, bits[:]...)
		}
	}
	return dst
}

func appendBinaryString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// binDecoder is a bounds-checked cursor over one binary record payload.
type binDecoder struct {
	b   []byte
	err error
}

func (d *binDecoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("runstore: corrupt binary record payload: truncated %s", what)
	}
}

func (d *binDecoder) uvarint(what string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *binDecoder) varint(what string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *binDecoder) str(what string) string {
	n := d.uvarint(what + " length")
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.b)) {
		d.fail(what)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *binDecoder) byte(what string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 1 {
		d.fail(what)
		return 0
	}
	c := d.b[0]
	d.b = d.b[1:]
	return c
}

// decodeBinaryRecord parses one binary record payload. It accepts
// exactly what appendBinaryRecord emits; trailing bytes, truncated
// fields, or impossible counts are errors, never partial records.
func decodeBinaryRecord(b []byte) (Record, error) {
	d := &binDecoder{b: b}
	var rec Record
	rec.Experiment = d.str("experiment")
	rec.Hash = d.str("hash")
	rec.Replicate = int(d.varint("replicate"))
	rec.Row = int(d.varint("row"))

	switch marker := d.byte("assignment marker"); marker {
	case binMapNil:
	case binMapPresent:
		n := d.uvarint("assignment count")
		if d.err == nil && n > uint64(len(d.b)) {
			// Every entry costs at least two bytes; a count beyond the
			// remaining payload is corruption, not a big record.
			return Record{}, fmt.Errorf("runstore: corrupt binary record payload: assignment count %d exceeds payload", n)
		}
		m := make(map[string]string, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			k := d.str("assignment key")
			m[k] = d.str("assignment value")
		}
		rec.Assignment = m
	default:
		if d.err == nil {
			return Record{}, fmt.Errorf("runstore: corrupt binary record payload: bad assignment marker %d", marker)
		}
	}

	switch marker := d.byte("responses marker"); marker {
	case binMapNil:
	case binMapPresent:
		n := d.uvarint("responses count")
		if d.err == nil && n > uint64(len(d.b)) {
			return Record{}, fmt.Errorf("runstore: corrupt binary record payload: responses count %d exceeds payload", n)
		}
		m := make(map[string]float64, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			k := d.str("response name")
			if d.err == nil && len(d.b) < 8 {
				d.fail("response value")
				break
			}
			if d.err == nil {
				m[k] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[:8]))
				d.b = d.b[8:]
			}
		}
		rec.Responses = m
	default:
		if d.err == nil {
			return Record{}, fmt.Errorf("runstore: corrupt binary record payload: bad responses marker %d", marker)
		}
	}

	if d.err != nil {
		return Record{}, d.err
	}
	if len(d.b) != 0 {
		return Record{}, fmt.Errorf("runstore: corrupt binary record payload: %d trailing byte(s)", len(d.b))
	}
	return rec, nil
}

// appendRecordFrame appends rec's complete frame — header plus payload —
// to dst and returns the extended buffer. The header is reserved up
// front and patched after the payload is encoded in place: one buffer,
// no payload copy.
func appendRecordFrame(dst []byte, rec Record) []byte {
	base := len(dst)
	dst = append(dst, make([]byte, binFrameHeaderSize)...)
	dst = appendBinaryRecord(dst, rec)
	payload := dst[base+binFrameHeaderSize:]
	binary.LittleEndian.PutUint32(dst[base:base+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[base+4:base+8], crc32.Checksum(payload, binCastagnoli))
	return dst
}

// encodeBinaryFrame encodes rec as one complete frame into a buffer
// borrowed from the pool. The caller must return the buffer with
// putBinBuf once the bytes are written out.
func encodeBinaryFrame(rec Record) *[]byte {
	bufp := binBufPool.Get().(*[]byte)
	*bufp = appendRecordFrame((*bufp)[:0], rec)
	return bufp
}

// putBinBuf returns an encode buffer to the pool. Oversized buffers
// (one huge record) are dropped rather than pinned in the pool.
func putBinBuf(bufp *[]byte) {
	if cap(*bufp) > 1<<20 {
		return
	}
	*bufp = (*bufp)[:0]
	binBufPool.Put(bufp)
}

// scanBinary is the one implementation of the binary journal's frame
// walk and torn-tail rule, shared by OpenBinary and the streaming
// reader (and through it Inspect, Merge, and Compact) the same way
// scanJournal is shared on the JSONL side. It reads frames from r
// (positioned just past the magic; base is that absolute file offset),
// fully decoding each record and calling fn with the record and its
// frame extent, and returns the absolute offset up to which the input
// is intact.
//
// Unlike the JSONL journal, whose newline framing can resynchronize,
// length-prefixed framing cannot: the first invalid frame — short
// header, short payload, checksum mismatch — ends the readable region
// (torn=true, everything before it kept), the archive's recovery rule.
// Two invalid shapes a torn single-write append cannot produce are
// errors, never a torn tail: a complete header claiming an impossible
// payload length, and a checksum-valid payload that does not decode.
func scanBinary(r io.Reader, base int64, fn func(rec Record, ext Extent) error) (keep int64, torn bool, err error) {
	br := bufio.NewReaderSize(r, 64<<10)
	off := base
	var hdr [binFrameHeaderSize]byte
	var payload []byte
	for {
		if _, rerr := io.ReadFull(br, hdr[:]); rerr != nil {
			if rerr == io.EOF {
				return off, false, nil // clean EOF at a frame boundary
			}
			if rerr == io.ErrUnexpectedEOF {
				return off, true, nil // torn mid-header
			}
			return 0, false, fmt.Errorf("runstore: %w", rerr)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if n > maxBinaryPayload {
			// A torn append leaves a prefix of a valid frame, so a complete
			// header is a written header; an absurd length is damage that
			// must surface, not truncate.
			return 0, false, fmt.Errorf("corrupt binary journal: frame at byte %d claims %d-byte payload (max %d)", off, n, maxBinaryPayload)
		}
		if uint32(cap(payload)) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, rerr := io.ReadFull(br, payload); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				return off, true, nil // torn mid-payload
			}
			return 0, false, fmt.Errorf("runstore: %w", rerr)
		}
		if crc32.Checksum(payload, binCastagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			return off, true, nil
		}
		rec, derr := decodeBinaryRecord(payload)
		if derr != nil {
			// The checksum vouches for the bytes, so a payload that does
			// not decode was written corrupt — an error, never a torn tail.
			return 0, false, fmt.Errorf("corrupt binary record at byte %d: %v", off, derr)
		}
		if rec.Hash == "" {
			rec.Hash = AssignmentHash(rec.Assignment)
		}
		frameLen := int64(binFrameHeaderSize) + int64(len(payload))
		if ferr := fn(rec, Extent{Off: off, Len: frameLen}); ferr != nil {
			return 0, false, ferr
		}
		off += frameLen
	}
}
