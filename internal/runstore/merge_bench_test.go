package runstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// writeBulkJournal writes n records straight to a JSONL file — the
// bytes Append would produce, without paying n fsyncs — so benchmarks
// can build 10^5-record inputs in setup.
func writeBulkJournal(tb testing.TB, path, experiment string, rows, reps int, pad string) {
	tb.Helper()
	var buf bytes.Buffer
	for row := 0; row < rows; row++ {
		a := map[string]string{"cell": fmt.Sprintf("c%06d", row), "pad": pad}
		hash := AssignmentHash(a)
		for rep := 0; rep < reps; rep++ {
			line, err := json.Marshal(Record{
				Experiment: experiment, Row: row, Replicate: rep, Hash: hash,
				Assignment: a,
				Responses:  map[string]float64{"ms": float64(row) + float64(rep)/10},
			})
			if err != nil {
				tb.Fatal(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		tb.Fatal(err)
	}
}

// peakHeap samples HeapAlloc until stop is closed and records the
// maximum observed — the streaming claim is about peak residency, which
// cumulative B/op cannot see.
func peakHeap(stop chan struct{}) *atomic.Uint64 {
	peak := new(atomic.Uint64)
	go func() {
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-stop:
				return
			case <-time.After(200 * time.Microsecond):
			}
		}
	}()
	return peak
}

// BenchmarkMergeStreaming merges two 5x10^4-record journals (10^5
// records total, the acceptance workload) and asserts the merge is
// streaming-bounded: peak heap stays far below what materializing the
// record set would cost. Run with -benchmem; B/op covers transient
// decode garbage, the peak-B metric is the retained high-water mark.
func BenchmarkMergeStreaming(b *testing.B) {
	dir := b.TempDir()
	const rows, reps = 25_000, 2 // 50k records per source, 100k total
	s0 := filepath.Join(dir, "s0.jsonl")
	s1 := filepath.Join(dir, "s1.jsonl")
	pad := strings.Repeat("x", 64)
	writeBulkJournal(b, s0, "bench-a", rows, reps, pad)
	writeBulkJournal(b, s1, "bench-b", rows, reps, pad)
	dst := filepath.Join(dir, "merged.jsonl")

	b.ReportAllocs()
	b.ResetTimer()
	var peak uint64
	for i := 0; i < b.N; i++ {
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		stop := make(chan struct{})
		p := peakHeap(stop)
		ms, err := Merge([]string{s0, s1}, dst)
		close(stop)
		if err != nil {
			b.Fatal(err)
		}
		if ms.Kept != 2*rows*reps {
			b.Fatalf("kept %d, want %d", ms.Kept, 2*rows*reps)
		}
		if grown := p.Load() - base.HeapAlloc; grown > peak {
			peak = grown
		}
	}
	b.ReportMetric(float64(peak), "peak-B")
	// Materializing 10^5 records (two maps, strings, a slice) keeps
	// ~150MB simultaneously live and peaks well past 250MB once GC lag
	// is added; the entry index keeps a few tens of bytes per record
	// live, peaking ~65MB here including transient decode garbage
	// between GCs. 128MB is the regression tripwire between the two
	// regimes, not a tight bound.
	if limit := uint64(128 << 20); peak > limit {
		b.Fatalf("merge peak heap %d bytes exceeds streaming bound %d — is the record set being materialized again?", peak, limit)
	}
}

// BenchmarkCompactStreaming compacts a 10^5-record journal in which
// half the records are superseded — the retention workload — under the
// same streaming-bounded peak-heap assertion as BenchmarkMergeStreaming.
func BenchmarkCompactStreaming(b *testing.B) {
	dir := b.TempDir()
	const rows, reps = 25_000, 2
	src := filepath.Join(dir, "src.jsonl")
	pad := strings.Repeat("x", 64)
	writeBulkJournal(b, src, "bench", rows, reps, pad)
	// Append the same journal again: every key superseded once.
	data, err := os.ReadFile(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(src, append(data, data...), 0o644); err != nil {
		b.Fatal(err)
	}
	dst := filepath.Join(dir, "compacted.jsonl")

	b.ReportAllocs()
	b.ResetTimer()
	var peak uint64
	for i := 0; i < b.N; i++ {
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		stop := make(chan struct{})
		p := peakHeap(stop)
		cs, err := Compact(src, dst)
		close(stop)
		if err != nil {
			b.Fatal(err)
		}
		if cs.Kept != rows*reps || cs.Dropped != rows*reps {
			b.Fatalf("stats = %+v, want kept %d dropped %d", cs, rows*reps, rows*reps)
		}
		if grown := p.Load() - base.HeapAlloc; grown > peak {
			peak = grown
		}
	}
	b.ReportMetric(float64(peak), "peak-B")
	if limit := uint64(128 << 20); peak > limit {
		b.Fatalf("compact peak heap %d bytes exceeds streaming bound %d", peak, limit)
	}
}

// TestMergeStreamingPeakMemory is the deterministic form of the
// benchmark assertion, sized so it runs in the ordinary test suite:
// merging records whose payloads sum to ~24MB must peak far below the
// materialized size. A regression back to slice materialization keeps
// the whole record set live and cannot pass.
func TestMergeStreamingPeakMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-profile test")
	}
	dir := t.TempDir()
	const rows, reps = 1500, 2 // 6000 records x ~4KB payload ≈ 24MB
	pad := strings.Repeat("p", 4096)
	s0 := filepath.Join(dir, "s0.jsonl")
	s1 := filepath.Join(dir, "s1.jsonl")
	writeBulkJournal(t, s0, "peak-a", rows, reps, pad)
	writeBulkJournal(t, s1, "peak-b", rows, reps, pad)
	payload := uint64(2 * rows * reps * len(pad))

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	stop := make(chan struct{})
	p := peakHeap(stop)
	if _, err := Merge([]string{s0, s1}, filepath.Join(dir, "merged.jsonl")); err != nil {
		close(stop)
		t.Fatal(err)
	}
	close(stop)
	grown := p.Load() - base.HeapAlloc
	if grown > payload {
		t.Errorf("merge peak heap grew %d bytes, more than the %d bytes of record payloads — records are being materialized", grown, payload)
	}
}
