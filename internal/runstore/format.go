package runstore

import (
	"fmt"
	"io"
	"iter"
	"os"
	"strings"
)

// Format describes an alternative on-disk record-store format (the
// block-indexed archive in internal/runstore/archivestore is the first)
// so the journal-file tooling — Merge, LoadRecords, Inspect — transparently
// reads and writes it. A backend registers its Format from an init
// function; any program that imports the backend package can then merge
// into, diff against, or inspect files of that format with no extra
// plumbing. The JSONL journal itself is not a Format: it is the default
// every path falls back to.
type Format struct {
	// Name identifies the format in messages ("archive").
	Name string
	// Ext is the file extension, with dot (".arch"). A Merge destination
	// with this extension is written in the format.
	Ext string
	// Sniff reports whether a file starting with head (its first eight or
	// fewer bytes) is in the format. Sources are dispatched by content,
	// not extension, so renamed files keep working.
	Sniff func(head []byte) bool
	// OpenReader opens the file for streaming read-only access — the
	// file is never created, repaired, or truncated. It is how Merge,
	// Compact, LoadRecords, and ScanFile consume files of the format.
	OpenReader func(path string) (SourceReader, error)
	// Write atomically replaces dst with the given canonical record
	// sequence, consumed incrementally (never materialized), copying the
	// file mode from modeFrom when it exists (mirroring the journal's
	// writer). A yielded error aborts the write, leaving dst untouched.
	Write func(dst string, recs iter.Seq2[Record, error], modeFrom string) error
	// Inspect reports the file's shape without loading record payloads.
	Inspect func(path string) (Info, error)
}

// formats holds registered formats. Registration happens only from init
// functions (which the runtime serializes), so reads need no lock.
var formats []Format

// RegisterFormat registers an alternative store format with the journal
// tooling. Call it from the backend package's init function only; later
// registration races with lookups.
func RegisterFormat(f Format) {
	if f.Name == "" || f.Ext == "" || f.Sniff == nil || f.OpenReader == nil || f.Write == nil || f.Inspect == nil {
		panic(fmt.Sprintf("runstore: RegisterFormat: incomplete format %+v", f))
	}
	formats = append(formats, f)
}

// formatOf sniffs the file at path and returns its registered format, or
// nil for the default JSONL journal. A missing or unreadable file is nil
// too: the caller's journal path produces the right error.
func formatOf(path string) *Format {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	head := make([]byte, 8)
	n, err := io.ReadFull(f, head)
	if err != nil && err != io.ErrUnexpectedEOF {
		return nil
	}
	for i := range formats {
		if formats[i].Sniff(head[:n]) {
			return &formats[i]
		}
	}
	return nil
}

// formatForDst matches a destination path by extension: the file may not
// exist yet, so content sniffing cannot apply.
func formatForDst(path string) *Format {
	for i := range formats {
		if strings.HasSuffix(path, formats[i].Ext) {
			return &formats[i]
		}
	}
	return nil
}
