package paperexp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/netsim"
)

// RunT3 regenerates slide 58: two 2x2 tables, one without and one with a
// factor interaction.
func RunT3(ctx context.Context) (*Result, error) {
	a := design.MustFactor("A", "A1", "A2")
	b := design.MustFactor("B", "B1", "B2")
	noInter := design.TwoByTwo{A: a, B: b, Y: [2][2]float64{{3, 5}, {6, 8}}}
	inter := design.TwoByTwo{A: a, B: b, Y: [2][2]float64{{3, 5}, {6, 9}}}

	var sb strings.Builder
	sb.WriteString("(a) no interaction: the effect of A is the same at every level of B\n\n")
	sb.WriteString(noInter.String())
	fmt.Fprintf(&sb, "\neffect of A at B1 = %g, at B2 = %g -> interaction magnitude %g\n\n",
		noInter.EffectOfAAt(0), noInter.EffectOfAAt(1), noInter.InteractionMagnitude())
	sb.WriteString("(b) interaction: the effect of A depends on the level of B\n\n")
	sb.WriteString(inter.String())
	fmt.Fprintf(&sb, "\neffect of A at B1 = %g, at B2 = %g -> interaction magnitude %g\n",
		inter.EffectOfAAt(0), inter.EffectOfAAt(1), inter.InteractionMagnitude())

	return &Result{
		ID: "t3", Title: "Factor interaction", Slides: "58",
		Text: sb.String(),
		Series: map[string][]float64{
			"no-interaction": {noInter.InteractionMagnitude()},
			"interaction":    {inter.InteractionMagnitude()},
		},
	}, nil
}

// RunT4 regenerates slides 70-78: the 2^2 memory/cache MIPS example with
// the sign-table method, producing y = 40 + 20 xA + 10 xB + 5 xA xB.
func RunT4(ctx context.Context) (*Result, error) {
	d, err := design.TwoLevelFull([]design.Factor{
		design.MustFactor("memory", "4MB", "16MB"),
		design.MustFactor("cache", "1KB", "2KB"),
	})
	if err != nil {
		return nil, err
	}
	responses := map[string]float64{
		"cache=1KB memory=4MB":  15,
		"cache=2KB memory=4MB":  25,
		"cache=1KB memory=16MB": 45,
		"cache=2KB memory=16MB": 75,
	}
	exp := &harness.Experiment{
		Name: "workstation performance 2^2", Design: d, Responses: []string{"MIPS"},
		Run: func(a design.Assignment, _ int) (map[string]float64, error) {
			v, ok := responses[a.String()]
			if !ok {
				return nil, fmt.Errorf("no datum for %s", a)
			}
			return map[string]float64{"MIPS": v}, nil
		},
	}
	rs, err := harness.Execute(ctx, exp)
	if err != nil {
		return nil, err
	}
	ef, err := rs.Effects("MIPS")
	if err != nil {
		return nil, err
	}
	st, err := design.NewSignTable(d.Factors)
	if err != nil {
		return nil, err
	}
	text := "sign table:\n" + st.String() + "\n" + rs.Report()
	return &Result{
		ID: "t4", Title: "2^2 factorial design and the sign-table method", Slides: "70-78",
		Text: text,
		Series: map[string][]float64{
			"q": {ef.Q[design.I], ef.Q[design.MainEffect(0)], ef.Q[design.MainEffect(1)],
				ef.Q[design.MainEffect(0).Mul(design.MainEffect(1))]},
		},
		Notes: "Interpreted as: the mean is 40 MIPS; the memory effect is 20; the cache " +
			"effect is 10; their interaction accounts for 5.",
	}, nil
}

// RunT5 regenerates slides 86-93: allocation of variation for
// network-type x address-pattern over throughput, transit time, and
// response time — first on the paper's published data (reproducing the
// published percentages), then live on the netsim simulator.
func RunT5(ctx context.Context) (*Result, error) {
	factors := []design.Factor{
		design.MustFactor("network", "Crossbar", "Omega"),
		design.MustFactor("pattern", "Random", "Matrix"),
	}
	st, err := design.NewSignTable(factors)
	if err != nil {
		return nil, err
	}
	a, b := design.MainEffect(0), design.MainEffect(1)

	var sb strings.Builder
	series := map[string][]float64{}

	sb.WriteString("published data (Jain via the paper):\n\n")
	tab := harness.NewTable().Header("metric", "qA(network)%", "qB(pattern)%", "qAB%")
	for _, metric := range []string{"T", "N", "R"} {
		ys := netsim.PaperData()[metric]
		ef, err := design.EstimateEffects(st, ys)
		if err != nil {
			return nil, err
		}
		frac := map[design.Effect]float64{}
		for _, v := range ef.AllocateVariation() {
			frac[v.Effect] = v.Fraction * 100
		}
		series["paper-"+metric] = []float64{frac[a], frac[b], frac[a.Mul(b)]}
		tab.Row(metric, fmt.Sprintf("%.1f", frac[a]), fmt.Sprintf("%.1f", frac[b]),
			fmt.Sprintf("%.1f", frac[a.Mul(b)]))
	}
	sb.WriteString(tab.String())

	sb.WriteString("\nlive simulation (netsim, 16 processors, 2000 cycles):\n\n")
	cfg := netsim.Config{Procs: 16, Cycles: 2000, Think: 1, Seed: 99}
	nets := []netsim.Network{netsim.Crossbar{N: 16}, netsim.Omega{N: 16}}
	pats := []netsim.Pattern{netsim.RandomPattern{}, netsim.MatrixPattern{}}
	resp := map[string][]float64{"T": make([]float64, 4), "N": make([]float64, 4), "R": make([]float64, 4)}
	runTab := harness.NewTable().Header("network", "pattern", "T", "N", "R")
	for run := 0; run < 4; run++ {
		net := nets[st.LevelIndex(run, 0)]
		pat := pats[st.LevelIndex(run, 1)]
		m, err := netsim.Simulate(net, pat, cfg)
		if err != nil {
			return nil, err
		}
		resp["T"][run], resp["N"][run], resp["R"][run] = m.Throughput, m.Transit90, m.AvgResponse
		runTab.Row(net.Name(), pat.Name(), fmt.Sprintf("%.4f", m.Throughput),
			fmt.Sprintf("%.0f", m.Transit90), fmt.Sprintf("%.3f", m.AvgResponse))
	}
	sb.WriteString(runTab.String())
	liveTab := harness.NewTable().Header("metric", "qA(network)%", "qB(pattern)%", "qAB%")
	for _, metric := range []string{"T", "N", "R"} {
		ef, err := design.EstimateEffects(st, resp[metric])
		if err != nil {
			return nil, err
		}
		frac := map[design.Effect]float64{}
		for _, v := range ef.AllocateVariation() {
			frac[v.Effect] = v.Fraction * 100
		}
		series["live-"+metric] = []float64{frac[a], frac[b], frac[a.Mul(b)]}
		liveTab.Row(metric, fmt.Sprintf("%.1f", frac[a]), fmt.Sprintf("%.1f", frac[b]),
			fmt.Sprintf("%.1f", frac[a.Mul(b)]))
	}
	sb.WriteString("\nvariation explained (live):\n\n")
	sb.WriteString(liveTab.String())
	sb.WriteString("\nConclusion: the address pattern influences most.\n")

	return &Result{
		ID: "t5", Title: "Allocation of variation", Slides: "86-93",
		Text: sb.String(), Series: series,
		Notes: "The published percentages (77/80/87.8% for the pattern) are reproduced " +
			"exactly from the published responses; the live simulator reproduces the " +
			"qualitative conclusion (pattern dominates, interaction smallest).",
	}, nil
}

// RunT6 regenerates slides 100-103: the construction of a 2^(7-4)
// fractional factorial design and its properties.
func RunT6(ctx context.Context) (*Result, error) {
	var factors []design.Factor
	for i := 0; i < 7; i++ {
		factors = append(factors, design.MustFactor(string(rune('A'+i)), "-1", "+1"))
	}
	var gens []design.Generator
	for _, s := range []string{"D=AB", "E=AC", "F=BC", "G=ABC"} {
		g, err := design.ParseGenerator(s)
		if err != nil {
			return nil, err
		}
		gens = append(gens, g)
	}
	fr, err := design.NewFractional(factors, gens)
	if err != nil {
		return nil, err
	}
	st := fr.Table
	tab := harness.NewTable()
	header := []string{"Exp."}
	for i := 0; i < 7; i++ {
		header = append(header, string(rune('A'+i)))
	}
	tab.Header(header...)
	zeroSum := make([]float64, 7)
	for r := 0; r < st.Runs; r++ {
		cells := []string{fmt.Sprintf("%d", r+1)}
		for f := 0; f < 7; f++ {
			s := st.Sign(r, design.MainEffect(f))
			zeroSum[f] += s
			cells = append(cells, fmt.Sprintf("%+g", s))
		}
		tab.Row(cells...)
	}
	text := "generators: D=AB, E=AC, F=BC, G=ABC\n\n" + tab.String() +
		"\n7 zero-sum columns: both levels get equally tested.\n" +
		"All main-effect columns are pairwise orthogonal.\n" +
		fmt.Sprintf("runs: %d instead of 2^7 = 128\n", st.Runs)
	return &Result{
		ID: "t6", Title: "Preparing a fractional factorial design 2^(7-4)", Slides: "100-103",
		Text:   text,
		Series: map[string][]float64{"column-sums": zeroSum, "runs": {float64(st.Runs)}},
	}, nil
}

// RunT7 regenerates slides 104-109: the confounding structure of the two
// 2^(4-1) half-fractions D=ABC and D=AB, and why D=ABC is preferred.
func RunT7(ctx context.Context) (*Result, error) {
	var factors []design.Factor
	for i := 0; i < 4; i++ {
		factors = append(factors, design.MustFactor(string(rune('A'+i)), "-1", "+1"))
	}
	gABC, err := design.ParseGenerator("D=ABC")
	if err != nil {
		return nil, err
	}
	gAB, err := design.ParseGenerator("D=AB")
	if err != nil {
		return nil, err
	}
	frABC, err := design.NewFractional(factors, []design.Generator{gABC})
	if err != nil {
		return nil, err
	}
	frAB, err := design.NewFractional(factors, []design.Generator{gAB})
	if err != nil {
		return nil, err
	}
	pref, reason := design.Compare(frABC, frAB)
	var sb strings.Builder
	fmt.Fprintf(&sb, "confoundings of D=ABC (resolution %d):\n%s\n", frABC.Resolution(), frABC.ConfoundingTable())
	fmt.Fprintf(&sb, "confoundings of D=AB (resolution %d):\n%s\n", frAB.Resolution(), frAB.ConfoundingTable())
	fmt.Fprintf(&sb, "preferred: %s\n%s\n", pref.Generators[0], reason)
	return &Result{
		ID: "t7", Title: "Comparison of two 2^(4-1) designs", Slides: "104-109",
		Text: sb.String(),
		Series: map[string][]float64{
			"resolution": {float64(frABC.Resolution()), float64(frAB.Resolution())},
		},
	}, nil
}
