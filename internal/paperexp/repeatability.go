package paperexp

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/plot"
	"repro/internal/repeat"
)

// RunF7 regenerates slides 218-220: the SIGMOD 2008 repeatability outcome
// charts, rendered as share bars, plus the stated headline numbers.
func RunF7(ctx context.Context) (*Result, error) {
	var sb strings.Builder
	h := repeat.SIGMOD2008Headline()
	fmt.Fprintf(&sb, "SIGMOD 2008: %d submissions, %d papers provided code for repeatability testing;\n",
		h.Submissions, h.ProvidedCode)
	fmt.Fprintf(&sb, "%d accepted papers assessed, %d rejected papers verified, %d papers verified in total.\n\n",
		h.Accepted, h.RejectedVer, h.TotalVerified)

	series := map[string][]float64{}
	order := []repeat.OutcomeCategory{
		repeat.AllRepeated, repeat.SomeRepeated, repeat.NoneRepeated,
		repeat.Excused, repeat.NoSubmission,
	}
	for _, chart := range repeat.SIGMOD2008() {
		if !chart.Consistent() {
			return nil, fmt.Errorf("inconsistent chart %q", chart.Title)
		}
		var labels plot.Labels
		var values []float64
		for _, cat := range order {
			if n, ok := chart.Counts[cat]; ok {
				labels = append(labels, string(cat))
				values = append(values, float64(n))
			}
		}
		pie := plot.NewPieChart(chart.Title, labels, values)
		text, err := plot.ASCII(pie, 72, 0)
		if err != nil {
			return nil, err
		}
		sb.WriteString(text)
		sb.WriteByte('\n')
		series[chart.Title] = values
	}
	sb.WriteString("Per-category splits are read off the published pie charts (marked FromFigure\n")
	sb.WriteString("in the dataset); the totals are stated in the slide text.\n")

	return &Result{
		ID: "f7", Title: "How SIGMOD 2008 repeatability went", Slides: "218-220",
		Text:   sb.String(),
		Series: series,
	}, nil
}

// PaperSuite builds the repeatable experiment suite covering every table
// and figure of this reproduction — the repository applying the paper's
// repeatability checklist to itself.
func PaperSuite() *repeat.Suite {
	s := &repeat.Suite{
		Name: "performance-evaluation-paper",
		Requirements: []string{
			"Go 1.22 or newer",
			"no network access required (stdlib only, data generated deterministically)",
		},
		Install: "go build ./...",
		Layout:  repeat.DefaultLayout(),
	}
	for _, e := range Registry() {
		s.Experiments = append(s.Experiments, repeat.Experiment{
			ID:               e.ID,
			Description:      e.Title,
			Script:           "go run ./cmd/perfeval run " + e.ID,
			OutputPath:       "res/" + e.ID + ".txt",
			ExpectedDuration: 5e9, // 5s, generous
			Idempotent:       true,
		})
	}
	return s
}
