// Package paperexp contains one driver per table and figure of the paper's
// worked examples — the per-experiment index of DESIGN.md made executable.
// Each driver assembles the relevant substrates (vdb engines over tpch data
// on a hwsim machine, the netsim interconnect, the design/stats analysis,
// the plot/sysinfo/repeat tooling), regenerates the artifact, and returns
// both the rendered text and the raw series so benchmarks and tests can
// assert its shape.
package paperexp

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// Result is one regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Slides string // slide range in the paper
	Text   string // the rendered artifact
	// Series carries the raw numbers behind the artifact, keyed by a
	// short name, for programmatic assertions.
	Series map[string][]float64
	// Notes documents substitutions and caveats.
	Notes string
}

// Entry registers one experiment driver. Run receives the caller's
// context: drivers thread it into harness execution, so cancellation
// reaches the executor (and, under the scheduler, the worker pool).
type Entry struct {
	ID    string
	Title string
	Run   func(ctx context.Context) (*Result, error)
}

// Registry lists every experiment in paper order.
func Registry() []Entry {
	return []Entry{
		{"t1", "server vs client time and output destination (Q1/Q16)", RunT1},
		{"t2", "hot vs cold runs, user vs real time (Q1)", RunT2},
		{"f1", "DBG/OPT relative execution time across 22 queries", RunF1},
		{"f2", "the memory wall: scan cost across machine generations", RunF2},
		{"f3", "profile breakdown of Q1: tuple-at-a-time vs column-at-a-time", RunF3},
		{"t3", "factor interaction example", RunT3},
		{"t4", "2^2 design: memory and cache effects on MIPS", RunT4},
		{"t5", "allocation of variation: networks x address patterns", RunT5},
		{"t6", "2^(7-4) fractional factorial sign table", RunT6},
		{"t7", "confounding: D=ABC versus D=AB", RunT7},
		{"f4", "chart guideline violations", RunF4},
		{"f5", "confidence intervals and histogram cell sizes", RunF5},
		{"f6", "pictorial games: truncated axes and gnuplot sizing", RunF6},
		{"t8", "automatic graph generation with gnuplot", RunT8},
		{"t9", "the locale hazard: 13.666 becomes 13666", RunT9},
		{"t10", "specifying hardware environments", RunT10},
		{"f7", "SIGMOD 2008 repeatability outcomes", RunF7},
	}
}

// Run executes the experiment with the given id under ctx.
func Run(ctx context.Context, id string) (*Result, error) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(ctx)
		}
	}
	ids := make([]string, 0, len(Registry()))
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return nil, fmt.Errorf("paperexp: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// RunAll executes every experiment under ctx, stopping at the first
// failure (a canceled context included).
func RunAll(ctx context.Context) ([]*Result, error) {
	var out []*Result
	for _, e := range Registry() {
		r, err := e.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("paperexp: %s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}
