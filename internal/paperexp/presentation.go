package paperexp

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/sysinfo"
)

// RunF4 regenerates slides 115-134: the chart-guideline catalogue. It
// constructs the paper's bad charts, runs the linter, and shows what it
// flags.
func RunF4(ctx context.Context) (*Result, error) {
	var sb strings.Builder
	var counts []float64

	lint := func(title string, vs []plot.Violation) {
		fmt.Fprintf(&sb, "%s:\n", title)
		if len(vs) == 0 {
			sb.WriteString("  (clean)\n")
		}
		for _, v := range vs {
			fmt.Fprintf(&sb, "  - %s\n", v)
		}
		sb.WriteByte('\n')
		counts = append(counts, float64(len(vs)))
	}

	// Too many curves.
	many := plot.NewLineChart("response time by users", "Number of users", "Response time (ms)")
	for i := 0; i < 8; i++ {
		many.Series = append(many.Series, plot.Series{
			Name:   fmt.Sprintf("configuration %d", i+1),
			Points: []plot.Point{{X: 1, Y: float64(i)}, {X: 2, Y: float64(2 * i)}},
		})
	}
	lint("8 curves on one line chart", plot.Lint(many))

	// Symbols instead of keywords.
	sym := plot.NewLineChart("response time", "Arrival rate (jobs/sec)", "Response time (ms)",
		plot.Series{Name: "µ=1", Points: []plot.Point{{X: 1, Y: 2}}},
		plot.Series{Name: "µ=2", Points: []plot.Point{{X: 1, Y: 1}}},
	)
	lint("symbols in place of text (µ=1 vs \"1 job/sec\")", plot.Lint(sym))

	// Many response variables on a single chart.
	mixed := plot.NewLineChart("everything at once", "Number of users", "value (mixed units)",
		plot.Series{Name: "response time", Points: []plot.Point{{X: 1, Y: 10}}},
		plot.Series{Name: "throughput", Points: []plot.Point{{X: 1, Y: 70}}},
		plot.Series{Name: "utilization", Points: []plot.Point{{X: 1, Y: 0.9}}},
	)
	lint("many result variables on a single chart (\"Huh?\")",
		plot.LintCombined(mixed, []string{"response time", "throughput", "utilization"}))

	// Inconsistent curve layout across figures.
	s := plot.Series{Name: "our engine", Points: []plot.Point{{X: 1, Y: 1}}, Style: plot.Style{LineType: 1, Color: "red"}}
	s2 := s
	s2.Style = plot.Style{LineType: 3, Color: "green"}
	fig1 := plot.NewLineChart("fig 1", "x (n)", "time (ms)", s)
	fig2 := plot.NewLineChart("fig 2", "x (n)", "time (ms)", s2)
	lint("curve changes layout between figures", plot.LintFigureSet([]*plot.Chart{fig1, fig2}))

	// A clean chart for contrast.
	good := plot.NewLineChart("Execution time for various scale factors",
		"Scale factor", "Execution time (ms)",
		plot.Series{Name: "column engine", Points: []plot.Point{{X: 1, Y: 1234}, {X: 2, Y: 2467}}})
	lint("a chart following the guidelines", plot.Lint(good))

	return &Result{
		ID: "f4", Title: "Guidelines for preparing good graphic charts", Slides: "115-134",
		Text:   sb.String(),
		Series: map[string][]float64{"violations": counts},
	}, nil
}

// RunF5 regenerates slides 142-145: confidence-interval overlap and the
// histogram cell-size rule.
func RunF5(ctx context.Context) (*Result, error) {
	var sb strings.Builder

	// Confidence intervals: two alternatives whose intervals overlap are
	// statistically indifferent; two disjoint ones are not.
	mine := []float64{101, 99, 103, 98, 100}
	yours := []float64{102, 100, 104, 99, 101}
	cmp, err := stats.CompareAlternatives(mine, yours, 0.95)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "MINE %v vs YOURS %v -> %s\n", cmp.A, cmp.B, cmp.Verdict)
	fast := []float64{50, 51, 49, 50, 52}
	cmp2, err := stats.CompareAlternatives(fast, yours, 0.95)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "FAST %v vs YOURS %v -> %s\n\n", cmp2.A, cmp2.B, cmp2.Verdict)

	// Histogram cells: the paper's 36-point response-time sample.
	counts := []int{3, 6, 9, 12, 4, 2}
	var xs []float64
	for cell, n := range counts {
		for i := 0; i < n; i++ {
			xs = append(xs, float64(cell)*2+0.3+float64(i)*0.2)
		}
	}
	fine, err := stats.NewHistogramRange(xs, 6, 0, 12)
	if err != nil {
		return nil, err
	}
	sb.WriteString("fine bins (violates the >=5 points/cell rule):\n")
	var fineCounts, coarseCounts []float64
	for _, bin := range fine.Bins {
		fmt.Fprintf(&sb, "  %-8s %s (%d)\n", bin.Label(), strings.Repeat("#", bin.Count), bin.Count)
		fineCounts = append(fineCounts, float64(bin.Count))
	}
	fmt.Fprintf(&sb, "  rule satisfied: %v\n\n", fine.SatisfiesCellRule())
	auto, err := stats.AutoBin(xs)
	if err != nil {
		return nil, err
	}
	sb.WriteString("auto-coarsened bins:\n")
	for _, bin := range auto.Bins {
		fmt.Fprintf(&sb, "  %-8s %s (%d)\n", bin.Label(), strings.Repeat("#", bin.Count), bin.Count)
		coarseCounts = append(coarseCounts, float64(bin.Count))
	}
	fmt.Fprintf(&sb, "  rule satisfied: %v\n", auto.SatisfiesCellRule())

	return &Result{
		ID: "f5", Title: "Confidence intervals and histogram cell sizes", Slides: "142-145",
		Text: sb.String(),
		Series: map[string][]float64{
			"fine":   fineCounts,
			"coarse": coarseCounts,
		},
	}, nil
}

// RunF6 regenerates slides 138-141 and 146-148: the truncated-axis
// pictorial game and the gnuplot sizing rule.
func RunF6(ctx context.Context) (*Result, error) {
	var sb strings.Builder

	// MINE vs YOURS: 2610 vs 2600 drawn with a truncated axis looks like
	// a 2x difference; with a zero-based axis it looks like what it is.
	chart := plot.NewBarChart("MINE is better than YOURS!", "throughput (tx/s)",
		plot.Labels{"MINE", "YOURS"}, []float64{2610, 2600})
	honest, err := plot.ASCII(chart, 60, 0)
	if err != nil {
		return nil, err
	}
	sb.WriteString("zero-based axis (honest):\n" + honest + "\n")
	truncated := plot.NewLineChart("MINE is better than YOURS!", "alternative", "throughput (tx/s)",
		plot.Series{Name: "throughput", Points: []plot.Point{{X: 0, Y: 2610}, {X: 1, Y: 2600}}})
	truncated.YStartsAtZero = false
	vs := plot.Lint(truncated)
	sb.WriteString("truncated-axis version is flagged by the linter:\n")
	for _, v := range vs {
		fmt.Fprintf(&sb, "  - %s\n", v)
	}

	// gnuplot sizing rule.
	sb.WriteString("\ngnuplot sizing (width of plot = x*\\textwidth => set size ratio 0 x*1.5,y):\n")
	var ratios []float64
	for _, frac := range []float64{1.0, 0.5, 0.33} {
		sx, sy := plot.GnuplotSizeRatio(frac)
		ratios = append(ratios, sx)
		fmt.Fprintf(&sb, "  width %.2f\\textwidth -> set size ratio 0 %g,%g\n", frac, sx, sy)
	}
	fmt.Fprintf(&sb, "\nrecommended plot aspect: height = 3/4 width\n")

	return &Result{
		ID: "f6", Title: "Pictorial games", Slides: "138-141, 146-148",
		Text:   sb.String(),
		Series: map[string][]float64{"size-sx": ratios},
	}, nil
}

// RunT8 regenerates slides 202-205: the automatic gnuplot pipeline over
// the paper's results-m1-n5.csv data.
func RunT8(ctx context.Context) (*Result, error) {
	chart := plot.NewLineChart("Execution time for various scale factors",
		"Scale factor", "Execution time (ms)",
		plot.Series{Name: "results", Points: []plot.Point{
			{X: 1, Y: 1234}, {X: 2, Y: 2467}, {X: 3, Y: 4623},
		}})
	data, err := plot.WriteGnuplotData(chart)
	if err != nil {
		return nil, err
	}
	script := plot.GnuplotScript(chart, "results-m1-n5.csv", "results-m1-n5.eps")
	text := "1. data file results-m1-n5.csv:\n\n" + indent(data) +
		"\n2. command file plot-m1-n5.gnu:\n\n" + indent(script) +
		"\n3. run: gnuplot plot-m1-n5.gnu\n"
	return &Result{
		ID: "t8", Title: "Automatically generating graphs with gnuplot", Slides: "202-205",
		Text:   text,
		Series: map[string][]float64{"y": {1234, 2467, 4623}},
	}, nil
}

// RunT9 regenerates slides 212-215: the locale war story — average times
// "13.666" and "12.3333" pasted into a mismatched-locale spreadsheet become
// 13666 and 123333, and the hazard detector catches them.
func RunT9(ctx context.Context) (*Result, error) {
	original := []string{"13.666", "15", "12.3333", "13"}
	var sb strings.Builder
	sb.WriteString("avgs.out (average times over three runs):\n")
	var mangled [][]float64
	var mangledVals []float64
	for i, s := range original {
		m := plot.LocaleMangle(s)
		v, err := strconv.ParseFloat(m, 64)
		if err != nil {
			return nil, err
		}
		mangled = append(mangled, []float64{v})
		mangledVals = append(mangledVals, v)
		fmt.Fprintf(&sb, "  %d  %-8s -> pasted under a '.'-as-thousands locale -> %g\n", i+1, s, v)
	}
	sb.WriteString("\nhazard detector output:\n")
	hazards := plot.DetectLocaleHazards(mangled)
	for _, h := range hazards {
		fmt.Fprintf(&sb, "  - %s\n", h)
	}
	sb.WriteString("\nmoral: generate your own graphs from C-locale data; don't copy-paste\n")
	return &Result{
		ID: "t9", Title: "Why you should generate your own graphs", Slides: "212-215",
		Text:   sb.String(),
		Series: map[string][]float64{"mangled": mangledVals, "hazards": {float64(len(hazards))}},
	}, nil
}

// RunT10 regenerates slides 149-156: under-, right-, and over-specified
// hardware environment reports, plus parsing the paper's own cpuinfo
// sample.
func RunT10(ctx context.Context) (*Result, error) {
	spec := sysinfo.HWSpec{
		CPUVendor: "Intel",
		CPUModel:  "Pentium M (Dothan)",
		ClockHz:   1.5e9,
		Caches: []sysinfo.CacheSpec{
			{Level: "L1", SizeBytes: 32 << 10},
			{Level: "L2", SizeBytes: 2 << 20},
		},
		RAMBytes: 2 << 30,
		Disks:    []sysinfo.DiskSpec{{Description: "Laptop ATA disk @ 5400RPM", SizeBytes: 120 << 30}},
		Network:  "1Gb shared Ethernet",
	}
	var sb strings.Builder
	under := spec.Report(sysinfo.Under)
	right := spec.Report(sysinfo.Right)
	over := spec.Report(sysinfo.Over)
	fmt.Fprintf(&sb, "under-specified (%s):\n  %s\n\n", sysinfo.Classify(under), under)
	fmt.Fprintf(&sb, "right-sized (%s):\n%s\n", sysinfo.Classify(right), indent(right))
	overLines := strings.Count(over, "\n")
	fmt.Fprintf(&sb, "over-specified (%s): %d lines of device listing (elided)\n\n",
		sysinfo.Classify(over), overLines)

	info, err := sysinfo.ParseCPUInfo(paperCPUInfoSample)
	if err != nil {
		return nil, err
	}
	parsed := info.ToHWSpec()
	fmt.Fprintf(&sb, "parsed from the paper's /proc/cpuinfo sample:\n  %s %s at %.2g GHz (rated; the momentary reading was %.0f MHz under frequency scaling)\n",
		parsed.CPUVendor, parsed.CPUModel, parsed.ClockHz/1e9, info.MHz)

	return &Result{
		ID: "t10", Title: "Specifying hardware environments", Slides: "149-156",
		Text: sb.String(),
		Series: map[string][]float64{
			"levels":   {float64(sysinfo.Classify(under)), float64(sysinfo.Classify(right)), float64(sysinfo.Classify(over))},
			"rated-hz": {parsed.ClockHz},
		},
	}, nil
}

const paperCPUInfoSample = `processor	: 0
vendor_id	: GenuineIntel
model name	: Intel(R) Pentium(R) M processor 1.50GHz
cpu MHz		: 600.000
cache size	: 2048 KB
flags		: fpu vme de pse tsc msr mce cx8
`

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
