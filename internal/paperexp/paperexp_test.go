package paperexp

import (
	"context"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestRegistryAndRun(t *testing.T) {
	reg := Registry()
	if len(reg) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete entry %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := Run(context.Background(), "nope"); err == nil {
		t.Error("unknown id should error")
	}
	r, err := Run(context.Background(), "T4") // case-insensitive
	if err != nil || r.ID != "t4" {
		t.Errorf("Run(T4) = %v, %v", r, err)
	}
}

func TestRunAllProduceText(t *testing.T) {
	results, err := RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Text) < 50 {
			t.Errorf("%s: artifact too short (%d bytes)", r.ID, len(r.Text))
		}
		if r.Slides == "" {
			t.Errorf("%s: no slide reference", r.ID)
		}
		if len(r.Series) == 0 {
			t.Errorf("%s: no raw series", r.ID)
		}
	}
}

// TestT1Shape: terminal output costs much more than file output for the
// large result, almost nothing for the small one; server real >= server
// user.
func TestT1Shape(t *testing.T) {
	r, err := RunT1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"q1", "q16"} {
		row := r.Series[q]
		// row: server user, server real, client file real, client term real, bytes
		if len(row) != 5 {
			t.Fatalf("%s row = %v", q, row)
		}
		user, serverReal, clientFile, clientTerm := row[0], row[1], row[2], row[3]
		if !(user <= serverReal && serverReal <= clientFile && clientFile <= clientTerm) {
			t.Errorf("%s: time ordering violated: %v", q, row)
		}
	}
	q1, q16 := r.Series["q1"], r.Series["q16"]
	if q16[4] <= q1[4]*10 {
		t.Errorf("Q16 result (%g B) should dwarf Q1 result (%g B)", q16[4], q1[4])
	}
	// Terminal penalty relative to file output: large for Q16, small for Q1.
	penalty16 := (q16[3] - q16[2]) / q16[2]
	penalty1 := (q1[3] - q1[2]) / q1[2]
	if penalty16 < 5*penalty1 {
		t.Errorf("terminal penalty: q16 %.3f should dwarf q1 %.3f", penalty16, penalty1)
	}
}

// TestT2Shape: cold real >> cold user; hot real == hot user; hot beats cold.
func TestT2Shape(t *testing.T) {
	r, err := RunT2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cold, hot := r.Series["cold"], r.Series["hot"]
	if cold[1] < 2*cold[0] {
		t.Errorf("cold real %.1f should be a multiple of cold user %.1f", cold[1], cold[0])
	}
	if hot[1] != hot[0] {
		t.Errorf("hot real %.1f should equal hot user %.1f", hot[1], hot[0])
	}
	if cold[1] <= hot[1] {
		t.Errorf("cold real %.1f should exceed hot real %.1f", cold[1], hot[1])
	}
}

// TestF1Shape: every DBG/OPT ratio is > 1 and within the paper's observed
// band; ratios vary across queries.
func TestF1Shape(t *testing.T) {
	r, err := RunF1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ratios := r.Series["ratio"]
	if len(ratios) != 22 {
		t.Fatalf("ratios = %d, want 22", len(ratios))
	}
	for i, v := range ratios {
		if v < 1.05 || v > 2.5 {
			t.Errorf("Q%d ratio %.2f outside (1.05, 2.5)", i+1, v)
		}
	}
	if stats.Max(ratios)-stats.Min(ratios) < 0.1 {
		t.Errorf("ratios too uniform (%.2f..%.2f); overheads should be query-dependent",
			stats.Min(ratios), stats.Max(ratios))
	}
}

// TestF2Shape: the memory wall — CPU component collapses across
// generations, total does not, memory dominates at the end.
func TestF2Shape(t *testing.T) {
	r, err := RunF2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cpu, mem, engine := r.Series["cpu"], r.Series["mem"], r.Series["engine"]
	if len(cpu) != 5 || len(mem) != 5 || len(engine) != 5 {
		t.Fatalf("series lengths: %d %d %d", len(cpu), len(mem), len(engine))
	}
	if cpu[0]/cpu[4] < 5 {
		t.Errorf("CPU component should improve >=5x, got %.1fx", cpu[0]/cpu[4])
	}
	total0, total4 := cpu[0]+mem[0], cpu[4]+mem[4]
	if total0/total4 > 4 {
		t.Errorf("total improved %.1fx: too much for a memory wall", total0/total4)
	}
	if mem[4] < cpu[4] {
		t.Errorf("memory (%.1f) should dominate CPU (%.1f) on the 2000 machine", mem[4], cpu[4])
	}
	// The full-engine measurement shows the same flatness.
	if engine[0]/engine[4] > 6 {
		t.Errorf("engine measurement improved %.1fx; wall missing", engine[0]/engine[4])
	}
}

// TestF3Shape: the tuple-at-a-time engine is slower on the same plan.
func TestF3Shape(t *testing.T) {
	r, err := RunF3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	row := r.Series["tuple-at-a-time"][0]
	col := r.Series["column-at-a-time"][0]
	if row <= col {
		t.Errorf("tuple-at-a-time total %.0f should exceed column-at-a-time %.0f", row, col)
	}
	if !strings.Contains(r.Text, "GroupBy") {
		t.Error("profile should show the GroupBy operator")
	}
}

// TestT4PinsPaperNumbers: q0=40, qA=20, qB=10, qAB=5.
func TestT4PinsPaperNumbers(t *testing.T) {
	r, err := RunT4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	q := r.Series["q"]
	want := []float64{40, 20, 10, 5}
	for i := range want {
		if q[i] != want[i] {
			t.Errorf("q[%d] = %g, want %g", i, q[i], want[i])
		}
	}
	if !strings.Contains(r.Text, "y = 40 + 20*xA + 10*xB + 5*xA*xB") {
		t.Errorf("model string missing:\n%s", r.Text)
	}
}

// TestT5PinsPaperPercentages: published variation-explained table.
func TestT5PinsPaperPercentages(t *testing.T) {
	r, err := RunT5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][3]float64{
		"paper-T": {17.2, 77.0, 5.8},
		"paper-N": {20, 80, 0},
		"paper-R": {10.9, 87.8, 1.3},
	}
	for k, w := range want {
		got := r.Series[k]
		for i := range w {
			if diff := got[i] - w[i]; diff > 0.1 || diff < -0.1 {
				t.Errorf("%s[%d] = %.1f, want %.1f", k, i, got[i], w[i])
			}
		}
	}
	// Live simulation: pattern dominates for throughput.
	live := r.Series["live-T"]
	if !(live[1] > live[0] && live[1] > 50) {
		t.Errorf("live throughput: pattern should dominate, got qA=%.1f qB=%.1f", live[0], live[1])
	}
	if !strings.Contains(r.Text, "the address pattern influences most") {
		t.Error("conclusion missing")
	}
}

func TestT6Shape(t *testing.T) {
	r, err := RunT6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range r.Series["column-sums"] {
		if s != 0 {
			t.Errorf("column %c sums to %g, want 0", 'A'+i, s)
		}
	}
	if r.Series["runs"][0] != 8 {
		t.Errorf("runs = %g", r.Series["runs"][0])
	}
}

func TestT7Shape(t *testing.T) {
	r, err := RunT7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res := r.Series["resolution"]
	if res[0] != 4 || res[1] != 3 {
		t.Errorf("resolutions = %v, want [4 3]", res)
	}
	for _, want := range []string{"I = ABCD", "A = BCD", "sparsity of effects", "D=ABC"} {
		if !strings.Contains(r.Text, want) {
			t.Errorf("text missing %q", want)
		}
	}
}

func TestF4Shape(t *testing.T) {
	r, err := RunF4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	counts := r.Series["violations"]
	if len(counts) != 5 {
		t.Fatalf("violation groups = %d", len(counts))
	}
	for i := 0; i < 4; i++ {
		if counts[i] == 0 {
			t.Errorf("bad chart %d produced no violations", i)
		}
	}
	if counts[4] != 0 {
		t.Errorf("good chart produced %g violations", counts[4])
	}
}

func TestF5Shape(t *testing.T) {
	r, err := RunF5(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "indifferent") {
		t.Error("overlapping alternatives should be indifferent")
	}
	if !strings.Contains(r.Text, "A lower") {
		t.Error("disjoint alternatives should decide")
	}
	fine, coarse := r.Series["fine"], r.Series["coarse"]
	if len(fine) <= len(coarse) {
		t.Errorf("coarsening should reduce bins: %d -> %d", len(fine), len(coarse))
	}
	for _, c := range coarse {
		if c < 5 {
			t.Errorf("coarse bin %g below 5-point rule", c)
		}
	}
}

func TestT9Shape(t *testing.T) {
	r, err := RunT9(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	m := r.Series["mangled"]
	if m[0] != 13666 || m[2] != 123333 {
		t.Errorf("mangled = %v", m)
	}
	if r.Series["hazards"][0] != 2 {
		t.Errorf("hazards = %g, want 2", r.Series["hazards"][0])
	}
}

func TestT10Shape(t *testing.T) {
	r, err := RunT10(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	levels := r.Series["levels"]
	if levels[0] != 0 || levels[1] != 1 || levels[2] != 2 {
		t.Errorf("classified levels = %v, want under/right/over", levels)
	}
	if r.Series["rated-hz"][0] != 1.5e9 {
		t.Errorf("rated clock = %g", r.Series["rated-hz"][0])
	}
}

func TestF7Shape(t *testing.T) {
	r, err := RunF7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "436 submissions") || !strings.Contains(r.Text, "298 papers") {
		t.Error("headline numbers missing")
	}
	if len(r.Series) != 3 {
		t.Errorf("charts = %d", len(r.Series))
	}
}

func TestPaperSuite(t *testing.T) {
	s := PaperSuite()
	if err := s.Validate(); err != nil {
		t.Fatalf("paper suite invalid: %v", err)
	}
	if len(s.Experiments) != len(Registry()) {
		t.Errorf("suite covers %d of %d experiments", len(s.Experiments), len(Registry()))
	}
	doc := s.Instructions()
	if !strings.Contains(doc, "perfeval run t1") || !strings.Contains(doc, "go build ./...") {
		t.Error("instructions incomplete")
	}
}

// TestDeterminism: every driver produces byte-identical output across runs
// — the repository applies the paper's repeatability principle to itself.
func TestDeterminism(t *testing.T) {
	for _, e := range Registry() {
		a, err := e.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		b, err := e.Run(context.Background())
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if a.Text != b.Text {
			t.Errorf("%s: output differs between runs", e.ID)
		}
	}
}
