package paperexp

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/hwsim"
	"repro/internal/measure"
	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/tpch"
	"repro/internal/vdb"
)

// Experiment scale factors: small enough for tests and benches to run in
// milliseconds, large enough for stable shapes.
const (
	// sfT1 is larger than the others so Q16's grouped output dwarfs
	// Q1's handful of rows, as in the paper (1.2MB vs 1.3KB at sf=1).
	sfT1 = 0.5
	sfT2 = 0.05
	sfF1 = 0.02
	sfF3 = 0.05
	seed = 2008 // the tutorial's year
)

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// newLaptopCtx builds a simulated execution context on the paper's
// measurement laptop.
func newLaptopCtx(db *vdb.DB) *vdb.ExecContext {
	m := hwsim.PentiumM2005
	return vdb.NewSimContext(db, &m, hwsim.NewVirtualClock())
}

// RunT1 regenerates the paper's slides 23-26: per-query server-user,
// server-real, client-real(file), client-real(terminal) times and result
// size, for Q1 (small output) and Q16 (large output), measured as the last
// of three consecutive hot runs.
func RunT1(ctx context.Context) (*Result, error) {
	db, err := tpch.Gen(sfT1, seed)
	if err != nil {
		return nil, err
	}
	tab := harness.NewTable().Header("Q", "server user (ms)", "server real (ms)",
		"client real file (ms)", "client real terminal (ms)", "result size (bytes)")
	series := map[string][]float64{}

	for _, qn := range []int{1, 16} {
		q, err := tpch.Q(qn)
		if err != nil {
			return nil, err
		}
		var row []float64
		var resultBytes int64
		for _, sink := range []hwsim.Sink{hwsim.SinkServerFile, hwsim.SinkClientFile, hwsim.SinkClientTerminal} {
			ctx := newLaptopCtx(db)
			ctx.Buffers.WarmAll(db.TableNames())
			var sample measure.Sample
			target := measure.TargetFuncs{RunFunc: func() error {
				res, err := vdb.Run(ctx, vdb.ColumnEngine{}, q.Plan)
				if err != nil {
					return err
				}
				resultBytes = vdb.EmitResult(ctx, res, sink)
				return nil
			}}
			proto := measure.LastOfThreeHot(ctx.Clock)
			res, err := proto.Run(target)
			if err != nil {
				return nil, err
			}
			sample = res.Chosen
			if sink == hwsim.SinkServerFile {
				row = append(row, ms(sample.User), ms(sample.Real))
			} else {
				row = append(row, ms(sample.Real))
			}
		}
		row = append(row, float64(resultBytes))
		series[fmt.Sprintf("q%d", qn)] = row
		tab.Row(fmt.Sprintf("%d", qn),
			fmt.Sprintf("%.1f", row[0]), fmt.Sprintf("%.1f", row[1]),
			fmt.Sprintf("%.1f", row[2]), fmt.Sprintf("%.1f", row[3]),
			fmt.Sprintf("%.0f", row[4]))
	}

	return &Result{
		ID: "t1", Title: "Be aware what you measure: where the output goes",
		Slides: "23-26",
		Text: "TPC-H-like workload, sf=" + fmt.Sprint(sfT1) + ", simulated Pentium M laptop,\n" +
			"measured last of three consecutive runs\n\n" + tab.String(),
		Series: series,
		Notes: "Paper used MonetDB/SQL v5.5.0 on real hardware at sf=1; this run uses the " +
			"vdb column engine over the scaled tpch generator on the hwsim laptop model. " +
			"The shape to check: terminal output costs far more than file output for the " +
			"large Q16 result and almost nothing for the small Q1 result.",
	}, nil
}

// RunT2 regenerates slides 33-36: Q1 cold vs hot, user vs real time. The
// shape: cold real >> cold user (disk I/O), hot real ~ hot user.
func RunT2(ctx context.Context) (*Result, error) {
	db, err := tpch.Gen(sfT2, seed)
	if err != nil {
		return nil, err
	}
	q, err := tpch.Q(1)
	if err != nil {
		return nil, err
	}
	run := func(state measure.RunState) (measure.Sample, error) {
		ctx := newLaptopCtx(db)
		target := measure.TargetFuncs{
			ResetFunc: func(s measure.RunState) error {
				if s == measure.Cold {
					ctx.Buffers.FlushAll()
				}
				return nil
			},
			RunFunc: func() error {
				_, err := vdb.Run(ctx, vdb.ColumnEngine{}, q.Plan)
				return err
			},
		}
		var proto measure.Protocol
		if state == measure.Cold {
			proto = measure.ColdSingle(ctx.Clock)
		} else {
			proto = measure.Protocol{Clock: ctx.Clock, State: measure.Hot, Warmup: 1, Runs: 3, Pick: measure.PickLast}
		}
		res, err := proto.Run(target)
		if err != nil {
			return measure.Sample{}, err
		}
		return res.Chosen, nil
	}

	cold, err := run(measure.Cold)
	if err != nil {
		return nil, err
	}
	hot, err := run(measure.Hot)
	if err != nil {
		return nil, err
	}

	tab := harness.NewTable().
		Header("Q", "cold user (ms)", "cold real (ms)", "hot user (ms)", "hot real (ms)").
		Row("1", fmt.Sprintf("%.1f", ms(cold.User)), fmt.Sprintf("%.1f", ms(cold.Real)),
			fmt.Sprintf("%.1f", ms(hot.User)), fmt.Sprintf("%.1f", ms(hot.Real)))

	return &Result{
		ID: "t2", Title: "Hot vs cold runs and user vs real time", Slides: "33-36",
		Text: "TPC-H-like Q1, sf=" + fmt.Sprint(sfT2) + ", simulated Pentium M laptop\n\n" + tab.String(),
		Series: map[string][]float64{
			"cold": {ms(cold.User), ms(cold.Real)},
			"hot":  {ms(hot.User), ms(hot.Real)},
		},
		Notes: "Shape: cold real time is a multiple of cold user time (the difference is " +
			"disk I/O wait); hot real equals hot user. The paper measured 2930/13243 cold " +
			"and 2830/3534 hot at sf=1.",
	}, nil
}

// RunF1 regenerates slides 40-41: the relative execution time DBG/OPT of
// all 22 queries — same engine, same plans, different build mode.
func RunF1(ctx context.Context) (*Result, error) {
	db, err := tpch.Gen(sfF1, seed)
	if err != nil {
		return nil, err
	}
	var ratios []float64
	var xs []float64
	for _, q := range tpch.Queries() {
		times := map[hwsim.BuildMode]time.Duration{}
		for _, mode := range []hwsim.BuildMode{hwsim.Optimized, hwsim.Debug} {
			ctx := newLaptopCtx(db)
			ctx.Mode = mode
			ctx.Buffers.WarmAll(db.TableNames())
			if _, err := vdb.Run(ctx, vdb.ColumnEngine{}, q.Plan); err != nil {
				return nil, fmt.Errorf("Q%d (%s): %w", q.Num, mode, err)
			}
			times[mode] = ctx.Clock.User()
		}
		ratios = append(ratios, float64(times[hwsim.Debug])/float64(times[hwsim.Optimized]))
		xs = append(xs, float64(q.Num))
	}

	pts := make([]plot.Point, len(ratios))
	for i := range ratios {
		pts[i] = plot.Point{X: xs[i], Y: ratios[i]}
	}
	chart := plot.NewLineChart("Relative execution time: DBG/OPT", "TPC-H queries",
		"relative execution time DBG/OPT (ratio)",
		plot.Series{Name: "DBG/OPT", Points: pts})
	ascii, err := plot.ASCII(chart, 66, 14)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID: "f1", Title: "Of apples and oranges: compiler optimization", Slides: "40-41",
		Text:   ascii + fmt.Sprintf("\ngeometric mean ratio: %.2f\n", stats.GeoMean(ratios)),
		Series: map[string][]float64{"ratio": ratios},
		Notes: "Debug builds multiply per-operator CPU work by class-specific factors " +
			"(hwsim.DefaultDebugOverheads); the ratio varies per query because plan shapes " +
			"weight the operator classes differently. The paper observed ratios between " +
			"~1.1 and ~2.2.",
	}, nil
}

// RunF2 regenerates slides 46/51: elapsed time per iteration of
// SELECT MAX(column) across five machine generations, dissected into CPU
// and memory components.
func RunF2(ctx context.Context) (*Result, error) {
	series := hwsim.MemoryWallSeries()
	labels := make([]string, len(series))
	cpu := make([]float64, len(series))
	mem := make([]float64, len(series))
	measured := make([]float64, len(series))

	// Real engine run per machine: SELECT MAX(v) FROM t. The table must
	// exceed the largest L2 in the series (8MB on the Origin 2000), or
	// the cache model absorbs the wall.
	const rows = 3 << 19 // 1.5M rows x 8B = 12MB
	vals := make([]int64, rows)
	for i := range vals {
		vals[i] = int64((i * 2654435761) % 1000000)
	}
	tabl, err := vdb.NewTable("t", vdb.NewIntColumn("v", vals))
	if err != nil {
		return nil, err
	}
	plan := vdb.Scan("t").Aggregate(vdb.MaxOf(vdb.Col("v"), "max_v")).Node()

	for i := range series {
		m := series[i]
		c := m.ScanNsPerValue(8)
		labels[i] = fmt.Sprintf("%d %s %.0fMHz", m.Year, m.CPU, m.ClockHz/1e6)
		cpu[i], mem[i] = c.CPUNs, c.MemNs

		db := vdb.NewDB()
		if err := db.AddTable(tabl); err != nil {
			return nil, err
		}
		ctx := vdb.NewSimContext(db, &m, hwsim.NewVirtualClock())
		ctx.Buffers.WarmAll([]string{"t"})
		if _, err := vdb.Run(ctx, vdb.ColumnEngine{}, plan); err != nil {
			return nil, err
		}
		measured[i] = float64(ctx.Clock.User().Nanoseconds()) / rows
	}

	bar, err := plot.StackedBar("SELECT MAX(column): elapsed time per iteration",
		labels, cpu, mem, "CPU", "memory", "ns/iter", 78)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	b.WriteString(bar)
	b.WriteString("\nfull-engine measurement (vdb column engine, ns per scanned value):\n")
	for i := range series {
		fmt.Fprintf(&b, "  %-28s %.1f\n", labels[i], measured[i])
	}
	return &Result{
		ID: "f2", Title: "Do you know what happens? The memory wall", Slides: "46, 51",
		Text:   b.String(),
		Series: map[string][]float64{"cpu": cpu, "mem": mem, "engine": measured},
		Notes: "CPU clock improves ~10x across 1992-2000 while elapsed time per scanned " +
			"value barely improves: per-line memory latency stays flat and dominates. " +
			"Machine profiles encode published clocks and era-appropriate memory latencies.",
	}, nil
}

// RunF3 regenerates slide 54: per-operator profile of Q1 on a
// tuple-at-a-time interpreter versus a column-at-a-time engine.
func RunF3(ctx context.Context) (*Result, error) {
	db, err := tpch.Gen(sfF3, seed)
	if err != nil {
		return nil, err
	}
	q, err := tpch.Q(1)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	series := map[string][]float64{}
	for _, engine := range []vdb.Engine{vdb.RowEngine{}, vdb.ColumnEngine{}} {
		ctx := newLaptopCtx(db)
		ctx.Buffers.WarmAll(db.TableNames())
		ctx.Profiler = vdb.NewProfiler(engine.Name(), ctx.Clock)
		if _, err := vdb.Run(ctx, engine, q.Plan); err != nil {
			return nil, err
		}
		b.WriteString(ctx.Profiler.String())
		b.WriteByte('\n')
		total := float64(ctx.Profiler.TotalTime())
		series[engine.Name()] = []float64{total}
		for op, d := range ctx.Profiler.SelfTimeByOp() {
			series[engine.Name()+"/"+op] = []float64{100 * float64(d) / total}
		}
	}
	return &Result{
		ID: "f3", Title: "Find out what happens: profiling Q1", Slides: "54",
		Text:   b.String(),
		Series: series,
		Notes: "The paper contrasts a MySQL gprof trace (time in per-tuple interpretation) " +
			"with a MonetDB/MIL trace (time in data movement). Here the same plan runs on " +
			"both vdb engines: the tuple-at-a-time total exceeds the column-at-a-time " +
			"total, with its time spread over per-tuple operator overhead.",
	}, nil
}
