package warehouse

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/runstore"
	"repro/internal/stats"
)

// recomputeCells is the independent oracle: a direct streaming pass
// over one source file via runstore.ScanFile, grouped and aggregated
// the way the index claims to — the property test's ground truth.
func recomputeCells(t *testing.T, abs string) []Cell {
	t.Helper()
	type acc struct {
		cell   Cell
		values map[string][]float64
	}
	cells := make(map[string]*acc)
	var keys []string
	for rec, err := range runstore.ScanFile(abs) {
		if err != nil {
			t.Fatal(err)
		}
		ck := runstore.CellKey(rec.Experiment, rec.Hash)
		a := cells[ck]
		if a == nil {
			a = &acc{
				cell:   Cell{Experiment: rec.Experiment, Hash: rec.Hash, Assignment: rec.Assignment},
				values: make(map[string][]float64),
			}
			cells[ck] = a
			keys = append(keys, ck)
		}
		for resp, v := range rec.Responses {
			a.values[resp] = append(a.values[resp], v)
		}
	}
	var out []Cell
	for _, ck := range keys {
		a := cells[ck]
		var resps []string
		for resp := range a.values {
			resps = append(resps, resp)
		}
		sort.Strings(resps)
		for _, resp := range resps {
			vals := a.values[resp]
			c := a.cell
			c.Response = resp
			c.N = len(vals)
			c.Mean = stats.Mean(vals)
			if len(vals) >= 2 {
				c.Variance = stats.Variance(vals)
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if as, bs := assignmentString(a.Assignment), assignmentString(b.Assignment); as != bs {
			return as < bs
		}
		return a.Response < b.Response
	})
	return out
}

// checkAgainstRecompute asserts every live run's indexed aggregates
// equal the oracle's, cell for cell, bit for bit.
func checkAgainstRecompute(t *testing.T, w *Warehouse) {
	t.Helper()
	for _, r := range w.Runs() {
		want := recomputeCells(t, filepath.Join(w.Root(), filepath.FromSlash(r.Path)))
		if !reflect.DeepEqual(r.Cells, want) {
			t.Fatalf("run %s: indexed cells diverge from streaming recompute:\nindex: %+v\nscan:  %+v",
				r.Path, r.Cells, want)
		}
	}
}

// checkIntervalsAgainstMeanCI asserts the query-time CI rebuilt from
// (n, mean, variance) matches stats.MeanCI over the raw values to
// floating-point noise.
func checkIntervalsAgainstMeanCI(t *testing.T, w *Warehouse) {
	t.Helper()
	for _, r := range w.Runs() {
		values := make(map[string][]float64) // (cellkey, resp) -> raw values
		for rec, err := range runstore.ScanFile(filepath.Join(w.Root(), filepath.FromSlash(r.Path))) {
			if err != nil {
				t.Fatal(err)
			}
			for resp, v := range rec.Responses {
				k := runstore.CellKey(rec.Experiment, rec.Hash) + "/" + resp
				values[k] = append(values[k], v)
			}
		}
		for _, c := range r.Cells {
			if c.N < 2 {
				continue
			}
			raw := values[runstore.CellKey(c.Experiment, c.Hash)+"/"+c.Response]
			want, err := stats.MeanCI(raw, 0.95)
			if err != nil {
				t.Fatal(err)
			}
			got := cellInterval(c, 0.95, 0.05)
			for _, pair := range [][2]float64{{got.Lo, want.Lo}, {got.Hi, want.Hi}, {got.Mean, want.Mean}} {
				if diff := math.Abs(pair[0] - pair[1]); diff > 1e-12*math.Max(1, math.Abs(pair[1])) {
					t.Fatalf("run %s cell %s/%s: rebuilt interval %+v != MeanCI %+v",
						r.Path, c.Hash, c.Response, got, want)
				}
			}
		}
	}
}

// TestPropertyIndexEqualsRecompute drives the warehouse through its
// whole life — cold build, incremental re-ingest, new sources, pruning
// — asserting after every step that the index is exactly what a full
// streaming recomputation over the sources would produce. This is the
// claim that makes O(index) queries trustworthy: the index is never
// stale and never wrong.
func TestPropertyIndexEqualsRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	root := t.TempDir()
	experiments := []string{"exp0", "exp1"}
	levels := []string{"a", "b", "c"}
	responses := []string{"ms", "bytes"}

	randomRecords := func(n int) []runstore.Record {
		var recs []runstore.Record
		for i := 0; i < n; i++ {
			assign := map[string]string{"f": levels[rng.Intn(len(levels))], "g": fmt.Sprint(rng.Intn(2))}
			resps := map[string]float64{responses[rng.Intn(len(responses))]: rng.NormFloat64()*10 + 100}
			if rng.Intn(2) == 0 {
				resps[responses[rng.Intn(len(responses))]] = rng.Float64() * 1000
			}
			recs = append(recs, mkRec(experiments[rng.Intn(len(experiments))], assign, rng.Intn(5), resps))
		}
		return recs
	}

	// Cold build over a mixed-format directory.
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("run%d.jsonl", i)
		write := writeJournal
		if i%2 == 1 {
			name = fmt.Sprintf("run%d.binj", i)
			write = writeBinary
		}
		write(t, filepath.Join(root, name), randomRecords(20+rng.Intn(30)), baseTime.Add(time.Duration(i)*time.Second))
	}
	w := openTest(t, root)
	if _, err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, w)
	checkIntervalsAgainstMeanCI(t, w)

	// Incremental re-ingest: append to an existing source and add a new
	// one; the refresh must pick up exactly those.
	writeJournal(t, filepath.Join(root, "run0.jsonl"), randomRecords(15), baseTime.Add(10*time.Second))
	writeJournal(t, filepath.Join(root, "run9.jsonl"), randomRecords(25), baseTime.Add(11*time.Second))
	rs, err := w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ingested != 2 {
		t.Fatalf("incremental refresh = %+v, want exactly 2 ingested", rs)
	}
	checkAgainstRecompute(t, w)
	checkIntervalsAgainstMeanCI(t, w)

	// Retention: prune to the newest 3, then verify the survivors are
	// exactly the 3 newest and still match the oracle.
	if _, err := w.Prune(Retention{KeepRuns: 3}); err != nil {
		t.Fatal(err)
	}
	live := w.Runs()
	if len(live) != 3 {
		t.Fatalf("live after prune = %d, want 3", len(live))
	}
	for i := 1; i < len(live); i++ {
		if live[i-1].ModTimeNS > live[i].ModTimeNS {
			t.Fatalf("live runs out of order: %+v", live)
		}
	}
	checkAgainstRecompute(t, w)

	// The pruned set must be exactly the expired runs: reopening from
	// the persisted index agrees.
	runs, pruned, torn, err := InspectIndex(filepath.Join(root, IndexFile))
	if err != nil {
		t.Fatal(err)
	}
	if runs != 5 || pruned != 2 || torn {
		t.Fatalf("persisted index = (%d runs, %d pruned, torn=%v), want (5, 2, false)", runs, pruned, torn)
	}
}

// TestConcurrentQueryRefresh hammers Query against Refresh and Prune —
// the collector-daemon usage — and is meaningful under -race (make
// check runs it so).
func TestConcurrentQueryRefresh(t *testing.T) {
	root := t.TempDir()
	cell := map[string]string{"f": "x"}
	for i := 0; i < 3; i++ {
		writeJournal(t, filepath.Join(root, fmt.Sprintf("r%d.jsonl", i)), []runstore.Record{
			mkRec("e", cell, 0, map[string]float64{"ms": float64(i)}),
			mkRec("e", cell, 1, map[string]float64{"ms": float64(i) + 1}),
		}, baseTime.Add(time.Duration(i)*time.Second))
	}
	w := openTest(t, root)
	if _, err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := w.Query(Request{Kind: KindHistory, Cell: runstore.AssignmentHash(cell)}); err != nil {
					t.Error(err)
					return
				}
				if _, err := w.Query(Request{Kind: KindRuns}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if _, err := w.Refresh(); err != nil {
				t.Error(err)
				return
			}
			if _, err := w.Prune(Retention{KeepRuns: 100}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
