package warehouse

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzWarehouseIndex feeds arbitrary byte streams — valid indexes, torn
// tails, corrupt frames, absurd length claims — through the index-file
// decoder, the same discipline FuzzJournalParse and FuzzBinaryDecode
// pin for the record stores. The properties under test:
//
//  1. The decoder is total: readFrames and OpenFileEngine decode or
//     error, whatever the bytes are — never a panic, never an
//     unbounded allocation from a corrupt length field.
//  2. When OpenFileEngine accepts the file, the index stays writable
//     and every run it served survives a Put + reopen round trip — the
//     durability claim Refresh's incremental skip depends on.
func FuzzWarehouseIndex(f *testing.F) {
	frame := func(r Run) []byte {
		out, err := encodeIndexFrame(r)
		if err != nil {
			f.Fatal(err)
		}
		return out
	}
	valid := frame(Run{Path: "a.jsonl", Size: 9, ModTimeNS: 10, Records: 1})
	tomb := frame(Run{Path: "b.jsonl", ModTimeNS: 20, Pruned: true})
	f.Add([]byte(""))
	f.Add([]byte(IndexMagic))
	f.Add(append([]byte(IndexMagic), valid...))
	f.Add(append(append([]byte(IndexMagic), valid...), tomb...))
	f.Add(append(append([]byte(IndexMagic), valid...), valid[:len(valid)-3]...)) // torn tail
	f.Add(append([]byte(IndexMagic), valid[:idxFrameHeaderSize-2]...))           // short header
	f.Add(append([]byte(IndexMagic), 0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0))        // absurd length claim
	f.Add(append([]byte(IndexMagic), 3, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3)) // bad checksum
	f.Add([]byte("NOTANIDX"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: the frame decoder is total, with or without magic.
		readFrames(data)
		readFrames(append([]byte(IndexMagic), data...))

		path := filepath.Join(t.TempDir(), "fuzz.idx")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		e, err := OpenFileEngine(path)
		if err != nil {
			return // rejected (foreign magic, corrupt frame); rejecting is fine, panicking is not
		}
		served := e.Runs()
		extra := Run{Path: "fuzz-extra.jsonl", Size: 1, ModTimeNS: 1, Records: 1}
		if err := e.Put(extra); err != nil {
			t.Fatalf("put into reopened index failed: %v", err)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("close failed: %v", err)
		}

		e2, err := OpenFileEngine(path)
		if err != nil {
			t.Fatalf("index unreadable after put: %v", err)
		}
		defer e2.Close()
		after := make(map[string]Run)
		for _, r := range e2.Runs() {
			after[r.Path] = r
		}
		for _, r := range served {
			if r.Path == extra.Path {
				continue // the fuzz input happened to collide with the probe run
			}
			got, ok := after[r.Path]
			if !ok {
				t.Fatalf("run %s lost in round trip", r.Path)
			}
			if !reflect.DeepEqual(got, r) {
				t.Fatalf("run %s changed in round trip: %+v -> %+v", r.Path, r, got)
			}
		}
		if _, ok := after[extra.Path]; !ok {
			t.Fatal("put run lost after reopen")
		}
	})
}
