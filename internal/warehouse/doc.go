// Package warehouse turns a directory of finished run stores into a
// queryable result history — the fourth pillar next to execute
// (internal/sched), store (internal/runstore), and collect
// (internal/collector).
//
// Three layers:
//
//   - The catalog (Discover, Warehouse.Refresh) walks a root directory
//     for store files every runstore reader understands — JSONL
//     journals, binary journals, block-indexed archives — and treats
//     each file as one *run*. Refresh is incremental: a source whose
//     size and modification time are unchanged is never re-read, and a
//     changed one is re-ingested whole (its run summary is replaced,
//     last-wins). Sources that vanish stay in the index: the warehouse
//     is the history, the store files are only its substrate.
//   - The cell-history index (Engine, the default checksummed file
//     engine) persists one summary per run: per (experiment, cell,
//     response) aggregates — replicate count, mean, unbiased sample
//     variance — from which confidence intervals are rebuilt at query
//     time via internal/stats. Queries are O(index) and never touch
//     the source record blocks; deleting every source file after a
//     Refresh changes no answer.
//   - The query core (Request, Result, Warehouse.Query) answers run
//     listings, per-cell history, per-experiment trend lines, and
//     regression listings reusing the CI-shift rule of the runstore
//     regression gate (disjoint intervals, higher mean = regressed).
//     The same core backs repro.Query, `perfeval query`, and the
//     collector daemon's GET /v1/query, so they cannot drift.
//
// Durability contract: the index file is append-only in the binary
// journal's framing discipline (magic header, length-prefixed CRC-32C
// frames, one fsync per Put); a crash leaves at most one torn trailing
// frame, truncated on the next open. Because length-prefixed framing
// cannot resynchronize, a frame that fails its checksum ends the
// readable region exactly like a torn tail — the entries it hid are
// re-ingested by the next Refresh, so the index self-heals instead of
// serving a silently shortened history as complete. Two shapes a torn
// single-write append cannot produce are errors: a complete header
// claiming an impossible payload length, and a checksum-valid payload
// that does not decode. A foreign magic header is always an error. The
// index expects one writer at a time; concurrent writers stay
// consistent (appends are O_APPEND atomic, entries are last-wins by
// run path) but may duplicate frames.
//
// Concurrency contract: a Warehouse is safe for concurrent use —
// Refresh, Prune, and Query serialize on an internal mutex, so a
// long-lived embedder (the collector daemon) can serve queries while
// the catalog refreshes.
//
// Retention (Warehouse.Prune) drops expired runs from the index only —
// source files are never touched — by replacing each expired entry
// with a tombstone that remembers the source's size and modification
// time, so a later Refresh does not silently resurrect it.
//
// The Engine seam exists so an indexed SQL engine (e.g. a sqlite
// backend) can replace the file engine without touching the catalog or
// the query core; the default engine is dependency-free on purpose —
// building this repository must never need the network.
package warehouse
