package warehouse

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// storeExts are the file extensions the catalog treats as run stores.
// Discovery is by extension (content sniffing happens when the file is
// read — a renamed archive still parses), matching every on-disk format
// the runstore readers understand.
var storeExts = map[string]bool{
	".jsonl": true, // JSONL journal (and shard files)
	".binj":  true, // binary journal
	".arch":  true, // block-indexed archive
	".archz": true, // compressed-block archive
}

// collectorStateFile is the collector daemon's control-state journal
// (collector.StateFile). It shares the .jsonl extension but holds lease
// events, not records, so the catalog skips it by name — the warehouse
// package cannot import the collector (the daemon embeds a warehouse)
// and the file name is part of the documented on-disk contract.
const collectorStateFile = "collector.state.jsonl"

// Discover walks root and returns the catalog's candidate store files
// as sorted slash-separated paths relative to root. Hidden files and
// directories (dot-prefixed), the warehouse's own index file, and the
// collector's control-state journal are skipped; everything else with a
// store extension is a candidate — each file is one run.
func Discover(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, werr error) error {
		if werr != nil {
			return werr
		}
		name := d.Name()
		if d.IsDir() {
			if p != root && strings.HasPrefix(name, ".") {
				return fs.SkipDir
			}
			return nil
		}
		if strings.HasPrefix(name, ".") || name == IndexFile || name == collectorStateFile {
			return nil
		}
		if !storeExts[strings.ToLower(filepath.Ext(name))] {
			return nil
		}
		rel, rerr := filepath.Rel(root, p)
		if rerr != nil {
			return rerr
		}
		out = append(out, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("warehouse: discovering %s: %w", root, err)
	}
	sort.Strings(out)
	return out, nil
}
