package warehouse

import "repro/internal/obs"

// metrics holds the warehouse's instruments. The series are documented
// in docs/OBSERVABILITY.md; names are part of the stability contract.
type metrics struct {
	ingestRecords *obs.Counter   // warehouse_ingest_records_total
	ingestRuns    *obs.Counter   // warehouse_ingest_runs_total
	queries       *obs.Counter   // warehouse_queries_total
	querySeconds  *obs.Histogram // warehouse_query_seconds
}

// newMetrics registers (get-or-create) the warehouse instruments in reg.
func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		ingestRecords: reg.Counter("warehouse_ingest_records_total",
			"Records aggregated into the warehouse index by catalog ingest."),
		ingestRuns: reg.Counter("warehouse_ingest_runs_total",
			"Source stores (runs) ingested or re-ingested into the warehouse index."),
		queries: reg.Counter("warehouse_queries_total",
			"Warehouse queries answered, across every surface (library, CLI, collector)."),
		querySeconds: reg.Histogram("warehouse_query_seconds",
			"Warehouse query latency in seconds.", obs.DefBuckets),
	}
}
