package warehouse

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
	"sync"
)

// Run is one ingested store file's summary — the unit of history. Path
// (relative to the warehouse root, slash-separated) is the run's
// identity; Size, ModTimeNS, and Fingerprint are the change-detection
// seam Refresh uses; Cells carry the per-cell aggregates every query
// answers from.
type Run struct {
	// Path is the run id: the source file's slash path under the root.
	Path string `json:"path"`
	// Size is the source file's byte size at ingest time.
	Size int64 `json:"size"`
	// ModTimeNS is the source file's modification time (Unix
	// nanoseconds) at ingest time; history orders runs by it.
	ModTimeNS int64 `json:"mod_time_ns"`
	// IngestTimeNS is when the warehouse first ingested this content
	// (Unix nanoseconds); a re-ingest whose content fingerprint is
	// unchanged keeps it.
	IngestTimeNS int64 `json:"ingest_time_ns"`
	// Fingerprint is an order-independent combination of every record's
	// runstore.Fingerprint and key — equal record sets fingerprint
	// identically regardless of store format or record order.
	Fingerprint uint64 `json:"fingerprint"`
	// Format names the source's on-disk format ("journal", "binary",
	// "archive"), for display only.
	Format string `json:"format"`
	// Records is the distinct last-wins record count of the source.
	Records int `json:"records"`
	// Pruned marks a retention tombstone: the run left the queryable
	// history but its identity (and change-detection meta) is kept so a
	// Refresh does not silently resurrect it.
	Pruned bool `json:"pruned,omitempty"`
	// Cells are the run's per-(experiment, cell, response) aggregates,
	// sorted by (experiment, assignment, response). Empty on tombstones.
	Cells []Cell `json:"cells,omitempty"`
}

// Cell is one (experiment, design cell, response) aggregate of one run:
// everything a Student-t confidence interval needs, without the raw
// replicate values.
type Cell struct {
	// Experiment names the experiment the cell belongs to.
	Experiment string `json:"experiment"`
	// Hash is the cell's assignment hash (runstore.AssignmentHash).
	Hash string `json:"hash"`
	// Assignment is the cell's factor-level assignment.
	Assignment map[string]string `json:"assignment"`
	// Response names the measured response.
	Response string `json:"response"`
	// N is the replicate count.
	N int `json:"n"`
	// Mean is the arithmetic mean of the replicate values.
	Mean float64 `json:"mean"`
	// Variance is the unbiased sample variance (divisor n-1); 0 when
	// N < 2.
	Variance float64 `json:"variance"`
}

// Engine is the storage seam the warehouse index sits behind. The
// default is the dependency-free checksummed file engine
// (OpenFileEngine); an indexed SQL engine can replace it without
// touching the catalog or the query core. Implementations must be safe
// for concurrent use.
type Engine interface {
	// Runs returns the last-wins view of every indexed run — tombstones
	// included — sorted by (ModTimeNS, Path).
	Runs() []Run
	// Put durably inserts or replaces one run's summary, keyed by Path.
	Put(Run) error
	// Close releases the engine's resources; Runs keeps serving the
	// in-memory view, Put fails afterwards.
	Close() error
}

const (
	// IndexMagic is the 8-byte header every warehouse index file starts
	// with. The digit is the format version: an incompatible change to
	// the frame or payload layout bumps it, so old readers reject new
	// files instead of misparsing them.
	IndexMagic = "PEVWHS1\n"
	// IndexFile is the default index file name under the warehouse root.
	// The catalog never ingests it.
	IndexFile = "warehouse.idx"

	idxFrameHeaderSize = 4 + 4 // payload length, payload CRC

	// maxIndexFrame bounds a frame payload so a corrupt length field
	// cannot drive a multi-gigabyte allocation during recovery scans.
	maxIndexFrame = 1 << 28
)

// idxCastagnoli is the CRC-32C table every index frame checksum uses —
// the same polynomial as the binary record journal.
var idxCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// fileEngine is the default Engine: an append-only file of
// length-prefixed CRC-32C frames, each framing one Run's JSON document,
// with the binary journal's crash discipline — one write plus one fsync
// per Put, torn trailing frame truncated on open, corrupt interior
// frame an error.
type fileEngine struct {
	mu   sync.Mutex
	path string
	f    *os.File
	runs map[string]Run // last-wins by Run.Path
	torn bool
}

// OpenFileEngine opens (creating if absent) the index file at path.
// A torn trailing frame — a crash mid-Put — is truncated; a corrupt
// interior frame or a foreign magic header is an error, because
// silently dropping indexed history would let a stale index masquerade
// as a fresh one.
func OpenFileEngine(path string) (Engine, error) {
	e := &fileEngine{path: path, runs: make(map[string]Run)}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("warehouse: %w", err)
	}
	keep, err := e.parse(data)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %s: %w", path, err)
	}
	// O_APPEND makes each Put's single Write land atomically at EOF, so
	// concurrent writers interleave whole frames, never halves.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %w", err)
	}
	if keep < int64(len(data)) {
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, fmt.Errorf("warehouse: truncating torn index tail: %w", err)
		}
	}
	if len(data) == 0 {
		if _, err := f.WriteString(IndexMagic); err != nil {
			f.Close()
			return nil, fmt.Errorf("warehouse: %w", err)
		}
	}
	e.f = f
	return e, nil
}

// parse loads every complete frame from data and returns the byte
// offset up to which the file is intact. An empty file is a fresh
// index; anything shorter than the magic, or with the wrong magic, is
// foreign. The torn-tail discipline is the binary journal's:
// length-prefixed framing cannot resynchronize, so the first invalid
// frame — short header, short payload, checksum mismatch — ends the
// readable region (torn=true, everything before it kept), while two
// shapes a torn single-write append cannot produce are errors: a
// complete header claiming an impossible payload length, and a
// checksum-valid payload that does not decode.
func (e *fileEngine) parse(data []byte) (keep int64, err error) {
	if len(data) == 0 {
		return 0, nil
	}
	if len(data) < len(IndexMagic) || string(data[:len(IndexMagic)]) != IndexMagic {
		return 0, fmt.Errorf("not a warehouse index (bad magic)")
	}
	off := int64(len(IndexMagic))
	rest := data[off:]
	for len(rest) > 0 {
		if len(rest) < idxFrameHeaderSize {
			e.torn = true
			return off, nil
		}
		plen := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if plen > maxIndexFrame {
			return 0, fmt.Errorf("corrupt index frame at byte %d: impossible payload length %d", off, plen)
		}
		if int64(len(rest)) < int64(idxFrameHeaderSize)+int64(plen) {
			e.torn = true
			return off, nil
		}
		payload := rest[idxFrameHeaderSize : idxFrameHeaderSize+int(plen)]
		if crc32.Checksum(payload, idxCastagnoli) != sum {
			e.torn = true
			return off, nil
		}
		var r Run
		if uerr := json.Unmarshal(payload, &r); uerr != nil {
			return 0, fmt.Errorf("corrupt index frame at byte %d: %v", off, uerr)
		}
		if r.Path == "" {
			return 0, fmt.Errorf("corrupt index frame at byte %d: run without a path", off)
		}
		e.runs[r.Path] = r
		off += int64(idxFrameHeaderSize) + int64(plen)
		rest = rest[idxFrameHeaderSize+int(plen):]
	}
	return off, nil
}

// Runs implements Engine.
func (e *fileEngine) Runs() []Run {
	e.mu.Lock()
	out := make([]Run, 0, len(e.runs))
	for _, r := range e.runs {
		out = append(out, r)
	}
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].ModTimeNS != out[j].ModTimeNS {
			return out[i].ModTimeNS < out[j].ModTimeNS
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// encodeIndexFrame frames one Run as its on-disk index bytes: the
// length-prefixed CRC-32C header followed by the JSON payload.
func encodeIndexFrame(r Run) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %w", err)
	}
	frame := make([]byte, idxFrameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, idxCastagnoli))
	copy(frame[idxFrameHeaderSize:], payload)
	return frame, nil
}

// Put implements Engine: one frame appended with a single Write call
// followed by Sync, so a crash leaves at most one torn frame.
func (e *fileEngine) Put(r Run) error {
	if r.Path == "" {
		return fmt.Errorf("warehouse: run needs a path")
	}
	frame, err := encodeIndexFrame(r)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return fmt.Errorf("warehouse: index %s is closed", e.path)
	}
	if _, err := e.f.Write(frame); err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	if err := e.f.Sync(); err != nil {
		return fmt.Errorf("warehouse: %w", err)
	}
	e.runs[r.Path] = r
	return nil
}

// Close implements Engine.
func (e *fileEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.f == nil {
		return nil
	}
	err := e.f.Close()
	e.f = nil
	return err
}

// Torn reports whether a torn trailing frame was truncated on open —
// surfaced for tests and inspection tooling.
func (e *fileEngine) Torn() bool { return e.torn }

// InspectIndex reports the shape of an index file without opening it
// for writing: run and tombstone counts and whether the tail was torn.
func InspectIndex(path string) (runs, pruned int, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("warehouse: %w", err)
	}
	e := &fileEngine{runs: make(map[string]Run)}
	if _, err := e.parse(data); err != nil {
		return 0, 0, false, fmt.Errorf("warehouse: %s: %w", path, err)
	}
	for _, r := range e.runs {
		if r.Pruned {
			pruned++
		}
	}
	return len(e.runs), pruned, e.torn, nil
}

// readFrames is a test seam: it decodes every frame of an index byte
// stream through the same parser Open uses, reporting the intact run
// view — the fuzz target drives the decoder through it.
func readFrames(data []byte) (map[string]Run, bool, error) {
	e := &fileEngine{runs: make(map[string]Run)}
	if _, err := e.parse(data); err != nil {
		return nil, false, err
	}
	return e.runs, e.torn, nil
}
