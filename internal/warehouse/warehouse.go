package warehouse

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/design"
	"repro/internal/obs"
	"repro/internal/runstore"
	"repro/internal/stats"
)

// Options configure a Warehouse beyond its root directory. The zero
// value is the deployed default: index file <root>/warehouse.idx on the
// dependency-free file engine, instruments in the process-wide
// registry, wall-clock ingest times.
type Options struct {
	// IndexPath overrides where the index file lives; empty means
	// <root>/warehouse.idx. Ignored when Engine is set.
	IndexPath string
	// Engine overrides the storage engine behind the index; nil means
	// the checksummed file engine at IndexPath. The Warehouse owns the
	// engine and closes it.
	Engine Engine
	// Metrics is the registry the warehouse instruments register in;
	// nil means the process-wide obs.Default().
	Metrics *obs.Registry
	// Clock is the ingest-time source; nil means time.Now. Tests pin it.
	Clock func() time.Time
}

// Warehouse is a queryable result history over a directory of run
// stores. Open one with Open, keep it refreshed with Refresh, ask it
// questions with Query, bound it with Prune, and Close it when done.
// All methods are safe for concurrent use.
type Warehouse struct {
	mu    sync.Mutex // serializes Refresh, Prune, and Query
	root  string
	eng   Engine
	met   *metrics
	clock func() time.Time
}

// Open opens the warehouse over root (which must exist), loading the
// index through the configured engine. Open never reads a record: a
// warehouse over a million-record directory opens in O(index).
func Open(root string, opts Options) (*Warehouse, error) {
	st, err := os.Stat(root)
	if err != nil {
		return nil, fmt.Errorf("warehouse: %w", err)
	}
	if !st.IsDir() {
		return nil, fmt.Errorf("warehouse: root %s is not a directory", root)
	}
	eng := opts.Engine
	if eng == nil {
		path := opts.IndexPath
		if path == "" {
			path = filepath.Join(root, IndexFile)
		}
		if eng, err = OpenFileEngine(path); err != nil {
			return nil, err
		}
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	clock := opts.Clock
	if clock == nil {
		clock = time.Now
	}
	return &Warehouse{root: root, eng: eng, met: newMetrics(reg), clock: clock}, nil
}

// Root returns the directory the warehouse catalogs.
func (w *Warehouse) Root() string { return w.root }

// Close releases the engine. Queries keep serving the in-memory view;
// Refresh and Prune fail afterwards.
func (w *Warehouse) Close() error { return w.eng.Close() }

// RefreshStats reports what one Refresh did.
type RefreshStats struct {
	// Candidates is how many store files the catalog discovered.
	Candidates int
	// Ingested is how many sources were read end to end — new sources
	// plus sources whose size or modification time changed.
	Ingested int
	// Unchanged is how many sources were skipped without reading a
	// record because size and modification time matched the index.
	Unchanged int
	// Records is how many records the ingested sources contributed.
	Records int
}

// Refresh reconciles the index with the catalog: new and changed
// sources are (re-)ingested, unchanged sources are skipped on a stat
// alone, and indexed runs whose source files vanished are kept — the
// warehouse is the history, the files only its substrate. A re-ingest
// whose content fingerprint is unchanged (the file was touched, not
// rewritten) keeps the run's original ingest time. A pruned run's
// tombstone suppresses re-ingest until its source actually changes.
func (w *Warehouse) Refresh() (RefreshStats, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var rs RefreshStats
	candidates, err := Discover(w.root)
	if err != nil {
		return rs, err
	}
	rs.Candidates = len(candidates)
	indexed := make(map[string]Run)
	for _, r := range w.eng.Runs() {
		indexed[r.Path] = r
	}
	for _, rel := range candidates {
		st, err := os.Stat(filepath.Join(w.root, filepath.FromSlash(rel)))
		if err != nil {
			return rs, fmt.Errorf("warehouse: %s: %w", rel, err)
		}
		prev, known := indexed[rel]
		if known && prev.Size == st.Size() && prev.ModTimeNS == st.ModTime().UnixNano() {
			rs.Unchanged++
			continue
		}
		run, err := w.ingest(rel, st)
		if err != nil {
			return rs, err
		}
		if known && prev.Fingerprint == run.Fingerprint && !prev.Pruned {
			run.IngestTimeNS = prev.IngestTimeNS // touched, not changed
		}
		if err := w.eng.Put(run); err != nil {
			return rs, err
		}
		rs.Ingested++
		rs.Records += run.Records
		w.met.ingestRuns.Inc()
		w.met.ingestRecords.Add(int64(run.Records))
	}
	return rs, nil
}

// ingest reads one source end to end and builds its run summary: the
// per-cell aggregates (replicate count, mean, unbiased variance over
// the distinct last-wins records) and the order-independent content
// fingerprint. It is the only place the warehouse reads record data.
func (w *Warehouse) ingest(rel string, st os.FileInfo) (Run, error) {
	abs := filepath.Join(w.root, filepath.FromSlash(rel))
	type acc struct {
		experiment string
		hash       string
		assignment map[string]string
		values     map[string][]float64 // response -> replicate values, scan order
	}
	cells := make(map[string]*acc) // CellKey -> acc
	var order []string
	var records int
	var fp uint64
	for rec, err := range runstore.ScanFile(abs) {
		if err != nil {
			return Run{}, fmt.Errorf("warehouse: ingesting %s: %w", rel, err)
		}
		records++
		fp ^= recordFingerprint(rec)
		ck := runstore.CellKey(rec.Experiment, rec.Hash)
		c := cells[ck]
		if c == nil {
			c = &acc{
				experiment: rec.Experiment,
				hash:       rec.Hash,
				assignment: rec.Assignment,
				values:     make(map[string][]float64),
			}
			cells[ck] = c
			order = append(order, ck)
		}
		for resp, v := range rec.Responses {
			c.values[resp] = append(c.values[resp], v)
		}
	}
	run := Run{
		Path:         rel,
		Size:         st.Size(),
		ModTimeNS:    st.ModTime().UnixNano(),
		IngestTimeNS: w.clock().UnixNano(),
		Fingerprint:  fp,
		Format:       formatName(rel),
		Records:      records,
	}
	for _, ck := range order {
		c := cells[ck]
		resps := make([]string, 0, len(c.values))
		for resp := range c.values {
			resps = append(resps, resp)
		}
		sort.Strings(resps)
		for _, resp := range resps {
			vals := c.values[resp]
			cell := Cell{
				Experiment: c.experiment,
				Hash:       c.hash,
				Assignment: c.assignment,
				Response:   resp,
				N:          len(vals),
				Mean:       stats.Mean(vals),
			}
			if len(vals) >= 2 {
				cell.Variance = stats.Variance(vals)
			}
			run.Cells = append(run.Cells, cell)
		}
	}
	sort.Slice(run.Cells, func(i, j int) bool {
		a, b := run.Cells[i], run.Cells[j]
		if a.Experiment != b.Experiment {
			return a.Experiment < b.Experiment
		}
		if as, bs := assignmentString(a.Assignment), assignmentString(b.Assignment); as != bs {
			return as < bs
		}
		return a.Response < b.Response
	})
	return run, nil
}

// recordFingerprint folds one record's identity and measurement into
// the run fingerprint: runstore.Fingerprint (assignment + responses)
// mixed with the record key, combined order-independently by the
// caller's XOR so equal record sets fingerprint identically across
// formats and orders.
func recordFingerprint(rec runstore.Record) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, b := range []byte(rec.Key()) {
		h = (h ^ uint64(b)) * prime64
	}
	m := runstore.Fingerprint(rec)
	for i := 0; i < 8; i++ {
		h = (h ^ (m >> (8 * i) & 0xff)) * prime64
	}
	return h
}

// formatName maps a source extension to its display format name.
func formatName(rel string) string {
	switch strings.ToLower(filepath.Ext(rel)) {
	case ".binj":
		return "binary"
	case ".arch", ".archz":
		return "archive"
	default:
		return "journal"
	}
}

// assignmentString renders an assignment in the repository's canonical
// sorted "k=v k=v" form — the cell identity queries match against.
func assignmentString(a map[string]string) string {
	return design.Assignment(a).String()
}

// Runs returns the live (non-pruned) indexed runs, oldest first by
// source modification time.
func (w *Warehouse) Runs() []Run {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.liveRuns()
}

func (w *Warehouse) liveRuns() []Run {
	var out []Run
	for _, r := range w.eng.Runs() {
		if !r.Pruned {
			out = append(out, r)
		}
	}
	return out
}

// Retention is the warehouse's pruning policy. Both knobs bound the
// index; a run is pruned when either says so.
type Retention struct {
	// KeepRuns, when > 0, keeps only the newest KeepRuns live runs (by
	// source modification time).
	KeepRuns int
	// MaxAge, when > 0, prunes live runs whose source modification time
	// is older than MaxAge before now.
	MaxAge time.Duration
}

// PruneStats reports what one Prune did.
type PruneStats struct {
	// Pruned is how many runs were tombstoned by this call.
	Pruned int
	// Kept is how many live runs remain.
	Kept int
}

// Prune applies a retention policy to the index: expired runs are
// replaced by tombstones (their aggregates drop out of every query,
// their identity and change-detection meta stay so a Refresh does not
// resurrect them). Source files are never touched. Prune is idempotent
// for a fixed policy and clock.
func (w *Warehouse) Prune(pol Retention) (PruneStats, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var ps PruneStats
	live := w.liveRuns() // oldest first
	now := w.clock()
	expired := make(map[string]bool)
	if pol.MaxAge > 0 {
		cutoff := now.Add(-pol.MaxAge).UnixNano()
		for _, r := range live {
			if r.ModTimeNS < cutoff {
				expired[r.Path] = true
			}
		}
	}
	if pol.KeepRuns > 0 && len(live) > pol.KeepRuns {
		for _, r := range live[:len(live)-pol.KeepRuns] {
			expired[r.Path] = true
		}
	}
	for _, r := range live {
		if !expired[r.Path] {
			ps.Kept++
			continue
		}
		tomb := Run{
			Path:         r.Path,
			Size:         r.Size,
			ModTimeNS:    r.ModTimeNS,
			IngestTimeNS: r.IngestTimeNS,
			Fingerprint:  r.Fingerprint,
			Format:       r.Format,
			Records:      r.Records,
			Pruned:       true,
		}
		if err := w.eng.Put(tomb); err != nil {
			return ps, err
		}
		ps.Pruned++
	}
	return ps, nil
}
