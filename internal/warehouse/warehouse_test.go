package warehouse

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runstore"
)

// mkRec builds one record the way the harness does: the hash is the
// assignment's canonical hash, so cell identities match across stores.
func mkRec(exp string, assign map[string]string, rep int, resps map[string]float64) runstore.Record {
	return runstore.Record{
		Experiment: exp,
		Replicate:  rep,
		Hash:       runstore.AssignmentHash(assign),
		Assignment: assign,
		Responses:  resps,
	}
}

// writeJournal writes recs as a JSONL journal at path and pins its
// modification time so run ordering is deterministic.
func writeJournal(t *testing.T, path string, recs []runstore.Record, mod time.Time) {
	t.Helper()
	j, err := runstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mod, mod); err != nil {
		t.Fatal(err)
	}
}

// writeBinary is writeJournal for the binary journal format.
func writeBinary(t *testing.T, path string, recs []runstore.Record, mod time.Time) {
	t.Helper()
	j, err := runstore.OpenBinary(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mod, mod); err != nil {
		t.Fatal(err)
	}
}

// openTest opens a warehouse over root with a private metrics registry
// and a fixed clock.
func openTest(t *testing.T, root string) *Warehouse {
	t.Helper()
	w, err := Open(root, Options{
		Metrics: obs.NewRegistry(),
		Clock:   func() time.Time { return time.Unix(1000, 0) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

var baseTime = time.Unix(500, 0)

func TestDiscoverSkips(t *testing.T) {
	root := t.TempDir()
	recs := []runstore.Record{mkRec("e", map[string]string{"f": "x"}, 0, map[string]float64{"ms": 1})}
	writeJournal(t, filepath.Join(root, "a.jsonl"), recs, baseTime)
	writeBinary(t, filepath.Join(root, "sub", "b.binj"), recs, baseTime)
	// Everything below must be invisible to the catalog.
	writeJournal(t, filepath.Join(root, collectorStateFile), recs, baseTime)
	writeJournal(t, filepath.Join(root, ".hidden.jsonl"), recs, baseTime)
	writeJournal(t, filepath.Join(root, ".snapshots", "c.jsonl"), recs, baseTime)
	for _, name := range []string{IndexFile, "readme.txt"} {
		if err := os.WriteFile(filepath.Join(root, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := Discover(root)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a.jsonl", "sub/b.binj"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Discover = %v, want %v", got, want)
	}
}

func TestRefreshIncremental(t *testing.T) {
	root := t.TempDir()
	cell := map[string]string{"f": "x"}
	writeJournal(t, filepath.Join(root, "a.jsonl"), []runstore.Record{
		mkRec("e", cell, 0, map[string]float64{"ms": 1}),
		mkRec("e", cell, 1, map[string]float64{"ms": 3}),
	}, baseTime)
	writeBinary(t, filepath.Join(root, "b.binj"), []runstore.Record{
		mkRec("e", cell, 0, map[string]float64{"ms": 2}),
	}, baseTime.Add(time.Second))

	w := openTest(t, root)
	rs, err := w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Candidates != 2 || rs.Ingested != 2 || rs.Unchanged != 0 || rs.Records != 3 {
		t.Fatalf("first refresh = %+v", rs)
	}
	runs := w.Runs()
	if len(runs) != 2 || runs[0].Path != "a.jsonl" || runs[1].Path != "b.binj" {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].Format != "journal" || runs[1].Format != "binary" {
		t.Fatalf("formats = %s, %s", runs[0].Format, runs[1].Format)
	}

	// Second refresh: stat-only, nothing re-read.
	rs, err = w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ingested != 0 || rs.Unchanged != 2 {
		t.Fatalf("second refresh = %+v, want all unchanged", rs)
	}

	// Appending to one source re-ingests exactly that source.
	writeJournal(t, filepath.Join(root, "a.jsonl"), []runstore.Record{
		mkRec("e", cell, 2, map[string]float64{"ms": 5}),
	}, baseTime.Add(2*time.Second))
	rs, err = w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ingested != 1 || rs.Unchanged != 1 || rs.Records != 3 {
		t.Fatalf("refresh after append = %+v", rs)
	}
	for _, r := range w.Runs() {
		if r.Path == "a.jsonl" {
			if r.Records != 3 || r.Cells[0].N != 3 {
				t.Fatalf("a.jsonl after re-ingest = %+v", r)
			}
		}
	}
}

func TestRefreshKeepsIngestTimeWhenContentUnchanged(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "a.jsonl")
	writeJournal(t, path, []runstore.Record{
		mkRec("e", map[string]string{"f": "x"}, 0, map[string]float64{"ms": 1}),
	}, baseTime)

	now := time.Unix(1000, 0)
	w, err := Open(root, Options{Metrics: obs.NewRegistry(), Clock: func() time.Time { return now }})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	first := w.Runs()[0].IngestTimeNS

	// Touch the file: same bytes, new modification time. The re-ingest
	// must recognize the unchanged fingerprint and keep the ingest time.
	if err := os.Chtimes(path, baseTime.Add(time.Hour), baseTime.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	now = time.Unix(2000, 0)
	rs, err := w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ingested != 1 {
		t.Fatalf("touched file not re-ingested: %+v", rs)
	}
	if got := w.Runs()[0].IngestTimeNS; got != first {
		t.Fatalf("ingest time changed on touch: %d -> %d", first, got)
	}
}

func TestVanishedSourcesStayQueryable(t *testing.T) {
	root := t.TempDir()
	cell := map[string]string{"f": "x"}
	for i, mod := range []time.Time{baseTime, baseTime.Add(time.Second)} {
		writeJournal(t, filepath.Join(root, []string{"a.jsonl", "b.jsonl"}[i]), []runstore.Record{
			mkRec("e", cell, 0, map[string]float64{"ms": float64(i + 1)}),
			mkRec("e", cell, 1, map[string]float64{"ms": float64(i + 2)}),
		}, mod)
	}
	w := openTest(t, root)
	if _, err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	before, err := w.Query(Request{Kind: KindHistory, Cell: runstore.AssignmentHash(cell)})
	if err != nil {
		t.Fatal(err)
	}
	if len(before.History) != 2 {
		t.Fatalf("history = %d points, want 2", len(before.History))
	}

	// Delete every source file. The warehouse is the history: queries
	// must answer identically — the proof no record block is rescanned.
	for _, name := range []string{"a.jsonl", "b.jsonl"} {
		if err := os.Remove(filepath.Join(root, name)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	after, err := w.Query(Request{Kind: KindHistory, Cell: runstore.AssignmentHash(cell)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("history changed after sources vanished:\n%+v\n!=\n%+v", before, after)
	}
}

func TestPruneTombstones(t *testing.T) {
	root := t.TempDir()
	cell := map[string]string{"f": "x"}
	names := []string{"a.jsonl", "b.jsonl", "c.jsonl"}
	for i, name := range names {
		writeJournal(t, filepath.Join(root, name), []runstore.Record{
			mkRec("e", cell, 0, map[string]float64{"ms": float64(i + 1)}),
		}, baseTime.Add(time.Duration(i)*time.Second))
	}
	w := openTest(t, root)
	if _, err := w.Refresh(); err != nil {
		t.Fatal(err)
	}

	ps, err := w.Prune(Retention{KeepRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Pruned != 2 || ps.Kept != 1 {
		t.Fatalf("prune = %+v, want 2 pruned / 1 kept", ps)
	}
	runs := w.Runs()
	if len(runs) != 1 || runs[0].Path != "c.jsonl" {
		t.Fatalf("live runs after prune = %+v, want only the newest", runs)
	}
	res, err := w.Query(Request{Kind: KindHistory, Cell: runstore.AssignmentHash(cell)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 1 || res.History[0].Mean != 3 {
		t.Fatalf("history after prune = %+v, want only c.jsonl's point", res.History)
	}

	// Refresh must not resurrect pruned runs: their sources are
	// unchanged, so the tombstones' stat-match skips them.
	rs, err := w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ingested != 0 || rs.Unchanged != 3 {
		t.Fatalf("refresh after prune = %+v, want all unchanged", rs)
	}
	if got := w.Runs(); len(got) != 1 {
		t.Fatalf("pruned runs resurrected: %+v", got)
	}

	// Prune is idempotent for a fixed policy.
	ps, err = w.Prune(Retention{KeepRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Pruned != 0 || ps.Kept != 1 {
		t.Fatalf("second prune = %+v, want a no-op", ps)
	}

	// A pruned source that actually changes is a new run again.
	writeJournal(t, filepath.Join(root, "a.jsonl"), []runstore.Record{
		mkRec("e", cell, 1, map[string]float64{"ms": 9}),
	}, baseTime.Add(time.Hour))
	rs, err = w.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Ingested != 1 {
		t.Fatalf("refresh after pruned source changed = %+v", rs)
	}
	if got := w.Runs(); len(got) != 2 {
		t.Fatalf("changed pruned source not re-ingested: %+v", got)
	}
}

func TestPruneMaxAge(t *testing.T) {
	root := t.TempDir()
	cell := map[string]string{"f": "x"}
	writeJournal(t, filepath.Join(root, "old.jsonl"), []runstore.Record{
		mkRec("e", cell, 0, map[string]float64{"ms": 1}),
	}, time.Unix(100, 0))
	writeJournal(t, filepath.Join(root, "new.jsonl"), []runstore.Record{
		mkRec("e", cell, 0, map[string]float64{"ms": 2}),
	}, time.Unix(900, 0))
	w := openTest(t, root) // clock pinned at t=1000
	if _, err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	ps, err := w.Prune(Retention{MaxAge: 500 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Pruned != 1 || ps.Kept != 1 {
		t.Fatalf("prune = %+v, want exactly the expired run pruned", ps)
	}
	runs := w.Runs()
	if len(runs) != 1 || runs[0].Path != "new.jsonl" {
		t.Fatalf("live runs = %+v, want only new.jsonl", runs)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing"), Options{}); err == nil {
		t.Fatal("Open accepted a missing root")
	}
	file := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(file, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(file, Options{}); err == nil {
		t.Fatal("Open accepted a plain file as root")
	}
}
