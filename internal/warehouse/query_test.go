package warehouse

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/runstore"
)

// seedHistory writes three runs of one cell with tight, well-separated
// samples: means 10, 10.1 (overlapping), then 20 (disjoint, higher).
func seedHistory(t *testing.T, root string) (cellHash string) {
	t.Helper()
	cell := map[string]string{"f": "x"}
	samples := [][]float64{
		{9.9, 10.0, 10.1},
		{10.0, 10.1, 10.2},
		{19.9, 20.0, 20.1},
	}
	for i, vals := range samples {
		var recs []runstore.Record
		for rep, v := range vals {
			recs = append(recs, mkRec("e", cell, rep, map[string]float64{"ms": v}))
		}
		writeJournal(t, filepath.Join(root, []string{"r0.jsonl", "r1.jsonl", "r2.jsonl"}[i]), recs, baseTime.Add(time.Duration(i)*time.Second))
	}
	return runstore.AssignmentHash(cell)
}

func refreshed(t *testing.T, root string) *Warehouse {
	t.Helper()
	w := openTest(t, root)
	if _, err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestQueryHistory(t *testing.T) {
	root := t.TempDir()
	hash := seedHistory(t, root)
	w := refreshed(t, root)

	res, err := w.Query(Request{Kind: KindHistory, Experiment: "e", Cell: hash, Response: "ms"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 3 {
		t.Fatalf("history = %d points, want 3", len(res.History))
	}
	wantMeans := []float64{10, 10.1, 20}
	for i, p := range res.History {
		if p.Mean != wantMeans[i] {
			t.Fatalf("point %d mean = %g, want %g", i, p.Mean, wantMeans[i])
		}
		if p.N != 3 || p.Lo >= p.Mean || p.Hi <= p.Mean || p.Confidence != 0.95 {
			t.Fatalf("point %d interval malformed: %+v", i, p)
		}
	}
	// The canonical assignment string selects the same cell.
	byString, err := w.Query(Request{Kind: KindHistory, Cell: "f=x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(byString.History) != 3 {
		t.Fatalf("history by assignment string = %d points, want 3", len(byString.History))
	}
	// Limit keeps the newest points.
	limited, err := w.Query(Request{Kind: KindHistory, Cell: hash, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited.History) != 2 || limited.History[1].Mean != 20 {
		t.Fatalf("limited history = %+v, want the newest 2 points", limited.History)
	}
	if !strings.Contains(res.String(), "cell history: 3 points") {
		t.Fatalf("history render:\n%s", res.String())
	}
}

func TestQueryRuns(t *testing.T) {
	root := t.TempDir()
	seedHistory(t, root)
	writeJournal(t, filepath.Join(root, "other.jsonl"), []runstore.Record{
		mkRec("other", map[string]string{"f": "y"}, 0, map[string]float64{"ms": 1}),
	}, baseTime.Add(time.Hour))
	w := refreshed(t, root)

	res, err := w.Query(Request{Kind: KindRuns})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(res.Runs))
	}
	// The experiment filter drops runs without a matching cell.
	res, err = w.Query(Request{Kind: KindRuns, Experiment: "other"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 || res.Runs[0].Path != "other.jsonl" || res.Runs[0].Experiments[0] != "other" {
		t.Fatalf("filtered runs = %+v", res.Runs)
	}
	// An empty Kind defaults to the runs listing.
	res, err = w.Query(Request{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != KindRuns || len(res.Runs) != 4 {
		t.Fatalf("default query = %+v", res)
	}
}

func TestQueryTrends(t *testing.T) {
	root := t.TempDir()
	seedHistory(t, root)
	w := refreshed(t, root)

	res, err := w.Query(Request{Kind: KindTrends, Experiment: "e", Response: "ms"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trends) != 1 {
		t.Fatalf("trends = %+v, want one line", res.Trends)
	}
	line := res.Trends[0]
	if line.Experiment != "e" || line.Response != "ms" || len(line.Points) != 3 {
		t.Fatalf("trend line = %+v", line)
	}
	wantMeans := []float64{10, 10.1, 20}
	for i, p := range line.Points {
		if p.Mean != wantMeans[i] || p.Cells != 1 {
			t.Fatalf("trend point %d = %+v, want mean %g over 1 cell", i, p, wantMeans[i])
		}
	}
}

func TestQueryRegressions(t *testing.T) {
	root := t.TempDir()
	hash := seedHistory(t, root)
	w := refreshed(t, root)

	// Newest pair is r1 (mean 10.1) vs r2 (mean 20): disjoint intervals,
	// higher mean — the gate's regression rule fires.
	res, err := w.Query(Request{Kind: KindRegressions})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 {
		t.Fatalf("regressions = %+v, want exactly one", res.Regressions)
	}
	e := res.Regressions[0]
	if e.Hash != hash || e.BaseRun != "r1.jsonl" || e.CurRun != "r2.jsonl" {
		t.Fatalf("regression entry = %+v", e)
	}
	if e.DeltaPct < 95 || e.DeltaPct > 100 {
		t.Fatalf("delta = %g%%, want ~98%%", e.DeltaPct)
	}
	if !strings.Contains(res.String(), "REGRESSED") {
		t.Fatalf("regression render:\n%s", res.String())
	}

	// Retention changes the comparison window: keeping only the newest
	// run leaves no pair to compare, so the listing empties.
	if _, err := w.Prune(Retention{KeepRuns: 1}); err != nil {
		t.Fatal(err)
	}
	res, err = w.Query(Request{Kind: KindRegressions})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("regressions with a single live run = %+v, want none", res.Regressions)
	}
}

func TestQueryOverlappingIsNotRegression(t *testing.T) {
	root := t.TempDir()
	cell := map[string]string{"f": "x"}
	for i, base := range []float64{10, 10.05} {
		writeJournal(t, filepath.Join(root, []string{"a.jsonl", "b.jsonl"}[i]), []runstore.Record{
			mkRec("e", cell, 0, map[string]float64{"ms": base - 0.1}),
			mkRec("e", cell, 1, map[string]float64{"ms": base}),
			mkRec("e", cell, 2, map[string]float64{"ms": base + 0.1}),
		}, baseTime.Add(time.Duration(i)*time.Second))
	}
	w := refreshed(t, root)
	res, err := w.Query(Request{Kind: KindRegressions})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("overlapping intervals flagged as regression: %+v", res.Regressions)
	}
}

func TestQueryValidation(t *testing.T) {
	w := openTest(t, t.TempDir())
	cases := []Request{
		{Kind: "bogus"},
		{Kind: KindHistory}, // no cell
		{Kind: KindRuns, Confidence: 1.5},
		{Kind: KindRuns, Tolerance: -1},
		{Kind: KindRuns, Limit: -1},
	}
	for _, req := range cases {
		if _, err := w.Query(req); err == nil {
			t.Fatalf("Query(%+v) accepted an invalid request", req)
		}
	}
}

func TestQueryMetrics(t *testing.T) {
	root := t.TempDir()
	seedHistory(t, root)
	reg := obs.NewRegistry()
	w, err := Open(root, Options{Metrics: reg, Clock: func() time.Time { return time.Unix(1000, 0) }})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Refresh(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Query(Request{Kind: KindRuns}); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	got := make(map[string]float64)
	hist := make(map[string]int64)
	for _, m := range snap.Metrics {
		got[m.Name] = m.Value
		if m.Type == "histogram" {
			hist[m.Name] = m.Count
		}
	}
	if got["warehouse_ingest_runs_total"] != 3 {
		t.Fatalf("ingest_runs = %g, want 3 (snapshot %+v)", got["warehouse_ingest_runs_total"], got)
	}
	if got["warehouse_ingest_records_total"] != 9 {
		t.Fatalf("ingest_records = %g, want 9", got["warehouse_ingest_records_total"])
	}
	if got["warehouse_queries_total"] != 3 {
		t.Fatalf("queries = %g, want 3", got["warehouse_queries_total"])
	}
	if hist["warehouse_query_seconds"] != 3 {
		t.Fatalf("query_seconds count = %d, want 3", hist["warehouse_query_seconds"])
	}
}
