package warehouse

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/stats"
)

// Query kinds. Every surface — repro.Query, `perfeval query`, the
// collector's GET /v1/query — speaks these.
const (
	// KindRuns lists the live indexed runs and their shapes.
	KindRuns = "runs"
	// KindHistory lists one cell's aggregate per run, oldest first — the
	// measurement's trajectory across the warehouse.
	KindHistory = "history"
	// KindTrends lists per-(experiment, response) trend lines: each
	// run's mean of cell means, oldest first.
	KindTrends = "trends"
	// KindRegressions lists cells whose newest run shifted against the
	// run before it under the CI-shift rule of the regression gate:
	// disjoint confidence intervals with a higher current mean.
	KindRegressions = "regressions"
)

// Request is one warehouse question. Kind selects the question; the
// filters narrow it; Confidence and Tolerance tune the rebuilt
// intervals exactly like runstore.GateOptions.
type Request struct {
	// Kind is one of KindRuns, KindHistory, KindTrends, KindRegressions.
	Kind string `json:"kind"`
	// Experiment filters to one experiment (required for history).
	Experiment string `json:"experiment,omitempty"`
	// Cell selects one design cell for history queries, by assignment
	// hash or by the canonical sorted "k=v k=v" assignment string.
	Cell string `json:"cell,omitempty"`
	// Response filters to one response name.
	Response string `json:"response,omitempty"`
	// Confidence for the rebuilt Student-t intervals (default 0.95).
	Confidence float64 `json:"confidence,omitempty"`
	// Tolerance is the relative half-width assumed for single-replicate
	// cells, where no confidence interval exists (default 0.05).
	Tolerance float64 `json:"tolerance,omitempty"`
	// Limit, when > 0, keeps only the newest Limit runs, history points,
	// or trend points (and caps the regression listing).
	Limit int `json:"limit,omitempty"`
}

func (r *Request) fill() error {
	if r.Kind == "" {
		r.Kind = KindRuns
	}
	switch r.Kind {
	case KindRuns, KindHistory, KindTrends, KindRegressions:
	default:
		return fmt.Errorf("warehouse: unknown query kind %q (want %s|%s|%s|%s)",
			r.Kind, KindRuns, KindHistory, KindTrends, KindRegressions)
	}
	if r.Kind == KindHistory && r.Cell == "" {
		return fmt.Errorf("warehouse: history query needs a cell (assignment hash or \"k=v k=v\" string)")
	}
	if r.Confidence == 0 {
		r.Confidence = 0.95
	}
	if r.Tolerance == 0 {
		r.Tolerance = 0.05
	}
	if r.Confidence <= 0 || r.Confidence >= 1 {
		return fmt.Errorf("warehouse: confidence must be in (0,1), got %g", r.Confidence)
	}
	if r.Tolerance <= 0 {
		return fmt.Errorf("warehouse: tolerance must be > 0, got %g", r.Tolerance)
	}
	if r.Limit < 0 {
		return fmt.Errorf("warehouse: limit must be >= 0, got %d", r.Limit)
	}
	return nil
}

// RunInfo is one run's shape in a KindRuns listing.
type RunInfo struct {
	Path         string   `json:"path"`
	Format       string   `json:"format"`
	Records      int      `json:"records"`
	Cells        int      `json:"cells"`
	Experiments  []string `json:"experiments,omitempty"`
	ModTimeNS    int64    `json:"mod_time_ns"`
	IngestTimeNS int64    `json:"ingest_time_ns"`
}

// HistoryPoint is one run's aggregate of the queried cell, with the
// confidence interval rebuilt from (n, mean, variance).
type HistoryPoint struct {
	Run          string            `json:"run"`
	ModTimeNS    int64             `json:"mod_time_ns"`
	IngestTimeNS int64             `json:"ingest_time_ns"`
	Experiment   string            `json:"experiment"`
	Hash         string            `json:"hash"`
	Assignment   map[string]string `json:"assignment"`
	Response     string            `json:"response"`
	N            int               `json:"n"`
	Mean         float64           `json:"mean"`
	Variance     float64           `json:"variance"`
	Lo           float64           `json:"lo"`
	Hi           float64           `json:"hi"`
	Confidence   float64           `json:"confidence"`
}

// TrendPoint is one run on a trend line.
type TrendPoint struct {
	Run       string  `json:"run"`
	ModTimeNS int64   `json:"mod_time_ns"`
	Cells     int     `json:"cells"`
	Mean      float64 `json:"mean"` // mean of the run's cell means
}

// TrendLine is one (experiment, response) series across runs.
type TrendLine struct {
	Experiment string       `json:"experiment"`
	Response   string       `json:"response"`
	Points     []TrendPoint `json:"points"`
}

// RegressionEntry is one cell whose newest run regressed against the
// run before it: disjoint confidence intervals, higher current mean —
// the same rule as runstore.Gate.
type RegressionEntry struct {
	Experiment string            `json:"experiment"`
	Hash       string            `json:"hash"`
	Assignment map[string]string `json:"assignment"`
	Response   string            `json:"response"`
	BaseRun    string            `json:"base_run"`
	CurRun     string            `json:"cur_run"`
	Base       stats.Interval    `json:"base"`
	Cur        stats.Interval    `json:"cur"`
	DeltaPct   float64           `json:"delta_pct"`
}

// Result is one query's answer. Exactly one of the payload slices is
// populated, matching Kind.
type Result struct {
	Kind        string            `json:"kind"`
	Runs        []RunInfo         `json:"runs,omitempty"`
	History     []HistoryPoint    `json:"history,omitempty"`
	Trends      []TrendLine       `json:"trends,omitempty"`
	Regressions []RegressionEntry `json:"regressions,omitempty"`
}

// cellInterval rebuilds a cell's comparison interval from its stored
// aggregates, mirroring the regression gate's rules term for term: a
// Student-t interval when N >= 2 (the exact stats.MeanCI arithmetic,
// with the standard error recovered from the stored variance), a
// relative tolerance band for single-replicate cells.
func cellInterval(c Cell, confidence, tolerance float64) stats.Interval {
	if c.N >= 2 {
		se := math.Sqrt(c.Variance) / math.Sqrt(float64(c.N))
		alpha := 1 - confidence
		t := stats.TQuantile(1-alpha/2, float64(c.N-1))
		return stats.Interval{Mean: c.Mean, Lo: c.Mean - t*se, Hi: c.Mean + t*se, Confidence: confidence, N: c.N}
	}
	half := tolerance * math.Abs(c.Mean)
	if half == 0 {
		half = tolerance
	}
	return stats.Interval{Mean: c.Mean, Lo: c.Mean - half, Hi: c.Mean + half, Confidence: confidence, N: c.N}
}

// matchCell reports whether sel (an assignment hash or a canonical
// assignment string) selects c.
func matchCell(c Cell, sel string) bool {
	return sel == c.Hash || sel == assignmentString(c.Assignment)
}

// Query answers one Request from the index alone — no record block is
// ever read. Runs are ordered oldest first by source modification time.
func (w *Warehouse) Query(req Request) (*Result, error) {
	start := time.Now()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := req.fill(); err != nil {
		return nil, err
	}
	live := w.liveRuns()
	res := &Result{Kind: req.Kind}
	switch req.Kind {
	case KindRuns:
		res.Runs = queryRuns(live, req)
	case KindHistory:
		res.History = queryHistory(live, req)
	case KindTrends:
		res.Trends = queryTrends(live, req)
	case KindRegressions:
		res.Regressions = queryRegressions(live, req)
	}
	w.met.queries.Inc()
	w.met.querySeconds.Observe(time.Since(start).Seconds())
	return res, nil
}

func queryRuns(live []Run, req Request) []RunInfo {
	var out []RunInfo
	for _, r := range live {
		exps := make(map[string]bool)
		cells := 0
		for _, c := range r.Cells {
			if req.Experiment != "" && c.Experiment != req.Experiment {
				continue
			}
			exps[c.Experiment] = true
			cells++
		}
		if req.Experiment != "" && cells == 0 {
			continue
		}
		info := RunInfo{
			Path:         r.Path,
			Format:       r.Format,
			Records:      r.Records,
			Cells:        cells,
			ModTimeNS:    r.ModTimeNS,
			IngestTimeNS: r.IngestTimeNS,
		}
		for e := range exps {
			info.Experiments = append(info.Experiments, e)
		}
		sort.Strings(info.Experiments)
		out = append(out, info)
	}
	return tail(out, req.Limit)
}

func queryHistory(live []Run, req Request) []HistoryPoint {
	var out []HistoryPoint
	for _, r := range live {
		for _, c := range r.Cells {
			if req.Experiment != "" && c.Experiment != req.Experiment {
				continue
			}
			if req.Response != "" && c.Response != req.Response {
				continue
			}
			if !matchCell(c, req.Cell) {
				continue
			}
			iv := cellInterval(c, req.Confidence, req.Tolerance)
			out = append(out, HistoryPoint{
				Run:          r.Path,
				ModTimeNS:    r.ModTimeNS,
				IngestTimeNS: r.IngestTimeNS,
				Experiment:   c.Experiment,
				Hash:         c.Hash,
				Assignment:   c.Assignment,
				Response:     c.Response,
				N:            c.N,
				Mean:         c.Mean,
				Variance:     c.Variance,
				Lo:           iv.Lo,
				Hi:           iv.Hi,
				Confidence:   iv.Confidence,
			})
		}
	}
	return tail(out, req.Limit)
}

func queryTrends(live []Run, req Request) []TrendLine {
	type lineKey struct{ experiment, response string }
	lines := make(map[lineKey]*TrendLine)
	var order []lineKey
	for _, r := range live {
		type agg struct {
			sum   float64
			cells int
		}
		perLine := make(map[lineKey]*agg)
		for _, c := range r.Cells {
			if req.Experiment != "" && c.Experiment != req.Experiment {
				continue
			}
			if req.Response != "" && c.Response != req.Response {
				continue
			}
			k := lineKey{c.Experiment, c.Response}
			a := perLine[k]
			if a == nil {
				a = &agg{}
				perLine[k] = a
			}
			a.sum += c.Mean
			a.cells++
		}
		for k, a := range perLine {
			l := lines[k]
			if l == nil {
				l = &TrendLine{Experiment: k.experiment, Response: k.response}
				lines[k] = l
				order = append(order, k)
			}
			l.Points = append(l.Points, TrendPoint{
				Run:       r.Path,
				ModTimeNS: r.ModTimeNS,
				Cells:     a.cells,
				Mean:      a.sum / float64(a.cells),
			})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].experiment != order[j].experiment {
			return order[i].experiment < order[j].experiment
		}
		return order[i].response < order[j].response
	})
	out := make([]TrendLine, 0, len(order))
	for _, k := range order {
		l := lines[k]
		l.Points = tail(l.Points, req.Limit)
		out = append(out, *l)
	}
	return out
}

func queryRegressions(live []Run, req Request) []RegressionEntry {
	type cellRef struct {
		run  string
		cell Cell
	}
	type cellKey struct{ experiment, hash, response string }
	series := make(map[cellKey][]cellRef)
	var order []cellKey
	for _, r := range live {
		for _, c := range r.Cells {
			if req.Experiment != "" && c.Experiment != req.Experiment {
				continue
			}
			if req.Response != "" && c.Response != req.Response {
				continue
			}
			if req.Cell != "" && !matchCell(c, req.Cell) {
				continue
			}
			k := cellKey{c.Experiment, c.Hash, c.Response}
			if series[k] == nil {
				order = append(order, k)
			}
			series[k] = append(series[k], cellRef{run: r.Path, cell: c})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.experiment != b.experiment {
			return a.experiment < b.experiment
		}
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.response < b.response
	})
	var out []RegressionEntry
	for _, k := range order {
		refs := series[k]
		if len(refs) < 2 {
			continue
		}
		base, cur := refs[len(refs)-2], refs[len(refs)-1]
		bi := cellInterval(base.cell, req.Confidence, req.Tolerance)
		ci := cellInterval(cur.cell, req.Confidence, req.Tolerance)
		// The gate's CI-shift rule: overlapping intervals are unchanged,
		// disjoint with a higher current mean is a regression.
		if bi.Overlaps(ci) || ci.Mean <= bi.Mean {
			continue
		}
		e := RegressionEntry{
			Experiment: k.experiment,
			Hash:       k.hash,
			Assignment: cur.cell.Assignment,
			Response:   k.response,
			BaseRun:    base.run,
			CurRun:     cur.run,
			Base:       bi,
			Cur:        ci,
		}
		if bi.Mean != 0 {
			e.DeltaPct = (ci.Mean - bi.Mean) / math.Abs(bi.Mean) * 100
		}
		out = append(out, e)
		if req.Limit > 0 && len(out) == req.Limit {
			break
		}
	}
	return out
}

// tail keeps the newest n elements of a run-ordered slice (all when
// n <= 0).
func tail[T any](xs []T, n int) []T {
	if n > 0 && len(xs) > n {
		return xs[len(xs)-n:]
	}
	return xs
}

// String renders the result as the repository's aligned table.
func (res *Result) String() string {
	var b strings.Builder
	switch res.Kind {
	case KindRuns:
		fmt.Fprintf(&b, "warehouse runs: %d\n", len(res.Runs))
		tab := harness.NewTable().Header("run", "format", "records", "cells", "experiments", "modified")
		for _, r := range res.Runs {
			tab.Row(r.Path, r.Format, fmt.Sprintf("%d", r.Records), fmt.Sprintf("%d", r.Cells),
				strings.Join(r.Experiments, ","), fmtTimeNS(r.ModTimeNS))
		}
		b.WriteString(tab.String())
	case KindHistory:
		fmt.Fprintf(&b, "cell history: %d points\n", len(res.History))
		tab := harness.NewTable().Header("run", "experiment", "response", "n", "mean", "ci", "modified")
		for _, p := range res.History {
			tab.Row(p.Run, p.Experiment, p.Response, fmt.Sprintf("%d", p.N),
				fmt.Sprintf("%.4g", p.Mean), fmt.Sprintf("[%.4g, %.4g]", p.Lo, p.Hi), fmtTimeNS(p.ModTimeNS))
		}
		b.WriteString(tab.String())
	case KindTrends:
		fmt.Fprintf(&b, "trend lines: %d\n", len(res.Trends))
		for _, l := range res.Trends {
			fmt.Fprintf(&b, "%s / %s (%d points)\n", l.Experiment, l.Response, len(l.Points))
			tab := harness.NewTable().Header("run", "cells", "mean", "modified")
			for _, p := range l.Points {
				tab.Row(p.Run, fmt.Sprintf("%d", p.Cells), fmt.Sprintf("%.4g", p.Mean), fmtTimeNS(p.ModTimeNS))
			}
			b.WriteString(tab.String())
		}
	case KindRegressions:
		fmt.Fprintf(&b, "regressions: %d\n", len(res.Regressions))
		tab := harness.NewTable().Header("experiment", "assignment", "response", "base", "current", "delta%", "verdict")
		for _, e := range res.Regressions {
			tab.Row(e.Experiment, assignmentString(e.Assignment), e.Response,
				fmt.Sprintf("%.4g ±%.2g", e.Base.Mean, e.Base.HalfWidth()),
				fmt.Sprintf("%.4g ±%.2g", e.Cur.Mean, e.Cur.HalfWidth()),
				fmt.Sprintf("%+.1f", e.DeltaPct), runstore.Regressed.String())
		}
		b.WriteString(tab.String())
	}
	return b.String()
}

// fmtTimeNS renders a Unix-nanosecond timestamp the way reports do.
func fmtTimeNS(ns int64) string {
	return time.Unix(0, ns).UTC().Format("2006-01-02 15:04:05")
}
