package warehouse

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// encodeFrame builds one index frame, failing the test on an encoding
// error — used to construct damaged files byte by byte.
func encodeFrame(t *testing.T, r Run) []byte {
	t.Helper()
	frame, err := encodeIndexFrame(r)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func sampleRun(path string, mod int64) Run {
	return Run{
		Path:         path,
		Size:         100,
		ModTimeNS:    mod,
		IngestTimeNS: mod + 1,
		Fingerprint:  0xdeadbeef,
		Format:       "journal",
		Records:      3,
		Cells: []Cell{{
			Experiment: "e",
			Hash:       "00000000000000aa",
			Assignment: map[string]string{"f": "x"},
			Response:   "ms",
			N:          3,
			Mean:       1.5,
			Variance:   0.25,
		}},
	}
}

func TestFileEngineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), IndexFile)
	e, err := OpenFileEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	a, b := sampleRun("a.jsonl", 10), sampleRun("b.binj", 20)
	b.Format = "binary"
	for _, r := range []Run{a, b} {
		if err := e.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	// Last-wins: replacing a.jsonl must supersede the first entry.
	a2 := a
	a2.Records = 7
	a2.ModTimeNS = 30
	if err := e.Put(a2); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Put(a); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("Put after Close = %v, want closed error", err)
	}

	e2, err := OpenFileEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	got := e2.Runs()
	want := []Run{b, a2} // sorted by (ModTimeNS, Path)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reopened runs = %+v, want %+v", got, want)
	}
	if e2.(*fileEngine).Torn() {
		t.Fatal("clean file reported torn")
	}
}

func TestFileEngineTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), IndexFile)
	e, err := OpenFileEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Put(sampleRun("a.jsonl", 10)); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	whole := encodeFrame(t, sampleRun("b.jsonl", 20))
	cases := map[string][]byte{
		"short header":      whole[:idxFrameHeaderSize-2],
		"short payload":     whole[:len(whole)-3],
		"checksum mismatch": append(append([]byte{}, whole[:4]...), append([]byte{0xde, 0xad, 0xbe, 0xef}, whole[idxFrameHeaderSize:]...)...),
	}
	for name, tail := range cases {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, append(append([]byte{}, intact...), tail...), 0o644); err != nil {
				t.Fatal(err)
			}
			e, err := OpenFileEngine(path)
			if err != nil {
				t.Fatalf("open with torn tail: %v", err)
			}
			defer e.Close()
			if !e.(*fileEngine).Torn() {
				t.Fatal("torn tail not reported")
			}
			runs := e.Runs()
			if len(runs) != 1 || runs[0].Path != "a.jsonl" {
				t.Fatalf("runs after truncation = %+v, want only a.jsonl", runs)
			}
			// The torn bytes must be gone: the next Put appends a valid
			// frame at the truncated offset.
			if err := e.Put(sampleRun("c.jsonl", 30)); err != nil {
				t.Fatal(err)
			}
			if data, _ := os.ReadFile(path); len(data) <= len(intact) {
				t.Fatal("Put after truncation did not grow the file")
			}
			if _, _, torn, err := InspectIndex(path); err != nil || torn {
				t.Fatalf("index after repair: torn=%v err=%v", torn, err)
			}
		})
	}
}

func TestFileEngineRejectsCorruptFrames(t *testing.T) {
	dir := t.TempDir()
	garbage := []byte("this is not a run document")
	badPayload := make([]byte, idxFrameHeaderSize+len(garbage))
	binary.LittleEndian.PutUint32(badPayload[0:4], uint32(len(garbage)))
	binary.LittleEndian.PutUint32(badPayload[4:8], crc32.Checksum(garbage, idxCastagnoli))
	copy(badPayload[idxFrameHeaderSize:], garbage)

	impossible := make([]byte, idxFrameHeaderSize)
	binary.LittleEndian.PutUint32(impossible[0:4], maxIndexFrame+1)

	noPath := encodeFrame(t, Run{Size: 1})

	cases := map[string]struct {
		data []byte
		want string
	}{
		"bad magic":          {[]byte("NOTANIDX"), "not a warehouse index"},
		"short magic":        {[]byte("PEV"), "not a warehouse index"},
		"impossible length":  {append([]byte(IndexMagic), impossible...), "impossible payload length"},
		"undecodable JSON":   {append([]byte(IndexMagic), badPayload...), "corrupt index frame"},
		"run without a path": {append([]byte(IndexMagic), noPath...), "without a path"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".idx")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenFileEngine(path); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("OpenFileEngine = %v, want error containing %q", err, tc.want)
			}
			if _, _, _, err := InspectIndex(path); err == nil {
				t.Fatal("InspectIndex accepted a corrupt index")
			}
		})
	}
}

func TestInspectIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), IndexFile)
	e, err := OpenFileEngine(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Put(sampleRun("a.jsonl", 10)); err != nil {
		t.Fatal(err)
	}
	tomb := sampleRun("b.jsonl", 20)
	tomb.Pruned = true
	tomb.Cells = nil
	if err := e.Put(tomb); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	runs, pruned, torn, err := InspectIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 || pruned != 1 || torn {
		t.Fatalf("InspectIndex = (%d, %d, %v), want (2, 1, false)", runs, pruned, torn)
	}
}
