package plot

import (
	"strconv"
	"strings"
	"testing"
)

func goodLineChart() *Chart {
	return NewLineChart("Execution time for various scale factors",
		"Scale factor", "Execution time (ms)",
		Series{Name: "MonetDB-like engine", Points: []Point{{X: 1, Y: 1234}, {X: 2, Y: 2467}, {X: 3, Y: 4623}}},
	)
}

func TestGoodChartLintsClean(t *testing.T) {
	c := goodLineChart()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if vs := Lint(c); len(vs) != 0 {
		t.Errorf("good chart has violations: %v", vs)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Chart{Title: "empty"}).Validate(); err == nil {
		t.Error("no series should fail")
	}
	c := &Chart{Series: []Series{{Name: "s"}}}
	if err := c.Validate(); err == nil {
		t.Error("empty series should fail")
	}
	bar := NewBarChart("b", "count", Labels{"a"}, []float64{1, 2})
	if err := bar.Validate(); err == nil {
		t.Error("label/value mismatch should fail")
	}
	pie := NewPieChart("p", Labels{"a", "b"}, []float64{1, -1})
	if err := pie.Validate(); err == nil {
		t.Error("negative pie share should fail")
	}
}

func TestLintMaxCurves(t *testing.T) {
	c := goodLineChart()
	for i := 0; i < 7; i++ {
		c.Series = append(c.Series, Series{Name: strings.Repeat("s", i+2) + " engine", Points: []Point{{X: 1, Y: 1}}})
	}
	if !hasRule(Lint(c), RuleMaxCurves) {
		t.Error("8 curves should violate max-curves")
	}
}

func TestLintMaxBarsAndPie(t *testing.T) {
	labels := make(Labels, 12)
	vals := make([]float64, 12)
	for i := range labels {
		labels[i] = string(rune('a' + i))
		vals[i] = float64(i + 1)
	}
	bar := NewBarChart("bars", "count (n)", labels, vals)
	if !hasRule(Lint(bar), RuleMaxBars) {
		t.Error("12 bars should violate max-bars")
	}
	pie := NewPieChart("pie", labels, vals)
	if !hasRule(Lint(pie), RuleMaxPieComponents) {
		t.Error("12 components should violate max-pie")
	}
	// Within limits: clean.
	small := NewBarChart("bars", "count (n)", labels[:5], vals[:5])
	if hasRule(Lint(small), RuleMaxBars) {
		t.Error("5 bars should pass")
	}
}

func TestLintHistogramCells(t *testing.T) {
	c := &Chart{
		Kind:   HistogramKind,
		YLabel: "frequency (points)",
		Series: []Series{{Name: "response times", Points: []Point{
			{X: 0, Y: 3}, {X: 1, Y: 6}, {X: 2, Y: 9}, {X: 3, Y: 12}, {X: 4, Y: 4}, {X: 5, Y: 2},
		}}},
		CatLabels: Labels{"[0,2)", "[2,4)", "[4,6)", "[6,8)", "[8,10)", "[10,12)"},
	}
	vs := Lint(c)
	count := 0
	for _, v := range vs {
		if v.Rule == RuleHistogramCellCount {
			count++
		}
	}
	if count != 3 { // cells with 3, 4, 2 points
		t.Errorf("under-populated cells flagged = %d, want 3: %v", count, vs)
	}
}

func TestLintAxisLabels(t *testing.T) {
	c := goodLineChart()
	c.YLabel = ""
	if !hasRule(Lint(c), RuleAxisLabelMissing) {
		t.Error("missing y label should be flagged")
	}
	c.YLabel = "CPU time" // no unit
	if !hasRule(Lint(c), RuleAxisUnitMissing) {
		t.Error("unit-less label should be flagged")
	}
	c.YLabel = "CPU time (ms)"
	c.XLabel = ""
	if !hasRule(Lint(c), RuleAxisLabelMissing) {
		t.Error("missing x label should be flagged")
	}
}

func TestLintSymbolSeries(t *testing.T) {
	c := goodLineChart()
	c.Series[0].Name = "λ=1"
	if !hasRule(Lint(c), RuleSymbolLabel) {
		t.Error("symbolic series name should be flagged")
	}
	c.Series[0].Name = "1 job/sec"
	if hasRule(Lint(c), RuleSymbolLabel) {
		t.Error("keyword series name should pass")
	}
	c.Series[0].Name = "buffer=64MB" // word head: fine
	if hasRule(Lint(c), RuleSymbolLabel) {
		t.Error("word=value series name should pass")
	}
}

func TestLintTruncatedAxis(t *testing.T) {
	c := goodLineChart()
	c.YStartsAtZero = false
	if !hasRule(Lint(c), RuleTruncatedAxis) {
		t.Error("truncated y axis should be flagged (MINE vs YOURS)")
	}
}

func TestLintAspectRatio(t *testing.T) {
	c := goodLineChart()
	c.AspectRatio = 0.2
	if !hasRule(Lint(c), RuleAspectRatio) {
		t.Error("flat aspect should be flagged")
	}
	c.AspectRatio = 0.75
	if hasRule(Lint(c), RuleAspectRatio) {
		t.Error("3/4 aspect should pass")
	}
}

func TestLintFigureSet(t *testing.T) {
	s1 := Series{Name: "engine A", Points: []Point{{X: 1, Y: 1}}, Style: Style{LineType: 1, Color: "red"}}
	s2 := s1
	s2.Style = Style{LineType: 2, Color: "blue"}
	c1 := NewLineChart("fig 1", "x (n)", "y (ms)", s1)
	c2 := NewLineChart("fig 2", "x (n)", "y (ms)", s2)
	vs := LintFigureSet([]*Chart{c1, c2})
	if len(vs) != 1 || vs[0].Rule != RuleInconsistentStyle {
		t.Errorf("style change should be flagged: %v", vs)
	}
	// Consistent styles pass.
	c2.Series[0].Style = s1.Style
	if vs := LintFigureSet([]*Chart{c1, c2}); len(vs) != 0 {
		t.Errorf("consistent styles flagged: %v", vs)
	}
}

func TestLintCombined(t *testing.T) {
	c := NewLineChart("everything", "users (n)", "value (mixed)",
		Series{Name: "response time", Points: []Point{{X: 1, Y: 1}}},
		Series{Name: "throughput", Points: []Point{{X: 1, Y: 1}}},
		Series{Name: "utilization", Points: []Point{{X: 1, Y: 1}}},
	)
	vs := LintCombined(c, []string{"response time", "throughput", "utilization"})
	if len(vs) != 1 || vs[0].Rule != RuleTooManyResponseVariables {
		t.Errorf("mixed response variables should be flagged: %v", vs)
	}
	if vs := LintCombined(c, []string{"t", "t", "t"}); len(vs) != 0 {
		t.Errorf("single response variable flagged: %v", vs)
	}
	if vs := LintCombined(c, []string{"t"}); len(vs) != 1 {
		t.Errorf("annotation mismatch should be flagged: %v", vs)
	}
}

func TestCheckReplicatedSeries(t *testing.T) {
	c := goodLineChart()
	vs := CheckReplicatedSeries(c, true)
	if len(vs) != 1 || vs[0].Rule != RuleMissingCI {
		t.Errorf("missing CI should be flagged: %v", vs)
	}
	for i := range c.Series[0].Points {
		c.Series[0].Points[i].CIHalf = 1
	}
	if vs := CheckReplicatedSeries(c, true); len(vs) != 0 {
		t.Errorf("series with CIs flagged: %v", vs)
	}
	if vs := CheckReplicatedSeries(c, false); len(vs) != 0 {
		t.Errorf("unreplicated series flagged: %v", vs)
	}
}

func hasRule(vs []Violation, r Rule) bool {
	for _, v := range vs {
		if v.Rule == r {
			return true
		}
	}
	return false
}

func TestRuleStrings(t *testing.T) {
	rules := []Rule{RuleMaxCurves, RuleMaxBars, RuleMaxPieComponents, RuleHistogramCellCount,
		RuleAxisLabelMissing, RuleAxisUnitMissing, RuleSymbolLabel, RuleTruncatedAxis,
		RuleAspectRatio, RuleMissingCI, RuleInconsistentStyle, RuleTooManyResponseVariables}
	seen := map[string]bool{}
	for _, r := range rules {
		s := r.String()
		if s == "" || seen[s] {
			t.Errorf("rule %d string %q empty or duplicate", int(r), s)
		}
		seen[s] = true
	}
	v := Violation{Rule: RuleMaxCurves, Message: "m"}
	if v.String() != "max-curves: m" {
		t.Errorf("violation string = %q", v.String())
	}
	if Kind(9).String() == "" || Line.String() != "line" {
		t.Error("kind strings")
	}
}

// TestGnuplotPaperExample reproduces the paper's slide 202-205 recipe:
// results-m1-n5.csv data, command file, verifying the emitted script
// contains the documented directives.
func TestGnuplotPaperExample(t *testing.T) {
	c := goodLineChart()
	script := GnuplotScript(c, "results-m1-n5.csv", "results-m1-n5.eps")
	for _, want := range []string{
		`set output "results-m1-n5.eps"`,
		`set title "Execution time for various scale factors"`,
		`set xlabel "Scale factor"`,
		`set ylabel "Execution time (ms)"`,
		"set style data linespoints",
		`plot "results-m1-n5.csv"`,
	} {
		if !strings.Contains(script, want) {
			t.Errorf("script missing %q:\n%s", want, script)
		}
	}
}

func TestGnuplotSizeRatio(t *testing.T) {
	// Full width: default canvas.
	sx, sy := GnuplotSizeRatio(1)
	if sx != 1 || sy != 1 {
		t.Errorf("full width = %g,%g", sx, sy)
	}
	// Half width: the paper's rule x*1.5.
	sx, sy = GnuplotSizeRatio(0.5)
	if sx != 0.75 {
		t.Errorf("half width sx = %g, want 0.75 (0.5*1.5)", sx)
	}
	if sy != 0.5 {
		t.Errorf("half width sy = %g", sy)
	}
	// Invalid fractions normalize to full width.
	if sx, _ := GnuplotSizeRatio(-1); sx != 1 {
		t.Errorf("negative frac sx = %g", sx)
	}
}

func TestGnuplotData(t *testing.T) {
	c := goodLineChart()
	data, err := WriteGnuplotData(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "1\t1234") {
		t.Errorf("data = %q", data)
	}
	// Mismatched series lengths error.
	c.Series = append(c.Series, Series{Name: "short", Points: []Point{{X: 1, Y: 1}}})
	if _, err := WriteGnuplotData(c); err == nil {
		t.Error("ragged series should error")
	}
	// Categorical data.
	bar := NewBarChart("b", "n (count)", Labels{"x", "y"}, []float64{1, 2})
	data, err = WriteGnuplotData(bar)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, `"x" 1`) {
		t.Errorf("bar data = %q", data)
	}
	barScript := GnuplotScript(bar, "d.dat", "o.eps")
	if !strings.Contains(barScript, "histogram") {
		t.Errorf("bar script = %q", barScript)
	}
	pie := NewPieChart("p", Labels{"x"}, []float64{1})
	if s := GnuplotScript(pie, "d.dat", "o.eps"); !strings.Contains(s, "boxes") {
		t.Errorf("pie script = %q", s)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	header := []string{"a", "b"}
	rows := [][]float64{{1, 13.666}, {2, 15}, {3, 12.3333}, {4, 13}}
	text, err := WriteCSV(header, rows)
	if err != nil {
		t.Fatal(err)
	}
	h2, r2, err := ParseCSV(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(h2) != 2 || h2[0] != "a" {
		t.Errorf("header = %v", h2)
	}
	for i := range rows {
		for j := range rows[i] {
			if rows[i][j] != r2[i][j] {
				t.Errorf("round trip [%d][%d]: %g vs %g", i, j, rows[i][j], r2[i][j])
			}
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := WriteCSV([]string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Error("width mismatch should error")
	}
	if _, _, err := ParseCSV(""); err == nil {
		t.Error("empty CSV should error")
	}
	if _, _, err := ParseCSV("a,b\n1\n"); err == nil {
		t.Error("short row should error")
	}
	if _, _, err := ParseCSV("a\nxyz\n"); err == nil {
		t.Error("non-numeric should error")
	}
}

// TestLocaleHazardPaperExample reproduces the paper's avgs.out war story:
// "13.666" and "12.3333" pasted under a mismatched locale become 13666 and
// 123333, and the detector catches both.
func TestLocaleHazardPaperExample(t *testing.T) {
	original := []string{"13.666", "15", "12.3333", "13"}
	var mangledRows [][]float64
	for _, s := range original {
		v, err := strconv.ParseFloat(LocaleMangle(s), 64)
		if err != nil {
			t.Fatal(err)
		}
		mangledRows = append(mangledRows, []float64{v})
	}
	// The mangled values are 13666, 15, 123333, 13 — matching the paper.
	if mangledRows[0][0] != 13666 || mangledRows[2][0] != 123333 {
		t.Fatalf("mangled = %v", mangledRows)
	}
	hazards := DetectLocaleHazards(mangledRows)
	if len(hazards) != 2 {
		t.Fatalf("hazards = %v, want 2", hazards)
	}
	for _, h := range hazards {
		if h.Row != 0 && h.Row != 2 {
			t.Errorf("unexpected hazard row %d", h.Row)
		}
		if h.String() == "" {
			t.Error("empty hazard string")
		}
	}
	// Clean data yields no hazards.
	clean := [][]float64{{13.666}, {15}, {12.3333}, {13}}
	if hs := DetectLocaleHazards(clean); len(hs) != 0 {
		t.Errorf("clean data flagged: %v", hs)
	}
	if hs := DetectLocaleHazards(nil); hs != nil {
		t.Errorf("nil rows: %v", hs)
	}
}

func TestASCIILineChart(t *testing.T) {
	c := goodLineChart()
	out, err := ASCII(c, 60, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Execution time", "Scale factor", "*", "MonetDB-like engine"} {
		if !strings.Contains(out, want) {
			t.Errorf("ascii missing %q:\n%s", want, out)
		}
	}
	// Degenerate sizes normalize.
	if _, err := ASCII(c, 1, 1); err != nil {
		t.Errorf("tiny canvas: %v", err)
	}
	// Invalid chart errors.
	if _, err := ASCII(&Chart{}, 60, 12); err == nil {
		t.Error("invalid chart should error")
	}
}

func TestASCIIBarsAndPie(t *testing.T) {
	bar := NewBarChart("papers", "count (papers)", Labels{"all repeated", "some", "none"}, []float64{30, 25, 23})
	out, err := ASCII(bar, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "#") || !strings.Contains(out, "all repeated") {
		t.Errorf("bar chart:\n%s", out)
	}
	pie := NewPieChart("share", Labels{"a", "b"}, []float64{75, 25})
	out, err = ASCII(pie, 60, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "75.0%") || !strings.Contains(out, "25.0%") {
		t.Errorf("pie chart:\n%s", out)
	}
	// All-zero bars don't divide by zero.
	zero := NewBarChart("z", "n (count)", Labels{"a"}, []float64{0})
	if _, err := ASCII(zero, 60, 0); err != nil {
		t.Errorf("zero bars: %v", err)
	}
}

func TestStackedBar(t *testing.T) {
	out, err := StackedBar("memory wall", []string{"1992 Sparc", "2000 R12000"},
		[]float64{160, 13}, []float64{100, 100}, "CPU", "memory", "ns", 70)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"memory wall", "1992 Sparc", "C", "M", "ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("stacked bar missing %q:\n%s", want, out)
		}
	}
	if _, err := StackedBar("t", []string{"a"}, []float64{1, 2}, []float64{1}, "x", "y", "u", 70); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := StackedBar("t", nil, nil, nil, "x", "y", "u", 70); err == nil {
		t.Error("empty input should error")
	}
}

func TestYXRange(t *testing.T) {
	c := goodLineChart()
	ylo, yhi := c.YRange()
	if ylo != 1234 || yhi != 4623 {
		t.Errorf("y range = %g,%g", ylo, yhi)
	}
	xlo, xhi := c.XRange()
	if xlo != 1 || xhi != 3 {
		t.Errorf("x range = %g,%g", xlo, xhi)
	}
	empty := &Chart{}
	if lo, hi := empty.YRange(); lo != 0 || hi != 0 {
		t.Error("empty chart range")
	}
}

func TestFormatFloatCLocale(t *testing.T) {
	if FormatFloat(13.666) != "13.666" {
		t.Errorf("FormatFloat = %q", FormatFloat(13.666))
	}
	if strings.ContainsAny(FormatFloat(1234567.89), ", ") {
		t.Error("grouping separators must never appear")
	}
}
