package plot

import (
	"fmt"

	"repro/internal/stats"
)

// FromHistogram renders a stats.Histogram as a chart, carrying the bin
// labels and counts so Lint can apply the paper's >=5-points-per-cell rule
// directly to the figure.
func FromHistogram(h *stats.Histogram, title, ylabel string) (*Chart, error) {
	if h == nil || len(h.Bins) == 0 {
		return nil, fmt.Errorf("plot: empty histogram")
	}
	labels := make(Labels, len(h.Bins))
	pts := make([]Point, len(h.Bins))
	for i, bin := range h.Bins {
		labels[i] = bin.Label()
		pts[i] = Point{X: float64(i), Y: float64(bin.Count)}
	}
	return &Chart{
		Title: title, YLabel: ylabel, Kind: HistogramKind,
		Series:        []Series{{Name: title, Points: pts}},
		CatLabels:     labels,
		YStartsAtZero: true, AspectRatio: 0.75,
	}, nil
}

// FromIntervals builds a line chart whose points carry confidence-interval
// half-widths, so CheckReplicatedSeries passes and renderers can draw error
// bars.
func FromIntervals(name string, xs []float64, ivs []stats.Interval) (Series, error) {
	if len(xs) != len(ivs) {
		return Series{}, fmt.Errorf("plot: %d x values for %d intervals", len(xs), len(ivs))
	}
	pts := make([]Point, len(xs))
	for i := range xs {
		pts[i] = Point{X: xs[i], Y: ivs[i].Mean, CIHalf: ivs[i].HalfWidth()}
	}
	return Series{Name: name, Points: pts}, nil
}
