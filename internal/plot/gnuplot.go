package plot

import (
	"fmt"
	"strings"
)

// GnuplotSizeRatio implements the paper's sizing rule of thumb for papers
// (slide 146-148): if the plot is x*\textwidth wide, use
// `set size ratio 0 x*1.5,y`. It returns the two size arguments for the
// given width fraction and the recommended 3/4 plot aspect.
func GnuplotSizeRatio(widthFrac float64) (sx, sy float64) {
	if widthFrac <= 0 || widthFrac > 1 {
		widthFrac = 1
	}
	sx = widthFrac * 1.5
	sy = sx * 0.5 / 0.75 * 0.75 // keep sy proportional; default gnuplot canvas is 1x1
	if widthFrac == 1 {
		return 1, 1 // full-width default canvas
	}
	return sx, widthFrac
}

// GnuplotScript emits a complete, runnable gnuplot command file for the
// chart, reading data from dataFile (whitespace-separated columns: x then
// one column per series; written by WriteGnuplotData). This mirrors the
// paper's automatic-graph-generation recipe: results file + command file ->
// artifact, no hand-editing.
func GnuplotScript(c *Chart, dataFile, outFile string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "set terminal postscript eps color\n")
	fmt.Fprintf(&b, "set output %q\n", outFile)
	if c.Title != "" {
		fmt.Fprintf(&b, "set title %q\n", c.Title)
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, "set xlabel %q\n", c.XLabel)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "set ylabel %q\n", c.YLabel)
	}
	sx, sy := GnuplotSizeRatio(c.WidthFrac)
	fmt.Fprintf(&b, "set size ratio 0 %g,%g\n", sx, sy)
	if c.YStartsAtZero {
		b.WriteString("set yrange [0:*]\n")
	}
	switch c.Kind {
	case Bar, HistogramKind:
		b.WriteString("set style data histogram\nset style fill solid 0.8\n")
		fmt.Fprintf(&b, "plot %q using 2:xtic(1) title %q\n", dataFile, c.Series[0].Name)
	case Pie:
		// gnuplot has no native pie chart; emit the conventional
		// circle-object workaround header and the data as labels.
		b.WriteString("# pie charts are emitted as labeled shares\n")
		fmt.Fprintf(&b, "plot %q using 2:xtic(1) with boxes title %q\n", dataFile, c.Series[0].Name)
	default:
		b.WriteString("set style data linespoints\n")
		parts := make([]string, len(c.Series))
		for i, s := range c.Series {
			parts[i] = fmt.Sprintf("%q using 1:%d title %q", dataFile, i+2, s.Name)
		}
		fmt.Fprintf(&b, "plot %s\n", strings.Join(parts, ", \\\n     "))
	}
	return b.String()
}

// WriteGnuplotData renders the chart's data in the column layout
// GnuplotScript expects. Line charts require all series to share X values
// point-by-point; categorical charts emit label/value pairs.
func WriteGnuplotData(c *Chart) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	var b strings.Builder
	switch c.Kind {
	case Bar, Pie, HistogramKind:
		for i, p := range c.Series[0].Points {
			fmt.Fprintf(&b, "%q %s\n", c.CatLabels[i], FormatFloat(p.Y))
		}
	default:
		n := len(c.Series[0].Points)
		for _, s := range c.Series[1:] {
			if len(s.Points) != n {
				return "", fmt.Errorf("plot: series %q has %d points, first series has %d", s.Name, len(s.Points), n)
			}
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "%s", FormatFloat(c.Series[0].Points[i].X))
			for _, s := range c.Series {
				fmt.Fprintf(&b, "\t%s", FormatFloat(s.Points[i].Y))
			}
			b.WriteByte('\n')
		}
	}
	return b.String(), nil
}
