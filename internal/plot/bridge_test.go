package plot

import (
	"testing"

	"repro/internal/stats"
)

func TestFromHistogram(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 3, 3, 3, 8, 8, 9, 9, 9}
	h, err := stats.NewHistogramRange(xs, 2, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	chart, err := FromHistogram(h, "response times", "frequency (points)")
	if err != nil {
		t.Fatal(err)
	}
	if chart.Kind != HistogramKind || len(chart.CatLabels) != 2 {
		t.Fatalf("chart = %+v", chart)
	}
	if err := chart.Validate(); err != nil {
		t.Fatal(err)
	}
	// 7 and 5 points per cell: the rule holds, lint is clean.
	if vs := Lint(chart); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
	// Under-populated cells are flagged through the same path.
	h2, _ := stats.NewHistogramRange(xs, 6, 0, 12)
	chart2, err := FromHistogram(h2, "fine", "frequency (points)")
	if err != nil {
		t.Fatal(err)
	}
	if !hasRule(Lint(chart2), RuleHistogramCellCount) {
		t.Error("fine bins should violate the cell rule")
	}
	if _, err := FromHistogram(nil, "t", "y"); err == nil {
		t.Error("nil histogram should error")
	}
}

func TestFromIntervals(t *testing.T) {
	ivs := []stats.Interval{
		{Mean: 10, Lo: 9, Hi: 11},
		{Mean: 20, Lo: 18, Hi: 22},
	}
	s, err := FromIntervals("engine A", []float64{1, 2}, ivs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Points[0].CIHalf != 1 || s.Points[1].CIHalf != 2 {
		t.Errorf("half widths = %v", s.Points)
	}
	chart := NewLineChart("t", "x (n)", "y (ms)", s)
	if vs := CheckReplicatedSeries(chart, true); len(vs) != 0 {
		t.Errorf("interval series flagged: %v", vs)
	}
	if _, err := FromIntervals("x", []float64{1}, ivs); err == nil {
		t.Error("length mismatch should error")
	}
}
