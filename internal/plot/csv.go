package plot

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements locale-safe CSV handling. The paper's war story
// (slides 212-215): a results file containing "13.666" was pasted into a
// spreadsheet whose locale treated '.' as a thousands separator, silently
// becoming 13666 and wrecking the graph. All formatting here is C-locale;
// parsing detects the hazard.

// FormatFloat renders a float in C-locale (period decimal separator, no
// grouping), the only representation safe to exchange between tools.
func FormatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV renders rows of float columns with a header, C-locale.
func WriteCSV(header []string, rows [][]float64) (string, error) {
	var b strings.Builder
	b.WriteString(strings.Join(header, ","))
	b.WriteByte('\n')
	for i, row := range rows {
		if len(row) != len(header) {
			return "", fmt.Errorf("plot: row %d has %d values for %d columns", i, len(row), len(header))
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = FormatFloat(v)
		}
		b.WriteString(strings.Join(parts, ","))
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// ParseCSV parses a C-locale CSV of floats with one header line.
func ParseCSV(text string) (header []string, rows [][]float64, err error) {
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) == "" {
		return nil, nil, fmt.Errorf("plot: empty CSV")
	}
	header = strings.Split(lines[0], ",")
	for ln, line := range lines[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != len(header) {
			return nil, nil, fmt.Errorf("plot: line %d has %d fields for %d columns", ln+2, len(parts), len(header))
		}
		row := make([]float64, len(parts))
		for j, p := range parts {
			row[j], err = strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("plot: line %d field %d: %w", ln+2, j+1, err)
			}
		}
		rows = append(rows, row)
	}
	return header, rows, nil
}

// LocaleMangle simulates what a '.'-as-thousands-separator locale does to a
// C-locale decimal string on import: the separator is dropped, so "13.666"
// becomes 13666 and "12.3333" becomes 123333, while integer-looking values
// survive. Used to demonstrate and test the hazard.
func LocaleMangle(s string) string {
	return strings.ReplaceAll(s, ".", "")
}

// Hazard describes one suspected locale-mangled value.
type Hazard struct {
	Row, Col int
	Value    float64
	Baseline float64 // the column's lower-quartile magnitude
}

func (h Hazard) String() string {
	return fmt.Sprintf("row %d col %d: value %g is >=100x the column's lower quartile %g — possible locale-mangled decimal",
		h.Row+1, h.Col+1, h.Value, h.Baseline)
}

// DetectLocaleHazards scans parsed numeric rows for values at least 100x
// the column's lower-quartile magnitude — the signature that a decimal
// point was eaten during a locale-mismatched import (13.666 -> 13666). The
// lower quartile, not the median, is the baseline: in the paper's war
// story half the column was mangled, which drags the median up with the
// corruption. Columns whose baseline is zero are skipped. This is a
// heuristic: columns legitimately spanning over two orders of magnitude in
// one unit will trigger it, which for timing tables is itself worth a look.
func DetectLocaleHazards(rows [][]float64) []Hazard {
	if len(rows) == 0 {
		return nil
	}
	nCols := len(rows[0])
	var out []Hazard
	for c := 0; c < nCols; c++ {
		vals := make([]float64, 0, len(rows))
		for _, r := range rows {
			if c < len(r) {
				vals = append(vals, abs(r[c]))
			}
		}
		base := lowerQuartile(vals)
		if base == 0 {
			continue
		}
		for i, r := range rows {
			if c < len(r) && abs(r[c]) >= 100*base {
				out = append(out, Hazard{Row: i, Col: c, Value: r[c], Baseline: base})
			}
		}
	}
	return out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func lowerQuartile(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	cp := append([]float64(nil), vals...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	return cp[len(cp)/4]
}
