package plot

import (
	"fmt"
	"strings"
)

// ASCII renders the chart as monospace text — the terminal-native artifact
// this repository's experiment reports embed. Line charts render on a
// width x height grid; bar and pie charts render as labeled horizontal
// bars.
func ASCII(c *Chart, width, height int) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 15
	}
	switch c.Kind {
	case Bar, HistogramKind:
		return asciiBars(c, width, false)
	case Pie:
		return asciiBars(c, width, true)
	default:
		return asciiLines(c, width, height)
	}
}

func asciiBars(c *Chart, width int, asShare bool) (string, error) {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	pts := c.Series[0].Points
	var maxV, total float64
	maxLabel := 0
	for i, p := range pts {
		if p.Y > maxV {
			maxV = p.Y
		}
		total += p.Y
		if len(c.CatLabels[i]) > maxLabel {
			maxLabel = len(c.CatLabels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	if total == 0 {
		total = 1
	}
	barSpace := width - maxLabel - 14
	if barSpace < 10 {
		barSpace = 10
	}
	for i, p := range pts {
		n := int(p.Y / maxV * float64(barSpace))
		if asShare {
			fmt.Fprintf(&b, "%-*s %s %5.1f%%\n", maxLabel, c.CatLabels[i],
				strings.Repeat("#", n), 100*p.Y/total)
		} else {
			fmt.Fprintf(&b, "%-*s %s %g\n", maxLabel, c.CatLabels[i],
				strings.Repeat("#", n), p.Y)
		}
	}
	if !asShare && c.YLabel != "" {
		fmt.Fprintf(&b, "(%s)\n", c.YLabel)
	}
	return b.String(), nil
}

func asciiLines(c *Chart, width, height int) (string, error) {
	xlo, xhi := c.XRange()
	ylo, yhi := c.YRange()
	if c.YStartsAtZero && ylo > 0 {
		ylo = 0
	}
	if xhi == xlo {
		xhi = xlo + 1
	}
	if yhi == ylo {
		yhi = ylo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	marks := "*+ox#@%&"
	for si, s := range c.Series {
		mark := marks[si%len(marks)]
		for _, p := range s.Points {
			x := int((p.X - xlo) / (xhi - xlo) * float64(width-1))
			y := int((p.Y - ylo) / (yhi - ylo) * float64(height-1))
			row := height - 1 - y
			if row >= 0 && row < height && x >= 0 && x < width {
				grid[row][x] = mark
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	fmt.Fprintf(&b, "%s\n", c.YLabel)
	for i, row := range grid {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%7.4g ", yhi)
		} else if i == height-1 {
			label = fmt.Sprintf("%7.4g ", ylo)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "        %-10.4g%*s\n", xlo, width-10, fmt.Sprintf("%.4g", xhi))
	fmt.Fprintf(&b, "        %s\n", c.XLabel)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String(), nil
}

// StackedBar renders a two-component stacked horizontal bar chart (used by
// the memory-wall figure: CPU vs memory component per machine).
func StackedBar(title string, labels []string, comp1, comp2 []float64, name1, name2, unit string, width int) (string, error) {
	if len(labels) != len(comp1) || len(labels) != len(comp2) {
		return "", fmt.Errorf("plot: stacked bar needs equal-length inputs (%d, %d, %d)", len(labels), len(comp1), len(comp2))
	}
	if len(labels) == 0 {
		return "", fmt.Errorf("plot: stacked bar needs at least one row")
	}
	if width < 30 {
		width = 60
	}
	var maxV float64
	maxLabel := 0
	for i := range labels {
		if t := comp1[i] + comp2[i]; t > maxV {
			maxV = t
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	barSpace := width - maxLabel - 20
	if barSpace < 10 {
		barSpace = 10
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i := range labels {
		n1 := int(comp1[i] / maxV * float64(barSpace))
		n2 := int(comp2[i] / maxV * float64(barSpace))
		fmt.Fprintf(&b, "%-*s %s%s %.1f %s\n", maxLabel, labels[i],
			strings.Repeat("C", n1), strings.Repeat("M", n2), comp1[i]+comp2[i], unit)
	}
	fmt.Fprintf(&b, "  C = %s, M = %s\n", name1, name2)
	return b.String(), nil
}
