// Package plot implements the paper's Presentation chapter as code: a chart
// model, gnuplot script emission, ASCII rendering for terminals, CSV
// reading/writing with locale-hazard detection, and — most importantly — a
// chart linter that enforces the paper's guidelines ("require minimum
// effort from the reader", "maximize information", "minimize ink") and
// flags its catalogued mistakes and pictorial games.
package plot

import (
	"fmt"
	"strings"
)

// Kind is the chart family.
type Kind int

// Chart kinds.
const (
	Line Kind = iota
	Bar
	Pie
	HistogramKind
)

func (k Kind) String() string {
	switch k {
	case Line:
		return "line"
	case Bar:
		return "bar"
	case Pie:
		return "pie"
	case HistogramKind:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Point is one (x, y) observation, optionally with a confidence-interval
// half-width (CIHalf = 0 means no interval known).
type Point struct {
	X, Y   float64
	CIHalf float64
}

// Style is a named visual style for a series. The paper's rule: a given
// curve must keep the same layout from one figure to the next, so styles
// are compared by value across a figure set.
type Style struct {
	// LineType and PointType follow gnuplot numbering.
	LineType, PointType int
	// Color is a symbolic color name.
	Color string
}

// Series is one named curve/bar group.
type Series struct {
	// Name labels the series. The paper: "use keywords in place of
	// symbols to avoid a join in the reader's brain" — so Name should be
	// words ("1 job/sec"), not a symbol ("λ=1").
	Name   string
	Points []Point
	Style  Style
}

// Labels for pie/bar categories when X values are categorical.
type Labels []string

// Chart is the renderable chart model.
type Chart struct {
	Title  string
	XLabel string // should include units, e.g. "CPU time (ms)"
	YLabel string
	Kind   Kind
	Series []Series
	// CatLabels name the categories of Bar/Pie charts (one per point).
	CatLabels Labels
	// YStartsAtZero records whether the y axis begins at 0; truncated
	// axes are one of the paper's pictorial games (MINE vs YOURS).
	YStartsAtZero bool
	// WidthFrac is the intended width as a fraction of text width
	// (drives the gnuplot sizing rule); 0 means full width.
	WidthFrac float64
	// AspectRatio is height/width of the plot area; the paper
	// recommends 3/4. 0 means unset (renderer default 0.75).
	AspectRatio float64
}

// NewLineChart builds a line chart with the recommended defaults: y axis
// starting at zero and the 3/4 aspect ratio.
func NewLineChart(title, xlabel, ylabel string, series ...Series) *Chart {
	return &Chart{
		Title: title, XLabel: xlabel, YLabel: ylabel,
		Kind: Line, Series: series,
		YStartsAtZero: true, AspectRatio: 0.75,
	}
}

// NewBarChart builds a bar chart over categories.
func NewBarChart(title, ylabel string, labels Labels, values []float64) *Chart {
	pts := make([]Point, len(values))
	for i, v := range values {
		pts[i] = Point{X: float64(i), Y: v}
	}
	return &Chart{
		Title: title, YLabel: ylabel, Kind: Bar,
		Series:        []Series{{Name: title, Points: pts}},
		CatLabels:     labels,
		YStartsAtZero: true, AspectRatio: 0.75,
	}
}

// NewPieChart builds a pie chart from category shares.
func NewPieChart(title string, labels Labels, values []float64) *Chart {
	pts := make([]Point, len(values))
	for i, v := range values {
		pts[i] = Point{X: float64(i), Y: v}
	}
	return &Chart{
		Title: title, Kind: Pie,
		Series:    []Series{{Name: title, Points: pts}},
		CatLabels: labels,
	}
}

// YRange returns the minimum and maximum Y over all series (0,0 for an
// empty chart).
func (c *Chart) YRange() (lo, hi float64) {
	first := true
	for _, s := range c.Series {
		for _, p := range s.Points {
			if first {
				lo, hi = p.Y, p.Y
				first = false
				continue
			}
			if p.Y < lo {
				lo = p.Y
			}
			if p.Y > hi {
				hi = p.Y
			}
		}
	}
	return lo, hi
}

// XRange returns the minimum and maximum X over all series.
func (c *Chart) XRange() (lo, hi float64) {
	first := true
	for _, s := range c.Series {
		for _, p := range s.Points {
			if first {
				lo, hi = p.X, p.X
				first = false
				continue
			}
			if p.X < lo {
				lo = p.X
			}
			if p.X > hi {
				hi = p.X
			}
		}
	}
	return lo, hi
}

// Validate reports structural problems (as opposed to guideline violations,
// which Lint reports).
func (c *Chart) Validate() error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	for _, s := range c.Series {
		if len(s.Points) == 0 {
			return fmt.Errorf("plot: chart %q: series %q has no points", c.Title, s.Name)
		}
	}
	if c.Kind == Bar || c.Kind == Pie {
		n := len(c.Series[0].Points)
		if len(c.CatLabels) != n {
			return fmt.Errorf("plot: chart %q: %d category labels for %d values", c.Title, len(c.CatLabels), n)
		}
	}
	if c.Kind == Pie {
		for _, p := range c.Series[0].Points {
			if p.Y < 0 {
				return fmt.Errorf("plot: chart %q: negative pie share %g", c.Title, p.Y)
			}
		}
	}
	return nil
}

// hasUnit reports whether an axis label includes a parenthesized unit,
// e.g. "CPU time (ms)" — the paper's "include units in the labels".
func hasUnit(label string) bool {
	open := strings.IndexByte(label, '(')
	close := strings.IndexByte(label, ')')
	return open >= 0 && close > open+1
}
