package plot

import (
	"fmt"
	"sort"
	"strings"
)

// Rule identifies one of the paper's presentation guidelines.
type Rule int

// Lint rules, each traceable to a slide of the Presentation chapter.
const (
	// RuleMaxCurves: "a line chart should be limited at 6 curves".
	RuleMaxCurves Rule = iota
	// RuleMaxBars: "a column chart or bar should be limited to 10 bars".
	RuleMaxBars
	// RuleMaxPieComponents: "a pie chart should be limited to 8
	// components".
	RuleMaxPieComponents
	// RuleHistogramCellCount: "each cell in a histogram should have at
	// least five data points".
	RuleHistogramCellCount
	// RuleAxisLabelMissing: axes need informative labels.
	RuleAxisLabelMissing
	// RuleAxisUnitMissing: prefer "CPU time (ms)" to "CPU time".
	RuleAxisUnitMissing
	// RuleSymbolLabel: "use keywords in place of symbols to avoid a join
	// in the reader's brain" (λ=1 vs "1 job/sec").
	RuleSymbolLabel
	// RuleTruncatedAxis: the MINE-vs-YOURS pictorial game — a y axis
	// that does not begin at zero exaggerates differences.
	RuleTruncatedAxis
	// RuleAspectRatio: "let the useful height of the graph be 3/4th of
	// its useful width".
	RuleAspectRatio
	// RuleMissingCI: "plot random quantities without confidence
	// intervals" — replicated measurements need intervals.
	RuleMissingCI
	// RuleInconsistentStyle: "change the graphical layout of a given
	// curve from one figure to another".
	RuleInconsistentStyle
	// RuleTooManyResponseVariables: "presenting many result variables on
	// a single chart" (the three-y-axes "Huh?" figure).
	RuleTooManyResponseVariables
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case RuleMaxCurves:
		return "max-curves"
	case RuleMaxBars:
		return "max-bars"
	case RuleMaxPieComponents:
		return "max-pie-components"
	case RuleHistogramCellCount:
		return "histogram-cell-count"
	case RuleAxisLabelMissing:
		return "axis-label-missing"
	case RuleAxisUnitMissing:
		return "axis-unit-missing"
	case RuleSymbolLabel:
		return "symbol-label"
	case RuleTruncatedAxis:
		return "truncated-axis"
	case RuleAspectRatio:
		return "aspect-ratio"
	case RuleMissingCI:
		return "missing-confidence-interval"
	case RuleInconsistentStyle:
		return "inconsistent-style"
	case RuleTooManyResponseVariables:
		return "too-many-response-variables"
	default:
		return fmt.Sprintf("Rule(%d)", int(r))
	}
}

// Violation is one guideline violation found by Lint.
type Violation struct {
	Rule    Rule
	Message string
}

func (v Violation) String() string { return v.Rule.String() + ": " + v.Message }

// Limits from the paper's rules of thumb ("to override with good reason").
const (
	MaxCurves        = 6
	MaxBars          = 10
	MaxPieComponents = 8
	MinHistCellCount = 5
)

// Lint checks a chart against the paper's presentation guidelines and
// returns every violation. A structurally invalid chart yields an error
// from Validate first; Lint assumes validity.
func Lint(c *Chart) []Violation {
	var out []Violation
	add := func(r Rule, format string, args ...any) {
		out = append(out, Violation{Rule: r, Message: fmt.Sprintf(format, args...)})
	}

	switch c.Kind {
	case Line:
		if len(c.Series) > MaxCurves {
			add(RuleMaxCurves, "%d curves; limit is %d", len(c.Series), MaxCurves)
		}
	case Bar:
		if n := len(c.Series[0].Points); n > MaxBars {
			add(RuleMaxBars, "%d bars; limit is %d", n, MaxBars)
		}
	case Pie:
		if n := len(c.Series[0].Points); n > MaxPieComponents {
			add(RuleMaxPieComponents, "%d components; limit is %d", n, MaxPieComponents)
		}
	case HistogramKind:
		for _, s := range c.Series {
			for i, p := range s.Points {
				if p.Y < MinHistCellCount {
					add(RuleHistogramCellCount, "cell %d holds %.0f points; want >= %d (coarsen the bins)", i, p.Y, MinHistCellCount)
				}
			}
		}
	}

	if c.Kind != Pie {
		if strings.TrimSpace(c.YLabel) == "" {
			add(RuleAxisLabelMissing, "y axis has no label")
		} else if !hasUnit(c.YLabel) {
			add(RuleAxisUnitMissing, "y label %q has no unit; prefer e.g. %q", c.YLabel, c.YLabel+" (ms)")
		}
		if c.Kind == Line {
			if strings.TrimSpace(c.XLabel) == "" {
				add(RuleAxisLabelMissing, "x axis has no label")
			}
			if !c.YStartsAtZero {
				lo, hi := c.YRange()
				add(RuleTruncatedAxis, "y axis starts at %g (data up to %g); a zero-based axis avoids the MINE-vs-YOURS exaggeration", lo, hi)
			}
		}
	}

	for _, s := range c.Series {
		if looksSymbolic(s.Name) {
			add(RuleSymbolLabel, "series %q uses a symbol; use keywords (e.g. \"1 job/sec\") to avoid a join in the reader's brain", s.Name)
		}
	}

	if c.AspectRatio != 0 && (c.AspectRatio < 0.6 || c.AspectRatio > 0.9) {
		add(RuleAspectRatio, "aspect ratio %.2f; recommended height = 3/4 width", c.AspectRatio)
	}
	return out
}

// looksSymbolic reports whether a series name is a bare symbol assignment
// like "λ=1" or "µ=3" rather than words.
func looksSymbolic(name string) bool {
	name = strings.TrimSpace(name)
	if name == "" {
		return false
	}
	if !strings.ContainsRune(name, '=') {
		return false
	}
	head := strings.TrimSpace(strings.SplitN(name, "=", 2)[0])
	// Single-rune heads (x=1, λ=1, µ=2) are symbols; words are fine.
	return len([]rune(head)) == 1 || head == "lambda" || head == "mu"
}

// LintFigureSet applies the cross-figure rule: a series appearing in
// several charts (matched by name) must keep the same style everywhere.
func LintFigureSet(charts []*Chart) []Violation {
	styles := map[string]Style{}
	var out []Violation
	for _, c := range charts {
		for _, s := range c.Series {
			prev, seen := styles[s.Name]
			if !seen {
				styles[s.Name] = s.Style
				continue
			}
			if prev != s.Style {
				out = append(out, Violation{
					Rule: RuleInconsistentStyle,
					Message: fmt.Sprintf("series %q drawn with style %+v in one figure and %+v in another (chart %q)",
						s.Name, prev, s.Style, c.Title),
				})
			}
		}
	}
	return out
}

// LintCombined flags a single chart carrying several response variables
// with different scales — the paper's "Huh?" example with response time,
// throughput, and utilization on one plot. Charts are passed with the
// response variable each series measures; more than one distinct variable
// on the same chart is flagged.
func LintCombined(c *Chart, seriesResponseVars []string) []Violation {
	if len(seriesResponseVars) != len(c.Series) {
		return []Violation{{Rule: RuleTooManyResponseVariables,
			Message: fmt.Sprintf("%d response-variable annotations for %d series", len(seriesResponseVars), len(c.Series))}}
	}
	distinct := map[string]bool{}
	for _, v := range seriesResponseVars {
		distinct[v] = true
	}
	if len(distinct) > 1 {
		vars := make([]string, 0, len(distinct))
		for v := range distinct {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		return []Violation{{Rule: RuleTooManyResponseVariables,
			Message: fmt.Sprintf("chart %q mixes %d response variables (%s); plot them separately", c.Title, len(distinct), strings.Join(vars, ", "))}}
	}
	return nil
}

// CheckReplicatedSeries flags series that plot means of replicated runs
// without confidence intervals.
func CheckReplicatedSeries(c *Chart, replicated bool) []Violation {
	if !replicated {
		return nil
	}
	var out []Violation
	for _, s := range c.Series {
		missing := 0
		for _, p := range s.Points {
			if p.CIHalf == 0 {
				missing++
			}
		}
		if missing > 0 {
			out = append(out, Violation{Rule: RuleMissingCI,
				Message: fmt.Sprintf("series %q plots %d replicated points without confidence intervals; overlapping intervals may mean the quantities are statistically indifferent", s.Name, missing)})
		}
	}
	return out
}
