package sched

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/adaptive"
	"repro/internal/design"
	"repro/internal/runstore"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base, tolerating the runtime's own background goroutines.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= base || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("%d goroutines still alive, started with %d — the pool leaked", n, base)
	}
}

// TestTimeoutAbandonmentDoesNotLeakOrCorrupt is the regression test for
// the Options.Timeout abandonment contract: a timed-out attempt's
// goroutine must not deadlock the pool, must drain once the runner
// unblocks, and its late result must never surface in Stats, the
// journal, or the ResultSet.
func TestTimeoutAbandonmentDoesNotLeakOrCorrupt(t *testing.T) {
	base := runtime.NumGoroutine()
	dir := t.TempDir()
	release := make(chan struct{})
	var lateFinishes atomic.Int64
	// The 16MB cells block until released — long past the timeout.
	blocking := func(a design.Assignment, rep int) (map[string]float64, error) {
		if a["memory"] == "16MB" {
			<-release
			lateFinishes.Add(1)
		}
		return deterministicRunner(a, rep)
	}

	s := New(Options{Workers: 4, Timeout: 25 * time.Millisecond, JournalDir: dir})
	_, err := s.Execute(context.Background(), newExperiment(t, 2, blocking))
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
	// A failed Execute publishes no stats — the zero value is the
	// contract, not leftovers from whatever the abandoned attempts did.
	if st := s.LastStats(); st != (Stats{}) {
		t.Errorf("failed run published stats %+v, want none", st)
	}

	// Unblock the abandoned attempts; every goroutine must drain.
	close(release)
	waitGoroutines(t, base)
	if lateFinishes.Load() == 0 {
		t.Fatal("test runner never blocked — the scenario did not exercise abandonment")
	}

	// Late finishers must not have reached the journal: only fast cells
	// may be there.
	j, err := runstore.OpenDir(dir, "sched 2^2")
	if err != nil {
		t.Fatal(err)
	}
	journaled := j.Len()
	recs, err := runstore.Collect(j.Scan())
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if rec.Assignment["memory"] == "16MB" {
			t.Errorf("abandoned unit %s/%d reached the journal", rec.Hash, rec.Replicate)
		}
	}
	j.Close()

	// A healthy warm-started re-run over the same journal must replay
	// exactly the journaled fast units, execute the rest, and publish
	// consistent stats — the abandoned attempts corrupted nothing.
	s2 := New(Options{Workers: 4, Timeout: time.Second, JournalDir: dir})
	rs, err := s2.Execute(context.Background(), newExperiment(t, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	st := s2.LastStats()
	if st.Replayed != journaled || st.Executed != st.Units-journaled {
		t.Errorf("resume stats = %+v, want %d replayed of %d", st, journaled, st.Units)
	}
	cold, err := New(Options{Workers: 1}).Execute(context.Background(), newExperiment(t, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if rs.CSV() != cold.CSV() {
		t.Errorf("resumed ResultSet differs from cold run:\n%s\nvs\n%s", rs.CSV(), cold.CSV())
	}
}

// TestAdaptiveTimeoutDoesNotLeak exercises the same contract on the
// dynamic (controller-driven) pool, whose dispatcher must keep draining
// in-flight outcomes after the first error.
func TestAdaptiveTimeoutDoesNotLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	release := make(chan struct{})
	blocking := func(a design.Assignment, rep int) (map[string]float64, error) {
		if a["noise"] == "hi" {
			<-release
		}
		return mixedVarianceRunner(a, rep)
	}
	ctrl, err := adaptive.New(adaptive.Options{Min: 2, Max: 8})
	if err != nil {
		t.Fatal(err)
	}
	e := mixedVariance(t, 8)
	e.Run = blocking
	s := New(Options{Workers: 4, Timeout: 25 * time.Millisecond, Controller: ctrl})
	if _, err := s.Execute(context.Background(), e); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
	close(release)
	waitGoroutines(t, base)
}
