package sched

import (
	"context"
	"testing"

	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/obs"
)

// benchExperiment is a 2^2 x 64 design with a runner doing a few
// microseconds of fixed arithmetic — the small end of a real measurement
// unit (actual experiment runners burn milliseconds), so the pool
// machinery and the instruments carry realistic relative weight. The
// absolute instrumentation cost is two clock reads plus a handful of
// atomic ops per unit (~160ns on a stock VM, dominated by time.Now);
// anything shorter than this runner measures channel handoff, not
// scheduling.
func benchExperiment(b *testing.B) *harness.Experiment {
	b.Helper()
	d, err := design.TwoLevelFull([]design.Factor{
		design.MustFactor("memory", "4MB", "16MB"),
		design.MustFactor("cache", "1KB", "2KB"),
	})
	if err != nil {
		b.Fatal(err)
	}
	d.Replicates = 64
	return &harness.Experiment{
		Name:      "bench 2^2",
		Design:    d,
		Responses: []string{"MIPS"},
		Run: func(a design.Assignment, rep int) (map[string]float64, error) {
			v := 1.0
			for i := 0; i < 5000; i++ {
				v += float64(i) * 1e-6
			}
			return map[string]float64{"MIPS": v + float64(rep)}, nil
		},
	}
}

func benchExecute(b *testing.B, s *Scheduler) {
	b.Helper()
	e := benchExperiment(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Execute(context.Background(), e); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedInstrumented measures the fixed-pool path with the
// instruments live (a private registry, so benchmark runs do not pollute
// the process-wide series).
func BenchmarkSchedInstrumented(b *testing.B) {
	benchExecute(b, New(Options{Workers: 4, Metrics: obs.NewRegistry()}))
}

// BenchmarkSchedUninstrumented is the baseline: the same scheduler with
// its metrics handle cleared, compiling every instrument call site to a
// nil check. Compare with BenchmarkSchedInstrumented to bound the
// observability overhead (<5% is the budget; see ISSUE 7).
func BenchmarkSchedUninstrumented(b *testing.B) {
	s := New(Options{Workers: 4})
	s.met = nil
	benchExecute(b, s)
}
