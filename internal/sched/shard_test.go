package sched

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/design"
	"repro/internal/harness"
	"repro/internal/runstore"
	"repro/internal/runstore/shardstore"
)

// newWideExperiment builds a deterministic one-factor design with enough
// cells that every shard of a small partition owns some rows.
func newWideExperiment(t *testing.T, cells, reps int, run harness.RunFunc) *harness.Experiment {
	t.Helper()
	levels := make([]string, cells)
	for i := range levels {
		levels[i] = fmt.Sprintf("L%02d", i)
	}
	d, err := design.FullFactorial([]design.Factor{design.MustFactor("f", levels...)})
	if err != nil {
		t.Fatal(err)
	}
	d.Replicates = reps
	if run == nil {
		run = wideRunner
	}
	return &harness.Experiment{Name: "sched wide", Design: d, Responses: []string{"ms"}, Run: run}
}

func wideRunner(a design.Assignment, rep int) (map[string]float64, error) {
	var i int
	if _, err := fmt.Sscanf(a["f"], "L%d", &i); err != nil {
		return nil, fmt.Errorf("bad level %q: %w", a["f"], err)
	}
	return map[string]float64{"ms": float64(100*i + rep)}, nil
}

// TestShardedRunPartitionsDisjointly runs every shard of a partitioned
// experiment as its own scheduler over one journal dir and checks the
// scale-out contract: executed unit sets are disjoint, their union is the
// full design, each worker journals only its own shard file, and the
// merged journal is byte-identical to a single-process run's journal.
func TestShardedRunPartitionsDisjointly(t *testing.T) {
	const shards, cells, reps = 3, 8, 2
	dir := t.TempDir()
	var mu sync.Mutex
	executedBy := make([]map[string]bool, shards)

	for k := 0; k < shards; k++ {
		k := k
		executedBy[k] = map[string]bool{}
		run := func(a design.Assignment, rep int) (map[string]float64, error) {
			mu.Lock()
			executedBy[k][fmt.Sprintf("%s/%d", runstore.AssignmentHash(a), rep)] = true
			mu.Unlock()
			return wideRunner(a, rep)
		}
		s := New(Options{Workers: 2, JournalDir: dir, Shards: shards, Shard: k})
		rs, err := s.Execute(context.Background(), newWideExperiment(t, cells, reps, run))
		if err != nil {
			t.Fatalf("shard %d: %v", k, err)
		}
		st := s.LastStats()
		if st.Executed != len(executedBy[k]) || st.Replayed != 0 {
			t.Errorf("shard %d stats = %+v, executed map has %d", k, st, len(executedBy[k]))
		}
		if st.Executed+st.Skipped != cells*reps {
			t.Errorf("shard %d: executed %d + skipped %d != %d units", k, st.Executed, st.Skipped, cells*reps)
		}
		if st.Units != st.Executed {
			t.Errorf("shard %d: Units = %d, want %d (owned units only)", k, st.Units, st.Executed)
		}
		// The worker's ResultSet carries its own rows in full and the
		// unowned rows as empty placeholders.
		full, empty := 0, 0
		for _, row := range rs.Rows {
			switch len(row.Reps) {
			case reps:
				full++
			case 0:
				empty++
			default:
				t.Errorf("shard %d: row %s has %d reps", k, row.Assignment, len(row.Reps))
			}
		}
		if full*reps != st.Executed || full+empty != cells {
			t.Errorf("shard %d: %d full + %d empty rows, executed %d", k, full, empty, st.Executed)
		}
	}

	// Disjoint and exhaustive.
	seen := map[string]int{}
	for k := 0; k < shards; k++ {
		if len(executedBy[k]) == 0 {
			t.Errorf("shard %d executed nothing; pick more cells for the test design", k)
		}
		for key := range executedBy[k] {
			seen[key]++
		}
	}
	if len(seen) != cells*reps {
		t.Errorf("union covers %d units, want %d", len(seen), cells*reps)
	}
	for key, n := range seen {
		if n != 1 {
			t.Errorf("unit %s executed by %d shards", key, n)
		}
	}

	// Merge the shard files and compare byte-for-byte with a
	// single-process single-worker run (appends in design order, i.e.
	// already canonical).
	singleDir := t.TempDir()
	s := New(Options{Workers: 1, JournalDir: singleDir})
	if _, err := s.Execute(context.Background(), newWideExperiment(t, cells, reps, nil)); err != nil {
		t.Fatal(err)
	}
	merged := filepath.Join(dir, "merged.jsonl")
	ms, err := runstore.Merge(shardstore.Paths(dir, "sched wide", shards), merged)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Kept != cells*reps || len(ms.Conflicts) != 0 || ms.Superseded != 0 {
		t.Errorf("merge stats = %+v", ms)
	}
	singlePath := filepath.Join(singleDir, runstore.SanitizeName("sched wide")+".jsonl")
	want, err := os.ReadFile(singlePath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged shard journal != single-process journal:\n%s\nvs\n%s", got, want)
	}

	// Compacting the merged journal is a byte-identical no-op.
	if _, err := runstore.Compact(merged, ""); err != nil {
		t.Fatal(err)
	}
	if again, err := os.ReadFile(merged); err != nil || !bytes.Equal(again, got) {
		t.Errorf("compact changed the merged journal (err %v)", err)
	}

	// Replaying the merged journal through an unsharded scheduler (via
	// the Store option) yields the full ResultSet without executing
	// anything — the final-artifact step of the workflow.
	j, err := runstore.Open(merged)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	sr := New(Options{Workers: 2, Store: j})
	rs, err := sr.Execute(context.Background(), newWideExperiment(t, cells, reps, func(design.Assignment, int) (map[string]float64, error) {
		return nil, fmt.Errorf("nothing should execute on a full replay")
	}))
	if err != nil {
		t.Fatal(err)
	}
	if st := sr.LastStats(); st.Executed != 0 || st.Replayed != cells*reps {
		t.Errorf("replay stats = %+v", st)
	}
	cold, err := harness.Sequential{}.Execute(context.Background(), newWideExperiment(t, cells, reps, nil))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CSV() != rs.CSV() || cold.Report() != rs.Report() {
		t.Error("replayed merged run differs from cold sequential run")
	}
}

// TestShardedWarmStart re-runs one shard over its existing shard file:
// everything it owns replays, nothing executes, the rest stays skipped.
func TestShardedWarmStart(t *testing.T) {
	const shards, cells, reps = 2, 6, 2
	dir := t.TempDir()
	for k := 0; k < shards; k++ {
		s := New(Options{Workers: 2, JournalDir: dir, Shards: shards, Shard: k})
		if _, err := s.Execute(context.Background(), newWideExperiment(t, cells, reps, nil)); err != nil {
			t.Fatal(err)
		}
	}
	s := New(Options{Workers: 2, JournalDir: dir, Shards: shards, Shard: 0})
	if _, err := s.Execute(context.Background(), newWideExperiment(t, cells, reps, func(design.Assignment, int) (map[string]float64, error) {
		return nil, fmt.Errorf("warm shard re-run should replay, not execute")
	})); err != nil {
		t.Fatal(err)
	}
	st := s.LastStats()
	if st.Executed != 0 || st.Replayed == 0 || st.Replayed+st.Skipped != cells*reps {
		t.Errorf("warm shard stats = %+v", st)
	}
}

// TestShardOptionValidation covers the sharding misconfigurations the
// scheduler must reject up front.
func TestShardOptionValidation(t *testing.T) {
	dir := t.TempDir()
	e := func() *harness.Experiment { return newWideExperiment(t, 4, 1, nil) }
	if _, err := New(Options{Shards: 2, Shard: 2, JournalDir: dir}).Execute(context.Background(), e()); err == nil {
		t.Error("shard index == shards should error")
	}
	if _, err := New(Options{Shards: 2, Shard: -1, JournalDir: dir}).Execute(context.Background(), e()); err == nil {
		t.Error("negative shard index should error")
	}
	if _, err := New(Options{Shards: 2}).Execute(context.Background(), e()); err == nil {
		t.Error("sharding without a store should error")
	}
	ctrl, err := adaptive.New(adaptive.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{Shards: 2, JournalDir: dir, Controller: ctrl}).Execute(context.Background(), e()); err == nil {
		t.Error("sharding with an adaptive controller should error")
	}
}
